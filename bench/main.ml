(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the supplementary figures listed in DESIGN.md, then runs
   bechamel micro-benchmarks (one Test.make per experiment).

   Experiments (ids from DESIGN.md):
     T1 — Section 8 table (the paper's only table)
     E1 — Examples 1b/2/3 (rules M / SS / LS)
     S5 — Section 5 urn-model numbers
     S6 — Section 6 single-table numbers
     F1 — error propagation vs number of joins (supplementary)
     F2 — local-predicate selectivity sweep (supplementary)
     F3 — plan quality on random chain queries (supplementary)
     F4 — skewed local predicates: uniform vs histogram vs MCV (supplementary)
     F5 — join-order enumerators: DP vs greedy vs randomized (supplementary)
     F6 — q-error study over mixed random workloads (supplementary)
     F7 — uniformity limits on skewed join columns (supplementary)
     F10 — estimator panel: every registered estimator side by side
           (supplementary)
     F11 — deadline/budget soak: anytime ladder under a 1 ms deadline on
           n=14 DP, node-budget cost sweep, randomized soak smoke
           (supplementary)
     F12 — compiled estimation kernel vs interpreted indexed path on DP
           enumeration, with a Gc.minor_words allocation audit
           (supplementary)
     F13 — catalog churn: versioned epochs, partitioned re-ANALYZE and
           self-healing publishes under streamed deltas (supplementary)
     F16 — degree-statistics estimators (LP2/DEGSEQ/ENT) vs executed truth
           on key chains, skewed stars and Section 8 (supplementary)

   Run with --quick to shrink T1/F1/F3 (used in CI-style smoke runs).
   Passing experiment ids (e.g. `bench/main.exe f8 micro`) runs only
   those. *)

let quick = Array.exists (String.equal "--quick") Sys.argv

let experiment_ids =
  [
    "t1"; "t1-ablation"; "e1"; "s5"; "s6"; "f1"; "f2"; "f3"; "f4"; "f5"; "f6";
    "f7"; "f8"; "f10"; "f11"; "f12"; "f13"; "f14"; "f16"; "micro";
  ]

let selected =
  List.filter
    (fun id -> Array.exists (String.equal id) Sys.argv)
    experiment_ids

let wants id = selected = [] || List.mem id selected

let section title = Printf.printf "\n=== %s ===\n%!" title

let run_t1 () =
  section "T1: Section 8 experiment (paper's table)";
  let scale = if quick then 10 else 1 in
  if scale <> 1 then Printf.printf "(scaled down %dx)\n" scale;
  let rows = Harness.Section8_experiment.run ~scale () in
  print_string (Harness.Section8_experiment.render rows);
  print_newline ();
  print_endline "Paper reported:";
  print_string
    (Harness.Report.table
       ~header:
         [
           "Query"; "Algorithm"; "Join Order"; "Estimated Result Sizes";
           "Time (s)";
         ]
       (List.map
          (fun (q, a, o, est, t) ->
            [
              q; a; o;
              (if est = [] then "-" else Harness.Report.size_list est);
              Harness.Report.float_cell t;
            ])
          Harness.Section8_experiment.paper_rows))

(* Ablation: the same experiment when the optimizer may also use hash
   joins and index nested loops. Better access paths soften the damage of
   bad join orders, but the misestimates (and ELS's advantage) remain. *)
let run_t1_ablation () =
  section "T1-ablation: Section 8 with hash joins and index access enabled";
  let scale = if quick then 10 else 1 in
  let methods =
    [
      Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash;
      Exec.Plan.Index_nested_loop;
    ]
  in
  let rows = Harness.Section8_experiment.run ~scale ~methods () in
  print_string (Harness.Section8_experiment.render rows)

let run_e1 () =
  section "E1: Examples 1b/2/3 — rules M / SS / LS";
  print_string (Harness.Examples_tables.render_rules_table ())

let run_s5 () =
  section "S5: Section 5 urn-model example";
  print_string (Harness.Examples_tables.render_urn_table ())

let run_s6 () =
  section "S6: Section 6 single-table example";
  print_string (Harness.Examples_tables.render_single_table ())

let run_f1 () =
  section "F1: estimation error vs number of joins (geo-mean est/true)";
  let seeds = if quick then [ 1; 2; 3 ] else List.init 10 (fun i -> i + 1) in
  let max_tables = if quick then 5 else 7 in
  print_string
    (Harness.Error_propagation.render
       (Harness.Error_propagation.run ~seeds ~max_tables ()))

let run_f2 () =
  section "F2: local predicate vs join selectivity (Section 5 mechanism)";
  print_string (Harness.Local_sweep.render (Harness.Local_sweep.run ()))

let run_f3 () =
  section "F3: plan quality on random chain queries";
  let seeds = if quick then [ 1; 2 ] else List.init 5 (fun i -> i + 1) in
  let rows = Harness.Plan_quality.run ~seeds () in
  print_string (Harness.Plan_quality.render rows);
  print_endline "geo-mean work ratio per algorithm (1.0 = best plan found):";
  List.iter
    (fun (algo, geo) -> Printf.printf "  %-8s %.3f\n" algo geo)
    (Harness.Plan_quality.summarize rows)

let run_f5 () =
  section "F5: join-order enumerators (DP vs greedy vs randomized) under ELS";
  let seeds = if quick then [ 1; 2 ] else List.init 5 (fun i -> i + 1) in
  print_string (Harness.Enumerators.render (Harness.Enumerators.run ~seeds ()))

let run_f4 () =
  section "F4: skewed (Zipf) local predicates — uniform vs histogram vs MCV";
  print_string (Harness.Skew_accuracy.render (Harness.Skew_accuracy.run ()))

let run_f7 () =
  section "F7: uniformity-assumption limits on skewed join columns";
  let thetas = if quick then [ 0.; 1.0 ] else [ 0.; 0.5; 1.0; 1.5 ] in
  print_string (Harness.Skew_join.render (Harness.Skew_join.run ~thetas ()))

let run_f6 () =
  section "F6: q-error study over mixed random workloads";
  let seeds = if quick then [ 1; 2; 3 ] else List.init 8 (fun i -> i + 1) in
  print_string (Harness.Accuracy.render (Harness.Accuracy.run ~seeds ()))

(* F8: the tentpole measurement — DP-style enumeration over all 2ⁿ
   left-deep prefixes, comparing the retained list-scan estimation path
   (explicit joined-table lists, full working-conjunction scans, no memo
   caches) against the indexed bitset hot path (per-table predicate index,
   O(1) membership, memoized class selectivities). Both enumerate the same
   states and must agree on the full-join size bit-for-bit. *)
let run_f8 () =
  section "F8: DP-enumeration hot path — indexed bitset vs list-scan baseline";
  let sizes = if quick then [ 12 ] else [ 12; 14; 16 ] in
  Printf.printf "%-4s %10s %12s %8s  %16s %14s\n" "n" "scan (s)" "indexed (s)"
    "speedup" "cache hit/miss" "scans avoided";
  List.iter
    (fun n ->
      let chain =
        Datagen.Workload.chain ~rows_range:(100, 300) ~distinct_range:(20, 100)
          ~seed:1 ~n_tables:n ()
      in
      (* [~kernel:false]: this experiment measures the {e interpreted}
         indexed path against the scan baseline; the compiled tier has its
         own experiment (F12). *)
      let profile =
        Els.prepare ~kernel:false Els.Config.els chain.Datagen.Workload.db
          chain.Datagen.Workload.query
      in
      let names = Array.of_list chain.Datagen.Workload.query.Query.tables in
      let full = (1 lsl n) - 1 in
      let by_size = Array.make (n + 1) [] in
      for mask = full downto 1 do
        let c = Rel.Bits.popcount mask in
        by_size.(c) <- mask :: by_size.(c)
      done;
      (* Baseline: joined-table string lists + per-step conjunction scans. *)
      let t0 = Unix.gettimeofday () in
      let states = Array.make (full + 1) None in
      for i = 0 to n - 1 do
        states.(1 lsl i) <-
          Some
            ( [ names.(i) ],
              (Els.Profile.table profile names.(i)).Els.Profile.rows )
      done;
      for size = 1 to n - 1 do
        List.iter
          (fun mask ->
            match states.(mask) with
            | None -> ()
            | Some (joined, rows) ->
              for i = 0 to n - 1 do
                if mask land (1 lsl i) = 0 then begin
                  let next = names.(i) in
                  let s =
                    Els.Incremental.step_selectivity_scan profile joined next
                  in
                  let rows' =
                    rows
                    *. (Els.Profile.table profile next).Els.Profile.rows
                    *. s
                  in
                  let mask' = mask lor (1 lsl i) in
                  if states.(mask') = None then
                    states.(mask') <- Some (joined @ [ next ], rows')
                end
              done)
          by_size.(size)
      done;
      let scan_s = Unix.gettimeofday () -. t0 in
      (* Indexed: bitset states, index probes, memoized selectivities. *)
      Els.Profile.reset_cache_stats profile;
      let t1 = Unix.gettimeofday () in
      let istates = Array.make (full + 1) None in
      for i = 0 to n - 1 do
        istates.(1 lsl i) <- Some (Els.Incremental.start profile names.(i))
      done;
      for size = 1 to n - 1 do
        List.iter
          (fun mask ->
            match istates.(mask) with
            | None -> ()
            | Some st ->
              for i = 0 to n - 1 do
                if mask land (1 lsl i) = 0 then begin
                  let mask' = mask lor (1 lsl i) in
                  let st' = Els.Incremental.extend profile st names.(i) in
                  if istates.(mask') = None then istates.(mask') <- Some st'
                end
              done)
          by_size.(size)
      done;
      let idx_s = Unix.gettimeofday () -. t1 in
      (match (states.(full), istates.(full)) with
      | Some (_, a), Some st when Float.equal a st.Els.Incremental.size -> ()
      | _ -> failwith "F8: scan and indexed paths disagree on the full join");
      let stats = Els.Profile.cache_stats profile in
      Printf.printf "%-4d %10.3f %12.3f %7.1fx  %16s %14d\n" n scan_s idx_s
        (scan_s /. idx_s)
        (Printf.sprintf "%d/%d"
           (stats.Els.Profile.sel_hits + stats.Els.Profile.group_hits)
           (stats.Els.Profile.sel_misses + stats.Els.Profile.group_misses))
        stats.Els.Profile.scans_avoided)
    sizes

(* F12: the compiled-kernel tier — the same DP-style enumeration over all
   2ⁿ left-deep prefixes as F8, comparing the interpreted indexed path
   (Incremental.extend on a [~kernel:false] profile: state records,
   eligible-id lists, assoc grouping, memo-cache probes) against the
   compiled kernel (Kernel.extend_into over a flat float array of sizes:
   int masks in, floats out, zero minor-heap allocation per step). Both
   walk the same states in the same order and must agree on the full-join
   size bit-for-bit; the allocation claim is measured via Gc.minor_words
   and the run fails if the kernel path allocates. *)
let run_f12 () =
  section "F12: DP-enumeration hot path — compiled kernel vs indexed path";
  let sizes = if quick then [ 12 ] else [ 12; 14; 16 ] in
  let registry = Obs.Metrics.create () in
  Printf.printf "%-4s %12s %11s %8s %12s %16s\n" "n" "indexed (s)"
    "kernel (s)" "speedup" "steps" "words/step";
  let failures = ref 0 in
  List.iter
    (fun n ->
      let chain =
        Datagen.Workload.chain ~rows_range:(100, 300) ~distinct_range:(20, 100)
          ~seed:1 ~n_tables:n ()
      in
      let db = chain.Datagen.Workload.db in
      let query = chain.Datagen.Workload.query in
      let indexed_profile = Els.prepare ~kernel:false Els.Config.els db query in
      let kernel_profile = Els.prepare Els.Config.els db query in
      let kernel =
        match Els.Profile.kernel kernel_profile with
        | Some k -> k
        | None -> failwith "F12: ELS profile has no compiled kernel"
      in
      let names = Array.of_list query.Query.tables in
      let full = (1 lsl n) - 1 in
      let by_size = Array.make (n + 1) [] in
      for mask = full downto 1 do
        let c = Rel.Bits.popcount mask in
        by_size.(c) <- mask :: by_size.(c)
      done;
      (* Indexed interpreter: state records, first write per mask wins. *)
      let t0 = Unix.gettimeofday () in
      let istates = Array.make (full + 1) None in
      for i = 0 to n - 1 do
        istates.(1 lsl i) <-
          Some (Els.Incremental.start indexed_profile names.(i))
      done;
      for size = 1 to n - 1 do
        List.iter
          (fun mask ->
            match istates.(mask) with
            | None -> ()
            | Some st ->
              for i = 0 to n - 1 do
                if mask land (1 lsl i) = 0 then begin
                  let mask' = mask lor (1 lsl i) in
                  let st' =
                    Els.Incremental.extend indexed_profile st names.(i)
                  in
                  if istates.(mask') = None then istates.(mask') <- Some st'
                end
              done)
          by_size.(size)
      done;
      let idx_s = Unix.gettimeofday () -. t0 in
      (* Compiled kernel: one flat float array indexed by mask, NaN =
         not reached yet; the same traversal, so the same first write
         lands in each slot. Plain nested loops over mask arrays — the
         enumeration itself must not allocate either, or the audit below
         would blame the kernel for the harness's closures. *)
      let by_size_arr = Array.map Array.of_list by_size in
      let enumerate sizes_arr =
        Array.fill sizes_arr 0 (full + 1) Float.nan;
        for i = 0 to n - 1 do
          Els.Kernel.start_into kernel ~sizes:sizes_arr ~bit:i
        done;
        for size = 1 to n - 1 do
          let masks = by_size_arr.(size) in
          for j = 0 to Array.length masks - 1 do
            let mask = masks.(j) in
            if not (Float.is_nan sizes_arr.(mask)) then
              for i = 0 to n - 1 do
                if
                  mask land (1 lsl i) = 0
                  && Float.is_nan sizes_arr.(mask lor (1 lsl i))
                then
                  Els.Kernel.extend_into kernel ~sizes:sizes_arr ~mask ~bit:i
              done
          done
        done
      in
      let ksizes = Array.make (full + 1) Float.nan in
      enumerate ksizes (* warmup: fault in code paths before timing *);
      let steps0 = Els.Kernel.steps kernel in
      let t1 = Unix.gettimeofday () in
      enumerate ksizes;
      let ker_s = Unix.gettimeofday () -. t1 in
      let steps = Els.Kernel.steps kernel - steps0 in
      (* Allocation audit: an empty Gc.minor_words window measures the
         sampling overhead (the boxed float the call itself returns); a
         third enumeration must add exactly nothing on top of it. *)
      let w0 = Gc.minor_words () in
      let w1 = Gc.minor_words () in
      let overhead = w1 -. w0 in
      let w2 = Gc.minor_words () in
      enumerate ksizes;
      let w3 = Gc.minor_words () in
      let alloc_words = w3 -. w2 -. overhead in
      let words_per_step = alloc_words /. float_of_int steps in
      (match (istates.(full), ksizes.(full)) with
      | Some st, k when Float.equal st.Els.Incremental.size k -> ()
      | _ ->
        failwith "F12: kernel and indexed paths disagree on the full join");
      let label suffix = Printf.sprintf "f12.n%d.%s" n suffix in
      Obs.Metrics.set (Obs.Metrics.gauge registry (label "speedup"))
        (idx_s /. ker_s);
      Obs.Metrics.set_counter
        (Obs.Metrics.counter registry (label "kernel_steps"))
        steps;
      Obs.Metrics.set
        (Obs.Metrics.gauge registry (label "alloc_words_per_step"))
        words_per_step;
      Printf.printf "%-4d %12.3f %11.3f %7.1fx %12d %16.6f\n" n idx_s ker_s
        (idx_s /. ker_s) steps words_per_step;
      (* Bytecode boxes every float, so the zero-allocation claim is only
         a native-code property — exactly like the unit test asserts. *)
      if Sys.backend_type = Sys.Native && alloc_words <> 0. then begin
        Printf.printf
          "FAIL: kernel enumeration allocated %.0f minor words (want 0)\n"
          alloc_words;
        incr failures
      end)
    sizes;
  Format.printf "%a" Obs.Metrics.pp (Obs.Metrics.snapshot registry);
  if !failures > 0 then exit 1

(* F10: the estimator seam made visible — one row per registered
   estimator over the Section 8 workload, straight from
   Els.Estimator.registry. *)
let run_f10 () =
  section "F10: estimator panel over the Section 8 workload";
  let scale = if quick then 20 else 10 in
  print_string (Harness.Estimator_panel.render (Harness.Estimator_panel.run ~scale ()))

(* F14: inequality and band joins — estimated (histogram-CDF convolution)
   vs executed (generalized sort-merge) across the estimator registry.
   Every scenario overlaps by construction, so a non-finite q-error is a
   failure. *)
let run_f14 () =
  section "F14: inequality/band join panel — estimate vs executed truth";
  let rows = Harness.Ineq_panel.run () in
  print_string (Harness.Ineq_panel.render rows);
  if not (Harness.Ineq_panel.pass rows) then begin
    print_endline "F14 FAILED: non-finite q-error in the panel";
    exit 1
  end

(* F16: the degree-statistics family — per-estimator q-error against the
   executed truth on a key-join chain, a Zipf-skewed star and the Section
   8 workload. Every scenario is non-empty by construction, so a
   non-finite q-error is a failure. *)
let run_f16 () =
  section "F16: degree-statistics estimators — bound quality vs truth";
  let scale = if quick then 50 else 10 in
  let rows = Harness.Bound_panel.run ~scale () in
  print_string (Harness.Bound_panel.render rows);
  if not (Harness.Bound_panel.pass rows) then begin
    print_endline "F16 FAILED: non-finite q-error in the panel";
    exit 1
  end

(* F11: the budget subsystem under load. Three legs: (a) exact DP on an
   n=14 chain under a 1 ms wall-clock deadline must still return a valid
   plan by degrading down the anytime ladder; (b) a node-budget sweep on
   the same query shows the chosen cost improving monotonically as the
   budget grows; (c) a randomized soak smoke crossing workloads ×
   corruption × budgets. *)
let run_f11 () =
  section "F11: deadline/budget soak — anytime ladder and chaos harness";
  let n = if quick then 12 else 14 in
  let chain =
    Datagen.Workload.chain ~rows_range:(100, 300) ~distinct_range:(20, 100)
      ~seed:1 ~n_tables:n ()
  in
  let db = chain.Datagen.Workload.db in
  let query = chain.Datagen.Workload.query in
  let profile = Els.prepare Els.Config.els db query in
  (* (a) 1 ms deadline on exact DP over n tables. *)
  let budget = Rel.Budget.create ~deadline_ms:1. () in
  let t0 = Unix.gettimeofday () in
  let node, prov = Optimizer.Dp.optimize_traced ~budget profile query in
  let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Printf.printf
    "1 ms deadline, n=%d: %s in %.1f ms, cost %.4g (%d rows est)\n" n
    (Optimizer.Provenance.to_string prov)
    elapsed_ms node.Optimizer.Dp.cost
    (int_of_float node.Optimizer.Dp.state.Els.Incremental.size);
  (* (b) node-budget sweep: cost must be non-increasing down the rows. *)
  Printf.printf "\nnode-budget sweep (same query):\n";
  Printf.printf "%-10s %-42s %14s\n" "budget" "provenance" "cost";
  List.iter
    (fun node_budget ->
      let budget = Rel.Budget.create ?node_budget () in
      let node, prov = Optimizer.Dp.optimize_traced ~budget profile query in
      Printf.printf "%-10s %-42s %14.6g\n"
        (match node_budget with
        | None -> "unlimited"
        | Some n -> string_of_int n)
        (Optimizer.Provenance.to_string prov)
        node.Optimizer.Dp.cost)
    [ Some 20; Some 200; Some 2_000; Some 20_000; None ];
  (* (c) randomized soak smoke. *)
  let iters = if quick then 50 else 200 in
  Printf.printf "\n%s" (Harness.Soak.render (Harness.Soak.run ~iters ()))

(* F13: the versioned catalog under churn. Two legs: (a) the churn soak
   itself — epoch swaps, partitioned re-ANALYZEs, staged corruption,
   quarantine ladder, torn-read probe for pinned readers; (b) bulk
   ANALYZE vs merged partitioned ANALYZE over identical data — the
   estimates the two catalogs produce for the F9 chain query must
   agree. *)
let run_f13 () =
  section "F13: catalog churn — epoch snapshots and mergeable statistics";
  let iters = if quick then 40 else 120 in
  print_string (Harness.Churn.render (Harness.Churn.run ~iters ()));
  let base = Harness.Fault.base_db () in
  let query =
    match Sqlfront.Binder.compile base Harness.Fault.default_sql with
    | Ok q -> q
    | Error msg -> failwith msg
  in
  let order = query.Query.tables in
  let shards_of rel n =
    let buckets = Array.make n [] in
    List.iteri
      (fun i t -> buckets.(i mod n) <- t :: buckets.(i mod n))
      (Rel.Relation.to_list rel);
    Array.to_list
      (Array.map
         (fun ts ->
           Rel.Relation.of_tuples (Rel.Relation.schema rel) (List.rev ts))
         buckets)
  in
  let bulk_db = Catalog.Db.create () in
  let shard_db = Catalog.Db.create () in
  List.iter
    (fun (t : Catalog.Table.t) ->
      let name = t.Catalog.Table.name in
      let rel = Catalog.Db.relation_exn base name in
      Catalog.Db.add bulk_db
        (Catalog.Analyze.table ~histogram:Stats.Histogram.Equi_depth ~mcv:5
           ~name rel);
      Catalog.Db.add shard_db
        (Catalog.Analyze.partitions ~histogram:Stats.Histogram.Equi_depth
           ~mcv:5 ~name (shards_of rel 4)))
    (Catalog.Db.tables base);
  let est_bulk = Els.estimate Els.Config.els bulk_db query order in
  let est_shard = Els.estimate Els.Config.els shard_db query order in
  Printf.printf
    "\nbulk vs 4-shard partitioned ANALYZE (F9 chain query): %.6g vs %.6g \
     (ratio %.4f)\n"
    est_bulk est_shard
    (if est_bulk = 0. then Float.nan else est_shard /. est_bulk)

(* --- bechamel micro-benchmarks: one Test.make per experiment --- *)

let micro_tests () =
  let open Bechamel in
  (* Shared inputs, built once so the benchmarks measure the algorithms,
     not data generation. *)
  let s8_scale = if quick then 50 else 10 in
  let s8_db = Datagen.Section8.build ~scale:s8_scale ~seed:1 () in
  let s8_query = Datagen.Section8.query_scaled ~scale:s8_scale in
  let chain = Datagen.Workload.chain ~seed:3 ~n_tables:6 () in
  let chain_db = chain.Datagen.Workload.db in
  let chain_q = chain.Datagen.Workload.query in
  let chain_order = chain_q.Query.tables in
  let sweep_db, sweep_q =
    let rng = Datagen.Prng.create 7 in
    let db = Catalog.Db.create () in
    ignore
      (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r1"
         ~rows:2000
         [ Datagen.Tablegen.key_column "x" ~rows:2000 ]);
    ignore
      (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r2"
         ~rows:1000
         [ Datagen.Tablegen.column "y" ~distinct:100 ]);
    ( db,
      Query.make ~tables:[ "r1"; "r2" ]
        [
          Query.Predicate.col_eq (Query.Cref.v "r1" "x")
            (Query.Cref.v "r2" "y");
          Query.Predicate.cmp (Query.Cref.v "r1" "x") Rel.Cmp.Le
            (Rel.Value.Int 200);
        ] )
  in
  Test.make_grouped ~name:"elsdb"
    [
      Test.make ~name:"t1/optimize+execute"
        (Staged.stage (fun () ->
             let choice = Optimizer.choose Els.Config.els s8_db s8_query in
             Exec.Executor.count s8_db choice.Optimizer.plan));
      Test.make ~name:"e1/three-rules"
        (Staged.stage (fun () -> Harness.Examples_tables.rules_table ()));
      Test.make ~name:"s5/urn-model"
        (Staged.stage (fun () ->
             Stats.Urn.expected_distinct ~urns:10000. ~balls:50000.));
      Test.make ~name:"s6/profile-build"
        (Staged.stage (fun () ->
             Harness.Examples_tables.single_table_numbers ()));
      Test.make ~name:"f1/chain-estimate"
        (Staged.stage (fun () ->
             Els.estimate Els.Config.els chain_db chain_q chain_order));
      Test.make ~name:"f2/local-aware-estimate"
        (Staged.stage (fun () ->
             Els.estimate Els.Config.els sweep_db sweep_q [ "r1"; "r2" ]));
      Test.make ~name:"f3/dp-optimize"
        (Staged.stage (fun () ->
             Optimizer.choose Els.Config.els chain_db chain_q));
      Test.make ~name:"f4/mcv-build"
        (Staged.stage
           (let rng = Datagen.Prng.create 13 in
            let values =
              Array.map
                (fun v -> Rel.Value.Int v)
                (Datagen.Distribution.generate (Datagen.Distribution.Zipf 1.2)
                   rng ~rows:10000 ~distinct:500)
            in
            fun () -> Stats.Mcv.build ~k:50 values));
    ]

let run_micro () =
  section "Micro-benchmarks (bechamel; ns per run, OLS fit)";
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if quick then 0.25 else 0.75))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let estimate =
          match Analyze.OLS.estimates ols_result with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | Some _ | None -> "-"
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "-"
        in
        [ name; estimate; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  print_string
    (Harness.Report.table ~header:[ "benchmark"; "ns/run"; "r2" ] rows)

let () =
  let experiments =
    [
      ("t1", run_t1); ("t1-ablation", run_t1_ablation); ("e1", run_e1);
      ("s5", run_s5); ("s6", run_s6); ("f1", run_f1); ("f2", run_f2);
      ("f3", run_f3); ("f4", run_f4); ("f5", run_f5); ("f6", run_f6);
      ("f7", run_f7); ("f8", run_f8); ("f10", run_f10); ("f11", run_f11);
      ("f12", run_f12); ("f13", run_f13); ("f14", run_f14);
      ("f16", run_f16); ("micro", run_micro);
    ]
  in
  List.iter (fun (id, run) -> if wants id then run ()) experiments;
  print_newline ();
  print_endline "All experiments completed."
