(* elsdb — command-line front end.

   Subcommands:
     section8   reproduce the paper's Section 8 experiment
     estimate   estimate join sizes for a SQL query under each algorithm
     explain    show the plan an algorithm's estimates lead to
     run        optimize, execute and report work counters
     closure    print the transitive closure of a query's predicates
     analyze    print or audit (--check) the catalog statistics
     fault      run the fault-injection suite (experiment F9)
     soak       run the randomized soak/chaos harness (experiment F11)
     churn      run the catalog-churn soak (experiment F13)
     serve      long-running estimation service (ndjson protocol)
     serve-chaos     protocol-level chaos against the service (F15)
     check-metrics   validate a --metrics json snapshot from stdin

   Exit codes are uniform across subcommands: 0 success, 1 runtime
   failure (corrupt statistics, invariant breach, exhausted budget, shed
   request, failed suite, I/O error), 2 usage error (bad flags, bad SQL,
   unknown table/estimator/format). Never a backtrace.

   estimate/explain/run accept --trace[=pretty|json] (hierarchical spans
   over bind → validate → profile → optimize → execute) and
   --metrics=text|json (the unified Obs.Metrics snapshot). explain always
   prints the estimate derivation card; with --trace=json the derivation
   is embedded in the trace object.

   explain/run accept --deadline-ms/--node-budget/--row-budget: one
   budget spans the whole invocation, so the optimizer degrades down its
   anytime ladder and the executor cancels cooperatively when it trips.

   estimate/explain/run accept --estimator=m|ss|ls|pess|lp2|degseq|ent
   (any id in
   Els.Estimator.registry) to select a single combining rule; unknown
   names exit 2 with a did-you-mean suggestion.

   Built-in databases (--db):
     section8[:SCALE]   the paper's S/M/B/G tables (default scale 10)
     chain:N            a random N-table chain workload
     star:N             a fact table with N dimensions *)

open Cmdliner

let db_of_string spec =
  let parts = String.split_on_char ':' spec in
  match parts with
  | [ "section8" ] ->
    Ok (Datagen.Section8.build ~scale:10 ~seed:42 (), None)
  | [ "section8"; scale ] -> begin
    match int_of_string_opt scale with
    | Some scale when scale >= 1 ->
      Ok (Datagen.Section8.build ~scale ~seed:42 (), None)
    | Some _ | None -> Error "section8 scale must be a positive integer"
  end
  | [ "chain"; n ] -> begin
    match int_of_string_opt n with
    | Some n when n >= 2 ->
      let spec = Datagen.Workload.chain ~seed:42 ~n_tables:n () in
      Ok (spec.Datagen.Workload.db, Some spec.Datagen.Workload.query)
    | Some _ | None -> Error "chain needs at least 2 tables"
  end
  | [ "star"; n ] -> begin
    match int_of_string_opt n with
    | Some n when n >= 1 ->
      let spec = Datagen.Workload.star ~seed:42 ~n_dims:n () in
      Ok (spec.Datagen.Workload.db, Some spec.Datagen.Workload.query)
    | Some _ | None -> Error "star needs at least 1 dimension"
  end
  | "csv" :: paths when paths <> [] -> begin
    (* csv:PATH[:PATH...] — one table per file, named by basename. *)
    match
      let db = Catalog.Db.create () in
      List.iter
        (fun path ->
          let table =
            Filename.remove_extension (Filename.basename path)
            |> String.lowercase_ascii
          in
          ignore
            (Catalog.Analyze.register db ~name:table
               (Rel.Csv.relation_of_file ~table path)))
        paths;
      db
    with
    | db -> Ok (db, None)
    | exception Sys_error msg -> Error msg
    | exception Invalid_argument msg -> Error msg
  end
  | _ -> Error (Printf.sprintf "unknown database spec %S" spec)

let db_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (db_of_string s) in
  let print ppf _ = Format.pp_print_string ppf "<db>" in
  Arg.(
    value
    & opt (conv (parse, print)) (Result.get_ok (db_of_string "section8"))
    & info [ "db" ] ~docv:"DB"
        ~doc:
          "Database: section8[:SCALE], chain:N, star:N, or \
           csv:FILE[:FILE...] (one table per file, named by basename).")

let sql_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sql" ] ~docv:"SQL"
        ~doc:"Query text; defaults to the database's canonical query.")

let algo_of_string = function
  | "sm" -> Ok (Els.Config.sm ~ptc:false)
  | "sm+ptc" -> Ok (Els.Config.sm ~ptc:true)
  | "sss" -> Ok Els.Config.sss
  | "els" -> Ok Els.Config.els
  | s -> Error (Printf.sprintf "unknown algorithm %S (sm, sm+ptc, sss, els)" s)

let algo_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (algo_of_string s) in
  let print ppf c = Format.pp_print_string ppf (Els.Config.name c) in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"Estimation algorithm: sm, sm+ptc, sss, els (default els).")

(* Resolved lazily (inside handle_errors) so an unknown name takes the
   one-line exit-2 error path with Estimator.of_string's did-you-mean
   message, not cmdliner's usage dump. *)
let estimator_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "estimator" ] ~docv:"EST"
        ~doc:
          "Estimator: m, ss, ls, pess, or the degree-statistics family \
           lp2, degseq, ent (any estimator registered in \
           the core registry).")

let resolve_estimator = Option.map Els.Estimator.of_string_exn

(* [--estimator] alone selects that estimator's canonical configuration;
   combined with [--algo] it swaps the combining rule on that algorithm's
   pipeline (closure/local/single-table stay the algorithm's). *)
let resolve_config algo estimator =
  match (algo, resolve_estimator estimator) with
  | None, None -> Els.Config.els
  | Some config, None -> config
  | None, Some e -> Els.Config.of_estimator e
  | Some config, Some e -> Els.Config.with_estimator e config

let enumerator_arg =
  let parse = function
    | "dp" -> Ok Optimizer.Exhaustive
    | "greedy" -> Ok Optimizer.Greedy_order
    | "random" -> Ok (Optimizer.Randomized 1)
    | s -> Error (`Msg (Printf.sprintf "unknown enumerator %S (dp, greedy, random)" s))
  in
  let print ppf e =
    Format.pp_print_string ppf
      (match e with
      | Optimizer.Exhaustive -> "dp"
      | Optimizer.Greedy_order -> "greedy"
      | Optimizer.Randomized _ -> "random")
  in
  Arg.(
    value
    & opt (conv (parse, print)) Optimizer.Exhaustive
    & info [ "enumerator" ] ~docv:"ENUM"
        ~doc:"Join-order enumerator: dp (exhaustive), greedy, or random.")

(* --- resource budget flags (explain/run) --- *)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock deadline in milliseconds for the whole invocation; \
           the optimizer degrades anytime-style, execution cancels.")

let node_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-budget" ] ~docv:"N"
        ~doc:
          "Maximum optimizer node expansions before the enumerator \
           degrades down its anytime ladder.")

let row_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "row-budget" ] ~docv:"N"
        ~doc:
          "Maximum executor rows (tuples read + emitted) before execution \
           cancels with a budget-exhausted error.")

let resolve_budget deadline_ms node_budget row_budget =
  match (deadline_ms, node_budget, row_budget) with
  | None, None, None -> None
  | _ ->
    Some (Rel.Budget.create ?deadline_ms ?node_budget ?row_budget ())

(* --- observability flags (estimate/explain/run) --- *)

let trace_arg =
  Arg.(
    value
    & opt ~vopt:(Some "pretty") (some string) None
    & info [ "trace" ] ~docv:"FMT"
        ~doc:
          "Record trace spans over the pipeline (bind → validate → profile \
           → optimize → execute) and print them as $(docv): pretty \
           (default) or json.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FMT"
        ~doc:
          "Print the unified metrics snapshot (profile caches, guard \
           counters, catalog issues, budget usage, executor work, \
           optimizer provenance) as $(docv): text or json.")

let resolve_trace = function
  | None -> (None, `Off)
  | Some "pretty" -> (Some (Obs.Trace.create ()), `Pretty)
  | Some "json" -> (Some (Obs.Trace.create ()), `Json)
  | Some other ->
    invalid_arg (Printf.sprintf "unknown trace format %S (pretty, json)" other)

let resolve_metrics = function
  | None -> (None, `Off)
  | Some "text" -> (Some (Obs.Metrics.create ()), `Text)
  | Some "json" -> (Some (Obs.Metrics.create ()), `Json)
  | Some other ->
    invalid_arg (Printf.sprintf "unknown metrics format %S (text, json)" other)

(* [extra] carries sibling JSON fields (the derivation) so [--trace json]
   emits one self-contained object. *)
let print_trace ?(extra = []) mode tracer =
  match (mode, tracer) with
  | `Off, _ | _, None -> ()
  | `Pretty, Some t -> Format.printf "@.trace:@.%a" Obs.Trace.pp t
  | `Json, Some t ->
    let json =
      match Obs.Trace.to_json t with
      | Obs.Json.Obj fields -> Obs.Json.Obj (fields @ extra)
      | other -> other
    in
    print_endline (Obs.Json.to_string json)

let print_metrics mode registry =
  match (mode, registry) with
  | `Off, _ | _, None -> ()
  | `Text, Some m ->
    Format.printf "@.metrics:@.%a" Obs.Metrics.pp (Obs.Metrics.snapshot m)
  | `Json, Some m ->
    print_endline
      (Obs.Json.to_string (Obs.Metrics.to_json (Obs.Metrics.snapshot m)))

let resolve_query (db, default_query) sql =
  match sql with
  | Some text -> Sqlfront.Binder.compile db text
  | None -> begin
    match default_query with
    | Some q -> Ok q
    | None -> Ok (Datagen.Section8.query_scaled ~scale:10)
  end

(* Bad SQL is a usage error: the user asked for something the system can
   never do, so it exits 2 like any other malformed invocation. *)
let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit 2

(* The exit-code taxonomy: errors the caller can fix by changing the
   invocation (bad query, unknown name, missing statistics) are usage
   errors (2); errors that arise from the system's state at runtime
   (corrupt statistics, invariant breaches, exhausted budgets, shed
   requests) are runtime failures (1). *)
let exit_code_of_error = function
  | Els.Els_error.Parse_error _ | Els.Els_error.Invalid_query _
  | Els.Els_error.Missing_stats _ ->
    2
  | Els.Els_error.Corrupt_stats _ | Els.Els_error.Invariant_violation _
  | Els.Els_error.Budget_exhausted _ | Els.Els_error.Overloaded _ ->
    1

(* Every failure is a one-line message — never a backtrace. *)
let handle_errors f =
  match f () with
  | () -> ()
  | exception Els.Els_error.Error e ->
    Printf.eprintf "error: %s\n" (Els.Els_error.to_string e);
    exit (exit_code_of_error e)
  | exception Invalid_argument msg | exception Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1

(* --- section8 --- *)

let section8_cmd =
  let scale =
    Arg.(
      value & opt int 10
      & info [ "scale" ] ~docv:"N" ~doc:"Divide the paper's table sizes by $(docv).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let run scale seed =
    handle_errors @@ fun () ->
    let rows = Harness.Section8_experiment.run ~scale ~seed () in
    print_string (Harness.Section8_experiment.render rows)
  in
  Cmd.v
    (Cmd.info "section8" ~doc:"Reproduce the paper's Section 8 experiment.")
    Term.(const run $ scale $ seed)

(* --- estimate --- *)

let estimate_cmd =
  let run dbspec sql estimator trace_fmt metrics_fmt =
    handle_errors @@ fun () ->
    let db, _ = dbspec in
    let tracer, trace_mode = resolve_trace trace_fmt in
    let registry, metrics_mode = resolve_metrics metrics_fmt in
    let query =
      Obs.Trace.with_span tracer "bind" @@ fun () ->
      or_die (resolve_query dbspec sql)
    in
    Printf.printf "query: %s\n\n" (Query.to_string query);
    let order = query.Query.tables in
    let configs =
      match resolve_estimator estimator with
      | Some e -> [ Els.Config.of_estimator e ]
      | None ->
        (* The full panel: plain SM, then every registered estimator's
           canonical configuration. *)
        Els.Config.sm ~ptc:false :: Els.Config.panel ()
    in
    List.iter
      (fun config ->
        let profile = Els.prepare ?trace:tracer config db query in
        let history =
          Els.Incremental.history (Els.Incremental.estimate_order profile order)
        in
        Option.iter
          (fun m -> Harness.Obs_report.absorb_profile m profile)
          registry;
        Printf.printf "%-8s along %s: %s\n"
          (Els.Config.name config)
          (String.concat " ⋈ " order)
          (Harness.Report.size_list history))
      configs;
    print_trace trace_mode tracer;
    print_metrics metrics_mode registry
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Estimate intermediate join sizes under every registered \
          estimator (or just one, with --estimator).")
    Term.(
      const run $ db_arg $ sql_arg $ estimator_arg $ trace_arg $ metrics_arg)

(* --- explain --- *)

let explain_cmd =
  let run dbspec sql algo enumerator estimator deadline_ms node_budget
      row_budget trace_fmt metrics_fmt =
    handle_errors @@ fun () ->
    let db, _ = dbspec in
    let tracer, trace_mode = resolve_trace trace_fmt in
    let registry, metrics_mode = resolve_metrics metrics_fmt in
    let query =
      Obs.Trace.with_span tracer "bind" @@ fun () ->
      or_die (resolve_query dbspec sql)
    in
    let config = resolve_config algo estimator in
    let budget = resolve_budget deadline_ms node_budget row_budget in
    let choice =
      Optimizer.choose ~enumerator ?budget ?trace:tracer config db query
    in
    Optimizer.explain Format.std_formatter choice;
    Option.iter
      (fun b -> Format.printf "budget: %a@." Rel.Budget.pp b)
      budget;
    (* Derivation card: replay the chosen order with a sink attached. The
       re-walk reuses the profile's memo caches, so every number printed is
       the number the optimizer used. *)
    let deriv = Obs.Derivation.create () in
    let profile = choice.Optimizer.profile in
    Els.Profile.set_derivation profile (Some deriv);
    (* The replay can raise (a guard trip under Trap strictness replays
       differently than the optimizer's guarded pass, a budget-degraded
       plan can carry a partial order): always detach the sink — a profile
       left wearing it would record every later estimation step — and
       still print whatever partial card was captured before the trip. *)
    (match
       Fun.protect
         ~finally:(fun () -> Els.Profile.set_derivation profile None)
         (fun () ->
           match choice.Optimizer.join_order with
           | [] -> ()
           | order ->
             ignore
               (Obs.Trace.with_span tracer "derive" @@ fun () ->
                Els.Incremental.estimate_order profile order))
     with
    | () -> ()
    | exception Els.Els_error.Error e ->
      Format.printf "derivation replay stopped: %s@."
        (Els.Els_error.to_string e));
    Format.printf "%a" Obs.Derivation.pp_card deriv;
    Option.iter
      (fun m ->
        Harness.Obs_report.absorb_choice m choice;
        Option.iter (Harness.Obs_report.absorb_budget m) budget)
      registry;
    print_trace trace_mode tracer
      ~extra:[ ("derivation", Obs.Derivation.to_json deriv) ];
    print_metrics metrics_mode registry
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the plan the chosen algorithm leads to.")
    Term.(
      const run $ db_arg $ sql_arg $ algo_arg $ enumerator_arg
      $ estimator_arg $ deadline_arg $ node_budget_arg $ row_budget_arg
      $ trace_arg $ metrics_arg)

(* --- run --- *)

let run_cmd =
  let run dbspec sql algo estimator deadline_ms node_budget row_budget
      trace_fmt metrics_fmt =
    handle_errors @@ fun () ->
    let db, _ = dbspec in
    let tracer, trace_mode = resolve_trace trace_fmt in
    let registry, metrics_mode = resolve_metrics metrics_fmt in
    let query =
      Obs.Trace.with_span tracer "bind" @@ fun () ->
      or_die (resolve_query dbspec sql)
    in
    let config = resolve_config algo estimator in
    let budget = resolve_budget deadline_ms node_budget row_budget in
    let trial = Harness.Runner.run ?budget ?trace:tracer config db query in
    Printf.printf "algorithm:  %s\n" trial.Harness.Runner.algorithm;
    Printf.printf "provenance: %s\n"
      (Optimizer.Provenance.to_string trial.Harness.Runner.provenance);
    Printf.printf "join order: %s\n"
      (String.concat " ⋈ " trial.Harness.Runner.join_order);
    Printf.printf "estimates:  %s\n"
      (Harness.Report.size_list trial.Harness.Runner.estimates);
    Printf.printf "true sizes: %s\n"
      (Harness.Report.size_list trial.Harness.Runner.true_sizes);
    Printf.printf "result:     %d rows\n" trial.Harness.Runner.result_rows;
    Printf.printf "work:       %d tuples (%.3fs)\n" trial.Harness.Runner.work
      trial.Harness.Runner.elapsed_s;
    Option.iter
      (fun m ->
        Harness.Obs_report.absorb_trial m trial;
        Option.iter (Harness.Obs_report.absorb_budget m) budget)
      registry;
    print_trace trace_mode tracer;
    print_metrics metrics_mode registry
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Optimize, execute and report measured work.")
    Term.(
      const run $ db_arg $ sql_arg $ algo_arg $ estimator_arg $ deadline_arg
      $ node_budget_arg $ row_budget_arg $ trace_arg $ metrics_arg)

(* --- closure --- *)

let closure_cmd =
  let run dbspec sql =
    handle_errors @@ fun () ->
    let db, _ = dbspec in
    ignore db;
    let query = or_die (resolve_query dbspec sql) in
    let closed = Els.Closure.close_query query in
    Printf.printf "original: %s\n" (Query.to_string query);
    Printf.printf "closed:   %s\n" (Query.to_string closed)
  in
  Cmd.v
    (Cmd.info "closure"
       ~doc:"Print the predicate transitive closure of a query.")
    Term.(const run $ db_arg $ sql_arg)

(* --- analyze --- *)

let analyze_cmd =
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Audit the catalog instead of printing it: list every finding \
             and exit 1 when unrepaired findings remain (trap and strict \
             modes); repair mode fixes what it finds and exits 0.")
  in
  let strictness_arg =
    let parse s =
      match Catalog.Validate.strictness_of_string s with
      | Some m -> Ok m
      | None ->
        Error (`Msg (Printf.sprintf "unknown mode %S (strict, repair, trap)" s))
    in
    let print ppf m =
      Format.pp_print_string ppf (Catalog.Validate.strictness_name m)
    in
    Arg.(
      value
      & opt (conv (parse, print)) Catalog.Validate.Trap
      & info [ "strictness" ] ~docv:"MODE"
          ~doc:
            "Audit mode for --check: trap (report only, default), repair \
             (fix findings, exit 0), strict (first finding aborts).")
  in
  let run dbspec check strictness =
    handle_errors @@ fun () ->
    let db, _ = dbspec in
    if not check then
      List.iter
        (fun t -> Format.printf "%a@." Catalog.Table.pp t)
        (Catalog.Db.tables db)
    else begin
      match Catalog.Validate.validate strictness db with
      | Error issue ->
        Printf.printf "finding: %s\n" (Catalog.Validate.issue_to_string issue);
        Printf.printf "catalog audit: FAIL (strict aborts on first finding)\n";
        exit 1
      | Ok (_, []) -> print_endline "catalog audit: clean"
      | Ok (_, issues) ->
        let repaired =
          match strictness with
          | Catalog.Validate.Repair -> true
          | Catalog.Validate.Strict | Catalog.Validate.Trap -> false
        in
        List.iter
          (fun issue ->
            Printf.printf "%s: %s\n"
              (if repaired then "repaired" else "finding")
              (Catalog.Validate.issue_to_string issue))
          issues;
        if repaired then
          Printf.printf "catalog audit: %d finding(s), all repaired\n"
            (List.length issues)
        else begin
          Printf.printf "catalog audit: FAIL (%d unrepaired finding(s))\n"
            (List.length issues);
          exit 1
        end
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Print the catalog's per-table statistics, or audit the whole \
          catalog with --check (exit 1 when unrepaired findings remain).")
    Term.(const run $ db_arg $ check_arg $ strictness_arg)

(* --- fault --- *)

let fault_cmd =
  let strictness_arg =
    let parse s =
      match Catalog.Validate.strictness_of_string s with
      | Some m -> Ok (Some m)
      | None ->
        Error (`Msg (Printf.sprintf "unknown mode %S (strict, repair, trap)" s))
    in
    let print ppf m =
      Format.pp_print_string ppf
        (match m with
        | None -> "all"
        | Some m -> Catalog.Validate.strictness_name m)
    in
    Arg.(
      value
      & opt (conv (parse, print)) None
      & info [ "strictness" ] ~docv:"MODE"
          ~doc:
            "Strictness mode to test: strict, repair or trap (default: all \
             three).")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let node_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "node-budget" ] ~docv:"N"
          ~doc:
            "Also cross every corruption with a fresh N-expansion \
             optimizer budget (budget trips are expected degradations).")
  in
  let run strictness seed node_budget =
    handle_errors @@ fun () ->
    let modes =
      match strictness with
      | Some m -> [ m ]
      | None ->
        [ Catalog.Validate.Strict; Catalog.Validate.Repair;
          Catalog.Validate.Trap ]
    in
    let make_budget =
      Option.map
        (fun n () -> Rel.Budget.create ~node_budget:n ())
        node_budget
    in
    let outcomes =
      List.concat_map
        (fun strictness ->
          Harness.Fault.run ~seed ?make_budget ~strictness ())
        modes
    in
    print_string (Harness.Fault.render outcomes);
    Printf.printf "budget trips: %d of %d outcomes\n"
      (Harness.Fault.budget_trips outcomes)
      (List.length outcomes);
    if Harness.Fault.all_pass outcomes then
      print_endline "fault-injection suite: PASS"
    else begin
      print_endline "fault-injection suite: FAIL";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Run the fault-injection suite (F9): corrupt the catalog in every \
          known way and assert the pipeline degrades instead of crashing.")
    Term.(const run $ strictness_arg $ seed $ node_budget)

(* --- soak --- *)

let soak_cmd =
  let iters =
    Arg.(
      value & opt int 200
      & info [ "iters" ] ~docv:"N" ~doc:"Number of randomized iterations.")
  in
  let deadline_ms =
    Arg.(
      value & opt float 5.
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Optimizer deadline used by the deadline-respect leg.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let iter_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "iter-seed" ] ~docv:"SEED"
          ~doc:
            "Replay exactly one iteration with this per-iteration seed (as \
             printed in a failure's scenario line); --iters is ignored.")
  in
  let run iters deadline_ms seed iter_seed =
    handle_errors @@ fun () ->
    let summary = Harness.Soak.run ~seed ?iter_seed ~deadline_ms ~iters () in
    print_string (Harness.Soak.render summary);
    if not (Harness.Soak.pass summary) then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run the randomized soak/chaos harness (F11): random workloads × \
          catalog corruption × resource budgets, asserting no crashes, no \
          non-finite answers, deadline respect, anytime monotonicity and \
          consistent cancellation.")
    Term.(const run $ iters $ deadline_ms $ seed $ iter_seed)

(* --- churn --- *)

let churn_cmd =
  let iters =
    Arg.(
      value & opt int 60
      & info [ "iters" ] ~docv:"N" ~doc:"Number of randomized iterations.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let run iters seed metrics_fmt =
    handle_errors @@ fun () ->
    let metrics_mode =
      match metrics_fmt with
      | None -> `Off
      | Some "text" -> `Text
      | Some "json" -> `Json
      | Some other ->
        invalid_arg
          (Printf.sprintf "unknown metrics format %S (text, json)" other)
    in
    let summary = Harness.Churn.run ~seed ~iters () in
    print_string (Harness.Churn.render summary);
    (match metrics_mode with
    | `Off -> ()
    | `Text ->
      Format.printf "@.metrics:@.%a" Obs.Metrics.pp
        summary.Harness.Churn.metrics
    | `Json ->
      (* Last stdout line, so the snapshot pipes straight into
         [check-metrics]. *)
      print_endline
        (Obs.Json.to_string
           (Obs.Metrics.to_json summary.Harness.Churn.metrics)));
    if not (Harness.Churn.pass summary) then exit 1
  in
  Cmd.v
    (Cmd.info "churn"
       ~doc:
         "Run the catalog-churn soak (F13): stream inserts/deletes through \
          a versioned catalog store, re-ANALYZE in bulk and in partitions, \
          corrupt staged statistics, and publish epochs throughout — \
          asserting no crashes, no torn reads for pinned readers, monotone \
          epoch ids, visible staleness disclosure and bounded drift \
          against a fresh bulk-ANALYZE baseline.")
    Term.(const run $ iters $ seed $ metrics_arg)

(* --- serve --- *)

let serve_cmd =
  let domains =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.domains
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains per session.")
  in
  let queue_depth =
    Arg.(
      value & opt int Serve.Server.default_config.Serve.Server.queue_depth
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Bounded admission queue depth; requests beyond it are shed \
             with a structured overloaded response.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline applied to requests that do not \
             carry their own deadline_ms field.")
  in
  let max_frame_bytes =
    Arg.(
      value
      & opt int Serve.Server.default_config.Serve.Server.max_frame_bytes
      & info [ "max-frame-bytes" ] ~docv:"N"
          ~doc:"Frames longer than $(docv) bytes are refused, not parsed.")
  in
  let drain_deadline_ms =
    Arg.(
      value
      & opt float Serve.Server.default_config.Serve.Server.drain_deadline_ms
      & info [ "drain-deadline-ms" ] ~docv:"MS"
          ~doc:"How long a drain waits for in-flight work to finish.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix-domain socket at $(docv) (one session per \
             connection) instead of serving a single stdin/stdout session.")
  in
  let run dbspec domains queue_depth deadline_ms max_frame_bytes
      drain_deadline_ms socket metrics_fmt =
    handle_errors @@ fun () ->
    let db, _ = dbspec in
    let registry, metrics_mode = resolve_metrics metrics_fmt in
    let config =
      {
        Serve.Server.default_config with
        Serve.Server.domains;
        queue_depth;
        default_deadline_ms = deadline_ms;
        max_frame_bytes;
        drain_deadline_ms;
      }
    in
    let server = Serve.Server.create ~config ?metrics:registry db in
    (* SIGTERM asks the server to drain: admission stops, in-flight work
       finishes, the process exits 0. *)
    if Sys.unix then
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Serve.Server.request_stop server));
    (match socket with
    | Some path -> Serve.Server.serve_socket server ~path
    | None ->
      let stats = Serve.Server.session server stdin stdout in
      Printf.eprintf
        "session: %d frames, %d admitted, %d ok, %d error, %d shed, %d \
         malformed, %d internal, max epoch %d%s\n"
        stats.Serve.Server.frames stats.Serve.Server.admitted
        stats.Serve.Server.answered_ok stats.Serve.Server.answered_error
        stats.Serve.Server.shed stats.Serve.Server.malformed
        stats.Serve.Server.internal_errors stats.Serve.Server.max_epoch
        (if stats.Serve.Server.disconnected then ", client disconnected"
         else ""));
    (* The registry the sessions wrote into, flushed as the last stdout
       line so it pipes straight into [check-metrics]. *)
    print_metrics metrics_mode registry
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-running estimation service: a versioned ndjson \
          protocol (estimate, explain, run, analyze, health, drain) over \
          stdin/stdout or a Unix-domain socket (--socket), with worker \
          domains, bounded admission, per-request deadlines, a per-request \
          exception firewall and graceful drain on SIGTERM.")
    Term.(
      const run $ db_arg $ domains $ queue_depth $ deadline_ms
      $ max_frame_bytes $ drain_deadline_ms $ socket $ metrics_arg)

(* --- serve-chaos --- *)

let serve_chaos_cmd =
  let sessions =
    Arg.(
      value & opt int 500
      & info [ "sessions" ] ~docv:"N" ~doc:"Number of randomized sessions.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"CI-sized run: caps --sessions at 60 (keeps every frame kind).")
  in
  let run sessions seed quick metrics_fmt =
    handle_errors @@ fun () ->
    let registry, metrics_mode = resolve_metrics metrics_fmt in
    ignore registry;
    let sessions = if quick then min sessions 60 else sessions in
    let summary = Harness.Serve_chaos.run ~seed ~sessions () in
    print_string (Harness.Serve_chaos.render summary);
    (match metrics_mode with
    | `Off -> ()
    | `Text ->
      Format.printf "@.metrics:@.%a" Obs.Metrics.pp
        summary.Harness.Serve_chaos.metrics
    | `Json ->
      (* Last stdout line, so the snapshot pipes straight into
         [check-metrics]. *)
      print_endline
        (Obs.Json.to_string
           (Obs.Metrics.to_json summary.Harness.Serve_chaos.metrics)));
    if not (Harness.Serve_chaos.pass summary) then exit 1
  in
  Cmd.v
    (Cmd.info "serve-chaos"
       ~doc:
         "Run protocol-level chaos against the estimation service (F15): \
          malformed, truncated and oversized frames, unknown protocol \
          versions, deadline storms, mid-request disconnects and \
          concurrent catalog churn against the real server loop — \
          asserting zero crashes, total structured accounting and monotone \
          epoch visibility.")
    Term.(const run $ sessions $ seed $ quick $ metrics_arg)

(* --- check-metrics --- *)

(* Schema check for the [--metrics json] output: an object with the three
   instrument sections, counters integral and non-negative, histogram
   summaries carrying numeric count/sum. Used by CI to pin the snapshot
   shape; exits 2 with the first violation otherwise. *)
let check_metrics_json json =
  let ( let* ) = Result.bind in
  let* fields =
    match json with
    | Obs.Json.Obj fields -> Ok fields
    | _ -> Error "top level is not an object"
  in
  let* () =
    List.fold_left
      (fun acc section ->
        let* () = acc in
        match List.assoc_opt section fields with
        | Some (Obs.Json.Obj _) -> Ok ()
        | Some _ -> Error (Printf.sprintf "%S is not an object" section)
        | None -> Error (Printf.sprintf "missing section %S" section))
      (Ok ())
      [ "counters"; "gauges"; "histograms" ]
  in
  let section name =
    match List.assoc_opt name fields with
    | Some (Obs.Json.Obj entries) -> entries
    | _ -> []
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        match v with
        | Obs.Json.Int n when n >= 0 -> Ok ()
        | _ -> Error (Printf.sprintf "counter %S is not a non-negative integer" name))
      (Ok ()) (section "counters")
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        match v with
        | Obs.Json.Float _ | Obs.Json.Int _ | Obs.Json.Null -> Ok ()
        | _ -> Error (Printf.sprintf "gauge %S is not numeric" name))
      (Ok ()) (section "gauges")
  in
  let* () =
    List.fold_left
      (fun acc (name, v) ->
        let* () = acc in
        let numeric field entries =
          match List.assoc_opt field entries with
          | Some (Obs.Json.Int _ | Obs.Json.Float _ | Obs.Json.Null) -> Ok ()
          | Some _ | None ->
            Error (Printf.sprintf "histogram %S lacks numeric %S" name field)
        in
        match v with
        | Obs.Json.Obj entries ->
          let* () = numeric "count" entries in
          let* () = numeric "sum" entries in
          Ok ()
        | _ -> Error (Printf.sprintf "histogram %S is not an object" name))
      (Ok ()) (section "histograms")
  in
  Ok
    (List.length (section "counters")
    + List.length (section "gauges")
    + List.length (section "histograms"))

let check_metrics_cmd =
  let run () =
    handle_errors @@ fun () ->
    let buf = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel buf stdin 1
       done
     with End_of_file -> ());
    let text = Buffer.contents buf in
    match Obs.Json.of_string text with
    | Error msg ->
      Printf.eprintf "check-metrics: invalid JSON: %s\n" msg;
      exit 2
    | Ok json -> begin
      match check_metrics_json json with
      | Ok n -> Printf.printf "metrics JSON: ok (%d instruments)\n" n
      | Error msg ->
        Printf.eprintf "check-metrics: %s\n" msg;
        exit 2
    end
  in
  Cmd.v
    (Cmd.info "check-metrics"
       ~doc:
         "Validate a --metrics json snapshot read from stdin against the \
          expected schema (counters/gauges/histograms sections, \
          non-negative integer counters).")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "elsdb" ~version:"1.0.0"
      ~doc:
        "Join result size estimation (Swami & Schiefer, EDBT 1994) on an \
         in-memory relational engine."
  in
  let group =
    Cmd.group info
      [
        section8_cmd; estimate_cmd; explain_cmd; run_cmd; closure_cmd;
        analyze_cmd; fault_cmd; soak_cmd; churn_cmd; serve_cmd;
        serve_chaos_cmd; check_metrics_cmd;
      ]
  in
  (* Pin the exit-code taxonomy: cmdliner's own parse failures are usage
     errors (2); an exception that escaped handle_errors is a runtime
     failure (1) — and handle_errors already turned the expected ones into
     one-line messages, so `Exn here means a genuine bug, reported without
     the default backtrace dump. *)
  match Cmd.eval_value ~catch:false group with
  | Ok (`Ok ()) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1
  | exception exn ->
    Printf.eprintf "error: %s\n" (Printexc.to_string exn);
    exit 1
