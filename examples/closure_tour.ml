(* A tour of the five transitive-closure derivations of Section 4,
   step 2, each shown on the paper's own schema.

   Run with: dune exec examples/closure_tour.exe *)

let show title preds =
  Printf.printf "%s\n" title;
  Printf.printf "  given:\n";
  List.iter
    (fun p -> Printf.printf "    %s\n" (Query.Predicate.to_string p))
    preds;
  Printf.printf "  implied:\n";
  let implied = Els.Closure.implied preds in
  if implied = [] then Printf.printf "    (nothing)\n"
  else
    List.iter
      (fun p -> Printf.printf "    %s\n" (Query.Predicate.to_string p))
      implied;
  print_newline ()

let c t col = Query.Cref.v t col
let eq a b = Query.Predicate.col_eq a b
let lt col k = Query.Predicate.cmp col Rel.Cmp.Lt (Rel.Value.Int k)

let () =
  show "2a: two join predicates imply a join predicate"
    [ eq (c "r1" "x") (c "r2" "y"); eq (c "r2" "y") (c "r3" "z") ];
  show "2b: two join predicates imply a local predicate"
    [ eq (c "r1" "x") (c "r2" "y"); eq (c "r1" "x") (c "r2" "w") ];
  show "2c: two local predicates imply a local predicate"
    [ eq (c "r1" "x") (c "r1" "y"); eq (c "r1" "y") (c "r1" "z") ];
  show "2d: a join predicate and a local predicate imply a join predicate"
    [ eq (c "r1" "x") (c "r2" "y"); eq (c "r1" "x") (c "r1" "v") ];
  show "2e: a join predicate and a constant comparison propagate"
    [ eq (c "r1" "x") (c "r2" "y"); lt (c "r1" "x") 500 ];
  (* The paper's Section 8 rewrite, reproduced in full. *)
  show "Section 8 query after closure"
    [
      eq (c "s" "s") (c "m" "m");
      eq (c "m" "m") (c "b" "b");
      eq (c "b" "b") (c "g" "g");
      lt (c "s" "s") 100;
    ]
