(* The paper's Section 8 experiment, end to end: four estimation
   algorithms optimizing and executing
     SELECT COUNT( ) FROM S,M,B,G
     WHERE s=m AND m=b AND b=g AND s<100
   on generated data at the paper's cardinalities.

   Run with: dune exec examples/paper_experiment.exe [-- SCALE]
   SCALE divides all table sizes (default 1 = the paper's sizes;
   use 10 for a fast run). *)

let () =
  let scale =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1
  in
  Printf.printf "Section 8 experiment at scale 1/%d%s\n\n" scale
    (if scale = 1 then " (paper cardinalities)" else "");
  let rows = Harness.Section8_experiment.run ~scale () in
  print_string (Harness.Section8_experiment.render rows);
  print_newline ();
  (* The paper's headline: the ELS plan runs an order of magnitude
     faster. Compute our ratio. *)
  let work label =
    let row =
      List.find
        (fun r ->
          String.equal r.Harness.Section8_experiment.trial.Harness.Runner.algorithm
            label)
        rows
    in
    row.Harness.Section8_experiment.trial.Harness.Runner.work
  in
  let els = work "ELS" in
  List.iter
    (fun other ->
      Printf.printf "ELS does %.1fx less work than %s\n"
        (float_of_int (work other) /. float_of_int els)
        other)
    [ "SM"; "SM+PTC"; "SSS" ];
  Printf.printf "\n(paper reported the ELS plan 9-12x faster)\n"
