(* Quickstart: build a small database, write a SQL query, compare the
   estimation algorithms, optimize, execute.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Generate and register three stored tables. Every column is
     integer-valued; `key_column` makes a permutation of 1..rows. *)
  let rng = Datagen.Prng.create 2024 in
  let db = Catalog.Db.create () in
  let add table rows specs =
    ignore (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table ~rows specs)
  in
  add "users" 10_000 [ Datagen.Tablegen.key_column "id" ~rows:10_000 ];
  add "orders" 50_000
    [
      Datagen.Tablegen.key_column "oid" ~rows:50_000;
      Datagen.Tablegen.column "user_id" ~distinct:10_000;
    ];
  add "payments" 30_000
    [
      Datagen.Tablegen.column "order_id" ~distinct:30_000;
      Datagen.Tablegen.column "amount" ~distinct:500;
    ];

  (* 2. Compile a SQL query against the catalog. *)
  let sql =
    "SELECT COUNT(*) FROM users, orders, payments \
     WHERE users.id = orders.user_id AND orders.oid = payments.order_id \
     AND users.id < 1000"
  in
  let query = Sqlfront.Binder.compile_exn db sql in
  Printf.printf "query: %s\n\n" (Query.to_string query);

  (* 3. What does transitive closure add? *)
  let implied = Els.Closure.implied query.Query.predicates in
  Printf.printf "implied predicates:\n";
  List.iter
    (fun p -> Printf.printf "  %s\n" (Query.Predicate.to_string p))
    implied;
  print_newline ();

  (* 4. Estimate the final join size along one order with each algorithm. *)
  let order = [ "users"; "orders"; "payments" ] in
  List.iter
    (fun config ->
      let est = Els.estimate config db query order in
      Printf.printf "%-8s estimates |users ⋈ orders ⋈ payments| = %.4g\n"
        (Els.Config.name config) est)
    [ Els.Config.sm ~ptc:true; Els.Config.sss; Els.Config.els ];
  print_newline ();

  (* 5. Let the optimizer pick a plan under ELS, then execute it. *)
  let choice = Optimizer.choose Els.Config.els db query in
  Optimizer.explain Format.std_formatter choice;
  let rows, counters, elapsed = Exec.Executor.count db choice.Optimizer.plan in
  Printf.printf "\nexecuted: COUNT(*) = %d  (%s, %.3fs)\n" rows
    (Format.asprintf "%a" Exec.Counters.pp counters)
    elapsed;

  (* 6. Ground truth without the optimizer. *)
  let truth = Exec.Executor.run_query db query in
  Printf.printf "reference execution agrees: %d rows\n"
    truth.Exec.Executor.row_count
