(* Self-joins through table aliases: the natural habitat of the paper's
   same-table j-equivalent columns (Section 3.2 / Section 6).

   An employee table is joined with itself twice: workers to their
   managers, and workers whose manager happens to head their own
   department. The second query makes two columns of the SAME alias
   j-equivalent, so Algorithm ELS's single-table treatment engages.

   Run with: dune exec examples/self_join.exe *)

let () =
  let rng = Datagen.Prng.create 31 in
  let db = Catalog.Db.create () in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"emp"
       ~rows:2000
       [
         Datagen.Tablegen.key_column "id" ~rows:2000;
         Datagen.Tablegen.column "mgr" ~distinct:100;
         Datagen.Tablegen.column "dept_head" ~distinct:100;
       ]);

  let show sql =
    let q = Sqlfront.Binder.compile_exn db sql in
    Printf.printf "query: %s\n" (Query.to_string q);
    let implied = Els.Closure.implied q.Query.predicates in
    if implied <> [] then begin
      Printf.printf "  implied:\n";
      List.iter
        (fun p -> Printf.printf "    %s\n" (Query.Predicate.to_string p))
        implied
    end;
    let est = Els.estimate Els.Config.els db q q.Query.tables in
    let truth = (Exec.Executor.run_query db q).Exec.Executor.row_count in
    Printf.printf "  ELS estimate: %.4g   true size: %d\n\n" est truth
  in

  (* Plain self-join: who works for whom. *)
  show "SELECT COUNT(*) FROM emp worker, emp boss WHERE worker.mgr = boss.id";

  (* Two join columns of the same alias in one equivalence class:
     closure derives worker.mgr = worker.dept_head (rule 2b), and the
     Section 6 machinery reduces the worker side before the join. *)
  show
    "SELECT COUNT(*) FROM emp worker, emp boss WHERE worker.mgr = boss.id \
     AND worker.dept_head = boss.id";

  (* The paper's rules disagree once redundancy appears; show all three. *)
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp worker, emp boss WHERE worker.mgr = boss.id \
       AND worker.dept_head = boss.id"
  in
  List.iter
    (fun config ->
      Printf.printf "%-8s final estimate: %.4g\n" (Els.Config.name config)
        (Els.estimate config db q q.Query.tables))
    [ Els.Config.sm ~ptc:true; Els.Config.sss; Els.Config.els ]
