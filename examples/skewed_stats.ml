(* Skewed data and statistics (the paper's §9 future work): a Zipf column
   breaks the uniformity assumption for local predicates; histograms and
   most-common-value sketches repair it.

   Run with: dune exec examples/skewed_stats.exe *)

let () =
  let rng = Datagen.Prng.create 8 in
  (* City sizes follow a Zipf law; generate an orders table whose city
     column is Zipf(1.1)-distributed over 500 cities. *)
  let orders =
    Datagen.Tablegen.relation (Datagen.Prng.split rng) ~table:"orders"
      ~rows:100_000
      [
        Datagen.Tablegen.key_column "oid" ~rows:100_000;
        Datagen.Tablegen.column
          ~distribution:(Datagen.Distribution.Zipf 1.1) "city" ~distinct:500;
      ]
  in

  (* Register the same data under three statistics regimes. *)
  let db_uniform = Catalog.Db.create () in
  ignore (Catalog.Analyze.register db_uniform ~name:"orders" orders);
  let db_hist = Catalog.Db.create () in
  ignore
    (Catalog.Analyze.register ~histogram:Stats.Histogram.Equi_depth
       ~histogram_buckets:64 db_hist ~name:"orders" orders);
  let db_mcv = Catalog.Db.create () in
  ignore (Catalog.Analyze.register ~mcv:50 db_mcv ~name:"orders" orders);

  let count_city db city =
    let q =
      Sqlfront.Binder.compile_exn db
        (Printf.sprintf "SELECT COUNT(*) FROM orders WHERE city = %d" city)
    in
    let profile = Els.prepare Els.Config.els db q in
    (Els.Profile.table profile "orders").Els.Profile.rows
  in
  let true_count city =
    let q =
      Sqlfront.Binder.compile_exn db_uniform
        (Printf.sprintf "SELECT COUNT(*) FROM orders WHERE city = %d" city)
    in
    (Exec.Executor.run_query db_uniform q).Exec.Executor.row_count
  in

  Printf.printf "%-6s %10s %12s %12s %12s\n" "city" "true" "uniform"
    "histogram" "MCV";
  List.iter
    (fun city ->
      Printf.printf "%-6d %10d %12.1f %12.1f %12.1f\n" city (true_count city)
        (count_city db_uniform city)
        (count_city db_hist city)
        (count_city db_mcv city))
    [ 1; 2; 5; 20; 100; 400 ];
  print_newline ();
  print_endline
    "The uniform 1/d rule estimates every city identically; the MCV sketch";
  print_endline
    "is exact on tracked (frequent) cities and falls back to the uniform";
  print_endline "remainder on the tail."
