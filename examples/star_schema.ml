(* Star schema: a fact table joined to several dimensions — one
   equivalence class per dimension key, exercising the multi-class
   independence handling of the estimator.

   Run with: dune exec examples/star_schema.exe *)

let () =
  let spec = Datagen.Workload.star ~seed:11 ~n_dims:4 () in
  let db = spec.Datagen.Workload.db in
  let query = spec.Datagen.Workload.query in
  Printf.printf "query: %s\n\n" (Query.to_string query);

  (* Equivalence classes: one per dimension key. *)
  let profile = Els.prepare Els.Config.els db query in
  Printf.printf "equivalence classes:\n";
  List.iter
    (fun cls ->
      if List.length cls > 1 then
        Printf.printf "  {%s}\n"
          (String.concat ", " (List.map Query.Cref.to_string cls)))
    (Els.Eqclass.classes profile.Els.Profile.classes);
  print_newline ();

  (* In a star query every class contributes exactly one eligible
     predicate per step, so the three rules agree... *)
  let order = query.Query.tables in
  List.iter
    (fun config ->
      Printf.printf "%-8s final size estimate: %.4g\n"
        (Els.Config.name config)
        (Els.estimate config db query order))
    [ Els.Config.sm ~ptc:true; Els.Config.sss; Els.Config.els ];

  (* ...and the estimate should track the true size. *)
  let truth = Exec.Executor.run_query db query in
  Printf.printf "true size:                 %d\n\n"
    truth.Exec.Executor.row_count;

  (* Optimize and execute. *)
  let choice = Optimizer.choose Els.Config.els db query in
  Printf.printf "chosen join order: %s\n"
    (String.concat " ⋈ " choice.Optimizer.join_order);
  let rows, counters, _ = Exec.Executor.count db choice.Optimizer.plan in
  Printf.printf "executed COUNT(*) = %d (%s)\n" rows
    (Format.asprintf "%a" Exec.Counters.pp counters)
