let table ?histogram ?histogram_buckets ?mcv ~name relation =
  let relation = Rel.Relation.rename relation name in
  let schema = Rel.Relation.schema relation in
  let column_stats =
    List.mapi
      (fun i col ->
        let values = Rel.Relation.column_values relation i in
        let stats =
          Stats.Col_stats.of_values ?histogram ?histogram_buckets ?mcv values
        in
        (col.Rel.Schema.name, stats))
      (Rel.Schema.columns schema)
  in
  Table.stored ~name ~row_count:(Rel.Relation.cardinality relation)
    ~column_stats relation

let register ?histogram ?histogram_buckets ?mcv db ~name relation =
  let entry = table ?histogram ?histogram_buckets ?mcv ~name relation in
  Db.add db entry;
  entry

let merge_tables (a : Table.t) (b : Table.t) =
  if a.name <> b.name then
    invalid_arg
      (Printf.sprintf "Analyze.merge_tables: shard names differ (%s vs %s)"
         a.name b.name);
  (* The schema check must be symmetric: a column present only in [b]
     would otherwise be dropped silently — a schema-drift merge
     succeeding with data loss. *)
  List.iter
    (fun (col, _) ->
      if not (List.mem_assoc col a.column_stats) then
        invalid_arg
          (Printf.sprintf
             "Analyze.merge_tables: shard schemas differ (column %s.%s)"
             b.name col))
    b.column_stats;
  let column_stats =
    List.map
      (fun (col, sa) ->
        match List.assoc_opt col b.column_stats with
        | Some sb ->
          (col, Stats.Col_stats.merge ~rows:a.row_count sa ~rows':b.row_count sb)
        | None ->
          invalid_arg
            (Printf.sprintf
               "Analyze.merge_tables: shard schemas differ (column %s.%s)"
               a.name col))
      a.column_stats
  in
  Table.stats_only ~name:a.name ~schema:a.schema
    ~row_count:(a.row_count + b.row_count) ~column_stats

let partitions ?histogram ?histogram_buckets ?mcv ~name shards =
  match shards with
  | [] -> invalid_arg "Analyze.partitions: no shards"
  | _ ->
    (* Each shard is analyzed independently — this is the parallel-ANALYZE
       entry point — and the per-shard statistics are folded with the merge
       algebra. The fold order is immaterial up to the algebra's documented
       tolerance (exactly so for row counts, nulls, bounds and sketches). *)
    shards
    |> List.map (fun shard ->
           table ?histogram ?histogram_buckets ?mcv ~name shard)
    |> function
    | [ only ] ->
      (* Freeze the same stats-only shape the merged path yields, so the
         single-shard and many-shard results are interchangeable. *)
      Table.stats_only ~name:only.Table.name ~schema:only.Table.schema
        ~row_count:only.Table.row_count ~column_stats:only.Table.column_stats
    | first :: rest -> List.fold_left merge_tables first rest
    | [] -> assert false

let validate = Validate.validate
