let table ?histogram ?histogram_buckets ?mcv ~name relation =
  let relation = Rel.Relation.rename relation name in
  let schema = Rel.Relation.schema relation in
  let column_stats =
    List.mapi
      (fun i col ->
        let values = Rel.Relation.column_values relation i in
        let stats =
          Stats.Col_stats.of_values ?histogram ?histogram_buckets ?mcv values
        in
        (col.Rel.Schema.name, stats))
      (Rel.Schema.columns schema)
  in
  Table.stored ~name ~row_count:(Rel.Relation.cardinality relation)
    ~column_stats relation

let register ?histogram ?histogram_buckets ?mcv db ~name relation =
  let entry = table ?histogram ?histogram_buckets ?mcv ~name relation in
  Db.add db entry;
  entry

let validate = Validate.validate
