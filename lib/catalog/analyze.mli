(** Statistics collection (the [ANALYZE] of this engine).

    Scans a stored relation and produces the exact table cardinality and
    per-column statistics (distinct counts, bounds, optional histograms)
    that the estimation algorithms consume. *)

val table :
  ?histogram:Stats.Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  name:string ->
  Rel.Relation.t ->
  Table.t
(** [table ~name r] analyzes every column of [r]. When [histogram] is given,
    numeric columns additionally get a distribution histogram; when [mcv]
    is given, every column gets a most-common-value sketch of that many
    entries. *)

val register :
  ?histogram:Stats.Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  Db.t ->
  name:string ->
  Rel.Relation.t ->
  Table.t
(** Analyze and add to the catalog in one step; returns the table entry. *)

val merge_tables : Table.t -> Table.t -> Table.t
(** Combine the statistics of two disjoint shards of one table into a
    stats-only entry: row counts add, per-column statistics merge per the
    {!Stats.Col_stats.merge} algebra.
    @raise Invalid_argument when names or schemas disagree. *)

val partitions :
  ?histogram:Stats.Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  name:string ->
  Rel.Relation.t list ->
  Table.t
(** Parallel-ANALYZE entry point: analyze each partition of a table
    independently and fold the shard statistics with {!merge_tables}. The
    result is stats-only (a merged entry carries no single stored
    relation) and matches bulk {!table} output within the merge algebra's
    tolerance: row counts, null counts and bounds exactly; distinct counts
    to sketch accuracy; histogram/MCV shapes approximately.
    @raise Invalid_argument on an empty shard list. *)

val validate :
  Validate.strictness -> Db.t -> (Db.t * Validate.issue list, Validate.issue) result
(** Audit catalog statistics for impossible numbers (d > ‖R‖, negative or
    stale cardinalities, NaN/non-monotone histograms, MCV sums > 1) under a
    strictness mode. Alias for {!Validate.validate}; see {!Validate} for
    the issue taxonomy and repair semantics. *)
