(** Statistics collection (the [ANALYZE] of this engine).

    Scans a stored relation and produces the exact table cardinality and
    per-column statistics (distinct counts, bounds, optional histograms)
    that the estimation algorithms consume. *)

val table :
  ?histogram:Stats.Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  name:string ->
  Rel.Relation.t ->
  Table.t
(** [table ~name r] analyzes every column of [r]. When [histogram] is given,
    numeric columns additionally get a distribution histogram; when [mcv]
    is given, every column gets a most-common-value sketch of that many
    entries. *)

val register :
  ?histogram:Stats.Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  Db.t ->
  name:string ->
  Rel.Relation.t ->
  Table.t
(** Analyze and add to the catalog in one step; returns the table entry. *)

val validate :
  Validate.strictness -> Db.t -> (Db.t * Validate.issue list, Validate.issue) result
(** Audit catalog statistics for impossible numbers (d > ‖R‖, negative or
    stale cardinalities, NaN/non-monotone histograms, MCV sums > 1) under a
    strictness mode. Alias for {!Validate.validate}; see {!Validate} for
    the issue taxonomy and repair semantics. *)
