type t = {
  by_name : (string, Table.t) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { by_name = Hashtbl.create 16; order = [] }

let add t table =
  let name = table.Table.name in
  if Hashtbl.mem t.by_name name then
    invalid_arg (Printf.sprintf "Catalog.Db.add: duplicate table %s" name);
  Hashtbl.add t.by_name name table;
  t.order <- name :: t.order

let find t name = Hashtbl.find_opt t.by_name (String.lowercase_ascii name)

let find_exn t name =
  match find t name with
  | Some table -> table
  | None ->
    invalid_arg
      (Printf.sprintf "Catalog.Db.find_exn: no table %S in the catalog%s" name
         (Suggest.hint ~candidates:t.order name))

let mem t name = find t name <> None

let tables t = List.rev_map (Hashtbl.find t.by_name) t.order

let relation_exn t name =
  let table = find_exn t name in
  match table.Table.data with
  | Some relation -> relation
  | None ->
    invalid_arg
      (Printf.sprintf "Catalog.Db.relation_exn: table %s is stats-only"
         table.Table.name)

let resolve_column t name =
  let name = String.lowercase_ascii name in
  let hits =
    List.filter_map
      (fun table ->
        if Table.has_column table name then Some (table.Table.name, name)
        else None)
      (tables t)
  in
  match hits with
  | [ hit ] -> Some hit
  | [] | _ :: _ :: _ -> None

let pp ppf t = List.iter (Table.pp ppf) (tables t)
