(** The database catalog: a registry of tables.

    This is the single source both the optimizer (statistics) and the
    executor (stored relations) read from. *)

type t

val create : unit -> t

val add : t -> Table.t -> unit
(** @raise Invalid_argument when a table of the same name already exists. *)

val find : t -> string -> Table.t option
val find_exn : t -> string -> Table.t
(** @raise Invalid_argument when no such table is registered; the message
    names the table and suggests the nearest existing name. *)

val mem : t -> string -> bool
val tables : t -> Table.t list
(** Tables in registration order. *)

val relation_exn : t -> string -> Rel.Relation.t
(** Stored data of a table.
    @raise Invalid_argument when the table is stats-only or not
    registered. *)

val resolve_column : t -> string -> (string * string) option
(** [resolve_column db name] finds the unique table exposing an unqualified
    column [name], returning [(table, column)]; [None] when missing or
    ambiguous. Used by the SQL binder. *)

val pp : Format.formatter -> t -> unit
