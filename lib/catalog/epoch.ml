type t = {
  id : int;
  db : Db.t;
  annotations : (string * string) list;
}

let freeze_table (tbl : Table.t) =
  match tbl.data with
  | None -> tbl
  | Some _ ->
    Table.stats_only ~name:tbl.name ~schema:tbl.schema
      ~row_count:tbl.row_count ~column_stats:tbl.column_stats

let create ~id ?(annotations = []) db =
  let frozen = Db.create () in
  List.iter (fun tbl -> Db.add frozen (freeze_table tbl)) (Db.tables db);
  let annotations =
    List.map (fun (t, note) -> (String.lowercase_ascii t, note)) annotations
  in
  { id; db = frozen; annotations }

let id t = t.id
let db t = t.db
let annotations t = t.annotations

let annotations_for t name =
  let name = String.lowercase_ascii name in
  List.filter_map
    (fun (table, note) -> if table = name then Some note else None)
    t.annotations

let pp ppf t =
  Format.fprintf ppf "epoch %d: %d tables%s" t.id
    (List.length (Db.tables t.db))
    (match t.annotations with
    | [] -> ""
    | notes ->
      ", stale: "
      ^ String.concat ", " (List.sort_uniq compare (List.map fst notes)))
