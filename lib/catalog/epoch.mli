(** Immutable catalog snapshots.

    An epoch is one consistent, frozen view of the whole catalog: a
    monotone id plus a statistics-only {!Db.t} (every table stripped of
    its stored relation, so nothing in an epoch aliases the live,
    mutating data). {!Store} swaps a single current-epoch reference
    atomically; a reader that pins an epoch before estimating sees the
    same statistics for the whole estimate — and forever after — no
    matter how many publishes happen concurrently.

    Annotations carry per-table staleness notes (e.g. "serving
    last-known-good statistics, table quarantined"); [Els.prepare_epoch]
    threads them into the explain derivation card. *)

type t

val create : id:int -> ?annotations:(string * string) list -> Db.t -> t
(** [create ~id db] freezes [db] into an epoch: every table is snapshot
    as stats-only. [annotations] maps table names to staleness notes. *)

val id : t -> int
(** Monotone: each successful {!Store.publish} yields a strictly larger
    id. *)

val db : t -> Db.t
(** The frozen catalog. Every table is stats-only; estimates prepared
    against it never touch live data. *)

val annotations : t -> (string * string) list

val annotations_for : t -> string -> string list
(** Staleness notes for one (lower-cased) table name; [] when fresh. *)

val pp : Format.formatter -> t -> unit
