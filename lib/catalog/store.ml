type drift = {
  rows_since_analyze : int;
  d_drift : float;
}

type counters = {
  epoch : int;
  publishes : int;
  audits_failed : int;
  quarantines : int;
  quarantined_now : int;
  stale_served : int;
  retries : int;
  retry_successes : int;
  hard_fallbacks : int;
  delta_inserts : int;
  delta_deletes : int;
}

type table_state = {
  name : string;
  mutable live : Rel.Relation.t;
  mutable published : Table.t; (* stats-only, part of the current epoch *)
  mutable staged : Table.t option; (* stats-only candidate for next publish *)
  mutable last_good : Table.t option; (* stats-only, passed its last audit *)
  mutable quarantined : bool;
  mutable failures : int; (* consecutive failed audits *)
  mutable backoff : int; (* publishes to skip before the next re-audit *)
  mutable rows_since_analyze : int;
}

type t = {
  strictness : Validate.strictness;
  histogram : Stats.Histogram.kind option;
  histogram_buckets : int option;
  mcv : int option;
  states : table_state list; (* registration order *)
  mutable current : Epoch.t;
  mutable publishes : int;
  mutable audits_failed : int;
  mutable quarantines : int;
  mutable stale_served : int;
  mutable retries : int;
  mutable retry_successes : int;
  mutable hard_fallbacks : int;
  mutable delta_inserts : int;
  mutable delta_deletes : int;
}

let strictness t = t.strictness

let freeze (tbl : Table.t) =
  Table.stats_only ~name:tbl.name ~schema:tbl.schema ~row_count:tbl.row_count
    ~column_stats:tbl.column_stats

let epoch_of states ~id ~annotations =
  let db = Db.create () in
  List.iter (fun st -> Db.add db st.published) states;
  Epoch.create ~id ~annotations db

let create ?(strictness = Validate.Repair) ?histogram ?histogram_buckets ?mcv
    db =
  let states =
    List.map
      (fun (tbl : Table.t) ->
        let live =
          match tbl.data with
          | Some rel -> rel
          | None ->
            invalid_arg
              (Printf.sprintf
                 "Catalog.Store.create: table %s is stats-only; the store \
                  needs live data to stream deltas and re-ANALYZE"
                 tbl.name)
        in
        let published = freeze tbl in
        {
          name = tbl.name;
          live;
          published;
          staged = None;
          last_good =
            (if Validate.check_table published = [] then Some published
             else None);
          quarantined = false;
          failures = 0;
          backoff = 0;
          rows_since_analyze = 0;
        })
      (Db.tables db)
  in
  {
    strictness;
    histogram;
    histogram_buckets;
    mcv;
    states;
    current = epoch_of states ~id:0 ~annotations:[];
    publishes = 0;
    audits_failed = 0;
    quarantines = 0;
    stale_served = 0;
    retries = 0;
    retry_successes = 0;
    hard_fallbacks = 0;
    delta_inserts = 0;
    delta_deletes = 0;
  }

let pin t = t.current

let find_state t name =
  let name = String.lowercase_ascii name in
  match List.find_opt (fun st -> st.name = name) t.states with
  | Some st -> st
  | None ->
    invalid_arg (Printf.sprintf "Catalog.Store: unknown table %s" name)

let live t ~table = (find_state t table).live

(* --- staged delta maintenance ------------------------------------------ *)

let numeric = function
  | Rel.Value.Int x -> Some (float_of_int x)
  | Rel.Value.Float x -> Some x
  | Rel.Value.Null | Rel.Value.String _ | Rel.Value.Bool _ -> None

let widen_bound cmp current v =
  match current with
  | None -> Some v
  | Some b -> if cmp (Rel.Value.compare v b) 0 then Some v else Some b

(* Maps every column's statistics through [f colname index stats], where
   [index] is the column's tuple position. *)
let map_cols (tbl : Table.t) f =
  let positions =
    List.mapi
      (fun i c -> (String.lowercase_ascii c.Rel.Schema.name, i))
      (Rel.Schema.columns tbl.schema)
  in
  {
    tbl with
    column_stats =
      List.map
        (fun (col, s) ->
          match List.assoc_opt col positions with
          | Some i -> (col, f col i s)
          | None -> (col, s))
        tbl.column_stats;
  }

let staged_candidate st =
  match st.staged with
  | Some tbl -> tbl
  | None -> st.published

let insert t ~table rows =
  let st = find_state t table in
  let tuples = List.map Rel.Tuple.of_list rows in
  List.iter (fun tup -> Rel.Relation.insert st.live tup) tuples;
  let base = staged_candidate st in
  let updated =
    map_cols
      { base with row_count = base.row_count + List.length tuples }
      (fun _ i (s : Stats.Col_stats.t) ->
        let values =
          Array.of_list (List.map (fun tup -> Rel.Tuple.get tup i) tuples)
        in
        let nulls =
          s.nulls
          + Array.fold_left
              (fun acc v -> if Rel.Value.is_null v then acc + 1 else acc)
              0 values
        in
        let distinct_sketch =
          Option.map (fun sk -> Stats.Hll.add_values sk values)
            s.distinct_sketch
        in
        let histogram =
          Option.map
            (fun h ->
              Array.fold_left
                (fun h v ->
                  match numeric v with
                  | Some x -> Stats.Histogram.add_value h x
                  | None -> h)
                h values)
            s.histogram
        in
        let min_value, max_value =
          Array.fold_left
            (fun (lo, hi) v ->
              if Rel.Value.is_null v then (lo, hi)
              else (widen_bound ( < ) lo v, widen_bound ( > ) hi v))
            (s.min_value, s.max_value)
            values
        in
        (* [distinct] is deliberately NOT maintained: the gap between it
           and the sketch is the d-drift the gauges and audits measure. *)
        { s with nulls; distinct_sketch; histogram; min_value; max_value })
  in
  st.staged <- Some updated;
  st.rows_since_analyze <- st.rows_since_analyze + List.length tuples;
  t.delta_inserts <- t.delta_inserts + List.length tuples

let delete t ~table ~indices =
  let st = find_state t table in
  let doomed = List.sort_uniq Int.compare indices in
  let kept = ref [] and removed = ref [] in
  List.iteri
    (fun i tup ->
      if List.mem i doomed then removed := tup :: !removed
      else kept := tup :: !kept)
    (Rel.Relation.to_list st.live);
  let removed = List.rev !removed in
  if removed <> [] then begin
    st.live <-
      Rel.Relation.of_tuples (Rel.Relation.schema st.live) (List.rev !kept);
    let base = staged_candidate st in
    let updated =
      map_cols
        { base with row_count = max 0 (base.row_count - List.length removed) }
        (fun _ i (s : Stats.Col_stats.t) ->
          List.fold_left
            (fun (s : Stats.Col_stats.t) tup ->
              let v = Rel.Tuple.get tup i in
              if Rel.Value.is_null v then
                { s with nulls = max 0 (s.nulls - 1) }
              else
                match numeric v, s.histogram with
                | Some x, Some h ->
                  { s with histogram = Some (Stats.Histogram.remove_value h x) }
                | _ -> s)
            s removed)
    in
    st.staged <- Some updated;
    st.rows_since_analyze <- st.rows_since_analyze + List.length removed;
    t.delta_deletes <- t.delta_deletes + List.length removed
  end

let reanalyze ?(shards = 1) t ~table =
  let st = find_state t table in
  let analyzed =
    if shards <= 1 then
      freeze
        (Analyze.table ?histogram:t.histogram
           ?histogram_buckets:t.histogram_buckets ?mcv:t.mcv ~name:st.name
           st.live)
    else begin
      let schema = Rel.Relation.schema st.live in
      let parts = Array.make shards [] in
      List.iteri
        (fun i tup -> parts.(i mod shards) <- tup :: parts.(i mod shards))
        (Rel.Relation.to_list st.live);
      let relations =
        Array.to_list parts
        |> List.filter_map (fun tuples ->
               match tuples with
               | [] -> None
               | _ -> Some (Rel.Relation.of_tuples schema (List.rev tuples)))
      in
      match relations with
      | [] ->
        (* Empty table: the bulk path handles it (zero rows, empty stats). *)
        freeze
          (Analyze.table ?histogram:t.histogram
             ?histogram_buckets:t.histogram_buckets ?mcv:t.mcv ~name:st.name
             st.live)
      | _ ->
        Analyze.partitions ?histogram:t.histogram
          ?histogram_buckets:t.histogram_buckets ?mcv:t.mcv ~name:st.name
          relations
    end
  in
  st.staged <- Some analyzed;
  st.rows_since_analyze <- 0

let corrupt_staged t ~table f =
  let st = find_state t table in
  st.staged <- Some (f (staged_candidate st))

(* --- publish ------------------------------------------------------------ *)

type decision =
  | Serve_fresh of Table.t
  | Serve_backoff of Table.t * string
  | Serve_stale of Table.t * string (* enter/stay in quarantine *)
  | Serve_fallback of Table.t * string (* no good epoch; Repair/Trap rung *)

let publish t =
  (* Phase 1: decide every table without touching any state, so a Strict
     refusal leaves the store exactly as it was (no partial epoch). *)
  let decide st =
    if st.quarantined && st.staged = None && st.backoff > 0 then
      match st.last_good with
      | Some good ->
        Ok
          (Serve_backoff
             ( good,
               Printf.sprintf
                 "stale statistics: quarantined after %d failed audit%s, \
                  serving last-known-good (retry backoff %d)"
                 st.failures
                 (if st.failures = 1 then "" else "s")
                 st.backoff ))
      | None -> assert false (* quarantine is only entered with a good epoch *)
    else begin
      let candidate = staged_candidate st in
      match Validate.check_table candidate with
      | [] -> Ok (Serve_fresh candidate)
      | issue :: _ -> begin
        match st.last_good with
        | Some good ->
          Ok
            (Serve_stale
               ( good,
                 Printf.sprintf
                   "stale statistics: fresh stats failed audit (%s), serving \
                    last-known-good"
                   (Validate.kind_name issue.kind) ))
        | None -> begin
          match t.strictness with
          | Validate.Strict -> Error issue
          | Validate.Repair ->
            Ok
              (Serve_fallback
                 ( freeze (fst (Validate.repair_table candidate)),
                   Printf.sprintf
                     "no good epoch: audit failed (%s), serving repaired \
                      statistics"
                     (Validate.kind_name issue.kind) ))
          | Validate.Trap ->
            Ok
              (Serve_fallback
                 ( candidate,
                   Printf.sprintf
                     "no good epoch: audit failed (%s), serving unrepaired \
                      statistics"
                     (Validate.kind_name issue.kind) ))
        end
      end
    end
  in
  let decisions =
    List.map (fun st -> (st, decide st)) t.states
  in
  match
    List.find_map
      (fun (_, d) -> match d with Error issue -> Some issue | Ok _ -> None)
      decisions
  with
  | Some issue -> Error issue
  | None ->
    (* Phase 2: apply every decision, then swap the epoch reference. *)
    let annotations = ref [] in
    List.iter
      (fun (st, d) ->
        match d with
        | Error _ -> assert false
        | Ok (Serve_fresh tbl) ->
          if st.quarantined then begin
            t.retries <- t.retries + 1;
            t.retry_successes <- t.retry_successes + 1
          end;
          st.published <- tbl;
          st.last_good <- Some tbl;
          st.staged <- None;
          st.quarantined <- false;
          st.failures <- 0;
          st.backoff <- 0
        | Ok (Serve_backoff (tbl, note)) ->
          st.published <- tbl;
          st.backoff <- st.backoff - 1;
          t.stale_served <- t.stale_served + 1;
          annotations := (st.name, note) :: !annotations
        | Ok (Serve_stale (tbl, note)) ->
          if st.quarantined then t.retries <- t.retries + 1
          else t.quarantines <- t.quarantines + 1;
          t.audits_failed <- t.audits_failed + 1;
          st.quarantined <- true;
          st.failures <- st.failures + 1;
          st.backoff <- min 8 (1 lsl min 3 st.failures);
          st.published <- tbl;
          st.staged <- None;
          t.stale_served <- t.stale_served + 1;
          annotations := (st.name, note) :: !annotations
        | Ok (Serve_fallback (tbl, note)) ->
          t.audits_failed <- t.audits_failed + 1;
          t.hard_fallbacks <- t.hard_fallbacks + 1;
          st.published <- tbl;
          st.staged <- None;
          annotations := (st.name, note) :: !annotations)
      decisions;
    t.publishes <- t.publishes + 1;
    let next =
      epoch_of t.states
        ~id:(Epoch.id t.current + 1)
        ~annotations:(List.rev !annotations)
    in
    t.current <- next;
    Ok next

(* --- gauges ------------------------------------------------------------- *)

let table_d_drift (tbl : Table.t) =
  List.fold_left
    (fun acc (_, (s : Stats.Col_stats.t)) ->
      match s.distinct_sketch with
      | None -> acc
      | Some sk ->
        let est = Stats.Hll.estimate sk in
        let d = float_of_int s.distinct in
        Float.max acc (Float.abs (est -. d) /. Float.max 1. d))
    0. tbl.column_stats

let drift t =
  List.map
    (fun st ->
      ( st.name,
        {
          rows_since_analyze = st.rows_since_analyze;
          d_drift = table_d_drift st.published;
        } ))
    t.states

let stats t =
  {
    epoch = Epoch.id t.current;
    publishes = t.publishes;
    audits_failed = t.audits_failed;
    quarantines = t.quarantines;
    quarantined_now =
      List.length (List.filter (fun st -> st.quarantined) t.states);
    stale_served = t.stale_served;
    retries = t.retries;
    retry_successes = t.retry_successes;
    hard_fallbacks = t.hard_fallbacks;
    delta_inserts = t.delta_inserts;
    delta_deletes = t.delta_deletes;
  }

let pp ppf t =
  let c = stats t in
  Format.fprintf ppf
    "store: epoch %d, %d publishes, %d audits failed, %d quarantined now, %d \
     stale served, %d hard fallbacks, +%d/-%d rows streamed"
    c.epoch c.publishes c.audits_failed c.quarantined_now c.stale_served
    c.hard_fallbacks c.delta_inserts c.delta_deletes
