(** Versioned catalog store: the lifecycle around {!Epoch} snapshots.

    The store owns the live (mutating) relations and publishes immutable
    statistics epochs over them. Readers {!pin} the current epoch and
    estimate against it; writers stream {!insert}/{!delete} batches into a
    staging area, {!reanalyze} tables in bulk or by partitions, and
    {!publish} to atomically swap in the next epoch.

    Every publish audits each table's candidate statistics with
    {!Validate.check_table} and climbs a self-healing ladder:

    + clean candidate → served, remembered as last-known-good;
    + audit failure with a last-known-good epoch → the table is
      {e quarantined}: stale-but-sane statistics are served (counted, and
      annotated on the epoch so explain cards can surface the staleness),
      and re-audits back off exponentially until a fresh re-ANALYZE
      arrives;
    + audit failure with no good epoch → hard fallback to the store's
      strictness: [Strict] refuses the publish (no epoch mutates),
      [Repair] serves the repaired statistics, [Trap] serves the
      candidate as-is — both annotated.

    Per-table drift gauges (rows touched since the last ANALYZE, relative
    distance between the recorded distinct count and the sketch estimate)
    are exposed via {!drift} for the observability layer. *)

type t

type drift = {
  rows_since_analyze : int;  (** inserts + deletes since last re-ANALYZE *)
  d_drift : float;
      (** max over columns of |sketch estimate − recorded d| / max(1, d) *)
}

type counters = {
  epoch : int;                (** current epoch id *)
  publishes : int;            (** successful epoch swaps *)
  audits_failed : int;        (** candidates that failed a publish audit *)
  quarantines : int;          (** transitions into quarantine *)
  quarantined_now : int;      (** tables currently quarantined *)
  stale_served : int;         (** publishes that served last-known-good *)
  retries : int;              (** re-audits of a quarantined table *)
  retry_successes : int;      (** quarantine exits via a clean candidate *)
  hard_fallbacks : int;       (** audit failures with no good epoch *)
  delta_inserts : int;        (** rows streamed in since [create] *)
  delta_deletes : int;        (** rows streamed out since [create] *)
}

val create :
  ?strictness:Validate.strictness ->
  ?histogram:Stats.Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  Db.t ->
  t
(** Wrap a catalog of stored tables. Existing statistics are adopted
    verbatim into epoch 0 (tables whose statistics already fail audit
    simply start with no last-known-good epoch); the analyze options are
    remembered for every later {!reanalyze}. [strictness] (default
    [Repair]) governs the hard-fallback rung only.
    @raise Invalid_argument when a table is stats-only: the store must own
    live data to stream deltas and re-ANALYZE. *)

val strictness : t -> Validate.strictness

val pin : t -> Epoch.t
(** The current epoch. Immutable: estimates prepared against it are
    bit-identical before and after any number of subsequent publishes. *)

val live : t -> table:string -> Rel.Relation.t
(** The live relation (ground truth including all streamed deltas) — what
    a fresh bulk ANALYZE would scan. Callers must not mutate it.
    @raise Invalid_argument on an unknown table. *)

val insert : t -> table:string -> Rel.Value.t list list -> unit
(** Stream a batch of rows in: the live relation grows, and the staged
    statistics are delta-adjusted — ‖R‖ and null counts exactly, the
    distinct sketch and histogram bucket counts incrementally, bounds
    widened. The recorded distinct count is deliberately left stale (that
    gap {e is} the d-drift the gauges expose). Not visible to readers
    until {!publish}. *)

val delete : t -> table:string -> indices:int list -> unit
(** Stream a batch of rows out, by current row index (out-of-range
    indices are ignored). ‖R‖ and null counts adjust exactly; histogram
    bucket counts decrement; sketches and bounds cannot shrink and keep
    over-remembering until the next {!reanalyze}. *)

val reanalyze : ?shards:int -> t -> table:string -> unit
(** Recompute the table's statistics from the live relation and stage
    them for the next publish. [shards > 1] exercises the parallel-ANALYZE
    path: the relation is partitioned round-robin, each shard analyzed
    independently, and the results merged ({!Analyze.partitions}). Resets
    the table's drift counters. *)

val corrupt_staged : t -> table:string -> (Table.t -> Table.t) -> unit
(** Test hook: transform the staged statistics (initialized from the
    published ones when nothing is staged) so publish-time audits have
    something to catch. *)

val publish : t -> (Epoch.t, Validate.issue) result
(** Audit every table's candidate statistics and atomically swap in the
    next epoch (strictly increasing id). [Error] only on the Strict hard
    fallback — a table failed audit with no last-known-good epoch under
    [Strict] — in which case {e nothing} changes: the previous epoch stays
    current and no staged state is consumed. *)

val drift : t -> (string * drift) list
(** Per-table drift gauges, in registration order, measured on the
    currently published statistics. *)

val stats : t -> counters

val pp : Format.formatter -> t -> unit
