(* Nearest-name suggestions for "no such table/column" errors. *)

let distance a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <-
          min (min (prev.(j) + 1) (curr.(j - 1) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let nearest ~candidates name =
  let name = String.lowercase_ascii name in
  let budget = max 1 (String.length name / 3) in
  let best =
    List.fold_left
      (fun best candidate ->
        let d = distance name (String.lowercase_ascii candidate) in
        match best with
        | Some (d0, _) when d0 <= d -> best
        | _ -> if d <= budget then Some (d, candidate) else best)
      None candidates
  in
  Option.map snd best

let hint ~candidates name =
  match nearest ~candidates name with
  | Some c -> Printf.sprintf " (did you mean %S?)" c
  | None -> ""
