(** Nearest-name suggestions for error messages.

    When a lookup by name fails, a close match among the existing names is
    usually a typo; surfacing it turns a dead-end error into an actionable
    one. *)

val distance : string -> string -> int
(** Levenshtein edit distance. *)

val nearest : candidates:string list -> string -> string option
(** Closest candidate within an edit budget of [max 1 (length/3)];
    case-insensitive. [None] when nothing is plausibly close. *)

val hint : candidates:string list -> string -> string
(** [" (did you mean \"x\"?)"] when a near-miss exists, [""] otherwise —
    ready to append to an error message. *)
