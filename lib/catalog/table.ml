type t = {
  name : string;
  schema : Rel.Schema.t;
  data : Rel.Relation.t option;
  row_count : int;
  column_stats : (string * Stats.Col_stats.t) list;
}

let normalize_stats column_stats =
  List.map
    (fun (name, stats) -> (String.lowercase_ascii name, stats))
    column_stats

let stored ~name ~row_count ~column_stats relation =
  {
    name = String.lowercase_ascii name;
    schema = Rel.Relation.schema relation;
    data = Some relation;
    row_count;
    column_stats = normalize_stats column_stats;
  }

let stats_only ~name ~schema ~row_count ~column_stats =
  {
    name = String.lowercase_ascii name;
    schema;
    data = None;
    row_count;
    column_stats = normalize_stats column_stats;
  }

let col_stats t name =
  List.assoc_opt (String.lowercase_ascii name) t.column_stats

let col_stats_exn t name =
  match col_stats t name with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf
         "Catalog.Table.col_stats_exn: table %S has no statistics for column \
          %S%s"
         t.name name
         (Suggest.hint ~candidates:(List.map fst t.column_stats) name))

let distinct t name =
  match col_stats t name with
  | Some s -> s.Stats.Col_stats.distinct
  | None -> t.row_count

let has_column t name =
  Rel.Schema.mem t.schema ~table:t.name ~name

let pp ppf t =
  Format.fprintf ppf "table %s: %d rows, %s@." t.name t.row_count
    (if t.data = None then "stats-only" else "stored");
  List.iter
    (fun (name, stats) ->
      Format.fprintf ppf "  %s %a@." name Stats.Col_stats.pp stats)
    t.column_stats
