(** Table metadata: schema, cardinality and per-column statistics.

    A table may be {e stored} (carrying an in-memory relation, so plans can
    actually execute against it) or {e stats-only} (carrying nothing but
    catalog numbers, which is all the paper's worked examples specify). *)

type t = {
  name : string; (** lower-cased table name *)
  schema : Rel.Schema.t;
  data : Rel.Relation.t option;
  row_count : int; (** table cardinality ‖R‖ *)
  column_stats : (string * Stats.Col_stats.t) list;
}

val stored :
  name:string ->
  row_count:int ->
  column_stats:(string * Stats.Col_stats.t) list ->
  Rel.Relation.t ->
  t

val stats_only :
  name:string ->
  schema:Rel.Schema.t ->
  row_count:int ->
  column_stats:(string * Stats.Col_stats.t) list ->
  t

val col_stats : t -> string -> Stats.Col_stats.t option
(** Statistics of a column by (lower-cased) name. *)

val col_stats_exn : t -> string -> Stats.Col_stats.t
(** @raise Invalid_argument when the column has no recorded statistics;
    the message names the table and column and suggests the nearest
    existing column name. *)

val distinct : t -> string -> int
(** Column cardinality [d]; falls back to [row_count] when no statistics
    were recorded for the column (the key-column worst case). *)

val has_column : t -> string -> bool

val pp : Format.formatter -> t -> unit
