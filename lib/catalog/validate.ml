type strictness =
  | Strict
  | Repair
  | Trap

let strictness_name = function
  | Strict -> "strict"
  | Repair -> "repair"
  | Trap -> "trap"

let strictness_of_string = function
  | "strict" -> Some Strict
  | "repair" -> Some Repair
  | "trap" -> Some Trap
  | _ -> None

type kind =
  | Negative_rows
  | Stale_row_count
  | Negative_distinct
  | Distinct_exceeds_rows
  | Distinct_drift
  | Negative_nulls
  | Invalid_bounds
  | Nan_histogram
  | Non_monotone_histogram
  | Excess_buckets
  | Invalid_mcv
  | Invalid_degree

let kind_name = function
  | Negative_rows -> "negative-rows"
  | Stale_row_count -> "stale-row-count"
  | Negative_distinct -> "negative-distinct"
  | Distinct_exceeds_rows -> "distinct-exceeds-rows"
  | Distinct_drift -> "distinct-drift"
  | Negative_nulls -> "negative-nulls"
  | Invalid_bounds -> "invalid-bounds"
  | Nan_histogram -> "nan-histogram"
  | Non_monotone_histogram -> "non-monotone-histogram"
  | Excess_buckets -> "excess-buckets"
  | Invalid_mcv -> "invalid-mcv"
  | Invalid_degree -> "invalid-degree"

type issue = {
  table : string;
  column : string option;
  kind : kind;
  detail : string;
  repair : string;
}

let issue_to_string i =
  Printf.sprintf "%s%s: %s [%s; repair: %s]" i.table
    (match i.column with None -> "" | Some c -> "." ^ c)
    i.detail (kind_name i.kind) i.repair

let finite x = Float.is_finite x

(* --- histogram --- *)

let histogram_issue table column h =
  let buckets = Stats.Histogram.buckets h in
  let bad_number b =
    not
      (finite b.Stats.Histogram.lo
      && finite b.Stats.Histogram.hi
      && finite b.Stats.Histogram.count
      && finite b.Stats.Histogram.distinct
      && b.Stats.Histogram.count >= 0.
      && b.Stats.Histogram.distinct >= 0.)
  in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Stats.Histogram.hi <= b.Stats.Histogram.lo && monotone rest
    | [ _ ] | [] -> true
  in
  let issue kind detail =
    Some { table; column = Some column; kind; detail;
           repair = "drop histogram (fall back to the uniform/urn model)" }
  in
  if List.exists bad_number buckets || not (finite (Stats.Histogram.total_count h))
  then issue Nan_histogram "histogram carries NaN/negative bucket statistics"
  else if
    List.exists (fun b -> b.Stats.Histogram.lo > b.Stats.Histogram.hi) buckets
    || not (monotone buckets)
  then issue Non_monotone_histogram "histogram bucket bounds are not monotone"
  else
    (* [Histogram.build]'s contract: never more buckets than requested.
       A violation means the histogram was tampered with (or a builder
       regression slipped through), so the sketch is untrustworthy. *)
    match Stats.Histogram.requested_buckets h with
    | Some n when List.length buckets > n ->
      issue Excess_buckets
        (Printf.sprintf "histogram has %d buckets but %d were requested"
           (List.length buckets) n)
    | Some _ | None -> None

(* --- MCV --- *)

let mcv_issue table column m =
  let entries = Stats.Mcv.entries m in
  let bad e =
    not (finite e.Stats.Mcv.fraction)
    || e.Stats.Mcv.fraction < 0.
    || e.Stats.Mcv.fraction > 1.
  in
  let total =
    List.fold_left (fun acc e -> acc +. e.Stats.Mcv.fraction) 0. entries
  in
  if List.exists bad entries then
    Some { table; column = Some column; kind = Invalid_mcv;
           detail = "MCV fraction outside [0, 1] or NaN";
           repair = "drop MCV sketch" }
  else if total > 1. +. 1e-9 then
    Some { table; column = Some column; kind = Invalid_mcv;
           detail = Printf.sprintf "MCV fractions sum to %g > 1" total;
           repair = "drop MCV sketch" }
  else None

(* --- degree sequence --- *)

(* Norm consistency of a degree sequence: all norms finite and
   non-negative, L∞ ≤ L1 (the max degree cannot exceed the total mass),
   L2² ≤ L1·L∞ (Σd² ≤ max·Σd), and the tracked top entries descending
   with none above L∞. The inequalities hold exactly for analyzed columns
   and are preserved by [Stats.Degree.merge] (the merged L2² omits only
   non-negative cross terms), so a violation means corruption; the small
   relative slack only absorbs float rounding. *)
let degree_issue table column (d : Stats.Degree.t) =
  let issue detail =
    Some { table; column = Some column; kind = Invalid_degree; detail;
           repair = "drop degree statistics" }
  in
  let tops = Stats.Degree.top_degrees d in
  let rec descending i =
    i + 1 >= Array.length tops
    || (tops.(i) >= tops.(i + 1) && descending (i + 1))
  in
  let eps = 1e-6 in
  if
    not
      (finite d.Stats.Degree.l1
      && finite d.Stats.Degree.l2_sq
      && finite d.Stats.Degree.linf
      && d.Stats.Degree.l1 >= 0.
      && d.Stats.Degree.l2_sq >= 0.
      && d.Stats.Degree.linf >= 0.
      && Array.for_all (fun x -> finite x && x >= 0.) tops)
  then issue "degree norms carry NaN/negative values"
  else if d.Stats.Degree.linf > d.Stats.Degree.l1 *. (1. +. eps) then
    issue
      (Printf.sprintf "max degree %g exceeds L1 mass %g" d.Stats.Degree.linf
         d.Stats.Degree.l1)
  else if
    d.Stats.Degree.l2_sq
    > (d.Stats.Degree.l1 *. d.Stats.Degree.linf *. (1. +. eps)) +. eps
  then
    issue
      (Printf.sprintf "L2² = %g exceeds L1·L∞ = %g" d.Stats.Degree.l2_sq
         (d.Stats.Degree.l1 *. d.Stats.Degree.linf))
  else if not (descending 0) then
    issue "top-k degrees are not descending"
  else if
    Array.length tops > 0 && tops.(0) > d.Stats.Degree.linf *. (1. +. eps)
  then
    issue
      (Printf.sprintf "tracked degree %g exceeds recorded L∞ %g" tops.(0)
         d.Stats.Degree.linf)
  else None

(* --- value bounds --- *)

let nan_value = function
  | Rel.Value.Float f -> Float.is_nan f
  | Rel.Value.Int _ | Rel.Value.String _ | Rel.Value.Bool _ | Rel.Value.Null ->
    false

let bounds_issue table column (s : Stats.Col_stats.t) =
  match s.min_value, s.max_value with
  | Some lo, Some hi ->
    if nan_value lo || nan_value hi then
      Some { table; column = Some column; kind = Invalid_bounds;
             detail = "NaN value bound"; repair = "drop value bounds" }
    else if Rel.Value.compare lo hi > 0 then
      Some { table; column = Some column; kind = Invalid_bounds;
             detail =
               Printf.sprintf "min %s exceeds max %s"
                 (Rel.Value.to_string lo) (Rel.Value.to_string hi);
             repair = "drop value bounds" }
    else None
  | Some v, None | None, Some v ->
    if nan_value v then
      Some { table; column = Some column; kind = Invalid_bounds;
             detail = "NaN value bound"; repair = "drop value bounds" }
    else None
  | None, None -> None

(* --- one column --- *)

let audit_column table ~rows column (s : Stats.Col_stats.t) =
  let issues = ref [] in
  let note issue = issues := issue :: !issues in
  let s =
    if s.distinct < 0 then begin
      note { table; column = Some column; kind = Negative_distinct;
             detail = Printf.sprintf "distinct count %d < 0" s.distinct;
             repair = "clamp to 0" };
      { s with distinct = 0 }
    end
    else s
  in
  let s =
    if rows >= 0 && s.distinct > rows then begin
      note { table; column = Some column; kind = Distinct_exceeds_rows;
             detail =
               Printf.sprintf "distinct count %d exceeds row count %d"
                 s.distinct rows;
             repair = "clamp to row count" };
      { s with distinct = rows }
    end
    else s
  in
  let s =
    (* The distinct sketch is an independent measurement of [d]; when the
       recorded count has drifted a factor of 4 away from it (plus an
       additive slack that silences small columns, where sketch noise is
       proportionally large), the recorded number is stale beyond use.
       Legitimately analyzed columns never trip this: [of_values] writes
       the exact count and the sketch is ~2% accurate. *)
    match s.distinct_sketch with
    | Some sketch when rows > 0 ->
      let est = Stats.Hll.estimate sketch in
      let d = float_of_int s.distinct in
      if Float.max d est > (4. *. Float.min d est) +. 16. then begin
        let repaired = max 0 (min rows (int_of_float (Float.round est))) in
        note { table; column = Some column; kind = Distinct_drift;
               detail =
                 Printf.sprintf
                   "recorded distinct %d drifted from sketch estimate %.0f"
                   s.distinct est;
               repair =
                 Printf.sprintf "adopt the sketch estimate (%d)" repaired };
        { s with distinct = repaired }
      end
      else s
    | Some _ | None -> s
  in
  let s =
    if s.nulls < 0 then begin
      note { table; column = Some column; kind = Negative_nulls;
             detail = Printf.sprintf "null count %d < 0" s.nulls;
             repair = "clamp to 0" };
      { s with nulls = 0 }
    end
    else s
  in
  let s =
    match bounds_issue table column s with
    | Some issue ->
      note issue;
      { s with min_value = None; max_value = None }
    | None -> s
  in
  let s =
    match s.histogram with
    | Some h -> begin
      match histogram_issue table column h with
      | Some issue ->
        note issue;
        { s with histogram = None }
      | None -> s
    end
    | None -> s
  in
  let s =
    match s.mcv with
    | Some m -> begin
      match mcv_issue table column m with
      | Some issue ->
        note issue;
        { s with mcv = None }
      | None -> s
    end
    | None -> s
  in
  let s =
    match s.degree with
    | Some d -> begin
      match degree_issue table column d with
      | Some issue ->
        note issue;
        { s with degree = None }
      | None -> s
    end
    | None -> s
  in
  (s, List.rev !issues)

(* --- one table --- *)

let audit_table (t : Table.t) =
  let issues = ref [] in
  let note issue = issues := issue :: !issues in
  let rows =
    (* Stored tables carry ground truth: a row count that disagrees with
       the stored cardinality is stale (e.g. data regenerated after
       ANALYZE). Check it first so later per-column clamps use the
       repaired count. *)
    match t.data with
    | Some rel ->
      let actual = Rel.Relation.cardinality rel in
      if t.row_count <> actual then begin
        note { table = t.name; column = None; kind = Stale_row_count;
               detail =
                 Printf.sprintf
                   "catalog row count %d but stored data has %d rows"
                   t.row_count actual;
               repair = "use the stored cardinality" };
        actual
      end
      else t.row_count
    | None -> t.row_count
  in
  let rows =
    if rows < 0 then begin
      note { table = t.name; column = None; kind = Negative_rows;
             detail = Printf.sprintf "row count %d < 0" rows;
             repair = "clamp to 0" };
      0
    end
    else rows
  in
  let column_stats =
    List.map
      (fun (name, s) ->
        let s, column_issues = audit_column t.name ~rows name s in
        List.iter note column_issues;
        (name, s))
      t.column_stats
  in
  ({ t with row_count = rows; column_stats }, List.rev !issues)

let check_table t = snd (audit_table t)
let repair_table t = audit_table t

let audit_db db =
  let out = Db.create () in
  let issues =
    List.concat_map
      (fun table ->
        let repaired, issues = audit_table table in
        Db.add out repaired;
        issues)
      (Db.tables db)
  in
  (out, issues)

let check_db db = snd (audit_db db)
let repair_db db = audit_db db

let validate strictness db =
  match strictness with
  | Strict -> begin
    match check_db db with
    | [] -> Ok (db, [])
    | issue :: _ -> Error issue
  end
  | Repair -> Ok (audit_db db)
  | Trap -> Ok (db, check_db db)
