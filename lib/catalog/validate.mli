(** Catalog statistics validation and repair.

    Catalog numbers arrive from outside the estimator (ANALYZE runs, hand
    curation, test fixtures) and can be arbitrarily wrong: negative
    cardinalities, distinct counts exceeding the row count, NaN histogram
    buckets, MCV fractions summing past 1, row counts stale after the data
    was regenerated. ELS's formulas silently amplify such garbage, so the
    pipeline audits statistics up front and degrades to the Section 5
    ball/urn model (drop the offending sketch, clamp the count) rather
    than propagating impossible numbers.

    How an audit finding is acted on is governed by the {!strictness}
    mode; the mode itself is re-exported as [Els.Config.strictness] so
    core code never depends on this module's position in the stack. *)

type strictness =
  | Strict   (** first issue aborts preparation with a structured error *)
  | Repair   (** clamp / drop the offending statistic, count the repair *)
  | Trap     (** observe only: report issues, use the statistics as-is *)

val strictness_name : strictness -> string
val strictness_of_string : string -> strictness option

type kind =
  | Negative_rows
  | Stale_row_count        (** catalog ‖R‖ disagrees with stored data *)
  | Negative_distinct
  | Distinct_exceeds_rows  (** d > ‖R‖ *)
  | Distinct_drift         (** recorded d far from the distinct sketch's
                               independent estimate *)
  | Negative_nulls
  | Invalid_bounds         (** min > max, or a NaN bound *)
  | Nan_histogram          (** NaN / negative bucket statistics *)
  | Non_monotone_histogram
  | Excess_buckets         (** more buckets than {!Stats.Histogram.build}
                               was asked for *)
  | Invalid_mcv            (** fraction outside [0,1] or sum > 1 *)
  | Invalid_degree         (** degree norms NaN/negative or inconsistent:
                               L∞ > L1, L2² > L1·L∞, or tracked top-k
                               degrees non-descending / above L∞ *)

val kind_name : kind -> string

type issue = {
  table : string;
  column : string option;  (** [None] for table-level issues *)
  kind : kind;
  detail : string;         (** what was found *)
  repair : string;         (** what Repair mode does about it *)
}

val issue_to_string : issue -> string

val check_table : Table.t -> issue list
(** Audit one table without modifying it. *)

val repair_table : Table.t -> Table.t * issue list
(** Audit one table, returning a repaired copy plus everything found.
    Repairs: stale/negative row counts are replaced by the stored
    cardinality / clamped at 0, distinct and null counts are clamped into
    [[0, rows]], and invalid bounds/histograms/MCV sketches/degree
    sequences are dropped (estimation then falls back to the uniform/urn
    model; degree-capped estimators fall back to min-rows). *)

val check_db : Db.t -> issue list
val repair_db : Db.t -> Db.t * issue list
(** Whole-catalog variants; [repair_db] leaves the input untouched and
    returns a fresh catalog. *)

val validate : strictness -> Db.t -> (Db.t * issue list, issue) result
(** Audit a catalog under a strictness mode. [Strict] returns the first
    issue as [Error]; [Repair] returns a repaired catalog plus all issues
    (each one a counted repair); [Trap] returns the catalog unchanged
    plus all issues. *)
