module Predicate = Query.Predicate

type t = {
  predicates : Predicate.t list;
  classes : Eqclass.t;
}

(* All pairs within each class, as canonical equality predicates.
   Non-equality comparisons never enter a class (see Eqclass), so they
   pass through the closure untouched. *)
let all_pair_equalities classes =
  List.concat_map
    (fun cls ->
      let rec pairs = function
        | [] -> []
        | c :: rest ->
          List.map (fun c' -> Predicate.col_eq c c') rest @ pairs rest
      in
      pairs cls)
    (List.filter (fun cls -> List.length cls >= 2) (Eqclass.classes classes))

(* Variant 2e: propagate every constant comparison to the whole class. *)
let propagate_constants classes predicates =
  List.concat_map
    (fun p ->
      match p with
      | Predicate.Cmp { col; op; const } ->
        List.map
          (fun col' -> Predicate.cmp col' op const)
          (Eqclass.members classes col)
      | Predicate.Col_cmp _ -> [])
    predicates

let compute predicates =
  let classes = Eqclass.of_predicates predicates in
  let closed =
    Predicate.Set.of_list
      (all_pair_equalities classes
      @ propagate_constants classes predicates
      @ predicates)
  in
  { predicates = Predicate.Set.elements closed; classes }

let implied predicates =
  let original = Predicate.Set.of_list predicates in
  let { predicates = closed; _ } = compute predicates in
  List.filter (fun p -> not (Predicate.Set.mem p original)) closed

let close_query q =
  let { predicates; _ } = compute q.Query.predicates in
  Query.with_predicates q predicates
