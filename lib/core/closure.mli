(** Predicate transitive closure (Section 4, steps 1–2).

    Performs duplicate-predicate elimination and generates every implied
    predicate. The paper's five derivation variants (2a–2e) are all
    consequences of the equivalence classes:

    - within a class, every pair of columns is equal — generating the pair
      across two tables is variant 2a or 2d (a join predicate); within one
      table it is variant 2b or 2c (a local predicate);
    - a constant comparison on one member of a class propagates to every
      member (variant 2e).

    The closed set is canonical: predicates are deduplicated and sorted, so
    two equivalent queries close to the same conjunction. *)

type t = {
  predicates : Query.Predicate.t list;
      (** the closed conjunction, duplicate-free, sorted *)
  classes : Eqclass.t;
      (** equivalence classes of all columns involved in equalities *)
}

val compute : Query.Predicate.t list -> t
(** Close a conjunction. The input need not be duplicate-free. *)

val implied : Query.Predicate.t list -> Query.Predicate.t list
(** The predicates added by closure: [compute ps] minus (deduplicated)
    [ps]. *)

val close_query : Query.t -> Query.t
(** The query with its WHERE conjunction replaced by the closed set — the
    paper's "Orig. + PTC" rewrite. *)
