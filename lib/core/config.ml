type rule =
  | Multiplicative
  | Smallest
  | Largest

type strictness = Catalog.Validate.strictness =
  | Strict
  | Repair
  | Trap

type t = {
  closure : bool;
  estimator : Estimator.t;
  local_aware : bool;
  single_table : bool;
  strictness : strictness;
}

let estimator_of_rule = function
  | Multiplicative -> Estimator.m
  | Smallest -> Estimator.ss
  | Largest -> Estimator.ls

let of_estimator ?(strictness = Repair) (e : Estimator.t) =
  {
    closure = e.Estimator.flags.Estimator.closure;
    estimator = e;
    local_aware = e.Estimator.flags.Estimator.local_aware;
    single_table = e.Estimator.flags.Estimator.single_table;
    strictness;
  }

let sm ~ptc = { (of_estimator Estimator.m) with closure = ptc }
(* Estimator.m's canonical flags already have closure on, so [sm ~ptc:true]
   = [of_estimator Estimator.m]; the record update only matters for plain
   SM. *)
let sss = of_estimator Estimator.ss
let els = of_estimator Estimator.ls
let pess = of_estimator Estimator.pess

let panel ?strictness () =
  List.map (fun e -> of_estimator ?strictness e) (Estimator.registry ())

let with_strictness strictness t = { t with strictness }
let with_estimator estimator t = { t with estimator }
let combine t sels = t.estimator.Estimator.combine sels
let rule_name r = Estimator.label (estimator_of_rule r)

(* Field-wise: the estimator holds closures, so structural equality on the
   whole record would raise [Invalid_argument "compare: functional value"].
   Strictness is orthogonal to the algorithm and compared separately. *)
let same_algorithm a b =
  Bool.equal a.closure b.closure
  && Estimator.equal a.estimator b.estimator
  && Bool.equal a.local_aware b.local_aware
  && Bool.equal a.single_table b.single_table

let name t =
  let algorithm =
    if same_algorithm t els then "ELS"
    else if same_algorithm t sss then "SSS"
    else if same_algorithm t pess then "PESS"
    else if same_algorithm t (sm ~ptc:false) then "SM"
    else if same_algorithm t (sm ~ptc:true) then "SM+PTC"
    else
      (* A registered estimator in its canonical configuration prints its
         label (LP2, DEGSEQ, ...); custom(...) is for off-registry
         flag combinations only. *)
      match
        List.find_opt
          (fun e -> same_algorithm t (of_estimator e))
          (Estimator.registry ())
      with
      | Some e -> Estimator.label e
      | None ->
      Printf.sprintf "custom(rule=%s%s%s%s)"
        (Estimator.label t.estimator)
        (if t.closure then ",ptc" else "")
        (if t.local_aware then ",local" else "")
        (if t.single_table then ",1table" else "")
  in
  match t.strictness with
  | Repair -> algorithm
  | Strict -> algorithm ^ "!strict"
  | Trap -> algorithm ^ "!trap"
