type rule =
  | Multiplicative
  | Smallest
  | Largest

type t = {
  closure : bool;
  rule : rule;
  local_aware : bool;
  single_table : bool;
}

let sm ~ptc =
  { closure = ptc; rule = Multiplicative; local_aware = false;
    single_table = false }

let sss =
  { closure = true; rule = Smallest; local_aware = false;
    single_table = false }

let els =
  { closure = true; rule = Largest; local_aware = true; single_table = true }

let combine t sels =
  match t.rule with
  | Multiplicative -> List.fold_left ( *. ) 1. sels
  | Smallest -> List.fold_left Float.min 1. sels
  | Largest -> begin
    match sels with
    | [] -> 1.
    | s :: rest -> List.fold_left Float.max s rest
  end

let rule_name = function
  | Multiplicative -> "M"
  | Smallest -> "SS"
  | Largest -> "LS"

let name t =
  if t = els then "ELS"
  else if t = sss then "SSS"
  else if t = sm ~ptc:false then "SM"
  else if t = sm ~ptc:true then "SM+PTC"
  else
    Printf.sprintf "custom(rule=%s%s%s%s)" (rule_name t.rule)
      (if t.closure then ",ptc" else "")
      (if t.local_aware then ",local" else "")
      (if t.single_table then ",1table" else "")
