type rule =
  | Multiplicative
  | Smallest
  | Largest

type strictness = Catalog.Validate.strictness =
  | Strict
  | Repair
  | Trap

type t = {
  closure : bool;
  rule : rule;
  local_aware : bool;
  single_table : bool;
  strictness : strictness;
}

let sm ~ptc =
  { closure = ptc; rule = Multiplicative; local_aware = false;
    single_table = false; strictness = Repair }

let sss =
  { closure = true; rule = Smallest; local_aware = false;
    single_table = false; strictness = Repair }

let els =
  { closure = true; rule = Largest; local_aware = true; single_table = true;
    strictness = Repair }

let with_strictness strictness t = { t with strictness }

let combine t sels =
  match t.rule with
  | Multiplicative -> List.fold_left ( *. ) 1. sels
  | Smallest -> List.fold_left Float.min 1. sels
  | Largest -> begin
    match sels with
    | [] -> 1.
    | s :: rest -> List.fold_left Float.max s rest
  end

let rule_name = function
  | Multiplicative -> "M"
  | Smallest -> "SS"
  | Largest -> "LS"

let name t =
  (* Strictness is orthogonal to the algorithm: compare modulo it so the
     presets keep their names, and tag non-default modes as a suffix. *)
  let base = { t with strictness = Repair } in
  let algorithm =
    if base = els then "ELS"
    else if base = sss then "SSS"
    else if base = sm ~ptc:false then "SM"
    else if base = sm ~ptc:true then "SM+PTC"
    else
      Printf.sprintf "custom(rule=%s%s%s%s)" (rule_name t.rule)
        (if t.closure then ",ptc" else "")
        (if t.local_aware then ",local" else "")
        (if t.single_table then ",1table" else "")
  in
  match t.strictness with
  | Repair -> algorithm
  | Strict -> algorithm ^ "!strict"
  | Trap -> algorithm ^ "!trap"
