(** Estimation algorithm configurations.

    The paper compares three algorithms, all expressible as settings of one
    estimator:

    - {b SM} — the "standard algorithm" with the multiplicative Rule M of
      Selinger et al.: every eligible join selectivity is multiplied in,
      and join selectivities are computed from {e base} column
      cardinalities, ignoring the effect of local predicates.
    - {b SSS} — the standard algorithm with Rule SS: within an equivalence
      class only the smallest eligible selectivity is used.
    - {b ELS} — the paper's algorithm: transitive closure, local-aware
      effective cardinalities (Section 5), single-table j-equivalent column
      handling (Section 6) and Rule LS (largest selectivity, Section 7).

    Predicate transitive closure is a separate toggle because the paper's
    experiment runs SM both with and without the PTC rewrite. *)

type rule =
  | Multiplicative  (** Rule M *)
  | Smallest  (** Rule SS *)
  | Largest  (** Rule LS *)

type strictness = Catalog.Validate.strictness =
  | Strict  (** corrupt statistics / invariant breaches become errors *)
  | Repair  (** clamp and degrade, counting every repair (the default) *)
  | Trap  (** observe only: count violations, change nothing *)
(** How the pipeline reacts to corrupt catalog statistics and to runtime
    invariant breaches. Re-exported from {!Catalog.Validate} so callers
    configure it here without depending on the catalog layer. *)

type t = {
  closure : bool;
      (** derive implied predicates before estimating (PTC, step 2) *)
  rule : rule;
  local_aware : bool;
      (** use post-local-predicate column cardinalities in join
          selectivities (Section 5); the standard algorithm does not *)
  single_table : bool;
      (** apply the Section 6 treatment of j-equivalent columns within one
          table *)
  strictness : strictness;
      (** robustness mode for catalog validation and invariant guards;
          orthogonal to the estimation algorithm *)
}

val sm : ptc:bool -> t
(** Algorithm SM, optionally after the PTC rewrite. *)

val sss : t
(** Algorithm SSS (Rule SS "is sensible only when predicate transitive
    closure has been applied", so closure is always on). *)

val els : t
(** Algorithm ELS. *)

val with_strictness : strictness -> t -> t

val combine : t -> float list -> float
(** Fold one equivalence class's eligible join selectivities under the
    configured rule: product for Rule M, minimum for Rule SS, maximum for
    Rule LS. The empty list combines to 1 (a cartesian step). *)

val name : t -> string
(** Short display name: "SM", "SM+PTC", "SSS", "ELS", or a descriptive
    fallback for custom configurations. Strictness does not change the
    algorithm, so it only shows as a ["!strict"] / ["!trap"] suffix for
    the non-default modes. *)

val rule_name : rule -> string
