(** Estimation algorithm configurations.

    The paper compares three algorithms, all expressible as settings of one
    estimator:

    - {b SM} — the "standard algorithm" with the multiplicative Rule M of
      Selinger et al.: every eligible join selectivity is multiplied in,
      and join selectivities are computed from {e base} column
      cardinalities, ignoring the effect of local predicates.
    - {b SSS} — the standard algorithm with Rule SS: within an equivalence
      class only the smallest eligible selectivity is used.
    - {b ELS} — the paper's algorithm: transitive closure, local-aware
      effective cardinalities (Section 5), single-table j-equivalent column
      handling (Section 6) and Rule LS (largest selectivity, Section 7).

    The combining rule itself is a first-class {!Estimator.t}; a
    configuration pairs one with the pipeline toggles (closure,
    local-awareness, single-table handling, strictness). Predicate
    transitive closure is a separate toggle because the paper's experiment
    runs SM both with and without the PTC rewrite. *)

type rule =
  | Multiplicative  (** Rule M *)
  | Smallest  (** Rule SS *)
  | Largest  (** Rule LS *)
(** @deprecated The closed enum the estimator seam replaced. Kept only as
    a constructor shim: convert with {!estimator_of_rule} and prefer
    {!Estimator.t} everywhere new. *)

type strictness = Catalog.Validate.strictness =
  | Strict  (** corrupt statistics / invariant breaches become errors *)
  | Repair  (** clamp and degrade, counting every repair (the default) *)
  | Trap  (** observe only: count violations, change nothing *)
(** How the pipeline reacts to corrupt catalog statistics and to runtime
    invariant breaches. Re-exported from {!Catalog.Validate} so callers
    configure it here without depending on the catalog layer. *)

type t = {
  closure : bool;
      (** derive implied predicates before estimating (PTC, step 2) *)
  estimator : Estimator.t;
      (** how per-class join selectivities combine, and any per-step
          cardinality cap *)
  local_aware : bool;
      (** use post-local-predicate column cardinalities in join
          selectivities (Section 5); the standard algorithm does not *)
  single_table : bool;
      (** apply the Section 6 treatment of j-equivalent columns within one
          table *)
  strictness : strictness;
      (** robustness mode for catalog validation and invariant guards;
          orthogonal to the estimation algorithm *)
}

val sm : ptc:bool -> t
(** Algorithm SM, optionally after the PTC rewrite. *)

val sss : t
(** Algorithm SSS (Rule SS "is sensible only when predicate transitive
    closure has been applied", so closure is always on). *)

val els : t
(** Algorithm ELS. *)

val pess : t
(** The pessimistic per-step bound {!Estimator.pess} under the ELS
    pipeline settings. *)

val of_estimator : ?strictness:strictness -> Estimator.t -> t
(** The estimator's canonical configuration: pipeline toggles from its
    {!Estimator.flags}, default strictness {!Repair}. *)

val panel : ?strictness:strictness -> unit -> t list
(** One canonical configuration per registered estimator, in registry
    order — the row set for estimator-comparison experiments. *)

val estimator_of_rule : rule -> Estimator.t
(** Shim from the deprecated enum: [Multiplicative ↦ Estimator.m],
    [Smallest ↦ Estimator.ss], [Largest ↦ Estimator.ls]. *)

val with_strictness : strictness -> t -> t

val with_estimator : Estimator.t -> t -> t
(** Swap the combining rule, keeping every pipeline toggle. *)

val combine : t -> float list -> float
(** [t.estimator.combine]: fold one equivalence class's eligible join
    selectivities — product for Rule M, minimum for Rule SS, maximum for
    Rule LS. The empty list combines to 1 (a cartesian step).
    @deprecated Call the estimator directly in new code. *)

val name : t -> string
(** Short display name: "SM", "SM+PTC", "SSS", "ELS", "PESS", or a
    descriptive fallback for custom configurations. Strictness does not
    change the algorithm, so it only shows as a ["!strict"] / ["!trap"]
    suffix for the non-default modes. *)

val rule_name : rule -> string
(** The {!Estimator.label} of the shimmed estimator: "M", "SS", "LS". *)
