module Eqclass = Eqclass
module Closure = Closure
module Local_pred = Local_pred
module Config = Config
module Profile = Profile
module Selectivity = Selectivity
module Incremental = Incremental

let prepare ?memoize config db query = Profile.build ?memoize config db query

let estimate config db query order =
  Incremental.final_size (prepare config db query) order

let intermediate_sizes config db query order =
  Incremental.history
    (Incremental.estimate_order (prepare config db query) order)
