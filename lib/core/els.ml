module Eqclass = Eqclass
module Closure = Closure
module Local_pred = Local_pred
module Config = Config
module Profile = Profile
module Selectivity = Selectivity
module Incremental = Incremental

let prepare = Profile.build

let estimate config db query order =
  Incremental.final_size (prepare config db query) order

let intermediate_sizes config db query order =
  (Incremental.estimate_order (prepare config db query) order)
    .Incremental.history
