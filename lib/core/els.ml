module Eqclass = Eqclass
module Closure = Closure
module Local_pred = Local_pred
module Estimator = Estimator
module Config = Config
module Profile = Profile
module Selectivity = Selectivity
module Incremental = Incremental
module Els_error = Els_error
module Guard = Guard
module Kernel = Kernel

let prepare ?memoize ?kernel ?trace ?annotations config db query =
  let profile =
    Profile.build ?memoize ?kernel ?trace ?annotations config db query
  in
  (* Pay kernel compilation here, once per prepared query, rather than on
     the first estimation step. *)
  ignore (Profile.kernel profile : Kernel.t option);
  profile

let prepare_epoch ?memoize ?kernel ?trace config epoch query =
  (* Collect the epoch's staleness notes for the tables this query reads,
     so a derivation card attached to the profile discloses any
     last-known-good fallbacks behind its numbers. *)
  let annotations =
    query.Query.tables
    |> List.concat_map (fun name ->
           let source = Profile.normalize (Query.source query name) in
           List.map
             (fun note -> Printf.sprintf "%s: %s" source note)
             (Catalog.Epoch.annotations_for epoch source))
    |> List.sort_uniq String.compare
  in
  prepare ?memoize ?kernel ?trace ~annotations config
    (Catalog.Epoch.db epoch) query

let estimate config db query order =
  Incremental.final_size (prepare config db query) order

let intermediate_sizes config db query order =
  Incremental.history
    (Incremental.estimate_order (prepare config db query) order)

let prepare_result ?memoize ?kernel ?trace config db query =
  match Profile.build_result ?memoize ?kernel ?trace config db query with
  | Ok profile -> begin
    (* Compilation evaluates every join selectivity, so under [Strict] a
       guard breach can surface here — reify it like [build_result] does. *)
    match Profile.kernel profile with
    | _ -> Ok profile
    | exception Els_error.Error e -> Error e
  end
  | Error _ as e -> e

(* Reify everything the pipeline can throw at the API boundary; the inner
   code still uses exceptions freely. *)
let wrap f =
  match f () with
  | v -> Ok v
  | exception Els_error.Error e -> Error e
  | exception Invalid_argument msg ->
    Error (Els_error.Invalid_query { detail = msg })
  | exception Not_found ->
    Error
      (Els_error.Invalid_query
         { detail = "a query table or column is missing from the catalog" })

let checked_estimate site x =
  if Float.is_nan x then
    Error (Els_error.Invariant_violation { site; detail = "estimate is NaN" })
  else if x < 0. then
    Error
      (Els_error.Invariant_violation
         { site; detail = Printf.sprintf "estimate %h is negative" x })
  else if x = infinity then
    Error
      (Els_error.Invariant_violation { site; detail = "estimate is infinite" })
  else Ok x

let estimate_result config db query order =
  match wrap (fun () -> estimate config db query order) with
  | Error _ as e -> e
  | Ok x -> checked_estimate "Els.estimate" x

let intermediate_sizes_result config db query order =
  match wrap (fun () -> intermediate_sizes config db query order) with
  | Error _ as e -> e
  | Ok sizes ->
    let rec check = function
      | [] -> Ok sizes
      | x :: rest -> begin
        match checked_estimate "Els.intermediate_sizes" x with
        | Ok _ -> check rest
        | Error _ as e -> e
      end
    in
    check sizes
