(** Algorithm ELS — Equivalence and Largest Selectivity.

    Library root. Reproduces Swami & Schiefer, "On the Estimation of Join
    Result Sizes" (EDBT 1994): incremental, consistent estimation of join
    result sizes using equivalence classes of join columns, local-predicate
    effects on table and column cardinalities, and the Largest Selectivity
    rule — together with the baseline algorithms (SM, SSS) the paper
    compares against.

    Typical use:
    {[
      let profile = Els.prepare Els.Config.els db query in
      let state = Els.Incremental.estimate_order profile ["b"; "g"; "m"; "s"] in
      state.Els.Incremental.size
    ]} *)

module Eqclass = Eqclass
module Closure = Closure
module Local_pred = Local_pred
module Config = Config
module Profile = Profile
module Selectivity = Selectivity
module Incremental = Incremental

val prepare : ?memoize:bool -> Config.t -> Catalog.Db.t -> Query.t -> Profile.t
(** The preliminary phase (steps 1–5): dedup, closure, equivalence classes,
    local-predicate effects, single-table handling, the hot-path predicate
    indexes and everything join selectivities need. Alias of
    {!Profile.build}; [memoize] (default [true]) controls the profile's
    selectivity caches. *)

val estimate : Config.t -> Catalog.Db.t -> Query.t -> string list -> float
(** One-shot: prepare and estimate the final join result size along the
    given join order. *)

val intermediate_sizes :
  Config.t -> Catalog.Db.t -> Query.t -> string list -> float list
(** Sizes after each join of the order — the numbers reported in the
    paper's Section 8 table. *)
