(** Algorithm ELS — Equivalence and Largest Selectivity.

    Library root. Reproduces Swami & Schiefer, "On the Estimation of Join
    Result Sizes" (EDBT 1994): incremental, consistent estimation of join
    result sizes using equivalence classes of join columns, local-predicate
    effects on table and column cardinalities, and the Largest Selectivity
    rule — together with the baseline algorithms (SM, SSS) the paper
    compares against.

    Typical use:
    {[
      let profile = Els.prepare Els.Config.els db query in
      let state = Els.Incremental.estimate_order profile ["b"; "g"; "m"; "s"] in
      state.Els.Incremental.size
    ]} *)

module Eqclass = Eqclass
module Closure = Closure
module Local_pred = Local_pred
module Estimator = Estimator
module Config = Config
module Profile = Profile
module Selectivity = Selectivity
module Incremental = Incremental
module Els_error = Els_error
module Guard = Guard
module Kernel = Kernel

val prepare :
  ?memoize:bool ->
  ?kernel:bool ->
  ?trace:Obs.Trace.t ->
  ?annotations:string list ->
  Config.t ->
  Catalog.Db.t ->
  Query.t ->
  Profile.t
(** The preliminary phase (steps 1–5): dedup, closure, equivalence classes,
    local-predicate effects, single-table handling, the hot-path predicate
    indexes and everything join selectivities need. {!Profile.build}, plus
    eager compilation of the profile's estimation {!Kernel} so enumeration
    never pays it mid-plan; [kernel:false] pins the profile to the
    interpreted path (the differential baseline). [memoize] (default
    [true]) controls the profile's selectivity caches, [trace] records
    "profile"/"validate" spans, [annotations] stamps staleness notes onto
    attached derivation sinks. *)

val prepare_epoch :
  ?memoize:bool ->
  ?kernel:bool ->
  ?trace:Obs.Trace.t ->
  Config.t ->
  Catalog.Epoch.t ->
  Query.t ->
  Profile.t
(** {!prepare} against a pinned catalog epoch. The profile reads only the
    epoch's frozen statistics — later {!Catalog.Store.publish}es cannot
    change its numbers — and inherits the epoch's staleness annotations
    for the query's tables, so an explain card discloses any
    last-known-good fallback behind the estimate. *)

val estimate : Config.t -> Catalog.Db.t -> Query.t -> string list -> float
(** One-shot: prepare and estimate the final join result size along the
    given join order. *)

val intermediate_sizes :
  Config.t -> Catalog.Db.t -> Query.t -> string list -> float list
(** Sizes after each join of the order — the numbers reported in the
    paper's Section 8 table. *)

(** {1 Result-typed entry points}

    The same operations with every failure reified as {!Els_error.t}:
    structured errors from [Strict]-mode validation, invariant breaches,
    unknown tables/columns, and structural limits. These never raise, and
    additionally reject any non-finite or negative final estimate — a
    NaN that sneaks through [Trap] mode surfaces here as
    [Invariant_violation] instead of poisoning the caller. *)

val prepare_result :
  ?memoize:bool ->
  ?kernel:bool ->
  ?trace:Obs.Trace.t ->
  Config.t ->
  Catalog.Db.t ->
  Query.t ->
  (Profile.t, Els_error.t) result
(** {!Profile.build_result} plus eager kernel compilation; a [Strict]-mode
    guard breach during compilation is reified like any build failure. *)

val estimate_result :
  Config.t ->
  Catalog.Db.t ->
  Query.t ->
  string list ->
  (float, Els_error.t) result
(** [Ok] estimates are always finite and non-negative. *)

val intermediate_sizes_result :
  Config.t ->
  Catalog.Db.t ->
  Query.t ->
  string list ->
  (float list, Els_error.t) result
