type t =
  | Missing_stats of { table : string; column : string option }
  | Corrupt_stats of { table : string; column : string option; detail : string }
  | Invalid_query of { detail : string }
  | Parse_error of { position : int; detail : string }
  | Invariant_violation of { site : string; detail : string }
  | Budget_exhausted of {
      site : string;
      resource : Rel.Budget.resource;
      detail : string;
    }
  | Overloaded of { depth : int; shed_policy : string }

exception Error of t

let raise_ t = raise (Error t)

let to_string = function
  | Missing_stats { table; column } ->
    Printf.sprintf "missing statistics for %s%s" table
      (match column with None -> "" | Some c -> "." ^ c)
  | Corrupt_stats { table; column; detail } ->
    Printf.sprintf "corrupt statistics for %s%s: %s" table
      (match column with None -> "" | Some c -> "." ^ c)
      detail
  | Invalid_query { detail } -> Printf.sprintf "invalid query: %s" detail
  | Parse_error { position; detail } ->
    Printf.sprintf "parse error at offset %d: %s" position detail
  | Invariant_violation { site; detail } ->
    Printf.sprintf "estimator invariant violated at %s: %s" site detail
  | Budget_exhausted { site; resource; detail } ->
    Printf.sprintf "%s budget exhausted at %s: %s"
      (Rel.Budget.resource_name resource)
      site detail
  | Overloaded { depth; shed_policy } ->
    Printf.sprintf "overloaded: request shed at queue depth %d (policy %s)"
      depth shed_policy

let pp ppf t = Format.pp_print_string ppf (to_string t)

let of_issue (i : Catalog.Validate.issue) =
  Corrupt_stats
    {
      table = i.table;
      column = i.column;
      detail =
        Printf.sprintf "%s [%s]" i.detail (Catalog.Validate.kind_name i.kind);
    }

let () =
  Printexc.register_printer (function
    | Error t -> Some (Printf.sprintf "Els_error.Error(%s)" (to_string t))
    | _ -> None)
