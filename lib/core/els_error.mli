(** Structured errors for the estimation pipeline.

    Every way the pipeline can refuse to produce an estimate is one of
    these constructors, each carrying enough context to act on: which
    statistic is missing or corrupt, where a query stopped parsing, which
    invariant a computed number violated. The [Result]-typed entry points
    ([Els.estimate_result], [Els.prepare_result], [Sqlfront.Binder.compile_result])
    return [t]; the legacy exception API raises {!Error} carrying the same
    value, so both styles share one taxonomy. *)

type t =
  | Missing_stats of { table : string; column : string option }
      (** a lookup needed statistics the catalog does not have *)
  | Corrupt_stats of { table : string; column : string option; detail : string }
      (** catalog validation found an impossible number (Strict mode) *)
  | Invalid_query of { detail : string }
      (** the query is well-formed SQL but cannot be estimated
          (unknown table/column, type mismatch, unsupported shape) *)
  | Parse_error of { position : int; detail : string }
      (** the SQL text failed to lex or parse; [position] is a 0-based
          byte offset into the input *)
  | Invariant_violation of { site : string; detail : string }
      (** an internal computation produced an impossible selectivity or
          cardinality and the guard mode is [Strict]; [site] names the
          production site (e.g. ["Profile.join_selectivity"]) *)
  | Budget_exhausted of {
      site : string;
      resource : Rel.Budget.resource;
      detail : string;
    }
      (** a cooperative {!Rel.Budget} check tripped and the computation
          could not degrade any further: the executor refuses to return a
          truncated result, so a row/deadline trip during execution
          surfaces here. (The optimizer does {e not} raise this — it
          degrades down its anytime ladder and records the rung in its
          provenance instead.) *)
  | Overloaded of { depth : int; shed_policy : string }
      (** an admission-controlled service refused the request because its
          bounded queue was full (or it was draining): [depth] is the
          queue depth observed at the shed and [shed_policy] names the
          policy that fired (["reject-newest"], ["draining"]). Shedding is
          always disclosed — never a silent drop. *)

exception Error of t
(** Carrier for the exception-style API. A printer is registered, so an
    escaped [Error] renders readably rather than as [Els.Els_error.Error(_)]. *)

val raise_ : t -> 'a
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_issue : Catalog.Validate.issue -> t
(** View a catalog-validation issue as a [Corrupt_stats] error (used by
    Strict-mode preparation). *)
