module Cref = Query.Cref

type node = {
  mutable parent : Cref.t;
  mutable rank : int;
}

type t = { nodes : (Cref.t, node) Hashtbl.t }

let create () = { nodes = Hashtbl.create 32 }

let add t c =
  if not (Hashtbl.mem t.nodes c) then
    Hashtbl.add t.nodes c { parent = c; rank = 0 }

let rec find_node t c =
  match Hashtbl.find_opt t.nodes c with
  | None -> c
  | Some node ->
    if Cref.equal node.parent c then c
    else begin
      let root = find_node t node.parent in
      node.parent <- root;
      root
    end

let find = find_node

let union t a b =
  add t a;
  add t b;
  let ra = find t a and rb = find t b in
  if not (Cref.equal ra rb) then begin
    let na = Hashtbl.find t.nodes ra and nb = Hashtbl.find t.nodes rb in
    if na.rank < nb.rank then na.parent <- rb
    else if na.rank > nb.rank then nb.parent <- ra
    else begin
      nb.parent <- ra;
      na.rank <- na.rank + 1
    end
  end

let same t a b = Cref.equal (find t a) (find t b)

let groups t =
  let by_root = Hashtbl.create 16 in
  Hashtbl.iter
    (fun c _ ->
      let root = find t c in
      let existing =
        Option.value (Hashtbl.find_opt by_root root) ~default:[]
      in
      Hashtbl.replace by_root root (c :: existing))
    t.nodes;
  by_root

let members t c =
  let root = find t c in
  let acc = ref [] in
  Hashtbl.iter
    (fun c' _ -> if Cref.equal (find t c') root then acc := c' :: !acc)
    t.nodes;
  match !acc with
  | [] -> [ c ]
  | l -> List.sort Cref.compare l

let classes t =
  let by_root = groups t in
  Hashtbl.fold
    (fun _ cols acc -> List.sort Cref.compare cols :: acc)
    by_root []
  |> List.sort (fun a b ->
         match a, b with
         | x :: _, y :: _ -> Cref.compare x y
         | [], _ | _, [] -> assert false)

let of_predicates predicates =
  let t = create () in
  List.iter
    (fun p ->
      match p with
      | Query.Predicate.Col_cmp { left; op = Query.Predicate.Eq; right } ->
        union t left right
      | Query.Predicate.Col_cmp { left; right; _ } ->
        (* Only equality merges classes: [a < b] constrains the pair but
           does not make the columns interchangeable (rule 2b needs
           substitutivity). The endpoints still join the universe as
           singletons so adjacency and grouping can see them. *)
        add t left;
        add t right
      | Query.Predicate.Cmp { col; _ } -> add t col)
    predicates;
  t

let pp ppf t =
  List.iter
    (fun cls ->
      Format.fprintf ppf "{%s}@ "
        (String.concat ", " (List.map Cref.to_string cls)))
    (classes t)
