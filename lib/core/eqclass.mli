(** Equivalence classes of columns under equality predicates.

    "Initially, each column is an equivalence class by itself. When an
    equality (local or join) predicate is seen during query optimization,
    the equivalence classes corresponding to the two columns on each side
    of the equality are merged" (Section 2).

    Implemented as a union-find over {!Query.Cref.t} with path compression
    and union by rank. The structure is mutable; {!classes} snapshots it. *)

type t

val create : unit -> t

val add : t -> Query.Cref.t -> unit
(** Ensure the column is known (as a singleton class if new). *)

val union : t -> Query.Cref.t -> Query.Cref.t -> unit
(** Merge the classes of the two columns, adding them if unknown. *)

val find : t -> Query.Cref.t -> Query.Cref.t
(** Canonical representative of the column's class. Unknown columns are
    their own representative. *)

val same : t -> Query.Cref.t -> Query.Cref.t -> bool
(** "x and y are j-equivalent" in the paper's terminology. *)

val members : t -> Query.Cref.t -> Query.Cref.t list
(** All columns in the same class as the argument (including itself),
    sorted. *)

val classes : t -> Query.Cref.t list list
(** Every class (singletons included), each sorted, classes ordered by
    their smallest member. *)

val of_predicates : Query.Predicate.t list -> t
(** Classes induced by the column-equality predicates of a conjunction;
    columns of constant comparisons are registered as singletons. *)

val pp : Format.formatter -> t -> unit
