type flags = { closure : bool; local_aware : bool; single_table : bool }

(* What a per-step cap gets to see: the effective input sizes plus, for
   every bridging equality predicate whose endpoint columns both carry
   ANALYZE-collected degree sequences, the pair of those statistics —
   (already-joined side, newly-joined side). Comparison predicates and
   columns without degree statistics contribute no pair. *)
type step_input = {
  left_rows : float;
  right_rows : float;
  degrees : (Stats.Degree.t * Stats.Degree.t) list;
}

type t = {
  id : string;
  label : string;
  summary : string;
  combine : float list -> float;
  cap : (step_input -> float) option;
  cap_note : (step_input -> string) option;
  flags : flags;
}

let id t = t.id
let label t = t.label
let equal a b = String.equal a.id b.id

(* The three rules of the paper (Section 7). Fold shapes are kept exactly
   as the former [Config.combine] wrote them so results stay bit-identical
   to the enum era. *)

let m =
  {
    id = "m";
    label = "M";
    summary = "Rule M: multiply every eligible join selectivity (Selinger)";
    combine = (fun sels -> List.fold_left ( *. ) 1. sels);
    cap = None;
    cap_note = None;
    (* Canonically with PTC: panels compare combining rules under equal
       (closed) predicate sets. Plain SM is [Config.sm ~ptc:false]. *)
    flags = { closure = true; local_aware = false; single_table = false };
  }

let ss =
  {
    id = "ss";
    label = "SS";
    summary = "Rule SS: keep only the smallest selectivity per class";
    combine = (fun sels -> List.fold_left Float.min 1. sels);
    cap = None;
    cap_note = None;
    flags = { closure = true; local_aware = false; single_table = false };
  }

let ls =
  {
    id = "ls";
    label = "LS";
    summary = "Rule LS: keep only the largest selectivity per class";
    combine =
      (fun sels ->
        match sels with
        | [] -> 1.
        | s :: rest -> List.fold_left Float.max s rest);
    cap = None;
    cap_note = None;
    flags = { closure = true; local_aware = true; single_table = true };
  }

let min_rows s = Float.min s.left_rows s.right_rows

let pess =
  {
    id = "pess";
    label = "PESS";
    summary =
      "Pessimistic degree-1 bound: cap each predicate-connected step at \
       min(|R1|', |R2|')";
    (* No per-class selectivity reduction: the bound comes entirely from
       the cap, so classes combine to 1 and a step's raw size is the
       cartesian product before capping. *)
    combine = (fun _ -> 1.);
    cap = Some min_rows;
    cap_note = Some (fun _ -> "min-rows (degree-1 Lp-norm bound)");
    flags = { closure = true; local_aware = true; single_table = true };
  }

(* --- the degree-statistics family ---------------------------------------

   Bound-style estimators over the per-column degree sequences ANALYZE
   collects ([Stats.Degree] via [Col_stats.degree]). Like PESS they carry
   no per-class selectivity reduction — the whole estimate is the cap —
   and like every non-builtin cap they never lower to the compiled kernel
   tier, so each interpreted step counts a kernel fallback. All caps fold
   [Float.min] across the step's bridging predicates (a conjunction can
   only shrink the output) and degrade to PESS's min-rows when no degree
   statistics are available. The degree statistics are the {e base
   tables}': exact for the first (two-way) step, a heuristic for later
   steps whose left input is an intermediate. *)

let degree_fold s per_edge =
  List.fold_left
    (fun acc (a, b) -> Float.min acc (per_edge a b))
    (min_rows s) s.degrees

let no_degrees s = s.degrees = []

let lp2 =
  {
    id = "lp2";
    label = "LP2";
    summary =
      "AGM/Lp-norm bound: cap each step at min(|R1|', |R2|', L2(a)·L2(b)) \
       from the join columns' degree-sequence L2 norms";
    combine = (fun _ -> 1.);
    cap =
      Some
        (fun s ->
          degree_fold s (fun a b -> Stats.Degree.l2 a *. Stats.Degree.l2 b));
    cap_note =
      Some
        (fun s ->
          if no_degrees s then "min-rows (no degree statistics collected)"
          else "degree-sequence L2 norms (ANALYZE)");
    flags = { closure = true; local_aware = true; single_table = true };
  }

let degseq =
  {
    id = "degseq";
    label = "DEGSEQ";
    summary =
      "Degree-sequence two-approximation: pairwise product of the sorted \
       top-k degrees plus a capped tail (Instance Optimal Join Size \
       Estimation)";
    combine = (fun _ -> 1.);
    cap =
      Some
        (fun s ->
          match s.degrees with
          | [] -> min_rows s
          | edges ->
            List.fold_left
              (fun acc (a, b) -> Float.min acc (Stats.Degree.join_bound a b))
              Float.infinity edges);
    cap_note =
      Some
        (fun s ->
          if no_degrees s then "min-rows (no degree statistics collected)"
          else "top-k degree sequences (ANALYZE)");
    flags = { closure = true; local_aware = true; single_table = true };
  }

let ent =
  {
    id = "ent";
    label = "ENT";
    summary =
      "Entropy-style max-degree bound: cap each step at \
       min(|R1|'·L∞(b), |R2|'·L∞(a)) — the polymatroid bound's two-way \
       degenerate form";
    combine = (fun _ -> 1.);
    (* Folded from infinity, not from min-rows: L∞ ≥ 1 on any non-empty
       column makes |R|·L∞ ≥ |R|, so a min-rows seed would swallow the
       entropic term and collapse ENT into PESS. Min-rows applies only as
       the no-statistics degradation. *)
    cap =
      Some
        (fun s ->
          match s.degrees with
          | [] -> min_rows s
          | edges ->
            List.fold_left
              (fun acc (a, b) ->
                Float.min acc
                  (Float.min
                     (s.left_rows *. Stats.Degree.linf b)
                     (s.right_rows *. Stats.Degree.linf a)))
              Float.infinity edges);
    cap_note =
      Some
        (fun s ->
          if no_degrees s then "min-rows (no degree statistics collected)"
          else "degree-sequence L∞ norms (ANALYZE)");
    flags = { closure = true; local_aware = true; single_table = true };
  }

let registered : t list ref = ref [ m; ss; ls; pess; lp2; degseq; ent ]
let registry () = !registered

let register e =
  if List.exists (fun x -> String.equal x.id e.id) !registered then
    invalid_arg (Printf.sprintf "Estimator.register: duplicate id %S" e.id);
  registered := !registered @ [ e ]

let ids () = List.map (fun e -> e.id) (registry ())

let find name =
  let needle = String.lowercase_ascii (String.trim name) in
  List.find_opt
    (fun e ->
      String.equal e.id needle
      || String.equal (String.lowercase_ascii e.label) needle)
    (registry ())

let of_string name =
  match find name with
  | Some e -> Ok e
  | None ->
    let candidates = ids () in
    Error
      (Printf.sprintf "unknown estimator %S, expected one of: %s%s" name
         (String.concat ", " candidates)
         (Catalog.Suggest.hint ~candidates name))

let of_string_exn name =
  match of_string name with Ok e -> e | Error msg -> invalid_arg msg
