type flags = { closure : bool; local_aware : bool; single_table : bool }

type t = {
  id : string;
  label : string;
  summary : string;
  combine : float list -> float;
  cap : (left_rows:float -> right_rows:float -> float) option;
  flags : flags;
}

let id t = t.id
let label t = t.label
let equal a b = String.equal a.id b.id

(* The three rules of the paper (Section 7). Fold shapes are kept exactly
   as the former [Config.combine] wrote them so results stay bit-identical
   to the enum era. *)

let m =
  {
    id = "m";
    label = "M";
    summary = "Rule M: multiply every eligible join selectivity (Selinger)";
    combine = (fun sels -> List.fold_left ( *. ) 1. sels);
    cap = None;
    (* Canonically with PTC: panels compare combining rules under equal
       (closed) predicate sets. Plain SM is [Config.sm ~ptc:false]. *)
    flags = { closure = true; local_aware = false; single_table = false };
  }

let ss =
  {
    id = "ss";
    label = "SS";
    summary = "Rule SS: keep only the smallest selectivity per class";
    combine = (fun sels -> List.fold_left Float.min 1. sels);
    cap = None;
    flags = { closure = true; local_aware = false; single_table = false };
  }

let ls =
  {
    id = "ls";
    label = "LS";
    summary = "Rule LS: keep only the largest selectivity per class";
    combine =
      (fun sels ->
        match sels with
        | [] -> 1.
        | s :: rest -> List.fold_left Float.max s rest);
    cap = None;
    flags = { closure = true; local_aware = true; single_table = true };
  }

let pess =
  {
    id = "pess";
    label = "PESS";
    summary =
      "Pessimistic degree-1 bound: cap each predicate-connected step at \
       min(|R1|', |R2|')";
    (* No per-class selectivity reduction: the bound comes entirely from
       the cap, so classes combine to 1 and a step's raw size is the
       cartesian product before capping. *)
    combine = (fun _ -> 1.);
    cap = Some (fun ~left_rows ~right_rows -> Float.min left_rows right_rows);
    flags = { closure = true; local_aware = true; single_table = true };
  }

let registered : t list ref = ref [ m; ss; ls; pess ]
let registry () = !registered

let register e =
  if List.exists (fun x -> String.equal x.id e.id) !registered then
    invalid_arg (Printf.sprintf "Estimator.register: duplicate id %S" e.id);
  registered := !registered @ [ e ]

let ids () = List.map (fun e -> e.id) (registry ())

let find name =
  let needle = String.lowercase_ascii (String.trim name) in
  List.find_opt
    (fun e ->
      String.equal e.id needle
      || String.equal (String.lowercase_ascii e.label) needle)
    (registry ())

let of_string name =
  match find name with
  | Some e -> Ok e
  | None ->
    let candidates = ids () in
    Error
      (Printf.sprintf "unknown estimator %S, expected one of: %s%s" name
         (String.concat ", " candidates)
         (Catalog.Suggest.hint ~candidates name))

let of_string_exn name =
  match of_string name with Ok e -> e | Error msg -> invalid_arg msg
