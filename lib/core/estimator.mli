(** First-class selectivity estimators.

    The paper treats Rules M, SS and LS (Section 7) as interchangeable
    strategies for combining the eligible join selectivities of one
    equivalence class. This module lifts that idea into a value: an
    estimator is a record of functions with a stable identity, and every
    consumer — {!Profile}, {!Incremental}, the optimizers and the harness
    panels — works against this seam instead of matching on an enum.

    Estimators live in a registry so experiment panels, the CLI
    [--estimator] flag and report labels all draw from one source of
    truth and can pick up third-party estimators registered at startup. *)

type flags = {
  closure : bool;  (** run predicate transitive closure by default *)
  local_aware : bool;  (** use post-local-predicate cardinalities *)
  single_table : bool;  (** Section 6 single-table j-equivalence *)
}
(** The pipeline toggles an estimator expects in its canonical
    configuration ({!Config.of_estimator}). They are defaults, not
    requirements: a {!Config.t} may override any of them. *)

type step_input = {
  left_rows : float;  (** effective size of the already-joined side *)
  right_rows : float;  (** effective size of the newly-joined side *)
  degrees : (Stats.Degree.t * Stats.Degree.t) list;
      (** one pair per bridging {e equality} predicate whose endpoint
          columns both carry ANALYZE-collected degree sequences, ordered
          (already-joined side, newly-joined side). Comparison predicates
          and catalog-supplied columns contribute no pair, so caps must
          degrade gracefully on an empty list. *)
}
(** Everything a per-step cap may consult. The degree statistics are the
    {e base tables}' ({!Stats.Degree} on {!Stats.Col_stats.degree}):
    exact for a two-way step, a heuristic for later steps whose left
    input is an intermediate result. *)

type t = {
  id : string;
      (** stable lowercase identifier; registry key, cache key and CLI
          name. Never rename an id: memo caches and scripts depend on
          it. *)
  label : string;  (** short display name used in report tables *)
  summary : string;  (** one-line description for help output *)
  combine : float list -> float;
      (** fold one equivalence class's eligible join selectivities into a
          single factor; the empty list must combine to 1 (a cartesian
          step) *)
  cap : (step_input -> float) option;
      (** optional per-step output-cardinality cap. Applied by
          {!Incremental} only to predicate-connected steps — a cartesian
          step has no equality class to justify a bound. Estimators with
          a cap other than min-rows never lower to the compiled kernel
          tier; their interpreted steps count kernel fallbacks. *)
  cap_note : (step_input -> string) option;
      (** derivation-card provenance for the cap: names the statistic the
          cap read (e.g. which degree norm, or min-rows when degraded).
          Observability only — never consulted by the value path. *)
  flags : flags;
}

val id : t -> string
val label : t -> string

val equal : t -> t -> bool
(** Identity is the [id] string — never structural equality, which would
    raise on the closures inside. *)

val m : t
(** Rule M (multiplicative): the product of the class's selectivities. *)

val ss : t
(** Rule SS: the smallest selectivity of the class. *)

val ls : t
(** Rule LS: the largest selectivity of the class. *)

val pess : t
(** Pessimistic per-step upper bound: classes combine to 1 and each
    predicate-connected step is capped at [min(|R1|', |R2|')] — the
    cross-product-free degree-1 specialization of the Lp-norm
    degree-sequence bounds (Abo Khamis & Olteanu). On key-join chains it
    coincides with the true size; elsewhere it is a cheap sanity bound
    rather than an estimate. *)

val lp2 : t
(** AGM/Lp-norm step cap [min(|R1|', |R2|', L2(a)·L2(b))]: the
    Cauchy–Schwarz join-size bound from the bridging columns' degree
    L2 norms (Join Size Bounds using Lp-Norms on Degree Sequences). With
    no degree statistics on a step it degrades to PESS's min-rows. *)

val degseq : t
(** Degree-sequence two-approximation (Instance Optimal Join Size
    Estimation): per step, the pairwise product of the two descending
    degree sequences — top-k entries exactly, tails capped by
    [min(tail-mass·tail-max)] ({!Stats.Degree.join_bound}), min over the
    bridging predicates. Degrades to min-rows without degree stats. *)

val ent : t
(** Entropy-style max-degree bound: per step
    [min(|R1|'·L∞(b), |R2|'·L∞(a))] — the two-relation degenerate form of
    the polymatroid/entropic bounds (Information Theory Strikes Back):
    every left row matches at most the right column's max degree.
    Degrades to min-rows without degree stats. *)

val registry : unit -> t list
(** All registered estimators, in registration order; the built-ins
    [m], [ss], [ls], [pess] come first, then the degree-statistics family
    [lp2], [degseq], [ent]. *)

val register : t -> unit
(** Append a new estimator to the registry.
    @raise Invalid_argument on a duplicate [id]. *)

val ids : unit -> string list
(** The registered ids, in registry order. *)

val find : string -> t option
(** Case-insensitive lookup by [id] or [label]. *)

val of_string : string -> (t, string) result
(** Like {!find}, but an unknown name yields a one-line message listing
    the registered ids with a did-you-mean suggestion
    ({!Catalog.Suggest}). *)

val of_string_exn : string -> t
(** @raise Invalid_argument with the {!of_string} message. *)
