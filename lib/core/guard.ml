type stats = {
  mutable violations : int;
  mutable repairs : int;
  mutable fallbacks : int;
}

type t = {
  mode : Config.strictness;
  stats : stats;
}

let create mode = { mode; stats = { violations = 0; repairs = 0; fallbacks = 0 } }

let stats t = t.stats
let mode t = t.mode

let note_fallback t = t.stats.fallbacks <- t.stats.fallbacks + 1

(* The hot paths call these on every produced number, so the in-range
   check must stay allocation-free; breach handling (formatting, raising)
   lives out of line. *)

let breach t ~site ~detail ~repaired =
  t.stats.violations <- t.stats.violations + 1;
  match t.mode with
  | Config.Strict ->
    Els_error.raise_ (Els_error.Invariant_violation { site; detail = detail () })
  | Config.Repair ->
    t.stats.repairs <- t.stats.repairs + 1;
    repaired
  | Config.Trap -> None

let selectivity t ~site s =
  (* S ∈ (0,1]. NaN fails the comparison chain, landing in the breach
     branch. A zero selectivity is legitimate (contradictory predicates),
     so only the impossible values count: negative, > 1, NaN. *)
  if s >= 0. && s <= 1. then s
  else
    let repaired = if s > 1. then 1. else 0. (* covers s < 0 and NaN *) in
    match
      breach t ~site
        ~detail:(fun () -> Printf.sprintf "selectivity %h outside [0, 1]" s)
        ~repaired:(Some repaired)
    with
    | Some r -> r
    | None -> s

let cardinality ?(upper = infinity) t ~site x =
  if x >= 0. && x <= upper then x
  else
    let repaired =
      if x > upper then upper
      else 0. (* covers x < 0 and NaN *)
    in
    match
      breach t ~site
        ~detail:(fun () ->
          if x > upper then
            Printf.sprintf "cardinality %h exceeds bound %h" x upper
          else Printf.sprintf "cardinality %h is negative or NaN" x)
        ~repaired:(Some repaired)
    with
    | Some r -> r
    | None -> x

let distinct t ~site ~d d' =
  let upper = Float.max 1. d in
  if d' >= 1. && d' <= upper then d'
  else
    let repaired = if d' > upper then upper else 1. in
    match
      breach t ~site
        ~detail:(fun () ->
          Printf.sprintf "effective cardinality %h outside [1, %h]" d' upper)
        ~repaired:(Some repaired)
    with
    | Some r -> r
    | None -> d'
