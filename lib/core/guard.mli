(** Runtime invariant guards for the estimator's hot paths.

    ELS's math gives every produced number a checkable range: join and
    local selectivities lie in [(0, 1]] (0 is allowed — contradictory
    predicates produce empty results), effective column cardinalities in
    [[1, d]], and intermediate-result cardinalities are finite,
    non-negative, and never exceed the cartesian bound. A guard sits at
    each production site; a value inside its range passes through with a
    branch and no allocation, a value outside it is a {e violation}
    handled per the configured {!Config.strictness}:

    - [Strict] — raise {!Els_error.Invariant_violation} naming the site;
    - [Repair] — clamp into range and count the repair;
    - [Trap] — count the violation and pass the value through unchanged
      (observe-only, for measuring how far bad inputs propagate).

    Counters are surfaced via {!stats} the same way profile cache
    statistics are. *)

type stats = {
  mutable violations : int;  (** out-of-range values detected *)
  mutable repairs : int;  (** violations clamped (Repair mode only) *)
  mutable fallbacks : int;
      (** graceful degradations that are not violations: e.g. a column
          with no recorded statistics estimated from the worst-case
          trivial profile *)
}

type t

val create : Config.strictness -> t
val mode : t -> Config.strictness
val stats : t -> stats

val note_fallback : t -> unit

val selectivity : t -> site:string -> float -> float
(** Guard a selectivity against [[0, 1]]. NaN and negative values repair
    to 0, values above 1 repair to 1. [site] names the production site
    for the error/telemetry, e.g. ["Profile.join_selectivity"]. *)

val cardinality : ?upper:float -> t -> site:string -> float -> float
(** Guard a (fractional) cardinality: finite, non-negative, and at most
    [upper] (default [infinity], i.e. only finiteness is checked when no
    tighter bound is known). NaN and negative repair to 0, values above
    the bound repair to the bound. *)

val distinct : t -> site:string -> d:float -> float -> float
(** [distinct t ~site ~d d'] guards an effective column cardinality
    against [[1, max 1 d]] (paper Section 5: local predicates can only
    shrink a column's value set, and a nonempty relation keeps at least
    one value). *)
