module Predicate = Query.Predicate

type state = {
  mask : int;
  size : float;
  rev_history : float list;
}

let joined profile state =
  let names = ref [] in
  for bit = Profile.table_count profile - 1 downto 0 do
    if state.mask land (1 lsl bit) <> 0 then
      names := Profile.table_name profile bit :: !names
  done;
  !names

let history state = List.rev state.rev_history

let start profile name =
  let bit = Profile.table_bit profile name in
  let table = Profile.table_at profile bit in
  (match Profile.derivation profile with
  | Some sink ->
    Obs.Derivation.set_base sink table.Profile.name table.Profile.rows
  | None -> ());
  { mask = 1 lsl bit; size = table.Profile.rows; rev_history = [] }

(* Ids of the join predicates linking [bit]'s table to [mask], via the
   per-table adjacency index: O(degree) instead of a scan of the whole
   working conjunction. Ascending id order = conjunction order. *)
let eligible_ids profile mask bit =
  let index = profile.Profile.index in
  let ids = index.Profile.join_preds_by_table.(bit) in
  let stats = profile.Profile.stats in
  stats.Profile.eligible_probes <-
    stats.Profile.eligible_probes + Array.length ids;
  stats.Profile.scans_avoided <-
    stats.Profile.scans_avoided
    + (Array.length index.Profile.pred_infos - Array.length ids);
  Array.fold_right
    (fun id acc ->
      match index.Profile.pred_infos.(id).Profile.endpoints with
      | Some (a, b) ->
        let other = if a = bit then b else a in
        if mask land (1 lsl other) <> 0 then id :: acc else acc
      | None -> acc)
    ids []

let eligible profile state name =
  let bit = Profile.table_bit profile name in
  List.map
    (fun id -> (Profile.pred profile id).Profile.pred)
    (eligible_ids profile state.mask bit)

(* Partition eligible predicate ids by their (precomputed) equivalence-
   class root; groups in first-occurrence order, members in id order. All
   roots of one class are the same physically-shared Cref (resolved once at
   build), so the common single-class step short-circuits on [==] without
   allocating group structure. *)
let is_eq_pred profile id =
  match (Profile.pred profile id).Profile.pred with
  | Predicate.Col_cmp { op = Predicate.Eq; _ } -> true
  | Predicate.Col_cmp _ | Predicate.Cmp _ -> false

let class_groups profile ids =
  match ids with
  | [] -> []
  | first :: rest ->
    let root0 = (Profile.pred profile first).Profile.root in
    let same r = r == root0 || Query.Cref.equal r root0 in
    (* The short-circuit additionally requires every member to be an
       equality: comparison predicates never share a class-derived
       selectivity, so equality-only workloads — and only those — take
       the exact pre-generalization path. *)
    if
      is_eq_pred profile first
      && List.for_all
           (fun id ->
             is_eq_pred profile id
             && same (Profile.pred profile id).Profile.root)
           rest
    then [ ids ]
    else begin
      (* Keyed by [Cref.equal] (with the [==] fast path), never by the
         polymorphic [List.assoc_opt]: if [Cref.t] ever grows a field
         where structural (=) diverges from [Cref.equal], a polymorphic
         lookup would silently split one equivalence class in two and
         apply its selectivity twice. Equality predicates group by class
         root; each comparison predicate is an independent constraint and
         stays a singleton group ([None]-tagged, never a merge target). *)
      let groups = ref [] in
      List.iter
        (fun id ->
          if is_eq_pred profile id then begin
            let r = (Profile.pred profile id).Profile.root in
            match
              List.find_opt
                (fun (r', _) ->
                  match r' with
                  | Some r' -> r' == r || Query.Cref.equal r' r
                  | None -> false)
                !groups
            with
            | Some (_, members) -> members := id :: !members
            | None -> groups := (Some r, ref [ id ]) :: !groups
          end
          else groups := (None, ref [ id ]) :: !groups)
        ids;
      List.rev_map (fun (_, members) -> List.rev !members) !groups
    end

let selectivity_of_ids profile ids =
  List.fold_left
    (fun acc group -> acc *. Profile.class_selectivity profile group)
    1. (class_groups profile ids)

let step_selectivity profile state name =
  let bit = Profile.table_bit profile name in
  match Profile.kernel profile with
  | Some k -> Kernel.step_selectivity k ~mask:state.mask ~bit
  | None ->
    Profile.note_kernel_fallback profile;
    selectivity_of_ids profile (eligible_ids profile state.mask bit)

(* Join predicate ids bridging the two (disjoint) masks: one pass over the
   join predicates with O(1) endpoint tests. *)
let eligible_ids_between profile m1 m2 =
  let index = profile.Profile.index in
  let stats = profile.Profile.stats in
  stats.Profile.eligible_probes <-
    stats.Profile.eligible_probes + Array.length index.Profile.join_pred_ids;
  stats.Profile.scans_avoided <-
    stats.Profile.scans_avoided
    + (Array.length index.Profile.pred_infos
      - Array.length index.Profile.join_pred_ids);
  Array.fold_right
    (fun id acc ->
      match index.Profile.pred_infos.(id).Profile.endpoints with
      | Some (a, b) ->
        let ba = 1 lsl a and bb = 1 lsl b in
        if
          (m1 land ba <> 0 && m2 land bb <> 0)
          || (m1 land bb <> 0 && m2 land ba <> 0)
        then id :: acc
        else acc
      | None -> acc)
    index.Profile.join_pred_ids []

let eligible_between profile s1 s2 =
  List.map
    (fun id -> (Profile.pred profile id).Profile.pred)
    (eligible_ids_between profile s1.mask s2.mask)

(* Degree-statistic pairs of the step's bridging equality predicates,
   oriented (already-joined side, new side) by [left_mask]. Comparison
   predicates never pair (their selectivity is CDF-derived, not
   degree-derived), and a column without ANALYZE-collected degree
   sequences contributes no pair — caps degrade on the empty list. *)
let step_degrees profile ~left_mask ids =
  List.filter_map
    (fun id ->
      match (Profile.pred profile id).Profile.pred with
      | Predicate.Col_cmp { left; op = Predicate.Eq; right } -> begin
        let on_left cref =
          left_mask
          land (1 lsl Profile.table_bit profile cref.Query.Cref.table)
          <> 0
        in
        let a, b = if on_left left then (left, right) else (right, left) in
        match
          ( (Profile.column_stats profile a).Stats.Col_stats.degree,
            (Profile.column_stats profile b).Stats.Col_stats.degree )
        with
        | Some da, Some db -> Some (da, db)
        | _, _ -> None
      end
      | Predicate.Col_cmp _ | Predicate.Cmp _ -> None)
    ids

let step_input profile ~left_mask ~left_rows ~right_rows ids =
  {
    Estimator.left_rows;
    right_rows;
    degrees = step_degrees profile ~left_mask ids;
  }

(* The estimator may bound a predicate-connected step's output (e.g. the
   pessimistic degree-1 bound, or the degree-statistics family's Lp-norm
   caps). A cartesian step has no equality class to justify a bound, so
   the cap never applies there; capping below the cartesian product keeps
   the Guard's [~upper] valid unchanged. *)
let capped_size profile ~ids ~left_mask ~left_rows ~right_rows raw =
  match (Profile.estimator profile).Estimator.cap with
  | Some cap when ids <> [] ->
    Float.min raw
      (cap (step_input profile ~left_mask ~left_rows ~right_rows ids))
  | Some _ | None -> raw

(* --- derivation recording ----------------------------------------------

   When a sink is attached ([Profile.set_derivation]), each estimation step
   appends a record of the classes, rules, input selectivities and d′
   provenance behind its output. Every number is re-read through the
   profile's memo caches, so recording never changes a computed value. *)

(* Derivation-card label of one class group: ["eq"] for an equality
   class, the comparison's kind for a singleton comparison group. *)
let group_kind profile group =
  match group with
  | id :: _ -> begin
    match Predicate.kind (Profile.pred profile id).Profile.pred with
    | Some k -> Predicate.kind_name k
    | None -> "local"
  end
  | [] -> "eq"

let column_records profile ~cdf group =
  let crefs =
    List.rev
      (List.fold_left
         (fun acc id ->
           List.fold_left
             (fun acc c ->
               if List.exists (Query.Cref.equal c) acc then acc else c :: acc)
             acc
             (Predicate.columns (Profile.pred profile id).Profile.pred))
         [] group)
  in
  (* For a comparison group the selectivity comes from the columns' CDFs,
     not their d′, so the provenance label names the CDF's backing
     statistic instead of the cardinality derivation. *)
  let cdf_label cref =
    "cdf("
    ^ Stats.Selectivity_est.(
        source_name (cdf_source (Profile.column_stats profile cref)))
    ^ ")"
  in
  List.map
    (fun cref ->
      let table = Profile.table profile cref.Query.Cref.table in
      match Query.Cref.Map.find_opt cref table.Profile.columns with
      | Some col ->
        {
          Obs.Derivation.column = Query.Cref.to_string cref;
          base_distinct = col.Profile.base_distinct;
          join_distinct = Profile.join_card profile cref;
          source = (if cdf then cdf_label cref else col.Profile.d_source);
        }
      | None ->
        (* Never mentioned in predicates: [join_card] falls back to the
           table's row count. *)
        {
          Obs.Derivation.column = Query.Cref.to_string cref;
          base_distinct = table.Profile.base_rows;
          join_distinct = Profile.join_card profile cref;
          source = (if cdf then cdf_label cref else "catalog");
        })
    crefs

let record_step profile ~index ~table ~left_mask ~left_rows ~right_rows ~ids
    ~output sink =
  let rule = (Profile.estimator profile).Estimator.id in
  let classes =
    List.map
      (fun group ->
        let kind = group_kind profile group in
        {
          Obs.Derivation.class_root =
            Query.Cref.to_string (Profile.pred profile (List.hd group)).Profile.root;
          kind;
          rule;
          inputs =
            List.map
              (fun id ->
                ( Predicate.to_string (Profile.pred profile id).Profile.pred,
                  Profile.join_selectivity profile id ))
              group;
          combined = Profile.class_selectivity profile group;
          columns =
            column_records profile ~cdf:(not (String.equal kind "eq")) group;
        })
      (class_groups profile ids)
  in
  let cap, cap_source =
    let est = Profile.estimator profile in
    match est.Estimator.cap with
    | Some cap when ids <> [] ->
      let input = step_input profile ~left_mask ~left_rows ~right_rows ids in
      ( Some (cap input),
        match est.Estimator.cap_note with
        | Some note -> Some (note input)
        | None -> None )
    | Some _ | None -> (None, None)
  in
  Obs.Derivation.record_step sink
    {
      Obs.Derivation.index;
      table;
      left_rows;
      right_rows;
      classes;
      cap;
      cap_source;
      output;
    }

let join_states profile s1 s2 =
  let overlap = s1.mask land s2.mask in
  if overlap <> 0 then begin
    let rec first_bit b = if overlap land (1 lsl b) <> 0 then b else first_bit (b + 1) in
    invalid_arg
      (Printf.sprintf "Incremental.join_states: %s on both sides"
         (Profile.table_name profile (first_bit 0)))
  end;
  (* The kernel path can serve any step no sink wants to observe; with a
     sink attached the interpreted path runs (recording per-step
     provenance) and produces bit-identical numbers. *)
  match (Profile.derivation profile, Profile.kernel profile) with
  | None, Some k ->
    let size =
      Kernel.join_size k ~mask1:s1.mask ~mask2:s2.mask ~size1:s1.size
        ~size2:s2.size
    in
    {
      mask = s1.mask lor s2.mask;
      size;
      rev_history = size :: List.append s2.rev_history s1.rev_history;
    }
  | (Some _ | None), _ ->
    Profile.note_kernel_fallback profile;
    let ids = eligible_ids_between profile s1.mask s2.mask in
    let s = selectivity_of_ids profile ids in
    let size =
      Guard.cardinality profile.Profile.guard ~site:"Incremental.join_states"
        ~upper:(s1.size *. s2.size)
        (capped_size profile ~ids ~left_mask:s1.mask ~left_rows:s1.size
           ~right_rows:s2.size
           (s1.size *. s2.size *. s))
    in
    (match Profile.derivation profile with
    | Some sink ->
      record_step profile
        ~index:(List.length s1.rev_history + List.length s2.rev_history)
        ~table:"⋈" ~left_mask:s1.mask ~left_rows:s1.size ~right_rows:s2.size
        ~ids ~output:size sink
    | None -> ());
    {
      mask = s1.mask lor s2.mask;
      size;
      rev_history = size :: List.append s2.rev_history s1.rev_history;
    }

let extend profile state name =
  let bit = Profile.table_bit profile name in
  if state.mask land (1 lsl bit) <> 0 then
    invalid_arg
      (Printf.sprintf "Incremental.extend: %s already joined"
         (Profile.normalize name));
  match (Profile.derivation profile, Profile.kernel profile) with
  | None, Some k ->
    let size = Kernel.extend_size k ~mask:state.mask ~bit ~size:state.size in
    {
      mask = state.mask lor (1 lsl bit);
      size;
      rev_history = size :: state.rev_history;
    }
  | (Some _ | None), _ ->
    Profile.note_kernel_fallback profile;
    let table = Profile.table_at profile bit in
    let ids = eligible_ids profile state.mask bit in
    let s = selectivity_of_ids profile ids in
    let size =
      (* S ≤ 1, so a step can never exceed the cartesian bound of the two
         inputs. *)
      Guard.cardinality profile.Profile.guard ~site:"Incremental.extend"
        ~upper:(state.size *. table.Profile.rows)
        (capped_size profile ~ids ~left_mask:state.mask ~left_rows:state.size
           ~right_rows:table.Profile.rows
           (state.size *. table.Profile.rows *. s))
    in
    (match Profile.derivation profile with
    | Some sink ->
      record_step profile
        ~index:(List.length state.rev_history)
        ~table:table.Profile.name ~left_mask:state.mask ~left_rows:state.size
        ~right_rows:table.Profile.rows ~ids ~output:size sink
    | None -> ());
    {
      mask = state.mask lor (1 lsl bit);
      size;
      rev_history = size :: state.rev_history;
    }

let estimate_order profile order =
  match order with
  | [] -> invalid_arg "Incremental.estimate_order: empty join order"
  | first :: rest ->
    List.fold_left (fun st name -> extend profile st name) (start profile first)
      rest

let final_size profile order = (estimate_order profile order).size

(* --- reference list-scan implementations -------------------------------

   The pre-index hot path, kept as the baseline the property tests and the
   DP-enumeration benchmark compare against: eligibility by scanning the
   whole working conjunction with List.mem over the joined set, and
   uncached rule combination. *)

let eligible_scan profile joined name =
  let name = Profile.normalize name in
  List.filter
    (fun p ->
      Predicate.is_join p
      &&
      match Predicate.tables p with
      | [ a; b ] ->
        (String.equal a name && List.mem b joined)
        || (String.equal b name && List.mem a joined)
      | _ -> false)
    profile.Profile.predicates

let step_selectivity_scan profile joined name =
  let preds = eligible_scan profile joined name in
  let groups = Selectivity.group_by_class profile preds in
  let combine = (Profile.estimator profile).Estimator.combine in
  List.fold_left
    (fun acc g -> acc *. combine (List.map (Selectivity.join profile) g))
    1. groups
