module Predicate = Query.Predicate

type state = {
  joined : string list;
  size : float;
  history : float list;
}

let start profile name =
  let name = String.lowercase_ascii name in
  let table = Profile.table profile name in
  { joined = [ name ]; size = table.Profile.rows; history = [] }

let eligible profile state name =
  let name = String.lowercase_ascii name in
  List.filter
    (fun p ->
      Predicate.is_join p
      &&
      match Predicate.tables p with
      | [ a; b ] ->
        (String.equal a name && List.mem b state.joined)
        || (String.equal b name && List.mem a state.joined)
      | _ -> false)
    profile.Profile.predicates

let combine_group profile group =
  let sels = List.map (Selectivity.join profile) group in
  match profile.Profile.config.Config.rule with
  | Config.Multiplicative -> List.fold_left ( *. ) 1. sels
  | Config.Smallest -> List.fold_left Float.min 1. sels
  | Config.Largest -> begin
    match sels with
    | [] -> 1.
    | s :: rest -> List.fold_left Float.max s rest
  end

let step_selectivity profile state name =
  let preds = eligible profile state name in
  let groups = Selectivity.group_by_class profile preds in
  List.fold_left (fun acc g -> acc *. combine_group profile g) 1. groups

let eligible_between profile s1 s2 =
  List.filter
    (fun p ->
      Predicate.is_join p
      &&
      match Predicate.tables p with
      | [ a; b ] ->
        (List.mem a s1.joined && List.mem b s2.joined)
        || (List.mem b s1.joined && List.mem a s2.joined)
      | _ -> false)
    profile.Profile.predicates

let join_states profile s1 s2 =
  List.iter
    (fun t ->
      if List.mem t s2.joined then
        invalid_arg
          (Printf.sprintf "Incremental.join_states: %s on both sides" t))
    s1.joined;
  let preds = eligible_between profile s1 s2 in
  let groups = Selectivity.group_by_class profile preds in
  let s =
    List.fold_left (fun acc g -> acc *. combine_group profile g) 1. groups
  in
  let size = s1.size *. s2.size *. s in
  {
    joined = s1.joined @ s2.joined;
    size;
    history = s1.history @ s2.history @ [ size ];
  }

let extend profile state name =
  let name = String.lowercase_ascii name in
  if List.mem name state.joined then
    invalid_arg
      (Printf.sprintf "Incremental.extend: %s already joined" name);
  let table = Profile.table profile name in
  let s = step_selectivity profile state name in
  let size = state.size *. table.Profile.rows *. s in
  {
    joined = state.joined @ [ name ];
    size;
    history = state.history @ [ size ];
  }

let estimate_order profile order =
  match order with
  | [] -> invalid_arg "Incremental.estimate_order: empty join order"
  | first :: rest ->
    List.fold_left (fun st name -> extend profile st name) (start profile first)
      rest

let final_size profile order = (estimate_order profile order).size
