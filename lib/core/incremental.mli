(** Incremental join-result-size estimation (step 6 of Algorithm ELS,
    Section 7).

    The estimator mirrors what a join-ordering optimizer does: start from
    one table, extend the intermediate result one table at a time, and
    estimate the size after each extension. At each step the {e eligible}
    join predicates — those linking the incoming table to tables already in
    the intermediate result — are grouped by equivalence class, each class
    contributes a single combined selectivity according to the configured
    {!Estimator.t} (Rule M: product of all; SS: smallest; LS: largest), and
    classes multiply together by independence.

    [size(I ⋈ R) = size(I) × ‖R‖′ × ∏_classes S_class].

    An estimator with a per-step cardinality cap ({!Estimator.cap}, e.g.
    the pessimistic degree-1 bound) additionally bounds each
    predicate-connected step's output by [cap ~left_rows ~right_rows];
    cartesian steps are never capped.

    This is the inner loop of exact DP enumeration (2ⁿ subsets), so the
    state carries the joined set as an int bitset over the profile's
    canonical table → bit mapping, eligibility is an O(degree) probe of the
    profile's per-table predicate index, and per-class selectivities come
    from the profile's memo caches.

    Three implementation tiers produce bit-identical numbers and serve as
    each other's differential baselines: when the profile carries a
    compiled {!Kernel} (the default; see {!Profile.kernel}),
    {!step_selectivity}/{!extend}/{!join_states} dispatch to its
    allocation-free step engine whenever no derivation sink is attached;
    otherwise they run the indexed interpreter below; and the pre-index
    list-scan implementation is kept as
    {!eligible_scan}/{!step_selectivity_scan} for differential tests and
    benchmarking. *)

type state = {
  mask : int;
      (** bitset of the tables in the intermediate result, over
          {!Profile.table_bit}'s canonical mapping *)
  size : float;  (** estimated cardinality of the intermediate result *)
  rev_history : float list;
      (** size after each extension, {e newest} first (O(1) extension);
          empty for a single table. Use {!history} for the oldest-first
          view. *)
}

val joined : Profile.t -> state -> string list
(** Tables in the intermediate result, in canonical (FROM) order. *)

val history : state -> float list
(** Size after each extension, oldest first; empty for a single table. *)

val start : Profile.t -> string -> state
(** Intermediate result consisting of one base table; size is its effective
    cardinality [‖R‖′]. *)

val eligible : Profile.t -> state -> string -> Query.Predicate.t list
(** Join predicates of the working conjunction linking the given table to
    the current intermediate result, in conjunction order. *)

val step_selectivity : Profile.t -> state -> string -> float
(** Combined selectivity the configured estimator assigns to joining the
    given table next; 1.0 for a cartesian product. Selectivity only — a
    per-step {!Estimator.cap} shows up in {!extend}'s size, not here. *)

val extend : Profile.t -> state -> string -> state
(** Join one more table.
    @raise Invalid_argument when the table is already in the result.
    @raise Not_found when it is not part of the profiled query. *)

val eligible_between : Profile.t -> state -> state -> Query.Predicate.t list
(** Join predicates of the working conjunction linking the two (disjoint)
    intermediate results. *)

val join_states : Profile.t -> state -> state -> state
(** Generalization of {!extend} to bushy joins: combine two intermediate
    results, applying one estimator-combined selectivity per equivalence
    class among the predicates that bridge them.
    [size(I₁ ⋈ I₂) = size(I₁) × size(I₂) × ∏_classes S_class].
    @raise Invalid_argument when the two states share a table. *)

val estimate_order : Profile.t -> string list -> state
(** Fold {!start}/{!extend} over a complete join order.
    @raise Invalid_argument on the empty list. *)

val final_size : Profile.t -> string list -> float
(** Estimated size of the full join along the given order. *)

(** {2 Reference list-scan baseline}

    The pre-index implementation over an explicit joined-table list,
    scanning the entire working conjunction per call. Kept for
    differential property tests and as the baseline of the DP-enumeration
    benchmark; produces exactly the same predicates and selectivities as
    the indexed path. *)

val eligible_scan :
  Profile.t -> string list -> string -> Query.Predicate.t list
(** [eligible_scan profile joined name] — O(#predicates × #joined). *)

val step_selectivity_scan : Profile.t -> string list -> string -> float
(** Uncached grouping and estimator combination over {!eligible_scan}. *)
