(* The step engine over compiled flat arrays. Everything here is written
   to keep the hot paths free of minor-heap allocation in native code:

   - floats never escape into a function call on the pass path: loop state
     lives in float-array scratch slots ([acc], [class_acc]) and locals
     used only in float ops, both of which ocamlopt keeps unboxed;
   - no refs, no local closures, no lists — [connected] recurses through a
     top-level function, accumulation uses [for] loops;
   - per-class accumulation reuses stamped scratch arrays ([class_acc] /
     [class_stamp] / [touched]), invalidated in O(1) by bumping [stamp];
   - guard checks are hand-inlined on the in-range path; the out-of-line
     [Guard.*] call happens only on a breach (reading its arguments back
     from the scratch slots), so strictness semantics, violation counters
     and error messages stay those of the interpreted path;
   - [Float.min]/[Float.max] are hand-inlined with the stdlib's exact
     NaN/signed-zero semantics, because calling them would box their
     arguments.

   Bit-identity with [Incremental]'s indexed path requires replicating its
   exact IEEE evaluation order: selectivities combine per class first
   (classes in first-occurrence order of the ascending predicate scan,
   members in ascending id order, each fold seeded exactly as the
   estimator's [combine] seeds it — note SS folds from 1.0, so its first
   member is [Float.min 1. s], not [s]) and the per-class results multiply
   left-to-right onto 1.0. A flat product across all predicates would
   round differently. *)

type combine = Product | Smallest | Largest | Unit
type cap = No_cap | Min_rows

(* Scratch slot indices in [acc]. *)
let slot_result = 0 (* combined selectivity, then final size *)
let slot_left = 1
let slot_right = 2
let slot_upper = 3

type t = {
  n_tables : int;
  rows : float array;  (* bit -> ‖R‖′ *)
  (* CSR adjacency: table [bit]'s join predicates are the dense indices
     [adj_pred.(adj_off.(bit)) .. adj_pred.(adj_off.(bit+1) - 1)], in
     working-conjunction order; [adj_other_mask] is the single-bit mask of
     each predicate's other endpoint, same slots. *)
  adj_off : int array;
  adj_pred : int array;
  adj_other_mask : int array;
  (* Per join predicate, dense index in ascending conjunction order. *)
  pred_sel : float array;
  pred_class : int array;
  pred_mask_a : int array;
  pred_mask_b : int array;
  combine : combine;
  cap : cap;
  guard : Guard.t;
  (* Stamped scratch: [class_acc.(c)] is valid iff
     [class_stamp.(c) = stamp]; [touched.(0 .. n_touched-1)] lists the
     classes of the current step in first-occurrence order. *)
  class_acc : float array;
  class_stamp : int array;
  touched : int array;
  mutable stamp : int;
  mutable n_touched : int;
  acc : float array;  (* see slot_* above *)
  mutable steps : int;
}

let make ~rows ~adj_off ~adj_pred ~adj_other_mask ~pred_sel ~pred_class
    ~pred_mask_a ~pred_mask_b ~n_classes ~combine ~cap ~guard =
  let n_tables = Array.length rows in
  let n_preds = Array.length pred_sel in
  let n_slots = Array.length adj_pred in
  if Array.length adj_off <> n_tables + 1 then
    invalid_arg "Kernel.make: adj_off must have n_tables + 1 entries";
  if n_tables > 0 && (adj_off.(0) <> 0 || adj_off.(n_tables) <> n_slots) then
    invalid_arg "Kernel.make: adj_off does not span adj_pred";
  if Array.length adj_other_mask <> n_slots then
    invalid_arg "Kernel.make: adj_other_mask/adj_pred length mismatch";
  if
    Array.length pred_class <> n_preds
    || Array.length pred_mask_a <> n_preds
    || Array.length pred_mask_b <> n_preds
  then invalid_arg "Kernel.make: per-predicate array length mismatch";
  Array.iter
    (fun p ->
      if p < 0 || p >= n_preds then
        invalid_arg "Kernel.make: adj_pred index out of range")
    adj_pred;
  Array.iter
    (fun c ->
      if c < 0 || c >= n_classes then
        invalid_arg "Kernel.make: pred_class out of range")
    pred_class;
  {
    n_tables;
    rows;
    adj_off;
    adj_pred;
    adj_other_mask;
    pred_sel;
    pred_class;
    pred_mask_a;
    pred_mask_b;
    combine;
    cap;
    guard;
    class_acc = Array.make (max 1 n_classes) 0.;
    class_stamp = Array.make (max 1 n_classes) 0;
    touched = Array.make (max 1 n_classes) 0;
    stamp = 0;
    n_touched = 0;
    acc = Array.make 4 0.;
    steps = 0;
  }

let table_count k = k.n_tables
let table_rows k bit = k.rows.(bit)
let steps k = k.steps

(* Top level (not a local [let rec]) so no closure is allocated. *)
let rec connected_from k mask i stop =
  i < stop
  && (mask land k.adj_other_mask.(i) <> 0 || connected_from k mask (i + 1) stop)

let connected k ~mask ~bit =
  connected_from k mask k.adj_off.(bit) k.adj_off.(bit + 1)

(* Fold the predicate at dense index [p] into its class accumulator. No
   float parameters or returns, so the call itself never boxes. *)
let accum_pred k p =
  let c = k.pred_class.(p) in
  let s = k.pred_sel.(p) in
  if k.class_stamp.(c) <> k.stamp then begin
    k.class_stamp.(c) <- k.stamp;
    k.touched.(k.n_touched) <- c;
    k.n_touched <- k.n_touched + 1;
    (* Seed exactly as each combine's fold does on its first member:
       M:    1. *. s = s (bit-exact identity, NaN included)
       SS:   Float.min 1. s — which is 1. when s > 1 (possible under Trap)
       LS:   seeds from the head directly
       PESS: classes contribute 1; the bound lives in the cap. *)
    k.class_acc.(c) <-
      (match k.combine with
      | Product | Largest -> s
      | Smallest -> if s > 1. then 1. else s
      | Unit -> 1.)
  end
  else
    match k.combine with
    | Product -> k.class_acc.(c) <- k.class_acc.(c) *. s
    | Smallest ->
        (* Float.min acc s, stdlib semantics with x = acc, y = s. *)
        let a = k.class_acc.(c) in
        k.class_acc.(c) <-
          (if s > a || ((not (Float.sign_bit s)) && Float.sign_bit a) then
             if s <> s then s else a
           else if a <> a then a
           else s)
    | Largest ->
        (* Float.max acc s, stdlib semantics with x = acc, y = s. *)
        let a = k.class_acc.(c) in
        k.class_acc.(c) <-
          (if s > a || ((not (Float.sign_bit s)) && Float.sign_bit a) then
             if a <> a then a else s
           else if s <> s then s
           else a)
    | Unit -> ()

(* Breach path of [finish_classes], out of line so the loop never passes a
   float to a call: re-guards [class_acc.(c)] through the shared Guard,
   with the interpreted path's site. *)
let fix_class k c =
  k.class_acc.(c) <-
    Guard.selectivity k.guard ~site:"Profile.class_selectivity"
      k.class_acc.(c)

(* Multiply the per-class results (first-occurrence order) into
   [acc.(slot_result)], guarding each class value exactly like the
   interpreted [Profile.class_selectivity]. *)
let finish_classes k =
  k.acc.(slot_result) <- 1.;
  for i = 0 to k.n_touched - 1 do
    let c = k.touched.(i) in
    (* [not (in range)] and not [< 0. || > 1.]: NaN must breach. *)
    if not (k.class_acc.(c) >= 0. && k.class_acc.(c) <= 1.) then
      fix_class k c;
    k.acc.(slot_result) <- k.acc.(slot_result) *. k.class_acc.(c)
  done

(* Accumulate every predicate linking [bit] to [mask]; the combined
   selectivity lands in [acc.(slot_result)], bridging in [n_touched]. *)
let accumulate k ~mask ~bit =
  k.stamp <- k.stamp + 1;
  k.n_touched <- 0;
  for i = k.adj_off.(bit) to k.adj_off.(bit + 1) - 1 do
    if mask land k.adj_other_mask.(i) <> 0 then accum_pred k k.adj_pred.(i)
  done;
  finish_classes k

(* Same, for predicates with one endpoint in each of two disjoint masks.
   Scans the full conjunction in ascending id order, matching
   [Incremental.eligible_ids_between]. *)
let accumulate_between k ~mask1 ~mask2 =
  k.stamp <- k.stamp + 1;
  k.n_touched <- 0;
  for p = 0 to Array.length k.pred_sel - 1 do
    let a = k.pred_mask_a.(p) and b = k.pred_mask_b.(p) in
    if
      (mask1 land a <> 0 && mask2 land b <> 0)
      || (mask1 land b <> 0 && mask2 land a <> 0)
    then accum_pred k p
  done;
  finish_classes k

(* Breach path of [finish_size]: reads the out-of-range size and its
   cartesian bound back from the scratch slots, so the hot loop never
   boxes them for this call. *)
let breach_size k ~site =
  k.acc.(slot_result) <-
    Guard.cardinality ~upper:k.acc.(slot_upper) k.guard ~site
      k.acc.(slot_result)

(* Turn the combined selectivity in [acc.(slot_result)] plus the two input
   sizes in [acc.(slot_left)]/[acc.(slot_right)] into the step's output
   size, in place: raw = left *. right *. s (the interpreted path's
   association), capped on bridged steps, then guarded against the
   cartesian upper bound. *)
let finish_size k ~site =
  let left = k.acc.(slot_left) and right = k.acc.(slot_right) in
  let raw = left *. right *. k.acc.(slot_result) in
  let capped =
    if k.n_touched = 0 then raw
    else
      match k.cap with
      | No_cap -> raw
      | Min_rows ->
          (* Float.min left right (x = left, y = right), inlined. *)
          let m =
            if
              right > left
              || ((not (Float.sign_bit right)) && Float.sign_bit left)
            then if right <> right then right else left
            else if left <> left then left
            else right
          in
          (* Float.min raw m (x = raw, y = m), inlined. *)
          if m > raw || ((not (Float.sign_bit m)) && Float.sign_bit raw)
          then if m <> m then m else raw
          else if raw <> raw then raw
          else m
  in
  let upper = left *. right in
  k.acc.(slot_result) <- capped;
  k.acc.(slot_upper) <- upper;
  if not (capped >= 0. && capped <= upper) then breach_size k ~site

let step_selectivity k ~mask ~bit =
  k.steps <- k.steps + 1;
  accumulate k ~mask ~bit;
  k.acc.(slot_result)

let extend_size k ~mask ~bit ~size =
  k.steps <- k.steps + 1;
  accumulate k ~mask ~bit;
  k.acc.(slot_left) <- size;
  k.acc.(slot_right) <- k.rows.(bit);
  finish_size k ~site:"Incremental.extend";
  k.acc.(slot_result)

let join_size k ~mask1 ~mask2 ~size1 ~size2 =
  k.steps <- k.steps + 1;
  accumulate_between k ~mask1 ~mask2;
  k.acc.(slot_left) <- size1;
  k.acc.(slot_right) <- size2;
  finish_size k ~site:"Incremental.join_states";
  k.acc.(slot_result)

let start_into k ~sizes ~bit = sizes.(1 lsl bit) <- k.rows.(bit)

let extend_into k ~sizes ~mask ~bit =
  k.steps <- k.steps + 1;
  accumulate k ~mask ~bit;
  k.acc.(slot_left) <- sizes.(mask);
  k.acc.(slot_right) <- k.rows.(bit);
  finish_size k ~site:"Incremental.extend";
  sizes.(mask lor (1 lsl bit)) <- k.acc.(slot_result)
