(** Compiled, allocation-free estimation kernels.

    A prepared query's step-6 inner loop (see {!Incremental}) interprets
    predicate and class structures on every DP expansion: eligible-id
    lists, per-class assoc grouping, polymorphic estimator dispatch and
    memo-cache probes. Following the compile-don't-interpret idiom (a
    policy compiler flattening structure into flow tables), a kernel
    lowers everything the step loop needs into flat int/float arrays once,
    at {!Els.prepare} time:

    - class roots interned as dense int ids — no [Cref.t] keys anywhere in
      the step loop;
    - per-table join-predicate adjacency in CSR layout, each slot carrying
      the precomputed bitmask of the predicate's {e other} endpoint;
    - per-predicate join selectivities in one float array (guard-clamped
      at compile, exactly as the memoized path produces them);
    - the estimator's [combine]/[cap] resolved to monomorphic cases over
      those arrays ({!combine}, {!cap}).

    Steps then run with {e zero minor-heap allocation}: class accumulation
    uses stamped scratch arrays owned by the kernel, guard checks are
    inlined on the in-range path, and the [*_into] entry points keep every
    float inside one frame (no boxed returns). Only invariant {e breaches}
    leave the fast path, calling the shared {!Guard} so error messages,
    strictness semantics and violation counters stay identical to the
    interpreted path.

    Every number a kernel produces is bit-identical to the indexed
    interpreter in {!Incremental} (same fold shapes, same guard sites,
    same IEEE evaluation order) — enforced by the golden hex-float
    captures and the kernel=indexed=scan QCheck differentials.

    Kernels are compiled by {!Profile.kernel}; this module only owns the
    data layout and the step engine, so it stays independent of profile
    construction. A kernel is single-threaded scratch state: share the
    profile across domains, not the kernel. *)

(** How one equivalence class combines its eligible selectivities —
    {!Estimator.t.combine} resolved to a monomorphic case. *)
type combine =
  | Product  (** Rule M: multiply every selectivity *)
  | Smallest  (** Rule SS: NaN-propagating minimum *)
  | Largest  (** Rule LS: NaN-propagating maximum *)
  | Unit  (** classes contribute 1 (PESS: the bound lives in the cap) *)

(** Per-step cardinality cap — {!Estimator.t.cap} resolved. *)
type cap =
  | No_cap
  | Min_rows  (** pessimistic degree-1 bound: min(‖R1‖′, ‖R2‖′) *)

type t

val make :
  rows:float array ->
  adj_off:int array ->
  adj_pred:int array ->
  adj_other_mask:int array ->
  pred_sel:float array ->
  pred_class:int array ->
  pred_mask_a:int array ->
  pred_mask_b:int array ->
  n_classes:int ->
  combine:combine ->
  cap:cap ->
  guard:Guard.t ->
  t
(** Assemble a kernel from compiled arrays (normally via
    {!Profile.kernel}, not directly):
    [rows.(bit)] is table [bit]'s effective cardinality ‖R‖′;
    [adj_off]/[adj_pred]/[adj_other_mask] is the CSR adjacency — table
    [bit]'s join predicates are slots [adj_off.(bit) .. adj_off.(bit+1)-1]
    in working-conjunction order, [adj_pred] the dense predicate index,
    [adj_other_mask] the bitmask of the predicate's other endpoint;
    [pred_sel]/[pred_class]/[pred_mask_a]/[pred_mask_b] are per-predicate
    (dense index, ascending conjunction order).
    @raise Invalid_argument on inconsistent array lengths. *)

val table_count : t -> int
val table_rows : t -> int -> float
(** ‖R‖′ of the table at the given bit. *)

val steps : t -> int
(** Estimation steps executed through this kernel so far (extends, joins
    and step-selectivity probes) — the denominator of the
    allocations-per-step metric F12 and {!Harness.Obs_report} publish. *)

val connected : t -> mask:int -> bit:int -> bool
(** Does any join predicate link table [bit] to the tables of [mask]?
    O(degree), allocation-free. *)

val step_selectivity : t -> mask:int -> bit:int -> float
(** Combined selectivity of joining table [bit] into the intermediate
    result [mask]: per-class accumulation in first-occurrence order,
    classes multiplied together — bit-identical to
    {!Incremental.step_selectivity}. *)

val extend_size : t -> mask:int -> bit:int -> size:float -> float
(** Output cardinality of joining table [bit] into an intermediate result
    of [size] rows over [mask]: [size × ‖R‖′ × ∏ S_class], capped on
    predicate-connected steps, guarded against the cartesian upper bound
    (same sites and semantics as {!Incremental.extend}). *)

val join_size :
  t -> mask1:int -> mask2:int -> size1:float -> size2:float -> float
(** {!extend_size} generalized to two intermediate results (bushy joins):
    one combined selectivity per class among the predicates bridging the
    two (disjoint) masks. Bit-identical to {!Incremental.join_states}. *)

val start_into : t -> sizes:float array -> bit:int -> unit
(** [sizes.(1 lsl bit) <- ‖R‖′] — seed one single-table state of a DP
    size table indexed by mask. Allocation-free. *)

val extend_into : t -> sizes:float array -> mask:int -> bit:int -> unit
(** [sizes.(mask lor (1 lsl bit)) <- extend_size ~mask ~bit
    ~size:sizes.(mask)], with every float kept inside the call frame — the
    zero-allocation DP entry point (measured, not assumed: the F12
    experiment and the kernel test suite assert a 0 [Gc.minor_words]
    delta per step after warmup). *)
