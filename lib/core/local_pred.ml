type restriction =
  | Unrestricted
  | Equality of Rel.Value.t
  | Range of float
  | Contradiction

type combined = {
  selectivity : float;
  restriction : restriction;
}

let satisfies op v const = Rel.Cmp.eval op v const

(* Tightest lower bound: larger constant wins; on ties the exclusive
   ([>]) bound wins. Dually for upper bounds. *)
let tighter_lower (op_a, a) (op_b, b) =
  let c = Rel.Value.compare_sem a b in
  if c > 0 then (op_a, a)
  else if c < 0 then (op_b, b)
  else if op_a = Rel.Cmp.Gt then (op_a, a)
  else (op_b, b)

let tighter_upper (op_a, a) (op_b, b) =
  let c = Rel.Value.compare_sem a b in
  if c < 0 then (op_a, a)
  else if c > 0 then (op_b, b)
  else if op_a = Rel.Cmp.Lt then (op_a, a)
  else (op_b, b)

let fold_tightest tighter = function
  | [] -> None
  | first :: rest -> Some (List.fold_left tighter first rest)

(* Does the interval (lower, upper) admit any value? *)
let interval_nonempty lower upper =
  match lower, upper with
  | Some (lop, lo), Some (uop, hi) ->
    let c = Rel.Value.compare_sem lo hi in
    if c > 0 then false
    else if c = 0 then lop = Rel.Cmp.Ge && uop = Rel.Cmp.Le
    else true
  | _, _ -> true

let combine stats preds =
  let contradiction = { selectivity = 0.; restriction = Contradiction } in
  (* SQL: a comparison with NULL never holds, so the conjunction is empty. *)
  if List.exists (fun (_, const) -> Rel.Value.is_null const) preds then
    contradiction
  else begin
    let eqs = ref []
    and lowers = ref []
    and uppers = ref []
    and nes = ref [] in
    List.iter
      (fun (op, const) ->
        match op with
        | Rel.Cmp.Eq -> eqs := const :: !eqs
        | Rel.Cmp.Ne -> nes := const :: !nes
        | Rel.Cmp.Gt | Rel.Cmp.Ge -> lowers := (op, const) :: !lowers
        | Rel.Cmp.Lt | Rel.Cmp.Le -> uppers := (op, const) :: !uppers)
      preds;
    match !eqs with
    | v :: rest ->
      (* Most restrictive equality: all equalities must agree and the
         pinned value must satisfy every other predicate. *)
      if not (List.for_all (Rel.Value.equal_sem v) rest) then contradiction
      else if
        not
          (List.for_all (fun (op, c) -> satisfies op v c) !lowers
          && List.for_all (fun (op, c) -> satisfies op v c) !uppers
          && List.for_all (fun c -> not (Rel.Value.equal_sem v c)) !nes)
      then contradiction
      else
        {
          selectivity = Stats.Selectivity_est.comparison stats Rel.Cmp.Eq v;
          restriction = Equality v;
        }
    | [] ->
      let lower = fold_tightest tighter_lower !lowers in
      let upper = fold_tightest tighter_upper !uppers in
      if not (interval_nonempty lower upper) then contradiction
      else begin
        let range_sel =
          match lower, upper with
          | None, None -> 1.
          | _, _ -> Stats.Selectivity_est.range_pair stats ~lower ~upper
        in
        (* Each surviving <> excludes one value's share of the rows. *)
        let in_interval c =
          (match lower with
          | None -> true
          | Some (op, lo) -> satisfies op c lo)
          &&
          match upper with
          | None -> true
          | Some (op, hi) -> satisfies op c hi
        in
        let ne_factor =
          List.fold_left
            (fun acc c ->
              if in_interval c then
                acc
                *. (1.
                   -. Stats.Selectivity_est.comparison stats Rel.Cmp.Eq c)
              else acc)
            1.
            (* Numeric-aware dedup: [<> 3] and [<> 3.0] exclude the same
               value and must not be double-counted. *)
            (List.sort_uniq Rel.Value.compare_sem !nes)
        in
        let selectivity = range_sel *. ne_factor in
        let restriction =
          if lower = None && upper = None && !nes = [] then Unrestricted
          else Range selectivity
        in
        { selectivity; restriction }
      end
  end

let reduced_distinct stats combined =
  let d = float_of_int stats.Stats.Col_stats.distinct in
  match combined.restriction with
  | Unrestricted -> d
  | Equality _ -> 1.
  | Range s ->
    (* A satisfiable restriction leaves at least one value (d′ ≥ 1,
       Section 5); letting d′ drop below 1 would turn the downstream
       1/max(d′₁, d′₂) join selectivities into amplification factors. *)
    Float.max 1. (d *. s)
  | Contradiction -> 0.
