(** Combining multiple local constant predicates on a single column
    (Section 4, step 3, summarizing the companion report RJ 9569 [16]):
    "the most restrictive equality predicate is chosen if it exists,
    otherwise we choose a pair of range predicates which form the tightest
    bound."

    Inequality ([<>]) predicates not subsumed by the chosen bounds
    contribute an independent [(1 - 1/d)] factor each. Contradictory
    conjunctions (e.g. [x = 3 AND x = 4], [x > 9 AND x < 2]) combine to
    selectivity 0. *)

type restriction =
  | Unrestricted  (** no constant predicate on the column *)
  | Equality of Rel.Value.t
      (** pinned to one value: the column cardinality drops to 1 *)
  | Range of float
      (** restricted with the given selectivity: [d′ = d × s] *)
  | Contradiction  (** provably empty: selectivity 0 *)

type combined = {
  selectivity : float; (** fraction of the table's rows surviving *)
  restriction : restriction;
}

val combine :
  Stats.Col_stats.t -> (Rel.Cmp.t * Rel.Value.t) list -> combined
(** [combine stats preds] folds all constant predicates on one column.
    The empty list combines to selectivity 1, [Unrestricted]. *)

val reduced_distinct : Stats.Col_stats.t -> combined -> float
(** Effective column cardinality [d′] of the predicated column itself
    (Section 5): 1 for an equality, [max 1 (d × s)] for a restriction of
    selectivity [s] (a satisfiable restriction always leaves at least one
    value, keeping join selectivities [1/max(d′₁, d′₂)] at most 1), [d]
    when unrestricted, 0 for a contradiction. *)
