module Cref = Query.Cref
module Predicate = Query.Predicate

type column_profile = {
  cref : Cref.t;
  base_distinct : float;
  local_distinct : float;
  join_distinct : float;
}

type table_profile = {
  name : string;
  source : string;
  base_rows : float;
  rows : float;
  local_selectivity : float;
  columns : column_profile Cref.Map.t;
}

type t = {
  config : Config.t;
  predicates : Predicate.t list;
  classes : Eqclass.t;
  tables : (string * table_profile) list;
}

let ceil_pos x = if x <= 0. then 0. else Float.ceil x

let stats_of db_table column =
  match Catalog.Table.col_stats db_table column with
  | Some s -> s
  | None ->
    Stats.Col_stats.trivial ~distinct:(Catalog.Table.distinct db_table column)

(* Columns of [table] mentioned in the working predicates. *)
let predicate_columns predicates table =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc c ->
          if String.equal c.Cref.table table then Cref.Set.add c acc else acc)
        acc (Predicate.columns p))
    Cref.Set.empty predicates

(* Constant predicates of the working set, per column of [table]. *)
let const_preds_on predicates col =
  List.filter_map
    (fun p ->
      match p with
      | Predicate.Cmp { col = c; op; const } when Cref.equal c col ->
        Some (op, const)
      | Predicate.Cmp _ | Predicate.Col_eq _ -> None)
    predicates

(* Intra-table column equalities of [table], as column pairs. *)
let intra_table_equalities predicates table =
  List.filter_map
    (fun p ->
      match p with
      | Predicate.Col_eq { left; right }
        when Cref.same_table left right
             && String.equal left.Cref.table table ->
        Some (left, right)
      | Predicate.Col_eq _ | Predicate.Cmp _ -> None)
    predicates

(* Steps 3-4: fold the constant local predicates of one table into its row
   count and column cardinalities. *)
let local_effects db_table predicates columns =
  let base_rows = float_of_int db_table.Catalog.Table.row_count in
  let per_column =
    List.map
      (fun col ->
        let stats = stats_of db_table col.Cref.column in
        let combined =
          Local_pred.combine stats (const_preds_on predicates col)
        in
        (col, stats, combined))
      (Cref.Set.elements columns)
  in
  let selectivity =
    List.fold_left
      (fun acc (_, _, combined) -> acc *. combined.Local_pred.selectivity)
      1. per_column
  in
  let rows = base_rows *. selectivity in
  let column_profiles =
    List.fold_left
      (fun acc (col, stats, combined) ->
        let base_distinct = float_of_int stats.Stats.Col_stats.distinct in
        let local_distinct =
          match combined.Local_pred.restriction with
          | Local_pred.Unrestricted ->
            (* Thinning caused by other columns' predicates (Section 5's
               urn argument). *)
            if rows >= base_rows then base_distinct
            else Stats.Urn.expected_distinct ~urns:base_distinct ~balls:rows
          | Local_pred.Equality _ | Local_pred.Range _ | Local_pred.Contradiction
            ->
            (* Direct effect on the predicated column itself; never more
               than the surviving rows. *)
            Float.min (Local_pred.reduced_distinct stats combined) rows
        in
        Cref.Map.add col
          { cref = col; base_distinct; local_distinct;
            join_distinct = local_distinct }
          acc)
      Cref.Map.empty per_column
  in
  (base_rows, rows, selectivity, column_profiles)

(* Step 5, Section 6: single-table j-equivalent columns. Returns the
   adjusted row count and column map. *)
let single_table_effects classes rows columns =
  (* Group this table's predicate columns by equivalence class. *)
  let by_class = Hashtbl.create 8 in
  Cref.Map.iter
    (fun col profile ->
      let root = Eqclass.find classes col in
      let existing =
        Option.value (Hashtbl.find_opt by_class root) ~default:[]
      in
      Hashtbl.replace by_class root (profile :: existing))
    columns;
  Hashtbl.fold
    (fun _root members (rows, columns) ->
      match members with
      | [] | [ _ ] -> (rows, columns)
      | _ :: _ :: _ ->
        let sorted =
          List.sort
            (fun a b -> Float.compare a.local_distinct b.local_distinct)
            members
        in
        let smallest = List.hd sorted in
        let larger = List.tl sorted in
        let divisor =
          List.fold_left (fun acc c -> acc *. c.local_distinct) 1. larger
        in
        let rows' =
          if divisor <= 0. then 0. else ceil_pos (rows /. divisor)
        in
        let rep_card =
          ceil_pos
            (Stats.Urn.expected_distinct ~urns:smallest.local_distinct
               ~balls:rows')
        in
        let columns =
          List.fold_left
            (fun acc member ->
              Cref.Map.add member.cref
                { member with join_distinct = rep_card }
                acc)
            columns sorted
        in
        (rows', columns))
    by_class (rows, columns)

(* Classic Selinger handling of intra-table equalities, used when the
   Section 6 treatment is switched off: each predicate contributes an
   independent 1/max(d1,d2) factor to the row count. *)
let selinger_intra_table_effects predicates table_name rows columns =
  List.fold_left
    (fun rows (left, right) ->
      let card c =
        match Cref.Map.find_opt c columns with
        | Some p -> p.base_distinct
        | None -> 1.
      in
      let m = Float.max (card left) (card right) in
      if m <= 0. then 0. else rows /. m)
    rows
    (intra_table_equalities predicates table_name)

let build_table config predicates classes db query_table ~source =
  let db_table = Catalog.Db.find_exn db source in
  let columns = predicate_columns predicates query_table in
  let base_rows, rows, _selectivity, column_profiles =
    local_effects db_table predicates columns
  in
  let rows, column_profiles =
    if config.Config.single_table then
      single_table_effects classes rows column_profiles
    else
      ( selinger_intra_table_effects predicates query_table rows
          column_profiles,
        column_profiles )
  in
  let local_selectivity = if base_rows <= 0. then 0. else rows /. base_rows in
  {
    name = query_table;
    source;
    base_rows;
    rows;
    local_selectivity;
    columns = column_profiles;
  }

let build config db query =
  let deduped = Predicate.Set.elements (Predicate.Set.of_list query.Query.predicates) in
  let working =
    if config.Config.closure then (Closure.compute deduped).Closure.predicates
    else deduped
  in
  let classes = Eqclass.of_predicates working in
  let tables =
    List.map
      (fun name ->
        ( name,
          build_table config working classes db name
            ~source:(Query.source query name) ))
      query.Query.tables
  in
  { config; predicates = working; classes; tables }

let table t name =
  match List.assoc_opt (String.lowercase_ascii name) t.tables with
  | Some profile -> profile
  | None -> raise Not_found

let join_card t cref =
  let profile = table t cref.Cref.table in
  match Cref.Map.find_opt cref profile.columns with
  | Some col ->
    if t.config.Config.local_aware then col.join_distinct
    else col.base_distinct
  | None ->
    (* A column never mentioned in predicates: fall back to its catalog
       cardinality. Callers only reach this for ad-hoc estimates. *)
    profile.base_rows
