module Cref = Query.Cref
module Predicate = Query.Predicate

type column_profile = {
  cref : Cref.t;
  base_distinct : float;
  local_distinct : float;
  join_distinct : float;
  d_source : string;
  col_stats : Stats.Col_stats.t;
}

type table_profile = {
  name : string;
  source : string;
  base_rows : float;
  rows : float;
  local_selectivity : float;
  columns : column_profile Cref.Map.t;
}

type pred_info = {
  pred : Predicate.t;
  id : int;
  root : Cref.t;
  endpoints : (int * int) option;
}

type cache_stats = {
  mutable sel_hits : int;
  mutable sel_misses : int;
  mutable group_hits : int;
  mutable group_misses : int;
  mutable eligible_probes : int;
  mutable scans_avoided : int;
  mutable kernel_fallbacks : int;
}

type index = {
  table_names : string array;
  table_bits : (string, int) Hashtbl.t;
  profiles : table_profile array;
  pred_infos : pred_info array;
  join_pred_ids : int array;
  join_preds_by_table : int array array;
  local_preds_by_table : Predicate.t list array;
}

type kernel_slot =
  | Kernel_unbuilt
  | Kernel_disabled
  | Kernel_unsupported
  | Kernel_ready of Kernel.t

type t = {
  config : Config.t;
  predicates : Predicate.t list;
  classes : Eqclass.t;
  tables : (string * table_profile) list;
  index : index;
  memoize : bool;
  sel_cache : float array;
  group_cache : (string * int list, float) Hashtbl.t;
  stats : cache_stats;
  guard : Guard.t;
  validation : Catalog.Validate.issue list;
  annotations : string list;
  mutable deriv : Obs.Derivation.t option;
  mutable kernel : kernel_slot;
}

(* Hot-path friendly: names are almost always lowercase already, so avoid
   allocating a copy unless an uppercase letter is present. *)
let normalize s =
  let rec lowercase i =
    i >= String.length s
    || (match s.[i] with 'A' .. 'Z' -> false | _ -> lowercase (i + 1))
  in
  if lowercase 0 then s else String.lowercase_ascii s

let create_stats () =
  {
    sel_hits = 0;
    sel_misses = 0;
    group_hits = 0;
    group_misses = 0;
    eligible_probes = 0;
    scans_avoided = 0;
    kernel_fallbacks = 0;
  }

let reset_stats s =
  s.sel_hits <- 0;
  s.sel_misses <- 0;
  s.group_hits <- 0;
  s.group_misses <- 0;
  s.eligible_probes <- 0;
  s.scans_avoided <- 0;
  s.kernel_fallbacks <- 0

let pp_stats ppf s =
  Format.fprintf ppf
    "sel hit/miss=%d/%d group hit/miss=%d/%d probes=%d scans-avoided=%d \
     kernel-fallbacks=%d"
    s.sel_hits s.sel_misses s.group_hits s.group_misses s.eligible_probes
    s.scans_avoided s.kernel_fallbacks

let ceil_pos x = if x <= 0. then 0. else Float.ceil x

let stats_of guard db_table column =
  match Catalog.Table.col_stats db_table column with
  | Some s -> s
  | None ->
    (* Degrade to the key-column worst case; counted so missing statistics
       are visible in the guard report rather than silent. *)
    Guard.note_fallback guard;
    Stats.Col_stats.trivial ~distinct:(Catalog.Table.distinct db_table column)

(* Columns of [table] mentioned in the working predicates. *)
let predicate_columns predicates table =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc c ->
          if String.equal c.Cref.table table then Cref.Set.add c acc else acc)
        acc (Predicate.columns p))
    Cref.Set.empty predicates

(* Constant predicates of the working set, per column of [table]. *)
let const_preds_on predicates col =
  List.filter_map
    (fun p ->
      match p with
      | Predicate.Cmp { col = c; op; const } when Cref.equal c col ->
        Some (op, const)
      | Predicate.Cmp _ | Predicate.Col_cmp _ -> None)
    predicates

(* Intra-table column equalities of [table], as column pairs. *)
let intra_table_equalities predicates table =
  List.filter_map
    (fun p ->
      match p with
      | Predicate.Col_cmp { left; op = Predicate.Eq; right }
        when Cref.same_table left right
             && String.equal left.Cref.table table ->
        Some (left, right)
      | Predicate.Col_cmp _ | Predicate.Cmp _ -> None)
    predicates

(* Steps 3-4: fold the constant local predicates of one table into its row
   count and column cardinalities. *)
let local_effects guard db_table predicates columns =
  let base_rows = float_of_int db_table.Catalog.Table.row_count in
  let per_column =
    List.map
      (fun col ->
        let stats = stats_of guard db_table col.Cref.column in
        let preds = const_preds_on predicates col in
        let combined = Local_pred.combine stats preds in
        let combined =
          { combined with
            Local_pred.selectivity =
              Guard.selectivity guard ~site:"Profile.local_pred"
                combined.Local_pred.selectivity }
        in
        (col, stats, preds, combined))
      (Cref.Set.elements columns)
  in
  let selectivity =
    List.fold_left
      (fun acc (_, _, _, combined) -> acc *. combined.Local_pred.selectivity)
      1. per_column
  in
  let rows =
    Guard.cardinality guard ~site:"Profile.local_rows"
      ~upper:(Float.max 0. base_rows)
      (base_rows *. selectivity)
  in
  (* Label which statistic shaped a column's d′ (the derivation card's
     vocabulary). Pure observation: [Selectivity_est.comparison_source]
     mirrors the estimator's branch structure without computing numbers. *)
  let d_source_of stats preds combined =
    let src op c =
      Stats.Selectivity_est.(source_name (comparison_source stats op c))
    in
    match combined.Local_pred.restriction with
    | Local_pred.Contradiction -> "contradiction"
    | Local_pred.Equality v -> "equality(" ^ src Rel.Cmp.Eq v ^ ")"
    | Local_pred.Range _ -> begin
      let is_range (op, _) =
        match op with
        | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Gt | Rel.Cmp.Ge -> true
        | Rel.Cmp.Eq | Rel.Cmp.Ne -> false
      in
      match List.find_opt is_range preds with
      | Some (op, c) -> "range(" ^ src op c ^ ")"
      | None -> "ne" (* only <> predicates restrict this column *)
    end
    | Local_pred.Unrestricted -> if rows >= base_rows then "base" else "urn"
  in
  let column_profiles =
    List.fold_left
      (fun acc (col, stats, preds, combined) ->
        let base_distinct = float_of_int stats.Stats.Col_stats.distinct in
        let local_distinct =
          match combined.Local_pred.restriction with
          | Local_pred.Unrestricted ->
            (* Thinning caused by other columns' predicates (Section 5's
               urn argument). *)
            if rows >= base_rows then base_distinct
            else Stats.Urn.expected_distinct ~urns:base_distinct ~balls:rows
          | Local_pred.Equality _ | Local_pred.Range _ | Local_pred.Contradiction
            ->
            (* Direct effect on the predicated column itself; never more
               than the surviving rows. *)
            Float.min (Local_pred.reduced_distinct stats combined) rows
        in
        let local_distinct =
          (* d′ ∈ [1, d] only when the table and column are nonempty;
             degenerate inputs legitimately drive d′ to 0. *)
          if rows >= 1. && base_distinct >= 1. then
            Guard.distinct guard ~site:"Profile.local_distinct"
              ~d:base_distinct local_distinct
          else
            Guard.cardinality guard ~site:"Profile.local_distinct"
              ~upper:(Float.max 0. base_distinct)
              local_distinct
        in
        Cref.Map.add col
          { cref = col; base_distinct; local_distinct;
            join_distinct = local_distinct;
            d_source = d_source_of stats preds combined;
            col_stats = stats }
          acc)
      Cref.Map.empty per_column
  in
  (base_rows, rows, selectivity, column_profiles)

(* Step 5, Section 6: single-table j-equivalent columns. Returns the
   adjusted row count and column map. *)
let single_table_effects guard classes rows columns =
  (* Group this table's predicate columns by equivalence class. *)
  let by_class = Hashtbl.create 8 in
  Cref.Map.iter
    (fun col profile ->
      let root = Eqclass.find classes col in
      let existing =
        Option.value (Hashtbl.find_opt by_class root) ~default:[]
      in
      Hashtbl.replace by_class root (profile :: existing))
    columns;
  Hashtbl.fold
    (fun _root members (rows, columns) ->
      match members with
      | [] | [ _ ] -> (rows, columns)
      | _ :: _ :: _ ->
        let sorted =
          List.sort
            (fun a b -> Float.compare a.local_distinct b.local_distinct)
            members
        in
        let smallest = List.hd sorted in
        let larger = List.tl sorted in
        let divisor =
          List.fold_left (fun acc c -> acc *. c.local_distinct) 1. larger
        in
        let rows' =
          if divisor <= 0. then 0. else ceil_pos (rows /. divisor)
        in
        let rows' =
          Guard.cardinality guard ~site:"Profile.single_table_rows"
            ~upper:(ceil_pos rows) rows'
        in
        let rep_card =
          ceil_pos
            (Stats.Urn.expected_distinct ~urns:smallest.local_distinct
               ~balls:rows')
        in
        let rep_card =
          Guard.cardinality guard ~site:"Profile.single_table_rep_card"
            ~upper:(ceil_pos smallest.local_distinct)
            rep_card
        in
        let columns =
          List.fold_left
            (fun acc member ->
              Cref.Map.add member.cref
                { member with
                  join_distinct = rep_card;
                  d_source = "single-table(" ^ member.d_source ^ ")" }
                acc)
            columns sorted
        in
        (rows', columns))
    by_class (rows, columns)

(* Classic Selinger handling of intra-table equalities, used when the
   Section 6 treatment is switched off: each predicate contributes an
   independent 1/max(d1,d2) factor to the row count. *)
let selinger_intra_table_effects predicates table_name rows columns =
  List.fold_left
    (fun rows (left, right) ->
      let card c =
        match Cref.Map.find_opt c columns with
        | Some p -> p.base_distinct
        | None -> 1.
      in
      let m = Float.max (card left) (card right) in
      if m <= 0. then 0. else rows /. m)
    rows
    (intra_table_equalities predicates table_name)

(* Audit one catalog table under the configured strictness before its
   numbers enter any formula. Only tables the query references are
   audited, so validation cost scales with the query, not the catalog. *)
let validated_table config guard note_issues db source =
  let db_table = Catalog.Db.find_exn db source in
  match config.Config.strictness with
  | Config.Strict -> begin
    match Catalog.Validate.check_table db_table with
    | [] -> db_table
    | issue :: _ -> Els_error.raise_ (Els_error.of_issue issue)
  end
  | Config.Repair ->
    let repaired, issues = Catalog.Validate.repair_table db_table in
    let stats = Guard.stats guard in
    List.iter
      (fun _ ->
        stats.Guard.violations <- stats.Guard.violations + 1;
        stats.Guard.repairs <- stats.Guard.repairs + 1)
      issues;
    note_issues issues;
    repaired
  | Config.Trap ->
    let issues = Catalog.Validate.check_table db_table in
    let stats = Guard.stats guard in
    List.iter
      (fun _ -> stats.Guard.violations <- stats.Guard.violations + 1)
      issues;
    note_issues issues;
    db_table

let build_table config guard predicates classes db_table query_table ~source =
  let columns = predicate_columns predicates query_table in
  let base_rows, rows, _selectivity, column_profiles =
    local_effects guard db_table predicates columns
  in
  let rows, column_profiles =
    if config.Config.single_table then
      single_table_effects guard classes rows column_profiles
    else
      ( selinger_intra_table_effects predicates query_table rows
          column_profiles,
        column_profiles )
  in
  let local_selectivity = if base_rows <= 0. then 0. else rows /. base_rows in
  {
    name = query_table;
    source;
    base_rows;
    rows;
    local_selectivity;
    columns = column_profiles;
  }

(* Canonical table -> bit mapping (FROM order) plus per-table predicate
   indexes, all resolved once per profile: predicate equivalence-class
   roots, the bit pair of each join predicate's endpoints, and each
   table's pushed-down local predicates. *)
let build_index classes tables working =
  let n = List.length tables in
  if n > 62 then
    invalid_arg "Profile.build: more than 62 tables (bitset index limit)";
  let table_names = Array.of_list (List.map fst tables) in
  let profiles = Array.of_list (List.map snd tables) in
  let table_bits = Hashtbl.create (2 * n) in
  Array.iteri (fun bit name -> Hashtbl.replace table_bits name bit) table_names;
  let bit_of name = Hashtbl.find table_bits name in
  let pred_infos =
    Array.of_list
      (List.mapi
         (fun id p ->
           let root =
             match Predicate.columns p with
             | col :: _ -> Eqclass.find classes col
             | [] -> assert false
           in
           let endpoints =
             if Predicate.is_join p then
               match Predicate.tables p with
               | [ a; b ] -> Some (bit_of a, bit_of b)
               | _ -> None
             else None
           in
           { pred = p; id; root; endpoints })
         working)
  in
  let join_rev = ref [] in
  let by_table = Array.make n [] in
  let local_rev = Array.make n [] in
  Array.iter
    (fun info ->
      match info.endpoints with
      | Some (a, b) ->
        join_rev := info.id :: !join_rev;
        by_table.(a) <- info.id :: by_table.(a);
        if b <> a then by_table.(b) <- info.id :: by_table.(b)
      | None -> begin
        match Predicate.tables info.pred with
        | [ t ] -> local_rev.(bit_of t) <- info.pred :: local_rev.(bit_of t)
        | _ -> ()
      end)
    pred_infos;
  {
    table_names;
    table_bits;
    profiles;
    pred_infos;
    join_pred_ids = Array.of_list (List.rev !join_rev);
    join_preds_by_table =
      Array.map (fun ids -> Array.of_list (List.rev ids)) by_table;
    local_preds_by_table = Array.map List.rev local_rev;
  }

let build ?(memoize = true) ?(kernel = true) ?trace ?(annotations = []) config
    db query =
  Obs.Trace.with_span trace "profile" @@ fun () ->
  let deduped = Predicate.Set.elements (Predicate.Set.of_list query.Query.predicates) in
  let working =
    if config.Config.closure then (Closure.compute deduped).Closure.predicates
    else deduped
  in
  let classes = Eqclass.of_predicates working in
  let guard = Guard.create config.Config.strictness in
  let issues = ref [] in
  let note_issues found = issues := List.rev_append found !issues in
  (* Validation is its own phase: every referenced table is audited before
     any of its numbers enter a formula. *)
  let validated =
    Obs.Trace.with_span trace "validate" @@ fun () ->
    let tables =
      List.map
        (fun name ->
          let source = Query.source query name in
          (name, source, validated_table config guard note_issues db source))
        query.Query.tables
    in
    Obs.Trace.attr_int trace "tables" (List.length tables);
    Obs.Trace.attr_int trace "issues" (List.length !issues);
    tables
  in
  Obs.Trace.attr_int trace "predicates" (List.length working);
  let tables =
    List.map
      (fun (name, source, db_table) ->
        (name, build_table config guard working classes db_table name ~source))
      validated
  in
  let index = build_index classes tables working in
  {
    config;
    predicates = working;
    classes;
    tables;
    index;
    memoize;
    sel_cache = Array.make (Array.length index.pred_infos) Float.nan;
    group_cache = Hashtbl.create 256;
    stats = create_stats ();
    guard;
    validation = List.rev !issues;
    annotations;
    deriv = None;
    kernel = (if kernel then Kernel_unbuilt else Kernel_disabled);
  }

let build_result ?memoize ?kernel ?trace ?annotations config db query =
  match build ?memoize ?kernel ?trace ?annotations config db query with
  | profile -> Ok profile
  | exception Els_error.Error e -> Error e
  | exception Invalid_argument msg ->
    Error (Els_error.Invalid_query { detail = msg })
  | exception Not_found ->
    Error
      (Els_error.Invalid_query
         { detail = "a query table or column is missing from the catalog" })

let table_count t = Array.length t.index.table_names
let table_bit t name = Hashtbl.find t.index.table_bits (normalize name)
let table_name t bit = t.index.table_names.(bit)
let table_at t bit = t.index.profiles.(bit)
let table t name = table_at t (table_bit t name)

let pred_count t = Array.length t.index.pred_infos
let pred t id = t.index.pred_infos.(id)
let scan_filters t name = t.index.local_preds_by_table.(table_bit t name)

let cache_stats t = t.stats
let reset_cache_stats t = reset_stats t.stats

let guard t = t.guard
let guard_stats t = Guard.stats t.guard
let validation_issues t = t.validation

(* Derivation recording is opt-in per profile and normally attached only
   around a single estimation pass — during DP enumeration the same profile
   serves thousands of candidate steps, which would swamp the sink. *)
let set_derivation t d =
  (* A profile built against a stale epoch carries staleness annotations;
     stamp them onto every sink attached to it so the explain card always
     discloses which statistics were not fresh. *)
  (match d with
  | Some sink ->
    List.iter (fun note -> Obs.Derivation.annotate sink note) t.annotations
  | None -> ());
  t.deriv <- d

let derivation t = t.deriv

let join_card t cref =
  let profile = table t cref.Cref.table in
  match Cref.Map.find_opt cref profile.columns with
  | Some col ->
    if t.config.Config.local_aware then col.join_distinct
    else col.base_distinct
  | None ->
    (* A column never mentioned in predicates: fall back to its catalog
       cardinality. Callers only reach this for ad-hoc estimates. *)
    profile.base_rows

let column_stats t cref =
  let profile = table t cref.Cref.table in
  match Cref.Map.find_opt cref profile.columns with
  | Some col -> col.col_stats
  | None ->
    (* A column never mentioned in predicates carries no distribution
       information worth convolving; the estimators fall back to the
       System R defaults. *)
    Stats.Col_stats.trivial ~distinct:0

let selectivity_of_cards d1 d2 =
  let m = Float.max d1 d2 in
  if d1 <= 0. || d2 <= 0. then 0. else Float.min 1. (1. /. m)

(* Raw (unguarded, uncached) selectivity of one column-comparison
   predicate. Equality is the paper's 1/max(d1, d2) over the effective
   cardinalities; inequality and band go through the histogram-CDF
   convolution of {!Stats.Selectivity_est}, the rule-2d generalization. *)
let comparison_selectivity t ~left ~op ~right =
  match op with
  | Predicate.Eq ->
    selectivity_of_cards (join_card t left) (join_card t right)
  | Predicate.Band eps ->
    Stats.Selectivity_est.join_band (column_stats t left) ~eps
      (column_stats t right)
  | Predicate.Lt | Predicate.Le | Predicate.Gt | Predicate.Ge ->
    let cmp_op =
      match Predicate.cmp_of_comparison op with
      | Some o -> o
      | None -> assert false
    in
    Stats.Selectivity_est.join_comparison (column_stats t left) cmp_op
      (column_stats t right)

let join_selectivity t id =
  let compute () =
    match t.index.pred_infos.(id).pred with
    | Predicate.Col_cmp { left; op; right } ->
      Guard.selectivity t.guard ~site:"Profile.join_selectivity"
        (comparison_selectivity t ~left ~op ~right)
    | Predicate.Cmp _ ->
      invalid_arg "Profile.join_selectivity: not a join predicate"
  in
  if not t.memoize then compute ()
  else begin
    (* NaN marks an unfilled slot: real selectivities live in [0, 1], and a
       flat float array keeps the hit path unboxed. *)
    let s = t.sel_cache.(id) in
    if Float.is_nan s then begin
      t.stats.sel_misses <- t.stats.sel_misses + 1;
      let s = compute () in
      t.sel_cache.(id) <- s;
      s
    end
    else begin
      t.stats.sel_hits <- t.stats.sel_hits + 1;
      s
    end
  end

let group_cache_limit = 4096
let estimator t = t.config.Config.estimator

let with_estimator e t =
  {
    t with
    config = Config.with_estimator e t.config;
    (* The compiled kernel bakes in the estimator's combine/cap, so the
       swapped copy must recompile lazily — but an explicit opt-out
       ([build ~kernel:false]) survives the swap. *)
    kernel =
      (match t.kernel with
      | Kernel_disabled -> Kernel_disabled
      | Kernel_unbuilt | Kernel_unsupported | Kernel_ready _ -> Kernel_unbuilt);
  }

let class_selectivity t ids =
  let est = estimator t in
  let compute () =
    Guard.selectivity t.guard ~site:"Profile.class_selectivity"
      (est.Estimator.combine (List.map (join_selectivity t) ids))
  in
  if not t.memoize then compute ()
  else begin
    (* The combined value depends on the estimator, so the key carries its
       id — [with_estimator] shares this table across swaps. The
       per-predicate [sel_cache] stays unkeyed: raw join selectivities are
       estimator-independent. *)
    let key = (est.Estimator.id, ids) in
    match Hashtbl.find_opt t.group_cache key with
    | Some s ->
      t.stats.group_hits <- t.stats.group_hits + 1;
      s
    | None ->
      t.stats.group_misses <- t.stats.group_misses + 1;
      let s = compute () in
      (* Bounded: exhaustive DP enumeration can produce a distinct group
         per (subset, table) pair, and an ever-growing table would spend
         more on resizes and rehashes than the memo saves. *)
      if Hashtbl.length t.group_cache < group_cache_limit then
        Hashtbl.add t.group_cache key s;
      s
  end

(* --- kernel compilation -------------------------------------------------

   Lowering a profile to a [Kernel.t]: the estimator's combine/cap resolved
   to monomorphic cases, class roots interned as dense ids, the per-table
   adjacency re-laid out as CSR int arrays with precomputed other-endpoint
   bitmasks, and every join selectivity evaluated once into a float array.
   Selectivities go through the same memoized [join_selectivity], so guard
   semantics and violation accounting match a first interpreted pass. *)

(* Only the four built-in rules have a monomorphic lowering; a custom
   estimator's [combine] closure is arbitrary OCaml, so profiles carrying
   one fall back to the interpreted path. Physical equality is the right
   test: registry entries are shared records, and any re-made record could
   carry a different closure under the same id. *)
let kernel_kind est =
  if est == Estimator.m then Some (Kernel.Product, Kernel.No_cap)
  else if est == Estimator.ss then Some (Kernel.Smallest, Kernel.No_cap)
  else if est == Estimator.ls then Some (Kernel.Largest, Kernel.No_cap)
  else if est == Estimator.pess then Some (Kernel.Unit, Kernel.Min_rows)
  else None

(* The kernel's step algebra is the equality rule (class-grouped
   1/max-d selectivities); a comparison join changes the grouping
   semantics (every non-Eq predicate is its own group), so profiles
   carrying one fall back to the interpreted tier wholesale — per-step
   mixing would put bit-identity on equality-only workloads at risk. *)
let kernel_lowerable t =
  Array.for_all
    (fun id ->
      match t.index.pred_infos.(id).pred with
      | Predicate.Col_cmp { op = Predicate.Eq; _ } -> true
      | Predicate.Col_cmp _ -> false
      | Predicate.Cmp _ -> true)
    t.index.join_pred_ids

let compile_kernel t =
  match kernel_kind (estimator t) with
  | None -> None
  | Some _ when not (kernel_lowerable t) -> None
  | Some (combine, cap) ->
    let index = t.index in
    let n = Array.length index.table_names in
    let jids = index.join_pred_ids in
    let n_preds = Array.length jids in
    (* Predicate id -> dense position in [jids] (ascending conjunction
       order, the kernel's canonical predicate order). *)
    let jpos = Array.make (Array.length index.pred_infos) (-1) in
    Array.iteri (fun j id -> jpos.(id) <- j) jids;
    let rows = Array.init n (fun bit -> index.profiles.(bit).rows) in
    let pred_sel = Array.map (fun id -> join_selectivity t id) jids in
    (* Intern class roots in first-occurrence order of the ascending
       predicate scan — the order [Incremental.class_groups] discovers
       them in. Lookup is [Cref.equal]-keyed, never polymorphic. *)
    let roots = ref [] in
    let n_classes = ref 0 in
    let class_of root =
      match List.find_opt (fun (r, _) -> Cref.equal r root) !roots with
      | Some (_, c) -> c
      | None ->
        let c = !n_classes in
        roots := (root, c) :: !roots;
        incr n_classes;
        c
    in
    let pred_class =
      Array.map (fun id -> class_of index.pred_infos.(id).root) jids
    in
    let pred_mask_a = Array.make n_preds 0 in
    let pred_mask_b = Array.make n_preds 0 in
    Array.iteri
      (fun j id ->
        match index.pred_infos.(id).endpoints with
        | Some (a, b) ->
          pred_mask_a.(j) <- 1 lsl a;
          pred_mask_b.(j) <- 1 lsl b
        | None -> assert false (* [join_pred_ids] only holds joins *))
      jids;
    (* CSR re-layout of [join_preds_by_table], same per-table order. *)
    let adj_off = Array.make (n + 1) 0 in
    for bit = 0 to n - 1 do
      adj_off.(bit + 1) <-
        adj_off.(bit) + Array.length index.join_preds_by_table.(bit)
    done;
    let adj_pred = Array.make adj_off.(n) 0 in
    let adj_other_mask = Array.make adj_off.(n) 0 in
    for bit = 0 to n - 1 do
      Array.iteri
        (fun i id ->
          let slot = adj_off.(bit) + i in
          adj_pred.(slot) <- jpos.(id);
          match index.pred_infos.(id).endpoints with
          | Some (a, b) ->
            let other = if a = bit then b else a in
            adj_other_mask.(slot) <- 1 lsl other
          | None -> assert false)
        index.join_preds_by_table.(bit)
    done;
    Some
      (Kernel.make ~rows ~adj_off ~adj_pred ~adj_other_mask ~pred_sel
         ~pred_class ~pred_mask_a ~pred_mask_b ~n_classes:!n_classes ~combine
         ~cap ~guard:t.guard)

let kernel t =
  match t.kernel with
  | Kernel_ready k -> Some k
  | Kernel_disabled | Kernel_unsupported -> None
  | Kernel_unbuilt -> begin
    match compile_kernel t with
    | Some k ->
      t.kernel <- Kernel_ready k;
      Some k
    | None ->
      (* Remembered, so a custom estimator costs one registry probe, not a
         recompile attempt per step. *)
      t.kernel <- Kernel_unsupported;
      None
  end

let kernel_steps t =
  match t.kernel with Kernel_ready k -> Kernel.steps k | _ -> 0

(* Called by [Incremental] on interpreted steps: counts only the steps
   that *wanted* the kernel but could not have it (non-Eq join predicates
   or a custom estimator), so the counter reads as "fallback", not
   "kernel was switched off". *)
let note_kernel_fallback t =
  match t.kernel with
  | Kernel_unsupported -> t.stats.kernel_fallbacks <- t.stats.kernel_fallbacks + 1
  | Kernel_unbuilt | Kernel_disabled | Kernel_ready _ -> ()

let kernel_fallback_steps t = t.stats.kernel_fallbacks
