(** Estimation profiles: per-table effective statistics (steps 1–5 of
    Algorithm ELS).

    Building a profile performs, in order:

    + duplicate-predicate elimination and equivalence-class construction
      (step 1);
    + transitive closure when the configuration asks for it (step 2);
    + local-predicate selectivities, combining multiple predicates per
      column (step 3);
    + effective table cardinality [‖R‖′] and effective column cardinalities
      [d′] — the predicated column directly ([d×s], or 1 for an equality),
      every other column through the urn model (step 4, Section 5);
    + the single-table j-equivalent column treatment when configured
      (step 5, Section 6): for each table whose columns [c₁…cₙ] (n ≥ 2)
      share an equivalence class, [‖R‖′] is divided by the product of all
      but the smallest [d′] and the class is represented by a single
      effective join cardinality [⌈d₍₁₎·(1−(1−1/d₍₁₎)^‖R‖′)⌉]. Without that
      configuration, each intra-table column equality contributes the
      classic [1/max(d₁,d₂)] factor to [‖R‖′] instead.

    The resulting numbers are what step 6 (see {!Incremental}) consumes. *)

type column_profile = {
  cref : Query.Cref.t;
  base_distinct : float;  (** d: catalog column cardinality *)
  local_distinct : float;
      (** d′ after local constant predicates and urn thinning *)
  join_distinct : float;
      (** cardinality to use in join selectivities; differs from
          [local_distinct] only under the Section 6 treatment *)
}

type table_profile = {
  name : string;  (** the query alias *)
  source : string;  (** the catalog table behind the alias *)
  base_rows : float;  (** ‖R‖ *)
  rows : float;  (** ‖R‖′: effective cardinality after local predicates *)
  local_selectivity : float;  (** rows / base_rows (0 when base is 0) *)
  columns : column_profile Query.Cref.Map.t;
}

type t = {
  config : Config.t;
  predicates : Query.Predicate.t list;
      (** the working conjunction: closed iff [config.closure] *)
  classes : Eqclass.t;
  tables : (string * table_profile) list;  (** in FROM order *)
}

val build : Config.t -> Catalog.Db.t -> Query.t -> t
(** @raise Not_found when a query table is missing from the catalog. *)

val table : t -> string -> table_profile
(** @raise Not_found for tables outside the query. *)

val join_card : t -> Query.Cref.t -> float
(** Column cardinality entering join-selectivity computation:
    [join_distinct] under a local-aware configuration, [base_distinct]
    under the standard algorithm. *)
