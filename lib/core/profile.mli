(** Estimation profiles: per-table effective statistics (steps 1–5 of
    Algorithm ELS).

    Building a profile performs, in order:

    + duplicate-predicate elimination and equivalence-class construction
      (step 1);
    + transitive closure when the configuration asks for it (step 2);
    + local-predicate selectivities, combining multiple predicates per
      column (step 3);
    + effective table cardinality [‖R‖′] and effective column cardinalities
      [d′] — the predicated column directly ([d×s], or 1 for an equality),
      every other column through the urn model (step 4, Section 5);
    + the single-table j-equivalent column treatment when configured
      (step 5, Section 6): for each table whose columns [c₁…cₙ] (n ≥ 2)
      share an equivalence class, [‖R‖′] is divided by the product of all
      but the smallest [d′] and the class is represented by a single
      effective join cardinality [⌈d₍₁₎·(1−(1−1/d₍₁₎)^‖R‖′)⌉]. Without that
      configuration, each intra-table column equality contributes the
      classic [1/max(d₁,d₂)] factor to [‖R‖′] instead.

    On top of those numbers the profile carries the {e hot-path indexes}
    step 6 (see {!Incremental}) probes on every enumerator step: a
    canonical table → bit mapping, per-table join-predicate adjacency
    lists, per-predicate equivalence-class roots resolved once at build
    time, and memoization caches for join and per-class selectivities with
    {!Exec.Counters}-style hit/miss observability. *)

type column_profile = {
  cref : Query.Cref.t;
  base_distinct : float;  (** d: catalog column cardinality *)
  local_distinct : float;
      (** d′ after local constant predicates and urn thinning *)
  join_distinct : float;
      (** cardinality to use in join selectivities; differs from
          [local_distinct] only under the Section 6 treatment *)
  d_source : string;
      (** which statistic shaped [local_distinct] — the derivation card's
          d′ provenance, e.g. ["equality(mcv)"], ["range(histogram)"],
          ["urn"], ["single-table(urn)"]. Observation only: never read by
          the estimator. *)
  col_stats : Stats.Col_stats.t;
      (** the catalog statistics behind the numbers above (trivial when
          the catalog had none) — the CDF source for comparison-join
          selectivities *)
}

type table_profile = {
  name : string;  (** the query alias *)
  source : string;  (** the catalog table behind the alias *)
  base_rows : float;  (** ‖R‖ *)
  rows : float;  (** ‖R‖′: effective cardinality after local predicates *)
  local_selectivity : float;  (** rows / base_rows (0 when base is 0) *)
  columns : column_profile Query.Cref.Map.t;
}

type pred_info = {
  pred : Query.Predicate.t;
  id : int;  (** position in {!field-predicates}; the memo-cache key *)
  root : Query.Cref.t;
      (** equivalence-class root of the predicate's columns, resolved once
          at profile build *)
  endpoints : (int * int) option;
      (** the two table bits of a join predicate; [None] for locals *)
}

type cache_stats = {
  mutable sel_hits : int;
  mutable sel_misses : int;
  mutable group_hits : int;
  mutable group_misses : int;
  mutable eligible_probes : int;
      (** join predicates examined through the per-table index *)
  mutable scans_avoided : int;
      (** predicates an index probe skipped relative to a full scan of the
          working conjunction *)
  mutable kernel_fallbacks : int;
      (** estimation steps that wanted the compiled kernel but ran
          interpreted because the profile has no lowering (comparison
          join predicates, or a custom estimator) *)
}

type index = {
  table_names : string array;  (** bit → normalized table name *)
  table_bits : (string, int) Hashtbl.t;  (** normalized name → bit *)
  profiles : table_profile array;  (** bit → table profile *)
  pred_infos : pred_info array;  (** predicate id → resolved info *)
  join_pred_ids : int array;  (** every join predicate id, ascending *)
  join_preds_by_table : int array array;
      (** bit → ids of the join predicates with that table as an endpoint,
          ascending (= working-conjunction order) *)
  local_preds_by_table : Query.Predicate.t list array;
      (** bit → single-table local predicates, in conjunction order *)
}

(** Lifecycle of a profile's compiled estimation kernel (see {!Kernel}):
    compiled lazily on first use, opted out at {!build}, or unavailable
    because the estimator has no monomorphic lowering. *)
type kernel_slot =
  | Kernel_unbuilt  (** not compiled yet; {!kernel} will try *)
  | Kernel_disabled  (** [build ~kernel:false] — interpreted path only *)
  | Kernel_unsupported
      (** no lowering exists: the configured estimator is not one of the
          four built-in rules (its [combine] closure is arbitrary OCaml),
          or the working conjunction carries comparison join predicates
          (the kernel's step algebra is the equality rule); interpreted
          steps on such a profile bump [cache_stats.kernel_fallbacks] *)
  | Kernel_ready of Kernel.t

type t = {
  config : Config.t;
  predicates : Query.Predicate.t list;
      (** the working conjunction: closed iff [config.closure] *)
  classes : Eqclass.t;
  tables : (string * table_profile) list;  (** in FROM order *)
  index : index;
  memoize : bool;  (** consult the caches below (on by default) *)
  sel_cache : float array;
      (** predicate id → memoized join selectivity; NaN marks an unfilled
          slot (real selectivities live in [0, 1]) *)
  group_cache : (string * int list, float) Hashtbl.t;
      (** (estimator id, class-group predicate ids) → combined
          selectivity; keyed by estimator so {!with_estimator} can share
          the table across swaps *)
  stats : cache_stats;
  guard : Guard.t;
      (** invariant guard for every number this profile produces; its mode
          is [config.strictness] *)
  validation : Catalog.Validate.issue list;
      (** catalog-statistics issues found (and, under [Repair], fixed)
          while building the profile; empty under [Strict] (the first
          issue raises) *)
  annotations : string list;
      (** staleness notes inherited from the catalog epoch this profile
          was prepared against; stamped onto every derivation sink
          attached via {!set_derivation} *)
  mutable deriv : Obs.Derivation.t option;
      (** derivation sink; when set, {!Incremental} records each
          estimation step into it (see {!set_derivation}) *)
  mutable kernel : kernel_slot;
      (** compiled estimation kernel; access through {!kernel}, never the
          field (the accessor owns lazy compilation) *)
}

val normalize : string -> string
(** Canonical (lowercase) table-name normalization. Every name-keyed
    lookup in this module and {!Incremental} goes through it, so
    mixed-case callers cannot silently miss filters or predicates. *)

val build :
  ?memoize:bool ->
  ?kernel:bool ->
  ?trace:Obs.Trace.t ->
  ?annotations:string list ->
  Config.t ->
  Catalog.Db.t ->
  Query.t ->
  t
(** [memoize] defaults to [true]; pass [false] to recompute every
    selectivity (the caches are bit-transparent — see the property tests).
    [kernel] defaults to [true]; pass [false] to pin the profile to the
    interpreted estimation path (the kernel is bit-transparent too — the
    differential baselines and F12 compare the two).
    Catalog statistics of every referenced table are audited under
    [config.strictness] before use (see {!Catalog.Validate}).
    [trace] records a ["profile"] span with a ["validate"] child covering
    the catalog audit; tracing never changes any computed number.
    [annotations] (default empty) are staleness notes to stamp onto
    derivation sinks; they never influence a computed number either.
    @raise Invalid_argument when a query table is missing from the catalog
    or on more than 62 tables (bitset index limit).
    @raise Els_error.Error under [Strict] strictness when a referenced
    table carries corrupt statistics. *)

val build_result :
  ?memoize:bool ->
  ?kernel:bool ->
  ?trace:Obs.Trace.t ->
  ?annotations:string list ->
  Config.t ->
  Catalog.Db.t ->
  Query.t ->
  (t, Els_error.t) result
(** [build] with failures reified: corrupt statistics under [Strict]
    become [Error (Corrupt_stats _)], unknown tables and structural limits
    become [Error (Invalid_query _)]. Never raises. *)

val table : t -> string -> table_profile
(** @raise Not_found for tables outside the query. *)

val table_count : t -> int

val table_bit : t -> string -> int
(** Bit of the (normalized) table in the canonical table → bit mapping.
    @raise Not_found for tables outside the query. *)

val table_name : t -> int -> string
val table_at : t -> int -> table_profile

val pred_count : t -> int
val pred : t -> int -> pred_info

val scan_filters : t -> string -> Query.Predicate.t list
(** The single-table local predicates of the working conjunction pushed
    into the scan of the given table, via the per-table index.
    @raise Not_found for tables outside the query. *)

val join_card : t -> Query.Cref.t -> float
(** Column cardinality entering join-selectivity computation:
    [join_distinct] under a local-aware configuration, [base_distinct]
    under the standard algorithm. *)

val column_stats : t -> Query.Cref.t -> Stats.Col_stats.t
(** The catalog statistics of a predicate column (trivial statistics for
    columns the query never predicates on) — the CDF inputs of
    comparison-join selectivities. *)

val selectivity_of_cards : float -> float -> float
(** [min 1 (1 / max d1 d2)]; 0 when either side is 0 (a contradicted
    column joins nothing). Equation 2 of the paper. *)

val comparison_selectivity :
  t -> left:Query.Cref.t -> op:Query.Predicate.comparison ->
  right:Query.Cref.t -> float
(** Raw (unguarded, uncached) selectivity of one column comparison:
    [Eq] is the paper's [1/max(d1, d2)] over effective cardinalities;
    inequality and band operators go through the histogram-CDF
    convolution of {!Stats.Selectivity_est} — the rule-2d
    generalization. *)

val join_selectivity : t -> int -> float
(** Selectivity of the join predicate with the given id, memoized in
    [sel_cache] when [memoize] is set.
    @raise Invalid_argument for a local predicate id. *)

val class_selectivity : t -> int list -> float
(** Estimator-combined selectivity of one equivalence-class group of
    eligible join predicates (given by id, in conjunction order), memoized
    in [group_cache] (keyed by estimator id) when [memoize] is set. *)

val estimator : t -> Estimator.t
(** The configuration's estimator. *)

val with_estimator : Estimator.t -> t -> t
(** Swap the estimator without rebuilding: the effective statistics,
    indexes and per-predicate selectivity cache are estimator-independent
    and shared; only [group_cache] entries (keyed by estimator id) differ.
    Note the pipeline toggles (closure, local-awareness, single-table) are
    baked into the built statistics and stay as configured. *)

val cache_stats : t -> cache_stats
val reset_cache_stats : t -> unit
val pp_stats : Format.formatter -> cache_stats -> unit

val guard : t -> Guard.t
val guard_stats : t -> Guard.stats
(** Invariant violations / repairs / fallbacks observed so far by this
    profile's guard (catalog repairs count here too). *)

val validation_issues : t -> Catalog.Validate.issue list
(** Catalog issues found while building, in table order. *)

val kernel : t -> Kernel.t option
(** The profile's compiled estimation kernel, compiling it on first call:
    [None] when compilation is disabled ([build ~kernel:false]) or the
    estimator has no monomorphic lowering (custom registry entries).
    {!Incremental} dispatches to it whenever no derivation sink is
    attached; every number it produces is bit-identical to the
    interpreted path. *)

val kernel_steps : t -> int
(** Estimation steps executed through the compiled kernel so far (0 when
    none is compiled) — published by {!Harness.Obs_report} next to the
    cache counters, which the kernel path does not touch. *)

val note_kernel_fallback : t -> unit
(** Called by {!Incremental} when an estimation step runs interpreted:
    bumps [cache_stats.kernel_fallbacks] only when the profile {e has no}
    kernel lowering (comparison join predicates or a custom estimator) —
    derivation-recording passes and explicit [~kernel:false] opt-outs are
    not fallbacks. *)

val kernel_fallback_steps : t -> int
(** Value of the fallback counter — published by {!Harness.Obs_report} as
    ["profile.kernel.fallback_steps"]. *)

val set_derivation : t -> Obs.Derivation.t option -> unit
(** Attach (or detach, with [None]) a derivation sink. While attached,
    every {!Incremental} estimation step appends a
    {!Obs.Derivation.step} describing the classes, rules, input
    selectivities and d′ provenance behind its output. Attach only around
    a single estimation pass — during DP enumeration the same profile
    serves thousands of candidate steps. Observation only: recording
    never changes any computed number. *)

val derivation : t -> Obs.Derivation.t option
