let of_cards = Profile.selectivity_of_cards

let join profile p =
  match p with
  | Query.Predicate.Col_cmp { left; op; right }
    when not (Query.Cref.same_table left right) ->
    Profile.comparison_selectivity profile ~left ~op ~right
  | Query.Predicate.Col_cmp _ | Query.Predicate.Cmp _ ->
    invalid_arg
      (Printf.sprintf "Selectivity.join: %s is not a join predicate"
         (Query.Predicate.to_string p))

let group_by_class profile predicates =
  let classes = profile.Profile.classes in
  let root p =
    match Query.Predicate.columns p with
    | col :: _ -> Eqclass.find classes col
    | [] -> assert false
  in
  (* [Cref.equal]-keyed (with the [==] fast path for the physically shared
     roots [Eqclass.find] returns), matching membership tests everywhere
     else — a polymorphic [List.assoc_opt] would silently split a class in
     two (squaring its selectivity) if [Cref.t] ever grows a field where
     structural (=) diverges from [Cref.equal]. *)
  (* Only equality predicates share a class-derived selectivity (the
     estimator rules reconcile multiple 1/max-d estimates of one class);
     each comparison predicate is an independent constraint and forms its
     own singleton group, contributing its own factor to the product. *)
  let groups = ref [] in
  List.iter
    (fun p ->
      match p with
      | Query.Predicate.Col_cmp { op = Query.Predicate.Eq; _ } -> begin
        let r = root p in
        match
          List.find_opt
            (fun (r', _) ->
              match r' with
              | Some r' -> r' == r || Query.Cref.equal r' r
              | None -> false)
            !groups
        with
        | Some (_, members) -> members := p :: !members
        | None -> groups := (Some r, ref [ p ]) :: !groups
      end
      | Query.Predicate.Col_cmp _ | Query.Predicate.Cmp _ ->
        groups := (None, ref [ p ]) :: !groups)
    predicates;
  List.rev_map (fun (_, members) -> List.rev !members) !groups
