let of_cards = Profile.selectivity_of_cards

let join profile p =
  match p with
  | Query.Predicate.Col_eq { left; right }
    when not (Query.Cref.same_table left right) ->
    of_cards (Profile.join_card profile left) (Profile.join_card profile right)
  | Query.Predicate.Col_eq _ | Query.Predicate.Cmp _ ->
    invalid_arg
      (Printf.sprintf "Selectivity.join: %s is not a join predicate"
         (Query.Predicate.to_string p))

let group_by_class profile predicates =
  let classes = profile.Profile.classes in
  let root p =
    match Query.Predicate.columns p with
    | col :: _ -> Eqclass.find classes col
    | [] -> assert false
  in
  (* [Cref.equal]-keyed (with the [==] fast path for the physically shared
     roots [Eqclass.find] returns), matching membership tests everywhere
     else — a polymorphic [List.assoc_opt] would silently split a class in
     two (squaring its selectivity) if [Cref.t] ever grows a field where
     structural (=) diverges from [Cref.equal]. *)
  let groups = ref [] in
  List.iter
    (fun p ->
      let r = root p in
      match
        List.find_opt
          (fun (r', _) -> r' == r || Query.Cref.equal r' r)
          !groups
      with
      | Some (_, members) -> members := p :: !members
      | None -> groups := (r, ref [ p ]) :: !groups)
    predicates;
  List.rev_map (fun (_, members) -> List.rev !members) !groups
