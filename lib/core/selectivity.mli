(** Join-predicate selectivities (Equation 2 of the paper).

    For an equality join predicate [J : (R₁.x₁ = R₂.x₂)],
    [S_J = 1 / max(d₁, d₂)], where the cardinalities come from the
    estimation profile — effective ([d′]) under a local-aware
    configuration, base otherwise. Comparison join predicates
    ([R₁.x₁ < R₂.x₂], band joins) are estimated by the histogram-CDF
    convolution of {!Stats.Selectivity_est} instead. *)

val of_cards : float -> float -> float
(** [of_cards d1 d2 = min 1 (1 / max d1 d2)]; 0 when either side is 0
    (a contradicted column joins nothing). *)

val join : Profile.t -> Query.Predicate.t -> float
(** Selectivity of a join predicate under the profile's configuration.
    @raise Invalid_argument when the predicate is not a join predicate. *)

val group_by_class :
  Profile.t -> Query.Predicate.t list -> Query.Predicate.t list list
(** Partition join predicates by the equivalence class of their columns —
    the grouping Rules M/SS/LS operate on. Only equality predicates share
    a class-derived selectivity; each comparison (inequality/band)
    predicate forms its own singleton group and contributes an
    independent factor. Groups are ordered by their first predicate. *)
