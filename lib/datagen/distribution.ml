type t =
  | Exact_uniform
  | Random_uniform
  | Zipf of float

let zipf_weights ~theta ~n =
  if n <= 0 then invalid_arg "Distribution.zipf_weights: n <= 0";
  let w = Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0. w in
  Array.map (fun x -> x /. total) w

let generate dist rng ~rows ~distinct =
  if rows < 0 then invalid_arg "Distribution.generate: rows < 0";
  if distinct <= 0 then invalid_arg "Distribution.generate: distinct <= 0";
  match dist with
  | Exact_uniform ->
    (* Value (i mod d) + 1 at row i, then shuffled so physical order does
       not correlate with value. *)
    let out = Array.init rows (fun i -> (i mod distinct) + 1) in
    Prng.shuffle rng out;
    out
  | Random_uniform -> Array.init rows (fun _ -> Prng.int_in rng 1 distinct)
  | Zipf theta ->
    let weights = zipf_weights ~theta ~n:distinct in
    (* Cumulative table + binary search per draw. *)
    let cdf = Array.make distinct 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        acc := !acc +. w;
        cdf.(i) <- !acc)
      weights;
    cdf.(distinct - 1) <- 1.;
    let draw () =
      let u = Prng.float rng in
      let lo = ref 0 and hi = ref (distinct - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cdf.(mid) < u then lo := mid + 1 else hi := mid
      done;
      !lo + 1
    in
    Array.init rows (fun _ -> draw ())
