(** Value distributions for synthetic columns.

    The paper's assumptions make three distributions interesting:

    - {!exact_uniform}: every one of [d] distinct values appears the same
      number of times (up to remainder). This satisfies the paper's
      uniformity assumption {e exactly}, so Equation 3 predicts true join
      sizes with no model error — the setting the correctness tests use.
    - {!random_uniform}: i.i.d. uniform draws — uniform only in
      expectation.
    - {!zipf}: the skewed distribution the paper's future-work section
      points to (Zipf 1949), with parameter θ (θ = 0 degenerates to
      uniform). Sampling is by inverted CDF over [d] ranks. *)

type t =
  | Exact_uniform
  | Random_uniform
  | Zipf of float  (** skew parameter θ ≥ 0 *)

val generate : t -> Prng.t -> rows:int -> distinct:int -> int array
(** [generate dist rng ~rows ~distinct] draws [rows] values from the
    domain [1..distinct] (the containment assumption: smaller domains are
    prefixes of larger ones).
    @raise Invalid_argument when [rows < 0] or [distinct <= 0]. *)

val zipf_weights : theta:float -> n:int -> float array
(** Normalized Zipf probabilities for ranks 1..n: [p(i) ∝ 1/i^θ]. *)
