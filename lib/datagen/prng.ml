include Rel.Prng
