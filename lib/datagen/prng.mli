(** Alias of {!Rel.Prng}, kept here so workload-generation code reads
    naturally; the generator itself lives in [rel] because the optimizer's
    randomized enumerator needs it too. *)

include module type of struct
  include Rel.Prng
end
