let scale_default = 1

let base_cards = [ ("s", 1000); ("m", 10000); ("b", 50000); ("g", 100000) ]

let cardinalities ~scale =
  List.map (fun (t, n) -> (t, n / scale)) base_cards

let build ?(scale = scale_default) ~seed () =
  if scale < 1 then invalid_arg "Section8.build: scale < 1";
  let rng = Prng.create seed in
  let db = Catalog.Db.create () in
  List.iter
    (fun (table, rows) ->
      ignore
        (Tablegen.register (Prng.split rng) db ~table ~rows
           [ Tablegen.key_column table ~rows ]))
    (cardinalities ~scale);
  db

let query_scaled ~scale =
  let s = Query.Cref.v "s" "s"
  and m = Query.Cref.v "m" "m"
  and b = Query.Cref.v "b" "b"
  and g = Query.Cref.v "g" "g" in
  Query.make ~projection:Query.Count_star ~tables:[ "s"; "m"; "b"; "g" ]
    [
      Query.Predicate.col_eq s m;
      Query.Predicate.col_eq m b;
      Query.Predicate.col_eq b g;
      Query.Predicate.cmp s Rel.Cmp.Lt (Rel.Value.Int (100 / scale));
    ]

let query () = query_scaled ~scale:1
