(** The Section 8 experiment database.

    Four stored tables — S (small), M (medium), B (big), G (giant) — each
    with a single key join column named after the table:

    {v ‖S‖=1000  ‖M‖=10000  ‖B‖=50000  ‖G‖=100000
       d_s=1000  d_m=10000  d_b=50000  d_g=100000 v}

    Each column holds a permutation of [1..‖R‖], so the containment
    assumption holds exactly and the true size of any subset join that
    includes the [s < 100] restriction is exactly 99 (the paper rounds the
    "correct answer" to 100; values below 100 in a 1-based key domain
    number 99). *)

val scale_default : int
(** 1 = the paper's cardinalities. *)

val build : ?scale:int -> seed:int -> unit -> Catalog.Db.t
(** Stored + analyzed catalog. [scale] divides every cardinality (for quick
    tests: [scale = 10] gives ‖S‖=100 … ‖G‖=10000). *)

val query : unit -> Query.t
(** [SELECT COUNT( ) FROM s,m,b,g WHERE s=m AND m=b AND b=g AND s<100] —
    with the constant scaled consistently when [scale ≠ 1] via
    {!query_scaled}. *)

val query_scaled : scale:int -> Query.t

val cardinalities : scale:int -> (string * int) list
