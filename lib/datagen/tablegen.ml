type column_spec = {
  name : string;
  distinct : int;
  distribution : Distribution.t;
}

let column ?(distribution = Distribution.Exact_uniform) name ~distinct =
  { name; distinct; distribution }

let key_column name ~rows =
  { name; distinct = rows; distribution = Distribution.Exact_uniform }

let relation rng ~table ~rows specs =
  let schema =
    Rel.Schema.make
      (List.map
         (fun spec ->
           Rel.Schema.column ~table ~name:spec.name Rel.Value.Ty_int)
         specs)
  in
  let columns =
    List.map
      (fun spec ->
        Distribution.generate spec.distribution (Prng.split rng) ~rows
          ~distinct:spec.distinct)
      specs
  in
  let out = Rel.Relation.create schema in
  for i = 0 to rows - 1 do
    Rel.Relation.insert out
      (Array.of_list
         (List.map (fun col -> Rel.Value.Int col.(i)) columns))
  done;
  out

let register ?histogram ?mcv rng db ~table ~rows specs =
  let rel = relation rng ~table ~rows specs in
  Catalog.Analyze.register ?histogram ?mcv db ~name:table rel
