(** Building stored tables from column specifications. *)

type column_spec = {
  name : string;
  distinct : int;  (** domain is [1..distinct] *)
  distribution : Distribution.t;
}

val column : ?distribution:Distribution.t -> string -> distinct:int -> column_spec
(** [distribution] defaults to {!Distribution.Exact_uniform}. *)

val key_column : string -> rows:int -> column_spec
(** A key: [distinct = rows], exact uniform (each value once). *)

val relation :
  Prng.t -> table:string -> rows:int -> column_spec list -> Rel.Relation.t
(** Integer-columned relation with independently generated columns (the
    paper's independence assumption). *)

val register :
  ?histogram:Stats.Histogram.kind ->
  ?mcv:int ->
  Prng.t ->
  Catalog.Db.t ->
  table:string ->
  rows:int ->
  column_spec list ->
  Catalog.Table.t
(** Generate, analyze (exact statistics, optional histograms and MCV
    sketches) and add to the catalog. *)
