type spec = {
  db : Catalog.Db.t;
  query : Query.t;
  true_size : int option;
}

let chain ?(rows_range = (200, 2000)) ?(distinct_range = (5, 200))
    ?(distribution = Distribution.Exact_uniform) ?(table_prefix = "t") ~seed
    ~n_tables () =
  if n_tables < 2 then invalid_arg "Workload.chain: need at least 2 tables";
  let rng = Prng.create seed in
  let db = Catalog.Db.create () in
  let names =
    List.init n_tables (fun i -> Printf.sprintf "%s%d" table_prefix (i + 1))
  in
  List.iter
    (fun table ->
      let rows = Prng.int_in rng (fst rows_range) (snd rows_range) in
      let distinct =
        min rows (Prng.int_in rng (fst distinct_range) (snd distinct_range))
      in
      ignore
        (Tablegen.register (Prng.split rng) db ~table ~rows
           [ Tablegen.column ~distribution "a" ~distinct ]))
    names;
  let rec links = function
    | a :: (b :: _ as rest) ->
      Query.Predicate.col_eq (Query.Cref.v a "a") (Query.Cref.v b "a")
      :: links rest
    | [ _ ] | [] -> []
  in
  let query =
    Query.make ~projection:Query.Count_star ~tables:names (links names)
  in
  { db; query; true_size = None }

let comparison ?(rows_range = (200, 2000)) ?(distinct_range = (5, 200))
    ?(op = Query.Predicate.Lt) ?(table_prefix = "c") ~seed ~n_tables () =
  if n_tables < 2 then
    invalid_arg "Workload.comparison: need at least 2 tables";
  let rng = Prng.create seed in
  let db = Catalog.Db.create () in
  let names =
    List.init n_tables (fun i -> Printf.sprintf "%s%d" table_prefix (i + 1))
  in
  List.iter
    (fun table ->
      let rows = Prng.int_in rng (fst rows_range) (snd rows_range) in
      let distinct =
        min rows (Prng.int_in rng (fst distinct_range) (snd distinct_range))
      in
      ignore
        (Tablegen.register (Prng.split rng) db ~table ~rows
           [ Tablegen.column "a" ~distinct ]))
    names;
  (* Every link but the last is an equality; the last is the requested
     comparison. Join-column domains all start at 1, so the comparison
     always has overlap and the executed truth stays positive. *)
  let rec links = function
    | [ a; b ] ->
      [ Query.Predicate.col_cmp (Query.Cref.v a "a") op (Query.Cref.v b "a") ]
    | a :: (b :: _ as rest) ->
      Query.Predicate.col_eq (Query.Cref.v a "a") (Query.Cref.v b "a")
      :: links rest
    | [ _ ] | [] -> []
  in
  let query =
    Query.make ~projection:Query.Count_star ~tables:names (links names)
  in
  { db; query; true_size = None }

let star ?(fact_rows = 5000) ?(dim_rows_range = (100, 1000))
    ?(distinct_range = (5, 100)) ?(distribution = Distribution.Exact_uniform)
    ~seed ~n_dims () =
  if n_dims < 1 then invalid_arg "Workload.star: need at least 1 dimension";
  let rng = Prng.create seed in
  let db = Catalog.Db.create () in
  let dim_distincts =
    List.init n_dims (fun _ ->
        Prng.int_in rng (fst distinct_range) (snd distinct_range))
  in
  (* Fact table: one join column per dimension, domain matching the
     dimension's distinct count (containment). [distribution] shapes the
     fact keys only — a Zipf fact against uniform dimensions is the
     skewed-star setting of experiment F16. *)
  ignore
    (Tablegen.register (Prng.split rng) db ~table:"fact" ~rows:fact_rows
       (List.mapi
          (fun i distinct ->
            Tablegen.column ~distribution
              (Printf.sprintf "k%d" (i + 1))
              ~distinct)
          dim_distincts));
  List.iteri
    (fun i distinct ->
      let rows = Prng.int_in rng (fst dim_rows_range) (snd dim_rows_range) in
      let distinct = min rows distinct in
      ignore
        (Tablegen.register (Prng.split rng) db
           ~table:(Printf.sprintf "d%d" (i + 1))
           ~rows
           [ Tablegen.column "k" ~distinct ]))
    dim_distincts;
  let tables =
    "fact" :: List.init n_dims (fun i -> Printf.sprintf "d%d" (i + 1))
  in
  let preds =
    List.init n_dims (fun i ->
        Query.Predicate.col_eq
          (Query.Cref.v "fact" (Printf.sprintf "k%d" (i + 1)))
          (Query.Cref.v (Printf.sprintf "d%d" (i + 1)) "k"))
  in
  let query = Query.make ~projection:Query.Count_star ~tables preds in
  { db; query; true_size = None }
