(** Random join workloads for the supplementary experiments.

    Shapes:
    - {e chains} [T1.a = T2.a = … = Tn.a]: after transitive closure all
      join columns fall into one equivalence class — the single-class
      setting of the paper's analysis and of the error-propagation study it
      cites (Ioannidis & Christodoulakis);
    - {e stars}: a fact table joined to n dimension tables on distinct
      columns — n independent equivalence classes. *)

type spec = {
  db : Catalog.Db.t;  (** stored, analyzed tables *)
  query : Query.t;
  true_size : int option;
      (** filled in lazily by experiments that execute the query *)
}

val chain :
  ?rows_range:int * int ->
  ?distinct_range:int * int ->
  ?distribution:Distribution.t ->
  ?table_prefix:string ->
  seed:int ->
  n_tables:int ->
  unit ->
  spec
(** [chain ~seed ~n_tables ()] builds [n_tables] stored tables [t1..tn],
    each with one join column [a] whose distinct count is drawn from
    [distinct_range] (clamped to the row count, which is drawn from
    [rows_range]), linked by a chain of equality predicates. Defaults:
    rows in [[200, 2000]], distinct in [[5, 200]], exact-uniform data. *)

val comparison :
  ?rows_range:int * int ->
  ?distinct_range:int * int ->
  ?op:Query.Predicate.comparison ->
  ?table_prefix:string ->
  seed:int ->
  n_tables:int ->
  unit ->
  spec
(** Like {!chain}, but the final link is the given comparison instead of
    an equality ([c1.a = c2.a = … AND c(n-1).a op cn.a]) — the
    inequality/band-join setting of experiment F14. Join columns are
    integers [1..distinct], so any two tables' domains overlap and the
    executed result is non-empty. Default op: [Lt]. *)

val star :
  ?fact_rows:int ->
  ?dim_rows_range:int * int ->
  ?distinct_range:int * int ->
  ?distribution:Distribution.t ->
  seed:int ->
  n_dims:int ->
  unit ->
  spec
(** A fact table [fact] with join columns [k1..kn] joined to dimensions
    [d1..dn] on their [k] columns. [distribution] shapes the fact table's
    key columns (dimensions stay exact-uniform) — pass a Zipf to build the
    skewed stars that separate the degree-statistics estimators from the
    uniform-model rules. Default: exact-uniform. *)
