(** Random join workloads for the supplementary experiments.

    Shapes:
    - {e chains} [T1.a = T2.a = … = Tn.a]: after transitive closure all
      join columns fall into one equivalence class — the single-class
      setting of the paper's analysis and of the error-propagation study it
      cites (Ioannidis & Christodoulakis);
    - {e stars}: a fact table joined to n dimension tables on distinct
      columns — n independent equivalence classes. *)

type spec = {
  db : Catalog.Db.t;  (** stored, analyzed tables *)
  query : Query.t;
  true_size : int option;
      (** filled in lazily by experiments that execute the query *)
}

val chain :
  ?rows_range:int * int ->
  ?distinct_range:int * int ->
  ?distribution:Distribution.t ->
  ?table_prefix:string ->
  seed:int ->
  n_tables:int ->
  unit ->
  spec
(** [chain ~seed ~n_tables ()] builds [n_tables] stored tables [t1..tn],
    each with one join column [a] whose distinct count is drawn from
    [distinct_range] (clamped to the row count, which is drawn from
    [rows_range]), linked by a chain of equality predicates. Defaults:
    rows in [[200, 2000]], distinct in [[5, 200]], exact-uniform data. *)

val star :
  ?fact_rows:int ->
  ?dim_rows_range:int * int ->
  ?distinct_range:int * int ->
  seed:int ->
  n_dims:int ->
  unit ->
  spec
(** A fact table [fact] with join columns [k1..kn] joined to dimensions
    [d1..dn] on their [k] columns. *)
