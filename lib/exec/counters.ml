type t = {
  mutable tuples_read : int;
  mutable comparisons : int;
  mutable tuples_output : int;
}

let create () = { tuples_read = 0; comparisons = 0; tuples_output = 0 }

let reset t =
  t.tuples_read <- 0;
  t.comparisons <- 0;
  t.tuples_output <- 0

let read t n = t.tuples_read <- t.tuples_read + n
let compared t n = t.comparisons <- t.comparisons + n
let output t n = t.tuples_output <- t.tuples_output + n

let total_work t = t.tuples_read + t.comparisons + t.tuples_output

let pp ppf t =
  Format.fprintf ppf "read=%d cmp=%d out=%d (work=%d)" t.tuples_read
    t.comparisons t.tuples_output (total_work t)
