(** Work counters.

    The paper reports elapsed seconds on 1994 hardware; we report wall
    clock too, but the primary, machine-independent measure of plan work is
    these counters: how many tuples the plan read from base relations, how
    many predicate/key comparisons it made, and how many rows each operator
    emitted. A plan that is 10× worse does 10× the work whatever the
    hardware. *)

type t = {
  mutable tuples_read : int;
      (** tuples pulled out of base-table scans (inner rescans count) *)
  mutable comparisons : int;
      (** predicate evaluations and join-key comparisons *)
  mutable tuples_output : int;  (** rows emitted by join operators *)
}

val create : unit -> t
val reset : t -> unit

val read : t -> int -> unit
val compared : t -> int -> unit
val output : t -> int -> unit

val total_work : t -> int
(** [tuples_read + comparisons + tuples_output] — the scalar used to rank
    executed plans. *)

val pp : Format.formatter -> t -> unit
