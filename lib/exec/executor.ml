type result = {
  relation : Rel.Relation.t;
  row_count : int;
  counters : Counters.t;
  elapsed_s : float;
}

let rec operator_of_plan ?budget counters db plan =
  match plan with
  | Plan.Scan { table; source; filters } ->
    let relation = Catalog.Db.relation_exn db source in
    let relation =
      if String.equal table source then relation
      else Rel.Relation.rename relation table
    in
    Scan.relation ?budget counters ~filters relation
  | Plan.Join { method_; outer; inner; predicates } -> begin
    let outer_op = operator_of_plan ?budget counters db outer in
    match method_ with
    | Plan.Nested_loop ->
      Nested_loop.join ?budget counters predicates ~outer:outer_op
        ~make_inner:(fun () -> operator_of_plan ?budget counters db inner)
    | Plan.Sort_merge ->
      Sort_merge.join ?budget counters predicates ~outer:outer_op
        ~inner:(operator_of_plan ?budget counters db inner)
    | Plan.Hash ->
      Hash_join.join ?budget counters predicates ~outer:outer_op
        ~inner:(operator_of_plan ?budget counters db inner)
    | Plan.Index_nested_loop -> begin
      match inner with
      | Plan.Scan { table; source; filters } ->
        let relation = Catalog.Db.relation_exn db source in
        let relation =
          if String.equal table source then relation
          else Rel.Relation.rename relation table
        in
        Index_nested_loop.join ?budget counters predicates
          ~inner_filters:filters ~outer:outer_op ~inner:relation
      | Plan.Join _ ->
        invalid_arg
          "Executor: index nested loop requires a base-table inner"
    end
  end

(* Execution cannot degrade the way enumeration can — a truncated join
   result is wrong, not approximate — so a budget trip during execution
   surfaces as a structured [Budget_exhausted] error carrying the work
   performed so far. *)
let budget_error counters resource =
  Els.Els_error.Budget_exhausted
    {
      site = "executor";
      resource;
      detail =
        Printf.sprintf "cancelled after %d tuples read, %d tuples output"
          counters.Counters.tuples_read counters.Counters.tuples_output;
    }

let run ?budget db plan =
  let counters = Counters.create () in
  let t0 = Unix.gettimeofday () in
  match
    let op = operator_of_plan ?budget counters db plan in
    Operator.to_relation op
  with
  | relation ->
    let elapsed_s = Unix.gettimeofday () -. t0 in
    {
      relation;
      row_count = Rel.Relation.cardinality relation;
      counters;
      elapsed_s;
    }
  | exception Rel.Budget.Exhausted resource ->
    Els.Els_error.raise_ (budget_error counters resource)

let count_result ?budget db plan =
  let counters = Counters.create () in
  let t0 = Unix.gettimeofday () in
  let rows =
    match
      let op = operator_of_plan ?budget counters db plan in
      Operator.count op
    with
    | rows -> Ok rows
    | exception Rel.Budget.Exhausted resource ->
      Error (budget_error counters resource)
  in
  (rows, counters, Unix.gettimeofday () -. t0)

let count ?budget db plan =
  match count_result ?budget db plan with
  | Ok rows, counters, elapsed_s -> (rows, counters, elapsed_s)
  | Error e, _, _ -> Els.Els_error.raise_ e

(* Left-deep reference plan in FROM order with every predicate placed at
   the earliest node covering its columns. *)
let reference_plan query =
  let place_filters covered preds =
    List.partition
      (fun p -> Query.Predicate.references_only covered p)
      preds
  in
  match query.Query.tables with
  | [] -> invalid_arg "Executor.run_query: query with no tables"
  | first :: rest ->
    let local_first, remaining =
      place_filters [ first ] query.Query.predicates
    in
    let plan0 =
      Plan.scan ~source:(Query.source query first) ~filters:local_first first
    in
    let plan, _, leftover =
      List.fold_left
        (fun (plan, covered, preds) table ->
          let covered = table :: covered in
          let here, later = place_filters covered preds in
          (* Predicates evaluable on the inner table alone are pushed into
             its scan; the rest attach to the join. *)
          let scan_filters, join_preds =
            List.partition
              (fun p -> Query.Predicate.references_only [ table ] p)
              here
          in
          let inner =
            Plan.scan ~source:(Query.source query table) ~filters:scan_filters
              table
          in
          let bridges p =
            match p with
            | Query.Predicate.Col_cmp { left; right; _ } ->
              not (Query.Cref.same_table left right)
              && (String.equal left.Query.Cref.table table
                 || String.equal right.Query.Cref.table table)
            | Query.Predicate.Cmp _ -> false
          in
          let has_eq_key =
            List.exists
              (fun p -> Query.Predicate.is_equijoin p && bridges p)
              join_preds
          in
          let has_comparison = List.exists bridges join_preds in
          (* Hash wants an equality key; a comparison-only link takes the
             generalized sort-merge; a cartesian link falls back to
             nested loops. *)
          let method_ =
            if has_eq_key then Plan.Hash
            else if has_comparison then Plan.Sort_merge
            else Plan.Nested_loop
          in
          ( Plan.Join { method_; outer = plan; inner; predicates = join_preds },
            covered,
            later ))
        (plan0, [ first ], remaining)
        rest
    in
    assert (leftover = []);
    plan

let run_query ?budget db query =
  let result = run ?budget db (reference_plan query) in
  match query.Query.projection with
  | Query.Star | Query.Count_star -> result
  | Query.Columns cols ->
    let projected =
      Operator.to_relation
        (Project.columns cols (Operator.of_relation result.relation))
    in
    { result with relation = projected }
