(** Plan execution.

    Turns a physical {!Plan.t} into an operator tree over the catalog's
    stored relations and drains it, reporting both the result and the work
    performed — the stand-in for the paper's Starburst runtime. *)

type result = {
  relation : Rel.Relation.t;
  row_count : int;
  counters : Counters.t;
  elapsed_s : float;  (** wall-clock seconds for the whole execution *)
}

val run : ?budget:Rel.Budget.t -> Catalog.Db.t -> Plan.t -> result
(** Execute a plan. Every base table mentioned must be stored (not
    stats-only). With a [budget], every operator spends budgeted rows in
    lock-step with its work counters ([tuples_read] and [tuples_output])
    and probes the shared deadline; execution cannot degrade the way
    enumeration can, so a trip cancels the run.
    @raise Els.Els_error.Error ([Budget_exhausted]) when the budget trips
    mid-execution; the raw {!Rel.Budget.Exhausted} never escapes.
    @raise Invalid_argument when a table is stats-only.
    @raise Not_found when a table is missing from the catalog. *)

val count :
  ?budget:Rel.Budget.t -> Catalog.Db.t -> Plan.t -> int * Counters.t * float
(** Execute without materializing the result — [COUNT( )] style; returns
    (rows, counters, elapsed seconds). Budget semantics as in {!run}. *)

val count_result :
  ?budget:Rel.Budget.t ->
  Catalog.Db.t ->
  Plan.t ->
  (int, Els.Els_error.t) Stdlib.result * Counters.t * float
(** [count] in the [Result] style: a budget trip yields
    [Error (Budget_exhausted _)] instead of raising, and the counters and
    elapsed time of the cancelled run are still returned — by
    construction the budget's {!Rel.Budget.rows_used} equals
    [tuples_read + tuples_output] at the moment of cancellation, so
    partial work is fully accounted. Errors other than the budget trip
    (missing table, stats-only table) still raise as in {!run}. *)

val run_query : ?budget:Rel.Budget.t -> Catalog.Db.t -> Query.t -> result
(** Reference execution of a query with no optimizer involved: left-deep
    hash joins in FROM order (nested loops when a step has no equi-key),
    local predicates pushed to scans, column projections applied. Used to
    obtain ground-truth result sizes in tests and experiments. Budget
    semantics as in {!run}. *)
