(** Plan execution.

    Turns a physical {!Plan.t} into an operator tree over the catalog's
    stored relations and drains it, reporting both the result and the work
    performed — the stand-in for the paper's Starburst runtime. *)

type result = {
  relation : Rel.Relation.t;
  row_count : int;
  counters : Counters.t;
  elapsed_s : float;  (** wall-clock seconds for the whole execution *)
}

val run : Catalog.Db.t -> Plan.t -> result
(** Execute a plan. Every base table mentioned must be stored (not
    stats-only).
    @raise Invalid_argument when a table is stats-only.
    @raise Not_found when a table is missing from the catalog. *)

val count : Catalog.Db.t -> Plan.t -> int * Counters.t * float
(** Execute without materializing the result — [COUNT( )] style; returns
    (rows, counters, elapsed seconds). *)

val run_query : Catalog.Db.t -> Query.t -> result
(** Reference execution of a query with no optimizer involved: left-deep
    hash joins in FROM order (nested loops when a step has no equi-key),
    local predicates pushed to scans, column projections applied. Used to
    obtain ground-truth result sizes in tests and experiments. *)
