let join ?budget counters preds ~outer ~inner =
  let left_schema = Operator.schema outer in
  let right_schema = Operator.schema inner in
  let out_schema = Rel.Schema.concat left_schema right_schema in
  let keys, residual = Join_keys.split ~left:left_schema ~right:right_schema preds in
  if keys = [] then
    invalid_arg "Hash_join.join: no equi-join key between the inputs";
  let left_cols = List.map fst keys and right_cols = List.map snd keys in
  let accept_residual = Query.Eval.compile_all out_schema residual in
  let n_residual = List.length residual in
  let spend n =
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_rows_exn b n
  in
  let table : (int, Rel.Tuple.t list ref) Hashtbl.t = Hashtbl.create 4096 in
  let key_has_null cols tuple =
    List.exists (fun i -> Rel.Value.is_null tuple.(i)) cols
  in
  Operator.iter
    (fun tuple ->
      if not (key_has_null right_cols tuple) then begin
        let h = Rel.Tuple.hash_at right_cols tuple in
        match Hashtbl.find_opt table h with
        | Some bucket -> bucket := tuple :: !bucket
        | None -> Hashtbl.add table h (ref [ tuple ])
      end)
    inner;
  let keys_match left right =
    List.for_all2
      (fun i j -> Rel.Value.equal left.(i) right.(j))
      left_cols right_cols
  in
  let current = ref None (* outer tuple and its remaining candidates *) in
  let rec pull () =
    match !current with
    | Some (left, candidate :: rest) ->
      current := Some (left, rest);
      Counters.compared counters (List.length keys);
      if keys_match left candidate then begin
        let joined = Rel.Tuple.concat left candidate in
        Counters.compared counters n_residual;
        if accept_residual joined then begin
          Counters.output counters 1;
          spend 1;
          Some joined
        end
        else pull ()
      end
      else pull ()
    | Some (_, []) ->
      current := None;
      pull ()
    | None -> begin
      match Operator.next outer with
      | None -> None
      | Some left ->
        Counters.compared counters 1 (* hash computation *);
        let candidates =
          if key_has_null left_cols left then []
          else
            match Hashtbl.find_opt table (Rel.Tuple.hash_at left_cols left) with
            | Some bucket -> !bucket
            | None -> []
        in
        current := Some (left, candidates);
        pull ()
    end
  in
  Operator.make out_schema pull
