(** Hash equi-join.

    Builds a hash table over the inner (right) input keyed on the equi-join
    columns, then streams the outer (left) input, probing per tuple.
    Residual predicates are evaluated on each candidate pair. SQL
    semantics: tuples with a NULL join key never match. *)

val join :
  ?budget:Rel.Budget.t ->
  Counters.t ->
  Query.Predicate.t list ->
  outer:Operator.t ->
  inner:Operator.t ->
  Operator.t
(** With a [budget], every emitted tuple spends one budgeted row (raising
    {!Rel.Budget.Exhausted} on trip); the build-side reads are spent by
    the inner operator itself.
    @raise Invalid_argument when no equi-key bridges the two inputs (use
    {!Nested_loop.join} for cartesian products). *)
