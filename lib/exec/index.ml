type t = {
  table : (Rel.Value.t, Rel.Tuple.t list ref) Hashtbl.t;
  column : int;
}

let build relation ~column =
  let table = Hashtbl.create 4096 in
  Rel.Relation.iter
    (fun tuple ->
      let key = tuple.(column) in
      if not (Rel.Value.is_null key) then
        match Hashtbl.find_opt table key with
        | Some bucket -> bucket := tuple :: !bucket
        | None -> Hashtbl.add table key (ref [ tuple ]))
    relation;
  { table; column }

let lookup t key =
  if Rel.Value.is_null key then []
  else
    match Hashtbl.find_opt t.table key with
    | Some bucket -> !bucket
    | None -> []

let key_count t = Hashtbl.length t.table
let column t = t.column
