(** Hash indexes over stored relations.

    The equality-lookup access path of this engine: a nested-loop join
    whose inner is accessed through an index touches only matching tuples
    instead of rescanning the table — the access-method choice Starburst's
    optimizer weighed alongside join methods. *)

type t

val build : Rel.Relation.t -> column:int -> t
(** One pass over the relation. NULL keys are not indexed (SQL equality
    never matches them). *)

val lookup : t -> Rel.Value.t -> Rel.Tuple.t list
(** Tuples whose key equals the probe value; [[]] for NULL probes. *)

val key_count : t -> int
(** Number of distinct indexed keys. *)

val column : t -> int
(** The indexed column position. *)
