let join ?budget counters preds ~inner_filters ~outer ~inner =
  let outer_schema = Operator.schema outer in
  let inner_schema = Rel.Relation.schema inner in
  let out_schema = Rel.Schema.concat outer_schema inner_schema in
  let keys, residual =
    Join_keys.split ~left:outer_schema ~right:inner_schema preds
  in
  match keys with
  | [] ->
    invalid_arg "Index_nested_loop.join: no equi-join key to index on"
  | (outer_col, inner_col) :: more_keys ->
    (* The first key pair drives the index; any further key pairs are
       checked as residual equalities on the matched tuples. *)
    let accept_inner = Query.Eval.compile_all inner_schema inner_filters in
    let n_inner_filters = List.length inner_filters in
    let accept_residual = Query.Eval.compile_all out_schema residual in
    let n_residual = List.length residual in
    let spend n =
      match budget with
      | None -> ()
      | Some b -> Rel.Budget.spend_rows_exn b n
    in
    (* Building the index scans the inner once. *)
    Counters.read counters (Rel.Relation.cardinality inner);
    spend (Rel.Relation.cardinality inner);
    let index = Index.build inner ~column:inner_col in
    let current = ref None in
    let rec pull () =
      match !current with
      | Some (left, candidate :: rest) ->
        current := Some (left, rest);
        Counters.read counters 1;
        spend 1;
        Counters.compared counters n_inner_filters;
        if not (accept_inner candidate) then pull ()
        else begin
          let extra_keys_match =
            List.for_all
              (fun (i, j) -> Rel.Value.sql_equal left.(i) candidate.(j))
              more_keys
          in
          Counters.compared counters (List.length more_keys);
          if not extra_keys_match then pull ()
          else begin
            let joined = Rel.Tuple.concat left candidate in
            Counters.compared counters n_residual;
            if accept_residual joined then begin
              Counters.output counters 1;
              spend 1;
              Some joined
            end
            else pull ()
          end
        end
      | Some (_, []) ->
        current := None;
        pull ()
      | None -> begin
        match Operator.next outer with
        | None -> None
        | Some left ->
          Counters.compared counters 1 (* the probe *);
          current := Some (left, Index.lookup index left.(outer_col));
          pull ()
      end
    in
    Operator.make out_schema pull
