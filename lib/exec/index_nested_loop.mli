(** Index nested-loop join.

    The inner base relation is indexed once on the (first) equi-join
    column; each outer tuple probes the index and only the matching inner
    tuples are touched. The inner's pushed-down filters and any residual
    join predicates are evaluated per match.

    Work accounting: building the index reads the inner once; each probe
    charges one comparison plus one read per matched tuple. *)

val join :
  ?budget:Rel.Budget.t ->
  Counters.t ->
  Query.Predicate.t list ->
  inner_filters:Query.Predicate.t list ->
  outer:Operator.t ->
  inner:Rel.Relation.t ->
  Operator.t
(** [join counters preds ~inner_filters ~outer ~inner]. [preds] must
    contain at least one column equality bridging the outer schema and the
    inner relation's schema. With a [budget], the index-build scan, each
    matched-tuple read and each emitted tuple spend budgeted rows
    mirroring the counters (raising {!Rel.Budget.Exhausted} on trip).
    @raise Invalid_argument otherwise. *)
