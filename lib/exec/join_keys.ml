let position schema (c : Query.Cref.t) =
  Rel.Schema.index_of schema ~table:c.Query.Cref.table
    ~name:c.Query.Cref.column

let split ~left ~right preds =
  let keys = ref [] and residual = ref [] in
  List.iter
    (fun p ->
      let bridged =
        match p with
        | Query.Predicate.Col_cmp
            { left = a; op = Query.Predicate.Eq; right = b } -> begin
          match position left a, position right b with
          | Some i, Some j -> Some (i, j)
          | None, _ | _, None -> begin
            match position left b, position right a with
            | Some i, Some j -> Some (i, j)
            | None, _ | _, None -> None
          end
        end
        | Query.Predicate.Col_cmp _ | Query.Predicate.Cmp _ -> None
      in
      match bridged with
      | Some pair -> keys := pair :: !keys
      | None ->
        (* Will be evaluated on the concatenated schema; check it is
           evaluable there at all. *)
        let concat = Rel.Schema.concat left right in
        List.iter
          (fun c ->
            if position concat c = None then
              invalid_arg
                (Printf.sprintf
                   "Join_keys.split: %s references a column outside the join"
                   (Query.Predicate.to_string p)))
          (Query.Predicate.columns p);
        residual := p :: !residual)
    preds;
  (List.rev !keys, List.rev !residual)

let comparison_driver ~left ~right preds =
  let rec find = function
    | [] -> None
    | p :: rest -> begin
      match p with
      | Query.Predicate.Col_cmp { left = a; op; right = b }
        when op <> Query.Predicate.Eq -> begin
        match position left a, position right b with
        | Some i, Some j -> Some (p, i, j, op)
        | None, _ | _, None -> begin
          match position left b, position right a with
          | Some i, Some j -> Some (p, i, j, Query.Predicate.mirror op)
          | None, _ | _, None -> find rest
        end
      end
      | Query.Predicate.Col_cmp _ | Query.Predicate.Cmp _ -> find rest
    end
  in
  find preds
