(** Splitting join conjunctions into equi-key pairs and residual
    predicates. *)

val split :
  left:Rel.Schema.t ->
  right:Rel.Schema.t ->
  Query.Predicate.t list ->
  (int * int) list * Query.Predicate.t list
(** [split ~left ~right preds] returns the list of [(left_pos, right_pos)]
    column-position pairs for the column equalities that bridge the two
    schemas, and the remaining predicates, to be evaluated on the
    concatenated schema after the join.
    @raise Invalid_argument when a predicate references a column present in
    neither schema. *)
