(** Splitting join conjunctions into equi-key pairs and residual
    predicates. *)

val split :
  left:Rel.Schema.t ->
  right:Rel.Schema.t ->
  Query.Predicate.t list ->
  (int * int) list * Query.Predicate.t list
(** [split ~left ~right preds] returns the list of [(left_pos, right_pos)]
    column-position pairs for the column equalities that bridge the two
    schemas, and the remaining predicates, to be evaluated on the
    concatenated schema after the join.
    @raise Invalid_argument when a predicate references a column present in
    neither schema. *)

val comparison_driver :
  left:Rel.Schema.t ->
  right:Rel.Schema.t ->
  Query.Predicate.t list ->
  (Query.Predicate.t * int * int * Query.Predicate.comparison) option
(** The first comparison (non-equality) predicate bridging the two
    schemas, as [(pred, left_pos, right_pos, op)] with [op] oriented
    left-versus-right (mirrored when the predicate was spelled the other
    way round) — the sort driver of a comparison sort-merge join. *)
