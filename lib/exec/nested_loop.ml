let join ?budget counters preds ~outer ~make_inner =
  let inner_schema = Operator.schema (make_inner ()) in
  let out_schema = Rel.Schema.concat (Operator.schema outer) inner_schema in
  let accept = Query.Eval.compile_all out_schema preds in
  let n_preds = List.length preds in
  let spend n =
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_rows_exn b n
  in
  let outer_tuple = ref None in
  let inner_op = ref None in
  let rec pull () =
    match !outer_tuple with
    | None -> begin
      match Operator.next outer with
      | None -> None
      | Some tuple ->
        outer_tuple := Some tuple;
        inner_op := Some (make_inner ());
        pull ()
    end
    | Some left -> begin
      let inner =
        match !inner_op with
        | Some op -> op
        | None -> assert false
      in
      match Operator.next inner with
      | None ->
        outer_tuple := None;
        inner_op := None;
        pull ()
      | Some right ->
        Counters.compared counters n_preds;
        let joined = Rel.Tuple.concat left right in
        if accept joined then begin
          Counters.output counters 1;
          spend 1;
          Some joined
        end
        else pull ()
    end
  in
  Operator.make out_schema pull
