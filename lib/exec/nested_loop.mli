(** Tuple-at-a-time nested-loop join.

    Starburst-style: the inner subplan is re-executed (its scan re-run,
    filters re-evaluated) for every outer tuple, and every rescan is
    charged to the work counters. This is what makes a nested-loop join
    with a large inner and a mis-estimated outer genuinely expensive in
    this engine — the effect the paper's Section 8 experiment turns on.
    Works for any predicate set, including none (cartesian product). *)

val join :
  ?budget:Rel.Budget.t ->
  Counters.t ->
  Query.Predicate.t list ->
  outer:Operator.t ->
  make_inner:(unit -> Operator.t) ->
  Operator.t
(** [make_inner] must produce a fresh cursor over the same input each time
    it is called. With a [budget], every emitted tuple spends one budgeted
    row (raising {!Rel.Budget.Exhausted} on trip). *)
