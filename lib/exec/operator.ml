type t = {
  schema : Rel.Schema.t;
  next_fn : unit -> Rel.Tuple.t option;
}

let make schema next_fn = { schema; next_fn }
let schema t = t.schema
let next t = t.next_fn ()

let of_list schema tuples =
  let remaining = ref tuples in
  make schema (fun () ->
      match !remaining with
      | [] -> None
      | tuple :: rest ->
        remaining := rest;
        Some tuple)

let of_relation relation =
  let i = ref 0 in
  let n = Rel.Relation.cardinality relation in
  make (Rel.Relation.schema relation) (fun () ->
      if !i >= n then None
      else begin
        let tuple = Rel.Relation.get relation !i in
        incr i;
        Some tuple
      end)

let iter f t =
  let rec loop () =
    match next t with
    | None -> ()
    | Some tuple ->
      f tuple;
      loop ()
  in
  loop ()

let to_relation t =
  let out = Rel.Relation.create (schema t) in
  iter (Rel.Relation.insert out) t;
  out

let count t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n

let fold f acc t =
  let acc = ref acc in
  iter (fun tuple -> acc := f !acc tuple) t;
  !acc
