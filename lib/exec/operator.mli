(** Pull-based physical operators (volcano-style cursors).

    An operator yields tuples of a fixed schema until exhausted. Operators
    are single-use: once [next] returns [None] the cursor stays exhausted.
    Joins that need to rescan their inner input materialize it instead —
    this is an in-memory engine, so materialization is an array copy, and
    rescans are charged to the work counters by the operator that performs
    them. *)

type t

val make : Rel.Schema.t -> (unit -> Rel.Tuple.t option) -> t
val schema : t -> Rel.Schema.t
val next : t -> Rel.Tuple.t option

val of_list : Rel.Schema.t -> Rel.Tuple.t list -> t
val of_relation : Rel.Relation.t -> t
(** Plain cursor over a relation; does not touch any counter (use
    {!Scan.relation} for counted base-table scans). *)

val to_relation : t -> Rel.Relation.t
(** Drain the operator into a fresh relation. *)

val iter : (Rel.Tuple.t -> unit) -> t -> unit
val count : t -> int
(** Drain and count. *)

val fold : ('acc -> Rel.Tuple.t -> 'acc) -> 'acc -> t -> 'acc
