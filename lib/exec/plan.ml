type join_method =
  | Nested_loop
  | Sort_merge
  | Hash
  | Index_nested_loop

type t =
  | Scan of {
      table : string;
      source : string;
      filters : Query.Predicate.t list;
    }
  | Join of {
      method_ : join_method;
      outer : t;
      inner : t;
      predicates : Query.Predicate.t list;
    }

let scan ?source ?(filters = []) table =
  Scan { table; source = Option.value source ~default:table; filters }

let rec tables = function
  | Scan { table; _ } -> [ table ]
  | Join { outer; inner; _ } -> tables outer @ tables inner

let join_order = tables

let method_name = function
  | Nested_loop -> "NL"
  | Sort_merge -> "SM"
  | Hash -> "HJ"
  | Index_nested_loop -> "INL"

let rec to_string = function
  | Scan { table; _ } -> table
  | Join { method_; outer; inner; _ } ->
    Printf.sprintf "(%s %s %s)" (to_string outer) (method_name method_)
      (to_string inner)

let pp ppf plan =
  let rec render indent = function
    | Scan { table; source; filters } ->
      Format.fprintf ppf "%sScan %s" indent table;
      if not (String.equal table source) then
        Format.fprintf ppf " (= %s)" source;
      if filters <> [] then
        Format.fprintf ppf " [%s]"
          (String.concat " AND "
             (List.map Query.Predicate.to_string filters));
      Format.fprintf ppf "@."
    | Join { method_; outer; inner; predicates } ->
      Format.fprintf ppf "%s%s join" indent (method_name method_);
      if predicates <> [] then
        Format.fprintf ppf " on %s"
          (String.concat " AND "
             (List.map Query.Predicate.to_string predicates));
      Format.fprintf ppf "@.";
      render (indent ^ "  ") outer;
      render (indent ^ "  ") inner
  in
  render "" plan
