(** Physical plans.

    A plan is what the optimizer hands to {!Executor.run}: a left-deep (or,
    in principle, bushy) tree of scans and joins, with local predicates
    pushed into the scans and join/residual predicates attached to join
    nodes. *)

type join_method =
  | Nested_loop
  | Sort_merge
  | Hash
  | Index_nested_loop
      (** nested loop probing a hash index built on the inner's join
          column *)

type t =
  | Scan of {
      table : string;  (** the alias the plan addresses the table by *)
      source : string;  (** the catalog table actually scanned *)
      filters : Query.Predicate.t list;
    }
  | Join of {
      method_ : join_method;
      outer : t;
      inner : t;
      predicates : Query.Predicate.t list;
    }

val scan : ?source:string -> ?filters:Query.Predicate.t list -> string -> t
(** [scan table] is a scan node; [source] defaults to [table] (no alias)
    and [filters] to none. *)

val tables : t -> string list
(** Base tables (aliases), left-to-right (the join order for a left-deep
    plan). *)

val join_order : t -> string list
(** Alias of {!tables}; reads better at call sites reporting orders. *)

val method_name : join_method -> string

val to_string : t -> string
(** One-line rendering, e.g. [((b SM g) HJ m)]. *)

val pp : Format.formatter -> t -> unit
(** Multi-line indented tree with predicates. *)
