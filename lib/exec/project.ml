let columns crefs input =
  let in_schema = Operator.schema input in
  let positions =
    List.map
      (fun (c : Query.Cref.t) ->
        match
          Rel.Schema.index_of in_schema ~table:c.Query.Cref.table
            ~name:c.Query.Cref.column
        with
        | Some i -> i
        | None ->
          invalid_arg
            (Printf.sprintf "Project.columns: %s not in input"
               (Query.Cref.to_string c)))
      crefs
  in
  let out_schema = Rel.Schema.project in_schema positions in
  Operator.make out_schema (fun () ->
      match Operator.next input with
      | None -> None
      | Some tuple -> Some (Rel.Tuple.project tuple positions))

let count_star input = Operator.count input
