(** Projection and aggregation operators. *)

val columns : Query.Cref.t list -> Operator.t -> Operator.t
(** Keep only the named columns, in the given order.
    @raise Invalid_argument when a column is missing from the input. *)

val count_star : Operator.t -> int
(** Drain the input and return the row count — [SELECT COUNT( )]. *)
