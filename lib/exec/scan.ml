let relation ?budget counters ?(filters = []) rel =
  let schema = Rel.Relation.schema rel in
  let accept = Query.Eval.compile_all schema filters in
  let n_filters = List.length filters in
  let spend n =
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_rows_exn b n
  in
  let i = ref 0 in
  let n = Rel.Relation.cardinality rel in
  let rec pull () =
    if !i >= n then None
    else begin
      let tuple = Rel.Relation.get rel !i in
      incr i;
      Counters.read counters 1;
      spend 1;
      Counters.compared counters n_filters;
      if accept tuple then Some tuple else pull ()
    end
  in
  Operator.make schema pull
