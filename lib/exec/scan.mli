(** Base-table scans with optional pushed-down filters. *)

val relation :
  ?budget:Rel.Budget.t ->
  Counters.t ->
  ?filters:Query.Predicate.t list ->
  Rel.Relation.t ->
  Operator.t
(** Sequential scan. Every tuple read is charged to [tuples_read]; every
    filter evaluation to [comparisons]. Surviving tuples flow out. With a
    [budget], every read also spends one budgeted row (raising
    {!Rel.Budget.Exhausted} on trip), mirroring the counter exactly. *)
