(* --- comparison merge ---------------------------------------------------

   The inequality/band generalization: both inputs sorted on the driving
   predicate's columns under {!Rel.Value.compare_sem} (the order
   {!Rel.Cmp.eval} compares by), then for each right tuple the qualifying
   left tuples form a monotone window of the sorted left input — a
   growing prefix for [Lt]/[Le], a shrinking suffix for [Gt]/[Ge], and a
   two-pointer sliding window for a band. Each window endpoint only ever
   advances, so the merge does O(n log n) sort comparisons plus
   O(output) emission work. NULL driver keys never qualify and are
   dropped up front (as are non-numeric keys under a band). *)
let comparison_join ?budget counters ~out_schema ~lcol ~rcol ~op ~residual
    ~outer ~inner =
  let accept_residual = Query.Eval.compile_all out_schema residual in
  let n_residual = List.length residual in
  let spend n =
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_rows_exn b n
  in
  let keep col tuple =
    (not (Rel.Value.is_null tuple.(col)))
    &&
    match op with
    | Query.Predicate.Band _ -> begin
      match tuple.(col) with
      | Rel.Value.Int _ | Rel.Value.Float _ -> true
      | Rel.Value.Null | Rel.Value.String _ | Rel.Value.Bool _ -> false
    end
    | Query.Predicate.Eq | Query.Predicate.Lt | Query.Predicate.Le
    | Query.Predicate.Gt | Query.Predicate.Ge ->
      true
  in
  let sorted col operator =
    let tuples =
      List.filter (keep col) (Operator.fold (fun acc t -> t :: acc) [] operator)
    in
    let arr = Array.of_list tuples in
    Array.sort
      (fun a b ->
        Counters.compared counters 1;
        Rel.Value.compare_sem a.(col) b.(col))
      arr;
    arr
  in
  let left_arr = sorted lcol outer in
  let right_arr = sorted rcol inner in
  let nl = Array.length left_arr and nr = Array.length right_arr in
  (* Window of qualifying left indexes for the current right tuple:
     [win_lo, win_hi). Both bounds are monotone in the right key. *)
  let win_lo = ref 0 and win_hi = ref 0 in
  let li = ref 0 in
  let ri = ref (-1) in
  let counted_sem l r =
    Counters.compared counters 1;
    Rel.Value.compare_sem l r
  in
  let advance_windows rkey =
    (match op with
    | Query.Predicate.Lt ->
      (* left < right: prefix of lefts strictly below the right key. *)
      win_lo := 0;
      while !win_hi < nl && counted_sem left_arr.(!win_hi).(lcol) rkey < 0 do
        incr win_hi
      done
    | Query.Predicate.Le ->
      win_lo := 0;
      while !win_hi < nl && counted_sem left_arr.(!win_hi).(lcol) rkey <= 0 do
        incr win_hi
      done
    | Query.Predicate.Gt ->
      (* left > right: suffix of lefts strictly above the right key. *)
      win_hi := nl;
      while !win_lo < nl && counted_sem left_arr.(!win_lo).(lcol) rkey <= 0 do
        incr win_lo
      done
    | Query.Predicate.Ge ->
      win_hi := nl;
      while !win_lo < nl && counted_sem left_arr.(!win_lo).(lcol) rkey < 0 do
        incr win_lo
      done
    | Query.Predicate.Band eps ->
      let x = Rel.Value.float_exn rkey in
      let fkey i = Rel.Value.float_exn left_arr.(i).(lcol) in
      while
        !win_lo < nl
        && begin
             Counters.compared counters 1;
             fkey !win_lo < x -. eps
           end
      do
        incr win_lo
      done;
      if !win_hi < !win_lo then win_hi := !win_lo;
      while
        !win_hi < nl
        && begin
             Counters.compared counters 1;
             fkey !win_hi <= x +. eps
           end
      do
        incr win_hi
      done
    | Query.Predicate.Eq ->
      invalid_arg "Sort_merge.comparison_join: Eq is a merge key, not a driver");
    li := !win_lo
  in
  let rec pull () =
    if !ri >= nr then None
    else if !ri >= 0 && !li < !win_hi then begin
      let joined =
        Rel.Tuple.concat left_arr.(!li) right_arr.(!ri)
      in
      incr li;
      Counters.compared counters n_residual;
      if accept_residual joined then begin
        Counters.output counters 1;
        spend 1;
        Some joined
      end
      else pull ()
    end
    else begin
      incr ri;
      if !ri >= nr then None
      else begin
        advance_windows right_arr.(!ri).(rcol);
        pull ()
      end
    end
  in
  Operator.make out_schema pull

let join ?budget counters preds ~outer ~inner =
  let left_schema = Operator.schema outer in
  let right_schema = Operator.schema inner in
  let out_schema = Rel.Schema.concat left_schema right_schema in
  let keys, residual =
    Join_keys.split ~left:left_schema ~right:right_schema preds
  in
  if keys = [] then begin
    match
      Join_keys.comparison_driver ~left:left_schema ~right:right_schema
        residual
    with
    | Some (driver_pred, lcol, rcol, op) ->
      let residual =
        List.filter (fun p -> not (p == driver_pred)) residual
      in
      comparison_join ?budget counters ~out_schema ~lcol ~rcol ~op ~residual
        ~outer ~inner
    | None ->
      invalid_arg "Sort_merge.join: no join key between the inputs"
  end
  else
  let left_cols = List.map fst keys and right_cols = List.map snd keys in
  let accept_residual = Query.Eval.compile_all out_schema residual in
  let n_residual = List.length residual in
  let spend n =
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_rows_exn b n
  in
  let counted_compare cols a b =
    Counters.compared counters 1;
    Rel.Tuple.compare_at cols a b
  in
  let sort cols op =
    let arr = Array.of_list (Operator.fold (fun acc t -> t :: acc) [] op) in
    Array.sort (counted_compare cols) arr;
    arr
  in
  let left_arr = sort left_cols outer in
  let right_arr = sort right_cols inner in
  let nl = Array.length left_arr and nr = Array.length right_arr in
  let key_has_null cols tuple =
    List.exists (fun i -> Rel.Value.is_null tuple.(i)) cols
  in
  (* Cross-input key comparison: compare the projections pairwise. *)
  let cross_compare left right =
    Counters.compared counters 1;
    let rec loop ls rs =
      match ls, rs with
      | [], [] -> 0
      | i :: ls, j :: rs ->
        let c = Rel.Value.compare left.(i) right.(j) in
        if c <> 0 then c else loop ls rs
      | [], _ :: _ | _ :: _, [] -> assert false
    in
    loop left_cols right_cols
  in
  let li = ref 0 and ri = ref 0 in
  (* Pending output: the current left tuple paired against a right run. *)
  let run_start = ref 0 and run_len = ref 0 in
  let run_pos = ref 0 in
  let in_run = ref false in
  let rec pull () =
    if !in_run then begin
      if !run_pos < !run_len then begin
        let left = left_arr.(!li) in
        let right = right_arr.(!run_start + !run_pos) in
        incr run_pos;
        let joined = Rel.Tuple.concat left right in
        Counters.compared counters n_residual;
        if accept_residual joined then begin
          Counters.output counters 1;
          spend 1;
          Some joined
        end
        else pull ()
      end
      else begin
        (* Finished pairing this left tuple with the run; advance left and
           re-pair if the next left tuple has the same key. *)
        in_run := false;
        incr li;
        if
          !li < nl
          && !run_len > 0
          && cross_compare left_arr.(!li) right_arr.(!run_start) = 0
        then begin
          in_run := true;
          run_pos := 0;
          pull ()
        end
        else pull ()
      end
    end
    else if !li >= nl || !ri >= nr then None
    else begin
      let left = left_arr.(!li) in
      if key_has_null left_cols left then begin
        incr li;
        pull ()
      end
      else if key_has_null right_cols right_arr.(!ri) then begin
        incr ri;
        pull ()
      end
      else begin
        let c = cross_compare left right_arr.(!ri) in
        if c < 0 then begin
          incr li;
          pull ()
        end
        else if c > 0 then begin
          incr ri;
          pull ()
        end
        else begin
          (* Key match: delimit the right run sharing this key. *)
          let start = !ri in
          let fin = ref (start + 1) in
          while
            !fin < nr
            && counted_compare right_cols right_arr.(start) right_arr.(!fin)
               = 0
          do
            incr fin
          done;
          run_start := start;
          run_len := !fin - start;
          run_pos := 0;
          in_run := true;
          ri := !fin;
          pull ()
        end
      end
    end
  in
  Operator.make out_schema pull
