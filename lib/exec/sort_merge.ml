let join ?budget counters preds ~outer ~inner =
  let left_schema = Operator.schema outer in
  let right_schema = Operator.schema inner in
  let out_schema = Rel.Schema.concat left_schema right_schema in
  let keys, residual =
    Join_keys.split ~left:left_schema ~right:right_schema preds
  in
  if keys = [] then
    invalid_arg "Sort_merge.join: no equi-join key between the inputs";
  let left_cols = List.map fst keys and right_cols = List.map snd keys in
  let accept_residual = Query.Eval.compile_all out_schema residual in
  let n_residual = List.length residual in
  let spend n =
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_rows_exn b n
  in
  let counted_compare cols a b =
    Counters.compared counters 1;
    Rel.Tuple.compare_at cols a b
  in
  let sort cols op =
    let arr = Array.of_list (Operator.fold (fun acc t -> t :: acc) [] op) in
    Array.sort (counted_compare cols) arr;
    arr
  in
  let left_arr = sort left_cols outer in
  let right_arr = sort right_cols inner in
  let nl = Array.length left_arr and nr = Array.length right_arr in
  let key_has_null cols tuple =
    List.exists (fun i -> Rel.Value.is_null tuple.(i)) cols
  in
  (* Cross-input key comparison: compare the projections pairwise. *)
  let cross_compare left right =
    Counters.compared counters 1;
    let rec loop ls rs =
      match ls, rs with
      | [], [] -> 0
      | i :: ls, j :: rs ->
        let c = Rel.Value.compare left.(i) right.(j) in
        if c <> 0 then c else loop ls rs
      | [], _ :: _ | _ :: _, [] -> assert false
    in
    loop left_cols right_cols
  in
  let li = ref 0 and ri = ref 0 in
  (* Pending output: the current left tuple paired against a right run. *)
  let run_start = ref 0 and run_len = ref 0 in
  let run_pos = ref 0 in
  let in_run = ref false in
  let rec pull () =
    if !in_run then begin
      if !run_pos < !run_len then begin
        let left = left_arr.(!li) in
        let right = right_arr.(!run_start + !run_pos) in
        incr run_pos;
        let joined = Rel.Tuple.concat left right in
        Counters.compared counters n_residual;
        if accept_residual joined then begin
          Counters.output counters 1;
          spend 1;
          Some joined
        end
        else pull ()
      end
      else begin
        (* Finished pairing this left tuple with the run; advance left and
           re-pair if the next left tuple has the same key. *)
        in_run := false;
        incr li;
        if
          !li < nl
          && !run_len > 0
          && cross_compare left_arr.(!li) right_arr.(!run_start) = 0
        then begin
          in_run := true;
          run_pos := 0;
          pull ()
        end
        else pull ()
      end
    end
    else if !li >= nl || !ri >= nr then None
    else begin
      let left = left_arr.(!li) in
      if key_has_null left_cols left then begin
        incr li;
        pull ()
      end
      else if key_has_null right_cols right_arr.(!ri) then begin
        incr ri;
        pull ()
      end
      else begin
        let c = cross_compare left right_arr.(!ri) in
        if c < 0 then begin
          incr li;
          pull ()
        end
        else if c > 0 then begin
          incr ri;
          pull ()
        end
        else begin
          (* Key match: delimit the right run sharing this key. *)
          let start = !ri in
          let fin = ref (start + 1) in
          while
            !fin < nr
            && counted_compare right_cols right_arr.(start) right_arr.(!fin)
               = 0
          do
            incr fin
          done;
          run_start := start;
          run_len := !fin - start;
          run_pos := 0;
          in_run := true;
          ri := !fin;
          pull ()
        end
      end
    end
  in
  Operator.make out_schema pull
