(** Sort-merge join: equality keys, inequality and band drivers.

    With equi-join keys, both inputs are materialized and sorted on them
    (sort comparisons are charged to the work counters), then merged,
    buffering duplicate key runs on the right so m×n matches within a key
    group are all produced.

    With no equi-key but a comparison predicate ([R.a < S.b],
    [|R.a - S.b| <= eps]) bridging the inputs, both sides are sorted on
    the driving columns and merged by a monotone window: for each right
    tuple the qualifying left tuples are a prefix ([Lt]/[Le]), a suffix
    ([Gt]/[Ge]) or a two-pointer band window of the sorted left input, so
    the merge does O(n log n) sort comparisons plus O(output) emission
    work. Remaining predicates are evaluated as residuals on the
    concatenated tuple.

    NULL keys never match and are skipped (as are non-numeric keys under
    a band driver). *)

val join :
  ?budget:Rel.Budget.t ->
  Counters.t ->
  Query.Predicate.t list ->
  outer:Operator.t ->
  inner:Operator.t ->
  Operator.t
(** With a [budget], every emitted tuple spends one budgeted row (raising
    {!Rel.Budget.Exhausted} on trip); input reads are spent by the child
    operators during materialization.
    @raise Invalid_argument when neither an equi-key nor a comparison
    predicate bridges the two inputs. *)
