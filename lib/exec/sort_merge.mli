(** Sort-merge equi-join.

    Both inputs are materialized and sorted on the equi-join keys (sort
    comparisons are charged to the work counters), then merged, buffering
    duplicate key runs on the right so m×n matches within a key group are
    all produced. NULL keys never match and are skipped. *)

val join :
  ?budget:Rel.Budget.t ->
  Counters.t ->
  Query.Predicate.t list ->
  outer:Operator.t ->
  inner:Operator.t ->
  Operator.t
(** With a [budget], every emitted tuple spends one budgeted row (raising
    {!Rel.Budget.Exhausted} on trip); input reads are spent by the child
    operators during materialization.
    @raise Invalid_argument when no equi-key bridges the two inputs. *)
