(** Sort-merge equi-join.

    Both inputs are materialized and sorted on the equi-join keys (sort
    comparisons are charged to the work counters), then merged, buffering
    duplicate key runs on the right so m×n matches within a key group are
    all produced. NULL keys never match and are skipped. *)

val join :
  Counters.t ->
  Query.Predicate.t list ->
  outer:Operator.t ->
  inner:Operator.t ->
  Operator.t
(** @raise Invalid_argument when no equi-key bridges the two inputs. *)
