type q_error =
  | Finite of float
  | Infinite
  | Undefined

type summary = {
  algorithm : string;
  queries : int;
  median_q : float;
  p90_q : float;
  max_q : float;
  underestimated : float;
  infinite : int;
  undefined : int;
}

(* One summary per registered estimator, each under its canonical
   configuration (every built-in closes the predicate set, so the panel
   compares combining rules, not the PTC rewrite). *)
let algorithms () = Els.Config.panel ()

let q_error ~est ~truth =
  if truth <= 0. || Float.is_nan truth || Float.is_nan est then Undefined
  else if est <= 0. || est = Float.infinity then Infinite
  else Float.max (est /. truth) (truth /. est) |> fun q -> Finite q

(* One chain and one star specimen per seed; chains get a ~25% local range
   predicate on the first table's join column. *)
let workloads seed =
  let chain =
    Datagen.Workload.chain ~rows_range:(100, 400) ~distinct_range:(20, 120)
      ~seed ~n_tables:4 ()
  in
  let chain_db = chain.Datagen.Workload.db in
  let chain_query =
    let t1 = List.hd chain.Datagen.Workload.query.Query.tables in
    let d = Catalog.Table.distinct (Catalog.Db.find_exn chain_db t1) "a" in
    Query.with_predicates chain.Datagen.Workload.query
      (Query.Predicate.cmp (Query.Cref.v t1 "a") Rel.Cmp.Le
         (Rel.Value.Int (max 1 (d / 4)))
      :: chain.Datagen.Workload.query.Query.predicates)
  in
  let star =
    (* Keep dimension fan-outs small so the true star result stays
       executable across many seeds. *)
    Datagen.Workload.star ~fact_rows:1000 ~dim_rows_range:(50, 150)
      ~distinct_range:(30, 100) ~seed ~n_dims:3 ()
  in
  [
    (chain_db, chain_query);
    (star.Datagen.Workload.db, star.Datagen.Workload.query);
  ]

let percentile sorted p =
  match sorted with
  | [||] -> nan
  | arr ->
    let n = Array.length arr in
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    arr.(max 0 (min (n - 1) idx))

let run ?(seeds = List.init 8 (fun i -> i + 1)) ?metrics () =
  let algorithms = algorithms () in
  let per_algo = Hashtbl.create 4 in
  let record algo q under =
    let entries = Option.value (Hashtbl.find_opt per_algo algo) ~default:[] in
    Hashtbl.replace per_algo algo ((q, under) :: entries)
  in
  List.iter
    (fun seed ->
      List.iter
        (fun (db, query) ->
          let truth =
            float_of_int
              (Exec.Executor.run_query db query).Exec.Executor.row_count
          in
          List.iter
            (fun config ->
              (* Same path as [Els.estimate]; keeping the profile lets an
                 optional registry absorb its counters. *)
              let profile = Els.prepare config db query in
              let est =
                Els.Incremental.final_size profile query.Query.tables
              in
              Option.iter (fun m -> Obs_report.absorb_profile m profile) metrics;
              record (Els.Config.name config) (q_error ~est ~truth)
                (truth > 0. && est < truth))
            algorithms)
        (workloads seed))
    seeds;
  List.filter_map
    (fun config ->
      let name = Els.Config.name config in
      match Hashtbl.find_opt per_algo name with
      | None | Some [] -> None
      | Some entries ->
        let finite =
          List.filter_map
            (function Finite q, _ -> Some q | (Infinite | Undefined), _ -> None)
            entries
        in
        let count p = List.length (List.filter p entries) in
        let infinite = count (fun (q, _) -> q = Infinite) in
        let undefined = count (fun (q, _) -> q = Undefined) in
        (* Undefined cases (empty truth, NaN) are excluded everywhere:
           percentiles run over the finite q-errors only, the
           underestimation share over queries where est vs truth is
           meaningful. One degenerate query no longer poisons the
           aggregates with NaN. *)
        let defined = List.length finite + infinite in
        let unders = count (fun (q, under) -> q <> Undefined && under) in
        let sorted = Array.of_list finite in
        Array.sort Float.compare sorted;
        let n = Array.length sorted in
        Some
          {
            algorithm = name;
            queries = n;
            median_q = percentile sorted 0.5;
            p90_q = percentile sorted 0.9;
            max_q = (if n = 0 then nan else sorted.(n - 1));
            underestimated =
              (if defined = 0 then 0.
               else float_of_int unders /. float_of_int defined);
            infinite;
            undefined;
          })
    algorithms

let render summaries =
  Report.table
    ~header:
      [
        "algorithm"; "queries"; "median q"; "p90 q"; "max q"; "under-est %";
        "inf"; "undef";
      ]
    (List.map
       (fun s ->
         [
           s.algorithm;
           string_of_int s.queries;
           Report.float_cell s.median_q;
           Report.float_cell s.p90_q;
           Report.float_cell s.max_q;
           Printf.sprintf "%.0f%%" (100. *. s.underestimated);
           string_of_int s.infinite;
           string_of_int s.undefined;
         ])
       summaries)
