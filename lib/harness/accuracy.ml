type summary = {
  algorithm : string;
  queries : int;
  median_q : float;
  p90_q : float;
  max_q : float;
  underestimated : float;
}

let algorithms =
  [ Els.Config.sm ~ptc:true; Els.Config.sss; Els.Config.els ]

let q_error ~est ~truth =
  if truth <= 0. then nan
  else if est <= 0. then Float.infinity
  else Float.max (est /. truth) (truth /. est)

(* One chain and one star specimen per seed; chains get a ~25% local range
   predicate on the first table's join column. *)
let workloads seed =
  let chain =
    Datagen.Workload.chain ~rows_range:(100, 400) ~distinct_range:(20, 120)
      ~seed ~n_tables:4 ()
  in
  let chain_db = chain.Datagen.Workload.db in
  let chain_query =
    let t1 = List.hd chain.Datagen.Workload.query.Query.tables in
    let d = Catalog.Table.distinct (Catalog.Db.find_exn chain_db t1) "a" in
    Query.with_predicates chain.Datagen.Workload.query
      (Query.Predicate.cmp (Query.Cref.v t1 "a") Rel.Cmp.Le
         (Rel.Value.Int (max 1 (d / 4)))
      :: chain.Datagen.Workload.query.Query.predicates)
  in
  let star =
    (* Keep dimension fan-outs small so the true star result stays
       executable across many seeds. *)
    Datagen.Workload.star ~fact_rows:1000 ~dim_rows_range:(50, 150)
      ~distinct_range:(30, 100) ~seed ~n_dims:3 ()
  in
  [
    (chain_db, chain_query);
    (star.Datagen.Workload.db, star.Datagen.Workload.query);
  ]

let percentile sorted p =
  match sorted with
  | [||] -> nan
  | arr ->
    let n = Array.length arr in
    let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
    arr.(max 0 (min (n - 1) idx))

let run ?(seeds = List.init 8 (fun i -> i + 1)) () =
  let per_algo = Hashtbl.create 4 in
  let record algo q under =
    let qs, unders =
      Option.value (Hashtbl.find_opt per_algo algo) ~default:([], 0)
    in
    Hashtbl.replace per_algo algo (q :: qs, unders + if under then 1 else 0)
  in
  List.iter
    (fun seed ->
      List.iter
        (fun (db, query) ->
          let truth =
            float_of_int
              (Exec.Executor.run_query db query).Exec.Executor.row_count
          in
          if truth > 0. then
            List.iter
              (fun config ->
                let est = Els.estimate config db query query.Query.tables in
                record (Els.Config.name config) (q_error ~est ~truth)
                  (est < truth))
              algorithms)
        (workloads seed))
    seeds;
  List.filter_map
    (fun config ->
      let name = Els.Config.name config in
      match Hashtbl.find_opt per_algo name with
      | None | Some ([], _) -> None
      | Some (qs, unders) ->
        let sorted = Array.of_list qs in
        Array.sort Float.compare sorted;
        let n = Array.length sorted in
        Some
          {
            algorithm = name;
            queries = n;
            median_q = percentile sorted 0.5;
            p90_q = percentile sorted 0.9;
            max_q = sorted.(n - 1);
            underestimated = float_of_int unders /. float_of_int n;
          })
    algorithms

let render summaries =
  Report.table
    ~header:
      [ "algorithm"; "queries"; "median q"; "p90 q"; "max q"; "under-est %" ]
    (List.map
       (fun s ->
         [
           s.algorithm;
           string_of_int s.queries;
           Report.float_cell s.median_q;
           Report.float_cell s.p90_q;
           Report.float_cell s.max_q;
           Printf.sprintf "%.0f%%" (100. *. s.underestimated);
         ])
       summaries)
