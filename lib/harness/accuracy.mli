(** Supplementary figure F6: q-error study.

    The q-error of an estimate — [max(est/true, true/est)], the standard
    metric of modern cardinality-estimation work — summarizes how far each
    algorithm's final join-size estimate lands from the executed truth
    over a mixed workload of random chain and star queries, with and
    without local predicates. Reported per algorithm: median, 90th
    percentile and maximum q-error, plus the underestimation share. *)

type summary = {
  algorithm : string;
  queries : int;
  median_q : float;
  p90_q : float;
  max_q : float;
  underestimated : float;  (** fraction of queries with est < true *)
}

val run : ?seeds:int list -> unit -> summary list
(** Each seed contributes one chain (4 tables, with a local predicate) and
    one star (3 dimensions) query. Queries with an empty true result are
    skipped. Defaults: seeds [1..8]. *)

val render : summary list -> string
