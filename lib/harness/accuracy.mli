(** Supplementary figure F6: q-error study.

    The q-error of an estimate — [max(est/true, true/est)], the standard
    metric of modern cardinality-estimation work — summarizes how far each
    algorithm's final join-size estimate lands from the executed truth
    over a mixed workload of random chain and star queries, with and
    without local predicates. Reported per algorithm: median, 90th
    percentile and maximum q-error, plus the underestimation share. *)

type q_error =
  | Finite of float  (** [max(est/true, true/est)], both sides positive *)
  | Infinite  (** positive truth but a zero (or infinite) estimate *)
  | Undefined  (** empty true result, or a NaN input: no meaningful ratio *)
(** The q-error of a single estimate. The metric is undefined at zero
    truth and infinite at zero estimate; both cases are explicit variants
    rather than [nan]/[infinity] sentinels so aggregation can skip them
    instead of silently poisoning every percentile. *)

val q_error : est:float -> truth:float -> q_error

type summary = {
  algorithm : string;
  queries : int;  (** queries with a finite q-error *)
  median_q : float;
  p90_q : float;
  max_q : float;
  underestimated : float;
      (** fraction of defined (non-[Undefined]) queries with est < true *)
  infinite : int;  (** queries whose q-error was {!Infinite} *)
  undefined : int;  (** queries skipped as {!Undefined} *)
}
(** Percentiles are computed over the finite q-errors only; the skipped
    cases are counted, not folded into the statistics. *)

val run : ?seeds:int list -> ?metrics:Obs.Metrics.t -> unit -> summary list
(** Each seed contributes one chain (4 tables, with a local predicate) and
    one star (3 dimensions) query. Defaults: seeds [1..8]. [metrics]
    absorbs every built profile's cache/guard/validation counters
    (see {!Obs_report.absorb_profile}); passing it never changes any
    estimate. *)

val render : summary list -> string
