type row = {
  scenario : string;
  estimator : string;
  estimate : float;
  truth : float;
  q : Accuracy.q_error;
}

(* Three workload families where the degree-statistics estimators are
   interesting:
   - a key-join chain (distinct = rows): every degree is 1, so the
     Lp-norm caps coincide with min-rows and bound the truth tightly;
   - a skewed star (Zipf fact keys): heavy hitters break the uniform
     model, which is exactly what the tracked top-k degrees and the L2/L∞
     norms see;
   - the paper's Section 8 workload, for continuity with T1/F10.
   All three produce non-empty results by construction (key domains are
   contained, the Section 8 restriction keeps at least one row at every
   scale), so every q-error is expected to be finite. *)
let scenarios ~scale ~seed =
  [
    ( "key-chain",
      Datagen.Workload.chain ~rows_range:(200, 800)
        ~distinct_range:(10_000, 10_000) ~seed ~n_tables:3 () );
    ( "skew-star",
      Datagen.Workload.star ~fact_rows:2000 ~dim_rows_range:(50, 200)
        ~distinct_range:(20, 50)
        ~distribution:(Datagen.Distribution.Zipf 1.2)
        ~seed:(seed + 1) ~n_dims:2 () );
    ( "section8",
      {
        Datagen.Workload.db = Datagen.Section8.build ~scale ~seed:(seed + 2) ();
        query = Datagen.Section8.query_scaled ~scale;
        true_size = None;
      } );
  ]

let run ?(scale = 10) ?(seed = 42) () =
  List.concat_map
    (fun (scenario, spec) ->
      let db = spec.Datagen.Workload.db in
      let query = spec.Datagen.Workload.query in
      let order = query.Query.tables in
      let truth =
        float_of_int
          (Exec.Executor.run_query db query).Exec.Executor.row_count
      in
      List.map
        (fun est ->
          let config = Els.Config.of_estimator est in
          let estimates = Els.intermediate_sizes config db query order in
          let estimate =
            match List.rev estimates with last :: _ -> last | [] -> 0.
          in
          {
            scenario;
            estimator = Els.Estimator.label est;
            estimate;
            truth;
            q = Accuracy.q_error ~est:estimate ~truth;
          })
        (Els.Estimator.registry ()))
    (scenarios ~scale ~seed)

let pass rows =
  rows <> []
  && List.for_all
       (fun r -> match r.q with Accuracy.Finite _ -> true | _ -> false)
       rows

let q_cell = function
  | Accuracy.Finite q -> Report.float_cell q
  | Accuracy.Infinite -> "inf"
  | Accuracy.Undefined -> "undef"

let render rows =
  Report.table
    ~header:[ "Scenario"; "Estimator"; "Estimate"; "True"; "q-error" ]
    (List.map
       (fun r ->
         [
           r.scenario;
           r.estimator;
           Report.float_cell r.estimate;
           Report.float_cell r.truth;
           q_cell r.q;
         ])
       rows)
