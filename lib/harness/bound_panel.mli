(** Experiment F16: the degree-statistics estimator family vs executed
    truth.

    ANALYZE collects per-column degree sequences ({!Stats.Degree}); the
    registered estimators [lp2], [degseq] and [ent] turn them into
    per-step join-size caps, with [pess] as their degree-1 degenerate
    form. This panel crosses three workload families — a key-join chain
    (all degrees 1, caps tight), a Zipf-skewed star (heavy hitters, where
    the uniform model breaks) and the paper's Section 8 workload — with
    {e every} estimator in the core registry, reporting the final
    estimate, the executed true size and the q-error.

    All scenarios produce non-empty results by construction, so a sound
    estimator yields a finite q-error on every row — CI asserts exactly
    {!pass}. *)

type row = {
  scenario : string;  (** "key-chain", "skew-star" or "section8" *)
  estimator : string;  (** {!Els.Estimator.label} *)
  estimate : float;  (** final join-size estimate *)
  truth : float;  (** executed true size *)
  q : Accuracy.q_error;
}

val run : ?scale:int -> ?seed:int -> unit -> row list
(** [scale] (default 10) shrinks the Section 8 scenario as in
    {!Section8_experiment.run}; the generated scenarios are fixed-size.
    Default seed 42; each scenario derives its own sub-seed. *)

val pass : row list -> bool
(** True when the panel is non-empty and every q-error is finite. *)

val render : row list -> string
