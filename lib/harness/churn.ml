type summary = {
  iterations : int;
  seed : int;
  inserts : int;
  deletes : int;
  reanalyzes : int;
  sharded_reanalyzes : int;
  corruptions : int;
  publishes : int;
  epoch_regressions : int;
  pinned_checks : int;
  pinned_divergences : int;
  annotated_cards : int;
  missing_annotations : int;
  q_checks : int;
  median_q_error : float;
  q_tolerance : float;
  crashes : int;
  first_failure : string option;
  store : Catalog.Store.counters;
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot;
}

let tables = [ "t1"; "t2"; "t3" ]

(* Corruption kinds that a *stats-only* staged table can actually exhibit:
   the data-dependent kinds (stale row counts against stored data) have
   nothing to disagree with once the relation is stripped. *)
let staged_corruptions =
  [
    Fault.Negative_rows; Fault.Distinct_exceeds_rows; Fault.Nan_histogram;
    Fault.Shuffled_histogram; Fault.Mcv_overflow; Fault.Inverted_bounds;
    Fault.Torn_merge; Fault.Drift_beyond_threshold;
  ]

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let median = function
  | [] -> 1.
  | xs ->
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2)
    else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.

let run ?(seed = 1) ?(q_tolerance = 3.) ~iters () =
  let rng = Rel.Prng.create seed in
  let t_start = Unix.gettimeofday () in
  let db = Fault.base_db () in
  let store =
    Catalog.Store.create ~strictness:Catalog.Validate.Repair
      ~histogram:Stats.Histogram.Equi_depth ~mcv:5 db
  in
  let config =
    Els.Config.with_strictness Catalog.Validate.Repair Els.Config.els
  in
  let query =
    match Sqlfront.Binder.compile_result db Fault.default_sql with
    | Ok q -> q
    | Error e ->
      invalid_arg ("Churn.run: default query rejected: "
                   ^ Els.Els_error.to_string e)
  in
  let order = tables in
  let metrics = Obs.Metrics.create () in
  let inserts = ref 0 and deletes = ref 0 in
  let reanalyzes = ref 0 and sharded = ref 0 in
  let corruptions = ref 0 and publishes = ref 0 in
  let epoch_regressions = ref 0 in
  let pinned_checks = ref 0 and pinned_divergences = ref 0 in
  let annotated_cards = ref 0 and missing_annotations = ref 0 in
  let q_errors = ref [] in
  let crashes = ref 0 in
  let first_failure = ref None in
  let fail iter scenario what =
    if !first_failure = None then
      first_failure :=
        Some
          (Printf.sprintf
             "iter %d | %s | %s | repro: elsdb churn --seed %d --iters %d"
             iter what scenario seed iter)
  in
  let estimate_epoch ?sink epoch =
    let profile = Els.prepare_epoch config epoch query in
    (match sink with
    | Some d -> Els.Profile.set_derivation profile (Some d)
    | None -> ());
    let size = Els.Incremental.final_size profile order in
    Els.Profile.set_derivation profile None;
    Obs_report.absorb_profile metrics profile;
    size
  in
  (* The drift baseline: what this estimate would be if every table were
     bulk-ANALYZEd from the live data right now, same options, same
     config, same order. *)
  let baseline_estimate () =
    let fresh = Catalog.Db.create () in
    List.iter
      (fun name ->
        ignore
          (Catalog.Analyze.register ~histogram:Stats.Histogram.Equi_depth
             ~mcv:5 fresh ~name
             (Catalog.Store.live store ~table:name)
            : Catalog.Table.t))
      tables;
    Els.estimate config fresh query order
  in
  (* Publish with the torn-read probe wrapped around it: the estimate from
     the previously pinned epoch must be bit-identical after the swap. *)
  let publish_checked iter scenario =
    let pinned = Catalog.Store.pin store in
    let before = estimate_epoch pinned in
    incr pinned_checks;
    (match Catalog.Store.publish store with
    | Ok next ->
      incr publishes;
      if Catalog.Epoch.id next <= Catalog.Epoch.id pinned then begin
        incr epoch_regressions;
        fail iter scenario
          (Printf.sprintf "epoch id regressed (%d after %d)"
             (Catalog.Epoch.id next) (Catalog.Epoch.id pinned))
      end
    | Error _ ->
      (* Only the Strict hard-fallback rung refuses; this store runs
         Repair, so a refusal here is an assertion failure. *)
      fail iter scenario "publish refused under Repair strictness");
    let after = estimate_epoch pinned in
    if not (Float.equal before after) then begin
      incr pinned_divergences;
      fail iter scenario
        (Printf.sprintf "torn read: pinned estimate %h became %h" before
           after)
    end
  in
  let random_rows st n =
    (* Rows in the generator's value domains, so inserts look like organic
       growth rather than outliers. *)
    List.init n (fun _ ->
        [
          Rel.Value.Int (Rel.Prng.int_in st 1 80);
          Rel.Value.Int (Rel.Prng.int_in st 1 50);
        ])
  in
  for iter = 1 to iters do
    let table = List.nth tables (Rel.Prng.int rng (List.length tables)) in
    let op = Rel.Prng.int rng 5 in
    let live_rows =
      Rel.Relation.cardinality (Catalog.Store.live store ~table)
    in
    (* Deleting from a table that churned small would drain it; grow it
       back instead so estimates keep meaning something. *)
    let op = if op = 1 && live_rows < 50 then 0 else op in
    let scenario =
      match op with
      | 0 -> Printf.sprintf "insert %s" table
      | 1 -> Printf.sprintf "delete %s" table
      | 2 -> Printf.sprintf "reanalyze %s" table
      | 3 -> Printf.sprintf "corrupt+publish %s" table
      | _ -> "publish"
    in
    match
      (match op with
      | 0 ->
        let n = Rel.Prng.int_in rng 1 30 in
        Catalog.Store.insert store ~table (random_rows rng n);
        inserts := !inserts + n
      | 1 ->
        let n = Rel.Prng.int_in rng 1 20 in
        let indices =
          List.init n (fun _ -> Rel.Prng.int rng (max 1 live_rows))
        in
        Catalog.Store.delete store ~table ~indices;
        deletes := !deletes + List.length (List.sort_uniq Int.compare indices)
      | 2 ->
        let shards = Rel.Prng.int_in rng 1 4 in
        Catalog.Store.reanalyze ~shards store ~table;
        incr reanalyzes;
        if shards > 1 then incr sharded;
        publish_checked iter scenario
      | 3 ->
        let kind =
          List.nth staged_corruptions
            (Rel.Prng.int rng (List.length staged_corruptions))
        in
        Catalog.Store.corrupt_staged store ~table
          (Fault.corrupt_table kind);
        incr corruptions;
        publish_checked iter scenario;
        (* The degradation must be visible end to end: the epoch carries
           the staleness note and a derivation card prepared against it
           prints it. *)
        let epoch = Catalog.Store.pin store in
        if
          List.for_all
            (fun t -> Catalog.Epoch.annotations_for epoch t = [])
            tables
        then begin
          incr missing_annotations;
          fail iter scenario "corrupted publish left no epoch annotation"
        end
        else begin
          let sink = Obs.Derivation.create () in
          ignore (estimate_epoch ~sink epoch : float);
          let card = Format.asprintf "%a" Obs.Derivation.pp_card sink in
          if contains card "note:" then incr annotated_cards
          else begin
            incr missing_annotations;
            fail iter scenario "derivation card missing the staleness note"
          end
        end
      | _ -> publish_checked iter scenario);
      (* Drift probe: the published epoch vs a fresh bulk ANALYZE. *)
      let est = estimate_epoch (Catalog.Store.pin store) in
      let base = baseline_estimate () in
      match Accuracy.q_error ~est ~truth:base with
      | Accuracy.Finite q -> q_errors := q :: !q_errors
      | Accuracy.Infinite | Accuracy.Undefined ->
        (* Zero-vs-nonzero estimates under churn: record the worst finite
           bucket so the median still feels it. *)
        q_errors := (q_tolerance *. 10.) :: !q_errors
    with
    | () -> ()
    | exception exn ->
      incr crashes;
      fail iter scenario ("crash: " ^ Printexc.to_string exn)
  done;
  Obs_report.absorb_store metrics store;
  {
    iterations = iters;
    seed;
    inserts = !inserts;
    deletes = !deletes;
    reanalyzes = !reanalyzes;
    sharded_reanalyzes = !sharded;
    corruptions = !corruptions;
    publishes = !publishes;
    epoch_regressions = !epoch_regressions;
    pinned_checks = !pinned_checks;
    pinned_divergences = !pinned_divergences;
    annotated_cards = !annotated_cards;
    missing_annotations = !missing_annotations;
    q_checks = List.length !q_errors;
    median_q_error = median !q_errors;
    q_tolerance;
    crashes = !crashes;
    first_failure = !first_failure;
    store = Catalog.Store.stats store;
    elapsed_s = Unix.gettimeofday () -. t_start;
    metrics = Obs.Metrics.snapshot metrics;
  }

let pass s =
  s.crashes = 0 && s.epoch_regressions = 0 && s.pinned_divergences = 0
  && s.missing_annotations = 0
  && s.median_q_error <= s.q_tolerance
  && (s.corruptions = 0 || s.store.Catalog.Store.audits_failed > 0)

let render s =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt
  in
  line "churn: %d iterations (seed %d) in %.2fs" s.iterations s.seed
    s.elapsed_s;
  line "  streamed:              +%d / -%d rows" s.inserts s.deletes;
  line "  re-analyzes:           %d (%d partitioned)" s.reanalyzes
    s.sharded_reanalyzes;
  line "  publishes:             %d (epoch %d, %d regressions)" s.publishes
    s.store.Catalog.Store.epoch s.epoch_regressions;
  line "  pinned readers:        %d checks, %d torn reads" s.pinned_checks
    s.pinned_divergences;
  line "  corruptions:           %d injected" s.corruptions;
  line "  quarantine ladder:     %d failed audits, %d quarantines, %d stale \
        served, %d retries (%d recovered), %d hard fallbacks"
    s.store.Catalog.Store.audits_failed s.store.Catalog.Store.quarantines
    s.store.Catalog.Store.stale_served s.store.Catalog.Store.retries
    s.store.Catalog.Store.retry_successes
    s.store.Catalog.Store.hard_fallbacks;
  line "  staleness disclosure:  %d annotated cards, %d missing"
    s.annotated_cards s.missing_annotations;
  line "  drift:                 median q-error %.3f over %d checks \
        (tolerance %.1f)"
    s.median_q_error s.q_checks s.q_tolerance;
  line "  crashes:               %d%s" s.crashes
    (match s.first_failure with
    | Some msg -> Printf.sprintf "  (first failure: %s)" msg
    | None -> "");
  if not (Obs.Metrics.is_empty s.metrics) then begin
    line "  metrics:";
    List.iter
      (fun l -> if not (String.equal l "") then line "    %s" l)
      (String.split_on_char '\n'
         (Format.asprintf "%a" Obs.Metrics.pp s.metrics))
  end;
  line "churn: %s" (if pass s then "PASS" else "FAIL");
  Buffer.contents b
