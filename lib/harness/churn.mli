(** Experiment F13: catalog churn soak.

    Drives a {!Catalog.Store} through a randomized schedule of insert
    batches, delete batches, bulk and partitioned re-ANALYZEs, staged-
    statistics corruptions and epoch publishes, estimating the F9 chain
    query against pinned epochs throughout, and asserts the versioned-
    catalog contract:

    - {e no crashes}: every operation either succeeds or refuses with a
      structured error;
    - {e no torn reads}: an estimate prepared against a pinned epoch is
      bit-identical before and after any subsequent publish;
    - {e monotone epochs}: every successful publish strictly increases
      the epoch id;
    - {e visible degradation}: a corrupted publish quarantines the table
      (or hard-falls-back), the counters show it, and a derivation card
      prepared against the stale epoch carries the staleness note;
    - {e bounded drift}: the median q-error of epoch estimates against a
      fresh bulk-ANALYZE baseline over the live data stays within the
      stated tolerance (default 3.0).

    Deterministic given [seed]; any failure report carries the iteration,
    the scenario line and the one-command repro. *)

type summary = {
  iterations : int;
  seed : int;
  inserts : int;  (** rows streamed in *)
  deletes : int;  (** rows streamed out *)
  reanalyzes : int;  (** of which [sharded_reanalyzes] used partitions *)
  sharded_reanalyzes : int;
  corruptions : int;  (** staged-statistics corruptions injected *)
  publishes : int;  (** successful epoch swaps *)
  epoch_regressions : int;  (** non-monotone epoch ids — failure *)
  pinned_checks : int;
  pinned_divergences : int;  (** torn reads — failure *)
  annotated_cards : int;
      (** derivation cards that carried the staleness note after a
          corrupted publish *)
  missing_annotations : int;
      (** corrupted publishes whose epoch or card lacked the note —
          failure *)
  q_checks : int;
  median_q_error : float;
      (** median q-error of epoch estimates vs the fresh bulk-ANALYZE
          baseline; 1.0 when no checks ran *)
  q_tolerance : float;
  crashes : int;
  first_failure : string option;
      (** iteration, scenario and repro command of the first failed
          assertion or crash *)
  store : Catalog.Store.counters;  (** lifecycle counters at end of run *)
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot;
      (** profile/guard/catalog metrics plus the ["store.*"] lifecycle
          counters and per-table drift gauges via
          {!Obs_report.absorb_store} *)
}

val run : ?seed:int -> ?q_tolerance:float -> iters:int -> unit -> summary
(** Defaults: seed 1, q-error tolerance 3.0. Deterministic given [seed]:
    re-running with [iters] set to a failure's iteration replays the run
    up to exactly that failure. *)

val pass : summary -> bool
(** Zero crashes, epoch regressions, torn reads and missing annotations;
    when corruptions were injected the store must show failed audits; the
    median q-error must be within tolerance. *)

val render : summary -> string
