type row = {
  seed : int;
  enumerator : string;
  optimize_s : float;
  estimated_cost : float;
  work : int;
}

let enumerators =
  [
    ("DP", Optimizer.Exhaustive);
    ("greedy", Optimizer.Greedy_order);
    ("random", Optimizer.Randomized 99);
  ]

let run ?(seeds = List.init 5 (fun i -> i + 1)) ?(n_tables = 7) () =
  List.concat_map
    (fun seed ->
      let spec =
        Datagen.Workload.chain ~rows_range:(100, 500)
          ~distinct_range:(20, 200) ~seed ~n_tables ()
      in
      let db = spec.Datagen.Workload.db in
      let query = spec.Datagen.Workload.query in
      List.map
        (fun (name, enumerator) ->
          let t0 = Unix.gettimeofday () in
          let choice = Optimizer.choose ~enumerator Els.Config.els db query in
          let optimize_s = Unix.gettimeofday () -. t0 in
          let _, counters, _ = Exec.Executor.count db choice.Optimizer.plan in
          {
            seed;
            enumerator = name;
            optimize_s;
            estimated_cost = choice.Optimizer.estimated_cost;
            work = Exec.Counters.total_work counters;
          })
        enumerators)
    seeds

let render rows =
  Report.table
    ~header:[ "seed"; "enumerator"; "optimize (ms)"; "est. cost"; "executed work" ]
    (List.map
       (fun r ->
         [
           string_of_int r.seed;
           r.enumerator;
           Printf.sprintf "%.2f" (1000. *. r.optimize_s);
           Report.float_cell r.estimated_cost;
           string_of_int r.work;
         ])
       rows)
