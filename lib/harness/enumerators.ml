type row = {
  seed : int;
  enumerator : string;
  optimize_s : float;
  estimated_cost : float;
  work : int;
  cache_hits : int;
  cache_misses : int;
  scans_avoided : int;
}

let enumerators =
  [
    ("DP", Optimizer.Exhaustive);
    ("greedy", Optimizer.Greedy_order);
    ("random", Optimizer.Randomized 99);
  ]

let run ?(seeds = List.init 5 (fun i -> i + 1)) ?(n_tables = 7) () =
  List.concat_map
    (fun seed ->
      let spec =
        Datagen.Workload.chain ~rows_range:(100, 500)
          ~distinct_range:(20, 200) ~seed ~n_tables ()
      in
      let db = spec.Datagen.Workload.db in
      let query = spec.Datagen.Workload.query in
      List.map
        (fun (name, enumerator) ->
          let t0 = Unix.gettimeofday () in
          let choice = Optimizer.choose ~enumerator Els.Config.els db query in
          let optimize_s = Unix.gettimeofday () -. t0 in
          let stats = Els.Profile.cache_stats choice.Optimizer.profile in
          let _, counters, _ = Exec.Executor.count db choice.Optimizer.plan in
          {
            seed;
            enumerator = name;
            optimize_s;
            estimated_cost = choice.Optimizer.estimated_cost;
            work = Exec.Counters.total_work counters;
            cache_hits =
              stats.Els.Profile.sel_hits + stats.Els.Profile.group_hits;
            cache_misses =
              stats.Els.Profile.sel_misses + stats.Els.Profile.group_misses;
            scans_avoided = stats.Els.Profile.scans_avoided;
          })
        enumerators)
    seeds

let render rows =
  Report.table
    ~header:
      [
        "seed"; "enumerator"; "optimize (ms)"; "est. cost"; "executed work";
        "cache hit/miss"; "scans avoided";
      ]
    (List.map
       (fun r ->
         [
           string_of_int r.seed;
           r.enumerator;
           Printf.sprintf "%.2f" (1000. *. r.optimize_s);
           Report.float_cell r.estimated_cost;
           string_of_int r.work;
           Printf.sprintf "%d/%d" r.cache_hits r.cache_misses;
           string_of_int r.scans_avoided;
         ])
       rows)
