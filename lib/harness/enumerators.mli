(** Supplementary figure F5: join-order enumerators compared.

    The paper's estimation algorithm is enumerator-agnostic — it cites
    dynamic programming [13], the polynomial AB algorithm [15] and
    randomized optimizers [14] as consumers of incremental estimates. This
    experiment runs all three enumerators of this repository (exhaustive
    DP, greedy, randomized iterative improvement) under ELS estimates on
    random chain queries, comparing optimization time, estimated plan cost
    and executed work. *)

type row = {
  seed : int;
  enumerator : string;
  optimize_s : float;  (** wall-clock seconds spent choosing the plan *)
  estimated_cost : float;
  work : int;  (** executed work of the chosen plan *)
  cache_hits : int;
      (** profile selectivity-cache hits (join + class) during enumeration *)
  cache_misses : int;
  scans_avoided : int;
      (** predicates skipped by index probes vs full conjunction scans *)
}

val run :
  ?seeds:int list -> ?n_tables:int -> unit -> row list
(** Defaults: seeds [1..5], 7 tables (large enough that DP's 2ⁿ starts to
    cost something while greedy stays linear-ish). *)

val render : row list -> string
