type point = {
  n_tables : int;
  rule : string;
  geo_mean_ratio : float;
  worst_ratio : float;
}

(* One row per registered estimator, labeled by {!Els.Estimator.label} so
   report names can never drift from the core. The study measures rule
   behavior on the closed (redundant) predicate set, so closure is forced
   on regardless of the estimator's canonical flags — an estimator that
   skips PTC would not see the redundancy this figure is about. *)
let configs () =
  List.map
    (fun est ->
      ( Els.Estimator.label est,
        { (Els.Config.of_estimator est) with Els.Config.closure = true } ))
    (Els.Estimator.registry ())

let run ?(seeds = List.init 10 (fun i -> i + 1)) ?(max_tables = 7) () =
  let configs = configs () in
  let points = ref [] in
  for n_tables = 2 to max_tables do
    (* Per rule, collect the estimate/true ratios over all seeds. *)
    let ratios = Hashtbl.create 4 in
    List.iter
      (fun seed ->
        let spec =
          (* Keep distinct counts high relative to rows so true sizes stay
             executable out to 7-way joins. *)
          Datagen.Workload.chain ~rows_range:(100, 600)
            ~distinct_range:(50, 400) ~seed ~n_tables ()
        in
        let truth =
          (Exec.Executor.run_query spec.Datagen.Workload.db
             spec.Datagen.Workload.query)
            .Exec.Executor.row_count
        in
        if truth > 0 then
          List.iter
            (fun (rule, config) ->
              let est =
                Els.estimate config spec.Datagen.Workload.db
                  spec.Datagen.Workload.query
                  spec.Datagen.Workload.query.Query.tables
              in
              let ratio = est /. float_of_int truth in
              let existing =
                Option.value (Hashtbl.find_opt ratios rule) ~default:[]
              in
              Hashtbl.replace ratios rule (ratio :: existing))
            configs)
      seeds;
    List.iter
      (fun (rule, _) ->
        match Hashtbl.find_opt ratios rule with
        | None | Some [] -> ()
        | Some rs ->
          let logs = List.map Float.log rs in
          let geo =
            Float.exp
              (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))
          in
          let worst = List.fold_left Float.min Float.infinity rs in
          points :=
            { n_tables; rule; geo_mean_ratio = geo; worst_ratio = worst }
            :: !points)
      configs
  done;
  List.rev !points

let render points =
  Report.table
    ~header:[ "#tables"; "rule"; "geo-mean est/true"; "worst est/true" ]
    (List.map
       (fun p ->
         [
           string_of_int p.n_tables;
           p.rule;
           Report.float_cell p.geo_mean_ratio;
           Report.float_cell p.worst_ratio;
         ])
       points)
