(** Supplementary figure F1: estimation error vs number of joins.

    The paper motivates consistent incremental estimation by the error
    blow-up of Rule M/SS on redundant (transitively closed) predicate sets;
    Ioannidis & Christodoulakis (cited as [4]) studied exactly this error
    propagation in single-equivalence-class queries. This experiment
    regenerates the figure on synthetic data: random chain queries of
    n = 2..max_tables tables whose join columns all fall into one
    equivalence class after closure; for each rule, the estimate along the
    FROM order is compared with the true (executed) size.

    The reported metric per (rule, n) is the geometric mean of
    [estimate / true] over the seeds — 1.0 means exact, values << 1 mean
    underestimation. *)

type point = {
  n_tables : int;
  rule : string;  (** the estimator's {!Els.Estimator.label} *)
  geo_mean_ratio : float;  (** geometric mean of estimate / true *)
  worst_ratio : float;  (** most extreme underestimate *)
}

val run :
  ?seeds:int list -> ?max_tables:int -> unit -> point list
(** One row per registered estimator ({!Els.Estimator.registry}) and table
    count, each run with predicate transitive closure forced on (the study
    is about redundant predicate sets). Defaults: seeds [1..10],
    max_tables 7. Points are ordered by (n_tables, registry order). Trials
    whose true size is 0 are skipped. *)

val render : point list -> string
