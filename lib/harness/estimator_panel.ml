type row = {
  estimator : string;
  algorithm : string;
  join_order : string list;
  estimates : float list;
  truth : float;
  q : Accuracy.q_error;
}

let run ?(scale = 10) ?(seed = 42) () =
  let db = Datagen.Section8.build ~scale ~seed () in
  let query = Datagen.Section8.query_scaled ~scale in
  let order = query.Query.tables in
  let truth =
    float_of_int (Exec.Executor.run_query db query).Exec.Executor.row_count
  in
  List.map
    (fun est ->
      let config = Els.Config.of_estimator est in
      let estimates = Els.intermediate_sizes config db query order in
      let final =
        match List.rev estimates with last :: _ -> last | [] -> 0.
      in
      {
        estimator = Els.Estimator.label est;
        algorithm = Els.Config.name config;
        join_order = order;
        estimates;
        truth;
        q = Accuracy.q_error ~est:final ~truth;
      })
    (Els.Estimator.registry ())

let q_cell = function
  | Accuracy.Finite q -> Report.float_cell q
  | Accuracy.Infinite -> "inf"
  | Accuracy.Undefined -> "undef"

let render rows =
  Report.table
    ~header:
      [ "Estimator"; "Algorithm"; "Join Order"; "Estimated Sizes"; "True";
        "q-error" ]
    (List.map
       (fun r ->
         [
           r.estimator;
           r.algorithm;
           String.concat " ⋈ " r.join_order;
           Report.size_list r.estimates;
           Report.float_cell r.truth;
           q_cell r.q;
         ])
       rows)
