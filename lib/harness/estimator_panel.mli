(** Experiment F10: side-by-side estimator comparison.

    One row per registered estimator ({!Els.Estimator.registry}), each
    under its canonical configuration ({!Els.Config.of_estimator}), run
    over the Section 8 workload along the query's FROM order: the
    intermediate size estimates, the executed true size, and the final
    q-error. The rows come straight from the registry, so a newly
    registered estimator shows up in this panel (and in the CLI's
    [--estimator] choices) without any harness change — the point of the
    estimator seam. *)

type row = {
  estimator : string;  (** {!Els.Estimator.label} *)
  algorithm : string;  (** {!Els.Config.name} of the canonical config *)
  join_order : string list;
  estimates : float list;  (** size after each join of the order *)
  truth : float;  (** executed final size *)
  q : Accuracy.q_error;  (** of the final estimate *)
}

val run : ?scale:int -> ?seed:int -> unit -> row list
(** Defaults: scale 10, seed 42 (the Section 8 catalog is scaled up so
    the executed truth is non-trivial but fast). *)

val render : row list -> string
