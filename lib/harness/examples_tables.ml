(* Machine-checked renderings of the paper's worked examples (E1b, E2, E3,
   S5, S6) for the bench harness and EXPERIMENTS.md. *)

let stats_table name rows cols =
  let schema =
    Rel.Schema.make
      (List.map
         (fun (c, _) -> Rel.Schema.column ~table:name ~name:c Rel.Value.Ty_int)
         cols)
  in
  Catalog.Table.stats_only ~name ~schema ~row_count:rows
    ~column_stats:
      (List.map
         (fun (c, d) -> (c, Stats.Col_stats.trivial ~distinct:d))
         cols)

let example1_db () =
  let db = Catalog.Db.create () in
  List.iter (Catalog.Db.add db)
    [
      stats_table "r1" 100 [ ("x", 10) ];
      stats_table "r2" 1000 [ ("y", 100) ];
      stats_table "r3" 1000 [ ("z", 1000) ];
    ];
  db

let example1_query () =
  Query.make
    ~tables:[ "r1"; "r2"; "r3" ]
    [
      Query.Predicate.col_eq (Query.Cref.v "r1" "x") (Query.Cref.v "r2" "y");
      Query.Predicate.col_eq (Query.Cref.v "r2" "y") (Query.Cref.v "r3" "z");
    ]

(* Examples 1b/2/3: the three rules on the join order (R2 ⋈ R3) ⋈ R1.
   Returns (rule, estimate, paper value, correct value) rows. *)
let rules_table () =
  let db = example1_db () in
  let q = example1_query () in
  let order = [ "r2"; "r3"; "r1" ] in
  let run config =
    Els.Incremental.final_size (Els.prepare config db q) order
  in
  [
    ("Rule M (Algorithm SM)", run (Els.Config.sm ~ptc:true), 1., 1000.);
    ("Rule SS (Algorithm SSS)", run Els.Config.sss, 100., 1000.);
    ("Rule LS (Algorithm ELS)", run Els.Config.els, 1000., 1000.);
  ]

let render_rules_table () =
  Report.table
    ~header:[ "Rule"; "Estimate"; "Paper"; "Correct" ]
    (List.map
       (fun (rule, est, paper, correct) ->
         [
           rule; Report.float_cell est; Report.float_cell paper;
           Report.float_cell correct;
         ])
       (rules_table ()))

(* Section 5's urn-model numeric example:
   (‖R‖', urn estimate, paper urn value, linear estimate). *)
let urn_table () =
  let d_x = 10000 in
  let r = 100000 in
  List.map
    (fun r' ->
      let urn = Stats.Urn.expected_distinct_int ~urns:d_x ~balls:r' in
      let linear =
        float_of_int d_x *. (float_of_int r' /. float_of_int r)
      in
      (r', urn, linear))
    [ 50000; 100000 ]

let render_urn_table () =
  Report.table
    ~header:[ "‖R‖'"; "urn d'_x"; "linear d'_x" ]
    (List.map
       (fun (r', urn, linear) ->
         [ string_of_int r'; string_of_int urn; Report.float_cell linear ])
       (urn_table ()))

(* Section 6's single-table example: effective table and column
   cardinality of R2 under (R1.x = R2.y) AND (R1.x = R2.w). *)
let single_table_numbers () =
  let db = Catalog.Db.create () in
  List.iter (Catalog.Db.add db)
    [
      stats_table "r1" 100 [ ("x", 100) ];
      stats_table "r2" 1000 [ ("y", 10); ("w", 50) ];
    ];
  let q =
    Query.make ~tables:[ "r1"; "r2" ]
      [
        Query.Predicate.col_eq (Query.Cref.v "r1" "x") (Query.Cref.v "r2" "y");
        Query.Predicate.col_eq (Query.Cref.v "r1" "x") (Query.Cref.v "r2" "w");
      ]
  in
  let profile = Els.prepare Els.Config.els db q in
  let r2 = Els.Profile.table profile "r2" in
  (r2.Els.Profile.rows, Els.Profile.join_card profile (Query.Cref.v "r2" "y"))

let render_single_table () =
  let rows, card = single_table_numbers () in
  Report.table
    ~header:[ "Quantity"; "Ours"; "Paper" ]
    [
      [ "‖R2‖'"; Report.float_cell rows; "20" ];
      [ "effective join cardinality"; Report.float_cell card; "9" ];
    ]
