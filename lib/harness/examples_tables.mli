(** Machine-checked renderings of the paper's worked examples:
    Examples 1b/2/3 (rules M/SS/LS), the Section 5 urn-model numbers, and
    the Section 6 single-table numbers. Used by the bench harness and
    EXPERIMENTS.md. *)

val rules_table : unit -> (string * float * float * float) list
(** Rows of (rule name, our estimate, paper's value, correct value) for the
    join order (R2 ⋈ R3) ⋈ R1 of Example 1b. *)

val render_rules_table : unit -> string

val urn_table : unit -> (int * int * float) list
(** Rows of (‖R‖′, urn estimate of d′ₓ, linear estimate) for the Section 5
    example (dₓ = 10000, ‖R‖ = 100000). *)

val render_urn_table : unit -> string

val single_table_numbers : unit -> float * float
(** (‖R2‖′, effective join cardinality) for the Section 6 example; the
    paper's values are 20 and 9. *)

val render_single_table : unit -> string
