type corruption =
  | Drop_stats
  | Negative_rows
  | Zero_rows
  | Distinct_exceeds_rows
  | Nan_histogram
  | Shuffled_histogram
  | Mcv_overflow
  | Inverted_bounds
  | Stale_stats
  | Stale_epoch_pin
  | Torn_merge
  | Drift_beyond_threshold

let all =
  [
    Drop_stats; Negative_rows; Zero_rows; Distinct_exceeds_rows; Nan_histogram;
    Shuffled_histogram; Mcv_overflow; Inverted_bounds; Stale_stats;
    Stale_epoch_pin; Torn_merge; Drift_beyond_threshold;
  ]

let name = function
  | Drop_stats -> "drop-stats"
  | Negative_rows -> "negative-rows"
  | Zero_rows -> "zero-rows"
  | Distinct_exceeds_rows -> "distinct>rows"
  | Nan_histogram -> "nan-histogram"
  | Shuffled_histogram -> "shuffled-histogram"
  | Mcv_overflow -> "mcv-overflow"
  | Inverted_bounds -> "inverted-bounds"
  | Stale_stats -> "stale-stats"
  | Stale_epoch_pin -> "stale-epoch-pin"
  | Torn_merge -> "torn-merge"
  | Drift_beyond_threshold -> "drift"

let column_level = function
  | Drop_stats | Distinct_exceeds_rows | Nan_histogram | Shuffled_histogram
  | Mcv_overflow | Inverted_bounds | Torn_merge | Drift_beyond_threshold ->
    true
  | Negative_rows | Zero_rows | Stale_stats | Stale_epoch_pin -> false

(* --- corrupting statistics ---------------------------------------------

   Each kind produces a corruption unconditionally: when the target sketch
   is absent a corrupt one is synthesized, so every kind is guaranteed to
   actually fire against every column it is aimed at. *)

let nan_bucket =
  { Stats.Histogram.lo = Float.nan; hi = Float.nan; count = Float.nan;
    distinct = Float.nan }

let corrupt_histogram kind h =
  match kind with
  | Nan_histogram ->
    let buckets =
      match h with
      | Some h ->
        List.map
          (fun b -> { b with Stats.Histogram.count = Float.nan })
          (Stats.Histogram.buckets h)
      | None -> [ nan_bucket ]
    in
    Some (Stats.Histogram.of_buckets Stats.Histogram.Equi_width buckets)
  | Shuffled_histogram ->
    let buckets =
      match h with
      | Some h ->
        (* Reverse the bucket order and swap each bucket's bounds: the
           result is decreasing where a histogram must be increasing. *)
        List.rev_map
          (fun b ->
            { b with Stats.Histogram.lo = b.Stats.Histogram.hi;
              hi = b.Stats.Histogram.lo })
          (Stats.Histogram.buckets h)
      | None ->
        [
          { Stats.Histogram.lo = 100.; hi = 50.; count = 10.; distinct = 5. };
          { Stats.Histogram.lo = 40.; hi = 10.; count = 10.; distinct = 5. };
        ]
    in
    Some (Stats.Histogram.of_buckets Stats.Histogram.Equi_width buckets)
  | Torn_merge ->
    (* A merge that concatenated shard buckets without coalescing: every
       bucket appears twice, so the bounds are not monotone. A degenerate
       single-point histogram survives doubling; give it overlapping
       synthetic buckets instead so the kind always fires. *)
    let doubled =
      match h with
      | Some h ->
        let bs = Stats.Histogram.buckets h in
        bs @ bs
      | None -> []
    in
    let rec monotone = function
      | a :: (b :: _ as rest) ->
        a.Stats.Histogram.hi <= b.Stats.Histogram.lo && monotone rest
      | [ _ ] | [] -> true
    in
    let buckets =
      if doubled <> [] && not (monotone doubled) then doubled
      else
        [
          { Stats.Histogram.lo = 1.; hi = 10.; count = 10.; distinct = 5. };
          { Stats.Histogram.lo = 5.; hi = 20.; count = 10.; distinct = 5. };
        ]
    in
    Some (Stats.Histogram.of_buckets Stats.Histogram.Equi_depth buckets)
  | _ -> h

let corrupt_column kind rows (s : Stats.Col_stats.t) =
  match kind with
  | Distinct_exceeds_rows -> { s with distinct = (10 * max 1 rows) + 7 }
  | Nan_histogram | Shuffled_histogram | Torn_merge ->
    { s with histogram = corrupt_histogram kind s.histogram }
  | Drift_beyond_threshold ->
    (* Statistics frozen long before a stream of inserts: the recorded
       distinct count stays tiny while the sketch (re-fed by the delta
       path) remembers far more values. When the column never had a
       sketch, synthesize one so the drift audit always has its
       independent measurement. *)
    let sketch =
      match s.distinct_sketch with
      | Some sk -> sk
      | None ->
        Stats.Hll.of_values
          (Array.init 64 (fun i -> Rel.Value.Int (i + 1)))
    in
    { s with distinct = 0; distinct_sketch = Some sketch }
  | Mcv_overflow ->
    let entries =
      match s.mcv with
      | Some m ->
        (* Inflate every fraction so the sum comfortably exceeds 1. *)
        List.map
          (fun e -> { e with Stats.Mcv.fraction = e.Stats.Mcv.fraction +. 0.7 })
          (Stats.Mcv.entries m)
      | None ->
        [
          { Stats.Mcv.value = Rel.Value.Int 1; fraction = 0.8 };
          { Stats.Mcv.value = Rel.Value.Int 2; fraction = 0.9 };
        ]
    in
    { s with mcv = Some (Stats.Mcv.of_entries entries) }
  | Inverted_bounds ->
    let lo, hi =
      match s.min_value, s.max_value with
      | Some lo, Some hi when Rel.Value.compare lo hi < 0 -> (hi, lo)
      | _ -> (Rel.Value.Int 1000, Rel.Value.Int (-1000))
    in
    { s with min_value = Some lo; max_value = Some hi }
  | Drop_stats | Negative_rows | Zero_rows | Stale_stats | Stale_epoch_pin -> s

let corrupt_table ?columns kind (t : Catalog.Table.t) =
  let touch name =
    match columns with
    | None -> true
    | Some cs -> List.mem name cs
  in
  match kind with
  | Negative_rows -> { t with row_count = -abs t.row_count - 1 }
  | Zero_rows -> { t with row_count = 0 }
  | Stale_stats ->
    (* Simulates statistics collected before the data was regenerated:
       the stored relation keeps its rows, the catalog number drifts. *)
    { t with row_count = (3 * max 1 t.row_count) + 11 }
  | Stale_epoch_pin ->
    (* A reader holding an epoch pinned across data growth: the stored
       relation has moved on (here: doubled) while the pinned statistics
       still describe the old world. With no stored data to diverge from,
       degrade to the plain stale-row-count shape. *)
    begin
      match t.data with
      | Some rel ->
        let tuples = Rel.Relation.to_list rel in
        { t with
          data =
            Some
              (Rel.Relation.of_tuples (Rel.Relation.schema rel)
                 (tuples @ tuples)) }
      | None -> { t with row_count = (2 * max 1 t.row_count) + 13 }
    end
  | Drop_stats ->
    { t with
      column_stats = List.filter (fun (n, _) -> not (touch n)) t.column_stats }
  | Distinct_exceeds_rows | Nan_histogram | Shuffled_histogram | Mcv_overflow
  | Inverted_bounds | Torn_merge | Drift_beyond_threshold ->
    { t with
      column_stats =
        List.map
          (fun (n, s) ->
            if touch n then (n, corrupt_column kind t.row_count s) else (n, s))
          t.column_stats }

let corrupt_db ?tables ?columns kind db =
  let touch name =
    match tables with
    | None -> true
    | Some ts -> List.mem name ts
  in
  let out = Catalog.Db.create () in
  List.iter
    (fun (t : Catalog.Table.t) ->
      Catalog.Db.add out
        (if touch t.name then corrupt_table ?columns kind t else t))
    (Catalog.Db.tables db);
  out

(* --- the pipeline under test ------------------------------------------- *)

let default_sql =
  "SELECT COUNT(*) FROM t1, t2, t3 WHERE t1.a = t2.a AND t2.a = t3.a AND \
   t1.b <= 25"

(* The comparison-join leg of the matrix: same catalog, but the last link
   is an inequality, so every corruption also crosses the CDF-convolution
   estimator and the kernel's interpreted fallback. *)
let inequality_sql =
  "SELECT COUNT(*) FROM t1, t2, t3 WHERE t1.a = t2.a AND t2.a < t3.a AND \
   t1.b <= 25"

let base_db ?(seed = 7) () =
  let rng = Datagen.Prng.create seed in
  let db = Catalog.Db.create () in
  let register table rows distinct =
    ignore
      (Datagen.Tablegen.register ~histogram:Stats.Histogram.Equi_depth ~mcv:5
         (Datagen.Prng.split rng) db ~table ~rows
         [
           Datagen.Tablegen.column "a" ~distinct;
           Datagen.Tablegen.column "b" ~distinct:50;
         ])
  in
  register "t1" 300 40;
  register "t2" 500 60;
  register "t3" 200 30;
  db

type status =
  | Estimated of float
  | Degraded of Els.Els_error.t
  | Crashed of string

type outcome = {
  corruption : corruption option;
  strictness : Catalog.Validate.strictness;
  algorithm : string;
  status : status;
  violations : int;
  repairs : int;
  fallbacks : int;
  budget_tripped : Rel.Budget.resource option;
}

let zero_outcome ?budget_tripped corruption strictness algorithm status =
  {
    corruption;
    strictness;
    algorithm;
    status;
    violations = 0;
    repairs = 0;
    fallbacks = 0;
    budget_tripped;
  }

(* SQL text → binder → profile (validation + guards) → DP optimizer →
   final estimate. Structured errors are the expected degradation;
   anything escaping as a raw exception is a crash. A budget trip is also
   expected degradation: the optimizer absorbs it via its anytime ladder,
   so it shows up through [Rel.Budget.exhausted], not as an error. *)
let drive ?budget ~config db sql =
  match Sqlfront.Binder.compile_result db sql with
  | Error e -> `No_profile (Degraded e)
  | Ok query -> begin
    match
      Optimizer.choose ~enumerator:Optimizer.Exhaustive ?budget config db
        query
    with
    | exception Els.Els_error.Error e -> `No_profile (Degraded e)
    | exception exn -> `No_profile (Crashed (Printexc.to_string exn))
    | choice ->
      let profile = choice.Optimizer.profile in
      let status =
        let final =
          match List.rev choice.Optimizer.intermediate_estimates with
          | last :: _ -> last
          | [] -> 0.
        in
        let bad x = Float.is_nan x || x < 0. || x = Float.infinity in
        if
          bad final
          || List.exists bad choice.Optimizer.intermediate_estimates
          || bad choice.Optimizer.estimated_cost
        then
          Degraded
            (Els.Els_error.Invariant_violation
               { site = "Fault.drive";
                 detail = "optimizer produced a non-finite or negative \
                           estimate" })
        else Estimated final
      in
      `Profiled (status, profile)
  end

let outcome_of ?(estimator = Els.Estimator.ls) ?budget ~strictness corruption
    db sql =
  let config =
    Els.Config.with_strictness strictness (Els.Config.of_estimator estimator)
  in
  let algorithm = Els.Estimator.label estimator in
  let tripped () = Option.bind budget Rel.Budget.exhausted in
  match drive ?budget ~config db sql with
  | `No_profile status ->
    zero_outcome ?budget_tripped:(tripped ()) corruption strictness algorithm
      status
  | `Profiled (status, profile) ->
    let g = Els.Profile.guard_stats profile in
    {
      corruption;
      strictness;
      algorithm;
      status;
      violations = g.Els.Guard.violations;
      repairs = g.Els.Guard.repairs;
      fallbacks = g.Els.Guard.fallbacks;
      budget_tripped = tripped ();
    }

let run ?seed ?sql ?(estimators = Els.Estimator.registry ()) ?make_budget
    ~strictness () =
  let clean = base_db ?seed () in
  let budget () = Option.map (fun f -> f ()) make_budget in
  let sqls =
    match sql with
    | Some sql -> [ sql ]
    | None -> [ default_sql; inequality_sql ]
  in
  List.concat_map
    (fun sql ->
      List.concat_map
        (fun estimator ->
          let baseline =
            outcome_of ~estimator ?budget:(budget ()) ~strictness None clean
              sql
          in
          baseline
          :: List.map
               (fun kind ->
                 outcome_of ~estimator ?budget:(budget ()) ~strictness
                   (Some kind) (corrupt_db kind clean) sql)
               all)
        estimators)
    sqls

(* An outcome is acceptable when the pipeline neither crashed nor let an
   impossible number escape; under Repair and Trap every injected
   corruption must additionally be visible in the counters (detected
   validation issue, clamped value, or counted fallback) — unless the
   budget tripped first, in which case the truncated enumeration is the
   documented degradation. *)
let acceptable o =
  let well_formed =
    match o.status with
    | Crashed _ -> false
    | Degraded _ -> true
    | Estimated x -> Float.is_finite x && x >= 0.
  in
  let strict_estimates_clean =
    (* Strict mode may refuse (Degraded) but must never emit a number
       after swallowing a violation. *)
    match o.strictness, o.status with
    | Catalog.Validate.Strict, Estimated _ -> o.violations = 0
    | _ -> true
  in
  let counted =
    match o.corruption, o.strictness with
    | None, _ -> true
    | Some _, Catalog.Validate.Strict -> true
    | Some _, (Catalog.Validate.Repair | Catalog.Validate.Trap) ->
      o.violations + o.repairs + o.fallbacks > 0 || o.budget_tripped <> None
  in
  well_formed && strict_estimates_clean && counted

let all_pass outcomes = List.for_all acceptable outcomes

let budget_trips outcomes =
  List.length (List.filter (fun o -> o.budget_tripped <> None) outcomes)

let metrics outcomes =
  let m = Obs.Metrics.create () in
  let c name by = Obs.Metrics.incr ~by (Obs.Metrics.counter m name) in
  List.iter
    (fun o ->
      c "fault.outcomes" 1;
      (match o.status with
      | Estimated _ -> c "fault.estimated" 1
      | Degraded _ -> c "fault.degraded" 1
      | Crashed _ -> c "fault.crashed" 1);
      c "guard.violations" o.violations;
      c "guard.repairs" o.repairs;
      c "guard.fallbacks" o.fallbacks;
      if o.budget_tripped <> None then c "budget.exhausted" 1)
    outcomes;
  Obs.Metrics.snapshot m

let status_cell = function
  | Estimated x -> Printf.sprintf "ok %s" (Report.float_cell x)
  | Degraded e -> "degraded: " ^ Els.Els_error.to_string e
  | Crashed msg -> "CRASH: " ^ msg

let render outcomes =
  Report.table
    ~header:
      [
        "corruption"; "mode"; "estimator"; "outcome"; "viol"; "repair";
        "fallback"; "budget"; "pass";
      ]
    (List.map
       (fun o ->
         [
           (match o.corruption with None -> "(clean)" | Some k -> name k);
           Catalog.Validate.strictness_name o.strictness;
           o.algorithm;
           status_cell o.status;
           string_of_int o.violations;
           string_of_int o.repairs;
           string_of_int o.fallbacks;
           (match o.budget_tripped with
           | None -> "-"
           | Some r -> Rel.Budget.resource_name r);
           (if acceptable o then "yes" else "NO");
         ])
       outcomes)
