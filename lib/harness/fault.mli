(** Experiment F9: fault injection across the estimation pipeline.

    Systematically corrupts a known-good catalog — dropped statistics,
    negative/zero/stale row counts, impossible distinct counts, NaN and
    non-monotone histograms, overflowing MCV sketches, inverted value
    bounds — and drives the {e full} pipeline (SQL text through the
    binder, catalog validation, profile build with invariant guards, and
    the DP optimizer) under each {!Catalog.Validate.strictness} mode.

    The contract being tested: the pipeline never crashes with a raw
    exception, never lets a NaN/negative/infinite estimate escape in
    [Repair] mode, and every degradation is visible in the guard counters
    (a detected issue, a clamped value, or a counted fallback) — garbage
    in, {e documented} garbage handling out. *)

type corruption =
  | Drop_stats  (** remove per-column statistics entirely *)
  | Negative_rows
  | Zero_rows
  | Distinct_exceeds_rows  (** d := 10·‖R‖ + 7 *)
  | Nan_histogram
  | Shuffled_histogram  (** reversed, non-monotone bucket bounds *)
  | Mcv_overflow  (** fractions inflated so the sum exceeds 1 *)
  | Inverted_bounds  (** min/max swapped *)
  | Stale_stats
      (** catalog row count drifted away from the stored relation, as if
          the data was regenerated after ANALYZE *)
  | Stale_epoch_pin
      (** the stored relation doubled under a pinned epoch's statistics —
          the churn-era shape of staleness (stats-only tables degrade to a
          plain stale row count) *)
  | Torn_merge
      (** shard histograms concatenated without coalescing: every bucket
          twice, bounds non-monotone — a merge interrupted halfway *)
  | Drift_beyond_threshold
      (** recorded distinct count zeroed while the distinct sketch still
          remembers the column — d-drift past the {!Catalog.Validate}
          audit threshold *)

val all : corruption list
val name : corruption -> string

val column_level : corruption -> bool
(** Kinds that corrupt per-column statistics (and therefore respect the
    [?columns] filter) as opposed to table-level row counts. *)

val corrupt_table :
  ?columns:string list -> corruption -> Catalog.Table.t -> Catalog.Table.t
(** Apply one corruption; [columns] restricts column-level kinds to the
    named columns (default: all). Every kind fires unconditionally — when
    a targeted sketch is absent, a corrupt one is synthesized. *)

val corrupt_db :
  ?tables:string list ->
  ?columns:string list ->
  corruption ->
  Catalog.Db.t ->
  Catalog.Db.t
(** Fresh catalog with the corruption applied to the selected tables
    (default: all); the input is untouched. *)

val default_sql : string
(** The 3-table equality chain query (with a local predicate) the suite
    drives. *)

val inequality_sql : string
(** The comparison-join leg: the same chain with its last link turned
    into [t2.a < t3.a], crossing every corruption with the CDF-convolution
    selectivity path and the kernel's interpreted fallback. *)

val base_db : ?seed:int -> unit -> Catalog.Db.t
(** Three stored, fully-analyzed chain tables (equi-depth histograms and
    MCV sketches on every column), the clean baseline every corruption
    starts from. *)

type status =
  | Estimated of float  (** pipeline produced a final estimate *)
  | Degraded of Els.Els_error.t  (** refused with a structured error *)
  | Crashed of string  (** uncaught exception — always a failure *)

type outcome = {
  corruption : corruption option;  (** [None] for the clean baseline *)
  strictness : Catalog.Validate.strictness;
  algorithm : string;  (** the driving estimator's {!Els.Estimator.label} *)
  status : status;
  violations : int;
  repairs : int;
  fallbacks : int;
  budget_tripped : Rel.Budget.resource option;
      (** set when the per-outcome {!Rel.Budget} tripped during
          optimization — an expected degradation (the optimizer's anytime
          ladder absorbed it), not a failure *)
}

val outcome_of :
  ?estimator:Els.Estimator.t ->
  ?budget:Rel.Budget.t ->
  strictness:Catalog.Validate.strictness ->
  corruption option ->
  Catalog.Db.t ->
  string ->
  outcome
(** Drive SQL text through binder → validation → guarded profile → DP
    optimizer against the given catalog, capturing the guard counters.
    [estimator] (default {!Els.Estimator.ls}) selects the estimation
    algorithm via its canonical configuration; [budget] bounds the
    enumeration (its exhaustion state is captured in [budget_tripped]). *)

val run :
  ?seed:int ->
  ?sql:string ->
  ?estimators:Els.Estimator.t list ->
  ?make_budget:(unit -> Rel.Budget.t) ->
  strictness:Catalog.Validate.strictness ->
  unit ->
  outcome list
(** Per driven query ([sql] forces a single query; the default drives
    both {!default_sql} and {!inequality_sql}) and per estimator
    ([estimators] defaults to the full {!Els.Estimator.registry}): the
    clean baseline followed by one outcome per corruption kind in {!all},
    each applied to every table and column of {!base_db} — the robustness
    contract must hold for every registered estimator, not just ELS.
    [make_budget] produces a {e fresh} budget per outcome (budgets are
    sticky, so they cannot be shared), crossing the corruption grid with
    resource exhaustion. *)

val acceptable : outcome -> bool
(** No crash; estimates (when produced) finite and non-negative; under
    [Repair]/[Trap] every injected corruption shows up in the counters
    unless the budget tripped first (a trip is documented degradation);
    under [Strict] an estimate is only produced when nothing was
    swallowed. *)

val all_pass : outcome list -> bool

val budget_trips : outcome list -> int
(** How many outcomes had their budget trip — reported in the F9
    summary. *)

val metrics : outcome list -> Obs.Metrics.snapshot
(** The grid's guard counters, outcome statuses and budget trips as one
    {!Obs.Metrics} snapshot (["fault.*"], ["guard.*"],
    ["budget.exhausted"]). *)

val render : outcome list -> string
