type row = {
  scenario : string;
  predicate : string;
  estimator : string;
  estimate : float;
  truth : float;
  q : Accuracy.q_error;
}

(* One generated workload per scenario: a pure inequality join, a band
   join, and a mixed chain (equality link then inequality link). All use
   integer join columns with domains starting at 1, so the comparison
   always overlaps and the executed truth is positive — every q-error in
   the panel is expected to be finite. *)
let scenarios ~seed =
  [
    ("lt", Datagen.Workload.comparison ~seed ~n_tables:2 ());
    ( "ge",
      Datagen.Workload.comparison ~op:Query.Predicate.Ge ~seed:(seed + 1)
        ~n_tables:2 () );
    ( "band",
      Datagen.Workload.comparison
        ~op:(Query.Predicate.Band 2.5)
        ~seed:(seed + 2) ~n_tables:2 () );
    ( "mixed",
      Datagen.Workload.comparison ~seed:(seed + 3) ~n_tables:3 () );
  ]

let join_predicate_string query =
  String.concat " AND "
    (List.filter_map
       (fun p ->
         if Query.Predicate.is_join p then Some (Query.Predicate.to_string p)
         else None)
       query.Query.predicates)

let run ?(seed = 42) () =
  List.concat_map
    (fun (scenario, spec) ->
      let db = spec.Datagen.Workload.db in
      let query = spec.Datagen.Workload.query in
      let order = query.Query.tables in
      let truth =
        float_of_int
          (Exec.Executor.run_query db query).Exec.Executor.row_count
      in
      let predicate = join_predicate_string query in
      List.map
        (fun est ->
          let config = Els.Config.of_estimator est in
          let estimates = Els.intermediate_sizes config db query order in
          let estimate =
            match List.rev estimates with last :: _ -> last | [] -> 0.
          in
          {
            scenario;
            predicate;
            estimator = Els.Estimator.label est;
            estimate;
            truth;
            q = Accuracy.q_error ~est:estimate ~truth;
          })
        (Els.Estimator.registry ()))
    (scenarios ~seed)

let pass rows =
  rows <> []
  && List.for_all
       (fun r -> match r.q with Accuracy.Finite _ -> true | _ -> false)
       rows

let q_cell = function
  | Accuracy.Finite q -> Report.float_cell q
  | Accuracy.Infinite -> "inf"
  | Accuracy.Undefined -> "undef"

let render rows =
  Report.table
    ~header:
      [ "Scenario"; "Join Predicate"; "Estimator"; "Estimate"; "True";
        "q-error" ]
    (List.map
       (fun r ->
         [
           r.scenario;
           r.predicate;
           r.estimator;
           Report.float_cell r.estimate;
           Report.float_cell r.truth;
           q_cell r.q;
         ])
       rows)
