(** Experiment F14: inequality and band joins, estimated vs executed.

    The estimation pipeline's comparison-join generalization replaces the
    paper's equality-only selectivity rules with a histogram-CDF
    convolution ({!Stats.Selectivity_est.join_comparison} /
    [join_band]); the executor's generalized sort-merge supplies the
    exact truth. This panel crosses four generated scenarios — a [<]
    join, a [>=] join, a [|a − b| <= eps] band, and a mixed
    equality-then-inequality chain — with every estimator in the core
    registry, reporting the final estimate, the executed true size, and
    the q-error.

    The generated workloads overlap by construction (integer join columns
    with domains starting at 1), so a sound estimator produces a finite
    q-error on every row — CI asserts exactly {!pass}. *)

type row = {
  scenario : string;  (** "lt", "ge", "band" or "mixed" *)
  predicate : string;  (** the join predicate(s), rendered *)
  estimator : string;  (** {!Els.Estimator.label} *)
  estimate : float;  (** final join-size estimate *)
  truth : float;  (** executed true size *)
  q : Accuracy.q_error;
}

val run : ?seed:int -> unit -> row list
(** Default seed 42; each scenario derives its own sub-seed. *)

val pass : row list -> bool
(** True when the panel is non-empty and every q-error is finite. *)

val render : row list -> string
