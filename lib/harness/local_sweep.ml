type point = {
  cutoff : int;
  standard_est : float;
  els_est : float;
  true_size : int;
}

let run ?(seed = 7) ?(cutoffs = [ 10; 25; 50; 100; 250; 1000; 10000 ]) () =
  let rng = Datagen.Prng.create seed in
  let db = Catalog.Db.create () in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r1"
       ~rows:10000
       [ Datagen.Tablegen.key_column "x" ~rows:10000 ]);
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r2"
       ~rows:5000
       [ Datagen.Tablegen.column "y" ~distinct:100 ]);
  let query cutoff =
    Query.make ~projection:Query.Count_star ~tables:[ "r1"; "r2" ]
      [
        Query.Predicate.col_eq (Query.Cref.v "r1" "x") (Query.Cref.v "r2" "y");
        Query.Predicate.cmp (Query.Cref.v "r1" "x") Rel.Cmp.Le
          (Rel.Value.Int cutoff);
      ]
  in
  List.map
    (fun cutoff ->
      let q = query cutoff in
      let order = [ "r1"; "r2" ] in
      let standard_est =
        Els.estimate (Els.Config.sm ~ptc:true) db q order
      in
      let els_est = Els.estimate Els.Config.els db q order in
      let true_size = (Exec.Executor.run_query db q).Exec.Executor.row_count in
      { cutoff; standard_est; els_est; true_size })
    cutoffs

let render points =
  Report.table
    ~header:[ "x <= c"; "standard est"; "ELS est"; "true size" ]
    (List.map
       (fun p ->
         [
           string_of_int p.cutoff;
           Report.float_cell p.standard_est;
           Report.float_cell p.els_est;
           string_of_int p.true_size;
         ])
       points)
