(** Supplementary figure F2: local predicates and join selectivities
    (Section 5).

    Two stored tables join on [r1.x = r2.y] with [d_x ≫ d_y]; a range
    predicate [x <= c] sweeps from very selective to non-selective. The
    standard algorithm keeps using [1/max(d_x, d_y)] as the join
    selectivity no matter what the local predicate did to [x]'s distinct
    count, while ELS recomputes it from the effective [d′_x]. The true size
    comes from executing the join. *)

type point = {
  cutoff : int;  (** the [c] of [x <= c] *)
  standard_est : float;
  els_est : float;
  true_size : int;
}

val run : ?seed:int -> ?cutoffs:int list -> unit -> point list
(** Defaults: seed 7, cutoffs [10; 25; 50; 100; 250; 1000; 10000] on a
    10000-row R1 with d_x = 10000 and a 5000-row R2 with d_y = 100. *)

val render : point list -> string
