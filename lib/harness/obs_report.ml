module Metrics = Obs.Metrics

let c m name by = Metrics.incr ~by (Metrics.counter m name)

let absorb_guard_stats m (g : Els.Guard.stats) =
  c m "guard.violations" g.Els.Guard.violations;
  c m "guard.repairs" g.Els.Guard.repairs;
  c m "guard.fallbacks" g.Els.Guard.fallbacks

let absorb_validation m issues =
  c m "catalog.issues" (List.length issues);
  List.iter
    (fun issue ->
      c m
        ("catalog.issue." ^ Catalog.Validate.kind_name issue.Catalog.Validate.kind)
        1)
    issues

let absorb_profile m profile =
  let s = Els.Profile.cache_stats profile in
  c m "profile.cache.sel_hits" s.Els.Profile.sel_hits;
  c m "profile.cache.sel_misses" s.Els.Profile.sel_misses;
  c m "profile.cache.group_hits" s.Els.Profile.group_hits;
  c m "profile.cache.group_misses" s.Els.Profile.group_misses;
  c m "profile.cache.eligible_probes" s.Els.Profile.eligible_probes;
  c m "profile.cache.scans_avoided" s.Els.Profile.scans_avoided;
  (* Steps served by the compiled kernel never touch the caches above:
     published separately so "cache probes went to zero" reads as "the
     kernel took over", not "estimation stopped". *)
  Metrics.set_counter
    (Metrics.counter m "profile.kernel.steps")
    (Els.Profile.kernel_steps profile);
  (* Steps the kernel declined (non-equality join predicates in the
     profile): estimation fell back to the interpreted tier. *)
  Metrics.set_counter
    (Metrics.counter m "profile.kernel.fallback_steps")
    (Els.Profile.kernel_fallback_steps profile);
  absorb_guard_stats m (Els.Profile.guard_stats profile);
  absorb_validation m (Els.Profile.validation_issues profile)

let absorb_counters m (k : Exec.Counters.t) =
  c m "exec.tuples_read" k.Exec.Counters.tuples_read;
  c m "exec.comparisons" k.Exec.Counters.comparisons;
  c m "exec.tuples_output" k.Exec.Counters.tuples_output;
  c m "exec.work" (Exec.Counters.total_work k)

let absorb_budget m budget =
  c m "budget.nodes_used" (Rel.Budget.nodes_used budget);
  c m "budget.rows_used" (Rel.Budget.rows_used budget);
  match Rel.Budget.exhausted budget with
  | Some resource ->
    c m "budget.exhausted" 1;
    c m ("budget.exhausted." ^ Rel.Budget.resource_name resource) 1
  | None -> ()

let absorb_provenance m (p : Optimizer.Provenance.t) =
  c m "optimizer.plans" 1;
  c m
    ("optimizer.rung." ^ Optimizer.Provenance.rung_name p.Optimizer.Provenance.rung)
    1;
  c m "optimizer.expansions" p.Optimizer.Provenance.expansions;
  if p.Optimizer.Provenance.exhausted <> None then c m "optimizer.degraded" 1

let absorb_choice m choice =
  absorb_profile m choice.Optimizer.profile;
  absorb_provenance m choice.Optimizer.provenance

let absorb_store m store =
  let s = Catalog.Store.stats store in
  (* Lifecycle totals are monotone over the store's life: absorb with the
     max-absorbing setter so repeated snapshots of one store don't
     double-count. *)
  let set name v = Metrics.set_counter (Metrics.counter m name) v in
  set "store.epoch" s.Catalog.Store.epoch;
  set "store.publishes" s.Catalog.Store.publishes;
  set "store.audits_failed" s.Catalog.Store.audits_failed;
  set "store.quarantines" s.Catalog.Store.quarantines;
  set "store.stale_served" s.Catalog.Store.stale_served;
  set "store.retries" s.Catalog.Store.retries;
  set "store.retry_successes" s.Catalog.Store.retry_successes;
  set "store.hard_fallbacks" s.Catalog.Store.hard_fallbacks;
  set "store.delta_inserts" s.Catalog.Store.delta_inserts;
  set "store.delta_deletes" s.Catalog.Store.delta_deletes;
  Metrics.set
    (Metrics.gauge m "store.quarantined_now")
    (float_of_int s.Catalog.Store.quarantined_now);
  List.iter
    (fun (table, d) ->
      Metrics.set
        (Metrics.gauge m (Printf.sprintf "store.drift.%s.rows_since_analyze" table))
        (float_of_int d.Catalog.Store.rows_since_analyze);
      Metrics.set
        (Metrics.gauge m (Printf.sprintf "store.drift.%s.d_drift" table))
        d.Catalog.Store.d_drift)
    (Catalog.Store.drift store)

let absorb_trial m (trial : Runner.trial) =
  c m "trial.count" 1;
  c m "exec.work" trial.Runner.work;
  Metrics.observe (Metrics.histogram m "trial.elapsed_s") trial.Runner.elapsed_s;
  Metrics.observe
    (Metrics.histogram m "trial.result_rows")
    (float_of_int trial.Runner.result_rows);
  absorb_provenance m trial.Runner.provenance
