(** Bridge from the pipeline's scattered statistics into one
    {!Obs.Metrics} registry.

    Each [absorb_*] publishes a component's counters under a stable
    dot-separated namespace, so one snapshot unifies what used to need
    five different printers:

    - ["profile.cache.*"] — {!Els.Profile.cache_stats} hit/miss/probe
      counters;
    - ["profile.kernel.steps"] — estimation steps served by the profile's
      compiled {!Els.Kernel} (which bypasses the caches above);
    - ["profile.kernel.fallback_steps"] — steps the kernel declined
      because the profile carries non-equality join predicates, served by
      the interpreted tier instead;
    - ["guard.*"] — {!Els.Guard.stats} violations / repairs / fallbacks;
    - ["catalog.issues"], ["catalog.issue.<kind>"] —
      {!Catalog.Validate} findings per issue kind;
    - ["exec.*"] — {!Exec.Counters} work counters;
    - ["budget.*"] — {!Rel.Budget} usage and exhaustion;
    - ["optimizer.*"] — {!Optimizer.Provenance} rung / expansions /
      degradations;
    - ["trial.*"] — per-{!Runner.trial} elapsed-time and result-size
      histograms.

    All absorption is additive ([Obs.Metrics.incr]), so one registry can
    accumulate across many profiles/trials (the soak and accuracy
    harnesses do exactly that); sources are expected to be fresh per
    absorption, as every profile, budget and counter set in this codebase
    is. *)

val absorb_profile : Obs.Metrics.t -> Els.Profile.t -> unit
(** Cache stats, kernel step count, guard stats and validation issues of
    one built profile. *)

val absorb_guard_stats : Obs.Metrics.t -> Els.Guard.stats -> unit
val absorb_validation : Obs.Metrics.t -> Catalog.Validate.issue list -> unit
val absorb_counters : Obs.Metrics.t -> Exec.Counters.t -> unit
val absorb_budget : Obs.Metrics.t -> Rel.Budget.t -> unit
val absorb_provenance : Obs.Metrics.t -> Optimizer.Provenance.t -> unit

val absorb_choice : Obs.Metrics.t -> Optimizer.choice -> unit
(** Profile + provenance of one optimizer decision. *)

val absorb_trial : Obs.Metrics.t -> Runner.trial -> unit
(** Work, elapsed time, result size and provenance of one executed
    trial. *)

val absorb_store : Obs.Metrics.t -> Catalog.Store.t -> unit
(** Lifecycle counters (["store.*"]: epoch, publishes, failed audits,
    quarantines, stale serves, retries, hard fallbacks, streamed deltas)
    plus per-table drift gauges
    (["store.drift.<table>.rows_since_analyze"/".d_drift"]) of one
    {!Catalog.Store}. Totals use the max-absorbing counter setter, so
    snapshotting the same store repeatedly never double-counts. *)
