type row = {
  seed : int;
  n_tables : int;
  algorithm : string;
  join_order : string list;
  work : int;
  work_ratio : float;
}

(* One trial per registered estimator's canonical configuration, as in
   {!Accuracy}. *)
let algorithms () = Els.Config.panel ()

(* Add a ~20% range predicate on t1's join column so the local-awareness
   of ELS matters too. *)
let with_local_pred db query =
  let t1 = List.hd query.Query.tables in
  let d = Catalog.Table.distinct (Catalog.Db.find_exn db t1) "a" in
  let cutoff = max 1 (d / 5) in
  Query.with_predicates query
    (Query.Predicate.cmp (Query.Cref.v t1 "a") Rel.Cmp.Le
       (Rel.Value.Int cutoff)
    :: query.Query.predicates)

let run ?(seeds = List.init 5 (fun i -> i + 1)) ?(n_tables = 5)
    ?(rows_range = (100, 600))
    ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge ]) () =
  let algorithms = algorithms () in
  List.concat_map
    (fun seed ->
      let spec =
        Datagen.Workload.chain ~rows_range ~distinct_range:(20, 200) ~seed
          ~n_tables ()
      in
      let db = spec.Datagen.Workload.db in
      let query = with_local_pred db spec.Datagen.Workload.query in
      let trials =
        List.map (fun config -> Runner.run ~methods config db query) algorithms
      in
      let best =
        List.fold_left (fun acc t -> min acc t.Runner.work) max_int trials
      in
      List.map
        (fun (t : Runner.trial) ->
          {
            seed;
            n_tables;
            algorithm = t.Runner.algorithm;
            join_order = t.Runner.join_order;
            work = t.Runner.work;
            work_ratio = float_of_int t.Runner.work /. float_of_int (max 1 best);
          })
        trials)
    seeds

let render rows =
  Report.table
    ~header:[ "seed"; "#tables"; "algorithm"; "join order"; "work"; "work/best" ]
    (List.map
       (fun r ->
         [
           string_of_int r.seed;
           string_of_int r.n_tables;
           r.algorithm;
           String.concat "," r.join_order;
           string_of_int r.work;
           Report.float_cell r.work_ratio;
         ])
       rows)

let summarize rows =
  let by_algo = Hashtbl.create 4 in
  List.iter
    (fun r ->
      let existing =
        Option.value (Hashtbl.find_opt by_algo r.algorithm) ~default:[]
      in
      Hashtbl.replace by_algo r.algorithm (r.work_ratio :: existing))
    rows;
  Hashtbl.fold
    (fun algo ratios acc ->
      let logs = List.map Float.log ratios in
      let geo =
        Float.exp
          (List.fold_left ( +. ) 0. logs /. float_of_int (List.length logs))
      in
      (algo, geo) :: acc)
    by_algo []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
