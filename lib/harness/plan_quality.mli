(** Supplementary figure F3: plan quality under each estimation algorithm
    (Section 8 generalized).

    Random chain queries (single equivalence class after closure, so the
    rules genuinely disagree) with a local range predicate on the first
    table. Each algorithm optimizes the query; the chosen plan executes on
    the stored data; the measured work is compared against the best work
    achieved by any of the algorithms on that query. *)

type row = {
  seed : int;
  n_tables : int;
  algorithm : string;
  join_order : string list;
  work : int;
  work_ratio : float;  (** work / best work for this query; 1.0 = best *)
}

val run :
  ?seeds:int list ->
  ?n_tables:int ->
  ?rows_range:int * int ->
  ?methods:Exec.Plan.join_method list ->
  unit ->
  row list
(** Defaults: seeds [1..5], 5 tables, rows in [[100, 600]], nested-loop +
    sort-merge. *)

val render : row list -> string

val summarize : row list -> (string * float) list
(** Geometric mean work ratio per algorithm. *)
