let float_cell x = Printf.sprintf "%.4g" x

let size_list xs = "(" ^ String.concat ", " (List.map float_cell xs) ^ ")"

let table ~header rows =
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header)
      rows
  in
  let pad_row row =
    row @ List.init (n_cols - List.length row) (fun _ -> "")
  in
  let all = List.map pad_row (header :: rows) in
  let widths =
    List.init n_cols (fun j ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row j)))
          0 all)
  in
  (* Cells are padded to column width; the line's trailing blanks are
     stripped so rendered files stay clean. *)
  let rtrim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let render row =
    rtrim
      (String.concat " | "
         (List.map2
            (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
            row widths))
  in
  let rule =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n"
    (render (pad_row header)
    :: rule
    :: List.map (fun row -> render (pad_row row)) rows)
  ^ "\n"
