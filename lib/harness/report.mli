(** Plain-text table rendering for experiment reports. *)

val table : header:string list -> string list list -> string
(** Aligned, pipe-separated table with a header rule. Rows may be ragged;
    short rows are padded with empty cells. *)

val float_cell : float -> string
(** Compact scientific-ish rendering ([%.4g]) matching the paper's style
    (e.g. ["4e-08"]). *)

val size_list : float list -> string
(** Comma-separated [float_cell]s inside parentheses, like the paper's
    "(100, 100, 100)". *)
