type trial = {
  algorithm : string;
  join_order : string list;
  estimates : float list;
  true_sizes : float list;
  result_rows : int;
  work : int;
  elapsed_s : float;
  estimated_cost : float;
  plan : Exec.Plan.t;
  provenance : Optimizer.Provenance.t;
}

let true_prefix_sizes db query order =
  let closed = (Els.Closure.compute query.Query.predicates).Els.Closure.predicates in
  let rec prefixes acc = function
    | [] -> List.rev acc
    | t :: rest ->
      let prefix = match acc with
        | [] -> [ t ]
        | prev :: _ -> prev @ [ t ]
      in
      prefixes (prefix :: acc) rest
  in
  let all_prefixes = prefixes [] order in
  List.filter_map
    (fun prefix ->
      if List.length prefix < 2 then None
      else begin
        let preds =
          List.filter (Query.Predicate.references_only prefix) closed
        in
        let sources =
          List.map (fun alias -> (alias, Query.source query alias)) prefix
        in
        let sub = Query.make ~sources ~tables:prefix preds in
        let result = Exec.Executor.run_query db sub in
        Some (float_of_int result.Exec.Executor.row_count)
      end)
    all_prefixes

(* One [budget] spans the whole trial: optimization spends node
   expansions against it, then execution spends rows against whatever
   remains — the deadline is shared end to end. *)
let run ?methods ?budget ?trace config db query =
  let choice = Optimizer.choose ?methods ?budget ?trace config db query in
  let rows, counters, elapsed_s =
    Obs.Trace.with_span trace "execute" @@ fun () ->
    let result = Exec.Executor.count ?budget db choice.Optimizer.plan in
    let rows, counters, _ = result in
    Obs.Trace.attr_int trace "rows" rows;
    Obs.Trace.attr_int trace "work" (Exec.Counters.total_work counters);
    result
  in
  {
    algorithm = choice.Optimizer.algorithm;
    join_order = choice.Optimizer.join_order;
    estimates = choice.Optimizer.intermediate_estimates;
    true_sizes = true_prefix_sizes db query choice.Optimizer.join_order;
    result_rows = rows;
    work = Exec.Counters.total_work counters;
    elapsed_s;
    estimated_cost = choice.Optimizer.estimated_cost;
    plan = choice.Optimizer.plan;
    provenance = choice.Optimizer.provenance;
  }

let estimate_only config db query order =
  let profile = Els.prepare config db query in
  Els.Incremental.history (Els.Incremental.estimate_order profile order)
