(** Optimize-and-execute runner: one experiment trial.

    Given a stored catalog, a query and an estimation algorithm, choose a
    plan, execute it, and report everything a Section 8-style table row
    needs: the chosen join order, the optimizer's intermediate size
    estimates, the true intermediate sizes, and the measured execution
    work/time. *)

type trial = {
  algorithm : string;
  join_order : string list;
  estimates : float list;  (** estimated size after each join *)
  true_sizes : float list;
      (** true size after each join of the chosen order, with all implied
          predicates available (the paper's "correct answer") *)
  result_rows : int;
  work : int;  (** executor work units actually performed *)
  elapsed_s : float;
  estimated_cost : float;
  plan : Exec.Plan.t;
  provenance : Optimizer.Provenance.t;
      (** which anytime rung of the enumerator produced the plan *)
}

val true_prefix_sizes :
  Catalog.Db.t -> Query.t -> string list -> float list
(** Ground truth: for each prefix of the join order (length ≥ 2), execute
    the subquery over the prefix tables with the {e closed} predicate set
    restricted to those tables, and return its cardinality. *)

val run :
  ?methods:Exec.Plan.join_method list ->
  ?budget:Rel.Budget.t ->
  ?trace:Obs.Trace.t ->
  Els.Config.t ->
  Catalog.Db.t ->
  Query.t ->
  trial
(** [budget] is shared across the whole trial: node expansions are spent
    during optimization (which degrades anytime-style on exhaustion) and
    rows during execution (which cancels with a structured
    [Budget_exhausted] error on exhaustion). [trace] records the
    optimizer's "profile"/"validate"/"optimize" spans plus an "execute"
    span with row/work attributes.
    @raise Invalid_argument when the catalog tables are stats-only.
    @raise Els.Els_error.Error ([Budget_exhausted]) when the row budget or
    deadline trips during execution. *)

val estimate_only :
  Els.Config.t -> Catalog.Db.t -> Query.t -> string list -> float list
(** Just the estimator along a fixed order, no optimizer/executor. *)
