(** Optimize-and-execute runner: one experiment trial.

    Given a stored catalog, a query and an estimation algorithm, choose a
    plan, execute it, and report everything a Section 8-style table row
    needs: the chosen join order, the optimizer's intermediate size
    estimates, the true intermediate sizes, and the measured execution
    work/time. *)

type trial = {
  algorithm : string;
  join_order : string list;
  estimates : float list;  (** estimated size after each join *)
  true_sizes : float list;
      (** true size after each join of the chosen order, with all implied
          predicates available (the paper's "correct answer") *)
  result_rows : int;
  work : int;  (** executor work units actually performed *)
  elapsed_s : float;
  estimated_cost : float;
  plan : Exec.Plan.t;
}

val true_prefix_sizes :
  Catalog.Db.t -> Query.t -> string list -> float list
(** Ground truth: for each prefix of the join order (length ≥ 2), execute
    the subquery over the prefix tables with the {e closed} predicate set
    restricted to those tables, and return its cardinality. *)

val run :
  ?methods:Exec.Plan.join_method list ->
  Els.Config.t ->
  Catalog.Db.t ->
  Query.t ->
  trial
(** @raise Invalid_argument when the catalog tables are stats-only. *)

val estimate_only :
  Els.Config.t -> Catalog.Db.t -> Query.t -> string list -> float list
(** Just the estimator along a fixed order, no optimizer/executor. *)
