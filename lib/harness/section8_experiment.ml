type row = {
  query_label : string;
  trial : Runner.trial;
}

let paper_rows =
  [
    ("Orig.", "SM", "S ⋈ M ⋈ B ⋈ G", [], 610.);
    ("Orig. + PTC", "SM", "S ⋈ M ⋈ B ⋈ G", [ 0.2; 4e-8; 4e-21 ], 472.);
    ("Orig. + PTC", "SSS", "S ⋈ M ⋈ B ⋈ G", [ 0.2; 4e-4; 4e-7 ], 427.);
    ("Orig.", "ELS", "B ⋈ G ⋈ M ⋈ S", [ 100.; 100.; 100. ], 50.);
  ]

(* The paper's first row (SM without the PTC rewrite), then one row per
   registered estimator with closure on. A local-aware estimator does the
   closure internally, so its row shows the original query text ("Orig."),
   while a standard-algorithm row that needed the rewrite shows
   "Orig. + PTC" — the labeling of the paper's table. *)
let configurations () =
  ("Orig.", Els.Config.sm ~ptc:false)
  :: List.map
       (fun est ->
         let config = Els.Config.of_estimator est in
         let label =
           if config.Els.Config.closure && not config.Els.Config.local_aware
           then "Orig. + PTC"
           else "Orig."
         in
         (label, config))
       (Els.Estimator.registry ())

let run ?(scale = 1) ?(seed = 42)
    ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge ]) () =
  let db = Datagen.Section8.build ~scale ~seed () in
  let query = Datagen.Section8.query_scaled ~scale in
  List.map
    (fun (query_label, config) ->
      { query_label; trial = Runner.run ~methods config db query })
    (configurations ())

let render rows =
  let body =
    List.map
      (fun { query_label; trial } ->
        [
          query_label;
          trial.Runner.algorithm;
          String.concat " ⋈ " trial.Runner.join_order;
          Report.size_list trial.Runner.estimates;
          Report.size_list trial.Runner.true_sizes;
          string_of_int trial.Runner.result_rows;
          string_of_int trial.Runner.work;
          Printf.sprintf "%.3f" trial.Runner.elapsed_s;
        ])
      rows
  in
  Report.table
    ~header:
      [
        "Query"; "Algorithm"; "Join Order"; "Estimated Result Sizes";
        "True Sizes"; "COUNT"; "Work (tuples)"; "Time (s)";
      ]
    body
