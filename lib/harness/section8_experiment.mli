(** The paper's Section 8 experiment (its only table, T1).

    Four runs of [SELECT COUNT( ) FROM S,M,B,G WHERE s=m AND m=b AND b=g
    AND s<100] on real stored data:

    + Algorithm SM on the original query (no predicate transitive closure);
    + Algorithm SM after PTC;
    + Algorithm SSS after PTC;
    + Algorithm ELS on the original query (ELS performs closure
      internally).

    Each run reports the join order the optimizer chose, the estimated
    size after each join, the true sizes, and the measured execution work
    and wall-clock time. Join methods are restricted to nested loops and
    sort-merge, matching the paper's setup. *)

type row = {
  query_label : string;  (** "Orig." or "Orig. + PTC" *)
  trial : Runner.trial;
}

val paper_rows : (string * string * string * float list * float) list
(** The paper's reported table, for EXPERIMENTS.md comparison:
    (query, algorithm, join order, estimated sizes, elapsed seconds). *)

val run :
  ?scale:int ->
  ?seed:int ->
  ?methods:Exec.Plan.join_method list ->
  unit ->
  row list
(** [scale] (default 1 = paper size) divides all table cardinalities;
    [methods] defaults to [[Nested_loop; Sort_merge]]. *)

val render : row list -> string
(** The Section 8 table, ours. *)
