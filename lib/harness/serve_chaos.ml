type summary = {
  sessions : int;
  seed : int;
  frames_sent : int;
  valid_sent : int;
  malformed_sent : int;
  oversized_sent : int;
  disconnect_sessions : int;
  ordered_sessions : int;
  churn_sessions : int;
  answered_ok : int;
  answered_error : int;
  shed : int;
  budget_trips : int;
  epoch_retries : int;
  internal_errors : int;
  drains : int;
  drain_timeouts : int;
  unanswered : int;
  bad_responses : int;
  epoch_regressions : int;
  hangs : int;
  crashes : int;
  first_failure : string option;
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot;
}

(* What the client is owed for one frame it wrote: a response echoing the
   frame's id, an anonymous (null-id) refusal, or nothing (blank lines
   are skipped by the server). *)
type expect = Id of string | Anon | Nothing

type kind = Ordered | Chaos | Disconnect

let tables = [ "t1"; "t2"; "t3" ]

let json_obj fields = Obs.Json.to_string (Obs.Json.Obj fields)

let jstr s = Obs.Json.String s
let jint i = Obs.Json.Int i
let jnum x = Obs.Json.Float x

(* --- frame generators --- *)

let valid_frame rng ~id ~ordered =
  let base = [ ("v", jint 1); ("id", jstr id) ] in
  let estimator () =
    match Rel.Prng.int rng 5 with
    | 0 -> [ ("estimator", jstr "m") ]
    | 1 -> [ ("estimator", jstr "ss") ]
    | 2 -> [ ("estimator", jstr "ls") ]
    | 3 -> [ ("estimator", jstr "pess") ]
    | _ -> []
  in
  let storm_budget () =
    (* Deadlines down in the microseconds: tripped by the time the worker
       dequeues, exercising the answered-without-work path. *)
    match Rel.Prng.int rng 4 with
    | 0 -> [ ("deadline_ms", jnum 0.001) ]
    | 1 -> [ ("deadline_ms", jnum (float_of_int (Rel.Prng.int_in rng 5 50))) ]
    | 2 -> [ ("row_budget", jint (Rel.Prng.int_in rng 1 10)) ]
    | _ -> []
  in
  let op =
    if ordered then
      (* Worker-handled ops only, so wire order equals processing order. *)
      match Rel.Prng.int rng 3 with
      | 0 | 1 ->
        [ ("op", jstr "estimate"); ("sql", jstr Fault.default_sql) ]
      | _ ->
        [
          ("op", jstr "analyze");
          ("table", jstr (List.nth tables (Rel.Prng.int rng 3)));
        ]
    else
      match Rel.Prng.int rng 10 with
      | 0 | 1 ->
        [ ("op", jstr "estimate"); ("sql", jstr Fault.default_sql) ]
        @ estimator ()
      | 2 ->
        [
          ("op", jstr "estimate");
          ("sql", jstr Fault.default_sql);
          ("order", Obs.Json.List (List.rev_map jstr tables));
        ]
      | 3 ->
        [ ("op", jstr "explain"); ("sql", jstr Fault.inequality_sql) ]
        @ (match Rel.Prng.int rng 3 with
          | 0 -> [ ("enumerator", jstr "greedy") ]
          | 1 -> [ ("enumerator", jstr "random") ]
          | _ -> [])
        @ estimator ()
      | 4 ->
        [ ("op", jstr "run"); ("sql", jstr Fault.default_sql) ]
        @ storm_budget ()
      | 5 ->
        [
          ("op", jstr "analyze");
          ("table", jstr (List.nth tables (Rel.Prng.int rng 3)));
          ("shards", jint (Rel.Prng.int_in rng 1 3));
        ]
      | 6 -> [ ("op", jstr "health") ]
      | 7 ->
        (* Estimation errors are still protocol successes: answered with
           a structured refusal echoing the id. *)
        [ ("op", jstr "estimate"); ("sql", jstr "SELECT * FROM nowhere") ]
      | 8 ->
        [ ("op", jstr "estimate"); ("sql", jstr Fault.default_sql);
          ("estimator", jstr "bogus") ]
      | _ ->
        [ ("op", jstr "estimate"); ("sql", jstr Fault.default_sql);
          ("deadline_ms", jnum 0.001) ]
  in
  (json_obj (base @ op), Id id)

let malformed_frame rng ~id =
  match Rel.Prng.int rng 8 with
  | 0 ->
    (* Random printable garbage. *)
    let n = Rel.Prng.int_in rng 3 40 in
    (String.init n (fun _ -> Char.chr (Rel.Prng.int_in rng 33 126)), Anon)
  | 1 ->
    (* Truncated frame: a valid prefix cut mid-token. *)
    let whole = json_obj [ ("v", jint 1); ("id", jstr id);
                           ("op", jstr "estimate");
                           ("sql", jstr Fault.default_sql) ] in
    (String.sub whole 0 (String.length whole / 2), Anon)
  | 2 ->
    (* Nesting far past the protocol's 64-level cap. *)
    (String.concat "" (List.init 200 (fun _ -> "[")), Anon)
  | 3 -> ("12345", Anon)
  | 4 ->
    ( json_obj [ ("v", jint 99); ("id", jstr id); ("op", jstr "health") ],
      Id id )
  | 5 ->
    ( json_obj [ ("v", jint 1); ("id", jstr id); ("op", jstr "estimaet");
                 ("sql", jstr Fault.default_sql) ],
      Id id )
  | 6 -> (json_obj [ ("v", jint 1); ("id", jstr id); ("op", jint 5) ], Id id)
  | _ ->
    ( json_obj [ ("v", jint 1); ("id", jstr id); ("op", jstr "estimate");
                 ("sql", jstr Fault.default_sql);
                 ("deadline_ms", jstr "soon") ],
      Id id )

let oversized_frame ~max_frame_bytes =
  (String.make (max_frame_bytes + 16) 'x', Anon)

let drain_frame ~id =
  (json_obj [ ("v", jint 1); ("id", jstr id); ("op", jstr "drain") ], Id id)

(* --- one session --- *)

type session_plan = {
  kind : kind;
  config : Serve.Server.config;
  frames : (string * expect) list;
  churn_ops : int;  (* concurrent catalog mutations; 0 = no churn thread *)
  cut_after : int;  (* Disconnect: close the response pipe after N frames *)
}

let plan_session rng index =
  let kind =
    match Rel.Prng.int rng 10 with
    | 0 | 1 -> Ordered
    | 2 -> Disconnect
    | _ -> Chaos
  in
  let domains = match kind with Ordered -> 1 | _ -> Rel.Prng.int_in rng 1 3 in
  let max_frame_bytes = match kind with Chaos -> 4096 | _ -> 65536 in
  let config =
    {
      Serve.Server.default_config with
      domains;
      queue_depth = Rel.Prng.int_in rng 2 8;
      max_frame_bytes;
      drain_deadline_ms = 2_000.;
      retry_backoff_ms = 0.1;
    }
  in
  let n_frames = Rel.Prng.int_in rng 4 24 in
  let fid i = Printf.sprintf "s%d-r%d" index i in
  let frames = ref [] in
  let counter = ref 0 in
  let next_id () = incr counter; fid !counter in
  for _ = 1 to n_frames do
    let f =
      match kind with
      | Ordered -> valid_frame rng ~id:(next_id ()) ~ordered:true
      | Disconnect | Chaos -> begin
        match Rel.Prng.int rng 10 with
        | 0 | 1 | 2 ->
          if kind = Chaos && Rel.Prng.int rng 4 = 0 then
            oversized_frame ~max_frame_bytes
          else malformed_frame rng ~id:(next_id ())
        | 3 when kind = Chaos && Rel.Prng.int rng 3 = 0 -> ("", Nothing)
        | _ -> valid_frame rng ~id:(next_id ()) ~ordered:false
      end
    in
    frames := f :: !frames
  done;
  let frames = List.rev !frames in
  let frames =
    match kind with
    | Disconnect -> frames
    | Ordered | Chaos ->
      (* End with an explicit drain, then poke the draining session with
         a few more requests: deterministic "draining" sheds, every one
         still answered with its id. *)
      let post =
        List.init (Rel.Prng.int rng 3) (fun _ ->
            valid_frame rng ~id:(next_id ()) ~ordered:false)
      in
      frames @ (drain_frame ~id:(next_id ()) :: post)
  in
  let churn_ops =
    match kind with
    | Chaos when Rel.Prng.int rng 2 = 0 -> Rel.Prng.int_in rng 4 12
    | _ -> 0
  in
  let cut_after =
    match kind with
    | Disconnect -> max 1 (List.length frames / 2)
    | _ -> max_int
  in
  { kind; config; frames; churn_ops; cut_after }

(* Read everything the server writes, watching for stalls: accumulates
   raw bytes until EOF, or flags a hang when the stream stays silent past
   the watchdog. *)
let client_reader fd ~watchdog_s =
  let buf = Buffer.create 4096 in
  let hang = ref false in
  let chunk = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. watchdog_s in
  let rec loop () =
    if Unix.gettimeofday () > deadline then hang := true
    else
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _, _, _ -> begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      end
  in
  loop ();
  (Buffer.contents buf, !hang)

let response_lines raw =
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' raw)

let sorted_ids ids = List.sort String.compare ids

let run ?(seed = 1) ?(watchdog_s = 60.) ~sessions () =
  let rng = Rel.Prng.create seed in
  let t_start = Unix.gettimeofday () in
  let metrics = Obs.Metrics.create () in
  let frames_sent = ref 0 and valid_sent = ref 0 in
  let malformed_sent = ref 0 and oversized_sent = ref 0 in
  let disconnects = ref 0 and ordered = ref 0 and churned = ref 0 in
  let answered_ok = ref 0 and answered_error = ref 0 in
  let shed = ref 0 and budget_trips = ref 0 and epoch_retries = ref 0 in
  let internal_errors = ref 0 in
  let drains = ref 0 and drain_timeouts = ref 0 in
  let unanswered = ref 0 and bad_responses = ref 0 in
  let epoch_regressions = ref 0 in
  let hangs = ref 0 and crashes = ref 0 in
  let first_failure = ref None in
  let fail index what =
    if !first_failure = None then
      first_failure :=
        Some
          (Printf.sprintf
             "session %d | %s | repro: elsdb serve-chaos --seed %d \
              --sessions %d"
             index what seed sessions)
  in
  for index = 1 to sessions do
    let plan = plan_session rng index in
    (match plan.kind with
    | Ordered -> incr ordered
    | Disconnect -> incr disconnects
    | Chaos -> ());
    if plan.churn_ops > 0 then incr churned;
    (* Pre-draw the churn schedule so the worker thread never touches the
       run's rng. *)
    let churn_plan =
      List.init plan.churn_ops (fun _ ->
          let table = List.nth tables (Rel.Prng.int rng 3) in
          let op = Rel.Prng.int rng 3 in
          let rows =
            List.init (Rel.Prng.int_in rng 1 15) (fun _ ->
                [
                  Rel.Value.Int (Rel.Prng.int_in rng 1 80);
                  Rel.Value.Int (Rel.Prng.int_in rng 1 50);
                ])
          in
          (op, table, rows))
    in
    match
      let db = Fault.base_db ~seed:(seed + index) () in
      let server = Serve.Server.create ~config:plan.config ~metrics db in
      let c2s_r, c2s_w = Unix.pipe ~cloexec:true () in
      let s2c_r, s2c_w = Unix.pipe ~cloexec:true () in
      let stats = ref None in
      let server_exn = ref None in
      let server_thread =
        Thread.create
          (fun () ->
            let ic = Unix.in_channel_of_descr c2s_r in
            let oc = Unix.out_channel_of_descr s2c_w in
            (try stats := Some (Serve.Server.session server ic oc)
             with exn -> server_exn := Some exn);
            (* Close our end so the client reader sees EOF. *)
            try Unix.close s2c_w with Unix.Unix_error _ -> ())
          ()
      in
      let churn_exn = ref None in
      let churn_thread =
        if plan.churn_ops = 0 then None
        else
          Some
            (Thread.create
               (fun () ->
                 try
                   List.iter
                     (fun (op, table, rows) ->
                       Serve.Server.locked server (fun store ->
                           match op with
                           | 0 -> Catalog.Store.insert store ~table rows
                           | 1 -> Catalog.Store.reanalyze store ~table
                           | _ ->
                             ignore
                               (Catalog.Store.publish store
                                 : (Catalog.Epoch.t, Catalog.Validate.issue)
                                   result));
                       Unix.sleepf 0.0005)
                     churn_plan
                 with exn -> churn_exn := Some exn)
               ())
      in
      let reader_result = ref ("", false) in
      let reader_thread =
        if plan.kind = Disconnect then None
        else
          Some
            (Thread.create
               (fun () -> reader_result := client_reader s2c_r ~watchdog_s)
               ())
      in
      (* Write the session's frames; for Disconnect sessions, cut the
         response pipe partway through so server writes start failing. *)
      List.iteri
        (fun i (line, expect) ->
          if i = plan.cut_after then
            (try Unix.close s2c_r with Unix.Unix_error _ -> ());
          incr frames_sent;
          (match expect with
          | Id _ -> incr valid_sent
          | Anon ->
            if String.length line > plan.config.Serve.Server.max_frame_bytes
            then incr oversized_sent
            else incr malformed_sent
          | Nothing -> ());
          let payload = Bytes.of_string (line ^ "\n") in
          try ignore (Unix.write c2s_w payload 0 (Bytes.length payload))
          with Unix.Unix_error _ -> ())
        plan.frames;
      (try Unix.close c2s_w with Unix.Unix_error _ -> ());
      Thread.join server_thread;
      Option.iter Thread.join churn_thread;
      Option.iter Thread.join reader_thread;
      (try Unix.close c2s_r with Unix.Unix_error _ -> ());
      if plan.kind = Disconnect then
        (try Unix.close s2c_r with Unix.Unix_error _ -> ());
      (match !churn_exn with
      | Some exn -> raise exn
      | None -> ());
      (match !server_exn with
      | Some exn -> raise exn
      | None -> ());
      let stats =
        match !stats with
        | Some s -> s
        | None -> failwith "session returned no stats"
      in
      answered_ok := !answered_ok + stats.Serve.Server.answered_ok;
      answered_error := !answered_error + stats.Serve.Server.answered_error;
      shed := !shed + stats.Serve.Server.shed;
      budget_trips := !budget_trips + stats.Serve.Server.budget_trips;
      epoch_retries := !epoch_retries + stats.Serve.Server.epoch_retries;
      internal_errors := !internal_errors + stats.Serve.Server.internal_errors;
      if stats.Serve.Server.internal_errors > 0 then
        fail index
          (Printf.sprintf "%d exception-firewall hit(s)"
             stats.Serve.Server.internal_errors);
      if stats.Serve.Server.drained then incr drains;
      if stats.Serve.Server.drain_timed_out then incr drain_timeouts;
      let final_epoch =
        (Catalog.Store.stats (Serve.Server.store server)).Catalog.Store.epoch
      in
      if plan.kind <> Disconnect then begin
        let raw, hang = !reader_result in
        if hang then begin
          incr hangs;
          fail index "client watchdog tripped: response stream stalled"
        end;
        let lines = response_lines raw in
        let ids = ref [] and anon = ref 0 and epochs = ref [] in
        List.iter
          (fun line ->
            match Obs.Json.of_string line with
            | Error msg ->
              incr bad_responses;
              fail index (Printf.sprintf "unparseable response: %s" msg)
            | Ok json -> begin
              (match Obs.Json.member "id" json with
              | Some (Obs.Json.String id) -> ids := id :: !ids
              | Some Obs.Json.Null -> incr anon
              | Some _ | None ->
                incr bad_responses;
                fail index "response without an id field");
              match Obs.Json.member "epoch" json with
              | Some (Obs.Json.Int e) -> epochs := e :: !epochs
              | _ -> ()
            end)
          lines;
        let expected_ids =
          List.filter_map
            (fun (_, e) -> match e with Id id -> Some id | _ -> None)
            plan.frames
        in
        let expected_anon =
          List.length
            (List.filter (fun (_, e) -> e = Anon) plan.frames)
        in
        if sorted_ids !ids <> sorted_ids expected_ids then begin
          incr unanswered;
          fail index
            (Printf.sprintf
               "id accounting: %d answered ids vs %d expected"
               (List.length !ids) (List.length expected_ids))
        end;
        if !anon <> expected_anon then begin
          incr unanswered;
          fail index
            (Printf.sprintf "anonymous refusals: %d vs %d expected" !anon
               expected_anon)
        end;
        let epochs = List.rev !epochs in
        List.iter
          (fun e ->
            if e > final_epoch then begin
              incr epoch_regressions;
              fail index
                (Printf.sprintf "response epoch %d newer than final %d" e
                   final_epoch)
            end)
          epochs;
        if plan.kind = Ordered then
          ignore
            (List.fold_left
               (fun prev e ->
                 if e < prev then begin
                   incr epoch_regressions;
                   fail index
                     (Printf.sprintf
                        "wire-order epoch regression: %d after %d" e prev)
                 end;
                 max prev e)
               0 epochs)
      end
      else if not stats.Serve.Server.disconnected then
        (* The cut pipe must have been noticed, not silently absorbed. *)
        fail index "disconnect session never recorded the dead client"
    with
    | () -> ()
    | exception exn ->
      incr crashes;
      fail index ("crash: " ^ Printexc.to_string exn)
  done;
  {
    sessions;
    seed;
    frames_sent = !frames_sent;
    valid_sent = !valid_sent;
    malformed_sent = !malformed_sent;
    oversized_sent = !oversized_sent;
    disconnect_sessions = !disconnects;
    ordered_sessions = !ordered;
    churn_sessions = !churned;
    answered_ok = !answered_ok;
    answered_error = !answered_error;
    shed = !shed;
    budget_trips = !budget_trips;
    epoch_retries = !epoch_retries;
    internal_errors = !internal_errors;
    drains = !drains;
    drain_timeouts = !drain_timeouts;
    unanswered = !unanswered;
    bad_responses = !bad_responses;
    epoch_regressions = !epoch_regressions;
    hangs = !hangs;
    crashes = !crashes;
    first_failure = !first_failure;
    elapsed_s = Unix.gettimeofday () -. t_start;
    metrics = Obs.Metrics.snapshot metrics;
  }

let pass s =
  s.crashes = 0 && s.hangs = 0 && s.unanswered = 0 && s.bad_responses = 0
  && s.epoch_regressions = 0 && s.internal_errors = 0
  && (s.sessions < 50
     || (s.shed > 0 && s.malformed_sent > 0 && s.budget_trips > 0))

let render s =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt
  in
  line "serve-chaos: %d sessions (seed %d) in %.2fs" s.sessions s.seed
    s.elapsed_s;
  line "  frames:            %d sent (%d valid, %d malformed, %d oversized)"
    s.frames_sent s.valid_sent s.malformed_sent s.oversized_sent;
  line "  session mix:       %d ordered probes, %d disconnects, %d with \
        concurrent churn"
    s.ordered_sessions s.disconnect_sessions s.churn_sessions;
  line "  answered:          %d ok, %d structured errors" s.answered_ok
    s.answered_error;
  line "  admission control: %d shed, %d budget trips, %d epoch retries"
    s.shed s.budget_trips s.epoch_retries;
  line "  drains:            %d completed, %d timed out" s.drains
    s.drain_timeouts;
  line "  accounting:        %d unanswered, %d bad responses" s.unanswered
    s.bad_responses;
  line "  epoch visibility:  %d regressions" s.epoch_regressions;
  line "  firewall:          %d internal errors" s.internal_errors;
  line "  stability:         %d hangs, %d crashes%s" s.hangs s.crashes
    (match s.first_failure with
    | Some msg -> Printf.sprintf "  (first failure: %s)" msg
    | None -> "");
  if not (Obs.Metrics.is_empty s.metrics) then begin
    line "  metrics:";
    List.iter
      (fun l -> if not (String.equal l "") then line "    %s" l)
      (String.split_on_char '\n'
         (Format.asprintf "%a" Obs.Metrics.pp s.metrics))
  end;
  line "serve-chaos: %s" (if pass s then "PASS" else "FAIL");
  Buffer.contents b
