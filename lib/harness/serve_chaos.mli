(** Experiment F15: protocol-level chaos against the estimation service.

    Drives the {e real} {!Serve.Server.session} loop — the same code
    [elsdb serve] runs — over pipe pairs, one randomized session at a
    time, and throws the full damage catalogue at it: malformed and
    truncated frames, random bytes, adversarially deep JSON nesting,
    oversized frames, unknown protocol versions and ops, ill-typed
    fields, microsecond-deadline storms, post-drain requests, abrupt
    mid-session client disconnects, and concurrent catalog churn
    (inserts, re-ANALYZEs and epoch publishes through
    {!Serve.Server.locked} while requests are in flight).

    The robustness contract asserted:

    - {e zero crashes}: no session thread, worker domain or churn thread
      dies with an uncaught exception, and the server loop always
      reaches its post-EOF drain;
    - {e no hangs}: every session reaches EOF on the response stream
      within the client watchdog;
    - {e total accounting}: every request frame that carried an id is
      answered exactly once with that id (shed and malformed included —
      never a silent drop), and every id-less damaged frame gets exactly
      one anonymous structured refusal;
    - {e monotone epoch visibility}: ordered-probe sessions (one worker
      domain, no churn, no inline-answered ops, so wire order equals
      processing order) must see non-decreasing epoch ids on the wire,
      and no session may see an epoch newer than the store's final one;
    - {e no firewall hits}: the per-request exception firewall is a last
      line of defense — protocol damage must be refused by parsing, not
      by catching, so [internal_errors] must stay zero;
    - {e visible load shedding}: across a full run, sheds, malformed
      refusals and budget trips must all actually occur (the chaos must
      chaose), with p50/p99 latency and shed/retry/drain counters
      published to the shared {!Obs.Metrics} registry.

    Deterministic given [seed]; a failure report carries the session
    index and the one-command repro. *)

type summary = {
  sessions : int;
  seed : int;
  frames_sent : int;
  valid_sent : int;  (** well-formed protocol requests *)
  malformed_sent : int;  (** frames expected to be refused *)
  oversized_sent : int;
  disconnect_sessions : int;  (** sessions that cut the response pipe *)
  ordered_sessions : int;  (** wire-order epoch probes *)
  churn_sessions : int;  (** sessions with a concurrent catalog mutator *)
  answered_ok : int;
  answered_error : int;
  shed : int;
  budget_trips : int;
  epoch_retries : int;
  internal_errors : int;  (** firewall catches — failure when nonzero *)
  drains : int;
  drain_timeouts : int;
  unanswered : int;  (** id-accounting mismatches — failure *)
  bad_responses : int;  (** response lines that failed to parse — failure *)
  epoch_regressions : int;  (** wire-order or future-epoch breaches — failure *)
  hangs : int;  (** watchdog trips — failure *)
  crashes : int;
  first_failure : string option;
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot;
      (** the shared service registry: ["serve.*"] counters, latency
          histogram with p50/p99 gauges, absorbed ["store.*"] totals *)
}

val run : ?seed:int -> ?watchdog_s:float -> sessions:int -> unit -> summary
(** Defaults: seed 1, 60 s per-session watchdog. Deterministic given
    [seed]. *)

val pass : summary -> bool
(** Zero crashes, hangs, unanswered/bad responses, epoch regressions and
    internal errors; for runs of at least 50 sessions the chaos must
    demonstrably fire (sheds, malformed refusals and budget trips all
    nonzero). *)

val render : summary -> string
