type point = {
  rank : int;
  true_rows : int;
  uniform_est : float;
  histogram_est : float;
  mcv_est : float;
}

let run ?(seed = 13) ?(rows = 50000) ?(distinct = 1000) ?(theta = 1.2)
    ?(mcv_entries = 50) ?(ranks = [ 1; 2; 5; 10; 50; 200; 800 ]) () =
  let rng = Datagen.Prng.create seed in
  let values =
    Array.map
      (fun v -> Rel.Value.Int v)
      (Datagen.Distribution.generate (Datagen.Distribution.Zipf theta) rng
         ~rows ~distinct)
  in
  let uniform_stats = Stats.Col_stats.of_values values in
  let histogram_stats =
    Stats.Col_stats.of_values ~histogram:Stats.Histogram.Equi_depth
      ~histogram_buckets:64 values
  in
  let mcv_stats = Stats.Col_stats.of_values ~mcv:mcv_entries values in
  let n = float_of_int (Array.length values) in
  let estimate stats v =
    n *. Stats.Selectivity_est.comparison stats Rel.Cmp.Eq v
  in
  List.map
    (fun rank ->
      let v = Rel.Value.Int rank (* value = rank under the Zipf mapping *) in
      let true_rows =
        Array.fold_left
          (fun acc x -> if Rel.Value.equal x v then acc + 1 else acc)
          0 values
      in
      {
        rank;
        true_rows;
        uniform_est = estimate uniform_stats v;
        histogram_est = estimate histogram_stats v;
        mcv_est = estimate mcv_stats v;
      })
    ranks

let render points =
  Report.table
    ~header:[ "rank"; "true rows"; "uniform est"; "histogram est"; "MCV est" ]
    (List.map
       (fun p ->
         [
           string_of_int p.rank;
           string_of_int p.true_rows;
           Report.float_cell p.uniform_est;
           Report.float_cell p.histogram_est;
           Report.float_cell p.mcv_est;
         ])
       points)
