(** Supplementary figure F4: skewed local predicates (the paper's §9
    future work).

    A Zipf(θ) column breaks the uniformity assumption for local
    predicates. This experiment compares three statistics regimes on
    equality predicates against Zipf data:

    - {e uniform}: the plain [1/d] rule;
    - {e histogram}: equi-depth buckets;
    - {e MCV}: a most-common-value sketch with the uniform remainder.

    For each queried rank the estimated row count is compared with the
    exact count. MCV statistics are exact on tracked (frequent) values,
    where the uniform rule is off by orders of magnitude. *)

type point = {
  rank : int;  (** queried value: the rank-th most frequent *)
  true_rows : int;
  uniform_est : float;
  histogram_est : float;
  mcv_est : float;
}

val run :
  ?seed:int ->
  ?rows:int ->
  ?distinct:int ->
  ?theta:float ->
  ?mcv_entries:int ->
  ?ranks:int list ->
  unit ->
  point list
(** Defaults: 50000 rows, 1000 distinct values, θ = 1.2, 50 MCV entries,
    ranks [1; 2; 5; 10; 50; 200; 800]. *)

val render : point list -> string
