type point = {
  theta : float;
  estimate : float;
  true_size : int;
  ratio : float option;
}

let run ?(seed = 19) ?(rows = (20000, 10000)) ?(distinct = 500)
    ?(thetas = [ 0.; 0.5; 1.0; 1.5 ]) () =
  let rows1, rows2 = rows in
  List.map
    (fun theta ->
      let rng = Datagen.Prng.create seed in
      let db = Catalog.Db.create () in
      let dist =
        if theta = 0. then Datagen.Distribution.Random_uniform
        else Datagen.Distribution.Zipf theta
      in
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r1"
           ~rows:rows1
           [ Datagen.Tablegen.column ~distribution:dist "a" ~distinct ]);
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r2"
           ~rows:rows2
           [ Datagen.Tablegen.column ~distribution:dist "a" ~distinct ]);
      let query =
        Query.make ~projection:Query.Count_star ~tables:[ "r1"; "r2" ]
          [
            Query.Predicate.col_eq (Query.Cref.v "r1" "a")
              (Query.Cref.v "r2" "a");
          ]
      in
      let estimate = Els.estimate Els.Config.els db query [ "r1"; "r2" ] in
      let true_size =
        (Exec.Executor.run_query db query).Exec.Executor.row_count
      in
      {
        theta;
        estimate;
        true_size;
        ratio =
          (if true_size = 0 then None
           else Some (estimate /. float_of_int true_size));
      })
    thetas

let render points =
  Report.table
    ~header:[ "theta"; "uniform-model est"; "true size"; "est/true" ]
    (List.map
       (fun p ->
         [
           Report.float_cell p.theta;
           Report.float_cell p.estimate;
           string_of_int p.true_size;
           (match p.ratio with Some r -> Report.float_cell r | None -> "-");
         ])
       points)
