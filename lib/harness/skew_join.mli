(** Supplementary figure F7: the uniformity assumption's limits on
    {e join} columns.

    The paper relaxes uniformity only for local predicates and explicitly
    leaves join-column skew as future work ("Relaxing the assumption in
    the case of join predicates would enable query optimizers to account
    for important data distributions such as the Zipfian distribution").
    This experiment quantifies that limit: two tables are joined on
    columns drawn Zipf(θ); as θ grows, the uniform Equation 2 estimate
    (which all three rules share here — a single predicate, no
    redundancy) drifts further from the executed truth.

    This is a negative result by design — it marks the boundary of the
    paper's model rather than a defect of Rule LS. *)

type point = {
  theta : float;
  estimate : float;  (** Equation 2 estimate (same for M/SS/LS here) *)
  true_size : int;
  ratio : float option;  (** estimate / true; [None] when the true result
                             is empty (rendered as "-", not [nan]) *)
}

val run :
  ?seed:int ->
  ?rows:int * int ->
  ?distinct:int ->
  ?thetas:float list ->
  unit ->
  point list
(** Defaults: 20000 and 10000 rows, 500 distinct values on both sides,
    θ ∈ [0; 0.5; 1.0; 1.5]. *)

val render : point list -> string
