(* Experiment F11: randomized soak/chaos harness.

   Each iteration draws a random workload (chain or star), optionally
   corrupts its catalog with a random Fault kind, picks a random
   strictness, estimator and enumerator, and drives optimize + execute
   under randomized resource budgets. The contract asserted over the
   whole run:

   - the pipeline never crashes with a raw exception and never hangs
     (every loop is budget-bounded);
   - every produced estimate/cost is finite and non-negative;
   - optimizer deadlines are respected within a wall-clock tolerance;
   - with identical inputs a larger node budget never yields a costlier
     chosen plan (the anytime ladder's monotonicity guarantee);
   - a cancelled execution leaves the budget and work counters in exact
     agreement (rows_used = tuples_read + tuples_output). *)

type summary = {
  iterations : int;
  estimated : int;
  degraded : int;
  crashes : int;
  first_crash : string option;
  non_finite : int;
  first_non_finite : string option;
  trap_propagations : int;
  budget_trips : int;
  degraded_rungs : int;
  monotonicity_checks : int;
  monotonicity_violations : int;
  deadline_checks : int;
  deadline_violations : int;
  executions : int;
  cancelled_runs : int;
  counter_mismatches : int;
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot;
}

let strictnesses =
  [ Catalog.Validate.Strict; Catalog.Validate.Repair; Catalog.Validate.Trap ]

let pick rng list = List.nth list (Rel.Prng.int rng (List.length list))

let random_workload rng =
  let seed = Rel.Prng.int rng 1_000_000 in
  match Rel.Prng.int rng 3 with
  | 0 ->
    Datagen.Workload.chain ~rows_range:(20, 120) ~distinct_range:(3, 40)
      ~seed
      ~n_tables:(Rel.Prng.int_in rng 2 6)
      ()
  | 1 ->
    Datagen.Workload.star
      ~fact_rows:(Rel.Prng.int_in rng 50 200)
      ~dim_rows_range:(10, 60) ~seed
      ~n_dims:(Rel.Prng.int_in rng 1 4)
      ()
  | _ ->
    (* Comparison-join leg: a chain whose last link is an inequality or
       band, exercising the CDF-convolution estimator, the interpreted
       kernel fallback and the generalized sort-merge under the same
       chaos (corruption × strictness × budgets) as the equality legs. *)
    let op =
      pick rng
        [
          Query.Predicate.Lt; Query.Predicate.Le; Query.Predicate.Gt;
          Query.Predicate.Ge;
          Query.Predicate.Band (float_of_int (Rel.Prng.int_in rng 0 4));
        ]
    in
    Datagen.Workload.comparison ~rows_range:(20, 120)
      ~distinct_range:(3, 40) ~op ~seed
      ~n_tables:(Rel.Prng.int_in rng 2 4)
      ()

let finite_choice choice =
  let ok x = Float.is_finite x && x >= 0. in
  ok choice.Optimizer.estimated_cost
  && List.for_all ok choice.Optimizer.intermediate_estimates

let run ?(seed = 1) ?iter_seed ?(deadline_ms = 5.) ?(tolerance_ms = 250.)
    ~iters () =
  let master = Rel.Prng.create seed in
  (* [iter_seed] replays exactly one iteration: the failure reports print
     the per-iteration seed, so any soak assertion is reproducible with
     one command regardless of where in the run it fired. *)
  let iters = match iter_seed with Some _ -> 1 | None -> iters in
  let t_start = Unix.gettimeofday () in
  let estimated = ref 0 and degraded = ref 0 in
  let crashes = ref 0 and first_crash = ref None in
  let non_finite = ref 0 and first_non_finite = ref None in
  let trap_propagations = ref 0 in
  let budget_trips = ref 0 and degraded_rungs = ref 0 in
  let mono_checks = ref 0 and mono_violations = ref 0 in
  let dl_checks = ref 0 and dl_violations = ref 0 in
  let executions = ref 0 and cancelled = ref 0 in
  let mismatches = ref 0 in
  let metrics = Obs.Metrics.create () in
  let crash scenario exn =
    incr crashes;
    if !first_crash = None then
      first_crash := Some (Printf.sprintf "%s | %s" (Printexc.to_string exn)
                             scenario)
  in
  for _ = 1 to iters do
    let this_seed =
      match iter_seed with
      | Some s -> s
      | None -> Rel.Prng.int master 1_000_000_000
    in
    let rng = Rel.Prng.create this_seed in
    let spec = random_workload rng in
    let query = spec.Datagen.Workload.query in
    let corruption =
      (* Roughly a third of the iterations run against a corrupted
         catalog crossed from the F9 fault injector. *)
      if Rel.Prng.int rng 3 = 0 then Some (pick rng Fault.all) else None
    in
    let db =
      match corruption with
      | Some kind -> Fault.corrupt_db kind spec.Datagen.Workload.db
      | None -> spec.Datagen.Workload.db
    in
    let strictness = pick rng strictnesses in
    let estimator = pick rng (Els.Estimator.registry ()) in
    let enumerator =
      pick rng
        [
          Optimizer.Exhaustive; Optimizer.Greedy_order;
          Optimizer.Randomized (Rel.Prng.int rng 1_000);
        ]
    in
    let scenario =
      Printf.sprintf
        "scenario: %s | %s | %s | %s | %s | repro: elsdb soak --iter-seed %d"
        (Els.Estimator.label estimator)
        (Catalog.Validate.strictness_name strictness)
        (match enumerator with
        | Optimizer.Exhaustive -> "dp"
        | Optimizer.Greedy_order -> "greedy"
        | Optimizer.Randomized s -> Printf.sprintf "random:%d" s)
        (match corruption with
        | Some kind -> "corrupt:" ^ Fault.name kind
        | None -> "clean")
        (Query.to_string query) this_seed
    in
    let crash = crash scenario in
    let config =
      Els.Config.with_strictness strictness
        (Els.Config.of_estimator estimator)
    in
    (* Leg 1: robustness under a small random node budget (usually
       trips) — never a crash, never a non-finite answer. *)
    let budget =
      if Rel.Prng.bool rng then
        Some (Rel.Budget.create ~node_budget:(Rel.Prng.int rng 30) ())
      else None
    in
    (match Optimizer.choose ~enumerator ?budget config db query with
    | exception Els.Els_error.Error _ -> incr degraded
    | exception exn -> crash exn
    | choice ->
      incr estimated;
      Obs_report.absorb_choice metrics choice;
      if not (finite_choice choice) then begin
        (* Trap mode is observe-only by design: a bad number may
           propagate, but only when the guards counted the violation —
           an uncounted escape is a failure in every mode. *)
        let counted_trap =
          strictness = Catalog.Validate.Trap
          && (Els.Profile.guard_stats choice.Optimizer.profile)
               .Els.Guard.violations > 0
        in
        if counted_trap then incr trap_propagations else incr non_finite;
        if (not counted_trap) && !first_non_finite = None then
          first_non_finite :=
            Some
              (Printf.sprintf "cost %h | estimates [%s] | %s"
                 choice.Optimizer.estimated_cost
                 (String.concat "; "
                    (List.map (Printf.sprintf "%h")
                       choice.Optimizer.intermediate_estimates))
                 scenario)
      end;
      if choice.Optimizer.provenance.Optimizer.Provenance.exhausted <> None
      then begin
        incr budget_trips;
        incr degraded_rungs
      end;
      (* Leg 4: execute the chosen plan under a row budget; whether the
         run completes or is cancelled, the budget's row count must agree
         exactly with the work counters. *)
      let row_budget = Rel.Prng.int_in rng 10 2_000 in
      let b = Rel.Budget.create ~row_budget () in
      incr executions;
      (match
         Exec.Executor.count_result ~budget:b db choice.Optimizer.plan
       with
      | Ok _, counters, _ | Error _, counters, _ ->
        Obs_report.absorb_counters metrics counters;
        Obs_report.absorb_budget metrics b;
        if Rel.Budget.exhausted b <> None then incr cancelled;
        if
          Rel.Budget.rows_used b
          <> counters.Exec.Counters.tuples_read
             + counters.Exec.Counters.tuples_output
        then incr mismatches
      | exception Els.Els_error.Error _ -> incr degraded
      | exception Invalid_argument _ ->
        (* stats-only table or INL shape limits: legitimate refusal *)
        incr degraded
      | exception exn -> crash exn));
    (* Leg 2: budget monotonicity — same inputs, growing node budgets,
       DP + ELS; the chosen cost must never increase. *)
    (match
       List.filter_map
         (fun node_budget ->
           let budget = Rel.Budget.create ~node_budget () in
           match
             Optimizer.choose ~enumerator:Optimizer.Exhaustive ~budget
               (Els.Config.with_strictness Catalog.Validate.Repair
                  Els.Config.els)
               db query
           with
           | choice -> Some choice.Optimizer.estimated_cost
           | exception Els.Els_error.Error _ -> None)
         [ 1; 4; 16; 64; 100_000 ]
     with
    | costs ->
      incr mono_checks;
      (* [costs] is ordered by growing budget: each must be no worse than
         the one before it. *)
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> b <= a && non_increasing rest
        | [ _ ] | [] -> true
      in
      if not (non_increasing costs) then incr mono_violations
    | exception exn -> crash exn);
    (* Leg 3: deadline respect — a real-clock deadline must cancel the
       search within a generous wall-clock tolerance. *)
    (match
       let budget = Rel.Budget.create ~deadline_ms () in
       let t0 = Unix.gettimeofday () in
       let _ =
         Optimizer.choose ~enumerator:Optimizer.Exhaustive ~budget
           (Els.Config.with_strictness Catalog.Validate.Repair Els.Config.els)
           db query
       in
       (Unix.gettimeofday () -. t0) *. 1000.
     with
    | elapsed ->
      incr dl_checks;
      if elapsed > deadline_ms +. tolerance_ms then incr dl_violations
    | exception Els.Els_error.Error _ -> incr degraded
    | exception exn -> crash exn)
  done;
  {
    iterations = iters;
    estimated = !estimated;
    degraded = !degraded;
    crashes = !crashes;
    first_crash = !first_crash;
    non_finite = !non_finite;
    first_non_finite = !first_non_finite;
    trap_propagations = !trap_propagations;
    budget_trips = !budget_trips;
    degraded_rungs = !degraded_rungs;
    monotonicity_checks = !mono_checks;
    monotonicity_violations = !mono_violations;
    deadline_checks = !dl_checks;
    deadline_violations = !dl_violations;
    executions = !executions;
    cancelled_runs = !cancelled;
    counter_mismatches = !mismatches;
    elapsed_s = Unix.gettimeofday () -. t_start;
    metrics = Obs.Metrics.snapshot metrics;
  }

let pass s =
  s.crashes = 0 && s.non_finite = 0
  && s.monotonicity_violations = 0
  && s.deadline_violations = 0
  && s.counter_mismatches = 0

let render s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "soak: %d iterations in %.2fs" s.iterations s.elapsed_s;
  line "  plans produced:        %d" s.estimated;
  line "  structured refusals:   %d" s.degraded;
  line "  crashes:               %d%s" s.crashes
    (match s.first_crash with
    | Some msg when s.crashes > 0 -> Printf.sprintf "  (first: %s)" msg
    | _ -> "");
  line "  non-finite answers:    %d%s" s.non_finite
    (match s.first_non_finite with
    | Some detail when s.non_finite > 0 ->
      Printf.sprintf "  (first: %s)" detail
    | _ -> "");
  line "  trap propagations:     %d (guard-counted, observe-only mode)"
    s.trap_propagations;
  line "  budget trips:          %d (anytime rung answered %d)" s.budget_trips
    s.degraded_rungs;
  line "  monotonicity:          %d checks, %d violations"
    s.monotonicity_checks s.monotonicity_violations;
  line "  deadlines:             %d checks, %d violations" s.deadline_checks
    s.deadline_violations;
  line "  executions:            %d (%d cancelled, %d counter mismatches)"
    s.executions s.cancelled_runs s.counter_mismatches;
  if not (Obs.Metrics.is_empty s.metrics) then begin
    line "  metrics:";
    List.iter
      (fun l -> if not (String.equal l "") then line "    %s" l)
      (String.split_on_char '\n'
         (Format.asprintf "%a" Obs.Metrics.pp s.metrics))
  end;
  line "soak: %s" (if pass s then "PASS" else "FAIL");
  Buffer.contents b
