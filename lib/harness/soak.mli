(** Experiment F11: randomized soak/chaos harness for the budgeted
    pipeline.

    Crosses random workloads (chains and stars of random shape and size)
    with the F9 fault injector's catalog corruptions, every strictness
    mode, every registered estimator, every enumerator, and randomized
    resource budgets, then asserts the global robustness contract:

    - {e never crashes}: raw exceptions escaping the pipeline are counted
      as failures (structured {!Els.Els_error.t} refusals are fine);
    - {e never lies}: every produced estimate and cost is finite and
      non-negative;
    - {e deadlines hold}: an optimizer run under a wall-clock deadline
      finishes within the deadline plus a generous tolerance;
    - {e anytime monotonicity}: with identical inputs, growing the node
      budget never yields a costlier chosen plan;
    - {e cancellation is consistent}: however an execution stops, the
      budget's row count equals [tuples_read + tuples_output].

    Deterministic given [seed] (apart from the wall-clock deadline leg,
    whose tolerance absorbs scheduler noise). *)

type summary = {
  iterations : int;
  estimated : int;  (** iterations that produced a plan *)
  degraded : int;  (** structured refusals (expected under Strict etc.) *)
  crashes : int;  (** raw exceptions — any nonzero value is a failure *)
  first_crash : string option;
  non_finite : int;
      (** NaN/negative/infinite estimates that escaped {e uncounted} — a
          failure in every mode *)
  first_non_finite : string option;
      (** estimator/mode/enumerator/query of the first escape, for
          reproduction *)
  trap_propagations : int;
      (** bad numbers that propagated under [Trap] with the violation
          counted by the guards — the mode's documented observe-only
          behavior, not a failure *)
  budget_trips : int;
  degraded_rungs : int;  (** plans answered by a non-[Dp] ladder rung *)
  monotonicity_checks : int;
  monotonicity_violations : int;
  deadline_checks : int;
  deadline_violations : int;
  executions : int;
  cancelled_runs : int;  (** executions stopped by their row budget *)
  counter_mismatches : int;
      (** cancellations where [rows_used <> read + output] *)
  elapsed_s : float;
  metrics : Obs.Metrics.snapshot;
      (** unified metrics accumulated over the whole run via
          {!Obs_report}: profile caches, guard counters, catalog issues,
          executor work, budget usage, optimizer provenance *)
}

val run :
  ?seed:int ->
  ?iter_seed:int ->
  ?deadline_ms:float ->
  ?tolerance_ms:float ->
  iters:int ->
  unit ->
  summary
(** Defaults: seed 1, 5 ms optimizer deadline for the deadline leg,
    250 ms wall-clock tolerance. Each iteration derives its own seed from
    [seed]; every failure report carries the full scenario line
    (estimator, strictness, enumerator, corruption, query) plus that
    per-iteration seed, and [run ~iter_seed] replays exactly that one
    iteration ([iters] is ignored) — one command from report to repro. *)

val pass : summary -> bool
(** Zero crashes, non-finite answers, monotonicity violations, deadline
    violations and counter mismatches. *)

val render : summary -> string
