type column_record = {
  column : string;
  base_distinct : float;
  join_distinct : float;
  source : string;
}

type class_record = {
  class_root : string;
  kind : string;
  rule : string;
  inputs : (string * float) list;
  combined : float;
  columns : column_record list;
}

type step = {
  index : int;
  table : string;
  left_rows : float;
  right_rows : float;
  classes : class_record list;
  cap : float option;
  cap_source : string option;
  output : float;
}

type t = {
  mutable base_rev : (string * float) list;
  mutable steps_rev : step list;
  mutable annotations_rev : string list;
}

let create () = { base_rev = []; steps_rev = []; annotations_rev = [] }
let set_base t table rows = t.base_rev <- (table, rows) :: t.base_rev
let record_step t step = t.steps_rev <- step :: t.steps_rev
let annotate t note = t.annotations_rev <- note :: t.annotations_rev
let base t = List.rev t.base_rev
let steps t = List.rev t.steps_rev
let annotations t = List.rev t.annotations_rev

(* Mirrors Guard's Repair-mode clamps: the comparison chain rejects NaN,
   which repairs to the lower bound. *)
let clamp01 s = if s >= 0. && s <= 1. then s else if s > 1. then 1. else 0.

let clamp_card ~upper x =
  if x >= 0. && x <= upper then x else if x > upper then upper else 0.

let replay ~combine t =
  List.map
    (fun step ->
      let s =
        List.fold_left
          (fun acc c ->
            acc *. clamp01 (combine ~rule:c.rule (List.map snd c.inputs)))
          1. step.classes
      in
      let raw = step.left_rows *. step.right_rows *. s in
      let capped =
        match step.cap with Some cap -> Float.min raw cap | None -> raw
      in
      clamp_card ~upper:(step.left_rows *. step.right_rows) capped)
    (steps t)

let pp_card ppf t =
  Format.fprintf ppf "derivation:@.";
  List.iter
    (fun note -> Format.fprintf ppf "  note: %s@." note)
    (annotations t);
  List.iter
    (fun (table, rows) ->
      Format.fprintf ppf "  base %s: %.4g rows@." table rows)
    (base t);
  List.iter
    (fun step ->
      Format.fprintf ppf "  step %d: ⋈ %s  (%.4g × %.4g rows)@." step.index
        step.table step.left_rows step.right_rows;
      if step.classes = [] then
        Format.fprintf ppf "    cartesian step (no eligible predicates)@.";
      List.iter
        (fun c ->
          Format.fprintf ppf "    class %s  kind=%s  rule=%s  S=%.6g@."
            c.class_root c.kind c.rule c.combined;
          List.iter
            (fun (pred, s) ->
              Format.fprintf ppf "      %s  s=%.6g@." pred s)
            c.inputs;
          List.iter
            (fun col ->
              Format.fprintf ppf "      d′(%s)=%.4g of %.4g  [%s]@."
                col.column col.join_distinct col.base_distinct col.source)
            c.columns)
        step.classes;
      (match step.cap, step.cap_source with
      | Some cap, Some src -> Format.fprintf ppf "    cap: %.4g  [%s]@." cap src
      | Some cap, None -> Format.fprintf ppf "    cap: %.4g@." cap
      | None, _ -> ());
      Format.fprintf ppf "    → %.4g rows@." step.output)
    (steps t)

let column_json c =
  Json.Obj
    [
      ("column", Json.String c.column);
      ("base_distinct", Json.Float c.base_distinct);
      ("join_distinct", Json.Float c.join_distinct);
      ("source", Json.String c.source);
    ]

let class_json c =
  Json.Obj
    [
      ("class", Json.String c.class_root);
      ("kind", Json.String c.kind);
      ("rule", Json.String c.rule);
      ( "inputs",
        Json.List
          (List.map
             (fun (pred, s) ->
               Json.Obj
                 [ ("predicate", Json.String pred); ("selectivity", Json.Float s) ])
             c.inputs) );
      ("combined", Json.Float c.combined);
      ("columns", Json.List (List.map column_json c.columns));
    ]

let step_json s =
  Json.Obj
    [
      ("index", Json.Int s.index);
      ("table", Json.String s.table);
      ("left_rows", Json.Float s.left_rows);
      ("right_rows", Json.Float s.right_rows);
      ("classes", Json.List (List.map class_json s.classes));
      ("cap", match s.cap with Some c -> Json.Float c | None -> Json.Null);
      ( "cap_source",
        match s.cap_source with Some src -> Json.String src | None -> Json.Null
      );
      ("output", Json.Float s.output);
    ]

let to_json t =
  Json.Obj
    [
      ( "base",
        Json.List
          (List.map
             (fun (table, rows) ->
               Json.Obj [ ("table", Json.String table); ("rows", Json.Float rows) ])
             (base t)) );
      ("steps", Json.List (List.map step_json (steps t)));
      ( "annotations",
        Json.List (List.map (fun n -> Json.String n) (annotations t)) );
    ]
