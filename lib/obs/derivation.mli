(** Per-step estimate provenance: which rule and which statistic produced
    each number of an incremental join-size derivation.

    The paper derives every effective cardinality [d′] and every step size
    [S_J] from explicit rules (Sections 5–8); this module records that
    derivation as data so `elsdb explain` can print it as a card and the
    harnesses can emit it as JSON. The recorder is fed by
    [Els.Incremental] when a sink is attached to the profile; recording is
    observation-only — attach or detach a sink and the estimates stay
    bit-identical.

    The vocabulary is deliberately flat (strings and floats): this module
    sits below the relational stack and must not depend on it. *)

type column_record = {
  column : string;  (** "table.column" *)
  base_distinct : float;  (** d: catalog cardinality *)
  join_distinct : float;  (** d′ entering the join selectivity *)
  source : string;
      (** where d′ came from: ["base"], ["urn"], ["equality(mcv)"],
          ["range(histogram)"], ["single-table(...)"], ... *)
}

type class_record = {
  class_root : string;  (** equivalence-class representative column *)
  kind : string;
      (** predicate kind of the group: ["eq"] (class of equality
          predicates), ["ineq"] or ["band"] (singleton comparison
          predicate) *)
  rule : string;  (** estimator id that combined the class (m/ss/ls/pess) *)
  inputs : (string * float) list;
      (** eligible predicate text → its raw join selectivity, in
          conjunction order *)
  combined : float;  (** the class selectivity the rule produced *)
  columns : column_record list;  (** d′ provenance of the member columns *)
}

type step = {
  index : int;  (** 0-based position in the derivation *)
  table : string;  (** table joined in, or ["⋈"] for a bushy merge *)
  left_rows : float;
  right_rows : float;
  classes : class_record list;  (** in first-occurrence order *)
  cap : float option;
      (** the estimator's step bound, when one applied (bridged step under
          a capping estimator) *)
  cap_source : string option;
      (** provenance of the cap: which statistic it read (e.g. a degree
          norm from ANALYZE, or min-rows when degraded). Ignored by
          {!replay}. *)
  output : float;  (** the step's final (guarded) size *)
}

type t
(** A mutable derivation sink. *)

val create : unit -> t

val set_base : t -> string -> float -> unit
(** Record a starting table and its effective cardinality [‖R‖′]. *)

val record_step : t -> step -> unit

val annotate : t -> string -> unit
(** Attach a free-form staleness/context note to the card (e.g. "table x:
    serving last-known-good statistics"). Notes render ahead of the base
    rows in {!pp_card} and under ["annotations"] in {!to_json};
    observation-only, like everything here. *)

val base : t -> (string * float) list
(** Starting tables in recording order. *)

val annotations : t -> string list
(** Notes in recording order. *)

val steps : t -> step list
(** Recorded steps in recording order. *)

val replay : combine:(rule:string -> float list -> float) -> t -> float list
(** Recompute each step's output from its recorded parts, mirroring the
    incremental pipeline under Repair-mode clamping: per class,
    [combine ~rule inputs] clamped to [[0, 1]]; the step size is
    [left · right · Πclasses], capped when [cap] is set, then clamped to
    [[0, left·right]] (NaN repairs to 0). With [combine] dispatching to
    the registered estimators, the result is bit-identical to the
    recorded [output]s — the replay property the tests pin down. *)

val pp_card : Format.formatter -> t -> unit
(** Render the derivation as a human-readable card: one block per step
    with the equivalence classes, the rule that fired, each input
    selectivity, the d′ sources, the cap and the output size. *)

val to_json : t -> Json.t
