type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    (* Shortest representation that round-trips; %.17g as the fallback. *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

(* --- parsing --- *)

exception Parse_error of int * string

let of_string ?(max_depth = 512) ?(max_token_bytes = 1_000_000) s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> true
      | Some _ | None -> false
    do
      advance ()
    done
  in
  let literal word value =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* Adversarial input sits on the service's network boundary: both string
     and number tokens are length-capped so a single frame cannot buffer
     without bound, and container nesting is depth-capped so parsing is
     loop-free in the stack sense — the only recursion is [parse_value],
     and it refuses to go deeper than [max_depth]. *)
  let check_token n =
    if n > max_token_bytes then
      fail (Printf.sprintf "token longer than %d bytes" max_token_bytes)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      check_token (Buffer.length buf);
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> begin
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          if !pos + 4 >= len then fail "truncated \\u escape";
          let hex = String.sub s (!pos + 1) 4 in
          let code =
            match int_of_string_opt ("0x" ^ hex) with
            | Some c -> c
            | None -> fail "invalid \\u escape"
          in
          (* Basic-plane code points only; enough for our own output. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%04x" code);
          pos := !pos + 4
        | Some c -> fail (Printf.sprintf "invalid escape \\%c" c)
        | None -> fail "unterminated escape");
        advance ();
        loop ()
      end
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_number_char c | None -> false) do
      check_token (!pos - start);
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let has_float_syntax =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
    in
    if not has_float_syntax then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "invalid number %s" text)
    else
      match float_of_string_opt text with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "invalid number %s" text)
  in
  let rec parse_value depth =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      if depth >= max_depth then
        fail (Printf.sprintf "nesting deeper than %d levels" max_depth);
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value (depth + 1) ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value (depth + 1) :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      if depth >= max_depth then
        fail (Printf.sprintf "nesting deeper than %d levels" max_depth);
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value (depth + 1) in
          (key, value)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> len then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)
