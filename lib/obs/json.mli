(** Minimal JSON values for the observability surface.

    The observability layer emits machine-readable snapshots (metric
    registries, span trees, derivation traces) without taking a dependency
    on an external JSON library: this module is the whole story — an ADT,
    a standards-compliant printer, and a small parser used by the schema
    checker and the tests to round-trip what the CLI emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** insertion order is preserved *)

val to_string : t -> string
(** Compact rendering. Non-finite floats have no JSON spelling and are
    emitted as [null]; strings are escaped per RFC 8259. *)

val pp : Format.formatter -> t -> unit
(** Same rendering as {!to_string}. *)

val of_string :
  ?max_depth:int -> ?max_token_bytes:int -> string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed). Numbers
    without [.], [e] or [E] parse as [Int]; everything else as [Float].
    Errors carry a byte offset.

    The parser is {e total} on adversarial input — it always returns
    rather than crashing. Container nesting beyond [max_depth] (default
    512) is a structured parse error, never a stack overflow, and string
    or number tokens longer than [max_token_bytes] (default 1,000,000)
    are refused before they buffer. This matters because the serve
    protocol ({!Serve.Protocol}) puts this parser on the service's
    network boundary. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for other constructors. *)
