type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of summary

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }
type histogram = { h_name : string; mutable h : summary }

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as another kind" name)

let counter t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (I_counter c) -> c
  | Some (I_gauge _ | I_histogram _) -> kind_clash name
  | None ->
    let c = { c_name = name; c_value = 0 } in
    Hashtbl.replace t.instruments name (I_counter c);
    c

let gauge t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (I_gauge g) -> g
  | Some (I_counter _ | I_histogram _) -> kind_clash name
  | None ->
    let g = { g_name = name; g_value = 0. } in
    Hashtbl.replace t.instruments name (I_gauge g);
    g

let empty_summary = { count = 0; sum = 0.; min = Float.nan; max = Float.nan }

let histogram t name =
  match Hashtbl.find_opt t.instruments name with
  | Some (I_histogram h) -> h
  | Some (I_counter _ | I_gauge _) -> kind_clash name
  | None ->
    let h = { h_name = name; h = empty_summary } in
    Hashtbl.replace t.instruments name (I_histogram h);
    h

let incr ?(by = 1) c =
  if by < 0 then
    invalid_arg (Printf.sprintf "Metrics.incr %s: negative step %d" c.c_name by);
  c.c_value <- c.c_value + by

let set_counter c total =
  (* Absorbing an external monotone total must itself stay monotone. *)
  if total > c.c_value then c.c_value <- total

let set g v = g.g_value <- v

let observe h x =
  let s = h.h in
  h.h <-
    {
      count = s.count + 1;
      sum = s.sum +. x;
      min = (if s.count = 0 then x else Float.min s.min x);
      max = (if s.count = 0 then x else Float.max s.max x);
    }

type snapshot = (string * value) list  (* sorted by name *)

let snapshot t =
  Hashtbl.fold
    (fun name instrument acc ->
      let v =
        match instrument with
        | I_counter c -> Counter c.c_value
        | I_gauge g -> Gauge g.g_value
        | I_histogram h -> Histogram h.h
      in
      (name, v) :: acc)
    t.instruments []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  List.map
    (fun (name, v) ->
      match (v, List.assoc_opt name before) with
      | Counter a, Some (Counter b) -> (name, Counter (a - b))
      | Histogram a, Some (Histogram b) ->
        ( name,
          Histogram
            { count = a.count - b.count; sum = a.sum -. b.sum;
              min = a.min; max = a.max } )
      | Gauge _, _ -> (name, v)
      | (Counter _ | Histogram _), _ -> (name, v))
    after

let find snapshot name = List.assoc_opt name snapshot
let names snapshot = List.map fst snapshot
let bindings snapshot = snapshot
let is_empty snapshot = snapshot = []

let summary_json s =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
    ]

let to_json snapshot =
  let section f =
    List.filter_map
      (fun (name, v) -> Option.map (fun j -> (name, j)) (f v))
      snapshot
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (section (function Counter c -> Some (Json.Int c) | _ -> None)) );
      ( "gauges",
        Json.Obj
          (section (function Gauge g -> Some (Json.Float g) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (section (function
            | Histogram h -> Some (summary_json h)
            | _ -> None)) );
    ]

let pp ppf snapshot =
  List.iter
    (fun (name, v) ->
      (match v with
      | Counter c -> Format.fprintf ppf "%-40s %d" name c
      | Gauge g -> Format.fprintf ppf "%-40s %g" name g
      | Histogram h ->
        Format.fprintf ppf "%-40s count=%d sum=%g min=%g max=%g" name h.count
          h.sum h.min h.max);
      Format.pp_print_newline ppf ())
    snapshot
