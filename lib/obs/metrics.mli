(** Typed metrics registry: counters, gauges and histograms behind one
    snapshot / diff / JSON surface.

    The pipeline's statistics were historically scattered — profile cache
    hit/miss records, guard violation counts, catalog-repair tallies,
    budget usage, executor work counters, optimizer provenance — each with
    its own ad-hoc type and printer. A registry absorbs them all: live
    instruments for code that wants to increment in place, and
    [set_counter]/[set] absorption for modules that keep their own
    counters and publish totals at snapshot time.

    Instruments are identified by dot-separated names
    (["profile.cache.sel_hits"]). A snapshot is an immutable, sorted view;
    [diff] turns two snapshots into the activity between them. *)

type t
(** A registry. Not thread-safe. *)

type counter
(** Monotone non-negative integer. *)

type gauge
(** Arbitrary float, last-write-wins. *)

type histogram
(** Running summary (count / sum / min / max) of observed values. *)

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create. @raise Invalid_argument when the name is already
    registered as a different instrument kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
(** [by] defaults to 1. @raise Invalid_argument when [by < 0]. *)

val set_counter : counter -> int -> unit
(** Absorb an externally-maintained monotone total: the counter becomes
    [max current total], so re-publishing an unchanged total is a no-op
    and the counter never regresses. *)

val set : gauge -> float -> unit
val observe : histogram -> float -> unit

type summary = {
  count : int;
  sum : float;
  min : float;  (** [nan] when count = 0 *)
  max : float;  (** [nan] when count = 0 *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of summary

type snapshot
(** Immutable point-in-time view of a registry, sorted by name. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Activity between two snapshots: counters and histogram counts/sums
    subtract (instruments absent from [before] count from zero); gauges
    and histogram min/max take [after]'s value. Instruments only present
    in [before] are dropped. *)

val find : snapshot -> string -> value option
val names : snapshot -> string list
val bindings : snapshot -> (string * value) list

val is_empty : snapshot -> bool

val to_json : snapshot -> Json.t
(** One object per instrument kind: [{"counters": {...}, "gauges": {...},
    "histograms": {name: {count, sum, min, max}}}]. Present even when
    empty, so consumers can rely on the shape. *)

val pp : Format.formatter -> snapshot -> unit
(** One [name value] line per instrument, sorted. *)
