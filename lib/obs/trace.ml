type span = {
  name : string;
  start_s : float;
  duration_s : float;
  attrs : (string * Json.t) list;
  children : span list;
}

(* Open spans accumulate children and attributes in reverse; they are
   reified into the immutable [span] on close. *)
type open_span = {
  span_name : string;
  started : float;
  mutable attrs_rev : (string * Json.t) list;
  mutable children_rev : span list;
}

type t = {
  clock : unit -> float;
  mutable roots_rev : span list;
  mutable stack : open_span list;  (* innermost first *)
}

let create ?(clock = Unix.gettimeofday) () =
  { clock; roots_rev = []; stack = [] }

let close t node =
  let finished =
    {
      name = node.span_name;
      start_s = node.started;
      duration_s = t.clock () -. node.started;
      attrs = List.rev node.attrs_rev;
      children = List.rev node.children_rev;
    }
  in
  match t.stack with
  | parent :: _ -> parent.children_rev <- finished :: parent.children_rev
  | [] -> t.roots_rev <- finished :: t.roots_rev

let with_span tracer name f =
  match tracer with
  | None -> f ()
  | Some t ->
    let node =
      { span_name = name; started = t.clock (); attrs_rev = []; children_rev = [] }
    in
    t.stack <- node :: t.stack;
    let pop () =
      (match t.stack with
      | top :: rest when top == node -> t.stack <- rest
      | _ ->
        (* Unbalanced closes can only come from this module misusing its
           own stack; fail loudly in development builds. *)
        assert false);
      close t node
    in
    Fun.protect ~finally:pop f

let attr tracer key value =
  match tracer with
  | None -> ()
  | Some t -> begin
    match t.stack with
    | [] -> ()
    | top :: _ -> top.attrs_rev <- (key, value) :: top.attrs_rev
  end

let attr_str tracer key v = attr tracer key (Json.String v)
let attr_int tracer key v = attr tracer key (Json.Int v)
let attr_float tracer key v = attr tracer key (Json.Float v)

let roots t = List.rev t.roots_rev

let pp ppf t =
  let rec render indent s =
    Format.fprintf ppf "%s%s  %.3fms" indent s.name (1000. *. s.duration_s);
    List.iter
      (fun (k, v) -> Format.fprintf ppf " %s=%a" k Json.pp v)
      s.attrs;
    Format.pp_print_newline ppf ();
    List.iter (render (indent ^ "  ")) s.children
  in
  List.iter (render "") (roots t)

let rec span_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("start_s", Json.Float s.start_s);
      ("duration_s", Json.Float s.duration_s);
      ("attrs", Json.Obj s.attrs);
      ("children", Json.List (List.map span_json s.children));
    ]

let to_json t = Json.Obj [ ("spans", Json.List (List.map span_json (roots t))) ]
