(** Hierarchical trace spans over the estimation pipeline.

    A tracer records a forest of named spans (parse → bind → validate →
    profile → optimize → execute), each with wall time and attributes.
    The clock is injectable (same pattern as [Rel.Budget]) so tests drive
    deterministic timelines.

    Recording is {e observation-only}: spans never influence what the code
    inside them computes, and every operation accepts an optional tracer
    so instrumented call sites cost one branch when tracing is off. *)

type t
(** A tracer: an in-progress forest of spans. Not thread-safe. *)

type span = {
  name : string;
  start_s : float;  (** on the tracer clock's timeline *)
  duration_s : float;
  attrs : (string * Json.t) list;  (** in attachment order *)
  children : span list;  (** in start order *)
}
(** One finished span. *)

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday]. *)

val with_span : t option -> string -> (unit -> 'a) -> 'a
(** [with_span (Some t) name f] runs [f] inside a new span nested under
    the innermost open span (or as a new root). The span closes when [f]
    returns {e or raises} — the exception is re-raised after closing.
    [with_span None name f] is exactly [f ()]. *)

val attr : t option -> string -> Json.t -> unit
(** Attach an attribute to the innermost open span. No-op without a
    tracer or outside any span. *)

val attr_str : t option -> string -> string -> unit
val attr_int : t option -> string -> int -> unit
val attr_float : t option -> string -> float -> unit

val roots : t -> span list
(** Finished root spans, in start order. Spans still open (inside
    {!with_span}) are not included. *)

val pp : Format.formatter -> t -> unit
(** Render the span forest as an indented tree with per-span durations
    and attributes. *)

val to_json : t -> Json.t
(** [{"spans": [...]}] with per-span [name], [start_s], [duration_s],
    [attrs] and [children]. *)
