let sort_cost n =
  if n <= 1. then 0. else n *. (Float.log n /. Float.log 2.)

let scan ~base_rows = Float.max 0. base_rows

let nested_loop ~outer_rows ~inner_base_rows ~out_rows =
  (Float.max 0. outer_rows *. Float.max 0. inner_base_rows)
  +. Float.max 0. out_rows

let sort_merge ~outer_rows ~inner_base_rows ~inner_rows ~out_rows =
  scan ~base_rows:inner_base_rows
  +. sort_cost (Float.max 0. outer_rows)
  +. sort_cost (Float.max 0. inner_rows)
  +. Float.max 0. outer_rows +. Float.max 0. inner_rows
  +. Float.max 0. out_rows

let hash ~outer_rows ~inner_base_rows ~inner_rows ~out_rows =
  scan ~base_rows:inner_base_rows
  +. Float.max 0. inner_rows (* build *)
  +. Float.max 0. outer_rows (* probe *)
  +. Float.max 0. out_rows

let index_nested_loop ~outer_rows ~inner_base_rows ~out_rows =
  scan ~base_rows:inner_base_rows (* index build *)
  +. Float.max 0. outer_rows (* probes *)
  +. (2. *. Float.max 0. out_rows) (* matched reads + emitted rows *)
