(** Cost model.

    Costs are in the executor's work units (tuples read + comparisons +
    tuples emitted), so an optimizer estimate and an executed plan's
    counters are directly comparable. All row counts entering these
    formulas are {e estimates}; feeding them mis-estimated cardinalities
    mis-ranks plans — which is exactly the phenomenon the paper's Section 8
    experiment demonstrates.

    Join inputs, matching the executor:
    - nested loop re-executes the inner scan once per outer tuple;
    - sort-merge scans the inner once, sorts both (filtered) sides and
      merges;
    - hash scans the inner once, builds on the filtered inner and probes
      once per outer tuple;
    - index nested loop builds a hash index on the inner's join column
      once, then touches only matching inner tuples per outer tuple. *)

val sort_cost : float -> float
(** [n log2 n] comparisons (at least 0). *)

val scan : base_rows:float -> float
(** Reading a base table once. *)

val nested_loop :
  outer_rows:float -> inner_base_rows:float -> out_rows:float -> float
(** Added cost of the join node itself (the outer subtree's cost is the
    caller's). *)

val sort_merge :
  outer_rows:float ->
  inner_base_rows:float ->
  inner_rows:float ->
  out_rows:float ->
  float

val hash :
  outer_rows:float ->
  inner_base_rows:float ->
  inner_rows:float ->
  out_rows:float ->
  float

val index_nested_loop :
  outer_rows:float -> inner_base_rows:float -> out_rows:float -> float
(** Index build (one inner scan) plus one probe per outer tuple plus one
    read per matching inner tuple (≈ [out_rows]). *)
