type node = {
  plan : Exec.Plan.t;
  state : Els.Incremental.state;
  cost : float;
}

let scan_filters profile table =
  List.filter
    (fun p ->
      Query.Predicate.is_local p
      && Query.Predicate.tables p = [ table ])
    profile.Els.Profile.predicates

let scan_node profile table =
  let tp = Els.Profile.table profile table in
  {
    plan =
      Exec.Plan.scan ~source:tp.Els.Profile.source
        ~filters:(scan_filters profile table) table;
    state = Els.Incremental.start profile table;
    cost = Cost.scan ~base_rows:tp.Els.Profile.base_rows;
  }

(* Added cost of joining [table] as the inner of [node] with [method_]. *)
let join_cost profile node table method_ ~out_rows =
  let tp = Els.Profile.table profile table in
  let outer_rows = node.state.Els.Incremental.size in
  let inner_base_rows = tp.Els.Profile.base_rows in
  let inner_rows = tp.Els.Profile.rows in
  match method_ with
  | Exec.Plan.Nested_loop ->
    Cost.nested_loop ~outer_rows ~inner_base_rows ~out_rows
  | Exec.Plan.Sort_merge ->
    Cost.sort_merge ~outer_rows ~inner_base_rows ~inner_rows ~out_rows
  | Exec.Plan.Hash ->
    Cost.hash ~outer_rows ~inner_base_rows ~inner_rows ~out_rows
  | Exec.Plan.Index_nested_loop ->
    Cost.index_nested_loop ~outer_rows ~inner_base_rows ~out_rows

let extend profile node table method_ eligible =
  let state = Els.Incremental.extend profile node.state table in
  let cost =
    node.cost
    +. join_cost profile node table method_
         ~out_rows:state.Els.Incremental.size
  in
  let tp = Els.Profile.table profile table in
  let inner =
    Exec.Plan.scan ~source:tp.Els.Profile.source
      ~filters:(scan_filters profile table) table
  in
  {
    plan =
      Exec.Plan.Join
        { method_; outer = node.plan; inner; predicates = eligible };
    state;
    cost;
  }

let optimize ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ])
    profile query =
  if methods = [] then invalid_arg "Dp.optimize: no join methods";
  let tables = Array.of_list query.Query.tables in
  let n = Array.length tables in
  if n = 0 then invalid_arg "Dp.optimize: query with no tables";
  if n > 20 then invalid_arg "Dp.optimize: too many tables for exact DP";
  let best : (int, node) Hashtbl.t = Hashtbl.create 1024 in
  let consider mask candidate =
    match Hashtbl.find_opt best mask with
    | Some incumbent when incumbent.cost <= candidate.cost -> ()
    | Some _ | None -> Hashtbl.replace best mask candidate
  in
  for i = 0 to n - 1 do
    consider (1 lsl i) (scan_node profile tables.(i))
  done;
  let full = (1 lsl n) - 1 in
  (* Grow subsets in increasing size so every mask is final before it is
     extended. *)
  for size = 1 to n - 1 do
    for mask = 1 to full do
      if
        (let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1) in
         popcount mask)
        = size
      then begin
        match Hashtbl.find_opt best mask with
        | None -> ()
        | Some node ->
          (* Which absent tables connect to the subset via join preds? *)
          let extensions =
            List.filter_map
              (fun i ->
                if mask land (1 lsl i) <> 0 then None
                else
                  let table = tables.(i) in
                  let eligible =
                    Els.Incremental.eligible profile node.state table
                  in
                  Some (i, table, eligible))
              (List.init n Fun.id)
          in
          let connected =
            List.filter (fun (_, _, e) -> e <> []) extensions
          in
          let usable = if connected <> [] then connected else extensions in
          List.iter
            (fun (i, table, eligible) ->
              List.iter
                (fun method_ ->
                  (* Sort-merge and hash need at least one equi-key. *)
                  let applicable =
                    match method_ with
                    | Exec.Plan.Nested_loop -> true
                    | Exec.Plan.Sort_merge | Exec.Plan.Hash
                    | Exec.Plan.Index_nested_loop ->
                      eligible <> []
                  in
                  if applicable then
                    consider
                      (mask lor (1 lsl i))
                      (extend profile node table method_ eligible))
                methods)
            usable
      end
    done
  done;
  match Hashtbl.find_opt best full with
  | Some node -> node
  | None -> assert false
