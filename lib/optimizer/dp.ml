type node = {
  plan : Exec.Plan.t;
  state : Els.Incremental.state;
  cost : float;
}

let scan_filters profile table = Els.Profile.scan_filters profile table

let method_applicable method_ eligible =
  match method_ with
  | Exec.Plan.Nested_loop -> true
  | Exec.Plan.Sort_merge | Exec.Plan.Hash | Exec.Plan.Index_nested_loop ->
    eligible <> []

let scan_node profile table =
  let tp = Els.Profile.table profile table in
  {
    plan =
      Exec.Plan.scan ~source:tp.Els.Profile.source
        ~filters:(scan_filters profile table) table;
    state = Els.Incremental.start profile table;
    cost = Cost.scan ~base_rows:tp.Els.Profile.base_rows;
  }

(* Added cost of joining [table] as the inner of [node] with [method_]. *)
let join_cost profile node table method_ ~out_rows =
  let tp = Els.Profile.table profile table in
  let outer_rows = node.state.Els.Incremental.size in
  let inner_base_rows = tp.Els.Profile.base_rows in
  let inner_rows = tp.Els.Profile.rows in
  match method_ with
  | Exec.Plan.Nested_loop ->
    Cost.nested_loop ~outer_rows ~inner_base_rows ~out_rows
  | Exec.Plan.Sort_merge ->
    Cost.sort_merge ~outer_rows ~inner_base_rows ~inner_rows ~out_rows
  | Exec.Plan.Hash ->
    Cost.hash ~outer_rows ~inner_base_rows ~inner_rows ~out_rows
  | Exec.Plan.Index_nested_loop ->
    Cost.index_nested_loop ~outer_rows ~inner_base_rows ~out_rows

let extend profile node table method_ eligible =
  let state = Els.Incremental.extend profile node.state table in
  let cost =
    node.cost
    +. join_cost profile node table method_
         ~out_rows:state.Els.Incremental.size
  in
  let tp = Els.Profile.table profile table in
  let inner =
    Exec.Plan.scan ~source:tp.Els.Profile.source
      ~filters:(scan_filters profile table) table
  in
  {
    plan =
      Exec.Plan.Join
        { method_; outer = node.plan; inner; predicates = eligible };
    state;
    cost;
  }

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let optimize ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ])
    ?estimator profile query =
  if methods = [] then invalid_arg "Dp.optimize: no join methods";
  let profile =
    match estimator with
    | None -> profile
    | Some e -> Els.Profile.with_estimator e profile
  in
  let tables = Array.of_list query.Query.tables in
  let n = Array.length tables in
  if n = 0 then invalid_arg "Dp.optimize: query with no tables";
  if n > 20 then invalid_arg "Dp.optimize: too many tables for exact DP";
  let best : (int, node) Hashtbl.t = Hashtbl.create 1024 in
  let consider mask candidate =
    match Hashtbl.find_opt best mask with
    | Some incumbent when incumbent.cost <= candidate.cost -> ()
    | Some _ | None -> Hashtbl.replace best mask candidate
  in
  for i = 0 to n - 1 do
    consider (1 lsl i) (scan_node profile tables.(i))
  done;
  let full = (1 lsl n) - 1 in
  (* One popcount per mask, up front: masks grouped by subset size so the
     enumeration loop never recounts bits. *)
  let by_size = Array.make (n + 1) [] in
  for mask = full downto 1 do
    let size = popcount mask in
    by_size.(size) <- mask :: by_size.(size)
  done;
  (* Grow subsets in increasing size so every mask is final before it is
     extended. *)
  for size = 1 to n - 1 do
    List.iter
      (fun mask ->
        match Hashtbl.find_opt best mask with
        | None -> ()
        | Some node ->
          (* Which absent tables connect to the subset via join preds? *)
          let extensions =
            List.filter_map
              (fun i ->
                if mask land (1 lsl i) <> 0 then None
                else
                  let table = tables.(i) in
                  let eligible =
                    Els.Incremental.eligible profile node.state table
                  in
                  Some (i, table, eligible))
              (List.init n Fun.id)
          in
          let connected =
            List.filter (fun (_, _, e) -> e <> []) extensions
          in
          let usable = if connected <> [] then connected else extensions in
          List.iter
            (fun (i, table, eligible) ->
              List.iter
                (fun method_ ->
                  (* Sort-merge and hash need at least one equi-key. *)
                  if method_applicable method_ eligible then
                    consider
                      (mask lor (1 lsl i))
                      (extend profile node table method_ eligible))
                methods)
            usable)
      by_size.(size)
  done;
  match Hashtbl.find_opt best full with
  | Some node -> node
  | None -> assert false
