type node = {
  plan : Exec.Plan.t;
  state : Els.Incremental.state;
  cost : float;
}

let scan_filters profile table = Els.Profile.scan_filters profile table

let method_applicable method_ eligible =
  match method_ with
  | Exec.Plan.Nested_loop -> true
  (* Sort-merge handles any comparison join (its driver generalizes to
     inequality/band windows); hash and index lookups need an equality
     key to probe on. *)
  | Exec.Plan.Sort_merge -> eligible <> []
  | Exec.Plan.Hash | Exec.Plan.Index_nested_loop ->
    List.exists Query.Predicate.is_equijoin eligible

let scan_node profile table =
  let tp = Els.Profile.table profile table in
  {
    plan =
      Exec.Plan.scan ~source:tp.Els.Profile.source
        ~filters:(scan_filters profile table) table;
    state = Els.Incremental.start profile table;
    cost = Cost.scan ~base_rows:tp.Els.Profile.base_rows;
  }

(* Added cost of joining [table] as the inner of [node] with [method_]. *)
let join_cost profile node table method_ ~out_rows =
  let tp = Els.Profile.table profile table in
  let outer_rows = node.state.Els.Incremental.size in
  let inner_base_rows = tp.Els.Profile.base_rows in
  let inner_rows = tp.Els.Profile.rows in
  match method_ with
  | Exec.Plan.Nested_loop ->
    Cost.nested_loop ~outer_rows ~inner_base_rows ~out_rows
  | Exec.Plan.Sort_merge ->
    Cost.sort_merge ~outer_rows ~inner_base_rows ~inner_rows ~out_rows
  | Exec.Plan.Hash ->
    Cost.hash ~outer_rows ~inner_base_rows ~inner_rows ~out_rows
  | Exec.Plan.Index_nested_loop ->
    Cost.index_nested_loop ~outer_rows ~inner_base_rows ~out_rows

let extend profile node table method_ eligible =
  let state = Els.Incremental.extend profile node.state table in
  let cost =
    node.cost
    +. join_cost profile node table method_
         ~out_rows:state.Els.Incremental.size
  in
  let tp = Els.Profile.table profile table in
  let inner =
    Exec.Plan.scan ~source:tp.Els.Profile.source
      ~filters:(scan_filters profile table) table
  in
  {
    plan =
      Exec.Plan.Join
        { method_; outer = node.plan; inner; predicates = eligible };
    state;
    cost;
  }

(* A step with no eligible equi-key and no nested loop in [methods] has no
   physical operator at all: structured refusal, never [assert false]. *)
let no_method_error methods tables =
  Els.Els_error.raise_
    (Els.Els_error.Invalid_query
       {
         detail =
           Printf.sprintf
             "no applicable join method for %s: the allowed methods (%s) \
              all need an eligible join predicate (an equality for \
              hash/index) and this step has none (allow nested loop to \
              plan cartesian steps)"
             (match tables with
             | [ t ] -> Printf.sprintf "table %S" t
             | ts -> Printf.sprintf "tables %s" (String.concat ", " ts))
             (String.concat ", " (List.map Exec.Plan.method_name methods));
       })

let no_charge () = ()

let best_extension ?(charge = no_charge) profile methods node table =
  let eligible = Els.Incremental.eligible profile node.state table in
  let candidates =
    List.filter_map
      (fun method_ ->
        if method_applicable method_ eligible then begin
          charge ();
          Some (extend profile node table method_ eligible)
        end
        else None)
      methods
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun acc node' -> if node'.cost < acc.cost then node' else acc)
        first rest
    in
    Some (best, eligible <> [])

let complete_order ?charge ~methods profile node order =
  List.fold_left
    (fun node table ->
      match best_extension ?charge profile methods node table with
      | Some (node', _) -> node'
      | None -> no_method_error methods [ table ])
    node order

let plan_order ?charge ~methods profile order =
  match order with
  | [] -> invalid_arg "Dp.plan_order: empty order"
  | first :: rest ->
    complete_order ?charge ~methods profile (scan_node profile first) rest

let greedy_complete ?charge ~methods profile node remaining =
  let rec grow node remaining =
    if remaining = [] then node
    else begin
      let candidates =
        List.filter_map
          (fun table ->
            Option.map
              (fun (node', connected) -> (table, node', connected))
              (best_extension ?charge profile methods node table))
          remaining
      in
      (* Prefer predicate-connected extensions, as DP does. *)
      let connected = List.filter (fun (_, _, c) -> c) candidates in
      let pool = if connected <> [] then connected else candidates in
      match pool with
      | [] -> no_method_error methods remaining
      | first :: rest ->
        let table, node', _ =
          List.fold_left
            (fun (bt, bn, bc) (t, n, c) ->
              if n.cost < bn.cost then (t, n, c) else (bt, bn, bc))
            first rest
        in
        grow node'
          (List.filter (fun t -> not (String.equal t table)) remaining)
    end
  in
  grow node remaining

let optimize_traced
    ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ])
    ?estimator ?budget profile query =
  if methods = [] then invalid_arg "Dp.optimize: no join methods";
  let profile =
    match estimator with
    | None -> profile
    | Some e -> Els.Profile.with_estimator e profile
  in
  let tables = Array.of_list query.Query.tables in
  let n = Array.length tables in
  if n = 0 then invalid_arg "Dp.optimize: query with no tables";
  if n > 20 then invalid_arg "Dp.optimize: too many tables for exact DP";
  let expansions = ref 0 in
  (* One node expansion = one [extend] (or seed scan) charged to the
     budget; [spend_node] also probes the deadline, so exhaustion is
     detected within one expansion of the limit. *)
  let charge () =
    incr expansions;
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_node_exn b 1
  in
  let boundary () =
    match budget with None -> () | Some b -> Rel.Budget.check_exn b
  in
  let best : (int, node) Hashtbl.t = Hashtbl.create 1024 in
  let consider mask candidate =
    match Hashtbl.find_opt best mask with
    | Some incumbent when incumbent.cost <= candidate.cost -> ()
    | Some _ | None -> Hashtbl.replace best mask candidate
  in
  (* O(degree) connectivity probe for the expansion loop: the compiled
     kernel answers without building the eligible-predicate list; without
     one (custom estimator, [~kernel:false]) fall back to the indexed
     probe. Both test exactly "does any join predicate bridge [bit] to
     [mask]". *)
  let kernel = Els.Profile.kernel profile in
  let connects state bit =
    match kernel with
    | Some k ->
      Els.Kernel.connected k ~mask:state.Els.Incremental.mask ~bit
    | None -> Els.Incremental.eligible profile state tables.(bit) <> []
  in
  let full = (1 lsl n) - 1 in
  (* One popcount per mask, up front: masks grouped by subset size so the
     enumeration loop never recounts bits. *)
  let by_size = Array.make (n + 1) [] in
  for mask = full downto 1 do
    let size = Rel.Bits.popcount mask in
    by_size.(size) <- mask :: by_size.(size)
  done;
  (* Highest subset size whose [best] entries are final. Entries of size
     s+1 become final only once every size-s mask has been processed, so
     everything at or below [completed_size] is identical no matter where
     a budget later trips — the anytime fallback only builds on these
     budget-independent states. *)
  let completed_size = ref 0 in
  let enumerate () =
    for i = 0 to n - 1 do
      charge ();
      consider (1 lsl i) (scan_node profile tables.(i))
    done;
    completed_size := 1;
    (* Grow subsets in increasing size so every mask is final before it is
       extended. *)
    for size = 1 to n - 1 do
      boundary ();
      List.iter
        (fun mask ->
          match Hashtbl.find_opt best mask with
          | None -> ()
          | Some node ->
            (* Prefer predicate-connected extensions: cartesian steps are
               considered only when no absent table connects at all. Two
               plain passes over the bits — no [List.init n Fun.id], no
               per-node extension list. *)
            let any_connected = ref false in
            for i = 0 to n - 1 do
              if
                (not !any_connected)
                && mask land (1 lsl i) = 0
                && connects node.state i
              then any_connected := true
            done;
            for i = 0 to n - 1 do
              if
                mask land (1 lsl i) = 0
                && ((not !any_connected) || connects node.state i)
              then begin
                let table = tables.(i) in
                let eligible =
                  Els.Incremental.eligible profile node.state table
                in
                List.iter
                  (fun method_ ->
                    (* Sort-merge and hash need at least one equi-key. *)
                    if method_applicable method_ eligible then begin
                      charge ();
                      consider
                        (mask lor (1 lsl i))
                        (extend profile node table method_ eligible)
                    end)
                  methods
              end
            done)
        by_size.(size);
      completed_size := size + 1
    done
  in
  (* Anytime fallback on exhaustion: pick the cheapest among a ladder of
     candidates whose set only grows with the budget (stopping later never
     removes a candidate), so with the same inputs a bigger budget can
     never choose a costlier plan:
     - the best full plan materialized so far (deterministic prefix of the
       expansion order);
     - a greedy completion of the best node at each finalized subset size
       (budget-independent states, largest size first so ties prefer the
       most DP-informed plan);
     - the FROM-order left-deep fallback (budget-independent, last so it
       only wins when strictly cheaper). *)
  let anytime_result resource =
    let attempt rung f =
      match f () with
      | node -> Some (rung, node)
      | exception Els.Els_error.Error _ -> None
    in
    let full_candidate =
      Option.map
        (fun node -> (Provenance.Dp, node))
        (Hashtbl.find_opt best full)
    in
    let best_of_size size =
      List.fold_left
        (fun acc mask ->
          match (Hashtbl.find_opt best mask, acc) with
          | None, acc -> acc
          | Some node, Some incumbent when incumbent.cost <= node.cost -> acc
          | Some node, _ -> Some node)
        None by_size.(size)
    in
    let completions =
      List.filter_map
        (fun size ->
          match best_of_size size with
          | None -> None
          | Some node ->
            let remaining =
              List.filter_map
                (fun i ->
                  if node.state.Els.Incremental.mask land (1 lsl i) = 0 then
                    Some tables.(i)
                  else None)
                (List.init n Fun.id)
            in
            if remaining = [] then Some (Provenance.Dp, node)
            else
              attempt Provenance.Greedy (fun () ->
                  greedy_complete ~methods profile node remaining))
        (List.init !completed_size (fun i -> !completed_size - i))
    in
    let left_deep =
      if n = 0 then None
      else
        attempt Provenance.Left_deep_fallback (fun () ->
            plan_order ~methods profile (Array.to_list tables))
    in
    let candidates =
      Option.to_list full_candidate @ completions @ Option.to_list left_deep
    in
    match candidates with
    | [] -> no_method_error methods (Array.to_list tables)
    | (rung0, node0) :: rest ->
      let rung, node =
        List.fold_left
          (fun (br, bn) (r, n') -> if n'.cost < bn.cost then (r, n') else (br, bn))
          (rung0, node0) rest
      in
      (node, Provenance.degraded rung resource ~expansions:!expansions)
  in
  match enumerate () with
  | () -> begin
    match Hashtbl.find_opt best full with
    | Some node ->
      (node, Provenance.completed Provenance.Dp ~expansions:!expansions)
    | None ->
      (* Reachable only when [methods] lacks nested loop and some subset
         has no equi-connected extension. *)
      no_method_error methods (Array.to_list tables)
  end
  | exception Rel.Budget.Exhausted resource -> anytime_result resource

let optimize ?methods ?estimator ?budget profile query =
  fst (optimize_traced ?methods ?estimator ?budget profile query)
