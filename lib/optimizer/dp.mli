(** Selinger-style dynamic programming over left-deep join trees [13].

    For every subset of the query's tables the enumerator keeps the
    cheapest left-deep plan, extending subsets one table at a time.
    Cardinalities are estimated {e incrementally along each plan's own
    build order} with the configured estimation algorithm — exactly the
    regime the paper analyzes (and exactly how inconsistent rules like SS
    end up assigning different sizes to the same subset reached by
    different orders).

    Cartesian products are considered only for subsets with no predicate-
    connected extension, as in System R.

    {2 Budgets and anytime degradation}

    Exact DP is exponential, so [optimize] accepts a {!Rel.Budget}: each
    seed scan and each [extend] is one node expansion charged with
    {!Rel.Budget.spend_node} (which also probes the deadline), and the
    deadline is additionally checked at every subset-size boundary. On
    exhaustion the enumerator does not fail — it returns the cheapest of a
    ladder of anytime candidates: the best full plan materialized so far,
    a greedy completion of the best partial plan at each finalized subset
    size, and the FROM-order left-deep fallback. The candidate set only
    grows as the budget does, so with identical inputs a larger budget
    never yields a costlier plan, and {!optimize_traced} reports which
    rung actually produced the answer. With [?budget:None] the enumeration
    is bit-identical to the unbudgeted implementation. *)

type node = {
  plan : Exec.Plan.t;
  state : Els.Incremental.state;
      (** estimation state along the plan's join order *)
  cost : float;
}

val optimize :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  ?budget:Rel.Budget.t ->
  Els.Profile.t ->
  Query.t ->
  node
(** Best left-deep plan for all the query's tables. [methods] defaults to
    all three join methods; the paper's experiment restricts it to
    [[Nested_loop; Sort_merge]]. [estimator] overrides the profile's
    estimator for this enumeration (via {!Els.Profile.with_estimator} —
    the profile's built statistics are shared, not recomputed). [budget]
    bounds the search; see the module preamble for the degradation ladder.
    @raise Invalid_argument on an empty FROM list or empty [methods].
    @raise Els.Els_error.Error ([Invalid_query]) when [methods] cannot
    join the query at all (no nested loop and a step without an eligible
    equi-join predicate). *)

val optimize_traced :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  ?budget:Rel.Budget.t ->
  Els.Profile.t ->
  Query.t ->
  node * Provenance.t
(** [optimize] plus the provenance record: which ladder rung produced the
    plan, whether (and on which resource) the budget tripped, and how many
    node expansions were performed. *)

val scan_filters : Els.Profile.t -> string -> Query.Predicate.t list
(** The local predicates of the profile's working conjunction pushed into
    the scan of the given table (constant comparisons and intra-table
    column equalities). Alias of {!Els.Profile.scan_filters}: lookup goes
    through the profile's normalized per-table index, so mixed-case table
    names cannot silently drop filters. *)

val method_applicable : Exec.Plan.join_method -> Query.Predicate.t list -> bool
(** Whether the method can join with the given eligible predicates:
    sort-merge, hash and index nested loop need at least one equi-key;
    nested loop always applies. Shared by all three enumerators. *)

val scan_node : Els.Profile.t -> string -> node
(** A single-table access node with its filters and estimation state;
    shared with the alternative enumerators ({!Greedy}, {!Random_walk}). *)

val extend : Els.Profile.t -> node -> string -> Exec.Plan.join_method ->
  Query.Predicate.t list -> node
(** [extend profile node table method_ eligible] joins one more table onto
    a left-deep node, threading the incremental estimation state and the
    cost model. [eligible] must be the predicates connecting [table] to the
    node (as computed by {!Els.Incremental.eligible}). *)

val no_method_error : Exec.Plan.join_method list -> string list -> 'a
(** Raise the structured [Invalid_query] error for a step where none of
    the allowed methods applies (shared by all enumerators — this used to
    be an [assert false]). *)

val best_extension :
  ?charge:(unit -> unit) ->
  Els.Profile.t ->
  Exec.Plan.join_method list ->
  node ->
  string ->
  (node * bool) option
(** Cheapest applicable extension of the node with the table over the
    allowed methods, tagged with whether the step is predicate-connected;
    [None] when no method applies. [charge] is invoked once per [extend]
    (budget accounting). Shared by the greedy enumerator and the anytime
    completions. *)

val complete_order :
  ?charge:(unit -> unit) ->
  methods:Exec.Plan.join_method list ->
  Els.Profile.t ->
  node ->
  string list ->
  node
(** Extend the node with the given tables in exactly the given order,
    cheapest applicable method per step.
    @raise Els.Els_error.Error ([Invalid_query]) when a step has no
    applicable method. *)

val plan_order :
  ?charge:(unit -> unit) ->
  methods:Exec.Plan.join_method list ->
  Els.Profile.t ->
  string list ->
  node
(** Cost a complete left-deep order: {!scan_node} on the first table, then
    {!complete_order} over the rest.
    @raise Invalid_argument on the empty list. *)

val greedy_complete :
  ?charge:(unit -> unit) ->
  methods:Exec.Plan.join_method list ->
  Els.Profile.t ->
  node ->
  string list ->
  node
(** Greedy completion: repeatedly append the (table, method) pair with the
    least added cost among [remaining], preferring predicate-connected
    extensions. O(n²·methods), always terminates — the rung exact DP
    degrades to when its budget runs out.
    @raise Els.Els_error.Error ([Invalid_query]) when no remaining table
    has an applicable method. *)
