(** Selinger-style dynamic programming over left-deep join trees [13].

    For every subset of the query's tables the enumerator keeps the
    cheapest left-deep plan, extending subsets one table at a time.
    Cardinalities are estimated {e incrementally along each plan's own
    build order} with the configured estimation algorithm — exactly the
    regime the paper analyzes (and exactly how inconsistent rules like SS
    end up assigning different sizes to the same subset reached by
    different orders).

    Cartesian products are considered only for subsets with no predicate-
    connected extension, as in System R. *)

type node = {
  plan : Exec.Plan.t;
  state : Els.Incremental.state;
      (** estimation state along the plan's join order *)
  cost : float;
}

val optimize :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  Els.Profile.t ->
  Query.t ->
  node
(** Best left-deep plan for all the query's tables. [methods] defaults to
    all three join methods; the paper's experiment restricts it to
    [[Nested_loop; Sort_merge]]. [estimator] overrides the profile's
    estimator for this enumeration (via {!Els.Profile.with_estimator} —
    the profile's built statistics are shared, not recomputed).
    @raise Invalid_argument on an empty FROM list or empty [methods]. *)

val scan_filters : Els.Profile.t -> string -> Query.Predicate.t list
(** The local predicates of the profile's working conjunction pushed into
    the scan of the given table (constant comparisons and intra-table
    column equalities). Alias of {!Els.Profile.scan_filters}: lookup goes
    through the profile's normalized per-table index, so mixed-case table
    names cannot silently drop filters. *)

val method_applicable : Exec.Plan.join_method -> Query.Predicate.t list -> bool
(** Whether the method can join with the given eligible predicates:
    sort-merge, hash and index nested loop need at least one equi-key;
    nested loop always applies. Shared by all three enumerators. *)

val scan_node : Els.Profile.t -> string -> node
(** A single-table access node with its filters and estimation state;
    shared with the alternative enumerators ({!Greedy}, {!Random_walk}). *)

val extend : Els.Profile.t -> node -> string -> Exec.Plan.join_method ->
  Query.Predicate.t list -> node
(** [extend profile node table method_ eligible] joins one more table onto
    a left-deep node, threading the incremental estimation state and the
    cost model. [eligible] must be the predicates connecting [table] to the
    node (as computed by {!Els.Incremental.eligible}). *)
