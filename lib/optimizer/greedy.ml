let default_methods =
  [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ]

let optimize_traced ?(methods = default_methods) ?estimator ?budget profile
    query =
  if methods = [] then invalid_arg "Greedy.optimize: no join methods";
  let profile =
    match estimator with
    | None -> profile
    | Some e -> Els.Profile.with_estimator e profile
  in
  let tables = query.Query.tables in
  if tables = [] then invalid_arg "Greedy.optimize: query with no tables";
  let expansions = ref 0 in
  let charge () =
    incr expansions;
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_node_exn b 1
  in
  (* Seed: the table with the smallest effective cardinality. *)
  let smallest acc table =
    let node = Dp.scan_node profile table in
    match acc with
    | None -> Some (table, node)
    | Some (_, best) ->
      if
        node.Dp.state.Els.Incremental.size
        < best.Dp.state.Els.Incremental.size
      then Some (table, node)
      else acc
  in
  let start_table, start =
    match List.fold_left smallest None tables with
    | Some pair -> pair
    | None -> assert false
  in
  (* [current] tracks the last fully-grown node so a budget trip mid-step
     can resume from a consistent (and budget-independent) state. *)
  let current =
    ref (start, List.filter (fun t -> not (String.equal t start_table)) tables)
  in
  let rec grow () =
    let node, remaining = !current in
    if remaining = [] then node
    else begin
      let candidates =
        List.filter_map
          (fun table ->
            Option.map
              (fun (node', connected) -> (table, node', connected))
              (Dp.best_extension ~charge profile methods node table))
          remaining
      in
      (* Prefer predicate-connected extensions, as DP does. *)
      let connected = List.filter (fun (_, _, c) -> c) candidates in
      let pool = if connected <> [] then connected else candidates in
      match pool with
      | [] -> Dp.no_method_error methods remaining
      | first :: rest ->
        let table, node', _ =
          List.fold_left
            (fun (bt, bn, bc) (t, n, c) ->
              if n.Dp.cost < bn.Dp.cost then (t, n, c) else (bt, bn, bc))
            first rest
        in
        current :=
          (node', List.filter (fun t -> not (String.equal t table)) remaining);
        grow ()
    end
  in
  match grow () with
  | node ->
    (node, Provenance.completed Provenance.Greedy ~expansions:!expansions)
  | exception Rel.Budget.Exhausted resource ->
    (* Bottom rung: finish the partial plan in FROM order, cheapest
       applicable method per step — O(n·methods), never budgeted. *)
    let node, remaining = !current in
    let node = Dp.complete_order ~methods profile node remaining in
    ( node,
      Provenance.degraded Provenance.Left_deep_fallback resource
        ~expansions:!expansions )

let optimize ?methods ?estimator ?budget profile query =
  fst (optimize_traced ?methods ?estimator ?budget profile query)
