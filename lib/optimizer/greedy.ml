let default_methods =
  [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ]

(* Cheapest extension of [node] with [table] over the allowed methods,
   tagged with whether the step is predicate-connected. *)
let best_extension profile methods node table =
  let eligible = Els.Incremental.eligible profile node.Dp.state table in
  let candidates =
    List.filter_map
      (fun method_ ->
        if Dp.method_applicable method_ eligible then
          Some (Dp.extend profile node table method_ eligible)
        else None)
      methods
  in
  match candidates with
  | [] -> None
  | first :: rest ->
    let best =
      List.fold_left
        (fun acc node' -> if node'.Dp.cost < acc.Dp.cost then node' else acc)
        first rest
    in
    Some (best, eligible <> [])

let optimize ?(methods = default_methods) ?estimator profile query =
  if methods = [] then invalid_arg "Greedy.optimize: no join methods";
  let profile =
    match estimator with
    | None -> profile
    | Some e -> Els.Profile.with_estimator e profile
  in
  let tables = query.Query.tables in
  if tables = [] then invalid_arg "Greedy.optimize: query with no tables";
  (* Seed: the table with the smallest effective cardinality. *)
  let smallest acc table =
    let node = Dp.scan_node profile table in
    match acc with
    | None -> Some (table, node)
    | Some (_, best) ->
      if
        node.Dp.state.Els.Incremental.size
        < best.Dp.state.Els.Incremental.size
      then Some (table, node)
      else acc
  in
  let start_table, start =
    match List.fold_left smallest None tables with
    | Some pair -> pair
    | None -> assert false
  in
  let rec grow node remaining =
    if remaining = [] then node
    else begin
      let candidates =
        List.filter_map
          (fun table ->
            Option.map
              (fun (node', connected) -> (table, node', connected))
              (best_extension profile methods node table))
          remaining
      in
      (* Prefer predicate-connected extensions, as DP does. *)
      let connected = List.filter (fun (_, _, c) -> c) candidates in
      let pool = if connected <> [] then connected else candidates in
      match pool with
      | [] -> assert false (* nested loop is always applicable *)
      | first :: rest ->
        let table, node', _ =
          List.fold_left
            (fun (bt, bn, bc) (t, n, c) ->
              if n.Dp.cost < bn.Dp.cost then (t, n, c) else (bt, bn, bc))
            first rest
        in
        grow node'
          (List.filter (fun t -> not (String.equal t table)) remaining)
    end
  in
  grow start (List.filter (fun t -> not (String.equal t start_table)) tables)
