(** Greedy join enumeration.

    The polynomial-time alternative to exact DP, in the spirit of the
    AB-algorithm line of work the paper cites [15]: start from the table
    with the smallest effective cardinality, then repeatedly append the
    (table, join method) pair with the least added cost, preferring
    predicate-connected extensions. O(n²·methods) instead of O(2ⁿ);
    estimates are the same incremental estimates DP uses.

    Greedy is itself the rung exact DP degrades to, so it accepts a
    {!Rel.Budget} too: on exhaustion it finishes the partial plan in FROM
    order (cheapest applicable method per step, unbudgeted) and reports
    the {!Provenance.Left_deep_fallback} rung. *)

val optimize :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  ?budget:Rel.Budget.t ->
  Els.Profile.t ->
  Query.t ->
  Dp.node
(** Same result type as {!Dp.optimize} so callers can swap enumerators;
    [estimator] overrides the profile's estimator as in {!Dp.optimize}.
    @raise Invalid_argument on an empty FROM list or empty [methods].
    @raise Els.Els_error.Error ([Invalid_query]) when no remaining table
    has an applicable join method at some step. *)

val optimize_traced :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  ?budget:Rel.Budget.t ->
  Els.Profile.t ->
  Query.t ->
  Dp.node * Provenance.t
(** [optimize] plus the provenance record (rung, exhaustion, expansion
    count). *)
