module Cost = Cost
module Dp = Dp
module Greedy = Greedy
module Random_walk = Random_walk
module Provenance = Provenance

type choice = {
  algorithm : string;
  plan : Exec.Plan.t;
  join_order : string list;
  intermediate_estimates : float list;
  estimated_cost : float;
  profile : Els.Profile.t;
  provenance : Provenance.t;
}

type enumerator =
  | Exhaustive  (** Selinger dynamic programming (default) *)
  | Greedy_order  (** O(n²) greedy construction *)
  | Randomized of int  (** iterative improvement with the given seed *)

let choose ?methods ?(enumerator = Exhaustive) ?estimator ?budget ?trace config
    db query =
  (* Swap before [build] so the pipeline toggles stay as configured but
     [Config.name] (the reported algorithm) reflects the estimator. *)
  let config =
    match estimator with
    | None -> config
    | Some e -> Els.Config.with_estimator e config
  in
  let profile = Els.Profile.build ?trace config db query in
  let node, provenance =
    Obs.Trace.with_span trace "optimize" @@ fun () ->
    let result =
      match enumerator with
      | Exhaustive -> Dp.optimize_traced ?methods ?budget profile query
      | Greedy_order -> Greedy.optimize_traced ?methods ?budget profile query
      | Randomized seed ->
        Random_walk.optimize_traced ?methods ~seed ?budget profile query
    in
    let _, provenance = result in
    Obs.Trace.attr_str trace "rung"
      (Provenance.rung_name provenance.Provenance.rung);
    Obs.Trace.attr_int trace "expansions" provenance.Provenance.expansions;
    result
  in
  {
    algorithm = Els.Config.name config;
    plan = node.Dp.plan;
    join_order = Exec.Plan.join_order node.Dp.plan;
    intermediate_estimates = Els.Incremental.history node.Dp.state;
    estimated_cost = node.Dp.cost;
    profile;
    provenance;
  }

(* Render the (left-deep) plan with each join annotated by its estimated
   output size: the innermost join carries the first estimate, the
   outermost the last. *)
let pp_annotated ppf plan estimates =
  let estimates = Array.of_list estimates in
  let rec join_count = function
    | Exec.Plan.Scan _ -> 0
    | Exec.Plan.Join { outer; inner; _ } ->
      join_count outer + join_count inner + 1
  in
  let rec render indent node =
    match node with
    | Exec.Plan.Scan { table; source; filters } ->
      Format.fprintf ppf "%sScan %s" indent table;
      if not (String.equal table source) then
        Format.fprintf ppf " (= %s)" source;
      if filters <> [] then
        Format.fprintf ppf " [%s]"
          (String.concat " AND "
             (List.map Query.Predicate.to_string filters));
      Format.fprintf ppf "@."
    | Exec.Plan.Join { method_; outer; inner; predicates } ->
      let idx = join_count node - 1 in
      Format.fprintf ppf "%s%s join" indent (Exec.Plan.method_name method_);
      if predicates <> [] then
        Format.fprintf ppf " on %s"
          (String.concat " AND "
             (List.map Query.Predicate.to_string predicates));
      if idx >= 0 && idx < Array.length estimates then
        Format.fprintf ppf "  (est rows: %.4g)" estimates.(idx);
      Format.fprintf ppf "@.";
      render (indent ^ "  ") outer;
      render (indent ^ "  ") inner
  in
  render "" plan

let explain ppf choice =
  Format.fprintf ppf "algorithm: %s@." choice.algorithm;
  Format.fprintf ppf "provenance: %a@." Provenance.pp choice.provenance;
  Format.fprintf ppf "join order: %s@."
    (String.concat " ⋈ " choice.join_order);
  Format.fprintf ppf "estimated sizes after each join: %s@."
    (String.concat ", "
       (List.map (Printf.sprintf "%.4g") choice.intermediate_estimates));
  Format.fprintf ppf "estimated cost (work units): %.4g@."
    choice.estimated_cost;
  Format.fprintf ppf "plan:@.";
  pp_annotated ppf choice.plan choice.intermediate_estimates
