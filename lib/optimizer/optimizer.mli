(** Top-level query optimizer.

    Pairs an estimation algorithm (an {!Els.Config.t}) with the Selinger
    enumerator and returns the chosen plan together with the estimates that
    drove the choice — the tuple of facts reported in each row of the
    paper's Section 8 table. *)

module Cost = Cost
module Dp = Dp
module Greedy = Greedy
module Random_walk = Random_walk
module Provenance = Provenance

type choice = {
  algorithm : string;  (** display name of the estimation configuration *)
  plan : Exec.Plan.t;
  join_order : string list;
  intermediate_estimates : float list;
      (** estimated size after each join of the chosen order *)
  estimated_cost : float;  (** in executor work units *)
  profile : Els.Profile.t;
      (** the estimation profile that drove enumeration; its
          {!Els.Profile.cache_stats} expose the hot-path cache hit/miss
          counters accumulated during optimization *)
  provenance : Provenance.t;
      (** which anytime rung produced the plan, whether the budget tripped,
          and how many node expansions ran *)
}

type enumerator =
  | Exhaustive  (** Selinger dynamic programming (default) *)
  | Greedy_order  (** O(n²) greedy construction *)
  | Randomized of int  (** iterative improvement with the given seed *)

val choose :
  ?methods:Exec.Plan.join_method list ->
  ?enumerator:enumerator ->
  ?estimator:Els.Estimator.t ->
  ?budget:Rel.Budget.t ->
  ?trace:Obs.Trace.t ->
  Els.Config.t ->
  Catalog.Db.t ->
  Query.t ->
  choice
(** Optimize the query under the given estimation algorithm. [estimator]
    swaps the configuration's combining rule before profiling (the other
    pipeline toggles stay as configured), so [algorithm] reflects it. The
    plan's scans carry the local predicates of the estimator's working
    conjunction (so a closure-enabled configuration both estimates with and
    executes the implied predicates, like the paper's PTC rewrite).

    [budget] bounds the enumeration; on exhaustion the chosen enumerator
    degrades anytime-style instead of failing (see {!Dp}) and [provenance]
    records which rung answered. Never raises
    [Els_error.Budget_exhausted] — only execution does.

    [trace] records the "profile"/"validate" spans of the build plus an
    "optimize" span (with rung and expansion-count attributes) around
    enumeration; tracing never changes the chosen plan or any estimate. *)

val explain : Format.formatter -> choice -> unit
(** Human-readable plan summary with per-join estimates. *)
