type rung = Dp | Greedy | Random_walk | Left_deep_fallback

let rung_name = function
  | Dp -> "dp"
  | Greedy -> "greedy"
  | Random_walk -> "random-walk"
  | Left_deep_fallback -> "left-deep-fallback"

type t = {
  rung : rung;
  exhausted : Rel.Budget.resource option;
  expansions : int;
}

let completed rung ~expansions = { rung; exhausted = None; expansions }

let degraded rung resource ~expansions =
  { rung; exhausted = Some resource; expansions }

let to_string t =
  match t.exhausted with
  | None ->
    Printf.sprintf "%s (completed, %d expansions)" (rung_name t.rung)
      t.expansions
  | Some r ->
    Printf.sprintf "%s (%s budget exhausted after %d expansions)"
      (rung_name t.rung)
      (Rel.Budget.resource_name r)
      t.expansions

let pp ppf t = Format.pp_print_string ppf (to_string t)
