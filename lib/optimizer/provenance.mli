(** Plan provenance: which rung of the anytime degradation ladder produced
    the chosen plan, and what it cost the search budget.

    Every enumerator answers even when its {!Rel.Budget} runs out: exact
    DP degrades to a greedy completion of its best partial plan, greedy
    degrades to a FROM-order left-deep completion, and the randomized walk
    returns its incumbent. The provenance record says which of those rungs
    actually fired, so [elsdb explain] (and the soak harness) can tell an
    optimal plan from a deadline-rescued one. *)

type rung =
  | Dp  (** exact Selinger enumeration reached the full join *)
  | Greedy  (** greedy construction / greedy completion of a DP partial *)
  | Random_walk  (** incumbent of the randomized iterative improvement *)
  | Left_deep_fallback
      (** FROM-order left-deep plan, cheapest method per step — the bottom
          rung, always O(n·methods), never budgeted *)

val rung_name : rung -> string
(** ["dp"], ["greedy"], ["random-walk"] or ["left-deep-fallback"]. *)

type t = {
  rung : rung;  (** the strategy that produced the returned plan *)
  exhausted : Rel.Budget.resource option;
      (** [Some r] when the budget tripped on [r] and the ladder fired;
          [None] when the enumerator ran to completion *)
  expansions : int;
      (** join-node expansions performed before returning (the unit
          {!Rel.Budget.spend_node} counts) *)
}

val completed : rung -> expansions:int -> t
val degraded : rung -> Rel.Budget.resource -> expansions:int -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
