let plan_of_order ~methods profile order =
  match order with
  | [] -> invalid_arg "Random_walk.plan_of_order: empty order"
  | first :: rest ->
    List.fold_left
      (fun node table ->
        let eligible =
          Els.Incremental.eligible profile node.Dp.state table
        in
        let candidates =
          List.filter_map
            (fun method_ ->
              if Dp.method_applicable method_ eligible then
                Some (Dp.extend profile node table method_ eligible)
              else None)
            methods
        in
        match candidates with
        | [] -> assert false (* nested loop is always applicable *)
        | c :: cs ->
          List.fold_left
            (fun acc n -> if n.Dp.cost < acc.Dp.cost then n else acc)
            c cs)
      (Dp.scan_node profile first)
      rest

let optimize ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ])
    ?estimator ?(restarts = 8) ?(max_steps = 100) ?(seed = 1) profile query =
  if methods = [] then invalid_arg "Random_walk.optimize: no join methods";
  let profile =
    match estimator with
    | None -> profile
    | Some e -> Els.Profile.with_estimator e profile
  in
  let tables = Array.of_list query.Query.tables in
  let n = Array.length tables in
  if n = 0 then invalid_arg "Random_walk.optimize: query with no tables";
  let rng = Rel.Prng.create seed in
  let cost_of order = (plan_of_order ~methods profile order).Dp.cost in
  let best = ref None in
  let consider order =
    let node = plan_of_order ~methods profile order in
    match !best with
    | Some incumbent when incumbent.Dp.cost <= node.Dp.cost -> ()
    | Some _ | None -> best := Some node
  in
  for _ = 1 to max 1 restarts do
    let order = Array.copy tables in
    Rel.Prng.shuffle rng order;
    let current = ref (Array.to_list order) in
    let current_cost = ref (cost_of !current) in
    (* Descend through random adjacent transpositions. *)
    let stale = ref 0 in
    let steps = ref 0 in
    while n >= 2 && !steps < max_steps && !stale < 3 * n do
      incr steps;
      let i = if n <= 1 then 0 else Rel.Prng.int rng (n - 1) in
      let arr = Array.of_list !current in
      let tmp = arr.(i) in
      arr.(i) <- arr.(i + 1);
      arr.(i + 1) <- tmp;
      let neighbor = Array.to_list arr in
      let cost = cost_of neighbor in
      if cost < !current_cost then begin
        current := neighbor;
        current_cost := cost;
        stale := 0
      end
      else incr stale
    done;
    consider !current
  done;
  match !best with
  | Some node -> node
  | None -> assert false
