(* Cost a fixed left-deep order, cheapest applicable method per step.
   A step with no applicable method (e.g. [~methods:[Hash]] and no
   eligible equi-predicate) is a structured [Invalid_query] error — this
   used to be an [assert false] crash. *)
let plan_of_order ?charge ~methods profile order =
  Dp.plan_order ?charge ~methods profile order

let optimize_traced
    ?(methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ])
    ?estimator ?(restarts = 8) ?(max_steps = 100) ?(seed = 1) ?budget profile
    query =
  if methods = [] then invalid_arg "Random_walk.optimize: no join methods";
  let profile =
    match estimator with
    | None -> profile
    | Some e -> Els.Profile.with_estimator e profile
  in
  let tables = Array.of_list query.Query.tables in
  let n = Array.length tables in
  if n = 0 then invalid_arg "Random_walk.optimize: query with no tables";
  let expansions = ref 0 in
  let charge () =
    incr expansions;
    match budget with
    | None -> ()
    | Some b -> Rel.Budget.spend_node_exn b 1
  in
  let boundary () =
    match budget with None -> () | Some b -> Rel.Budget.check_exn b
  in
  let rng = Rel.Prng.create seed in
  let cost_of order = (plan_of_order ~charge ~methods profile order).Dp.cost in
  let best = ref None in
  let consider order =
    let node = plan_of_order ~charge ~methods profile order in
    match !best with
    | Some incumbent when incumbent.Dp.cost <= node.Dp.cost -> ()
    | Some _ | None -> best := Some node
  in
  let search () =
    for _ = 1 to max 1 restarts do
      boundary ();
      let order = Array.copy tables in
      Rel.Prng.shuffle rng order;
      let current = ref (Array.to_list order) in
      let current_cost = ref (cost_of !current) in
      (* Descend through random adjacent transpositions. *)
      let stale = ref 0 in
      let steps = ref 0 in
      while n >= 2 && !steps < max_steps && !stale < 3 * n do
        incr steps;
        let i = if n <= 1 then 0 else Rel.Prng.int rng (n - 1) in
        let arr = Array.of_list !current in
        let tmp = arr.(i) in
        arr.(i) <- arr.(i + 1);
        arr.(i + 1) <- tmp;
        let neighbor = Array.to_list arr in
        let cost = cost_of neighbor in
        if cost < !current_cost then begin
          current := neighbor;
          current_cost := cost;
          stale := 0
        end
        else incr stale
      done;
      consider !current
    done
  in
  match search () with
  | () -> begin
    match !best with
    | Some node ->
      ( node,
        Provenance.completed Provenance.Random_walk ~expansions:!expansions )
    | None -> assert false (* restarts >= 1, so consider ran at least once *)
  end
  | exception Rel.Budget.Exhausted resource -> begin
    match !best with
    | Some node ->
      (* Return the incumbent: the best complete order costed so far. *)
      ( node,
        Provenance.degraded Provenance.Random_walk resource
          ~expansions:!expansions )
    | None ->
      (* Exhausted before even one full costing: FROM-order fallback,
         unbudgeted. *)
      let node = Dp.plan_order ~methods profile (Array.to_list tables) in
      ( node,
        Provenance.degraded Provenance.Left_deep_fallback resource
          ~expansions:!expansions )
  end

let optimize ?methods ?estimator ?restarts ?max_steps ?seed ?budget profile
    query =
  fst
    (optimize_traced ?methods ?estimator ?restarts ?max_steps ?seed ?budget
       profile query)
