(** Randomized join-order search (iterative improvement).

    The paper notes that incremental estimation is also what drives
    randomized query optimizers [14, 5]. This enumerator searches the
    space of left-deep join orders by iterative improvement: random
    restarts, each descending through random adjacent-swap neighbors until
    no accepted move occurs for a while. For each visited order the
    cheapest join method per step is chosen greedily.

    Deterministic given [seed]. With a {!Rel.Budget} the walk checks the
    deadline between restarts and charges every costed extension; on
    exhaustion it returns the best complete order costed so far (rung
    {!Provenance.Random_walk}), or the FROM-order fallback when not even
    one costing finished. *)

val optimize :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  ?restarts:int ->
  ?max_steps:int ->
  ?seed:int ->
  ?budget:Rel.Budget.t ->
  Els.Profile.t ->
  Query.t ->
  Dp.node
(** Defaults: 8 restarts, 100 steps per restart, seed 1. Same result type
    as {!Dp.optimize}; [estimator] overrides the profile's estimator as in
    {!Dp.optimize}.
    @raise Invalid_argument on an empty FROM list or empty [methods].
    @raise Els.Els_error.Error ([Invalid_query]) when a visited step has
    no applicable join method (e.g. [~methods:[Hash]] across a step with
    no eligible equi-join predicate). *)

val optimize_traced :
  ?methods:Exec.Plan.join_method list ->
  ?estimator:Els.Estimator.t ->
  ?restarts:int ->
  ?max_steps:int ->
  ?seed:int ->
  ?budget:Rel.Budget.t ->
  Els.Profile.t ->
  Query.t ->
  Dp.node * Provenance.t
(** [optimize] plus the provenance record (rung, exhaustion, expansion
    count). *)

val plan_of_order :
  ?charge:(unit -> unit) ->
  methods:Exec.Plan.join_method list ->
  Els.Profile.t ->
  string list ->
  Dp.node
(** Cost a fixed left-deep order, choosing the cheapest applicable method
    at each step (exposed for tests and for costing externally supplied
    orders); alias of {!Dp.plan_order}.
    @raise Els.Els_error.Error ([Invalid_query]) when a step has no
    applicable method — previously an [assert false] crash. *)
