module T = struct
  type t = {
    table : string;
    column : string;
  }

  let compare a b =
    match String.compare a.table b.table with
    | 0 -> String.compare a.column b.column
    | c -> c
end

include T

let make ~table ~column =
  {
    table = String.lowercase_ascii table;
    column = String.lowercase_ascii column;
  }

let v table column = make ~table ~column

let equal a b = compare a b = 0
let hash t = Hashtbl.hash (t.table, t.column)

let same_table a b = String.equal a.table b.table

let to_string t = t.table ^ "." ^ t.column
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Set = Set.Make (T)
module Map = Map.Make (T)
