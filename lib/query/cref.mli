(** Qualified column references: [table.column].

    These are the atoms the paper's equivalence classes are built over.
    Both components are stored lower-cased, so two references to the same
    column are structurally equal. *)

type t = {
  table : string;
  column : string;
}

val make : table:string -> column:string -> t
val v : string -> string -> t
(** [v "R1" "x"] is shorthand for {!make}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val same_table : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
