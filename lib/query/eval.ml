type compiled = Rel.Tuple.t -> bool

let index schema cref =
  match
    Rel.Schema.index_of schema ~table:cref.Cref.table ~name:cref.Cref.column
  with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Eval.compile: column %s not in schema"
         (Cref.to_string cref))

let compile schema = function
  | Predicate.Cmp { col; op; const } ->
    let i = index schema col in
    fun tuple -> Rel.Cmp.eval op tuple.(i) const
  | Predicate.Col_eq { left; right } ->
    let i = index schema left and j = index schema right in
    fun tuple -> Rel.Value.sql_equal tuple.(i) tuple.(j)

let compile_all schema predicates =
  let compiled = List.map (compile schema) predicates in
  fun tuple -> List.for_all (fun p -> p tuple) compiled

let holds schema predicate tuple = compile schema predicate tuple
