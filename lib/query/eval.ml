type compiled = Rel.Tuple.t -> bool

let index schema cref =
  match
    Rel.Schema.index_of schema ~table:cref.Cref.table ~name:cref.Cref.column
  with
  | Some i -> i
  | None ->
    invalid_arg
      (Printf.sprintf "Eval.compile: column %s not in schema"
         (Cref.to_string cref))

let compile schema = function
  | Predicate.Cmp { col; op; const } ->
    let i = index schema col in
    fun tuple -> Rel.Cmp.eval op tuple.(i) const
  | Predicate.Col_cmp { left; op = Predicate.Eq; right } ->
    let i = index schema left and j = index schema right in
    fun tuple -> Rel.Value.sql_equal tuple.(i) tuple.(j)
  | Predicate.Col_cmp { left; op = Predicate.Band eps; right } ->
    let i = index schema left and j = index schema right in
    fun tuple ->
      let l = tuple.(i) and r = tuple.(j) in
      (* SQL three-valued logic: NULL on either side never qualifies.
         Non-numeric values cannot be within a numeric band. *)
      (match l, r with
      | (Rel.Value.Int _ | Rel.Value.Float _),
        (Rel.Value.Int _ | Rel.Value.Float _) ->
        Float.abs (Rel.Value.float_exn l -. Rel.Value.float_exn r) <= eps
      | _ -> false)
  | Predicate.Col_cmp { left; op; right } ->
    let i = index schema left and j = index schema right in
    let op =
      match Predicate.cmp_of_comparison op with
      | Some op -> op
      | None -> assert false (* Eq and Band handled above *)
    in
    fun tuple -> Rel.Cmp.eval op tuple.(i) tuple.(j)

let compile_all schema predicates =
  let compiled = List.map (compile schema) predicates in
  fun tuple -> List.for_all (fun p -> p tuple) compiled

let holds schema predicate tuple = compile schema predicate tuple
