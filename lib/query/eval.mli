(** Predicate evaluation against tuples.

    Used by the execution engine's filter and join operators, and by tests
    to check that derived (transitively closed) predicates really hold on
    the data. Column references are resolved against the tuple's schema
    once via {!compile}, then applied per tuple. *)

type compiled = Rel.Tuple.t -> bool

val compile : Rel.Schema.t -> Predicate.t -> compiled
(** @raise Invalid_argument when a referenced column is absent from the
    schema. *)

val compile_all : Rel.Schema.t -> Predicate.t list -> compiled
(** Conjunction of all predicates; the empty list compiles to [fun _ ->
    true]. *)

val holds : Rel.Schema.t -> Predicate.t -> Rel.Tuple.t -> bool
(** One-shot convenience around {!compile}. *)
