module T = struct
  type comparison =
    | Eq
    | Lt
    | Le
    | Gt
    | Ge
    | Band of float

  let compare_comparison a b =
    match a, b with
    | Band x, Band y -> Float.compare x y
    | _ -> Stdlib.compare a b

  type t =
    | Cmp of {
        col : Cref.t;
        op : Rel.Cmp.t;
        const : Rel.Value.t;
      }
    | Col_cmp of {
        left : Cref.t;
        op : comparison;
        right : Cref.t;
      }

  let compare a b =
    match a, b with
    | Cmp x, Cmp y -> begin
      match Cref.compare x.col y.col with
      | 0 -> begin
        match Stdlib.compare x.op y.op with
        | 0 -> Rel.Value.compare x.const y.const
        | c -> c
      end
      | c -> c
    end
    | Col_cmp x, Col_cmp y -> begin
      match Cref.compare x.left y.left with
      | 0 -> begin
        match compare_comparison x.op y.op with
        | 0 -> Cref.compare x.right y.right
        | c -> c
      end
      | c -> c
    end
    | Cmp _, Col_cmp _ -> -1
    | Col_cmp _, Cmp _ -> 1
end

include T

let cmp col op const = Cmp { col; op; const }

let mirror = function
  | Eq -> Eq
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le
  | Band eps -> Band eps

let col_cmp a op b =
  (match op with
  | Band eps when not (Float.is_finite eps && eps >= 0.) ->
    invalid_arg "Predicate.col_cmp: band epsilon must be finite and >= 0"
  | _ -> ());
  let c = Cref.compare a b in
  if c = 0 then invalid_arg "Predicate.col_cmp: column compared with itself"
  else if c < 0 then Col_cmp { left = a; op; right = b }
  else Col_cmp { left = b; op = mirror op; right = a }

let col_eq a b = col_cmp a Eq b

let comparison_of_cmp = function
  | Rel.Cmp.Eq -> Some Eq
  | Rel.Cmp.Lt -> Some Lt
  | Rel.Cmp.Le -> Some Le
  | Rel.Cmp.Gt -> Some Gt
  | Rel.Cmp.Ge -> Some Ge
  | Rel.Cmp.Ne -> None

let cmp_of_comparison = function
  | Eq -> Some Rel.Cmp.Eq
  | Lt -> Some Rel.Cmp.Lt
  | Le -> Some Rel.Cmp.Le
  | Gt -> Some Rel.Cmp.Gt
  | Ge -> Some Rel.Cmp.Ge
  | Band _ -> None

type kind =
  | Kind_eq
  | Kind_ineq
  | Kind_band

let comparison_kind = function
  | Eq -> Kind_eq
  | Lt | Le | Gt | Ge -> Kind_ineq
  | Band _ -> Kind_band

let kind = function
  | Cmp _ -> None
  | Col_cmp { op; _ } -> Some (comparison_kind op)

let kind_name = function
  | Kind_eq -> "eq"
  | Kind_ineq -> "ineq"
  | Kind_band -> "band"

let is_join = function
  | Col_cmp { left; right; _ } -> not (Cref.same_table left right)
  | Cmp _ -> false

let is_equijoin = function
  | Col_cmp { left; op = Eq; right } -> not (Cref.same_table left right)
  | Col_cmp _ | Cmp _ -> false

let is_local p = not (is_join p)

let columns = function
  | Cmp { col; _ } -> [ col ]
  | Col_cmp { left; right; _ } -> [ left; right ]

let tables p =
  List.sort_uniq String.compare
    (List.map (fun c -> c.Cref.table) (columns p))

let references_only table_names p =
  List.for_all
    (fun c -> List.mem c.Cref.table table_names)
    (columns p)

let equal a b = compare a b = 0

let comparison_to_string = function
  | Eq -> "="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Band _ -> "~"

let to_string = function
  | Cmp { col; op; const } ->
    Printf.sprintf "%s %s %s" (Cref.to_string col) (Rel.Cmp.to_string op)
      (Rel.Value.to_string const)
  | Col_cmp { left; op = Band eps; right } ->
    Printf.sprintf "|%s - %s| <= %g" (Cref.to_string left)
      (Cref.to_string right) eps
  | Col_cmp { left; op; right } ->
    Printf.sprintf "%s %s %s" (Cref.to_string left)
      (comparison_to_string op) (Cref.to_string right)

let pp ppf p = Format.pp_print_string ppf (to_string p)

module Set = Set.Make (T)
