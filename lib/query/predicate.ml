module T = struct
  type t =
    | Cmp of {
        col : Cref.t;
        op : Rel.Cmp.t;
        const : Rel.Value.t;
      }
    | Col_eq of {
        left : Cref.t;
        right : Cref.t;
      }

  let compare a b =
    match a, b with
    | Cmp x, Cmp y -> begin
      match Cref.compare x.col y.col with
      | 0 -> begin
        match Stdlib.compare x.op y.op with
        | 0 -> Rel.Value.compare x.const y.const
        | c -> c
      end
      | c -> c
    end
    | Col_eq x, Col_eq y -> begin
      match Cref.compare x.left y.left with
      | 0 -> Cref.compare x.right y.right
      | c -> c
    end
    | Cmp _, Col_eq _ -> -1
    | Col_eq _, Cmp _ -> 1
end

include T

let cmp col op const = Cmp { col; op; const }

let col_eq a b =
  let c = Cref.compare a b in
  if c = 0 then invalid_arg "Predicate.col_eq: column equated with itself"
  else if c < 0 then Col_eq { left = a; right = b }
  else Col_eq { left = b; right = a }

let is_join = function
  | Col_eq { left; right } -> not (Cref.same_table left right)
  | Cmp _ -> false

let is_local p = not (is_join p)

let columns = function
  | Cmp { col; _ } -> [ col ]
  | Col_eq { left; right } -> [ left; right ]

let tables p =
  List.sort_uniq String.compare
    (List.map (fun c -> c.Cref.table) (columns p))

let references_only table_names p =
  List.for_all
    (fun c -> List.mem c.Cref.table table_names)
    (columns p)

let equal a b = compare a b = 0

let to_string = function
  | Cmp { col; op; const } ->
    Printf.sprintf "%s %s %s" (Cref.to_string col) (Rel.Cmp.to_string op)
      (Rel.Value.to_string const)
  | Col_eq { left; right } ->
    Printf.sprintf "%s = %s" (Cref.to_string left) (Cref.to_string right)

let pp ppf p = Format.pp_print_string ppf (to_string p)

module Set = Set.Make (T)
