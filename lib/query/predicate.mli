(** Conjunct predicates of a query.

    Following the paper's terminology:
    - a {e local} predicate compares a column with a constant
      ([R.x op c]), or equates two columns {e of the same table}
      ([R.y = R.w], the kind produced by transitive-closure rule 2b);
    - a {e join} predicate equates columns of two different tables
      ([R1.x = R2.y]).

    Both column-equality shapes share the {!constructor:Col_eq}
    constructor; {!is_join} distinguishes them. Column equalities are kept
    in canonical order (smaller reference first), so structural equality
    identifies duplicates regardless of how the query spelled them. *)

type t =
  | Cmp of {
      col : Cref.t;
      op : Rel.Cmp.t;
      const : Rel.Value.t;
    }  (** [col op const] *)
  | Col_eq of {
      left : Cref.t;
      right : Cref.t;
    }  (** [left = right]; canonicalized so [compare left right < 0] *)

val cmp : Cref.t -> Rel.Cmp.t -> Rel.Value.t -> t
val col_eq : Cref.t -> Cref.t -> t
(** @raise Invalid_argument when both sides are the same column. *)

val is_join : t -> bool
(** A {!constructor:Col_eq} across two distinct tables. *)

val is_local : t -> bool
(** A constant comparison, or a column equality within one table. *)

val columns : t -> Cref.t list
val tables : t -> string list
(** Distinct tables mentioned, in canonical order. *)

val references_only : string list -> t -> bool
(** [references_only tables p]: every column of [p] belongs to [tables]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
