(** Conjunct predicates of a query.

    Following the paper's terminology, extended to comparison joins:
    - a {e local} predicate compares a column with a constant
      ([R.x op c]), or relates two columns {e of the same table}
      ([R.y = R.w], the kind produced by transitive-closure rule 2b);
    - a {e join} predicate relates columns of two different tables. The
      paper only treats the equality form ([R1.x = R2.y]); this
      reproduction generalizes to inequality joins ([R1.x < R2.y]) and
      band joins ([|R1.x - R2.y| <= eps]).

    Both column-comparison shapes share the {!constructor:Col_cmp}
    constructor; {!is_join} distinguishes them. Column comparisons are
    kept in canonical order (smaller reference first, directional
    operators mirrored as needed), so structural equality identifies
    duplicates regardless of how the query spelled them. *)

type comparison =
  | Eq
  | Lt
  | Le
  | Gt
  | Ge
  | Band of float
      (** [Band eps]: [|left - right| <= eps]; symmetric, like [Eq]. *)

type t =
  | Cmp of {
      col : Cref.t;
      op : Rel.Cmp.t;
      const : Rel.Value.t;
    }  (** [col op const] *)
  | Col_cmp of {
      left : Cref.t;
      op : comparison;
      right : Cref.t;
    }
      (** [left op right]; canonicalized so [Cref.compare left right < 0]
          (directional operators are mirrored when the sides swap). *)

val cmp : Cref.t -> Rel.Cmp.t -> Rel.Value.t -> t

val col_cmp : Cref.t -> comparison -> Cref.t -> t
(** Canonicalizing smart constructor: [col_cmp b Gt a] and
    [col_cmp a Lt b] build the same value.
    @raise Invalid_argument when both sides are the same column, or when a
    band epsilon is negative or non-finite. *)

val col_eq : Cref.t -> Cref.t -> t
(** [col_eq a b = col_cmp a Eq b]. *)

val mirror : comparison -> comparison
(** The operator as seen from the other side: [a op b] iff
    [b (mirror op) a]. Symmetric operators ([Eq], [Band]) are fixed
    points. *)

val comparison_of_cmp : Rel.Cmp.t -> comparison option
(** [None] only for {!Rel.Cmp.Ne}, which is not a supported join
    comparison. *)

val cmp_of_comparison : comparison -> Rel.Cmp.t option
(** [None] only for [Band _], which has no single-operator equivalent. *)

(** Coarse predicate-kind taxonomy used for derivation-card labels and
    metrics: equality, directional inequality, or band. *)
type kind =
  | Kind_eq
  | Kind_ineq
  | Kind_band

val comparison_kind : comparison -> kind

val kind : t -> kind option
(** [None] for local constant comparisons ({!constructor:Cmp}). *)

val kind_name : kind -> string
(** ["eq"], ["ineq"] or ["band"]. *)

val is_join : t -> bool
(** A {!constructor:Col_cmp} across two distinct tables. *)

val is_equijoin : t -> bool
(** A {!constructor:Col_cmp} with [op = Eq] across two distinct tables —
    the only join shape that merges equivalence classes or feeds hash /
    index joins. *)

val is_local : t -> bool
(** A constant comparison, or a column comparison within one table. *)

val columns : t -> Cref.t list

val tables : t -> string list
(** Distinct tables mentioned, in canonical order. *)

val references_only : string list -> t -> bool
(** [references_only tables p]: every column of [p] belongs to [tables]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val comparison_to_string : comparison -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
