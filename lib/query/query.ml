module Cref = Cref
module Predicate = Predicate
module Eval = Eval

type projection =
  | Star
  | Columns of Cref.t list
  | Count_star

type t = {
  tables : string list;
  sources : (string * string) list;
  predicates : Predicate.t list;
  projection : projection;
}

let make ?(projection = Star) ?(sources = []) ~tables predicates =
  let tables = List.map String.lowercase_ascii tables in
  let sorted = List.sort_uniq String.compare tables in
  if List.length sorted <> List.length tables then
    invalid_arg "Query.make: duplicate table in FROM";
  let sources =
    List.map
      (fun (a, s) -> (String.lowercase_ascii a, String.lowercase_ascii s))
      sources
  in
  List.iter
    (fun (alias, _) ->
      if not (List.mem alias tables) then
        invalid_arg
          (Printf.sprintf "Query.make: source mapping for unknown alias %s"
             alias))
    sources;
  let sources =
    List.map
      (fun alias ->
        (alias, Option.value (List.assoc_opt alias sources) ~default:alias))
      tables
  in
  List.iter
    (fun p ->
      if not (Predicate.references_only tables p) then
        invalid_arg
          (Printf.sprintf "Query.make: predicate %s references unknown table"
             (Predicate.to_string p)))
    predicates;
  (match projection with
  | Star | Count_star -> ()
  | Columns cols ->
    List.iter
      (fun c ->
        if not (List.mem c.Cref.table tables) then
          invalid_arg
            (Printf.sprintf "Query.make: projected column %s not in FROM"
               (Cref.to_string c)))
      cols);
  { tables; sources; predicates; projection }

let source t alias =
  let alias = String.lowercase_ascii alias in
  Option.value (List.assoc_opt alias t.sources) ~default:alias

let join_predicates t = List.filter Predicate.is_join t.predicates
let local_predicates t = List.filter Predicate.is_local t.predicates

let predicates_on_table t name =
  let name = String.lowercase_ascii name in
  List.filter
    (fun p -> Predicate.is_local p && Predicate.tables p = [ name ])
    t.predicates

let with_predicates t predicates = { t with predicates }

let to_string t =
  let select =
    match t.projection with
    | Star -> "*"
    | Count_star -> "COUNT(*)"
    | Columns cols -> String.concat ", " (List.map Cref.to_string cols)
  in
  let where =
    match t.predicates with
    | [] -> ""
    | ps ->
      " WHERE " ^ String.concat " AND " (List.map Predicate.to_string ps)
  in
  let from_item alias =
    let src = source t alias in
    if String.equal src alias then alias else src ^ " " ^ alias
  in
  Printf.sprintf "SELECT %s FROM %s%s" select
    (String.concat ", " (List.map from_item t.tables))
    where

let pp ppf t = Format.pp_print_string ppf (to_string t)
