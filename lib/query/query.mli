(** Typed query IR: conjunctive select-project-join queries.

    This is the library's root module; it also re-exports the submodules
    ({!Cref}, {!Predicate}, {!Eval}) so users address everything as
    [Query.Cref], [Query.Predicate], ...

    A query is the class the paper estimates: a list of base tables, a
    conjunction of local and join predicates, and a projection (the paper's
    experiment uses [SELECT COUNT( )]). *)

module Cref = Cref
module Predicate = Predicate
module Eval = Eval

type projection =
  | Star  (** all columns of all tables *)
  | Columns of Cref.t list
  | Count_star  (** [COUNT( )], as in Section 8 *)

type t = {
  tables : string list;
      (** FROM list: the {e aliases} (lower-cased, duplicate-free); for an
          unaliased table the alias is the table name itself *)
  sources : (string * string) list;
      (** alias → catalog table; identity entries included *)
  predicates : Predicate.t list; (** WHERE conjunction *)
  projection : projection;
}

val make :
  ?projection:projection ->
  ?sources:(string * string) list ->
  tables:string list ->
  Predicate.t list ->
  t
(** [make ~tables preds] validates that aliases are distinct and every
    predicate references only listed aliases. [sources] maps aliases to
    catalog tables (self-joins name the same source twice); aliases not
    listed map to themselves. [projection] defaults to [Star].
    @raise Invalid_argument on violation. *)

val source : t -> string -> string
(** Catalog table behind an alias; the alias itself when unmapped. *)

val join_predicates : t -> Predicate.t list
val local_predicates : t -> Predicate.t list

val predicates_on_table : t -> string -> Predicate.t list
(** Local predicates whose columns all live in the given table. *)

val with_predicates : t -> Predicate.t list -> t
(** Same query shape, different conjunction (used after rewrite). *)

val to_string : t -> string
(** SQL-ish rendering: [SELECT ... FROM ... WHERE ...]. *)

val pp : Format.formatter -> t -> unit
