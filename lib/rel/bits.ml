(* [n land (n - 1)] clears the lowest set bit, so the loop runs once per
   set bit — for the <= 20-bit optimizer masks this beats both a per-bit
   scan and a SWAR reduction (whose 64-bit constants do not fit OCaml's
   63-bit int literals). *)
let popcount n =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go n 0
