(** Bit-twiddling helpers for the int bitsets the optimizer and the
    estimation kernels use as table sets.

    One shared implementation replaces the hand-rolled per-bit popcount
    loops that used to live in [Dp], the benchmark harness and the
    DP-enumeration experiments. *)

val popcount : int -> int
(** Number of set bits of a {e non-negative} int (Kernighan's loop:
    O(set bits), not O(word size)). All bitset masks in this codebase are
    non-negative — behaviour on negative arguments is unspecified. *)
