type resource = Deadline | Nodes | Rows

let resource_name = function
  | Deadline -> "deadline"
  | Nodes -> "nodes"
  | Rows -> "rows"

exception Exhausted of resource

let () =
  Printexc.register_printer (function
    | Exhausted r -> Some (Printf.sprintf "Budget.Exhausted(%s)" (resource_name r))
    | _ -> None)

type t = {
  clock : unit -> float;
  deadline : float option;  (* absolute, on [clock]'s timeline *)
  node_limit : int option;
  row_limit : int option;
  mutable nodes_used : int;
  mutable rows_used : int;
  mutable row_spends : int;  (* throttles deadline probes on the row path *)
  mutable tripped : resource option;
}

let row_deadline_stride = 64

let create ?(clock = Unix.gettimeofday) ?deadline_ms ?node_budget ?row_budget
    () =
  (match deadline_ms with
  | Some ms when not (ms > 0.) ->
    invalid_arg "Budget.create: deadline_ms must be positive"
  | _ -> ());
  let nonneg what = function
    | Some n when n < 0 ->
      invalid_arg (Printf.sprintf "Budget.create: %s must be >= 0" what)
    | _ -> ()
  in
  nonneg "node_budget" node_budget;
  nonneg "row_budget" row_budget;
  {
    clock;
    deadline = Option.map (fun ms -> clock () +. (ms /. 1000.)) deadline_ms;
    node_limit = node_budget;
    row_limit = row_budget;
    nodes_used = 0;
    rows_used = 0;
    row_spends = 0;
    tripped = None;
  }

let trip t r =
  (* First trip wins, except that a node trip — which the optimizer
     absorbs and degrades on — can be superseded by a globally-blocking
     deadline or row trip later in the same run. *)
  (match t.tripped with
  | None | Some Nodes -> t.tripped <- Some r
  | Some Deadline | Some Rows -> ());
  Error r

let deadline_passed t =
  match t.deadline with Some d -> t.clock () > d | None -> false

let check t =
  match t.tripped with
  | Some r -> Error r
  | None -> if deadline_passed t then trip t Deadline else Ok ()

let spend_node t n =
  t.nodes_used <- t.nodes_used + n;
  match t.tripped with
  | Some ((Deadline | Nodes) as r) -> Error r
  | Some Rows | None -> begin
    match t.node_limit with
    | Some limit when t.nodes_used > limit -> trip t Nodes
    | Some _ | None ->
      if deadline_passed t then trip t Deadline else Ok ()
  end

(* A prior [Nodes] trip does not block the row path: the optimizer
   absorbed that exhaustion by degrading, and a shared budget must still
   let the chosen plan execute against the row/deadline limits. The row
   path stays sticky regardless, because [rows_used] only grows (the
   limit comparison re-fails every spend) and a passed deadline is
   recorded as a [Deadline] trip, which does block. *)
let spend_rows t n =
  t.rows_used <- t.rows_used + n;
  t.row_spends <- t.row_spends + 1;
  match t.tripped with
  | Some ((Deadline | Rows) as r) -> Error r
  | Some Nodes | None -> begin
    match t.row_limit with
    | Some limit when t.rows_used > limit -> trip t Rows
    | Some _ | None ->
      if t.row_spends mod row_deadline_stride = 0 && deadline_passed t then
        trip t Deadline
      else Ok ()
  end

let lift = function Ok () -> () | Error r -> raise (Exhausted r)
let check_exn t = lift (check t)
let spend_node_exn t n = lift (spend_node t n)
let spend_rows_exn t n = lift (spend_rows t n)

let exhausted t = t.tripped
let nodes_used t = t.nodes_used
let rows_used t = t.rows_used

let remaining_ms t =
  Option.map (fun d -> (d -. t.clock ()) *. 1000.) t.deadline

let pp ppf t =
  let limit = function None -> "∞" | Some n -> string_of_int n in
  Format.fprintf ppf "nodes %d/%s rows %d/%s%s%s" t.nodes_used
    (limit t.node_limit) t.rows_used (limit t.row_limit)
    (match remaining_ms t with
    | None -> ""
    | Some ms -> Printf.sprintf " deadline %+.1fms" ms)
    (match t.tripped with
    | None -> ""
    | Some r -> Printf.sprintf " [exhausted: %s]" (resource_name r))
