(** Cooperative resource budgets.

    A budget bounds how much work a long-running computation may do before
    it must stop and degrade: a wall-clock deadline, a count of "node"
    expansions (optimizer search steps), and a count of rows moved
    (executor tuples read or emitted). The computation {e cooperates}: it
    calls {!check} / {!spend_node} / {!spend_rows} at its natural
    boundaries and receives [Error resource] once any limit is crossed —
    nothing is preempted, so a budgeted loop can never wedge as long as
    every unbounded loop contains a spend or a check.

    Budgets are {e sticky per path}: a [Deadline] or [Rows] trip
    permanently fails every later spend and check, while a [Nodes] trip
    permanently fails only the node path — the optimizer absorbs node
    exhaustion by degrading anytime-style, so a budget shared across
    optimize + execute must still let the chosen plan run against its
    remaining row and deadline limits. Usage counters keep accumulating
    past any trip, so cancellation sites can still record the work
    actually done. The clock
    is injectable for deterministic tests; the default is
    [Unix.gettimeofday], the closest thing to a monotonic clock available
    without extra dependencies. *)

type resource =
  | Deadline  (** the wall-clock deadline passed *)
  | Nodes  (** the node/expansion budget is spent *)
  | Rows  (** the row budget is spent *)

val resource_name : resource -> string
(** ["deadline"], ["nodes"] or ["rows"]. *)

exception Exhausted of resource
(** Raised by the [*_exn] variants. Budgeted subsystems are expected to
    catch it at their boundary and either degrade (optimizer) or report a
    structured error (executor); it must never escape to the user. *)

type t

val create :
  ?clock:(unit -> float) ->
  ?deadline_ms:float ->
  ?node_budget:int ->
  ?row_budget:int ->
  unit ->
  t
(** A fresh budget. [deadline_ms] is relative to [clock ()] at creation
    time; omitted dimensions are unlimited. [clock] (seconds, arbitrary
    epoch) defaults to [Unix.gettimeofday] and exists so tests can drive
    deadlines deterministically.
    @raise Invalid_argument when [deadline_ms] is not positive or a count
    budget is negative. *)

val check : t -> (unit, resource) result
(** Cooperative checkpoint: re-reports a previous trip, else probes the
    deadline. Call at coarse boundaries (e.g. between DP subset sizes). *)

val spend_node : t -> int -> (unit, resource) result
(** Record [n] node expansions, then check the node limit and the
    deadline. The expansion is recorded even when the result is an error
    (usage counters are monotone). *)

val spend_rows : t -> int -> (unit, resource) result
(** Record [n] rows of executor work, then check the row limit; the
    deadline is probed only every {!row_deadline_stride}-th call so
    per-tuple accounting stays cheap. A prior [Nodes] trip does not fail
    the row path (see above). *)

val check_exn : t -> unit
val spend_node_exn : t -> int -> unit
val spend_rows_exn : t -> int -> unit
(** Same, raising {!Exhausted} instead of returning [Error]. *)

val exhausted : t -> resource option
(** The resource that tripped, if any. The first trip is kept, except
    that a [Nodes] trip is superseded by a later globally-blocking
    [Deadline] or [Rows] trip. *)

val nodes_used : t -> int
val rows_used : t -> int

val remaining_ms : t -> float option
(** Milliseconds to the deadline by the budget's own clock ([None] when no
    deadline was set); negative once passed. *)

val row_deadline_stride : int
(** How many {!spend_rows} calls separate two deadline probes (64). *)

val pp : Format.formatter -> t -> unit
