type t =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

let holds op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

(* Predicate truth uses the numeric-aware order: [x < 3.0] on an int
   column must compare values, not type ranks. *)
let eval op a b =
  if Value.is_null a || Value.is_null b then false
  else holds op (Value.compare_sem a b)

let flip = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

let is_equality = function
  | Eq -> true
  | Ne | Lt | Le | Gt | Ge -> false

let to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let pp ppf op = Format.pp_print_string ppf (to_string op)
