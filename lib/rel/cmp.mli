(** Comparison operators.

    Shared by predicates, the SQL front end and selectivity estimation.
    The paper's conjunctive queries use exactly these six operators. *)

type t =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

val holds : t -> int -> bool
(** [holds op c] interprets [c] (a [compare]-style result for [lhs ? rhs])
    under [op]; e.g. [holds Lt (-1) = true]. *)

val eval : t -> Value.t -> Value.t -> bool
(** SQL semantics: any comparison involving [Null] is false. Ordering is
    {!Value.compare_sem}, so mixed [Int]/[Float] operands compare by
    numeric value rather than type rank. *)

val flip : t -> t
(** Operator seen from the other side: [a < b] iff [b > a]. *)

val negate : t -> t

val is_equality : t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
