let parse ?(separator = ',') text =
  let len = String.length text in
  let rows = ref [] and fields = ref [] in
  let buf = Buffer.create 64 in
  let field_written = ref false in
  let flush_field () =
    let raw = Buffer.contents buf in
    Buffer.clear buf;
    (* Unquoted empty fields are NULL; quoted empty strings are "". *)
    let value =
      if raw = "" && not !field_written then None else Some raw
    in
    field_written := false;
    fields := value :: !fields
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let i = ref 0 in
  while !i < len do
    let c = text.[!i] in
    if c = '"' then begin
      (* Quoted field: scan to the closing quote, honoring "" escapes. *)
      field_written := true;
      incr i;
      let closed = ref false in
      while not !closed do
        if !i >= len then invalid_arg "Csv.parse: unterminated quoted field";
        let q = text.[!i] in
        if q = '"' then
          if !i + 1 < len && text.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf q;
          incr i
        end
      done
    end
    else if c = separator then begin
      flush_field ();
      incr i
    end
    else if c = '\n' then begin
      flush_row ();
      incr i
    end
    else if c = '\r' then begin
      (* \r\n and bare \r both end the row. *)
      flush_row ();
      incr i;
      if !i < len && text.[!i] = '\n' then incr i
    end
    else begin
      Buffer.add_char buf c;
      field_written := true;
      incr i
    end
  done;
  if Buffer.length buf > 0 || !fields <> [] || !field_written then flush_row ();
  List.rev !rows

type inferred =
  | Unknown (* only NULLs seen so far *)
  | Can_int
  | Can_float
  | Can_bool
  | Must_string

let classify = function
  | None -> Unknown (* NULL fits any type *)
  | Some s ->
    if int_of_string_opt s <> None then Can_int
    else if float_of_string_opt s <> None then Can_float
    else begin
      match String.lowercase_ascii s with
      | "true" | "false" -> Can_bool
      | _ -> Must_string
    end

let widen a b =
  match a, b with
  | Unknown, x | x, Unknown -> x
  | Must_string, _ | _, Must_string -> Must_string
  | Can_bool, Can_bool -> Can_bool
  | Can_bool, (Can_int | Can_float) | (Can_int | Can_float), Can_bool ->
    Must_string
  | Can_float, (Can_float | Can_int) | Can_int, Can_float -> Can_float
  | Can_int, Can_int -> Can_int

let value_of inferred field =
  match field with
  | None -> Value.Null
  | Some s -> begin
    match inferred with
    | Unknown -> assert false (* a non-null field refines the column *)
    | Can_int -> Value.Int (int_of_string s)
    | Can_float -> Value.Float (float_of_string s)
    | Can_bool -> Value.Bool (String.lowercase_ascii s = "true")
    | Must_string -> Value.String s
  end

let ty_of = function
  | Unknown | Can_int -> Value.Ty_int
  | Can_float -> Value.Ty_float
  | Can_bool -> Value.Ty_bool
  | Must_string -> Value.Ty_string

let relation_of_string ?separator ~table text =
  match parse ?separator text with
  | [] -> invalid_arg "Csv.relation_of_string: empty input"
  | header :: data ->
    let names =
      List.map
        (fun field ->
          match field with
          | Some name when String.trim name <> "" ->
            String.lowercase_ascii (String.trim name)
          | Some _ | None ->
            invalid_arg "Csv.relation_of_string: empty column name in header")
        header
    in
    let width = List.length names in
    (* Blank lines are ambiguous in single-column files (they are a NULL
       row there); in wider files they are separators and are dropped. *)
    let data =
      if width = 1 then data
      else List.filter (fun row -> row <> [ None ]) data
    in
    List.iteri
      (fun row_idx row ->
        if List.length row <> width then
          invalid_arg
            (Printf.sprintf
               "Csv.relation_of_string: row %d has %d fields, expected %d"
               (row_idx + 2) (List.length row) width))
      data;
    (* Infer each column's type over all its fields. *)
    let inferred =
      List.fold_left
        (fun acc row -> List.map2 widen acc (List.map classify row))
        (List.init width (fun _ -> Unknown))
        data
    in
    let schema =
      Schema.make
        (List.map2
           (fun name ty -> Schema.column ~table ~name (ty_of ty))
           names inferred)
    in
    let rel = Relation.create schema in
    List.iter
      (fun row ->
        Relation.insert rel
          (Array.of_list (List.map2 value_of inferred row)))
      data;
    rel

let relation_of_file ?separator ~table path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  relation_of_string ?separator ~table text

let escape_field separator s =
  let needs_quoting =
    String.exists
      (fun c -> c = separator || c = '"' || c = '\n' || c = '\r')
      s
    || s = ""
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let field_of_value separator v =
  match v with
  | Value.Null -> ""
  | Value.Int n -> string_of_int n
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.Bool b -> string_of_bool b
  | Value.String s -> escape_field separator s

let to_string ?(separator = ',') relation =
  let buf = Buffer.create 4096 in
  let schema = Relation.schema relation in
  let sep = String.make 1 separator in
  Buffer.add_string buf
    (String.concat sep
       (List.map
          (fun c -> escape_field separator c.Schema.name)
          (Schema.columns schema)));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun tuple ->
      Buffer.add_string buf
        (String.concat sep
           (List.map (field_of_value separator) (Array.to_list tuple)));
      Buffer.add_char buf '\n')
    relation;
  Buffer.contents buf

let to_file ?separator relation path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?separator relation))
