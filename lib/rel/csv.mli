(** CSV ingestion.

    Loads delimited text into relations: first row is the header (column
    names), field types are inferred per column (int, then float, then
    bool, then string; empty fields are NULL). Quoting follows RFC 4180:
    fields may be wrapped in double quotes, [""] escapes a quote, and
    quoted fields may contain separators and newlines. *)

val parse : ?separator:char -> string -> string option list list
(** [parse text] is the raw field grid; [None] marks empty (NULL) fields,
    and blank lines appear as [[None]] rows (they are meaningful for
    single-column files; {!relation_of_string} drops them for wider ones).
    The separator defaults to [','].
    @raise Invalid_argument on an unterminated quoted field. *)

val relation_of_string :
  ?separator:char -> table:string -> string -> Relation.t
(** Header + type inference + load.
    @raise Invalid_argument on an empty input, a duplicate column name, or
    a row whose width differs from the header's. *)

val relation_of_file :
  ?separator:char -> table:string -> string -> Relation.t
(** [relation_of_file ~table path] reads the whole file.
    @raise Sys_error when the file cannot be read. *)

val to_string : ?separator:char -> Relation.t -> string
(** Render a relation back to CSV (header row of unqualified column names,
    then data rows). Fields are quoted only when they contain the
    separator, a quote or a newline; NULLs render as empty fields. Together
    with {!relation_of_string} this round-trips relations whose column
    names are distinct without their table qualifier. *)

val to_file : ?separator:char -> Relation.t -> string -> unit
