type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(* SplitMix64 (Steele, Lea & Flood): gamma increment then two xor-shift
   multiplies. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  (* Keep 62 bits so the conversion to OCaml's 63-bit int stays positive. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992. (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
