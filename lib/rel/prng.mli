(** Deterministic pseudo-random numbers (SplitMix64).

    Every generator in the repository takes an explicit seed so that every
    experiment, test and benchmark is exactly reproducible. SplitMix64 is
    tiny, fast, and has no global state. *)

type t

val create : int -> t
(** Seeded generator; equal seeds give equal streams. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [[lo, hi]] inclusive. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates. *)
