type t = {
  schema : Schema.t;
  rows : Tuple.t Vec.t;
}

let create schema = { schema; rows = Vec.create () }

let schema t = t.schema
let cardinality t = Vec.length t.rows

let conforms schema tuple =
  Tuple.arity tuple = Schema.arity schema
  && List.for_all
       (fun i -> Value.has_type (Schema.get schema i).Schema.ty tuple.(i))
       (List.init (Schema.arity schema) Fun.id)

let insert t tuple =
  if not (conforms t.schema tuple) then
    invalid_arg "Relation.insert: tuple does not conform to schema";
  Vec.push t.rows tuple

let insert_values t values = insert t (Tuple.of_list values)

let get t i = Vec.get t.rows i
let iter f t = Vec.iter f t.rows
let fold f acc t = Vec.fold_left f acc t.rows
let to_list t = Vec.to_list t.rows

let of_tuples schema tuples =
  let r = create schema in
  List.iter (insert r) tuples;
  r

let distinct_count t col =
  let seen = Hashtbl.create 1024 in
  iter
    (fun row ->
      let v = row.(col) in
      if not (Value.is_null v) then
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v ())
    t;
  Hashtbl.length seen

let column_values t col =
  Array.init (cardinality t) (fun i -> (get t i).(col))

let min_max t col =
  fold
    (fun acc row ->
      let v = row.(col) in
      if Value.is_null v then acc
      else
        match acc with
        | None -> Some (v, v)
        | Some (lo, hi) ->
          let lo = if Value.compare v lo < 0 then v else lo in
          let hi = if Value.compare v hi > 0 then v else hi in
          Some (lo, hi))
    None t

let rename t alias = { t with schema = Schema.rename_table t.schema alias }

let pp ?(max_rows = 20) ppf t =
  let headers =
    List.map
      (fun c -> Printf.sprintf "%s.%s" c.Schema.table c.Schema.name)
      (Schema.columns t.schema)
  in
  let shown = min max_rows (cardinality t) in
  let cells =
    List.init shown (fun i ->
        Array.to_list (Array.map Value.to_string (get t i)))
  in
  let widths =
    List.mapi
      (fun j h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row j)))
          (String.length h) cells)
      headers
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let render_row cols =
    String.concat " | " (List.map2 pad cols widths)
  in
  Format.fprintf ppf "%s@." (render_row headers);
  Format.fprintf ppf "%s@."
    (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) cells;
  if cardinality t > shown then
    Format.fprintf ppf "... (%d rows total)@." (cardinality t)
