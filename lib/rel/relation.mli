(** In-memory relations.

    A relation is a schema plus a bag (multiset) of tuples. This is the
    storage substrate standing in for the paper's Starburst tables: big
    enough to run the Section 8 experiment for real, simple enough to audit.

    Mutation is append-only; all analytical operations are pure. *)

type t

val create : Schema.t -> t

val schema : t -> Schema.t
val cardinality : t -> int

val insert : t -> Tuple.t -> unit
(** @raise Invalid_argument when the tuple does not conform to the schema
    (wrong arity or a value of the wrong type). *)

val insert_values : t -> Value.t list -> unit

val get : t -> int -> Tuple.t
(** Tuples are addressable by insertion index; used by scans. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('acc -> Tuple.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Tuple.t list

val of_tuples : Schema.t -> Tuple.t list -> t

val distinct_count : t -> int -> int
(** [distinct_count r col] is the exact number of distinct non-null values
    in column position [col]. *)

val column_values : t -> int -> Value.t array
(** All values (including duplicates and nulls) of a column, in row order. *)

val min_max : t -> int -> (Value.t * Value.t) option
(** Smallest and largest non-null value of a column, or [None] when the
    column is entirely null or the relation is empty. *)

val rename : t -> string -> t
(** Shallow copy under a new table alias; shares tuple storage. *)

val pp : ?max_rows:int -> Format.formatter -> t -> unit
(** Render as an aligned text table, truncated to [max_rows] (default 20). *)
