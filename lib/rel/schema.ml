type column = {
  table : string;
  name : string;
  ty : Value.ty;
}

type t = { cols : column array }

let column ~table ~name ty =
  { table = String.lowercase_ascii table; name = String.lowercase_ascii name; ty }

let make cols =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let key = (c.table, c.name) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Printf.sprintf "Schema.make: duplicate column %s.%s" c.table c.name);
      Hashtbl.add seen key ())
    cols;
  { cols = Array.of_list cols }

let columns t = Array.to_list t.cols
let arity t = Array.length t.cols

let get t i =
  if i < 0 || i >= arity t then invalid_arg "Schema.get: out of bounds";
  t.cols.(i)

let index_of t ~table ~name =
  let table = String.lowercase_ascii table
  and name = String.lowercase_ascii name in
  let rec loop i =
    if i >= arity t then None
    else
      let c = t.cols.(i) in
      if String.equal c.table table && String.equal c.name name then Some i
      else loop (i + 1)
  in
  loop 0

let index_of_name t name =
  let name = String.lowercase_ascii name in
  let hits = ref [] in
  Array.iteri
    (fun i c -> if String.equal c.name name then hits := i :: !hits)
    t.cols;
  match !hits with
  | [ i ] -> Ok i
  | [] -> Error `Missing
  | _ :: _ :: _ -> Error `Ambiguous

let mem t ~table ~name = index_of t ~table ~name <> None

let concat a b =
  make (columns a @ columns b)

let project t positions =
  { cols = Array.of_list (List.map (get t) positions) }

let rename_table t alias =
  let alias = String.lowercase_ascii alias in
  { cols = Array.map (fun c -> { c with table = alias }) t.cols }

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun ca cb ->
         String.equal ca.table cb.table
         && String.equal ca.name cb.name
         && ca.ty = cb.ty)
       a.cols b.cols

let pp ppf t =
  let pp_col ppf c =
    Format.fprintf ppf "%s.%s:%s" c.table c.name (Value.ty_name c.ty)
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_col)
    (columns t)
