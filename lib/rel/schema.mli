(** Relation schemas.

    A schema is an ordered list of named, typed columns. Column names are
    qualified with the table (or alias) they come from, so that schemas of
    intermediate join results keep every input column addressable, exactly
    as the estimation algorithms require. *)

type column = {
  table : string;  (** owning table or alias, lower-cased *)
  name : string;   (** column name, lower-cased *)
  ty : Value.ty;
}

type t

val make : column list -> t
(** @raise Invalid_argument on duplicate [(table, name)] pairs. *)

val column : table:string -> name:string -> Value.ty -> column

val columns : t -> column list
val arity : t -> int
val get : t -> int -> column

val index_of : t -> table:string -> name:string -> int option
(** Position of a fully qualified column. *)

val index_of_name : t -> string -> (int, [ `Missing | `Ambiguous ]) result
(** Position of an unqualified column name; [`Ambiguous] when two tables in
    the schema both expose the name. *)

val mem : t -> table:string -> name:string -> bool

val concat : t -> t -> t
(** Schema of a join result: left columns followed by right columns.
    @raise Invalid_argument if the two sides share a qualified column. *)

val project : t -> int list -> t
(** Schema restricted to the given positions, in the given order. *)

val rename_table : t -> string -> t
(** [rename_table s alias] requalifies every column with [alias]; used when
    a base table is brought into a query under an alias. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
