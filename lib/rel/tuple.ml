type t = Value.t array

let of_list = Array.of_list
let arity = Array.length
let get t i = t.(i)
let concat = Array.append

let project t positions =
  Array.of_list (List.map (fun i -> t.(i)) positions)

let equal a b =
  arity a = arity b && Array.for_all2 Value.equal a b

let compare_at cols a b =
  let rec loop = function
    | [] -> 0
    | i :: rest ->
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop rest
  in
  loop cols

let hash_at cols t =
  List.fold_left (fun acc i -> (acc * 31) + Value.hash t.(i)) 17 cols

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)
