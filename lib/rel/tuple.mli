(** Tuples (rows).

    A tuple is an immutable array of values positionally aligned with a
    schema. The engine treats tuples as plain data; schema conformance is
    checked at construction time in {!Relation}. *)

type t = Value.t array

val of_list : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val concat : t -> t -> t

val project : t -> int list -> t
(** Values at the given positions, in order. *)

val equal : t -> t -> bool
val compare_at : int list -> t -> t -> int
(** [compare_at cols a b] lexicographically compares the projections of [a]
    and [b] onto [cols]; used by sorts and sort-merge joins. *)

val hash_at : int list -> t -> int
(** Hash of the projection onto [cols]; compatible with
    [compare_at cols a b = 0]. *)

val pp : Format.formatter -> t -> unit
