type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

type ty =
  | Ty_int
  | Ty_float
  | Ty_string
  | Ty_bool

let type_of = function
  | Null -> None
  | Int _ -> Some Ty_int
  | Float _ -> Some Ty_float
  | String _ -> Some Ty_string
  | Bool _ -> Some Ty_bool

let ty_name = function
  | Ty_int -> "int"
  | Ty_float -> "float"
  | Ty_string -> "string"
  | Ty_bool -> "bool"

let has_type ty v =
  match type_of v with
  | None -> true
  | Some ty' -> ty = ty'

let is_null = function
  | Null -> true
  | Int _ | Float _ | String _ | Bool _ -> false

(* Rank puts Null first so that ORDER BY and sort-merge joins place nulls
   together at the front. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | String _ | Bool _), _ ->
    Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Numeric-aware order for predicate evaluation: Int and Float compare by
   value instead of by type rank, so [Int 5 < Float 3.0] is false. Ints
   beyond 2^53 lose precision in the float conversion; the workloads the
   engine targets (catalog cardinalities, generated keys) stay far below
   that. All other type pairs keep the total rank order. *)
let compare_sem a b =
  match a, b with
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | (Null | Int _ | Float _ | String _ | Bool _), _ -> compare a b

let equal_sem a b = compare_sem a b = 0

let hash = function
  | Null -> 0x9e37
  | Int x -> Hashtbl.hash (1, x)
  | Float x -> Hashtbl.hash (2, x)
  | String s -> Hashtbl.hash (3, s)
  | Bool b -> Hashtbl.hash (4, b)

let sql_equal a b =
  if is_null a || is_null b then false else equal a b

let int_exn = function
  | Int x -> x
  | Null | Float _ | String _ | Bool _ ->
    invalid_arg "Value.int_exn: not an integer"

let float_exn = function
  | Float x -> x
  | Int x -> float_of_int x
  | Null | String _ | Bool _ -> invalid_arg "Value.float_exn: not numeric"

let string_exn = function
  | String s -> s
  | Null | Int _ | Float _ | Bool _ ->
    invalid_arg "Value.string_exn: not a string"

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int x -> Format.pp_print_int ppf x
  | Float x -> Format.fprintf ppf "%g" x
  | String s -> Format.fprintf ppf "%S" s
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v
