(** Scalar values stored in relations.

    The engine supports the small set of scalar types needed by the paper's
    workloads: 64-bit integers, floats, strings, booleans and SQL [NULL].
    Values are immutable; all operations are total. *)

type t =
  | Null
  | Int of int
  | Float of float
  | String of string
  | Bool of bool

(** Runtime type tags, used by schemas to declare column types. *)
type ty =
  | Ty_int
  | Ty_float
  | Ty_string
  | Ty_bool

val type_of : t -> ty option
(** [type_of v] is the type tag of [v], or [None] for [Null]. *)

val ty_name : ty -> string
(** [ty_name ty] is a lower-case SQL-ish name ("int", "float", ...). *)

val has_type : ty -> t -> bool
(** [has_type ty v] is true when [v] is [Null] or carries type [ty]. [Null]
    is a member of every type, as in SQL. *)

val is_null : t -> bool

val compare : t -> t -> int
(** Total order used for sorting and sort-merge joins. [Null] sorts before
    every non-null value; values of distinct types are ordered by an
    arbitrary but fixed type rank. Numeric values of the same type compare
    numerically; [Int] and [Float] are distinct types and do not mix. *)

val equal : t -> t -> bool
(** Structural equality. Unlike SQL three-valued logic, [equal Null Null] is
    [true]; predicate evaluation (see {!Query.Eval}) layers SQL semantics on
    top where needed. *)

val compare_sem : t -> t -> int
(** Numeric-aware order for predicate evaluation: [Int] and [Float] compare
    by numeric value ([compare_sem (Int 5) (Float 3.0) > 0]), every other
    pair falls back to {!compare}. Sort keys and indexes must keep using
    {!compare}, whose type-rank order is total and hash-compatible. Integers
    beyond 2^53 lose precision in the mixed comparison. *)

val equal_sem : t -> t -> bool
(** [compare_sem a b = 0]: numeric-value equality across [Int]/[Float]. *)

val hash : t -> int
(** Hash compatible with {!equal}; used by hash joins and distinct counts. *)

val sql_equal : t -> t -> bool
(** SQL equality: [false] whenever either side is [Null]. *)

val int_exn : t -> int
(** [int_exn v] extracts an integer. @raise Invalid_argument otherwise. *)

val float_exn : t -> float
(** [float_exn v] extracts a float, coercing [Int]. @raise Invalid_argument
    on non-numeric values. *)

val string_exn : t -> string
(** @raise Invalid_argument on non-strings. *)

val pp : Format.formatter -> t -> unit
(** Render a value as it would appear in a result table. *)

val to_string : t -> string
