(** Growable arrays.

    OCaml 5.1 predates [Dynarray]; this is the small subset the engine needs
    for building relations and operator buffers. Elements are boxed in a
    plain [array] doubled on demand. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when the index is out of bounds. *)

val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a option

val clear : 'a t -> unit
(** Drops all elements but keeps the underlying storage. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val map : ('a -> 'b) -> 'a t -> 'b t
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_array : 'a array -> 'a t
val of_list : 'a list -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the populated prefix. *)

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)
