let version = 1

type budget_spec = {
  deadline_ms : float option;
  node_budget : int option;
  row_budget : int option;
}

type op =
  | Estimate of {
      sql : string;
      estimator : string option;
      order : string list option;
    }
  | Explain of {
      sql : string;
      estimator : string option;
      enumerator : string option;
    }
  | Run of {
      sql : string;
      estimator : string option;
      enumerator : string option;
    }
  | Analyze of { table : string option; shards : int option }
  | Health
  | Drain

type request = { id : string option; op : op; budget : budget_spec }

let op_name = function
  | Estimate _ -> "estimate"
  | Explain _ -> "explain"
  | Run _ -> "run"
  | Analyze _ -> "analyze"
  | Health -> "health"
  | Drain -> "drain"

let op_names = [ "estimate"; "explain"; "run"; "analyze"; "health"; "drain" ]

(* --- parsing --- *)

let invalid detail = Error (Els.Els_error.Invalid_query { detail })

let ( let* ) = Result.bind

let field name json = Obs.Json.member name json

let string_field name json =
  match field name json with
  | None | Some Obs.Json.Null -> Ok None
  | Some (Obs.Json.String s) -> Ok (Some s)
  | Some _ -> invalid (Printf.sprintf "field %S must be a string" name)

let required_sql json =
  let* sql = string_field "sql" json in
  match sql with
  | Some s when String.trim s <> "" -> Ok s
  | Some _ | None -> invalid "field \"sql\" is required and must be non-empty"

let int_field name json =
  match field name json with
  | None | Some Obs.Json.Null -> Ok None
  | Some (Obs.Json.Int i) -> Ok (Some i)
  | Some _ -> invalid (Printf.sprintf "field %S must be an integer" name)

let number_field name json =
  match field name json with
  | None | Some Obs.Json.Null -> Ok None
  | Some (Obs.Json.Int i) -> Ok (Some (float_of_int i))
  | Some (Obs.Json.Float x) -> Ok (Some x)
  | Some _ -> invalid (Printf.sprintf "field %S must be a number" name)

let string_list_field name json =
  match field name json with
  | None | Some Obs.Json.Null -> Ok None
  | Some (Obs.Json.List items) ->
    let rec strings acc = function
      | [] -> Ok (Some (List.rev acc))
      | Obs.Json.String s :: rest -> strings (s :: acc) rest
      | _ ->
        invalid (Printf.sprintf "field %S must be a list of strings" name)
    in
    strings [] items
  | Some _ -> invalid (Printf.sprintf "field %S must be a list of strings" name)

let parse_budget json =
  let* deadline_ms = number_field "deadline_ms" json in
  let* () =
    match deadline_ms with
    | Some d when not (d > 0.) -> invalid "field \"deadline_ms\" must be > 0"
    | Some _ | None -> Ok ()
  in
  let* node_budget = int_field "node_budget" json in
  let* row_budget = int_field "row_budget" json in
  let* () =
    match (node_budget, row_budget) with
    | Some n, _ when n < 0 -> invalid "field \"node_budget\" must be >= 0"
    | _, Some n when n < 0 -> invalid "field \"row_budget\" must be >= 0"
    | _ -> Ok ()
  in
  Ok { deadline_ms; node_budget; row_budget }

let parse_op json =
  let* op = string_field "op" json in
  match op with
  | None -> invalid "field \"op\" is required"
  | Some name -> begin
    match String.lowercase_ascii name with
    | "estimate" ->
      let* sql = required_sql json in
      let* estimator = string_field "estimator" json in
      let* order = string_list_field "order" json in
      Ok (Estimate { sql; estimator; order })
    | "explain" ->
      let* sql = required_sql json in
      let* estimator = string_field "estimator" json in
      let* enumerator = string_field "enumerator" json in
      Ok (Explain { sql; estimator; enumerator })
    | "run" ->
      let* sql = required_sql json in
      let* estimator = string_field "estimator" json in
      let* enumerator = string_field "enumerator" json in
      Ok (Run { sql; estimator; enumerator })
    | "analyze" ->
      let* table = string_field "table" json in
      let* shards = int_field "shards" json in
      let* () =
        match shards with
        | Some s when s < 1 -> invalid "field \"shards\" must be >= 1"
        | Some _ | None -> Ok ()
      in
      Ok (Analyze { table; shards })
    | "health" -> Ok Health
    | "drain" -> Ok Drain
    | other ->
      invalid
        (Printf.sprintf "unknown op %S%s" other
           (Catalog.Suggest.hint ~candidates:op_names other))
  end

let parse ?(max_frame_bytes = 1_048_576) frame =
  if String.length frame > max_frame_bytes then
    Error
      ( None,
        Els.Els_error.Parse_error
          {
            position = max_frame_bytes;
            detail =
              Printf.sprintf "frame longer than %d bytes" max_frame_bytes;
          } )
  else
    (* The nesting/token caps make the boundary total: a frame of 100k
       open brackets is a parse error, not a stack overflow. *)
    match
      Obs.Json.of_string ~max_depth:64 ~max_token_bytes:max_frame_bytes frame
    with
    | Error detail ->
      Error (None, Els.Els_error.Parse_error { position = 0; detail })
    | Ok json -> begin
      match json with
      | Obs.Json.Obj _ ->
        let id =
          match field "id" json with
          | Some (Obs.Json.String s) -> Some s
          | Some (Obs.Json.Int i) -> Some (string_of_int i)
          | Some _ | None -> None
        in
        let request =
          let* () =
            match field "v" json with
            | None | Some (Obs.Json.Int 1) -> Ok ()
            | Some (Obs.Json.Int v) ->
              invalid
                (Printf.sprintf
                   "unsupported protocol version %d (supported: %d)" v version)
            | Some _ -> invalid "field \"v\" must be an integer"
          in
          let* op = parse_op json in
          let* budget = parse_budget json in
          Ok { id; op; budget }
        in
        (* A refusal still echoes whatever id the frame carried, so the
           client can correlate it with its request. *)
        Result.map_error (fun e -> (id, e)) request
      | _ -> Error (None, Els.Els_error.Invalid_query { detail = "frame is not a JSON object" })
    end

(* --- responses --- *)

let json_id = function
  | Some id -> Obs.Json.String id
  | None -> Obs.Json.Null

let response_ok ~id ~op fields =
  Obs.Json.Obj
    ([
       ("id", json_id id);
       ("ok", Obs.Json.Bool true);
       ("op", Obs.Json.String op);
     ]
    @ fields)

let error_kind = function
  | Els.Els_error.Missing_stats _ -> "missing-stats"
  | Els.Els_error.Corrupt_stats _ -> "corrupt-stats"
  | Els.Els_error.Invalid_query _ -> "invalid-query"
  | Els.Els_error.Parse_error _ -> "parse-error"
  | Els.Els_error.Invariant_violation _ -> "invariant-violation"
  | Els.Els_error.Budget_exhausted _ -> "budget-exhausted"
  | Els.Els_error.Overloaded _ -> "overloaded"

let error_fields = function
  | Els.Els_error.Overloaded { depth; shed_policy } ->
    [ ("depth", Obs.Json.Int depth);
      ("shed_policy", Obs.Json.String shed_policy) ]
  | Els.Els_error.Budget_exhausted { site; resource; _ } ->
    [ ("resource", Obs.Json.String (Rel.Budget.resource_name resource));
      ("site", Obs.Json.String site) ]
  | Els.Els_error.Parse_error { position; _ } ->
    [ ("position", Obs.Json.Int position) ]
  | Els.Els_error.Missing_stats _ | Els.Els_error.Corrupt_stats _
  | Els.Els_error.Invalid_query _ | Els.Els_error.Invariant_violation _ -> []

let response_error ~id ?(extra = []) err =
  Obs.Json.Obj
    [
      ("id", json_id id);
      ("ok", Obs.Json.Bool false);
      ( "error",
        Obs.Json.Obj
          (( ("kind", Obs.Json.String (error_kind err))
           :: ("detail", Obs.Json.String (Els.Els_error.to_string err))
           :: error_fields err )
          @ extra) );
    ]

let response_internal ~id exn =
  Obs.Json.Obj
    [
      ("id", json_id id);
      ("ok", Obs.Json.Bool false);
      ( "error",
        Obs.Json.Obj
          [
            ("kind", Obs.Json.String "internal");
            ("detail", Obs.Json.String (Printexc.to_string exn));
          ] );
    ]
