(** The estimation service's wire protocol: versioned ndjson frames.

    One request per line, one JSON object per request; one response line
    per request, echoing the request's [id] so responses may be written
    out of order by concurrent workers. The protocol is versioned through
    the [v] field (current version {!version}); a frame claiming any
    other version is refused with a structured error, never guessed at.

    Requests:
    {v
    {"v":1, "id":"r1", "op":"estimate", "sql":"SELECT ...",
     "estimator":"ls", "order":["s","m"], "deadline_ms":50}
    {"v":1, "id":"r2", "op":"explain", "sql":"...", "enumerator":"greedy"}
    {"v":1, "id":"r3", "op":"run", "sql":"...", "row_budget":10000}
    {"v":1, "id":"r4", "op":"analyze", "table":"s", "shards":4}
    {"v":1, "id":"r5", "op":"health"}
    {"v":1, "id":"r6", "op":"drain"}
    v}

    Responses are [{"id":..., "ok":true, ...}] or
    [{"id":..., "ok":false, "error":{"kind":..., "detail":...}}]. Every
    refusal — malformed frame, oversized frame, unsupported version,
    unknown op, shed request, tripped budget, internal exception — is a
    structured error response; the server never answers with silence. *)

val version : int
(** The protocol version this build speaks (1). Frames may omit [v]
    (treated as {!version}) but must not claim a different one. *)

type budget_spec = {
  deadline_ms : float option;
  node_budget : int option;
  row_budget : int option;
}
(** Per-request resource limits, realized as one {!Rel.Budget.t} spanning
    queue wait + optimize + execute. *)

type op =
  | Estimate of {
      sql : string;
      estimator : string option;
      order : string list option;  (** join order; default FROM order *)
    }
  | Explain of {
      sql : string;
      estimator : string option;
      enumerator : string option;  (** dp | greedy | random *)
    }
  | Run of {
      sql : string;
      estimator : string option;
      enumerator : string option;
    }
  | Analyze of {
      table : string option;  (** [None] = every table *)
      shards : int option;  (** >1 exercises partitioned ANALYZE *)
    }
  | Health
  | Drain

type request = { id : string option; op : op; budget : budget_spec }

val op_name : op -> string

val parse :
  ?max_frame_bytes:int ->
  string ->
  (request, string option * Els.Els_error.t) result
(** Parse one frame. Refusals are structured: JSON damage and caps map to
    [Parse_error] (the JSON parser itself is depth- and token-capped, so
    adversarial nesting cannot crash the boundary), a non-object frame,
    an unsupported [v], a missing/unknown [op] (with a did-you-mean hint)
    or an ill-typed field map to [Invalid_query]. The error carries any
    [id] the damaged frame managed to state, so the refusal can echo it.
    Never raises. *)

(** {1 Responses} *)

val response_ok :
  id:string option -> op:string -> (string * Obs.Json.t) list -> Obs.Json.t
(** [{"id":id, "ok":true, "op":op, ...fields}]. *)

val response_error :
  id:string option ->
  ?extra:(string * Obs.Json.t) list ->
  Els.Els_error.t ->
  Obs.Json.t
(** [{"id":id, "ok":false, "error":{"kind":..., "detail":..., ...}}].
    [Overloaded] carries [depth]/[shed_policy], [Budget_exhausted] carries
    [resource]/[site], [Parse_error] carries [position]. [extra] fields
    (e.g. the anytime-ladder provenance of a budget-tripped run) join the
    error object. *)

val response_internal : id:string option -> exn -> Obs.Json.t
(** The per-request exception firewall's answer: kind ["internal"], the
    exception printed, the request id echoed. *)

val error_kind : Els.Els_error.t -> string
(** ["missing-stats"], ["corrupt-stats"], ["invalid-query"],
    ["parse-error"], ["invariant-violation"], ["budget-exhausted"] or
    ["overloaded"] — the stable [error.kind] strings. *)
