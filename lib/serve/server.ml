(* The estimation service core. See server.mli for the topology and the
   robustness contract; the short version is that every frame read from a
   client ends in exactly one structured response (or a counted
   disconnect), no matter what the frame, the catalog or the workers do. *)

type config = {
  domains : int;
  queue_depth : int;
  default_deadline_ms : float option;
  max_frame_bytes : int;
  drain_deadline_ms : float;
  epoch_retries : int;
  retry_backoff_ms : float;
  clock : (unit -> float) option;
}

let default_config =
  {
    domains = 2;
    queue_depth = 64;
    default_deadline_ms = None;
    max_frame_bytes = 1_048_576;
    drain_deadline_ms = 5_000.;
    epoch_retries = 2;
    retry_backoff_ms = 1.;
    clock = None;
  }

type session_stats = {
  frames : int;
  admitted : int;
  answered_ok : int;
  answered_error : int;
  shed : int;
  malformed : int;
  internal_errors : int;
  budget_trips : int;
  epoch_retries : int;
  disconnected : bool;
  drained : bool;
  drain_timed_out : bool;
  max_epoch : int;
}

type t = {
  cfg : config;
  db : Catalog.Db.t;
  catalog_store : Catalog.Store.t;
  store_mu : Mutex.t;
  reg : Obs.Metrics.t;
  stats_mu : Mutex.t;
  latencies : float list ref;  (* ms, newest first; drained at flush *)
  stopping : bool Atomic.t;
}

let create ?(config = default_config) ?metrics ?strictness db =
  if config.domains < 1 then invalid_arg "Serve.Server.create: domains < 1";
  if config.queue_depth < 1 then
    invalid_arg "Serve.Server.create: queue_depth < 1";
  (* A dead client must surface as an error on write, not kill the
     process. *)
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  {
    cfg = config;
    db;
    catalog_store = Catalog.Store.create ?strictness db;
    store_mu = Mutex.create ();
    reg = (match metrics with Some m -> m | None -> Obs.Metrics.create ());
    stats_mu = Mutex.create ();
    latencies = ref [];
    stopping = Atomic.make false;
  }

let config t = t.cfg
let store t = t.catalog_store
let db t = t.db
let metrics t = t.reg
let request_stop t = Atomic.set t.stopping true

let locked t f =
  Mutex.lock t.store_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.store_mu)
    (fun () -> f t.catalog_store)

(* Obs.Metrics is not thread-safe; every touch goes through stats_mu. *)
let with_stats t f =
  Mutex.lock t.stats_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.stats_mu) f

let count ?(by = 1) t name =
  with_stats t (fun () -> Obs.Metrics.incr ~by (Obs.Metrics.counter t.reg name))

let observe_latency t ms =
  with_stats t (fun () ->
      Obs.Metrics.observe (Obs.Metrics.histogram t.reg "serve.latency_ms") ms;
      t.latencies := ms :: !(t.latencies))

(* Nearest-rank quantile over the flush window. *)
let quantile sorted q =
  match Array.length sorted with
  | 0 -> Float.nan
  | n -> sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

let flush_metrics t =
  with_stats t (fun () ->
      let m = t.reg in
      (match !(t.latencies) with
      | [] -> ()
      | ls ->
        t.latencies := [];
        let sorted = Array.of_list ls in
        Array.sort Float.compare sorted;
        Obs.Metrics.set
          (Obs.Metrics.gauge m "serve.latency_p50_ms")
          (quantile sorted 0.50);
        Obs.Metrics.set
          (Obs.Metrics.gauge m "serve.latency_p99_ms")
          (quantile sorted 0.99));
      (* Absorb the store's own monotone totals under the same names the
         churn harness publishes, so one check-metrics schema covers
         both. *)
      let s = Catalog.Store.stats t.catalog_store in
      let set name v = Obs.Metrics.set_counter (Obs.Metrics.counter m name) v in
      set "store.publishes" s.Catalog.Store.publishes;
      set "store.audits_failed" s.Catalog.Store.audits_failed;
      set "store.quarantines" s.Catalog.Store.quarantines;
      set "store.stale_served" s.Catalog.Store.stale_served;
      set "store.retries" s.Catalog.Store.retries;
      set "store.hard_fallbacks" s.Catalog.Store.hard_fallbacks;
      Obs.Metrics.set
        (Obs.Metrics.gauge m "store.quarantined_now")
        (float_of_int s.Catalog.Store.quarantined_now);
      Obs.Metrics.set
        (Obs.Metrics.gauge m "serve.epoch")
        (float_of_int s.Catalog.Store.epoch))

(* --- bounded frame reader --- *)

(* Reads one newline-terminated frame, refusing to buffer more than
   [max_bytes]: an oversized line is consumed (and discarded) up to the
   next newline so the stream resynchronizes, and the refusal is
   structured. A final unterminated line still counts as a frame — a
   truncated frame is exactly the kind of damage the protocol must
   answer, not hang on. *)
type frame = Eof | Frame of string | Oversized of int

let read_frame ic ~max_bytes =
  let buf = Buffer.create 256 in
  let rec discard n =
    match input_char ic with
    | '\n' -> Oversized n
    | _ -> discard (n + 1)
    | exception End_of_file -> Oversized n
    | exception Sys_error _ -> Oversized n
  in
  let rec go () =
    match input_char ic with
    | '\n' -> Frame (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max_bytes then discard (Buffer.length buf + 1)
      else begin
        Buffer.add_char buf c;
        go ()
      end
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Frame (Buffer.contents buf)
    | exception Sys_error _ ->
      (* Connection reset mid-frame: treat as EOF, the session drains. *)
      Eof
  in
  go ()

(* --- session state --- *)

type job = {
  request : Protocol.request;
  budget : Rel.Budget.t option;
  admitted_at : float;
}

type session_state = {
  server : t;
  queue : job Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable finished : bool;  (* under mu: EOF reached, workers may exit *)
  draining : bool Atomic.t;
  in_flight : int Atomic.t;
  out : out_channel;
  out_mu : Mutex.t;
  out_dead : bool ref;  (* under out_mu *)
  s_frames : int Atomic.t;
  s_admitted : int Atomic.t;
  s_ok : int Atomic.t;
  s_error : int Atomic.t;
  s_shed : int Atomic.t;
  s_malformed : int Atomic.t;
  s_internal : int Atomic.t;
  s_budget_trips : int Atomic.t;
  s_epoch_retries : int Atomic.t;
  s_drained : bool Atomic.t;
  s_drain_timed_out : bool Atomic.t;
  s_max_epoch : int Atomic.t;
}

let atomic_max a v =
  let rec go () =
    let c = Atomic.get a in
    if v > c && not (Atomic.compare_and_set a c v) then go ()
  in
  go ()

let write_response ss json =
  let line = Obs.Json.to_string json in
  Mutex.lock ss.out_mu;
  (if not !(ss.out_dead) then
     try
       output_string ss.out line;
       output_char ss.out '\n';
       flush ss.out
     with Sys_error _ ->
       (* The client's read side is gone. Remember it (every later write
          would fail the same way) and keep serving: a dead connection is
          a counted event, not a crash. *)
       ss.out_dead := true;
       count ss.server "serve.disconnects");
  Mutex.unlock ss.out_mu

let answer ss ~ok json =
  if ok then begin
    Atomic.incr ss.s_ok;
    count ss.server "serve.answered_ok"
  end
  else begin
    Atomic.incr ss.s_error;
    count ss.server "serve.answered_error"
  end;
  write_response ss json

let answer_error ss ~id ?extra err =
  (match err with
  | Els.Els_error.Budget_exhausted _ ->
    Atomic.incr ss.s_budget_trips;
    count ss.server "serve.budget_trips"
  | _ -> ());
  answer ss ~ok:false (Protocol.response_error ~id ?extra err)

(* --- request handlers ---

   Handlers return [((op, fields), Els_error.t * extra) result]: errors
   carry extra response fields (e.g. the anytime-ladder provenance of a
   budget-tripped run) alongside the taxonomy value. *)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error (e, [])

let invalid detail = Error (Els.Els_error.Invalid_query { detail })

let resolve_config estimator =
  match estimator with
  | None -> Ok Els.Config.els
  | Some name -> begin
    match Els.Estimator.of_string name with
    | Ok e -> Ok (Els.Config.of_estimator e)
    | Error msg -> invalid msg
  end

let enumerator_names = [ "dp"; "greedy"; "random" ]

let resolve_enumerator = function
  | None -> Ok Optimizer.Exhaustive
  | Some name -> begin
    match String.lowercase_ascii name with
    | "dp" -> Ok Optimizer.Exhaustive
    | "greedy" -> Ok Optimizer.Greedy_order
    | "random" -> Ok (Optimizer.Randomized 1)
    | other ->
      invalid
        (Printf.sprintf "unknown enumerator %S%s" other
           (Catalog.Suggest.hint ~candidates:enumerator_names other))
  end

let check_budget ~site budget =
  match budget with
  | None -> Ok ()
  | Some b -> begin
    match Rel.Budget.check b with
    | Ok () -> Ok ()
    | Error resource ->
      Error
        (Els.Els_error.Budget_exhausted
           { site; resource; detail = "request deadline passed" })
  end

(* Re-pin when the pinned epoch quarantines one of the query's tables:
   the publish ladder heals quarantines on the next clean re-ANALYZE, so
   a short exponential backoff can land on a fresh epoch — bounded by
   [epoch_retries]. Always returns an epoch: after the last retry the
   stale-but-sane statistics are served with the staleness disclosed. *)
let pin_with_retry ss epoch0 tables =
  let t = ss.server in
  let stale epoch =
    List.concat_map
      (fun table ->
        List.map
          (fun note -> (table, note))
          (Catalog.Epoch.annotations_for epoch table))
      tables
  in
  let rec go attempt epoch =
    match stale epoch with
    | [] -> (epoch, [])
    | notes when attempt >= t.cfg.epoch_retries -> (epoch, notes)
    | _ ->
      Atomic.incr ss.s_epoch_retries;
      count t "serve.epoch_retries";
      Unix.sleepf
        (t.cfg.retry_backoff_ms *. (2. ** float_of_int attempt) /. 1000.);
      go (attempt + 1) (locked t Catalog.Store.pin)
  in
  let epoch, notes = go 0 epoch0 in
  atomic_max ss.s_max_epoch (Catalog.Epoch.id epoch);
  (epoch, notes)

let json_of_sizes sizes =
  Obs.Json.List (List.map (fun s -> Obs.Json.Float s) sizes)

let json_of_strings l = Obs.Json.List (List.map (fun s -> Obs.Json.String s) l)

let stale_fields = function
  | [] -> []
  | notes ->
    [
      ( "stale",
        Obs.Json.List
          (List.map
             (fun (table, note) ->
               Obs.Json.Obj
                 [
                   ("table", Obs.Json.String table);
                   ("note", Obs.Json.String note);
                 ])
             notes) );
    ]

let provenance_fields (p : Optimizer.Provenance.t) =
  [
    ("rung", Obs.Json.String (Optimizer.Provenance.rung_name p.rung));
    ("expansions", Obs.Json.Int p.expansions);
    ( "exhausted",
      match p.exhausted with
      | None -> Obs.Json.Null
      | Some r -> Obs.Json.String (Rel.Budget.resource_name r) );
  ]

let counters_fields (c : Exec.Counters.t) =
  [
    ("tuples_read", Obs.Json.Int c.Exec.Counters.tuples_read);
    ("comparisons", Obs.Json.Int c.Exec.Counters.comparisons);
    ("tuples_output", Obs.Json.Int c.Exec.Counters.tuples_output);
    ("work", Obs.Json.Int (Exec.Counters.total_work c));
  ]

let query_tables query = List.map (Query.source query) query.Query.tables

let handle_estimate ss ~budget ~sql ~estimator ~order =
  let t = ss.server in
  let* () = check_budget ~site:"serve.estimate" budget in
  let* config = resolve_config estimator in
  (* Estimate against a pinned snapshot: this request's numbers cannot be
     torn by a concurrent publish. Binding reads only schema, which no
     publish changes, so the bound query survives a re-pin. *)
  let epoch0 = locked t Catalog.Store.pin in
  let* query = Sqlfront.Binder.compile_result (Catalog.Epoch.db epoch0) sql in
  let epoch, stale = pin_with_retry ss epoch0 (query_tables query) in
  let edb = Catalog.Epoch.db epoch in
  let* order =
    match order with
    | None -> Ok query.Query.tables
    | Some order ->
      let order = List.map String.lowercase_ascii order in
      let norm l = List.sort String.compare l in
      if norm order = norm query.Query.tables then Ok order
      else invalid "order must be a permutation of the query's tables"
  in
  let* sizes = Els.intermediate_sizes_result config edb query order in
  let* estimate = Els.estimate_result config edb query order in
  let* () = check_budget ~site:"serve.estimate" budget in
  Ok
    ( "estimate",
      [
        ("estimate", Obs.Json.Float estimate);
        ("sizes", json_of_sizes sizes);
        ("order", json_of_strings order);
        ("epoch", Obs.Json.Int (Catalog.Epoch.id epoch));
      ]
      @ stale_fields stale )

let handle_explain ss ~budget ~sql ~estimator ~enumerator =
  let t = ss.server in
  let* () = check_budget ~site:"serve.explain" budget in
  let* config = resolve_config estimator in
  let* enumerator = resolve_enumerator enumerator in
  let epoch0 = locked t Catalog.Store.pin in
  let* query = Sqlfront.Binder.compile_result (Catalog.Epoch.db epoch0) sql in
  let epoch, stale = pin_with_retry ss epoch0 (query_tables query) in
  let edb = Catalog.Epoch.db epoch in
  match Optimizer.choose ~enumerator ?budget config edb query with
  | exception Els.Els_error.Error e -> Error (e, [])
  | choice ->
    Ok
      ( "explain",
        [
          ("algorithm", Obs.Json.String choice.Optimizer.algorithm);
          ("join_order", json_of_strings choice.Optimizer.join_order);
          ("estimates", json_of_sizes choice.Optimizer.intermediate_estimates);
          ("cost", Obs.Json.Float choice.Optimizer.estimated_cost);
          ("epoch", Obs.Json.Int (Catalog.Epoch.id epoch));
        ]
        @ provenance_fields choice.Optimizer.provenance
        @ stale_fields stale )

let handle_run ss ~budget ~sql ~estimator ~enumerator =
  let t = ss.server in
  let* () = check_budget ~site:"serve.run" budget in
  let* config = resolve_config estimator in
  let* enumerator = resolve_enumerator enumerator in
  (* Execution reads the live relations, so it serializes with catalog
     churn (insert/delete/reanalyze/publish) under the catalog lock; the
     estimate/explain hot path never waits here beyond the epoch pin. *)
  locked t @@ fun _store ->
  let* query = Sqlfront.Binder.compile_result t.db sql in
  match Optimizer.choose ~enumerator ?budget config t.db query with
  | exception Els.Els_error.Error e -> Error (e, [])
  | choice -> begin
    let provenance = provenance_fields choice.Optimizer.provenance in
    match Exec.Executor.count_result ?budget t.db choice.Optimizer.plan with
    | Ok rows, counters, elapsed_s ->
      Ok
        ( "run",
          [
            ("join_order", json_of_strings choice.Optimizer.join_order);
            ("estimates", json_of_sizes choice.Optimizer.intermediate_estimates);
            ("rows", Obs.Json.Int rows);
            ("elapsed_ms", Obs.Json.Float (elapsed_s *. 1000.));
          ]
          @ counters_fields counters @ provenance )
    | Error e, counters, _ ->
      (* The budget tripped mid-execution: a structured refusal that
         still discloses the anytime rung that planned the run and the
         partial work performed. *)
      Error (e, provenance @ counters_fields counters)
  end

let handle_analyze ss ~budget ~table ~shards =
  let t = ss.server in
  let* () = check_budget ~site:"serve.analyze" budget in
  locked t @@ fun store ->
  let* tables =
    match table with
    | Some name ->
      let name = String.lowercase_ascii name in
      if Catalog.Db.mem t.db name then Ok [ name ]
      else Error (Els.Els_error.Missing_stats { table = name; column = None })
    | None ->
      Ok (List.map (fun tbl -> tbl.Catalog.Table.name) (Catalog.Db.tables t.db))
  in
  List.iter (fun table -> Catalog.Store.reanalyze ?shards store ~table) tables;
  match Catalog.Store.publish store with
  | Error issue -> Error (Els.Els_error.of_issue issue, [])
  | Ok epoch ->
    atomic_max ss.s_max_epoch (Catalog.Epoch.id epoch);
    let s = Catalog.Store.stats store in
    (* Disclose how many columns of the published epoch carry degree
       sequences, so clients know whether lp2/degseq/ent will read real
       statistics or degrade to min-rows. *)
    let degree_columns =
      List.fold_left
        (fun acc tbl ->
          List.fold_left
            (fun acc (_, cs) ->
              if cs.Stats.Col_stats.degree <> None then acc + 1 else acc)
            acc tbl.Catalog.Table.column_stats)
        0
        (Catalog.Db.tables (Catalog.Epoch.db epoch))
    in
    Ok
      ( "analyze",
        [
          ("epoch", Obs.Json.Int (Catalog.Epoch.id epoch));
          ("tables", json_of_strings tables);
          ("degree_columns", Obs.Json.Int degree_columns);
          ("quarantined_now", Obs.Json.Int s.Catalog.Store.quarantined_now);
          ("audits_failed", Obs.Json.Int s.Catalog.Store.audits_failed);
          ("stale_served", Obs.Json.Int s.Catalog.Store.stale_served);
        ] )

let queue_depth_now ss =
  Mutex.lock ss.mu;
  let d = Queue.length ss.queue in
  Mutex.unlock ss.mu;
  d

let health_fields ss =
  let t = ss.server in
  let epoch = locked t Catalog.Store.pin in
  atomic_max ss.s_max_epoch (Catalog.Epoch.id epoch);
  [
    ("epoch", Obs.Json.Int (Catalog.Epoch.id epoch));
    ("queue_depth", Obs.Json.Int (queue_depth_now ss));
    ("domains", Obs.Json.Int t.cfg.domains);
    ("draining", Obs.Json.Bool (Atomic.get ss.draining));
  ]

let session_counter_fields ss =
  [
    ("frames", Obs.Json.Int (Atomic.get ss.s_frames));
    ("admitted", Obs.Json.Int (Atomic.get ss.s_admitted));
    ("answered_ok", Obs.Json.Int (Atomic.get ss.s_ok));
    ("answered_error", Obs.Json.Int (Atomic.get ss.s_error));
    ("shed", Obs.Json.Int (Atomic.get ss.s_shed));
    ("malformed", Obs.Json.Int (Atomic.get ss.s_malformed));
    ("internal_errors", Obs.Json.Int (Atomic.get ss.s_internal));
    ("budget_trips", Obs.Json.Int (Atomic.get ss.s_budget_trips));
    ("epoch_retries", Obs.Json.Int (Atomic.get ss.s_epoch_retries));
    ("max_epoch", Obs.Json.Int (Atomic.get ss.s_max_epoch));
  ]

(* --- worker side --- *)

let dispatch ss (job : job) =
  let budget = job.budget in
  match job.request.Protocol.op with
  | Protocol.Estimate { sql; estimator; order } ->
    handle_estimate ss ~budget ~sql ~estimator ~order
  | Protocol.Explain { sql; estimator; enumerator } ->
    handle_explain ss ~budget ~sql ~estimator ~enumerator
  | Protocol.Run { sql; estimator; enumerator } ->
    handle_run ss ~budget ~sql ~estimator ~enumerator
  | Protocol.Analyze { table; shards } ->
    handle_analyze ss ~budget ~table ~shards
  | Protocol.Health -> Ok ("health", health_fields ss)
  | Protocol.Drain ->
    (* Drain is handled inline by the reader; one that somehow reaches a
       worker is acknowledged as a no-op. *)
    Ok ("drain", session_counter_fields ss)

let handle_job ss (job : job) =
  let id = job.request.Protocol.id in
  (* A request whose deadline passed while queued is answered without
     doing any work — the budget spans queue wait by construction. *)
  let outcome =
    match check_budget ~site:"serve.queue" job.budget with
    | Error e -> Error (e, [])
    | Ok () -> begin
      (* Per-request exception firewall: any raise below becomes a
         structured response; the worker and the server survive. *)
      match dispatch ss job with
      | result -> result
      | exception Els.Els_error.Error e -> Error (e, [])
      | exception Rel.Budget.Exhausted resource ->
        Error
          ( Els.Els_error.Budget_exhausted
              {
                site = "serve.worker";
                resource;
                detail = "budget exhausted mid-request";
              },
            [] )
      | exception exn ->
        Atomic.incr ss.s_internal;
        count ss.server "serve.internal_errors";
        Error
          ( Els.Els_error.Invariant_violation
              { site = "serve.worker"; detail = Printexc.to_string exn },
            [] )
    end
  in
  (match outcome with
  | Ok (op, fields) -> answer ss ~ok:true (Protocol.response_ok ~id ~op fields)
  | Error (e, extra) -> answer_error ss ~id ~extra e);
  let clock =
    match ss.server.cfg.clock with Some c -> c | None -> Unix.gettimeofday
  in
  observe_latency ss.server ((clock () -. job.admitted_at) *. 1000.)

let worker_loop ss =
  let rec go () =
    Mutex.lock ss.mu;
    while Queue.is_empty ss.queue && not ss.finished do
      Condition.wait ss.nonempty ss.mu
    done;
    match Queue.take_opt ss.queue with
    | None ->
      (* finished && empty *)
      Mutex.unlock ss.mu
    | Some job ->
      Atomic.incr ss.in_flight;
      Mutex.unlock ss.mu;
      handle_job ss job;
      Atomic.decr ss.in_flight;
      go ()
  in
  go ()

(* --- reader side --- *)

let make_budget ss (spec : Protocol.budget_spec) =
  let cfg = ss.server.cfg in
  let deadline_ms =
    match spec.Protocol.deadline_ms with
    | Some _ as d -> d
    | None -> cfg.default_deadline_ms
  in
  match (deadline_ms, spec.Protocol.node_budget, spec.Protocol.row_budget) with
  | None, None, None -> None
  | _ ->
    Some
      (Rel.Budget.create ?clock:cfg.clock ?deadline_ms
         ?node_budget:spec.Protocol.node_budget
         ?row_budget:spec.Protocol.row_budget ())

let shed ss ~id ~depth ~policy =
  Atomic.incr ss.s_shed;
  count ss.server "serve.shed";
  answer_error ss ~id (Els.Els_error.Overloaded { depth; shed_policy = policy })

let admit ss (request : Protocol.request) =
  let id = request.Protocol.id in
  if Atomic.get ss.draining || Atomic.get ss.server.stopping then
    shed ss ~id ~depth:(queue_depth_now ss) ~policy:"draining"
  else begin
    let clock =
      match ss.server.cfg.clock with Some c -> c | None -> Unix.gettimeofday
    in
    (* The budget is created at admission, so queue wait counts against
       the request's deadline. *)
    let job =
      {
        request;
        budget = make_budget ss request.Protocol.budget;
        admitted_at = clock ();
      }
    in
    Mutex.lock ss.mu;
    if Queue.length ss.queue >= ss.server.cfg.queue_depth then begin
      let depth = Queue.length ss.queue in
      Mutex.unlock ss.mu;
      shed ss ~id ~depth ~policy:"reject-newest"
    end
    else begin
      Queue.add job ss.queue;
      Condition.signal ss.nonempty;
      Mutex.unlock ss.mu;
      Atomic.incr ss.s_admitted;
      count ss.server "serve.admitted"
    end
  end

(* Stop admission, wait (bounded) for queued + in-flight work, answer the
   drain with the session's counters. Runs on the reader thread so a
   single-domain session cannot deadlock behind its own drain. *)
let drain ss ~id =
  Atomic.set ss.draining true;
  count ss.server "serve.drains";
  let deadline =
    Unix.gettimeofday () +. (ss.server.cfg.drain_deadline_ms /. 1000.)
  in
  let rec wait () =
    (* A worker moves a job from the queue into in_flight while holding
       [mu], so probing both under [mu] cannot miss the handoff. *)
    let busy =
      Mutex.lock ss.mu;
      let b = (not (Queue.is_empty ss.queue)) || Atomic.get ss.in_flight > 0 in
      Mutex.unlock ss.mu;
      b
    in
    if not busy then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.001;
      wait ()
    end
  in
  let completed = wait () in
  if not completed then begin
    Atomic.set ss.s_drain_timed_out true;
    count ss.server "serve.drain_timeouts"
  end;
  Atomic.set ss.s_drained true;
  answer ss ~ok:true
    (Protocol.response_ok ~id ~op:"drain"
       (("completed", Obs.Json.Bool completed) :: session_counter_fields ss))

let session t ic oc =
  let ss =
    {
      server = t;
      queue = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      finished = false;
      draining = Atomic.make false;
      in_flight = Atomic.make 0;
      out = oc;
      out_mu = Mutex.create ();
      out_dead = ref false;
      s_frames = Atomic.make 0;
      s_admitted = Atomic.make 0;
      s_ok = Atomic.make 0;
      s_error = Atomic.make 0;
      s_shed = Atomic.make 0;
      s_malformed = Atomic.make 0;
      s_internal = Atomic.make 0;
      s_budget_trips = Atomic.make 0;
      s_epoch_retries = Atomic.make 0;
      s_drained = Atomic.make false;
      s_drain_timed_out = Atomic.make false;
      s_max_epoch = Atomic.make 0;
    }
  in
  let workers =
    List.init t.cfg.domains (fun _ -> Domain.spawn (fun () -> worker_loop ss))
  in
  let malformed ~id err =
    Atomic.incr ss.s_malformed;
    count t "serve.malformed";
    answer_error ss ~id err
  in
  let rec read_loop () =
    match read_frame ic ~max_bytes:t.cfg.max_frame_bytes with
    | Eof -> ()
    | Oversized n ->
      Atomic.incr ss.s_frames;
      count t "serve.frames";
      malformed ~id:None
        (Els.Els_error.Parse_error
           {
             position = t.cfg.max_frame_bytes;
             detail =
               Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                 t.cfg.max_frame_bytes;
           });
      read_loop ()
    | Frame line ->
      Atomic.incr ss.s_frames;
      count t "serve.frames";
      (if String.trim line = "" then ()
       else
         match Protocol.parse ~max_frame_bytes:t.cfg.max_frame_bytes line with
         | Error (id, err) -> malformed ~id err
         | Ok request -> begin
           match request.Protocol.op with
           | Protocol.Health ->
             (* Answered inline so liveness probes work even when the
                queue is full or the session is draining. *)
             answer ss ~ok:true
               (Protocol.response_ok ~id:request.Protocol.id ~op:"health"
                  (health_fields ss))
           | Protocol.Drain -> drain ss ~id:request.Protocol.id
           | _ -> admit ss request
         end);
      read_loop ()
  in
  read_loop ();
  (* EOF is an implicit drain: workers finish whatever is queued, then
     exit. *)
  Mutex.lock ss.mu;
  ss.finished <- true;
  Condition.broadcast ss.nonempty;
  Mutex.unlock ss.mu;
  List.iter Domain.join workers;
  flush_metrics t;
  {
    frames = Atomic.get ss.s_frames;
    admitted = Atomic.get ss.s_admitted;
    answered_ok = Atomic.get ss.s_ok;
    answered_error = Atomic.get ss.s_error;
    shed = Atomic.get ss.s_shed;
    malformed = Atomic.get ss.s_malformed;
    internal_errors = Atomic.get ss.s_internal;
    budget_trips = Atomic.get ss.s_budget_trips;
    epoch_retries = Atomic.get ss.s_epoch_retries;
    disconnected = !(ss.out_dead);
    drained = Atomic.get ss.s_drained;
    drain_timed_out = Atomic.get ss.s_drain_timed_out;
    max_epoch = Atomic.get ss.s_max_epoch;
  }

(* --- socket front --- *)

let serve_socket t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let threads = ref [] in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads;
      try Unix.unlink path with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  while not (Atomic.get t.stopping) do
    (* Poll so request_stop (the SIGTERM hook) is honored promptly. *)
    match Unix.select [ sock ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ ->
      let conn, _ = Unix.accept sock in
      let th =
        Thread.create
          (fun conn ->
            let ic = Unix.in_channel_of_descr conn in
            let oc = Unix.out_channel_of_descr conn in
            (try ignore (session t ic oc) with _ -> ());
            try Unix.close conn with Unix.Unix_error _ -> ())
          conn
      in
      threads := th :: !threads
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done
