(** The long-running estimation service: multicore workers over an
    immutable catalog epoch, behind admission control.

    A {!t} owns a live catalog wrapped in a versioned {!Catalog.Store}
    plus the service-wide metrics registry; {!session} runs one ndjson
    protocol session ({!Protocol}) over a channel pair — stdin/stdout for
    [elsdb serve], a connection for {!serve_socket}, a pipe pair for the
    chaos harness and the tests, which drive {e this exact loop}.

    Topology: the session thread reads, parses and {e admits} frames into
    a bounded queue; [config.domains] OCaml 5 [Domain] workers pull
    admitted jobs, estimate against an atomically-pinned
    {!Catalog.Epoch} snapshot, and write responses (interleaved safely,
    correlated by request id). Robustness contract:

    - {e admission control}: a full queue sheds the newest request with a
      structured [Overloaded {depth; shed_policy}] response — never a
      silent drop; [health] is answered inline even under full load;
    - {e deadlines}: each request gets one {!Rel.Budget} covering queue
      wait + optimize + execute, so a slow request degrades down the
      anytime ladder (rung disclosed in the response) instead of wedging
      a worker, and a request whose deadline passes while queued is
      answered [budget-exhausted] without doing work;
    - {e crash isolation}: every raise inside a worker — parse damage,
      corrupt catalog, invariant trip — becomes a structured error
      response echoing the request id; the server loop never dies, and a
      dead client connection is recorded, not fatal;
    - {e epoch visibility}: workers pin the store's current epoch per
      request; ids only grow, and requests that see a quarantined table
      retry the pin with exponential backoff (bounded by
      [config.epoch_retries] and the request deadline) before serving
      stale-but-sane statistics with the staleness disclosed;
    - {e graceful drain}: a [drain] frame (or EOF, or {!request_stop})
      stops admission, finishes in-flight work under
      [config.drain_deadline_ms], answers the drain with the session's
      counters, and flushes latency/shed/drain metrics. *)

type config = {
  domains : int;  (** worker domains per session (>= 1) *)
  queue_depth : int;  (** bounded admission queue (>= 1) *)
  default_deadline_ms : float option;
      (** deadline applied to requests that do not carry one *)
  max_frame_bytes : int;  (** frames longer than this are refused *)
  drain_deadline_ms : float;  (** how long a drain waits for in-flight work *)
  epoch_retries : int;
      (** re-pin attempts when the pinned epoch quarantines a query table *)
  retry_backoff_ms : float;  (** base backoff between re-pins (doubles) *)
  clock : (unit -> float) option;
      (** budget clock (seconds); [None] = wall clock. Injectable so tests
          can trip deadlines deterministically. *)
}

val default_config : config
(** 2 domains, depth-64 queue, no default deadline, 1 MiB frames, 5 s
    drain deadline, 2 epoch retries from 1 ms backoff, wall clock. *)

type session_stats = {
  frames : int;  (** frames read, including damaged ones *)
  admitted : int;  (** requests that entered the queue *)
  answered_ok : int;
  answered_error : int;  (** structured failures, malformed and shed included *)
  shed : int;  (** overload + draining rejections *)
  malformed : int;  (** frames that failed protocol parse *)
  internal_errors : int;  (** exception-firewall catches *)
  budget_trips : int;  (** requests answered [budget-exhausted] *)
  epoch_retries : int;  (** quarantine-triggered re-pins *)
  disconnected : bool;  (** the client's read side died mid-session *)
  drained : bool;  (** an explicit [drain] op completed *)
  drain_timed_out : bool;  (** drain gave up waiting for in-flight work *)
  max_epoch : int;  (** largest epoch id served during the session *)
}

type t

val create :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?strictness:Catalog.Validate.strictness ->
  Catalog.Db.t ->
  t
(** Wrap a live catalog: builds the versioned {!Catalog.Store} (epoch 0
    adopts the existing statistics) and the metrics registry. The catalog
    must hold stored relations (the [run] and [analyze] ops need live
    data). [strictness] governs the store's publish ladder (default
    [Repair]). *)

val config : t -> config
val store : t -> Catalog.Store.t
val db : t -> Catalog.Db.t
val metrics : t -> Obs.Metrics.t

val locked : t -> (Catalog.Store.t -> 'a) -> 'a
(** Run [f] holding the server's catalog lock — the same lock the
    [analyze] and [run] handlers take, so external churn (the chaos
    harness streaming deltas and publishing epochs mid-session) is
    serialized with them. Estimate/explain workers do not take it beyond
    the epoch pin: they read only immutable snapshots. *)

val session : t -> in_channel -> out_channel -> session_stats
(** Run one protocol session to completion: reads frames until EOF (or a
    completed drain followed by EOF), spawns the worker domains, and
    returns after all in-flight work is answered and the session's
    latency quantiles (p50/p99) are flushed to the metrics registry.
    Never raises on protocol or client damage. *)

val request_stop : t -> unit
(** Ask the server to drain: sessions stop admitting (subsequent frames
    are shed with policy ["draining"]) and {!serve_socket} stops
    accepting. Safe from a signal handler — this is the SIGTERM hook. *)

val serve_socket : t -> path:string -> unit
(** Listen on a Unix-domain socket and run one {!session} per accepted
    connection (each on its own thread, all sharing this server's store,
    lock and metrics) until {!request_stop}. Removes [path] on exit.
    @raise Unix.Unix_error when the socket cannot be bound. *)
