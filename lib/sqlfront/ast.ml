type column_ref = {
  qualifier : string option;
  name : string;
}

type operand =
  | Col of column_ref
  | Lit of Rel.Value.t

type bound = {
  base : operand;
  offset : float; (* signed; 0. when no [+ k]/[- k] was written *)
}

type condition =
  | Cmp of {
      lhs : operand;
      op : Rel.Cmp.t;
      rhs : operand;
      op_pos : int; (* byte offset of the comparison operator *)
    }
  | Between of {
      lhs : operand;
      lo : bound;
      hi : bound;
      pos : int; (* byte offset of the BETWEEN keyword *)
    }

type select_item =
  | Sel_star
  | Sel_count_star
  | Sel_columns of column_ref list

type from_item = {
  table : string;
  alias : string option;
}

type query = {
  select : select_item;
  from : from_item list;
  where : condition list;
}

let column_ref_to_string c =
  match c.qualifier with
  | Some q -> q ^ "." ^ c.name
  | None -> c.name

let operand_to_string = function
  | Col c -> column_ref_to_string c
  | Lit v -> Rel.Value.to_string v

let bound_to_string b =
  if b.offset = 0. then operand_to_string b.base
  else if b.offset < 0. then
    Printf.sprintf "%s - %g" (operand_to_string b.base) (-.b.offset)
  else Printf.sprintf "%s + %g" (operand_to_string b.base) b.offset

let condition_to_string = function
  | Cmp { lhs; op; rhs; _ } ->
    Printf.sprintf "%s %s %s" (operand_to_string lhs) (Rel.Cmp.to_string op)
      (operand_to_string rhs)
  | Between { lhs; lo; hi; _ } ->
    Printf.sprintf "%s BETWEEN %s AND %s" (operand_to_string lhs)
      (bound_to_string lo) (bound_to_string hi)

let pp_query ppf q =
  let select =
    match q.select with
    | Sel_star -> "*"
    | Sel_count_star -> "COUNT(*)"
    | Sel_columns cols ->
      String.concat ", " (List.map column_ref_to_string cols)
  in
  let from_to_string f =
    match f.alias with
    | Some a -> f.table ^ " " ^ a
    | None -> f.table
  in
  Format.fprintf ppf "SELECT %s FROM %s" select
    (String.concat ", " (List.map from_to_string q.from));
  match q.where with
  | [] -> ()
  | conds ->
    Format.fprintf ppf " WHERE %s"
      (String.concat " AND " (List.map condition_to_string conds))
