type column_ref = {
  qualifier : string option;
  name : string;
}

type operand =
  | Col of column_ref
  | Lit of Rel.Value.t

type condition = {
  lhs : operand;
  op : Rel.Cmp.t;
  rhs : operand;
}

type select_item =
  | Sel_star
  | Sel_count_star
  | Sel_columns of column_ref list

type from_item = {
  table : string;
  alias : string option;
}

type query = {
  select : select_item;
  from : from_item list;
  where : condition list;
}

let column_ref_to_string c =
  match c.qualifier with
  | Some q -> q ^ "." ^ c.name
  | None -> c.name

let operand_to_string = function
  | Col c -> column_ref_to_string c
  | Lit v -> Rel.Value.to_string v

let pp_query ppf q =
  let select =
    match q.select with
    | Sel_star -> "*"
    | Sel_count_star -> "COUNT(*)"
    | Sel_columns cols ->
      String.concat ", " (List.map column_ref_to_string cols)
  in
  let from_to_string f =
    match f.alias with
    | Some a -> f.table ^ " " ^ a
    | None -> f.table
  in
  Format.fprintf ppf "SELECT %s FROM %s" select
    (String.concat ", " (List.map from_to_string q.from));
  match q.where with
  | [] -> ()
  | conds ->
    let cond_to_string c =
      Printf.sprintf "%s %s %s" (operand_to_string c.lhs)
        (Rel.Cmp.to_string c.op) (operand_to_string c.rhs)
    in
    Format.fprintf ppf " WHERE %s"
      (String.concat " AND " (List.map cond_to_string conds))
