(** Untyped abstract syntax produced by the parser, before name
    resolution. *)

type column_ref = {
  qualifier : string option; (** table qualifier when written [t.c] *)
  name : string;
}

type operand =
  | Col of column_ref
  | Lit of Rel.Value.t

type bound = {
  base : operand;
  offset : float;
      (** signed numeric offset on the bound ([col - 0.5] gives [-0.5]);
          [0.] when no arithmetic was written *)
}

type condition =
  | Cmp of {
      lhs : operand;
      op : Rel.Cmp.t;
      rhs : operand;
      op_pos : int;  (** byte offset of the comparison operator *)
    }
      (** a plain [lhs op rhs] comparison *)
  | Between of {
      lhs : operand;
      lo : bound;
      hi : bound;
      pos : int;  (** byte offset of the BETWEEN keyword *)
    }
      (** [lhs BETWEEN lo AND hi]; bounds may carry [± offset] arithmetic
          on a column base, which the binder recognizes as a band join *)

type select_item =
  | Sel_star
  | Sel_count_star
  | Sel_columns of column_ref list

type from_item = {
  table : string;
  alias : string option; (** [FROM t a] or [FROM t AS a] *)
}

type query = {
  select : select_item;
  from : from_item list;
  where : condition list; (** conjunction; empty for no WHERE *)
}

val condition_to_string : condition -> string
val pp_query : Format.formatter -> query -> unit
