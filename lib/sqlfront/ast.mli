(** Untyped abstract syntax produced by the parser, before name
    resolution. *)

type column_ref = {
  qualifier : string option; (** table qualifier when written [t.c] *)
  name : string;
}

type operand =
  | Col of column_ref
  | Lit of Rel.Value.t

type condition = {
  lhs : operand;
  op : Rel.Cmp.t;
  rhs : operand;
}

type select_item =
  | Sel_star
  | Sel_count_star
  | Sel_columns of column_ref list

type from_item = {
  table : string;
  alias : string option; (** [FROM t a] or [FROM t AS a] *)
}

type query = {
  select : select_item;
  from : from_item list;
  where : condition list; (** conjunction; empty for no WHERE *)
}

val pp_query : Format.formatter -> query -> unit
