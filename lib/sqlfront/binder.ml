exception Bind_error of string

exception
  Bind_pos_error of {
    message : string;
    position : int;
  }

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

let fail_at position fmt =
  Printf.ksprintf
    (fun message -> raise (Bind_pos_error { message; position }))
    fmt

type env = {
  db : Catalog.Db.t;
  from : (string * string) list; (* alias -> lower-cased source table *)
}

let aliases env = List.map fst env.from

let source_of env alias =
  match List.assoc_opt alias env.from with
  | Some source -> source
  | None -> fail "table %s is not in the FROM clause" alias

let catalog_tables env =
  List.map (fun t -> t.Catalog.Table.name) (Catalog.Db.tables env.db)

let columns_of_table (table : Catalog.Table.t) =
  List.map
    (fun c -> c.Rel.Schema.name)
    (Rel.Schema.columns table.Catalog.Table.schema)

let check_tables env =
  List.iter
    (fun (_, source) ->
      if not (Catalog.Db.mem env.db source) then
        fail "unknown table %s%s" source
          (Catalog.Suggest.hint ~candidates:(catalog_tables env) source))
    env.from

let resolve env (cref : Ast.column_ref) =
  let name = String.lowercase_ascii cref.name in
  match cref.qualifier with
  | Some q ->
    let q = String.lowercase_ascii q in
    let table = Catalog.Db.find_exn env.db (source_of env q) in
    if not (Rel.Schema.index_of_name table.Catalog.Table.schema name <> Error `Missing)
    then
      fail "table %s has no column %s%s" q name
        (Catalog.Suggest.hint ~candidates:(columns_of_table table) name);
    Query.Cref.make ~table:q ~column:name
  | None -> begin
    let hits =
      List.filter
        (fun (_, source) ->
          Catalog.Table.has_column (Catalog.Db.find_exn env.db source) name)
        env.from
    in
    match hits with
    | [ (alias, _) ] -> Query.Cref.make ~table:alias ~column:name
    | [] ->
      let candidates =
        List.concat_map
          (fun (_, source) ->
            columns_of_table (Catalog.Db.find_exn env.db source))
          env.from
      in
      fail "unknown column %s%s" name (Catalog.Suggest.hint ~candidates name)
    | _ :: _ :: _ -> fail "ambiguous column %s" name
  end

let column_type env (c : Query.Cref.t) =
  let source = source_of env c.Query.Cref.table in
  let table = Catalog.Db.find_exn env.db source in
  match
    Rel.Schema.index_of table.Catalog.Table.schema ~table:source
      ~name:c.Query.Cref.column
  with
  | Some i -> (Rel.Schema.get table.Catalog.Table.schema i).Rel.Schema.ty
  | None -> fail "internal: resolved column %s vanished"
      (Query.Cref.to_string c)

(* Integer literals compared against float columns are coerced; everything
   else must match the column type exactly. *)
let coerce_const ty v =
  match ty, v with
  | Rel.Value.Ty_float, Rel.Value.Int n -> Rel.Value.Float (float_of_int n)
  | _, _ ->
    if Rel.Value.has_type ty v then v
    else
      fail "constant %s does not match column type %s"
        (Rel.Value.to_string v) (Rel.Value.ty_name ty)

let is_numeric = function
  | Rel.Value.Ty_int | Rel.Value.Ty_float -> true
  | Rel.Value.Ty_string | Rel.Value.Ty_bool -> false

(* Column-to-column comparison: equality joins exactly as before;
   inequalities form comparison joins across tables; [<>] between columns
   is rejected at its operator offset with a did-you-mean hint (no join
   method or estimation rule covers an anti-join key). *)
let bind_col_col env ~op_pos op left right =
  let lty = column_type env left and rty = column_type env right in
  let compatible = lty = rty || (is_numeric lty && is_numeric rty) in
  match op with
  | Rel.Cmp.Eq ->
    if lty <> rty then
      fail "type mismatch in %s = %s" (Query.Cref.to_string left)
        (Query.Cref.to_string right);
    if Query.Cref.equal left right then []
    else [ Query.Predicate.col_eq left right ]
  | Rel.Cmp.Ne ->
    fail_at op_pos
      "<> is not supported between columns (%s <> %s); did you mean =, or \
       a range comparison (<, <=, >, >=, BETWEEN)?"
      (Query.Cref.to_string left)
      (Query.Cref.to_string right)
  | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Gt | Rel.Cmp.Ge ->
    if Query.Cref.equal left right then
      fail "column %s compared with itself" (Query.Cref.to_string left);
    if Query.Cref.same_table left right then
      fail
        "comparison %s %s %s stays inside table %s: only equality is \
         supported between columns of one table"
        (Query.Cref.to_string left) (Rel.Cmp.to_string op)
        (Query.Cref.to_string right) left.Query.Cref.table;
    if not compatible then
      fail "type mismatch in %s %s %s (%s vs %s)"
        (Query.Cref.to_string left) (Rel.Cmp.to_string op)
        (Query.Cref.to_string right) (Rel.Value.ty_name lty)
        (Rel.Value.ty_name rty);
    let comparison =
      match Query.Predicate.comparison_of_cmp op with
      | Some c -> c
      | None -> assert false
    in
    [ Query.Predicate.col_cmp left comparison right ]

(* A BETWEEN whose bounds are the same column shifted by a symmetric
   [± eps] is a band join: [a BETWEEN b - eps AND b + eps] means
   [|a - b| <= eps]. Asymmetric column bounds are rejected — the paper's
   estimation rules (and the band merge driver) only cover centred
   bands. *)
let bind_between env ~pos lhs (lo : Ast.bound) (hi : Ast.bound) =
  match lhs with
  | Ast.Lit v ->
    fail_at pos "BETWEEN needs a column on its left, found constant %s"
      (Rel.Value.to_string v)
  | Ast.Col c -> begin
    let col = resolve env c in
    match lo.Ast.base, hi.Ast.base with
    | Ast.Lit l, Ast.Lit h ->
      (* Constant range: desugar into the usual [>=]/[<=] pair. *)
      let ty = column_type env col in
      [
        Query.Predicate.cmp col Rel.Cmp.Ge (coerce_const ty l);
        Query.Predicate.cmp col Rel.Cmp.Le (coerce_const ty h);
      ]
    | Ast.Col bl, Ast.Col bh ->
      let blo = resolve env bl and bhi = resolve env bh in
      if not (Query.Cref.equal blo bhi) then
        fail_at pos
          "BETWEEN band bounds must shift one column (%s vs %s); write \
           %s BETWEEN col - eps AND col + eps"
          (Query.Cref.to_string blo) (Query.Cref.to_string bhi)
          (Query.Cref.to_string col);
      let eps = hi.Ast.offset in
      if not (eps >= 0. && lo.Ast.offset = -.eps) then
        fail_at pos
          "BETWEEN band must be symmetric: %s - eps AND %s + eps (got \
           offsets %g and %g)"
          (Query.Cref.to_string blo) (Query.Cref.to_string blo)
          lo.Ast.offset eps;
      if Query.Cref.same_table col blo then
        fail
          "band %s BETWEEN %s - %g AND %s + %g stays inside table %s: \
           bands are join predicates"
          (Query.Cref.to_string col) (Query.Cref.to_string blo) eps
          (Query.Cref.to_string blo) eps col.Query.Cref.table;
      let lty = column_type env col and rty = column_type env blo in
      if not (is_numeric lty && is_numeric rty) then
        fail "band join %s BETWEEN %s ± %g needs numeric columns (%s vs %s)"
          (Query.Cref.to_string col) (Query.Cref.to_string blo) eps
          (Rel.Value.ty_name lty) (Rel.Value.ty_name rty);
      [ Query.Predicate.col_cmp col (Query.Predicate.Band eps) blo ]
    | Ast.Lit _, Ast.Col _ | Ast.Col _, Ast.Lit _ ->
      fail_at pos
        "BETWEEN bounds must be both constants or both the same shifted \
         column"
  end

(* Bound predicates to keep; [[]] for a dropped tautology. *)
let bind_condition env (cond : Ast.condition) =
  match cond with
  | Ast.Between { lhs; lo; hi; pos } -> bind_between env ~pos lhs lo hi
  | Ast.Cmp { lhs; op; rhs; op_pos } -> begin
    match lhs, rhs with
    | Ast.Col lc, Ast.Col rc ->
      bind_col_col env ~op_pos op (resolve env lc) (resolve env rc)
    | Ast.Col c, Ast.Lit v ->
      let col = resolve env c in
      let v = coerce_const (column_type env col) v in
      [ Query.Predicate.cmp col op v ]
    | Ast.Lit v, Ast.Col c ->
      let col = resolve env c in
      let v = coerce_const (column_type env col) v in
      [ Query.Predicate.cmp col (Rel.Cmp.flip op) v ]
    | Ast.Lit a, Ast.Lit b ->
      if Rel.Cmp.eval op a b then []
      else
        fail "condition %s %s %s is always false" (Rel.Value.to_string a)
          (Rel.Cmp.to_string op) (Rel.Value.to_string b)
  end

let bind_structured db (ast : Ast.query) =
  match
    let from =
      List.map
        (fun (item : Ast.from_item) ->
          let source = String.lowercase_ascii item.Ast.table in
          let alias =
            match item.Ast.alias with
            | Some a -> String.lowercase_ascii a
            | None -> source
          in
          (alias, source))
        ast.from
    in
    let env = { db; from } in
    if
      List.length (List.sort_uniq compare (aliases env))
      <> List.length (aliases env)
    then fail "duplicate alias in FROM";
    check_tables env;
    let predicates = List.concat_map (bind_condition env) ast.where in
    let projection =
      match ast.select with
      | Ast.Sel_star -> Query.Star
      | Ast.Sel_count_star -> Query.Count_star
      | Ast.Sel_columns cols ->
        Query.Columns (List.map (resolve env) cols)
    in
    Query.make ~projection ~sources:env.from ~tables:(aliases env) predicates
  with
  | q -> Ok q
  | exception Bind_error msg ->
    Error (Els.Els_error.Invalid_query { detail = "bind error: " ^ msg })
  (* Positioned binder refusals ([<>] between columns, asymmetric band
     bounds) surface as [Parse_error] so callers get the byte offset. *)
  | exception Bind_pos_error { message; position } ->
    Error (Els.Els_error.Parse_error { position; detail = message })
  | exception Invalid_argument msg ->
    Error (Els.Els_error.Invalid_query { detail = "bind error: " ^ msg })

let bind db ast =
  match bind_structured db ast with
  | Ok q -> Ok q
  | Error (Els.Els_error.Parse_error { position; detail }) ->
    Error (Printf.sprintf "bind error at offset %d: %s" position detail)
  | Error (Els.Els_error.Invalid_query { detail }) -> Error detail
  | Error e -> Error (Els.Els_error.to_string e)

let compile db input =
  match Parser.parse input with
  | Error _ as e -> e
  | Ok ast -> bind db ast

let compile_result db input =
  match Parser.parse_structured input with
  | Error e ->
    Error
      (Els.Els_error.Parse_error
         { position = e.Parser.position; detail = e.Parser.message })
  | Ok ast -> bind_structured db ast

let compile_exn db input =
  match compile db input with
  | Ok q -> q
  | Error msg -> invalid_arg msg
