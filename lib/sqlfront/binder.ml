exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

type env = {
  db : Catalog.Db.t;
  from : (string * string) list; (* alias -> lower-cased source table *)
}

let aliases env = List.map fst env.from

let source_of env alias =
  match List.assoc_opt alias env.from with
  | Some source -> source
  | None -> fail "table %s is not in the FROM clause" alias

let catalog_tables env =
  List.map (fun t -> t.Catalog.Table.name) (Catalog.Db.tables env.db)

let columns_of_table (table : Catalog.Table.t) =
  List.map
    (fun c -> c.Rel.Schema.name)
    (Rel.Schema.columns table.Catalog.Table.schema)

let check_tables env =
  List.iter
    (fun (_, source) ->
      if not (Catalog.Db.mem env.db source) then
        fail "unknown table %s%s" source
          (Catalog.Suggest.hint ~candidates:(catalog_tables env) source))
    env.from

let resolve env (cref : Ast.column_ref) =
  let name = String.lowercase_ascii cref.name in
  match cref.qualifier with
  | Some q ->
    let q = String.lowercase_ascii q in
    let table = Catalog.Db.find_exn env.db (source_of env q) in
    if not (Rel.Schema.index_of_name table.Catalog.Table.schema name <> Error `Missing)
    then
      fail "table %s has no column %s%s" q name
        (Catalog.Suggest.hint ~candidates:(columns_of_table table) name);
    Query.Cref.make ~table:q ~column:name
  | None -> begin
    let hits =
      List.filter
        (fun (_, source) ->
          Catalog.Table.has_column (Catalog.Db.find_exn env.db source) name)
        env.from
    in
    match hits with
    | [ (alias, _) ] -> Query.Cref.make ~table:alias ~column:name
    | [] ->
      let candidates =
        List.concat_map
          (fun (_, source) ->
            columns_of_table (Catalog.Db.find_exn env.db source))
          env.from
      in
      fail "unknown column %s%s" name (Catalog.Suggest.hint ~candidates name)
    | _ :: _ :: _ -> fail "ambiguous column %s" name
  end

let column_type env (c : Query.Cref.t) =
  let source = source_of env c.Query.Cref.table in
  let table = Catalog.Db.find_exn env.db source in
  match
    Rel.Schema.index_of table.Catalog.Table.schema ~table:source
      ~name:c.Query.Cref.column
  with
  | Some i -> (Rel.Schema.get table.Catalog.Table.schema i).Rel.Schema.ty
  | None -> fail "internal: resolved column %s vanished"
      (Query.Cref.to_string c)

(* Integer literals compared against float columns are coerced; everything
   else must match the column type exactly. *)
let coerce_const ty v =
  match ty, v with
  | Rel.Value.Ty_float, Rel.Value.Int n -> Rel.Value.Float (float_of_int n)
  | _, _ ->
    if Rel.Value.has_type ty v then v
    else
      fail "constant %s does not match column type %s"
        (Rel.Value.to_string v) (Rel.Value.ty_name ty)

(* [Some pred] to keep, [None] for a dropped tautology. *)
let bind_condition env (cond : Ast.condition) =
  match cond.lhs, cond.rhs with
  | Ast.Col lc, Ast.Col rc -> begin
    let left = resolve env lc and right = resolve env rc in
    if not (Rel.Cmp.is_equality cond.op) then
      fail "only equality is supported between columns (%s %s %s)"
        (Query.Cref.to_string left) (Rel.Cmp.to_string cond.op)
        (Query.Cref.to_string right);
    let lty = column_type env left and rty = column_type env right in
    if lty <> rty then
      fail "type mismatch in %s = %s" (Query.Cref.to_string left)
        (Query.Cref.to_string right);
    if Query.Cref.equal left right then None
    else Some (Query.Predicate.col_eq left right)
  end
  | Ast.Col c, Ast.Lit v ->
    let col = resolve env c in
    let v = coerce_const (column_type env col) v in
    Some (Query.Predicate.cmp col cond.op v)
  | Ast.Lit v, Ast.Col c ->
    let col = resolve env c in
    let v = coerce_const (column_type env col) v in
    Some (Query.Predicate.cmp col (Rel.Cmp.flip cond.op) v)
  | Ast.Lit a, Ast.Lit b ->
    if Rel.Cmp.eval cond.op a b then None
    else
      fail "condition %s %s %s is always false" (Rel.Value.to_string a)
        (Rel.Cmp.to_string cond.op) (Rel.Value.to_string b)

let bind db (ast : Ast.query) =
  match
    let from =
      List.map
        (fun (item : Ast.from_item) ->
          let source = String.lowercase_ascii item.Ast.table in
          let alias =
            match item.Ast.alias with
            | Some a -> String.lowercase_ascii a
            | None -> source
          in
          (alias, source))
        ast.from
    in
    let env = { db; from } in
    if
      List.length (List.sort_uniq compare (aliases env))
      <> List.length (aliases env)
    then fail "duplicate alias in FROM";
    check_tables env;
    let predicates = List.filter_map (bind_condition env) ast.where in
    let projection =
      match ast.select with
      | Ast.Sel_star -> Query.Star
      | Ast.Sel_count_star -> Query.Count_star
      | Ast.Sel_columns cols ->
        Query.Columns (List.map (resolve env) cols)
    in
    Query.make ~projection ~sources:env.from ~tables:(aliases env) predicates
  with
  | q -> Ok q
  | exception Bind_error msg -> Error ("bind error: " ^ msg)
  | exception Invalid_argument msg -> Error ("bind error: " ^ msg)

let compile db input =
  match Parser.parse input with
  | Error _ as e -> e
  | Ok ast -> bind db ast

let compile_result db input =
  match Parser.parse_structured input with
  | Error e ->
    Error
      (Els.Els_error.Parse_error
         { position = e.Parser.position; detail = e.Parser.message })
  | Ok ast -> begin
    match bind db ast with
    | Ok q -> Ok q
    | Error msg -> Error (Els.Els_error.Invalid_query { detail = msg })
  end

let compile_exn db input =
  match compile db input with
  | Ok q -> q
  | Error msg -> invalid_arg msg
