(** Name resolution: untyped {!Ast.query} → typed {!Query.t}.

    The binder checks tables against the catalog, resolves unqualified
    column names (rejecting ambiguous ones), type-checks comparisons, and
    normalizes conditions so constants always sit on the right. Conditions
    between two columns may be equalities or (cross-table) range
    comparisons [< <= > >=]; [a BETWEEN b - eps AND b + eps] over one
    shifted column binds as a band join ([|a - b| <= eps]). [<>] between
    columns, intra-table column inequalities, and asymmetric band bounds
    are rejected with structured messages. Trivially true conditions
    (e.g. [1 = 1], [R.x = R.x]) are dropped; trivially false ones are
    rejected. *)

val bind_structured :
  Catalog.Db.t -> Ast.query -> (Query.t, Els.Els_error.t) result
(** Bind with structured errors: positioned refusals ([<>] between
    columns, malformed band bounds) become [Parse_error] carrying the
    byte offset of the offending operator/keyword; everything else is
    [Invalid_query]. Never raises. *)

val bind : Catalog.Db.t -> Ast.query -> (Query.t, string) result

val compile : Catalog.Db.t -> string -> (Query.t, string) result
(** Parse then bind. *)

val compile_result : Catalog.Db.t -> string -> (Query.t, Els.Els_error.t) result
(** Parse then bind with structured errors: lex/parse failures become
    [Parse_error] (with the byte offset), binder failures become
    [Invalid_query]. Never raises. *)

val compile_exn : Catalog.Db.t -> string -> Query.t
(** @raise Invalid_argument with the error message on failure. *)
