type error = {
  message : string;
  position : int;
}

type spanned = {
  token : Token.t;
  pos : int;
}

exception Lex_error of error

let error_to_string e =
  Printf.sprintf "lex error at offset %d: %s" e.position e.message

let fail position message = raise (Lex_error { message; position })

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let keyword_of_string s =
  match String.lowercase_ascii s with
  | "select" -> Some Token.Kw_select
  | "from" -> Some Token.Kw_from
  | "where" -> Some Token.Kw_where
  | "and" -> Some Token.Kw_and
  | "count" -> Some Token.Kw_count
  | "between" -> Some Token.Kw_between
  | "true" -> Some Token.Kw_true
  | "false" -> Some Token.Kw_false
  | "null" -> Some Token.Kw_null
  | _ -> None

let tokenize_spanned input =
  let len = String.length input in
  let tokens = ref [] in
  let emit pos tok = tokens := { token = tok; pos } :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let lex_ident () =
    let start = !pos in
    while !pos < len && is_ident_char input.[!pos] do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match keyword_of_string text with
    | Some kw -> emit start kw
    | None -> emit start (Token.Ident (String.lowercase_ascii text))
  in
  let lex_number () =
    let start = !pos in
    while !pos < len && is_digit input.[!pos] do
      advance ()
    done;
    let is_float =
      !pos < len && input.[!pos] = '.'
      && !pos + 1 < len
      && is_digit input.[!pos + 1]
    in
    if is_float then begin
      advance ();
      while !pos < len && is_digit input.[!pos] do
        advance ()
      done
    end;
    (* Exponent part: 1e6, 1.5E-3. *)
    let has_exp =
      !pos < len
      && (input.[!pos] = 'e' || input.[!pos] = 'E')
      && !pos + 1 < len
      && (is_digit input.[!pos + 1]
         || ((input.[!pos + 1] = '+' || input.[!pos + 1] = '-')
            && !pos + 2 < len
            && is_digit input.[!pos + 2]))
    in
    if has_exp then begin
      advance ();
      if input.[!pos] = '+' || input.[!pos] = '-' then advance ();
      while !pos < len && is_digit input.[!pos] do
        advance ()
      done
    end;
    let text = String.sub input start (!pos - start) in
    if is_float || has_exp then emit start (Token.Float_lit (float_of_string text))
    else
      match int_of_string_opt text with
      | Some n -> emit start (Token.Int_lit n)
      | None -> fail start (Printf.sprintf "integer literal too large: %s" text)
  in
  let lex_string () =
    let start = !pos in
    advance ();
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail start "unterminated string literal"
      | Some '\'' ->
        advance ();
        if peek () = Some '\'' then begin
          Buffer.add_char buf '\'';
          advance ();
          loop ()
        end
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    emit start (Token.String_lit (Buffer.contents buf))
  in
  let lex_operator c =
    let start = !pos in
    advance ();
    let two =
      match peek () with
      | Some c2 -> begin
        match c, c2 with
        | '<', '=' -> Some Rel.Cmp.Le
        | '>', '=' -> Some Rel.Cmp.Ge
        | '<', '>' -> Some Rel.Cmp.Ne
        | '!', '=' -> Some Rel.Cmp.Ne
        | _, _ -> None
      end
      | None -> None
    in
    match two with
    | Some op ->
      advance ();
      emit start (Token.Op op)
    | None -> begin
      match c with
      | '=' -> emit start (Token.Op Rel.Cmp.Eq)
      | '<' -> emit start (Token.Op Rel.Cmp.Lt)
      | '>' -> emit start (Token.Op Rel.Cmp.Gt)
      | '!' -> fail start "'!' must be followed by '='"
      | _ -> fail start (Printf.sprintf "unexpected character %c" c)
    end
  in
  let rec loop () =
    match peek () with
    | None -> ()
    | Some c ->
      (match c with
      | ' ' | '\t' | '\n' | '\r' -> advance ()
      | '+' ->
        let start = !pos in
        advance ();
        emit start Token.Plus
      | '-' ->
        let start = !pos in
        advance ();
        emit start Token.Minus
      | '*' ->
        let start = !pos in
        advance ();
        emit start Token.Star
      | ',' ->
        let start = !pos in
        advance ();
        emit start Token.Comma
      | '.' ->
        let start = !pos in
        advance ();
        emit start Token.Dot
      | '(' ->
        let start = !pos in
        advance ();
        emit start Token.Lparen
      | ')' ->
        let start = !pos in
        advance ();
        emit start Token.Rparen
      | ';' ->
        let start = !pos in
        advance ();
        emit start Token.Semicolon
      | '\'' -> lex_string ()
      | '=' | '<' | '>' | '!' -> lex_operator c
      | c when is_digit c -> lex_number ()
      | c when is_ident_start c -> lex_ident ()
      | c -> fail !pos (Printf.sprintf "unexpected character %c" c));
      loop ()
  in
  match loop () with
  | () ->
    emit len Token.Eof;
    Ok (List.rev !tokens)
  | exception Lex_error e -> Error e

let tokenize input =
  Result.map (List.map (fun s -> s.token)) (tokenize_spanned input)
