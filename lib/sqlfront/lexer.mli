(** Hand-written lexer for the conjunctive-SQL subset.

    Identifiers and keywords are case-insensitive; string literals use
    single quotes with [''] as the escape for a quote. *)

type error = {
  message : string;
  position : int; (** byte offset into the input *)
}

val tokenize : string -> (Token.t list, error) result
(** The token list always ends with {!Token.Eof} on success. *)

val error_to_string : error -> string
