(** Hand-written lexer for the conjunctive-SQL subset.

    Identifiers and keywords are case-insensitive; string literals use
    single quotes with [''] as the escape for a quote. *)

type error = {
  message : string;
  position : int; (** byte offset into the input *)
}

type spanned = {
  token : Token.t;
  pos : int; (** byte offset of the token's first character *)
}

val tokenize : string -> (Token.t list, error) result
(** The token list always ends with {!Token.Eof} on success. *)

val tokenize_spanned : string -> (spanned list, error) result
(** Like {!tokenize} but each token carries its source offset, so parse
    errors can point at the offending token. [Eof]'s offset is the input
    length. *)

val error_to_string : error -> string
