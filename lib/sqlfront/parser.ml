type error = {
  message : string;
  position : int;
}

exception Parse_error of error

let error_to_string e =
  Printf.sprintf "parse error at offset %d: %s" e.position e.message

type state = {
  mutable tokens : Lexer.spanned list;
  eof_pos : int;
}

let fail pos fmt =
  Printf.ksprintf
    (fun s -> raise (Parse_error { message = s; position = pos }))
    fmt

let peek st =
  match st.tokens with
  | [] -> Token.Eof
  | s :: _ -> s.Lexer.token

let peek_pos st =
  match st.tokens with
  | [] -> st.eof_pos
  | s :: _ -> s.Lexer.pos

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let expect st tok =
  let got = peek st in
  if Token.equal got tok then advance st
  else
    fail (peek_pos st) "expected %s but found %s" (Token.to_string tok)
      (Token.to_string got)

let ident st =
  match peek st with
  | Token.Ident name ->
    advance st;
    name
  | tok ->
    fail (peek_pos st) "expected identifier but found %s" (Token.to_string tok)

(* [col] or [table.col]. *)
let column_ref st =
  let first = ident st in
  if Token.equal (peek st) Token.Dot then begin
    advance st;
    let name = ident st in
    { Ast.qualifier = Some first; name }
  end
  else { Ast.qualifier = None; name = first }

let select_item st =
  match peek st with
  | Token.Star ->
    advance st;
    Ast.Sel_star
  | Token.Kw_count ->
    advance st;
    expect st Token.Lparen;
    if Token.equal (peek st) Token.Star then advance st;
    expect st Token.Rparen;
    Ast.Sel_count_star
  | _ ->
    let rec cols acc =
      let c = column_ref st in
      if Token.equal (peek st) Token.Comma then begin
        advance st;
        cols (c :: acc)
      end
      else List.rev (c :: acc)
    in
    Ast.Sel_columns (cols [])

(* [t], [t alias] or [t AS alias]; "as" is not a reserved word, so it
   arrives as a plain identifier. *)
let from_item st =
  let table = ident st in
  let alias =
    match peek st with
    | Token.Ident "as" ->
      advance st;
      Some (ident st)
    | Token.Ident name ->
      advance st;
      Some name
    | _ -> None
  in
  { Ast.table; alias }

let from_list st =
  let rec loop acc =
    let item = from_item st in
    if Token.equal (peek st) Token.Comma then begin
      advance st;
      loop (item :: acc)
    end
    else List.rev (item :: acc)
  in
  loop []

let operand st =
  match peek st with
  | Token.Int_lit n ->
    advance st;
    Ast.Lit (Rel.Value.Int n)
  | Token.Float_lit f ->
    advance st;
    Ast.Lit (Rel.Value.Float f)
  | Token.String_lit s ->
    advance st;
    Ast.Lit (Rel.Value.String s)
  | Token.Kw_true ->
    advance st;
    Ast.Lit (Rel.Value.Bool true)
  | Token.Kw_false ->
    advance st;
    Ast.Lit (Rel.Value.Bool false)
  | Token.Kw_null ->
    advance st;
    Ast.Lit Rel.Value.Null
  | Token.Ident _ -> Ast.Col (column_ref st)
  | tok ->
    fail (peek_pos st) "expected operand but found %s" (Token.to_string tok)

let numeric_lit st =
  match peek st with
  | Token.Int_lit n ->
    advance st;
    float_of_int n
  | Token.Float_lit f ->
    advance st;
    f
  | tok ->
    fail (peek_pos st) "expected numeric literal but found %s"
      (Token.to_string tok)

(* A BETWEEN bound: an operand, optionally followed by [± numeric]
   arithmetic when the base is a column ([s.b - 0.5]). *)
let bound st =
  let base = operand st in
  match peek st with
  | (Token.Plus | Token.Minus) as tok -> begin
    match base with
    | Ast.Lit _ ->
      fail (peek_pos st)
        "offset arithmetic is only supported after a column reference"
    | Ast.Col _ ->
      let sign = if Token.equal tok Token.Minus then -1. else 1. in
      advance st;
      let off = numeric_lit st in
      { Ast.base; offset = sign *. off }
  end
  | _ -> { Ast.base; offset = 0. }

(* One WHERE conjunct: a comparison or a BETWEEN range. *)
let condition st =
  let lhs = operand st in
  match peek st with
  | Token.Op op ->
    let op_pos = peek_pos st in
    advance st;
    let rhs = operand st in
    Ast.Cmp { lhs; op; rhs; op_pos }
  | Token.Kw_between ->
    let pos = peek_pos st in
    advance st;
    let lo = bound st in
    expect st Token.Kw_and;
    let hi = bound st in
    Ast.Between { lhs; lo; hi; pos }
  | tok ->
    fail (peek_pos st) "expected comparison operator but found %s"
      (Token.to_string tok)

let where_clause st =
  if Token.equal (peek st) Token.Kw_where then begin
    advance st;
    let rec loop acc =
      let acc = condition st :: acc in
      if Token.equal (peek st) Token.Kw_and then begin
        advance st;
        loop acc
      end
      else List.rev acc
    in
    loop []
  end
  else []

let query st =
  expect st Token.Kw_select;
  let select = select_item st in
  expect st Token.Kw_from;
  let from = from_list st in
  let where = where_clause st in
  if Token.equal (peek st) Token.Semicolon then advance st;
  expect st Token.Eof;
  { Ast.select; from; where }

let parse_structured input =
  match Lexer.tokenize_spanned input with
  | Error e ->
    Error
      { message = "lex error: " ^ e.Lexer.message;
        position = e.Lexer.position }
  | Ok tokens -> begin
    let st = { tokens; eof_pos = String.length input } in
    match query st with
    | q -> Ok q
    | exception Parse_error e -> Error e
  end

let parse input =
  Result.map_error error_to_string (parse_structured input)
