(** Recursive-descent parser for the conjunctive-SQL subset:

    {v
    SELECT ( star | COUNT() | COUNT(star) | col [, col ...] )
    FROM table [, table ...]
    [WHERE cond AND cond ...] [;]
    v}

    where each condition compares two operands (column references or
    literals) with one of [= <> != < <= > >=], or is a
    [operand BETWEEN operand AND operand] (desugared into a [>=]/[<=]
    pair). Tables may carry aliases ([FROM emp e1] or [FROM emp AS e1]). *)

type error = {
  message : string;
  position : int;  (** byte offset of the offending token *)
}

val error_to_string : error -> string

val parse_structured : string -> (Ast.query, error) result
(** Lex and parse; a lex failure surfaces as an error at its input offset
    with a ["lex error: "] message prefix, a parse failure points at the
    first character of the unexpected token ([Eof] points one past the
    input). *)

val parse : string -> (Ast.query, string) result
(** {!parse_structured} with the error rendered as a human-readable
    message carrying the byte offset. *)
