(** Recursive-descent parser for the conjunctive-SQL subset:

    {v
    SELECT ( star | COUNT() | COUNT(star) | col [, col ...] )
    FROM table [, table ...]
    [WHERE cond AND cond ...] [;]
    v}

    where each condition compares two operands (column references or
    literals) with one of [= <> != < <= > >=], or is a
    [operand BETWEEN operand AND operand] (desugared into a [>=]/[<=]
    pair). Tables may carry aliases ([FROM emp e1] or [FROM emp AS e1]). *)

val parse : string -> (Ast.query, string) result
(** Lex and parse; errors carry a human-readable message with the byte
    offset. *)
