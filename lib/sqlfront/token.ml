type t =
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_count
  | Kw_between
  | Kw_true
  | Kw_false
  | Kw_null
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Op of Rel.Cmp.t
  | Plus
  | Minus
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Semicolon
  | Eof

let to_string = function
  | Kw_select -> "SELECT"
  | Kw_from -> "FROM"
  | Kw_where -> "WHERE"
  | Kw_and -> "AND"
  | Kw_count -> "COUNT"
  | Kw_between -> "BETWEEN"
  | Kw_true -> "TRUE"
  | Kw_false -> "FALSE"
  | Kw_null -> "NULL"
  | Ident s -> s
  | Int_lit n -> string_of_int n
  | Float_lit f -> string_of_float f
  | String_lit s -> Printf.sprintf "%S" s
  | Op op -> Rel.Cmp.to_string op
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Comma -> ","
  | Dot -> "."
  | Lparen -> "("
  | Rparen -> ")"
  | Semicolon -> ";"
  | Eof -> "<eof>"

let equal a b = Stdlib.compare a b = 0
