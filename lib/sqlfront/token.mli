(** Lexical tokens of the conjunctive-SQL subset. *)

type t =
  | Kw_select
  | Kw_from
  | Kw_where
  | Kw_and
  | Kw_count
  | Kw_between
  | Kw_true
  | Kw_false
  | Kw_null
  | Ident of string  (** lower-cased identifier *)
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Op of Rel.Cmp.t
  | Plus  (** in BETWEEN bound arithmetic: [col + offset] *)
  | Minus  (** in BETWEEN bound arithmetic: [col - offset] *)
  | Star
  | Comma
  | Dot
  | Lparen
  | Rparen
  | Semicolon
  | Eof

val to_string : t -> string
val equal : t -> t -> bool
