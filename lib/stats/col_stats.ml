type t = {
  distinct : int;
  nulls : int;
  min_value : Rel.Value.t option;
  max_value : Rel.Value.t option;
  histogram : Histogram.t option;
  mcv : Mcv.t option;
  distinct_sketch : Hll.t option;
  degree : Degree.t option;
}

let numeric_values values =
  let out = Rel.Vec.create () in
  Array.iter
    (fun v ->
      match v with
      | Rel.Value.Int x -> Rel.Vec.push out (float_of_int x)
      | Rel.Value.Float x -> Rel.Vec.push out x
      | Rel.Value.Null | Rel.Value.String _ | Rel.Value.Bool _ -> ())
    values;
  Rel.Vec.to_array out

let of_values ?histogram ?(histogram_buckets = 32) ?mcv
    ?(degree_k = Degree.default_k) values =
  (* One counting pass serves both the exact distinct count and the
     degree sequence: the count of value [v] is its degree. *)
  let seen = Hashtbl.create 1024 in
  let nulls = ref 0 in
  let lo = ref None and hi = ref None in
  Array.iter
    (fun v ->
      if Rel.Value.is_null v then incr nulls
      else begin
        (match Hashtbl.find_opt seen v with
        | Some c -> Hashtbl.replace seen v (c + 1)
        | None -> Hashtbl.add seen v 1);
        (match !lo with
        | None -> lo := Some v
        | Some m -> if Rel.Value.compare v m < 0 then lo := Some v);
        match !hi with
        | None -> hi := Some v
        | Some m -> if Rel.Value.compare v m > 0 then hi := Some v
      end)
    values;
  let histogram =
    match histogram with
    | None -> None
    | Some kind ->
      let nums = numeric_values values in
      if Array.length nums = 0 then None
      else Histogram.build kind ~buckets:histogram_buckets nums
  in
  let mcv =
    match mcv with
    | None -> None
    | Some k -> Mcv.build ~k values
  in
  let degree =
    Some
      (Degree.of_counts ~k:degree_k
         (Hashtbl.fold (fun v c acc -> (v, c) :: acc) seen []))
  in
  {
    distinct = Hashtbl.length seen;
    nulls = !nulls;
    min_value = !lo;
    max_value = !hi;
    histogram;
    mcv;
    distinct_sketch = Some (Hll.of_values values);
    degree;
  }

let trivial ~distinct =
  {
    distinct;
    nulls = 0;
    min_value = None;
    max_value = None;
    histogram = None;
    mcv = None;
    distinct_sketch = None;
    degree = None;
  }

let with_bounds ~distinct ~lo ~hi =
  {
    distinct;
    nulls = 0;
    min_value = Some lo;
    max_value = Some hi;
    histogram = None;
    mcv = None;
    distinct_sketch = None;
    degree = None;
  }

let combine_bound pick a b =
  match a, b with
  | None, x | x, None -> x
  | Some a, Some b -> Some (pick a b)

let merge ~rows a ~rows':rows2 b =
  let total_rows = rows + rows2 in
  let distinct_sketch =
    match a.distinct_sketch, b.distinct_sketch with
    | Some sa, Some sb when Hll.precision sa = Hll.precision sb ->
        Some (Hll.merge sa sb)
    | _ -> None
  in
  let distinct =
    match distinct_sketch with
    | Some sketch ->
        let est = int_of_float (Float.round (Hll.estimate sketch)) in
        max 0 (min est total_rows)
    | None ->
        (* Without sketches the shard counts can only bound the union. *)
        min (a.distinct + b.distinct) total_rows
  in
  let histogram =
    match a.histogram, b.histogram with
    | None, h | h, None -> h
    | Some ha, Some hb -> Some (Histogram.merge ha hb)
  in
  let mcv =
    let w1 = float_of_int (max 0 (rows - a.nulls))
    and w2 = float_of_int (max 0 (rows2 - b.nulls)) in
    match a.mcv, b.mcv with
    | None, None -> None
    | ma, mb ->
        let empty = Mcv.of_entries [] in
        let merged =
          Mcv.merge
            (w1, Option.value ma ~default:empty)
            (w2, Option.value mb ~default:empty)
        in
        if Mcv.tracked_count merged = 0 then None else Some merged
  in
  let degree =
    (* A shard without degree statistics contributes unaccounted mass, so
       the merged column can only drop them. *)
    match a.degree, b.degree with
    | Some da, Some db -> Some (Degree.merge da db)
    | _ -> None
  in
  {
    distinct;
    nulls = a.nulls + b.nulls;
    min_value =
      combine_bound (fun x y -> if Rel.Value.compare x y <= 0 then x else y)
        a.min_value b.min_value;
    max_value =
      combine_bound (fun x y -> if Rel.Value.compare x y >= 0 then x else y)
        a.max_value b.max_value;
    histogram;
    mcv;
    distinct_sketch;
    degree;
  }

let pp ppf t =
  let pp_opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some v -> Rel.Value.pp ppf v
  in
  Format.fprintf ppf "{d=%d nulls=%d min=%a max=%a%s%s}" t.distinct t.nulls
    pp_opt t.min_value pp_opt t.max_value
    (match t.histogram, t.mcv with
    | None, None -> ""
    | Some _, None -> " hist"
    | None, Some _ -> " mcv"
    | Some _, Some _ -> " hist mcv")
    (match t.distinct_sketch, t.degree with
    | None, None -> ""
    | Some _, None -> " sketch"
    | None, Some _ -> " deg"
    | Some _, Some _ -> " sketch deg")
