type t = {
  distinct : int;
  nulls : int;
  min_value : Rel.Value.t option;
  max_value : Rel.Value.t option;
  histogram : Histogram.t option;
  mcv : Mcv.t option;
}

let numeric_values values =
  let out = Rel.Vec.create () in
  Array.iter
    (fun v ->
      match v with
      | Rel.Value.Int x -> Rel.Vec.push out (float_of_int x)
      | Rel.Value.Float x -> Rel.Vec.push out x
      | Rel.Value.Null | Rel.Value.String _ | Rel.Value.Bool _ -> ())
    values;
  Rel.Vec.to_array out

let of_values ?histogram ?(histogram_buckets = 32) ?mcv values =
  let seen = Hashtbl.create 1024 in
  let nulls = ref 0 in
  let lo = ref None and hi = ref None in
  Array.iter
    (fun v ->
      if Rel.Value.is_null v then incr nulls
      else begin
        if not (Hashtbl.mem seen v) then Hashtbl.add seen v ();
        (match !lo with
        | None -> lo := Some v
        | Some m -> if Rel.Value.compare v m < 0 then lo := Some v);
        match !hi with
        | None -> hi := Some v
        | Some m -> if Rel.Value.compare v m > 0 then hi := Some v
      end)
    values;
  let histogram =
    match histogram with
    | None -> None
    | Some kind ->
      let nums = numeric_values values in
      if Array.length nums = 0 then None
      else Histogram.build kind ~buckets:histogram_buckets nums
  in
  let mcv =
    match mcv with
    | None -> None
    | Some k -> Mcv.build ~k values
  in
  {
    distinct = Hashtbl.length seen;
    nulls = !nulls;
    min_value = !lo;
    max_value = !hi;
    histogram;
    mcv;
  }

let trivial ~distinct =
  {
    distinct;
    nulls = 0;
    min_value = None;
    max_value = None;
    histogram = None;
    mcv = None;
  }

let with_bounds ~distinct ~lo ~hi =
  {
    distinct;
    nulls = 0;
    min_value = Some lo;
    max_value = Some hi;
    histogram = None;
    mcv = None;
  }

let pp ppf t =
  let pp_opt ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some v -> Rel.Value.pp ppf v
  in
  Format.fprintf ppf "{d=%d nulls=%d min=%a max=%a%s}" t.distinct t.nulls
    pp_opt t.min_value pp_opt t.max_value
    (match t.histogram, t.mcv with
    | None, None -> ""
    | Some _, None -> " hist"
    | None, Some _ -> " mcv"
    | Some _, Some _ -> " hist mcv")
