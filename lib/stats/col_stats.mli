(** Per-column statistics.

    The two statistics the paper names as "typically important" — column
    cardinality [d] and value bounds — plus an optional histogram used only
    for local predicates, as permitted by the paper's weakened uniformity
    assumption.

    Columns analyzed from data also carry an {!Hll} distinct-count sketch.
    The sketch is never consulted by the estimators (the recorded
    [distinct] stays authoritative, so estimates are bit-stable across its
    introduction); it exists so shard statistics can be {!merge}d and so
    [Catalog.Validate] can audit recorded [d] against an independent
    measurement ("d-drift"). *)

type t = {
  distinct : int;            (** column cardinality [d]: distinct non-nulls *)
  nulls : int;
  min_value : Rel.Value.t option;
  max_value : Rel.Value.t option;
  histogram : Histogram.t option;
  mcv : Mcv.t option;
  distinct_sketch : Hll.t option;
      (** mergeable distinct sketch; [None] for catalog-supplied stats *)
  degree : Degree.t option;
      (** degree-sequence norms and top-k degrees ({!Degree}); analyzed
          columns always carry one, catalog-supplied stats never do. Like
          the sketch, it is never consulted by the 1994 rules — the
          recorded [distinct] stays authoritative — but the Lp-norm /
          entropy estimator caps read it. *)
}

val of_values :
  ?histogram:Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  ?degree_k:int ->
  Rel.Value.t array ->
  t
(** Exact statistics of a column. A histogram is built only when requested
    and the column is numeric; [histogram_buckets] defaults to 32. [mcv]
    requests a most-common-value sketch of that many entries. A distinct
    sketch and a degree sequence (top-[degree_k] entries, default
    {!Degree.default_k}) are always built. *)

val trivial : distinct:int -> t
(** Statistics carrying only a distinct count; used when the caller supplies
    catalog numbers directly (as in the paper's worked examples). *)

val with_bounds : distinct:int -> lo:Rel.Value.t -> hi:Rel.Value.t -> t

val merge : rows:int -> t -> rows':int -> t -> t
(** [merge ~rows a ~rows':rows' b] combines the statistics of two disjoint
    shards of one column, where [rows]/[rows'] are the shard row counts
    (needed to weight MCV fractions and clamp the distinct estimate).
    [distinct] comes from the merged sketch when both sides carry one of
    equal precision, else from the shard-sum upper bound; nulls add;
    bounds widen; histograms, MCVs and degree sequences merge per their
    own algebras (degrees are dropped unless both shards carry them). *)

val numeric_values : Rel.Value.t array -> float array
(** Non-null numeric values of a column as floats; empty for non-numeric
    columns. *)

val pp : Format.formatter -> t -> unit
