(** Per-column statistics.

    The two statistics the paper names as "typically important" — column
    cardinality [d] and value bounds — plus an optional histogram used only
    for local predicates, as permitted by the paper's weakened uniformity
    assumption. *)

type t = {
  distinct : int;            (** column cardinality [d]: distinct non-nulls *)
  nulls : int;
  min_value : Rel.Value.t option;
  max_value : Rel.Value.t option;
  histogram : Histogram.t option;
  mcv : Mcv.t option;
}

val of_values :
  ?histogram:Histogram.kind ->
  ?histogram_buckets:int ->
  ?mcv:int ->
  Rel.Value.t array ->
  t
(** Exact statistics of a column. A histogram is built only when requested
    and the column is numeric; [histogram_buckets] defaults to 32. [mcv]
    requests a most-common-value sketch of that many entries. *)

val trivial : distinct:int -> t
(** Statistics carrying only a distinct count; used when the caller supplies
    catalog numbers directly (as in the paper's worked examples). *)

val with_bounds : distinct:int -> lo:Rel.Value.t -> hi:Rel.Value.t -> t

val numeric_values : Rel.Value.t array -> float array
(** Non-null numeric values of a column as floats; empty for non-numeric
    columns. *)

val pp : Format.formatter -> t -> unit
