(* Degree-sequence statistics of one join column: for every distinct
   non-null value v, its degree d(v) = number of rows carrying v. The
   norms of that sequence are what the modern worst-case join bounds
   consume; the top-k heaviest entries are kept value-keyed so shard
   statistics can be merged (the same reason Mcv keys by value). *)

type t = {
  l1 : float;
  l2_sq : float;
  linf : float;
  top : (Rel.Value.t * float) array;
  k : int;
  complete : bool;
}

let default_k = 32

let l1 t = t.l1
let l2 t = Float.sqrt t.l2_sq
let l2_sq t = t.l2_sq
let linf t = t.linf
let capacity t = t.k
let complete t = t.complete
let tracked t = Array.to_list t.top
let top_degrees t = Array.map snd t.top

(* Heaviest first; ties broken by value order so builds and merges are
   deterministic regardless of hash-table iteration order. *)
let by_degree (va, da) (vb, db) =
  match Float.compare db da with 0 -> Rel.Value.compare va vb | c -> c

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let of_entries ~k ~l1 ~l2_sq ~linf entries =
  let sorted = List.sort by_degree entries in
  {
    l1;
    l2_sq;
    linf;
    top = Array.of_list (take k sorted);
    k;
    complete = List.length sorted <= k;
  }

let of_counts ?(k = default_k) counts =
  let l1 = ref 0. and l2_sq = ref 0. and linf = ref 0. in
  let entries =
    List.filter_map
      (fun (v, c) ->
        if Rel.Value.is_null v || c <= 0 then None
        else begin
          let d = float_of_int c in
          l1 := !l1 +. d;
          l2_sq := !l2_sq +. (d *. d);
          if d > !linf then linf := d;
          Some (v, d)
        end)
      counts
  in
  of_entries ~k ~l1:!l1 ~l2_sq:!l2_sq ~linf:!linf entries

let of_values ?(k = default_k) values =
  let counts = Hashtbl.create 1024 in
  Array.iter
    (fun v ->
      if not (Rel.Value.is_null v) then
        match Hashtbl.find_opt counts v with
        | Some c -> Hashtbl.replace counts v (c + 1)
        | None -> Hashtbl.add counts v 1)
    values;
  of_counts ~k (Hashtbl.fold (fun v c acc -> (v, c) :: acc) counts [])

(* Shard merge. A value split across shards has its true degree only if
   both shards track it, so:
   - L1 is exact (degrees add, tracked or not);
   - L∞ and L2² are computed exactly whenever both inputs are [complete]
     (every distinct value tracked), and are lower bounds otherwise: the
     cross terms of untracked split values are unknown and omitted;
   - the top-k is the heaviest k of the merged tracked entries — each
     merged degree is a lower bound of the true degree of that value. *)
let merge a b =
  let k = max a.k b.k in
  let amap = Hashtbl.create 64 in
  Array.iter (fun (v, d) -> Hashtbl.replace amap v d) a.top;
  let union = Hashtbl.create 64 in
  Array.iter (fun (v, d) -> Hashtbl.replace union v d) a.top;
  let cross = ref 0. in
  Array.iter
    (fun (v, db) ->
      match Hashtbl.find_opt amap v with
      | Some da ->
        cross := !cross +. (da *. db);
        Hashtbl.replace union v (da +. db)
      | None -> Hashtbl.add union v db)
    b.top;
  let entries = Hashtbl.fold (fun v d acc -> (v, d) :: acc) union [] in
  let sorted = List.sort by_degree entries in
  let tracked_max = match sorted with (_, d) :: _ -> d | [] -> 0. in
  {
    l1 = a.l1 +. b.l1;
    l2_sq = a.l2_sq +. b.l2_sq +. (2. *. !cross);
    linf = Float.max tracked_max (Float.max a.linf b.linf);
    top = Array.of_list (take k sorted);
    k;
    complete = a.complete && b.complete && List.length sorted <= k;
  }

(* Upper bound on the join size of two columns from their degree
   sequences: sum of the descending sequences' pairwise products
   Σᵢ aᵢ·bᵢ (the maximal coupling — Instance Optimal Join Size
   Estimation's two-approximation). The first k₀ = min(|top a|, |top b|)
   terms are taken exactly from the tracked entries; every later aᵢ is at
   most the smallest degree that could still appear there, so the tail is
   capped by min(tail-mass(a)·tail-max(b), tail-mass(b)·tail-max(a)). *)
let join_bound a b =
  let ta = Array.map snd a.top and tb = Array.map snd b.top in
  let k0 = min (Array.length ta) (Array.length tb) in
  let pairwise = ref 0. in
  for i = 0 to k0 - 1 do
    pairwise := !pairwise +. (ta.(i) *. tb.(i))
  done;
  let tail arr l1 =
    let tracked = ref 0. in
    for i = 0 to k0 - 1 do
      tracked := !tracked +. arr.(i)
    done;
    let mass = Float.max 0. (l1 -. !tracked) in
    let dmax =
      if mass <= 0. then 0.
      else if Array.length arr > k0 then arr.(k0)
      else if k0 > 0 then arr.(k0 - 1)
      else l1
    in
    (mass, dmax)
  in
  let mass_a, max_a = tail ta a.l1 in
  let mass_b, max_b = tail tb b.l1 in
  !pairwise +. Float.min (mass_a *. max_b) (mass_b *. max_a)

let pp ppf t =
  Format.fprintf ppf "{l1=%g l2=%g linf=%g top=%d/%d%s}" t.l1 (l2 t) t.linf
    (Array.length t.top) t.k
    (if t.complete then " complete" else "")
