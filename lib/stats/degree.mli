(** Degree sequences of join columns.

    For a column [a] of relation [R], the degree of a value [v] is the
    number of rows of [R] carrying [v] in [a]. The descending sequence of
    all degrees — summarized here by its Lp norms and its top-k heaviest
    entries — is the statistic behind the modern worst-case join-size
    bounds: [L1] (the non-null row count), [L2] (the Cauchy–Schwarz /
    AGM bound ‖a‖₂·‖b‖₂ on a two-way join), [L∞] (the max degree, the
    polymatroid bound |R|·L∞), and the pairwise top-k product of
    {!join_bound} (the degree-sequence two-approximation of Instance
    Optimal Join Size Estimation; see PAPERS.md).

    The top-k entries are value-keyed, like {!Mcv}, so per-shard
    statistics can be {!merge}d (a value split across shards has its
    degrees summed when both shards track it).

    {2 Merge tolerance}

    [merge] is exact for [L1] always. When both inputs are {!complete}
    (every distinct value tracked, i.e. the column's distinct count is at
    most the tracked capacity [k]), [L∞], [L2] and the top-k are exact
    too. Otherwise they are {e lower bounds} of the bulk statistic that
    still dominate each input shard's value — untracked values split
    across shards contribute their per-shard mass but not their cross
    terms. [Analyze.partitions] therefore matches bulk ANALYZE exactly on
    low-cardinality columns and within these one-sided bounds on
    high-cardinality ones; the property test in [test_merge.ml] pins both
    regimes. *)

type t = {
  l1 : float;  (** Σ degrees = non-null row count *)
  l2_sq : float;  (** Σ degree², kept squared so merges stay additive *)
  linf : float;  (** max degree *)
  top : (Rel.Value.t * float) array;  (** top-k (value, degree), heaviest first *)
  k : int;  (** tracked capacity *)
  complete : bool;  (** every distinct value is tracked in [top] *)
}

val default_k : int
(** Tracked-capacity default (32). *)

val of_values : ?k:int -> Rel.Value.t array -> t
(** Exact degree statistics of a column; nulls carry no degree. *)

val of_counts : ?k:int -> (Rel.Value.t * int) list -> t
(** Build from precomputed per-value counts (nulls and non-positive
    counts are ignored). *)

val merge : t -> t -> t
(** Combine the statistics of two disjoint shards of one column, per the
    tolerance contract above. *)

val join_bound : t -> t -> float
(** Upper bound on [Σᵢ aᵢ·bᵢ] over the two descending degree sequences —
    the size of the two-way join under the maximal coupling. Exact over
    the tracked prefixes; the untracked tails are capped by
    [min(tail-mass(a)·tail-max(b), tail-mass(b)·tail-max(a))]. *)

val l1 : t -> float
val l2 : t -> float
(** [sqrt l2_sq]. *)

val l2_sq : t -> float
val linf : t -> float
val capacity : t -> int
val complete : t -> bool
val tracked : t -> (Rel.Value.t * float) list
val top_degrees : t -> float array

val pp : Format.formatter -> t -> unit
