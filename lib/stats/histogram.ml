type kind =
  | Equi_width
  | Equi_depth

type bucket = {
  lo : float;
  hi : float;
  count : float;
  distinct : float;
}

type t = {
  kind : kind;
  buckets : bucket array;
  total : float;
  requested : int option;
      (* bucket budget [build] was asked for; [None] for raw [of_buckets]
         histograms, whose shape nobody promised anything about *)
}

let kind t = t.kind
let buckets t = Array.to_list t.buckets
let total_count t = t.total
let requested_buckets t = t.requested

(* Counts the distinct values of a sorted slice [values.(i..j-1)]. *)
let distinct_in_sorted values i j =
  let rec loop k acc =
    if k >= j then acc
    else if values.(k) = values.(k - 1) then loop (k + 1) acc
    else loop (k + 1) (acc + 1)
  in
  if j <= i then 0 else loop (i + 1) 1

let build_equi_width ~buckets:n values =
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let len = Array.length sorted in
  let lo = sorted.(0) and hi = sorted.(len - 1) in
  let width = (hi -. lo) /. float_of_int n in
  let width = if width <= 0. then 1. else width in
  (* Bucket b spans [lo + b*width, lo + (b+1)*width]; because the input is
     sorted we can walk it once, cutting at bucket upper bounds. *)
  let out = ref [] in
  let start = ref 0 in
  for b = 0 to n - 1 do
    let upper = if b = n - 1 then hi else lo +. (float_of_int (b + 1) *. width) in
    let stop = ref !start in
    while !stop < len && (sorted.(!stop) <= upper || b = n - 1) do
      incr stop
    done;
    if !stop > !start then begin
      let blo = sorted.(!start) and bhi = sorted.(!stop - 1) in
      out :=
        {
          lo = blo;
          hi = bhi;
          count = float_of_int (!stop - !start);
          distinct = float_of_int (distinct_in_sorted sorted !start !stop);
        }
        :: !out
    end;
    start := !stop
  done;
  Array.of_list (List.rev !out)

let build_equi_depth ~buckets:n values =
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let len = Array.length sorted in
  (* Bucket [b] targets the prefix of ⌈(b+1)·len/n⌉ values, so the
     division remainder is spread one value at a time across the leading
     buckets instead of spilling into an extra trailing bucket (10 values
     into 3 buckets → 4|3|3, never a fourth bucket). *)
  let target b = ((b + 1) * len + (n - 1)) / n in
  let out = ref [] in
  let start = ref 0 in
  let b = ref 0 in
  while !start < len do
    let stop = min len (max (!start + 1) (target !b)) in
    (* Extend past duplicates of the boundary value so a value never
       straddles two buckets; keeps equality estimates consistent. *)
    let stop = ref stop in
    while !stop < len && sorted.(!stop) = sorted.(!stop - 1) do
      incr stop
    done;
    out :=
      {
        lo = sorted.(!start);
        hi = sorted.(!stop - 1);
        count = float_of_int (!stop - !start);
        distinct = float_of_int (distinct_in_sorted sorted !start !stop);
      }
      :: !out;
    start := !stop;
    incr b
  done;
  Array.of_list (List.rev !out)

let of_buckets kind buckets =
  let bs = Array.of_list buckets in
  let total = Array.fold_left (fun acc b -> acc +. b.count) 0. bs in
  { kind; buckets = bs; total; requested = None }

let build kind ~buckets values =
  if buckets < 1 then invalid_arg "Histogram.build: buckets < 1";
  if Array.length values = 0 then None
  else
    let bs =
      match kind with
      | Equi_width -> build_equi_width ~buckets values
      | Equi_depth -> build_equi_depth ~buckets values
    in
    assert (Array.length bs <= buckets);
    let total = Array.fold_left (fun acc b -> acc +. b.count) 0. bs in
    Some { kind; buckets = bs; total; requested = Some buckets }

(* --- merge algebra ------------------------------------------------------

   Shard histograms are combined by concatenating buckets in a canonical
   total order (so the operation is exactly commutative), coalescing any
   overlapping neighbours (so the result always satisfies the monotone-
   bounds audit in [Catalog.Validate]), then folding the smallest adjacent
   pairs until the result honours the larger of the two bucket budgets.
   Summing per-bucket [distinct] over-counts values present in both shards;
   that is the documented tolerance of the merge path — the HLL sketch,
   not the histogram, carries the authoritative distinct count. *)

let bucket_order a b =
  match Float.compare a.lo b.lo with
  | 0 -> (
      match Float.compare a.hi b.hi with
      | 0 -> (
          match Float.compare a.count b.count with
          | 0 -> Float.compare a.distinct b.distinct
          | c -> c)
      | c -> c)
  | c -> c

let fuse a b =
  {
    lo = Float.min a.lo b.lo;
    hi = Float.max a.hi b.hi;
    count = a.count +. b.count;
    distinct = a.distinct +. b.distinct;
  }

(* Coalesces adjacent buckets whose spans overlap, assuming the input is
   sorted by [bucket_order]; the output has strictly monotone bounds. *)
let coalesce_overlaps sorted =
  List.fold_left
    (fun acc b ->
      match acc with
      | prev :: rest when b.lo < prev.hi -> fuse prev b :: rest
      | _ -> b :: acc)
    [] sorted
  |> List.rev

(* Repeatedly fuses the adjacent pair with the smallest combined count
   (leftmost on ties) until at most [target] buckets remain. *)
let shrink_to target buckets =
  let bs = ref buckets in
  while List.length !bs > target do
    let arr = Array.of_list !bs in
    let best = ref 0 in
    for i = 1 to Array.length arr - 2 do
      if
        arr.(i).count +. arr.(i + 1).count
        < arr.(!best).count +. arr.(!best + 1).count
      then best := i
    done;
    let out = ref [] in
    Array.iteri
      (fun i b ->
        if i = !best then ()
        else if i = !best + 1 then out := fuse arr.(!best) b :: !out
        else out := b :: !out)
      arr;
    bs := List.rev !out
  done;
  !bs

let budget_of t =
  match t.requested with
  | Some n -> n
  | None -> Array.length t.buckets

let merge a b =
  let kind = if a.kind = b.kind then a.kind else Equi_depth in
  let target = max 1 (max (budget_of a) (budget_of b)) in
  let all = Array.to_list a.buckets @ Array.to_list b.buckets in
  let merged =
    List.sort bucket_order all |> coalesce_overlaps |> shrink_to target
  in
  let bs = Array.of_list merged in
  let total = Array.fold_left (fun acc bk -> acc +. bk.count) 0. bs in
  { kind; buckets = bs; total; requested = Some target }

(* --- streaming deltas ---------------------------------------------------

   Single-value adjustments for the catalog's staging epoch. These keep
   bucket bounds monotone by construction: an out-of-range value widens
   the first/last bucket, an in-gap value snaps to the nearest boundary
   bucket, and removals never touch bounds at all. *)

let containing_index buckets v =
  let n = Array.length buckets in
  let rec go i =
    if i >= n then None
    else if v >= buckets.(i).lo && v <= buckets.(i).hi then Some i
    else go (i + 1)
  in
  go 0

let add_value t v =
  let buckets = Array.copy t.buckets in
  let n = Array.length buckets in
  if n = 0 then
    {
      t with
      buckets = [| { lo = v; hi = v; count = 1.; distinct = 1. } |];
      total = t.total +. 1.;
    }
  else begin
    let idx =
      match containing_index buckets v with
      | Some i -> i
      | None ->
          if v < buckets.(0).lo then begin
            buckets.(0) <- { (buckets.(0)) with lo = v };
            0
          end
          else if v > buckets.(n - 1).hi then begin
            buckets.(n - 1) <- { (buckets.(n - 1)) with hi = v };
            n - 1
          end
          else begin
            (* In a gap between buckets: charge the nearest boundary. *)
            let best = ref 0 and best_d = ref infinity in
            Array.iteri
              (fun i b ->
                let d = Float.min (Float.abs (v -. b.lo)) (Float.abs (v -. b.hi)) in
                if d < !best_d then begin
                  best := i;
                  best_d := d
                end)
              buckets;
            !best
          end
    in
    buckets.(idx) <- { (buckets.(idx)) with count = buckets.(idx).count +. 1. };
    { t with buckets; total = t.total +. 1. }
  end

let remove_value t v =
  match containing_index t.buckets v with
  | None -> t
  | Some idx ->
      let buckets = Array.copy t.buckets in
      let b = buckets.(idx) in
      let count = Float.max 0. (b.count -. 1.) in
      buckets.(idx) <- { b with count; distinct = Float.min b.distinct count };
      { t with buckets; total = Float.max 0. (t.total -. 1.) }

let clamp01 x = Float.min 1. (Float.max 0. x)

(* Estimated count of values equal to [c] inside bucket [b]: the bucket's
   mass divided evenly over its distinct values. *)
let eq_mass b c =
  if c < b.lo || c > b.hi then 0.
  else if b.distinct <= 0. then 0.
  else b.count /. b.distinct

(* Estimated count of values strictly below [c] inside bucket [b], by
   linear interpolation over the bucket span. *)
let below_mass b c =
  if c <= b.lo then 0.
  else if c > b.hi then b.count
  else if b.hi = b.lo then 0.
  else b.count *. ((c -. b.lo) /. (b.hi -. b.lo))

let selectivity t op c =
  if t.total <= 0. then 0.
  else
    let sum f = Array.fold_left (fun acc b -> acc +. f b) 0. t.buckets in
    let mass =
      match op with
      | Rel.Cmp.Eq -> sum (fun b -> eq_mass b c)
      | Rel.Cmp.Ne -> t.total -. sum (fun b -> eq_mass b c)
      | Rel.Cmp.Lt -> sum (fun b -> below_mass b c)
      | Rel.Cmp.Le -> sum (fun b -> below_mass b c +. eq_mass b c)
      | Rel.Cmp.Gt -> t.total -. sum (fun b -> below_mass b c +. eq_mass b c)
      | Rel.Cmp.Ge -> t.total -. sum (fun b -> below_mass b c)
    in
    clamp01 (mass /. t.total)

let pp ppf t =
  let kind_name =
    match t.kind with
    | Equi_width -> "equi-width"
    | Equi_depth -> "equi-depth"
  in
  Format.fprintf ppf "%s histogram, %d buckets, %g values:@." kind_name
    (Array.length t.buckets) t.total;
  Array.iter
    (fun b ->
      Format.fprintf ppf "  [%g, %g] count=%g distinct=%g@." b.lo b.hi b.count
        b.distinct)
    t.buckets
