(** Numeric histograms for local-predicate selectivities.

    The paper (Section 2) needs the uniformity assumption only for join
    columns: "we can use data distribution information for local predicate
    selectivities." These histograms are that distribution information.
    Both classic variants are provided: equi-width, and the equi-depth
    variant of Piatetsky-Shapiro & Connell / Muralikrishna & DeWitt that
    the paper cites.

    Histograms are built over the non-null numeric values of a column;
    bucket bounds are inclusive. *)

type kind =
  | Equi_width
  | Equi_depth

type bucket = {
  lo : float;
  hi : float;
  count : float;    (** number of values falling in [lo, hi] *)
  distinct : float; (** distinct values in the bucket *)
}

type t

val build : kind -> buckets:int -> float array -> t option
(** [build kind ~buckets values] is [None] when [values] is empty.
    @raise Invalid_argument when [buckets < 1]. *)

val of_buckets : kind -> bucket list -> t
(** Raw constructor from explicit buckets, with NO validation — bounds may
    be non-monotone, counts NaN or negative. Exists so fault injection and
    tests can build deliberately corrupt histograms; real statistics come
    from {!build}. [Catalog.Validate] is the gatekeeper that rejects or
    repairs what this lets through. *)

val kind : t -> kind
val buckets : t -> bucket list
val total_count : t -> float

val requested_buckets : t -> int option
(** The bucket budget passed to {!build} — an invariant ([length buckets
    <= n]) that [Catalog.Validate] audits. [None] for raw {!of_buckets}
    histograms, which carry no such promise. *)

val merge : t -> t -> t
(** [merge a b] combines two shard histograms of the same column: buckets
    are concatenated in a canonical order (the operation is exactly
    commutative), overlapping neighbours are coalesced so bounds stay
    monotone, and the result is folded down to the larger of the two
    bucket budgets. Associativity holds only up to the fold's tolerance,
    and per-bucket [distinct] sums over-count values present in both
    shards — the distinct sketch, not the histogram, is authoritative for
    cardinality. The merged kind is [Equi_depth] when the inputs
    disagree. *)

val add_value : t -> float -> t
(** Streaming insert: bump the containing bucket's count (widening the
    first/last bucket for out-of-range values, snapping to the nearest
    bucket in a gap). The input is untouched. *)

val remove_value : t -> float -> t
(** Streaming delete: decrement the containing bucket's count, clamped at
    zero; a value outside every bucket is a no-op. Bounds never shrink —
    that residual over-coverage is part of the drift re-ANALYZE repays. *)

val selectivity : t -> Rel.Cmp.t -> float -> float
(** [selectivity h op c] estimates the fraction of the histogrammed values
    [v] with [v op c], assuming values are spread uniformly over each
    bucket's distinct values. Result is clamped to [[0, 1]]. *)

val pp : Format.formatter -> t -> unit
