type t = {
  p : int;
  registers : Bytes.t; (* 2^p registers; never mutated after construction *)
}

let default_p = 12

let create ?(p = default_p) () =
  if p < 4 || p > 16 then invalid_arg "Hll.create: precision outside [4, 16]";
  { p; registers = Bytes.make (1 lsl p) '\000' }

let precision t = t.p

(* --- 64-bit value hashing ----------------------------------------------

   [Hashtbl.hash] only yields 30 bits, which caps a register sketch far
   below real column cardinalities; hash each value into 64 bits instead
   (tagged per constructor, SplitMix64 finalizer). *)

let splitmix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let fnv64 tag s =
  let open Int64 in
  let h = ref (logxor 0xcbf29ce484222325L (of_int tag)) in
  String.iter
    (fun c ->
      h := mul (logxor !h (of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let hash_value v =
  let open Int64 in
  match v with
  | Rel.Value.Null -> 0L (* never reached: nulls are skipped *)
  | Rel.Value.Int x -> splitmix64 (add (of_int x) 0x9e3779b97f4a7c15L)
  | Rel.Value.Float f -> splitmix64 (add (bits_of_float f) 0x2545f4914f6cdd1dL)
  | Rel.Value.String s -> splitmix64 (fnv64 3 s)
  | Rel.Value.Bool b -> splitmix64 (if b then 0x6a09e667f3bcc909L else 0x3c6ef372fe94f82bL)

(* Position of the leftmost 1-bit of [w] seen as an [nbits]-wide word:
   1 when the top bit is set, [nbits + 1] when [w] is zero. *)
let rho w nbits =
  let rec go i =
    if i < 0 then nbits + 1
    else if Int64.logand (Int64.shift_right_logical w i) 1L = 1L then nbits - i
    else go (i - 1)
  in
  go (nbits - 1)

let add_into registers p v =
  if not (Rel.Value.is_null v) then begin
    let h = hash_value v in
    let idx = Int64.to_int (Int64.logand h (Int64.of_int ((1 lsl p) - 1))) in
    let w = Int64.shift_right_logical h p in
    let r = rho w (64 - p) in
    if r > Char.code (Bytes.get registers idx) then
      Bytes.set registers idx (Char.chr r)
  end

let add_values t values =
  let registers = Bytes.copy t.registers in
  Array.iter (fun v -> add_into registers t.p v) values;
  { t with registers }

let of_values ?(p = default_p) values =
  if p < 4 || p > 16 then invalid_arg "Hll.of_values: precision outside [4, 16]";
  let registers = Bytes.make (1 lsl p) '\000' in
  Array.iter (fun v -> add_into registers p v) values;
  { p; registers }

let merge a b =
  if a.p <> b.p then
    invalid_arg
      (Printf.sprintf "Hll.merge: precision mismatch (%d vs %d)" a.p b.p);
  let m = 1 lsl a.p in
  let registers = Bytes.create m in
  for i = 0 to m - 1 do
    Bytes.set registers i
      (Char.chr
         (max (Char.code (Bytes.get a.registers i))
            (Char.code (Bytes.get b.registers i))))
  done;
  { a with registers }

let estimate t =
  let m = 1 lsl t.p in
  let mf = float_of_int m in
  let sum = ref 0. in
  let zeros = ref 0 in
  for i = 0 to m - 1 do
    let r = Char.code (Bytes.get t.registers i) in
    if r = 0 then incr zeros;
    sum := !sum +. (1. /. Float.of_int (1 lsl r))
  done;
  let alpha = 0.7213 /. (1. +. (1.079 /. mf)) in
  let raw = alpha *. mf *. mf /. !sum in
  if raw <= 2.5 *. mf && !zeros > 0 then
    (* linear counting: far more accurate while most registers are empty *)
    mf *. Float.log (mf /. float_of_int !zeros)
  else raw

let equal a b = a.p = b.p && Bytes.equal a.registers b.registers

let pp ppf t =
  Format.fprintf ppf "hll(p=%d, ~%.0f distinct)" t.p (estimate t)
