(** HyperLogLog-style distinct-count sketches.

    A mergeable summary of a column's distinct non-null values: shards of
    a table can be analyzed independently and their sketches combined by
    a register-wise maximum, which is {e exactly} commutative, associative
    and idempotent — the algebraic property the partitioned-ANALYZE path
    and the epoch merge machinery rely on. Standard error is roughly
    [1.04/sqrt(2^p)] (about 1.6% at the default precision).

    Sketches are immutable values: [add_values] and [merge] return fresh
    sketches and never mutate their inputs, so a sketch frozen into a
    catalog epoch cannot be changed behind a pinned reader's back.

    Deletions cannot be subtracted from a sketch — after deletes the
    sketch over-remembers, which is exactly the "d-drift" the catalog
    store's gauges and {!Catalog.Validate}'s drift audit measure. *)

type t

val default_p : int
(** Default precision (register-count exponent), 12: 4096 one-byte
    registers. *)

val create : ?p:int -> unit -> t
(** Empty sketch with [2^p] registers ([p] defaults to {!default_p}).
    @raise Invalid_argument when [p] is outside [[4, 16]]. *)

val precision : t -> int

val of_values : ?p:int -> Rel.Value.t array -> t
(** Sketch of the non-null values of a column (nulls are skipped, matching
    the distinct-count convention of {!Col_stats}). *)

val add_values : t -> Rel.Value.t array -> t
(** Fresh sketch with the non-null values added; the input is untouched. *)

val merge : t -> t -> t
(** Register-wise maximum. Exactly commutative and associative; merging a
    sketch with itself is the identity.
    @raise Invalid_argument when the precisions differ. *)

val estimate : t -> float
(** Estimated distinct count: the classic bias-corrected harmonic mean
    with linear counting in the small range. Deterministic; an empty
    sketch estimates 0. *)

val equal : t -> t -> bool
(** Register-level equality (same precision, same registers). *)

val pp : Format.formatter -> t -> unit
