type entry = {
  value : Rel.Value.t;
  fraction : float;
}

type t = {
  entries : entry list;
  covered : float;
}

let build ~k values =
  if k < 1 then invalid_arg "Mcv.build: k < 1";
  let counts = Hashtbl.create 1024 in
  let non_null = ref 0 in
  Array.iter
    (fun v ->
      if not (Rel.Value.is_null v) then begin
        incr non_null;
        Hashtbl.replace counts v
          (1 + Option.value (Hashtbl.find_opt counts v) ~default:0)
      end)
    values;
  if !non_null = 0 then None
  else begin
    let total = float_of_int !non_null in
    let all =
      Hashtbl.fold (fun v n acc -> (v, n) :: acc) counts []
      |> List.sort (fun (va, na) (vb, nb) ->
             match Int.compare nb na with
             | 0 -> Rel.Value.compare va vb
             | c -> c)
    in
    let top = List.filteri (fun i _ -> i < k) all in
    let entries =
      List.map
        (fun (value, n) -> { value; fraction = float_of_int n /. total })
        top
    in
    let covered = List.fold_left (fun acc e -> acc +. e.fraction) 0. entries in
    Some { entries; covered = Float.min 1. covered }
  end

let of_entries entries =
  let covered = List.fold_left (fun acc e -> acc +. e.fraction) 0. entries in
  { entries; covered }

(* Structural lookup for the merge path: merging groups by the canonical
   value, not by the numeric-aware [equal_sem] the estimator uses. *)
let lookup_exact t v =
  List.find_map
    (fun e -> if Rel.Value.compare e.value v = 0 then Some e.fraction else None)
    t.entries

let merge (w1, t1) (w2, t2) =
  let total = w1 +. w2 in
  if total <= 0. then { entries = []; covered = 0. }
  else begin
    (* Row-weighted fraction of [v] across both shards; a value untracked
       on one side contributes 0 there, which under-counts at most that
       shard's untracked residual — the documented merge tolerance. *)
    let weighted t w v =
      match lookup_exact t v with
      | Some f -> f *. w
      | None -> 0.
    in
    let values =
      List.sort_uniq Rel.Value.compare
        (List.map (fun e -> e.value) t1.entries
        @ List.map (fun e -> e.value) t2.entries)
    in
    let combined =
      List.map
        (fun value ->
          {
            value;
            fraction = (weighted t1 w1 value +. weighted t2 w2 value) /. total;
          })
        values
      |> List.sort (fun a b ->
             match Float.compare b.fraction a.fraction with
             | 0 -> Rel.Value.compare a.value b.value
             | c -> c)
    in
    let k = max (List.length t1.entries) (List.length t2.entries) in
    let entries = List.filteri (fun i _ -> i < k) combined in
    let covered = List.fold_left (fun acc e -> acc +. e.fraction) 0. entries in
    { entries; covered = Float.min 1. covered }
  end

let entries t = t.entries

(* Numeric-aware: a Float literal must hit the tracked Int entry of an
   int column (and vice versa), matching predicate-evaluation equality. *)
let lookup t v =
  List.find_map
    (fun e -> if Rel.Value.equal_sem e.value v then Some e.fraction else None)
    t.entries

let covered_fraction t = t.covered
let tracked_count t = List.length t.entries

let remainder_eq_selectivity t ~distinct =
  let residual = Float.max 0. (1. -. t.covered) in
  if residual <= 0. then 0.
  else
    (* A stale catalog can report distinct <= tracked even though the
       sketch covers less than the whole column; an untracked literal then
       deserves the residual mass, not a hard zero. Treat the untracked
       population as at least one value and clamp the result to [0, 1]. *)
    let untracked = max 1 (distinct - tracked_count t) in
    Float.min 1. (residual /. float_of_int untracked)

let pp ppf t =
  Format.fprintf ppf "mcv(%d values, %.1f%% covered):@." (tracked_count t)
    (100. *. t.covered);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %a -> %.4f@." Rel.Value.pp e.value e.fraction)
    t.entries
