(** Most-common-value (MCV) sketches.

    The paper's future-work section calls for relaxing the uniformity
    assumption for "important data distributions such as the Zipfian
    distribution". The classic mechanism (used by the systems that later
    adopted ELS-style estimation) is to track the top-k values of a column
    with their exact frequencies and treat only the remainder as uniform.

    An MCV sketch complements a histogram: equality selectivities come
    from the sketch when the constant is tracked, and from the uniform
    remainder otherwise. *)

type entry = {
  value : Rel.Value.t;
  fraction : float;  (** exact fraction of non-null rows carrying [value] *)
}

type t

val build : k:int -> Rel.Value.t array -> t option
(** [build ~k values] tracks the [k] most frequent non-null values.
    Returns [None] when the column has no non-null values.
    @raise Invalid_argument when [k < 1]. *)

val of_entries : entry list -> t
(** Raw constructor with NO validation — fractions may be NaN, negative or
    sum past 1 (the covered fraction is the unclamped sum). Exists so fault
    injection and tests can build deliberately corrupt sketches; real
    sketches come from {!build}, and [Catalog.Validate] rejects or repairs
    what this lets through. *)

val merge : float * t -> float * t -> t
(** [merge (rows1, a) (rows2, b)] combines two shard sketches, weighting
    each tracked fraction by its shard's non-null row count and keeping
    the top [max (tracked a) (tracked b)] values of the union. Exactly
    commutative; associative only within the truncation tolerance. A value
    tracked on one side but not the other is treated as absent from the
    other shard, under-counting it by at most that shard's untracked
    residual. Yields an empty sketch when [rows1 +. rows2 <= 0]. *)

val entries : t -> entry list
(** Tracked values, most frequent first. *)

val lookup : t -> Rel.Value.t -> float option
(** Exact fraction of rows with the given value, when tracked. Matching
    uses {!Rel.Value.equal_sem}, so a [Float] literal hits the tracked
    [Int] entry of an integer column. *)

val covered_fraction : t -> float
(** Total fraction of rows covered by the tracked values. *)

val tracked_count : t -> int

val remainder_eq_selectivity : t -> distinct:int -> float
(** Equality selectivity for an untracked value: the uncovered mass spread
    uniformly over the untracked distinct values; 0 when the sketch covers
    the whole column. When a stale catalog reports [distinct] at or below
    the tracked count while mass remains uncovered, the untracked
    population is treated as one value (the residual mass, clamped to
    [[0, 1]]) rather than estimating zero rows. *)

val pp : Format.formatter -> t -> unit
