let default_eq = 0.1
let default_range = 1. /. 3.

let clamp01 x = Float.min 1. (Float.max 0. x)

let as_float v =
  match v with
  | Rel.Value.Int x -> Some (float_of_int x)
  | Rel.Value.Float x -> Some x
  | Rel.Value.Null | Rel.Value.String _ | Rel.Value.Bool _ -> None

let is_int = function
  | Rel.Value.Int _ -> true
  | Rel.Value.Null | Rel.Value.Float _ | Rel.Value.String _ | Rel.Value.Bool _
    ->
    false

(* Fraction of the column's value domain lying strictly below [c]
   (and, separately, at or below [c]) by linear interpolation between the
   recorded bounds. Integer domains count discrete values so that
   [x < 100] over 1..1000 yields 99/1000 and not 99/999. *)
let interpolate stats c =
  match stats.Col_stats.min_value, stats.Col_stats.max_value with
  | Some lo_v, Some hi_v -> begin
    match as_float lo_v, as_float hi_v, as_float c with
    | Some lo, Some hi, Some x ->
      if is_int lo_v && is_int hi_v then begin
        let width = hi -. lo +. 1. in
        if Float.is_integer x then
          let below = clamp01 ((x -. lo) /. width) in
          let at_or_below = clamp01 ((x -. lo +. 1.) /. width) in
          Some (below, at_or_below)
        else begin
          (* A non-integer constant over an integer domain occupies no
             discrete slot: the values strictly below [x] are exactly the
             values at-or-below it, namely lo..⌊x⌋. *)
          let mass = clamp01 ((Float.floor x -. lo +. 1.) /. width) in
          Some (mass, mass)
        end
      end
      else begin
        let width = hi -. lo in
        if width <= 0. then
          (* Single-point domain. *)
          if x < lo then Some (0., 0.)
          else if x > lo then Some (1., 1.)
          else Some (0., 1.)
        else begin
          let f = clamp01 ((x -. lo) /. width) in
          Some (f, f)
        end
      end
    | _, _, _ -> None
  end
  | _, _ -> None

let eq_selectivity stats c =
  let d = stats.Col_stats.distinct in
  let out_of_bounds =
    match stats.Col_stats.min_value, stats.Col_stats.max_value with
    | Some lo, Some hi when not (Rel.Value.is_null c) ->
      (* Numeric-aware: a Float literal probed against Int bounds must
         compare by value, or every float constant lands out of bounds. *)
      Rel.Value.compare_sem c lo < 0 || Rel.Value.compare_sem c hi > 0
    | _, _ -> false
  in
  if out_of_bounds then 0.
  else
    (* An MCV sketch beats the uniform rule: exact frequency for tracked
       values, the uniform remainder for the rest. *)
    match stats.Col_stats.mcv with
    | Some mcv -> begin
      match Mcv.lookup mcv c with
      | Some fraction -> fraction
      | None -> Mcv.remainder_eq_selectivity mcv ~distinct:d
    end
    | None -> if d > 0 then 1. /. float_of_int d else default_eq

let comparison stats op c =
  if Rel.Value.is_null c then 0.
  else
    (* MCV sketches carry exact per-value frequencies, so they take
       precedence over the histogram for (in)equality predicates. *)
    let mcv_applies =
      stats.Col_stats.mcv <> None
      &&
      match op with
      | Rel.Cmp.Eq | Rel.Cmp.Ne -> true
      | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Gt | Rel.Cmp.Ge -> false
    in
    let from_histogram =
      match stats.Col_stats.histogram, as_float c with
      | Some h, Some x when not mcv_applies ->
        Some (Histogram.selectivity h op x)
      | _, _ -> None
    in
    match from_histogram with
    | Some s -> s
    | None -> begin
      match op with
      | Rel.Cmp.Eq -> eq_selectivity stats c
      | Rel.Cmp.Ne -> clamp01 (1. -. eq_selectivity stats c)
      | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Gt | Rel.Cmp.Ge -> begin
        match interpolate stats c with
        | Some (below, at_or_below) -> begin
          match op with
          | Rel.Cmp.Lt -> below
          | Rel.Cmp.Le -> at_or_below
          | Rel.Cmp.Gt -> clamp01 (1. -. at_or_below)
          | Rel.Cmp.Ge -> clamp01 (1. -. below)
          | Rel.Cmp.Eq | Rel.Cmp.Ne -> assert false
        end
        | None -> default_range
      end
    end

(* --- provenance classifier ----------------------------------------------

   Which statistic *would* produce the estimate for [op c]? The branch
   structure below mirrors [comparison]/[eq_selectivity] exactly, but the
   classifier computes no numbers: branch selection depends only on the
   shape of the statistics (sketch presence, bounds, constant type), so the
   observability layer can label a d′ without touching the value path. *)

type source =
  | Src_mcv  (** exact tracked frequency from the MCV sketch *)
  | Src_mcv_remainder  (** uniform share of the sketch's uncovered mass *)
  | Src_histogram
  | Src_interpolation  (** linear interpolation between min/max bounds *)
  | Src_uniform  (** 1/d *)
  | Src_bounds  (** constant outside the recorded bounds: zero rows *)
  | Src_default  (** System R default fraction *)

let source_name = function
  | Src_mcv -> "mcv"
  | Src_mcv_remainder -> "mcv-remainder"
  | Src_histogram -> "histogram"
  | Src_interpolation -> "interpolation"
  | Src_uniform -> "uniform"
  | Src_bounds -> "bounds"
  | Src_default -> "default"

let eq_source stats c =
  let out_of_bounds =
    match stats.Col_stats.min_value, stats.Col_stats.max_value with
    | Some lo, Some hi when not (Rel.Value.is_null c) ->
      Rel.Value.compare_sem c lo < 0 || Rel.Value.compare_sem c hi > 0
    | _, _ -> false
  in
  if out_of_bounds then Src_bounds
  else
    match stats.Col_stats.mcv with
    | Some mcv -> begin
      match Mcv.lookup mcv c with
      | Some _ -> Src_mcv
      | None -> Src_mcv_remainder
    end
    | None -> if stats.Col_stats.distinct > 0 then Src_uniform else Src_default

let comparison_source stats op c =
  if Rel.Value.is_null c then Src_default
  else
    let mcv_applies =
      stats.Col_stats.mcv <> None
      &&
      match op with
      | Rel.Cmp.Eq | Rel.Cmp.Ne -> true
      | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Gt | Rel.Cmp.Ge -> false
    in
    let histogram_applies =
      (not mcv_applies)
      && stats.Col_stats.histogram <> None
      && as_float c <> None
    in
    if histogram_applies then Src_histogram
    else begin
      match op with
      | Rel.Cmp.Eq | Rel.Cmp.Ne -> eq_source stats c
      | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Gt | Rel.Cmp.Ge -> begin
        match stats.Col_stats.min_value, stats.Col_stats.max_value with
        | Some lo_v, Some hi_v
          when as_float lo_v <> None
               && as_float hi_v <> None
               && as_float c <> None ->
          Src_interpolation
        | _, _ -> Src_default
      end
    end

let range_pair stats ~lower ~upper =
  (* P(l < x <= u) = F(u) - F(l), with each side's inclusiveness folded
     into which cumulative estimate we take. *)
  let mass_below_upper =
    match upper with
    | None -> 1.
    | Some (op, c) ->
      let op =
        match op with
        | Rel.Cmp.Lt -> Rel.Cmp.Lt
        | Rel.Cmp.Le | Rel.Cmp.Eq -> Rel.Cmp.Le
        | Rel.Cmp.Gt | Rel.Cmp.Ge | Rel.Cmp.Ne ->
          invalid_arg "Selectivity_est.range_pair: not an upper bound"
      in
      comparison stats op c
  in
  let mass_below_lower =
    match lower with
    | None -> 0.
    | Some (op, c) ->
      let op =
        match op with
        | Rel.Cmp.Gt -> Rel.Cmp.Le (* exclude x <= c *)
        | Rel.Cmp.Ge | Rel.Cmp.Eq -> Rel.Cmp.Lt (* exclude x < c *)
        | Rel.Cmp.Lt | Rel.Cmp.Le | Rel.Cmp.Ne ->
          invalid_arg "Selectivity_est.range_pair: not a lower bound"
      in
      comparison stats op c
  in
  clamp01 (mass_below_upper -. mass_below_lower)

(* --- comparison joins: histogram-CDF convolution ------------------------

   P(a op b) for [a] drawn from the left column and [b] from the right,
   generalizing the paper's rule 2d from constants to column pairs: the
   left column's cumulative distribution is integrated over the right
   column's value distribution. Histograms give a piecewise CDF; min/max
   bounds degrade to linear interpolation; with no numeric statistics on
   either side the System R defaults apply (1/3 for inequalities, the
   equality default for a band). *)

(* F(op, x) for op ∈ {Lt, Le}: fraction of the column's values v with
   [v op x], from the best available statistic. Only Lt/Le are cumulative
   queries; anything else is a caller bug, refused loudly rather than
   silently answered with the at-or-below mass. *)
let cdf_eval stats op x =
  (match op with
  | Rel.Cmp.Lt | Rel.Cmp.Le -> ()
  | Rel.Cmp.Eq | Rel.Cmp.Ne | Rel.Cmp.Gt | Rel.Cmp.Ge ->
    invalid_arg "Selectivity_est.cdf_eval: only Lt/Le are CDF queries");
  match stats.Col_stats.histogram with
  | Some h -> Some (Histogram.selectivity h op x)
  | None -> begin
    match interpolate stats (Rel.Value.Float x) with
    | Some (below, at_or_below) ->
      Some (match op with Rel.Cmp.Lt -> below | _ -> at_or_below)
    | None -> None
  end

(* The right column's value distribution as weighted intervals
   [(lo, hi, weight)] with the weights summing to 1. *)
let outer_buckets stats =
  match stats.Col_stats.histogram with
  | Some h ->
    let total = Histogram.total_count h in
    if total <= 0. then None
    else
      Some
        (List.filter_map
           (fun b ->
             if b.Histogram.count > 0. then
               Some (b.Histogram.lo, b.Histogram.hi, b.Histogram.count /. total)
             else None)
           (Histogram.buckets h))
  | None -> begin
    match stats.Col_stats.min_value, stats.Col_stats.max_value with
    | Some lo_v, Some hi_v -> begin
      match as_float lo_v, as_float hi_v with
      | Some lo, Some hi when lo <= hi -> Some [ (lo, hi, 1.) ]
      | _, _ -> None
    end
    | _, _ -> None
  end

exception No_cdf

(* E_b[g(b)] over the right column's buckets: a point-mass bucket
   (lo = hi) contributes weight·g(point) exactly; an interval bucket uses
   the trapezoid (g(lo) + g(hi)) / 2, exact whenever g is linear over the
   bucket. *)
let integrate g buckets =
  List.fold_left
    (fun acc (lo, hi, w) ->
      if lo = hi then acc +. (w *. g lo)
      else acc +. (w *. (g lo +. g hi) /. 2.))
    0. buckets

(* [op] is always Lt or Le here: [join_comparison] rewrites Gt/Ge into
   complements of Le/Lt before calling, so the [cdf_eval] restriction
   holds by construction. *)
let conv left op right =
  match outer_buckets right with
  | None -> None
  | Some buckets -> begin
    let f op x = match cdf_eval left op x with Some v -> v | None -> raise No_cdf in
    match integrate (fun x -> f op x) buckets with
    | mass -> Some mass
    | exception No_cdf -> None
  end

let join_comparison left op right =
  let estimate =
    match op with
    | Rel.Cmp.Lt -> conv left Rel.Cmp.Lt right
    | Rel.Cmp.Le -> conv left Rel.Cmp.Le right
    (* P(a > b) = 1 - P(a <= b); P(a >= b) = 1 - P(a < b). *)
    | Rel.Cmp.Gt -> Option.map (fun m -> 1. -. m) (conv left Rel.Cmp.Le right)
    | Rel.Cmp.Ge -> Option.map (fun m -> 1. -. m) (conv left Rel.Cmp.Lt right)
    | Rel.Cmp.Eq | Rel.Cmp.Ne ->
      invalid_arg "Selectivity_est.join_comparison: not an inequality"
  in
  match estimate with
  | Some mass -> clamp01 mass
  | None -> default_range

let join_band left ~eps right =
  match outer_buckets right with
  | None -> default_eq
  | Some buckets -> begin
    let f op x = match cdf_eval left op x with Some v -> v | None -> raise No_cdf in
    (* P(|a - b| <= eps) = E_b[F_le(b + eps) - F_lt(b - eps)]. *)
    match
      integrate
        (fun x -> f Rel.Cmp.Le (x +. eps) -. f Rel.Cmp.Lt (x -. eps))
        buckets
    with
    | mass -> clamp01 mass
    | exception No_cdf -> default_eq
  end

let cdf_source stats =
  match stats.Col_stats.histogram with
  | Some _ -> Src_histogram
  | None -> begin
    match stats.Col_stats.min_value, stats.Col_stats.max_value with
    | Some lo_v, Some hi_v when as_float lo_v <> None && as_float hi_v <> None
      ->
      Src_interpolation
    | _, _ -> Src_default
  end
