(** Local-predicate selectivity from column statistics.

    Implements Section 4, step 3: "assign to each local predicate a
    selectivity estimate that incorporates any distribution statistics."
    Preference order: histogram when available and the constant is numeric,
    then min/max interpolation, then the uniform [1/d] rule, then classic
    System R default fractions as a last resort. Equality predicates
    additionally consult a most-common-value sketch ({!Mcv}) when one was
    collected, relaxing the uniformity assumption for skewed (e.g. Zipf)
    columns exactly as the paper's future-work section proposes. *)

val default_eq : float
(** Fallback equality selectivity (1/10, the System R default). *)

val default_range : float
(** Fallback range selectivity (1/3, the System R default). *)

val comparison : Col_stats.t -> Rel.Cmp.t -> Rel.Value.t -> float
(** [comparison stats op c] estimates the fraction of a column's rows [v]
    satisfying [v op c]. Result lies in [[0, 1]]. *)

type source =
  | Src_mcv  (** exact tracked frequency from the MCV sketch *)
  | Src_mcv_remainder  (** uniform share of the sketch's uncovered mass *)
  | Src_histogram
  | Src_interpolation  (** linear interpolation between min/max bounds *)
  | Src_uniform  (** the uniform [1/d] rule *)
  | Src_bounds  (** constant outside the recorded bounds: zero rows *)
  | Src_default  (** System R default fraction *)
(** Which statistic produced (or would produce) an estimate — the d′
    provenance vocabulary of the observability layer. *)

val source_name : source -> string

val comparison_source : Col_stats.t -> Rel.Cmp.t -> Rel.Value.t -> source
(** Classify which statistic {!comparison} uses for [op c]. Pure
    observation: mirrors [comparison]'s branch structure (which depends
    only on the shape of the statistics) without computing any number. *)

val range_pair :
  Col_stats.t ->
  lower:(Rel.Cmp.t * Rel.Value.t) option ->
  upper:(Rel.Cmp.t * Rel.Value.t) option ->
  float
(** Selectivity of a conjunction of a lower and an upper bound on the same
    column, estimated jointly (not as an independent product) so that
    [x > 10 AND x <= 20] is the mass of the interval. Missing sides default
    to the column bounds. *)

val cdf_eval : Col_stats.t -> Rel.Cmp.t -> float -> float option
(** [cdf_eval stats op x] is the column's cumulative mass [P(v op x)] for
    [op] ∈ {[Lt], [Le]}, from the best available statistic (histogram,
    else min/max interpolation), or [None] when neither exists.
    @raise Invalid_argument for any other operator: only Lt/Le are
    cumulative queries, and the pre-restriction behaviour of silently
    answering with the at-or-below mass was a wrong-answer trap. *)

val join_comparison : Col_stats.t -> Rel.Cmp.t -> Col_stats.t -> float
(** [join_comparison left op right] estimates P(a op b) for [a] drawn from
    the left column and [b] from the right — the inequality-join
    generalization of the paper's rule 2d. The left column's CDF
    (histogram when present, min/max interpolation otherwise) is
    integrated over the right column's value distribution: point-mass
    buckets contribute exactly, interval buckets by the trapezoid rule.
    With no numeric statistics on either side the System R range default
    (1/3) applies. Result lies in [[0, 1]].
    @raise Invalid_argument for [Eq] and [Ne] (equality joins use the
    d-based rules; [Ne] is not a supported join comparison). *)

val join_band : Col_stats.t -> eps:float -> Col_stats.t -> float
(** [join_band left ~eps right] estimates P(|a - b| <= eps), the band-join
    selectivity, by the same convolution. Falls back to the equality
    default when no numeric statistics exist. Result lies in [[0, 1]]. *)

val cdf_source : Col_stats.t -> source
(** Which statistic backs a column's CDF in {!join_comparison} /
    {!join_band}: [Src_histogram], [Src_interpolation] or [Src_default] —
    the derivation card's label for comparison-join columns. *)
