(** Local-predicate selectivity from column statistics.

    Implements Section 4, step 3: "assign to each local predicate a
    selectivity estimate that incorporates any distribution statistics."
    Preference order: histogram when available and the constant is numeric,
    then min/max interpolation, then the uniform [1/d] rule, then classic
    System R default fractions as a last resort. Equality predicates
    additionally consult a most-common-value sketch ({!Mcv}) when one was
    collected, relaxing the uniformity assumption for skewed (e.g. Zipf)
    columns exactly as the paper's future-work section proposes. *)

val default_eq : float
(** Fallback equality selectivity (1/10, the System R default). *)

val default_range : float
(** Fallback range selectivity (1/3, the System R default). *)

val comparison : Col_stats.t -> Rel.Cmp.t -> Rel.Value.t -> float
(** [comparison stats op c] estimates the fraction of a column's rows [v]
    satisfying [v op c]. Result lies in [[0, 1]]. *)

val range_pair :
  Col_stats.t ->
  lower:(Rel.Cmp.t * Rel.Value.t) option ->
  upper:(Rel.Cmp.t * Rel.Value.t) option ->
  float
(** Selectivity of a conjunction of a lower and an upper bound on the same
    column, estimated jointly (not as an independent product) so that
    [x > 10 AND x <= 20] is the mass of the interval. Missing sides default
    to the column bounds. *)
