(* (1 - 1/n)^k = exp (k * log1p (-1/n)); log1p keeps precision for large n
   and the exponential form avoids pow underflow for large k. The hit
   probability 1 - (1-1/n)^k goes through expm1 because for n ≫ k it is of
   order k/n — far below the rounding step of exp's result near 1, where
   the subtraction would cancel to 0 (e.g. n = max_int, k = 1). *)
let expected_distinct ~urns ~balls =
  if urns <= 0. || balls <= 0. then 0.
  else if urns = 1. then 1.
  else urns *. -.Float.expm1 (balls *. Float.log1p (-1. /. urns))

let expected_distinct_int ~urns ~balls =
  let est =
    expected_distinct ~urns:(float_of_int urns) ~balls:(float_of_int balls)
  in
  let est = Float.ceil est in
  (* [int_of_float] is unspecified once the float exceeds the int range;
     [float_of_int max_int] rounds up to 2^62, so [>=] also catches the
     value exactly at the boundary. *)
  if est >= float_of_int max_int then max_int else int_of_float est

let survival_fraction ~urns ~balls =
  if urns <= 0. then 0. else expected_distinct ~urns ~balls /. urns
