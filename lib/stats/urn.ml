(* (1 - 1/n)^k = exp (k * log1p (-1/n)); log1p keeps precision for large n
   and the exponential form avoids pow underflow for large k. *)
let expected_distinct ~urns ~balls =
  if urns <= 0. || balls <= 0. then 0.
  else if urns = 1. then 1.
  else
    let miss = exp (balls *. Float.log1p (-1. /. urns)) in
    urns *. (1. -. miss)

let expected_distinct_int ~urns ~balls =
  let est =
    expected_distinct ~urns:(float_of_int urns) ~balls:(float_of_int balls)
  in
  int_of_float (Float.ceil est)

let survival_fraction ~urns ~balls =
  if urns <= 0. then 0. else expected_distinct ~urns ~balls /. urns
