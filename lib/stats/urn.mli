(** Ball/urn occupancy model (Section 5 of the paper).

    Throwing [k] balls (selected tuples) uniformly into [n] urns (distinct
    column values), the expected number of non-empty urns is
    [n * (1 - (1 - 1/n)^k)]. The paper uses this to estimate how a local
    predicate on one column thins the distinct count of {e another} column
    of the same table.

    All computations run in log space so that database-scale [n] and [k]
    (e.g. 1e4 urns, 1e5 balls) neither underflow nor lose precision. *)

val expected_distinct : urns:float -> balls:float -> float
(** Expected number of non-empty urns. Total: returns [0.] when either
    argument is [<= 0.]; result always lies in [[0, min urns balls]]. *)

val expected_distinct_int : urns:int -> balls:int -> int
(** Ceiling of {!expected_distinct}, matching the ⌈·⌉ in the paper's
    formulas. *)

val survival_fraction : urns:float -> balls:float -> float
(** [expected_distinct / urns]: the fraction of distinct values expected to
    survive the selection. *)
