(* Shared test utilities: catalogs from catalog numbers alone, and the
   paper's worked-example databases. *)

let check_float ?(eps = 1e-9) what expected actual =
  Alcotest.(check (float eps)) what expected actual

(* Substring test for error-message assertions: exact messages are free to
   evolve, the named table/column and suggestions must stay. *)
let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* A stats-only table of integer columns given (name, distinct) pairs. *)
let stats_table name rows cols =
  let schema =
    Rel.Schema.make
      (List.map
         (fun (c, _) -> Rel.Schema.column ~table:name ~name:c Rel.Value.Ty_int)
         cols)
  in
  Catalog.Table.stats_only ~name ~schema ~row_count:rows
    ~column_stats:
      (List.map
         (fun (c, d) -> (c, Stats.Col_stats.trivial ~distinct:d))
         cols)

let db_of_tables tables =
  let db = Catalog.Db.create () in
  List.iter (Catalog.Db.add db) tables;
  db

(* Example 1a/1b of the paper: R1(x), R2(y), R3(z) with
   ‖R1‖=100, ‖R2‖=1000, ‖R3‖=1000, d_x=10, d_y=100, d_z=1000 and
   predicates (R1.x = R2.y) AND (R2.y = R3.z). *)
let example1_db () =
  db_of_tables
    [
      stats_table "r1" 100 [ ("x", 10) ];
      stats_table "r2" 1000 [ ("y", 100) ];
      stats_table "r3" 1000 [ ("z", 1000) ];
    ]

let example1_query () =
  let x = Query.Cref.v "r1" "x"
  and y = Query.Cref.v "r2" "y"
  and z = Query.Cref.v "r3" "z" in
  Query.make ~tables:[ "r1"; "r2"; "r3" ]
    [ Query.Predicate.col_eq x y; Query.Predicate.col_eq y z ]

(* Section 6 example: R1(x) ⋈ R2(y, w) on x=y and x=w, with
   ‖R1‖=100, ‖R2‖=1000, d_x=100, d_y=10, d_w=50. *)
let section6_db () =
  db_of_tables
    [
      stats_table "r1" 100 [ ("x", 100) ];
      stats_table "r2" 1000 [ ("y", 10); ("w", 50) ];
    ]

let section6_query () =
  let x = Query.Cref.v "r1" "x"
  and y = Query.Cref.v "r2" "y"
  and w = Query.Cref.v "r2" "w" in
  Query.make ~tables:[ "r1"; "r2" ]
    [ Query.Predicate.col_eq x y; Query.Predicate.col_eq x w ]

(* Section 8 catalog numbers: S, M, B, G with key join columns. *)
let section8_stats_db () =
  let key_table name rows =
    let col = String.sub name 0 1 in
    let schema =
      Rel.Schema.make [ Rel.Schema.column ~table:name ~name:col Rel.Value.Ty_int ]
    in
    Catalog.Table.stats_only ~name ~schema ~row_count:rows
      ~column_stats:
        [
          ( col,
            Stats.Col_stats.with_bounds ~distinct:rows ~lo:(Rel.Value.Int 1)
              ~hi:(Rel.Value.Int rows) );
        ]
  in
  db_of_tables
    [
      key_table "s" 1000;
      key_table "m" 10000;
      key_table "b" 50000;
      key_table "g" 100000;
    ]

let section8_query () =
  let s = Query.Cref.v "s" "s"
  and m = Query.Cref.v "m" "m"
  and b = Query.Cref.v "b" "b"
  and g = Query.Cref.v "g" "g" in
  Query.make ~projection:Query.Count_star ~tables:[ "s"; "m"; "b"; "g" ]
    [
      Query.Predicate.col_eq s m;
      Query.Predicate.col_eq m b;
      Query.Predicate.col_eq b g;
      Query.Predicate.cmp s Rel.Cmp.Lt (Rel.Value.Int 100);
    ]
