let () =
  Alcotest.run "elsdb"
    [
      ("rel", Test_rel.suite);
      ("value-cmp", Test_value_cmp.suite);
      ("csv", Test_csv.suite);
      ("stats", Test_stats.suite);
      ("mcv", Test_mcv.suite);
      ("query", Test_query.suite);
      ("sqlfront", Test_sqlfront.suite);
      ("aliases", Test_aliases.suite);
      ("catalog", Test_catalog.suite);
      ("eqclass", Test_eqclass.suite);
      ("closure", Test_closure.suite);
      ("local-pred", Test_local_pred.suite);
      ("els-paper", Test_els_paper.suite);
      ("estimator", Test_estimator.suite);
      ("els-api", Test_els_api.suite);
      ("profile", Test_profile.suite);
      ("incremental", Test_incremental.suite);
      ("exec", Test_exec.suite);
      ("multikey", Test_multikey.suite);
      ("index", Test_index.suite);
      ("optimizer", Test_optimizer.suite);
      ("enumerators", Test_enumerators.suite);
      ("datagen", Test_datagen.suite);
      ("harness", Test_harness.suite);
      ("properties", Test_properties.suite);
      ("integration", Test_integration.suite);
      ("accuracy", Test_accuracy.suite);
      ("fault", Test_fault.suite);
      ("merge", Test_merge.suite);
      ("store", Test_store.suite);
      ("churn", Test_churn.suite);
      ("budget", Test_budget.suite);
      ("kernel", Test_kernel.suite);
      ("obs", Test_obs.suite);
    ]
