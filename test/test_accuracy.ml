(* Tests for the q-error study and the enumerator/skew harness modules'
   aggregate claims. *)

let test_qerror_ordering () =
  let summaries = Harness.Accuracy.run ~seeds:[ 1; 2; 3 ] () in
  Alcotest.(check int) "one summary per registered estimator"
    (List.length (Els.Estimator.registry ()))
    (List.length summaries);
  let find name =
    List.find (fun s -> String.equal s.Harness.Accuracy.algorithm name) summaries
  in
  let els = find "ELS" and sm = find "SM+PTC" and sss = find "SSS" in
  (* ELS is at worst a small constant off; the others blow up. *)
  Alcotest.(check bool) "ELS max q small" true (els.Harness.Accuracy.max_q < 10.);
  Alcotest.(check bool) "SSS worse than ELS" true
    (sss.Harness.Accuracy.max_q > els.Harness.Accuracy.max_q);
  Alcotest.(check bool) "SM worst" true
    (sm.Harness.Accuracy.max_q > sss.Harness.Accuracy.max_q);
  List.iter
    (fun s ->
      Alcotest.(check bool) "median <= p90 <= max" true
        (s.Harness.Accuracy.median_q <= s.Harness.Accuracy.p90_q +. 1e-9
        && s.Harness.Accuracy.p90_q <= s.Harness.Accuracy.max_q +. 1e-9))
    summaries

let test_qerror_underestimation () =
  let summaries = Harness.Accuracy.run ~seeds:[ 1; 2; 3 ] () in
  (* The paper's diagnosis: rules M and SS systematically underestimate.
     (ELS does not; PESS is an upper-bound-style estimator, so neither
     belongs in this check.) *)
  List.iter
    (fun s ->
      if List.mem s.Harness.Accuracy.algorithm [ "SM+PTC"; "SSS" ] then
        Alcotest.(check bool)
          (s.Harness.Accuracy.algorithm ^ " underestimates mostly")
          true
          (s.Harness.Accuracy.underestimated >= 0.5))
    summaries

let test_enumerator_rows_complete () =
  let rows = Harness.Enumerators.run ~seeds:[ 1 ] ~n_tables:5 () in
  Alcotest.(check int) "three enumerators" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Harness.Enumerators.enumerator ^ " work positive")
        true
        (r.Harness.Enumerators.work > 0
        && r.Harness.Enumerators.estimated_cost > 0.))
    rows;
  (* DP's estimated cost is a lower bound among the enumerators. *)
  let cost name =
    (List.find
       (fun r -> String.equal r.Harness.Enumerators.enumerator name)
       rows)
      .Harness.Enumerators.estimated_cost
  in
  Alcotest.(check bool) "dp <= greedy" true (cost "DP" <= cost "greedy" +. 1e-6);
  Alcotest.(check bool) "dp <= random" true (cost "DP" <= cost "random" +. 1e-6)

let test_skew_join_limits () =
  let points =
    Harness.Skew_join.run ~rows:(4000, 2000) ~distinct:200
      ~thetas:[ 0.; 1.2 ] ()
  in
  match points with
  | [ uniform; skewed ] -> begin
    (* Uniform data: the model is near-exact. Skewed data: systematic
       underestimation, the boundary the paper's §9 describes. *)
    match uniform.Harness.Skew_join.ratio, skewed.Harness.Skew_join.ratio with
    | Some u, Some s ->
      Alcotest.(check bool) "exact on uniform" true (Float.abs (u -. 1.) < 0.1);
      Alcotest.(check bool) "underestimates under skew" true (s < 0.5)
    | _ -> Alcotest.fail "expected nonempty true results"
  end
  | _ -> Alcotest.fail "expected two points"

let suite =
  [
    Alcotest.test_case "q-error ordering" `Quick test_qerror_ordering;
    Alcotest.test_case "systematic underestimation" `Quick
      test_qerror_underestimation;
    Alcotest.test_case "enumerator comparison rows" `Quick
      test_enumerator_rows_complete;
    Alcotest.test_case "skewed join columns (F7 shape)" `Quick
      test_skew_join_limits;
  ]
