(* Self-joins via table aliases, end to end: SQL → binder → estimation →
   optimizer → executor. Self-joins are the natural source of the
   paper's same-table j-equivalence situations. *)

let emp_db () =
  let rng = Datagen.Prng.create 21 in
  let db = Catalog.Db.create () in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"emp"
       ~rows:500
       [
         Datagen.Tablegen.key_column "id" ~rows:500;
         Datagen.Tablegen.column "mgr" ~distinct:50;
         Datagen.Tablegen.column "dept" ~distinct:10;
       ]);
  db

let test_bind_self_join () =
  let db = emp_db () in
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp e1, emp e2 WHERE e1.mgr = e2.id"
  in
  Alcotest.(check (list string)) "aliases" [ "e1"; "e2" ] q.Query.tables;
  Alcotest.(check string) "source of e1" "emp" (Query.source q "e1");
  Alcotest.(check string) "source of e2" "emp" (Query.source q "e2");
  Alcotest.(check bool) "predicate over aliases" true
    (List.exists
       (fun p ->
         Query.Predicate.equal p
           (Query.Predicate.col_eq
              (Query.Cref.v "e1" "mgr")
              (Query.Cref.v "e2" "id")))
       q.Query.predicates)

let test_duplicate_alias_rejected () =
  let db = emp_db () in
  Alcotest.(check bool) "duplicate alias" true
    (Result.is_error
       (Sqlfront.Binder.compile db "SELECT * FROM emp e, emp e"));
  (* Unaliased self-join collides on the implicit alias too. *)
  Alcotest.(check bool) "unaliased self-join" true
    (Result.is_error (Sqlfront.Binder.compile db "SELECT * FROM emp, emp"))

let test_self_join_executes () =
  let db = emp_db () in
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp e1, emp e2 WHERE e1.mgr = e2.id"
  in
  (* Ground truth: every employee's manager id is in 1..50, ids are
     1..500, so each of the 500 rows matches exactly one e2 row. *)
  let truth = Exec.Executor.run_query db q in
  Alcotest.(check int) "true size" 500 truth.Exec.Executor.row_count;
  (* Estimate: 500 * 500 / max(d_mgr, d_id) = 500. *)
  Helpers.check_float "ELS estimate" 500.
    (Els.estimate Els.Config.els db q [ "e1"; "e2" ]);
  (* Optimizer + executor agree under every algorithm. *)
  List.iter
    (fun config ->
      let choice = Optimizer.choose config db q in
      let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
      Alcotest.(check int) (Els.Config.name config) 500 rows)
    [ Els.Config.sm ~ptc:true; Els.Config.sss; Els.Config.els ]

let test_self_join_with_local_predicate () =
  let db = emp_db () in
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp e1, emp e2 WHERE e1.mgr = e2.id AND e2.id \
       <= 25"
  in
  let truth =
    (Exec.Executor.run_query db q).Exec.Executor.row_count
  in
  (* mgr uniform over 1..50: half the employees match. *)
  Alcotest.(check int) "truth" 250 truth;
  let est = Els.estimate Els.Config.els db q [ "e2"; "e1" ] in
  Alcotest.(check bool)
    (Printf.sprintf "ELS within 20%% (est %g)" est)
    true
    (Float.abs (est -. float_of_int truth) <= 0.2 *. float_of_int truth)

(* Aliasing one table twice and equating two of ITS columns through the
   join: e1.mgr = e2.id AND e1.dept = e2.id implies e1.mgr = e1.dept —
   a same-table implied local predicate via closure, across aliases. *)
let test_alias_closure_intra_table () =
  let db = emp_db () in
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp e1, emp e2 WHERE e1.mgr = e2.id AND e1.dept \
       = e2.id"
  in
  let implied = Els.Closure.implied q.Query.predicates in
  Alcotest.(check bool) "e1.dept = e1.mgr implied" true
    (List.exists
       (Query.Predicate.equal
          (Query.Predicate.col_eq
             (Query.Cref.v "e1" "dept")
             (Query.Cref.v "e1" "mgr")))
       implied);
  (* End to end under ELS (Section 6 machinery engages on alias e1). *)
  let truth = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  let choice = Optimizer.choose Els.Config.els db q in
  let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
  Alcotest.(check int) "executed equals truth" truth rows

let test_alias_plan_scans_source () =
  let db = emp_db () in
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp boss, emp worker WHERE worker.mgr = boss.id"
  in
  let choice = Optimizer.choose Els.Config.els db q in
  let rec scans = function
    | Exec.Plan.Scan { table; source; _ } -> [ (table, source) ]
    | Exec.Plan.Join { outer; inner; _ } -> scans outer @ scans inner
  in
  List.iter
    (fun (alias, source) ->
      Alcotest.(check string) ("source behind " ^ alias) "emp" source)
    (scans choice.Optimizer.plan)

let test_mixed_alias_and_plain () =
  let db = emp_db () in
  let rng = Datagen.Prng.create 5 in
  ignore
    (Datagen.Tablegen.register rng db ~table:"dept" ~rows:10
       [ Datagen.Tablegen.key_column "id" ~rows:10 ]);
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM emp e, dept WHERE e.dept = dept.id"
  in
  let truth = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  Alcotest.(check int) "every employee has a department" 500 truth;
  let choice = Optimizer.choose Els.Config.els db q in
  let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
  Alcotest.(check int) "optimized plan agrees" truth rows

let suite =
  [
    Alcotest.test_case "bind self-join" `Quick test_bind_self_join;
    Alcotest.test_case "duplicate aliases rejected" `Quick
      test_duplicate_alias_rejected;
    Alcotest.test_case "self-join executes and estimates" `Quick
      test_self_join_executes;
    Alcotest.test_case "self-join with local predicate" `Quick
      test_self_join_with_local_predicate;
    Alcotest.test_case "closure across aliases" `Quick
      test_alias_closure_intra_table;
    Alcotest.test_case "plans scan the source table" `Quick
      test_alias_plan_scans_source;
    Alcotest.test_case "alias mixed with plain table" `Quick
      test_mixed_alias_and_plain;
  ]
