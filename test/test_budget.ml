(* Resource budgets: the Rel.Budget primitive, the optimizer's anytime
   degradation ladder, and cooperative executor cancellation.

   The three load-bearing contracts:
   - with [?budget:None] (or an unexhausted budget) everything is
     bit-identical to the unbudgeted code path;
   - with identical inputs, a larger budget never yields a costlier
     chosen plan (the candidate ladder is budget-nested);
   - however execution stops, the budget's row count equals
     [tuples_read + tuples_output] (spends mirror the counters). *)

let methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ]

let chain seed n =
  let spec =
    Datagen.Workload.chain ~rows_range:(50, 200) ~distinct_range:(10, 60)
      ~seed ~n_tables:n ()
  in
  (spec.Datagen.Workload.db, spec.Datagen.Workload.query)

(* A fake clock the tests advance by hand: deadlines become fully
   deterministic. *)
let fake_clock start =
  let t = ref start in
  ((fun () -> !t), fun dt -> t := !t +. dt)

(* --- Budget unit tests --- *)

let test_create_validates () =
  let bad f = Alcotest.check_raises "rejects" (Invalid_argument "") (fun () ->
    try ignore (f ()) with Invalid_argument _ -> raise (Invalid_argument ""))
  in
  bad (fun () -> Rel.Budget.create ~deadline_ms:0. ());
  bad (fun () -> Rel.Budget.create ~deadline_ms:(-5.) ());
  bad (fun () -> Rel.Budget.create ~node_budget:(-1) ());
  bad (fun () -> Rel.Budget.create ~row_budget:(-1) ())

let test_node_limit_sticky () =
  let b = Rel.Budget.create ~node_budget:3 () in
  Alcotest.(check bool) "under" true (Rel.Budget.spend_node b 3 = Ok ());
  Alcotest.(check bool)
    "over trips Nodes" true
    (Rel.Budget.spend_node b 1 = Error Rel.Budget.Nodes);
  (* Sticky: every later check reports the same resource, but usage keeps
     accumulating so cancellation sites can record actual work. *)
  Alcotest.(check bool)
    "check re-reports" true
    (Rel.Budget.check b = Error Rel.Budget.Nodes);
  ignore (Rel.Budget.spend_node b 5);
  Alcotest.(check int) "usage monotone" 9 (Rel.Budget.nodes_used b);
  Alcotest.(check bool)
    "exhausted accessor" true
    (Rel.Budget.exhausted b = Some Rel.Budget.Nodes)

let test_node_trip_spares_row_path () =
  (* A Nodes trip is absorbed by the optimizer's anytime ladder, so a
     budget shared across optimize + execute must still let the chosen
     plan run: the row path only fails on its own limits. *)
  let b = Rel.Budget.create ~node_budget:1 ~row_budget:5 () in
  ignore (Rel.Budget.spend_node b 2);
  Alcotest.(check bool)
    "node path tripped" true
    (Rel.Budget.exhausted b = Some Rel.Budget.Nodes);
  Alcotest.(check bool)
    "rows still spendable" true
    (Rel.Budget.spend_rows b 5 = Ok ());
  Alcotest.(check bool)
    "row limit still enforced" true
    (Rel.Budget.spend_rows b 1 = Error Rel.Budget.Rows);
  (* The globally-blocking trip supersedes the absorbed node trip. *)
  Alcotest.(check bool)
    "escalated to Rows" true
    (Rel.Budget.exhausted b = Some Rel.Budget.Rows);
  Alcotest.(check bool)
    "node path stays tripped" true
    (Rel.Budget.spend_node b 1 = Error Rel.Budget.Nodes)

let test_row_limit () =
  let b = Rel.Budget.create ~row_budget:10 () in
  Alcotest.(check bool) "under" true (Rel.Budget.spend_rows b 10 = Ok ());
  Alcotest.(check bool)
    "over trips Rows" true
    (Rel.Budget.spend_rows b 1 = Error Rel.Budget.Rows);
  Alcotest.(check int) "rows recorded" 11 (Rel.Budget.rows_used b)

let test_fake_clock_deadline () =
  let clock, advance = fake_clock 100. in
  let b = Rel.Budget.create ~clock ~deadline_ms:10. () in
  Alcotest.(check bool) "before deadline" true (Rel.Budget.check b = Ok ());
  advance 0.009;
  Alcotest.(check bool) "still before" true (Rel.Budget.check b = Ok ());
  advance 0.002;
  Alcotest.(check bool)
    "past deadline" true
    (Rel.Budget.check b = Error Rel.Budget.Deadline);
  match Rel.Budget.remaining_ms b with
  | Some ms -> Alcotest.(check bool) "remaining negative" true (ms < 0.)
  | None -> Alcotest.fail "deadline budget must report remaining time"

let test_row_deadline_stride () =
  (* The row path only probes the deadline every stride-th spend, so the
     trip lands on a spend whose ordinal is a multiple of the stride. *)
  let clock, advance = fake_clock 0. in
  let b = Rel.Budget.create ~clock ~deadline_ms:1. () in
  advance 0.01 (* already past the deadline *);
  let tripped_at = ref 0 in
  (try
     for i = 1 to 2 * Rel.Budget.row_deadline_stride do
       match Rel.Budget.spend_rows b 1 with
       | Ok () -> ()
       | Error _ ->
         tripped_at := i;
         raise Exit
     done
   with Exit -> ());
  Alcotest.(check int)
    "trips on the stride boundary" Rel.Budget.row_deadline_stride !tripped_at

(* --- Optimizer: bit-identity with no/huge budget --- *)

let test_unbudgeted_identity () =
  List.iter
    (fun seed ->
      let db, q = chain seed 6 in
      let profile = Els.prepare Els.Config.els db q in
      let plain = Optimizer.Dp.optimize ~methods profile q in
      let budget = Rel.Budget.create ~node_budget:10_000_000 () in
      let budgeted, prov =
        Optimizer.Dp.optimize_traced ~methods ~budget profile q
      in
      (* Bit-identical, not approximately equal: an unexhausted budget
         must not perturb a single float. *)
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: cost bit-identical" seed)
        true
        (Float.equal plain.Optimizer.Dp.cost budgeted.Optimizer.Dp.cost);
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: same join order" seed)
        (Exec.Plan.join_order plain.Optimizer.Dp.plan)
        (Exec.Plan.join_order budgeted.Optimizer.Dp.plan);
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "estimate bit-identical" true (Float.equal a b))
        (Els.Incremental.history plain.Optimizer.Dp.state)
        (Els.Incremental.history budgeted.Optimizer.Dp.state);
      Alcotest.(check bool)
        "completed on the Dp rung" true
        (prov.Optimizer.Provenance.rung = Optimizer.Provenance.Dp
        && prov.Optimizer.Provenance.exhausted = None))
    [ 1; 2; 3; 4; 5 ]

let test_choose_provenance_plumbed () =
  let db, q = chain 2 5 in
  let choice = Optimizer.choose Els.Config.els db q in
  Alcotest.(check bool)
    "unbudgeted choose completes on Dp" true
    (choice.Optimizer.provenance.Optimizer.Provenance.rung
     = Optimizer.Provenance.Dp);
  let budget = Rel.Budget.create ~node_budget:4 () in
  let choice = Optimizer.choose ~budget Els.Config.els db q in
  Alcotest.(check bool)
    "tiny budget degrades but answers" true
    (choice.Optimizer.provenance.Optimizer.Provenance.exhausted
     = Some Rel.Budget.Nodes);
  Alcotest.(check (list string))
    "degraded plan still covers all tables"
    (List.sort compare q.Query.tables)
    (List.sort compare choice.Optimizer.join_order)

let test_deadline_degrades_deterministically () =
  (* A fake clock that advances on every probe: the deadline trips at a
     reproducible expansion, so two runs degrade identically. *)
  let run () =
    let db, q = chain 4 7 in
    let profile = Els.prepare Els.Config.els db q in
    let clock, advance = fake_clock 0. in
    let probing_clock () =
      advance 0.0001;
      clock ()
    in
    let budget = Rel.Budget.create ~clock:probing_clock ~deadline_ms:1. () in
    Optimizer.Dp.optimize_traced ~methods ~budget profile q
  in
  let node_a, prov_a = run () in
  let node_b, prov_b = run () in
  Alcotest.(check bool)
    "deadline tripped" true
    (prov_a.Optimizer.Provenance.exhausted = Some Rel.Budget.Deadline);
  Alcotest.(check (list string))
    "deterministic degradation"
    (Exec.Plan.join_order node_a.Optimizer.Dp.plan)
    (Exec.Plan.join_order node_b.Optimizer.Dp.plan);
  Alcotest.(check bool)
    "same rung" true
    (prov_a.Optimizer.Provenance.rung = prov_b.Optimizer.Provenance.rung)

(* --- Satellite regression: no applicable method is an error, not an
   assert false --- *)

let cartesian_db_query () =
  let rng = Datagen.Prng.create 11 in
  let db = Catalog.Db.create () in
  List.iter
    (fun table ->
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table
           ~rows:50
           [ Datagen.Tablegen.column "a" ~distinct:10 ]))
    [ "t1"; "t2" ];
  (db, Query.make ~tables:[ "t1"; "t2" ] [])

let expect_invalid_query name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_query")
  | exception Els.Els_error.Error (Els.Els_error.Invalid_query _) -> ()
  | exception exn ->
    Alcotest.fail
      (Printf.sprintf "%s: expected Invalid_query, got %s" name
         (Printexc.to_string exn))

let test_hash_only_cartesian_is_structured_error () =
  let db, q = cartesian_db_query () in
  let profile = Els.prepare Els.Config.els db q in
  expect_invalid_query "random_walk.plan_of_order" (fun () ->
      Optimizer.Random_walk.plan_of_order ~methods:[ Exec.Plan.Hash ] profile
        q.Query.tables);
  expect_invalid_query "dp" (fun () ->
      Optimizer.Dp.optimize ~methods:[ Exec.Plan.Hash ] profile q);
  expect_invalid_query "greedy" (fun () ->
      Optimizer.Greedy.optimize ~methods:[ Exec.Plan.Hash ] profile q);
  expect_invalid_query "random_walk" (fun () ->
      Optimizer.Random_walk.optimize ~methods:[ Exec.Plan.Hash ] profile q)

(* --- Executor cancellation --- *)

let test_executor_cancellation_consistent () =
  let db, q = chain 5 3 in
  let choice = Optimizer.choose Els.Config.els db q in
  let budget = Rel.Budget.create ~row_budget:10 () in
  let rows, counters, _ =
    Exec.Executor.count_result ~budget db choice.Optimizer.plan
  in
  (match rows with
  | Error (Els.Els_error.Budget_exhausted { resource; _ }) ->
    Alcotest.(check bool) "rows resource" true (resource = Rel.Budget.Rows)
  | Error e ->
    Alcotest.fail ("unexpected error: " ^ Els.Els_error.to_string e)
  | Ok _ -> Alcotest.fail "a 10-row budget must cancel this join");
  Alcotest.(check int)
    "rows_used = read + output"
    (counters.Exec.Counters.tuples_read + counters.Exec.Counters.tuples_output)
    (Rel.Budget.rows_used budget)

let test_executor_exn_style () =
  let db, q = chain 5 3 in
  let choice = Optimizer.choose Els.Config.els db q in
  let budget = Rel.Budget.create ~row_budget:5 () in
  match Exec.Executor.count ~budget db choice.Optimizer.plan with
  | _ -> Alcotest.fail "expected Budget_exhausted"
  | exception Els.Els_error.Error (Els.Els_error.Budget_exhausted _) -> ()

let test_executor_unbudgeted_identity () =
  let db, q = chain 6 3 in
  let choice = Optimizer.choose Els.Config.els db q in
  let plain_rows, plain_counters, _ =
    Exec.Executor.count db choice.Optimizer.plan
  in
  let budget = Rel.Budget.create ~row_budget:10_000_000 () in
  let rows, counters, _ = Exec.Executor.count ~budget db choice.Optimizer.plan in
  Alcotest.(check int) "same result" plain_rows rows;
  Alcotest.(check int)
    "same work" (Exec.Counters.total_work plain_counters)
    (Exec.Counters.total_work counters);
  Alcotest.(check int)
    "budget mirrored the counters"
    (counters.Exec.Counters.tuples_read + counters.Exec.Counters.tuples_output)
    (Rel.Budget.rows_used budget)

(* --- Fault crossing and soak smoke --- *)

let test_fault_budget_crossing () =
  let outcomes =
    Harness.Fault.run
      ~make_budget:(fun () -> Rel.Budget.create ~node_budget:3 ())
      ~strictness:Catalog.Validate.Repair ()
  in
  Alcotest.(check bool) "still all pass" true (Harness.Fault.all_pass outcomes);
  Alcotest.(check bool)
    "budget actually tripped" true
    (Harness.Fault.budget_trips outcomes > 0)

let test_soak_smoke () =
  let summary = Harness.Soak.run ~seed:42 ~iters:40 () in
  Alcotest.(check bool)
    (Harness.Soak.render summary)
    true
    (Harness.Soak.pass summary);
  Alcotest.(check int) "ran all iterations" 40 summary.Harness.Soak.iterations;
  Alcotest.(check bool)
    "budgets exercised" true
    (summary.Harness.Soak.budget_trips > 0)

(* --- QCheck properties --- *)

let prop_budget_monotone =
  QCheck2.Test.make ~count:60
    ~name:"larger node budget never yields a costlier plan"
    QCheck2.Gen.(
      let* seed = int_range 1 500 in
      let* n = int_range 3 6 in
      let* small = int_range 0 200 in
      let* extra = int_range 0 2_000 in
      return (seed, n, small, small + extra))
    (fun (seed, n, small, large) ->
      let db, q = chain seed n in
      let profile = Els.prepare Els.Config.els db q in
      let cost budget_n =
        let budget = Rel.Budget.create ~node_budget:budget_n () in
        (fst (Optimizer.Dp.optimize_traced ~methods ~budget profile q))
          .Optimizer.Dp.cost
      in
      cost large <= cost small)

let prop_cancellation_consistent =
  QCheck2.Test.make ~count:60
    ~name:"cancelled execution leaves rows_used = read + output"
    QCheck2.Gen.(
      let* seed = int_range 1 500 in
      let* n = int_range 2 4 in
      let* row_budget = int_range 0 3_000 in
      return (seed, n, row_budget))
    (fun (seed, n, row_budget) ->
      let db, q = chain seed n in
      let choice = Optimizer.choose Els.Config.els db q in
      let budget = Rel.Budget.create ~row_budget () in
      let _, counters, _ =
        Exec.Executor.count_result ~budget db choice.Optimizer.plan
      in
      Rel.Budget.rows_used budget
      = counters.Exec.Counters.tuples_read
        + counters.Exec.Counters.tuples_output)

let prop_unbudgeted_equals_huge_budget =
  QCheck2.Test.make ~count:40
    ~name:"huge budget is bit-identical to no budget"
    QCheck2.Gen.(
      let* seed = int_range 1 500 in
      let* n = int_range 2 6 in
      return (seed, n))
    (fun (seed, n) ->
      let db, q = chain seed n in
      let profile = Els.prepare Els.Config.els db q in
      let plain = Optimizer.Dp.optimize ~methods profile q in
      let budget = Rel.Budget.create ~node_budget:50_000_000 () in
      let budgeted = Optimizer.Dp.optimize ~methods ~budget profile q in
      Float.equal plain.Optimizer.Dp.cost budgeted.Optimizer.Dp.cost
      && Exec.Plan.join_order plain.Optimizer.Dp.plan
         = Exec.Plan.join_order budgeted.Optimizer.Dp.plan)

let suite =
  [
    Alcotest.test_case "budget: create validates" `Quick test_create_validates;
    Alcotest.test_case "budget: node limit trips and sticks" `Quick
      test_node_limit_sticky;
    Alcotest.test_case "budget: node trip spares the row path" `Quick
      test_node_trip_spares_row_path;
    Alcotest.test_case "budget: row limit" `Quick test_row_limit;
    Alcotest.test_case "budget: fake-clock deadline" `Quick
      test_fake_clock_deadline;
    Alcotest.test_case "budget: row deadline stride" `Quick
      test_row_deadline_stride;
    Alcotest.test_case "dp: unexhausted budget is bit-identical" `Quick
      test_unbudgeted_identity;
    Alcotest.test_case "choose: provenance plumbed through" `Quick
      test_choose_provenance_plumbed;
    Alcotest.test_case "dp: deadline degrades deterministically" `Quick
      test_deadline_degrades_deterministically;
    Alcotest.test_case "regression: hash-only cartesian is a structured error"
      `Quick test_hash_only_cartesian_is_structured_error;
    Alcotest.test_case "executor: cancellation is counter-consistent" `Quick
      test_executor_cancellation_consistent;
    Alcotest.test_case "executor: exception-style budget error" `Quick
      test_executor_exn_style;
    Alcotest.test_case "executor: huge budget changes nothing" `Quick
      test_executor_unbudgeted_identity;
    Alcotest.test_case "fault: budget crossing still passes" `Quick
      test_fault_budget_crossing;
    Alcotest.test_case "soak: smoke run passes" `Quick test_soak_smoke;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_budget_monotone; prop_cancellation_consistent;
        prop_unbudgeted_equals_huge_budget;
      ]
