(* Unit tests for catalog: table metadata, the registry, ANALYZE. *)

let int_ n = Rel.Value.Int n

let stored_table () =
  let schema =
    Rel.Schema.make
      [
        Rel.Schema.column ~table:"t" ~name:"a" Rel.Value.Ty_int;
        Rel.Schema.column ~table:"t" ~name:"b" Rel.Value.Ty_int;
      ]
  in
  let r = Rel.Relation.create schema in
  List.iter
    (fun (a, b) -> Rel.Relation.insert_values r [ int_ a; int_ b ])
    [ (1, 7); (2, 7); (3, 8); (3, 9) ];
  r

(* --- Table --- *)

let test_table_accessors () =
  let t = Helpers.stats_table "T" 100 [ ("A", 10) ] in
  Alcotest.(check string) "name lower-cased" "t" t.Catalog.Table.name;
  Alcotest.(check int) "row count" 100 t.Catalog.Table.row_count;
  Alcotest.(check int) "distinct by stats" 10 (Catalog.Table.distinct t "a");
  Alcotest.(check int) "distinct fallback = rows" 100
    (Catalog.Table.distinct t "nostats");
  Alcotest.(check bool) "has_column" true (Catalog.Table.has_column t "a");
  Alcotest.(check bool) "missing column" false (Catalog.Table.has_column t "z");
  Alcotest.(check bool) "stats-only has no data" true
    (t.Catalog.Table.data = None)

let test_table_col_stats () =
  let t = Helpers.stats_table "t" 100 [ ("a", 10) ] in
  Alcotest.(check bool) "col_stats found" true
    (Catalog.Table.col_stats t "A" <> None);
  Alcotest.(check bool) "col_stats missing" true
    (Catalog.Table.col_stats t "z" = None);
  Alcotest.(check bool) "col_stats_exn names the column and suggests" true
    (match Catalog.Table.col_stats_exn t "z" with
    | exception Invalid_argument msg ->
      Helpers.contains msg "column \"z\"" && Helpers.contains msg "\"a\""
    | _ -> false)

(* --- Db --- *)

let test_db_registry () =
  let db = Catalog.Db.create () in
  Catalog.Db.add db (Helpers.stats_table "t" 10 [ ("a", 2) ]);
  Catalog.Db.add db (Helpers.stats_table "u" 20 [ ("b", 3) ]);
  Alcotest.(check bool) "mem" true (Catalog.Db.mem db "T");
  Alcotest.(check int) "tables in order" 2 (List.length (Catalog.Db.tables db));
  Alcotest.(check string) "registration order preserved" "t"
    (List.hd (Catalog.Db.tables db)).Catalog.Table.name;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Catalog.Db.add: duplicate table t") (fun () ->
      Catalog.Db.add db (Helpers.stats_table "t" 1 []));
  Alcotest.(check bool) "find_exn names the table" true
    (match Catalog.Db.find_exn db "zz" with
    | exception Invalid_argument msg -> Helpers.contains msg "table \"zz\""
    | _ -> false);
  Alcotest.(check bool) "find_exn suggests a near-miss" true
    (match Catalog.Db.find_exn db "tt" with
    | exception Invalid_argument msg ->
      Helpers.contains msg "did you mean \"t\"?"
    | _ -> false)

let test_db_resolve_column () =
  let db = Catalog.Db.create () in
  Catalog.Db.add db (Helpers.stats_table "t" 10 [ ("a", 2); ("b", 2) ]);
  Catalog.Db.add db (Helpers.stats_table "u" 10 [ ("a", 2); ("c", 2) ]);
  Alcotest.(check (option (pair string string)))
    "unique resolves" (Some ("t", "b"))
    (Catalog.Db.resolve_column db "b");
  Alcotest.(check (option (pair string string)))
    "ambiguous is None" None
    (Catalog.Db.resolve_column db "a");
  Alcotest.(check (option (pair string string)))
    "missing is None" None
    (Catalog.Db.resolve_column db "zz")

let test_db_relation_exn () =
  let db = Catalog.Db.create () in
  Catalog.Db.add db (Helpers.stats_table "t" 10 [ ("a", 2) ]);
  Alcotest.(check bool) "stats-only rejected" true
    (match Catalog.Db.relation_exn db "t" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Analyze --- *)

let test_analyze_exact_stats () =
  let entry = Catalog.Analyze.table ~name:"t" (stored_table ()) in
  Alcotest.(check int) "rows" 4 entry.Catalog.Table.row_count;
  Alcotest.(check int) "distinct a" 3 (Catalog.Table.distinct entry "a");
  Alcotest.(check int) "distinct b" 3 (Catalog.Table.distinct entry "b");
  let stats = Catalog.Table.col_stats_exn entry "a" in
  Alcotest.(check bool) "min a" true
    (stats.Stats.Col_stats.min_value = Some (int_ 1));
  Alcotest.(check bool) "max a" true
    (stats.Stats.Col_stats.max_value = Some (int_ 3));
  Alcotest.(check bool) "stored" true (entry.Catalog.Table.data <> None)

let test_analyze_histograms () =
  let entry =
    Catalog.Analyze.table ~histogram:Stats.Histogram.Equi_depth
      ~histogram_buckets:2 ~name:"t" (stored_table ())
  in
  let stats = Catalog.Table.col_stats_exn entry "a" in
  Alcotest.(check bool) "histogram built" true
    (stats.Stats.Col_stats.histogram <> None)

let test_analyze_register () =
  let db = Catalog.Db.create () in
  let entry = Catalog.Analyze.register db ~name:"t" (stored_table ()) in
  Alcotest.(check bool) "registered" true (Catalog.Db.mem db "t");
  Alcotest.(check int) "same entry" entry.Catalog.Table.row_count
    (Catalog.Db.find_exn db "t").Catalog.Table.row_count;
  (* The stored relation is requalified under the catalog name. *)
  let rel = Catalog.Db.relation_exn db "t" in
  Alcotest.(check string) "schema requalified" "t"
    (Rel.Schema.get (Rel.Relation.schema rel) 0).Rel.Schema.table

(* --- Validate: histogram bucket budget --- *)

let test_validate_histogram_budget () =
  (* Analyzed histograms respect their bucket budget, and the validator's
     Excess_buckets audit agrees: check_table finds nothing to report on
     awkward value-count / bucket-count ratios. *)
  List.iter
    (fun buckets ->
      let entry =
        Catalog.Analyze.table ~histogram:Stats.Histogram.Equi_depth
          ~histogram_buckets:buckets ~name:"t" (stored_table ())
      in
      let stats = Catalog.Table.col_stats_exn entry "a" in
      (match stats.Stats.Col_stats.histogram with
      | Some h ->
        Alcotest.(check bool)
          (Printf.sprintf "%d-bucket budget honoured" buckets)
          true
          (List.length (Stats.Histogram.buckets h) <= buckets)
      | None -> Alcotest.fail "histogram missing");
      Alcotest.(check (list string)) "validator finds no issues" []
        (List.map Catalog.Validate.issue_to_string
           (Catalog.Validate.check_table entry)))
    [ 1; 2; 3; 5 ];
  (* A raw of_buckets histogram carries no budget — the audit must not
     invent one. *)
  let raw =
    Stats.Histogram.of_buckets Stats.Histogram.Equi_depth
      [ { Stats.Histogram.lo = 1.; hi = 2.; count = 3.; distinct = 2. } ]
  in
  Alcotest.(check (option int)) "raw histogram has no budget" None
    (Stats.Histogram.requested_buckets raw)

let suite =
  [
    Alcotest.test_case "table: accessors" `Quick test_table_accessors;
    Alcotest.test_case "table: col_stats" `Quick test_table_col_stats;
    Alcotest.test_case "db: registry" `Quick test_db_registry;
    Alcotest.test_case "db: resolve_column" `Quick test_db_resolve_column;
    Alcotest.test_case "db: relation_exn on stats-only" `Quick
      test_db_relation_exn;
    Alcotest.test_case "analyze: exact statistics" `Quick
      test_analyze_exact_stats;
    Alcotest.test_case "analyze: histograms" `Quick test_analyze_histograms;
    Alcotest.test_case "analyze: register" `Quick test_analyze_register;
    Alcotest.test_case "validate: histogram bucket budget" `Quick
      test_validate_histogram_budget;
  ]
