(* The F13 churn soak as a test: a short deterministic run must pass its
   own acceptance criteria end to end, and the soak harness's one-command
   repro (--iter-seed) must replay exactly one iteration. *)

let test_churn_passes () =
  let summary = Harness.Churn.run ~seed:1 ~iters:30 () in
  (match summary.Harness.Churn.first_failure with
  | None -> ()
  | Some msg -> Alcotest.fail msg);
  Alcotest.(check bool) "churn soak passes" true (Harness.Churn.pass summary);
  Alcotest.(check int) "no crashes" 0 summary.Harness.Churn.crashes;
  Alcotest.(check int) "no torn reads" 0
    summary.Harness.Churn.pinned_divergences;
  Alcotest.(check int) "no epoch regressions" 0
    summary.Harness.Churn.epoch_regressions;
  Alcotest.(check bool) "exercised the delta path" true
    (summary.Harness.Churn.inserts > 0);
  Alcotest.(check bool) "exercised publishes" true
    (summary.Harness.Churn.publishes > 0)

let test_churn_deterministic () =
  let a = Harness.Churn.run ~seed:7 ~iters:12 () in
  let b = Harness.Churn.run ~seed:7 ~iters:12 () in
  Alcotest.(check int) "same inserts" a.Harness.Churn.inserts
    b.Harness.Churn.inserts;
  Alcotest.(check int) "same publishes" a.Harness.Churn.publishes
    b.Harness.Churn.publishes;
  Alcotest.(check int) "same corruptions" a.Harness.Churn.corruptions
    b.Harness.Churn.corruptions;
  Helpers.check_float "same median q-error" a.Harness.Churn.median_q_error
    b.Harness.Churn.median_q_error

let test_churn_corruption_visible () =
  (* Over enough iterations some corrupt publishes happen; each must be
     disclosed (counted audit failures + annotated derivation cards). *)
  let summary = Harness.Churn.run ~seed:1 ~iters:40 () in
  Alcotest.(check bool) "corruptions injected" true
    (summary.Harness.Churn.corruptions > 0);
  Alcotest.(check bool) "audits caught them" true
    (summary.Harness.Churn.store.Catalog.Store.audits_failed > 0);
  Alcotest.(check bool) "cards disclosed them" true
    (summary.Harness.Churn.annotated_cards > 0);
  Alcotest.(check int) "no disclosure ever missing" 0
    summary.Harness.Churn.missing_annotations

let test_churn_render_mentions_pass () =
  let summary = Harness.Churn.run ~seed:2 ~iters:10 () in
  let text = Harness.Churn.render summary in
  Alcotest.(check bool) "render carries the verdict" true
    (Helpers.contains text "churn: PASS" || Helpers.contains text "churn: FAIL")

let test_soak_iter_seed_replays_one () =
  let summary = Harness.Soak.run ~iter_seed:424242 ~iters:50 () in
  Alcotest.(check int) "--iter-seed replays exactly one iteration" 1
    summary.Harness.Soak.iterations;
  Alcotest.(check int) "and it does not crash" 0 summary.Harness.Soak.crashes

let suite =
  [
    Alcotest.test_case "churn: 30-iteration soak passes" `Quick
      test_churn_passes;
    Alcotest.test_case "churn: deterministic under a fixed seed" `Quick
      test_churn_deterministic;
    Alcotest.test_case "churn: corruption always disclosed" `Quick
      test_churn_corruption_visible;
    Alcotest.test_case "churn: render states the verdict" `Quick
      test_churn_render_mentions_pass;
    Alcotest.test_case "soak: iter-seed replays one iteration" `Quick
      test_soak_iter_seed_replays_one;
  ]
