(* The CLI exit-code contract, pinned by running the real binary: 0 on
   success, 1 on runtime failure, 2 on usage error — and never a
   backtrace on any path. Table-driven so adding a subcommand means
   adding a row, not a test. *)

let bin = Filename.concat (Filename.concat ".." "bin") "elsdb.exe"

type case = {
  name : string;
  args : string;
  stdin : string option;
  expect : int;
}

let case ?stdin name args expect = { name; args; stdin; expect }

let cases =
  [
    case "success" "estimate" 0;
    case "version" "--version" 0;
    case "help" "--help=plain" 0;
    case "subcommand help" "serve --help=plain" 0;
    (* usage errors: the caller can fix the invocation *)
    case "unknown subcommand" "definitely-not-a-command" 2;
    case "unknown flag" "estimate --no-such-flag" 2;
    case "bad flag value" "section8 --scale=many" 2;
    case "bad sql" "estimate --sql 'SELECT nope'" 2;
    case "unknown estimator" "estimate --estimator wat" 2;
    case "unknown enumerator" "explain --enumerator sideways" 2;
    case "bad db spec" "estimate --db nope:3" 2;
    case "bad trace format" "estimate --trace=wat" 2;
    case "bad metrics format" "estimate --metrics=yaml" 2;
    case ~stdin:"this is not json" "check-metrics rejects damage"
      "check-metrics" 2;
    case ~stdin:{|{"counters":{"a":-1},"gauges":{},"histograms":{}}|}
      "check-metrics rejects bad schema" "check-metrics" 2;
    (* runtime failures: the system hit a limit or a broken state *)
    case "row budget exhausted" "run --row-budget 1" 1;
    (* the service: a clean scripted session exits 0, and its metrics
       snapshot round-trips through check-metrics *)
    case
      ~stdin:
        {|{"id":"1","op":"health"}
{"id":"2","op":"drain"}|}
      "serve clean session" "serve" 0;
  ]

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let run_case { name; args; stdin; expect } () =
  let err_file = Filename.temp_file "elsdb_cli" ".err" in
  let feed =
    match stdin with
    | None -> "</dev/null"
    | Some text ->
      (* via a temp file, not a shell pipe: the pipe would make the exit
         status ambiguous under some shells *)
      let f = Filename.temp_file "elsdb_cli" ".in" in
      Out_channel.with_open_text f (fun oc -> Out_channel.output_string oc text);
      "<" ^ Filename.quote f
  in
  let cmd =
    Printf.sprintf "%s %s %s >/dev/null 2>%s" (Filename.quote bin) args feed
      (Filename.quote err_file)
  in
  let code = Sys.command cmd in
  let stderr_text =
    In_channel.with_open_text err_file In_channel.input_all
  in
  Sys.remove err_file;
  Alcotest.(check int) (name ^ ": exit code") expect code;
  Alcotest.(check bool) (name ^ ": no backtrace") false
    (contains stderr_text "Raised at"
    || contains stderr_text "Raised by"
    || contains stderr_text "Called from")

let suite =
  List.map
    (fun c -> Alcotest.test_case c.name `Quick (run_case c))
    cases
