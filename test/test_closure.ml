(* Unit tests for predicate transitive closure (Section 4, step 2).
   One test per derivation variant 2a-2e, plus canonicity and soundness. *)

module P = Query.Predicate

let c t col = Query.Cref.v t col
let eq a b = P.col_eq a b
let lt col k = P.cmp col Rel.Cmp.Lt (Rel.Value.Int k)

let has expected actual = List.exists (P.equal expected) actual

let test_rule_2a () =
  (* (R1.x = R2.y) AND (R2.y = R3.z) ==> (R1.x = R3.z) *)
  let implied =
    Els.Closure.implied
      [ eq (c "r1" "x") (c "r2" "y"); eq (c "r2" "y") (c "r3" "z") ]
  in
  Alcotest.(check bool) "join implied" true
    (has (eq (c "r1" "x") (c "r3" "z")) implied);
  Alcotest.(check int) "exactly one" 1 (List.length implied)

let test_rule_2b () =
  (* (R1.x = R2.y) AND (R1.x = R2.w) ==> (R2.y = R2.w) *)
  let implied =
    Els.Closure.implied
      [ eq (c "r1" "x") (c "r2" "y"); eq (c "r1" "x") (c "r2" "w") ]
  in
  Alcotest.(check bool) "local implied" true
    (has (eq (c "r2" "y") (c "r2" "w")) implied)

let test_rule_2c () =
  (* (R1.x = R1.y) AND (R1.y = R1.z) ==> (R1.x = R1.z) *)
  let implied =
    Els.Closure.implied
      [ eq (c "r1" "x") (c "r1" "y"); eq (c "r1" "y") (c "r1" "z") ]
  in
  Alcotest.(check bool) "local implied" true
    (has (eq (c "r1" "x") (c "r1" "z")) implied)

let test_rule_2d () =
  (* (R1.x = R2.y) AND (R1.x = R1.v) ==> (R2.y = R1.v) *)
  let implied =
    Els.Closure.implied
      [ eq (c "r1" "x") (c "r2" "y"); eq (c "r1" "x") (c "r1" "v") ]
  in
  Alcotest.(check bool) "join implied" true
    (has (eq (c "r1" "v") (c "r2" "y")) implied)

let test_rule_2e () =
  (* (R1.x = R2.y) AND (R1.x op c) ==> (R2.y op c), for every comparison. *)
  List.iter
    (fun op ->
      let implied =
        Els.Closure.implied
          [
            eq (c "r1" "x") (c "r2" "y");
            P.cmp (c "r1" "x") op (Rel.Value.Int 500);
          ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "constant propagated through %s" (Rel.Cmp.to_string op))
        true
        (has (P.cmp (c "r2" "y") op (Rel.Value.Int 500)) implied))
    Rel.Cmp.[ Eq; Ne; Lt; Le; Gt; Ge ]

let test_duplicates_removed () =
  let p = lt (c "r1" "x") 500 in
  let closed = (Els.Closure.compute [ p; p; p ]).Els.Closure.predicates in
  Alcotest.(check int) "deduplicated" 1 (List.length closed)

let test_canonical_for_equivalent_queries () =
  (* Two spellings of the same query close to the same conjunction. *)
  let a =
    [ eq (c "r1" "x") (c "r2" "y"); eq (c "r2" "y") (c "r3" "z") ]
  in
  let b =
    [ eq (c "r3" "z") (c "r2" "y"); eq (c "r1" "x") (c "r3" "z") ]
  in
  let ca = (Els.Closure.compute a).Els.Closure.predicates in
  let cb = (Els.Closure.compute b).Els.Closure.predicates in
  Alcotest.(check (list string))
    "same closed set"
    (List.map P.to_string ca)
    (List.map P.to_string cb)

let test_section8_closure () =
  (* The paper's Section 8 rewrite: 3 join predicates and one local
     predicate close to 6 join predicates and 4 local predicates. *)
  let q = Helpers.section8_query () in
  let closed = (Els.Closure.compute q.Query.predicates).Els.Closure.predicates in
  let joins = List.filter P.is_join closed in
  let locals = List.filter P.is_local closed in
  Alcotest.(check int) "6 join predicates" 6 (List.length joins);
  Alcotest.(check int) "4 local predicates" 4 (List.length locals);
  Alcotest.(check bool) "m < 100 implied" true
    (has (lt (c "m" "m") 100) locals);
  Alcotest.(check bool) "g < 100 implied" true (has (lt (c "g" "g") 100) locals)

let test_closure_idempotent () =
  let preds = (Helpers.section8_query ()).Query.predicates in
  let once = (Els.Closure.compute preds).Els.Closure.predicates in
  let twice = (Els.Closure.compute once).Els.Closure.predicates in
  Alcotest.(check (list string))
    "closing twice adds nothing"
    (List.map P.to_string once)
    (List.map P.to_string twice)

(* Soundness: every implied predicate holds on the actual join result. *)
let test_closure_sound_on_data () =
  let db = Datagen.Section8.build ~scale:20 ~seed:3 () in
  let q = Datagen.Section8.query_scaled ~scale:20 in
  let closed = Els.Closure.close_query q in
  (* Execute the original query (all columns) and check every implied
     predicate against every result tuple. *)
  let result =
    Exec.Executor.run_query db (Query.make ~tables:q.Query.tables q.Query.predicates)
  in
  let schema = Rel.Relation.schema result.Exec.Executor.relation in
  Alcotest.(check bool) "nonempty result" true (result.Exec.Executor.row_count > 0);
  List.iter
    (fun p ->
      let holds = Query.Eval.compile schema p in
      Rel.Relation.iter
        (fun tuple ->
          Alcotest.(check bool)
            (Printf.sprintf "%s holds on result" (P.to_string p))
            true (holds tuple))
        result.Exec.Executor.relation)
    closed.Query.predicates

let test_close_query () =
  let q = Helpers.section8_query () in
  let closed = Els.Closure.close_query q in
  Alcotest.(check int) "10 predicates" 10 (List.length closed.Query.predicates);
  Alcotest.(check (list string)) "tables unchanged" q.Query.tables
    closed.Query.tables

let suite =
  [
    Alcotest.test_case "rule 2a: join+join -> join" `Quick test_rule_2a;
    Alcotest.test_case "rule 2b: join+join -> local" `Quick test_rule_2b;
    Alcotest.test_case "rule 2c: local+local -> local" `Quick test_rule_2c;
    Alcotest.test_case "rule 2d: join+local -> join" `Quick test_rule_2d;
    Alcotest.test_case "rule 2e: constant propagation" `Quick test_rule_2e;
    Alcotest.test_case "duplicates removed" `Quick test_duplicates_removed;
    Alcotest.test_case "canonical for equivalent queries" `Quick
      test_canonical_for_equivalent_queries;
    Alcotest.test_case "section 8 closure" `Quick test_section8_closure;
    Alcotest.test_case "idempotent" `Quick test_closure_idempotent;
    Alcotest.test_case "sound on executed data" `Quick
      test_closure_sound_on_data;
    Alcotest.test_case "close_query" `Quick test_close_query;
  ]
