(* Unit tests for CSV ingestion. *)

let load ?separator text = Rel.Csv.relation_of_string ?separator ~table:"t" text

let col_ty rel i = (Rel.Schema.get (Rel.Relation.schema rel) i).Rel.Schema.ty

let test_basic_load () =
  let rel = load "id,name,score\n1,alice,3.5\n2,bob,4\n" in
  Alcotest.(check int) "rows" 2 (Rel.Relation.cardinality rel);
  Alcotest.(check int) "cols" 3 (Rel.Schema.arity (Rel.Relation.schema rel));
  Alcotest.(check string) "int col" "int" (Rel.Value.ty_name (col_ty rel 0));
  Alcotest.(check string) "string col" "string"
    (Rel.Value.ty_name (col_ty rel 1));
  (* 4 widens to float because 3.5 appeared. *)
  Alcotest.(check string) "float col" "float" (Rel.Value.ty_name (col_ty rel 2));
  Alcotest.(check bool) "value read" true
    (Rel.Value.equal (Rel.Relation.get rel 1).(1) (Rel.Value.String "bob"));
  Alcotest.(check bool) "int widened" true
    (Rel.Value.equal (Rel.Relation.get rel 1).(2) (Rel.Value.Float 4.))

let test_nulls_and_bools () =
  let rel = load "flag,v\ntrue,1\n,2\nfalse,\n" in
  Alcotest.(check string) "bool col survives nulls" "bool"
    (Rel.Value.ty_name (col_ty rel 0));
  Alcotest.(check bool) "null flag" true
    (Rel.Value.is_null (Rel.Relation.get rel 1).(0));
  Alcotest.(check bool) "null v" true
    (Rel.Value.is_null (Rel.Relation.get rel 2).(1));
  Alcotest.(check int) "distinct skips null" 2 (Rel.Relation.distinct_count rel 0)

let test_quoting () =
  let rel = load "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n\"line\nbreak\",2\n" in
  Alcotest.(check bool) "separator inside quotes" true
    (Rel.Value.equal (Rel.Relation.get rel 0).(0) (Rel.Value.String "x,y"));
  Alcotest.(check bool) "escaped quote" true
    (Rel.Value.equal (Rel.Relation.get rel 0).(1)
       (Rel.Value.String "say \"hi\""));
  Alcotest.(check bool) "newline inside quotes" true
    (Rel.Value.equal (Rel.Relation.get rel 1).(0)
       (Rel.Value.String "line\nbreak"))

let test_quoted_empty_vs_missing () =
  let rel = load "a\n\"\"\n\n5\n" in
  (* "" is the empty string; in a single-column file a blank line is a
     NULL row. *)
  Alcotest.(check int) "three rows" 3 (Rel.Relation.cardinality rel);
  Alcotest.(check string) "column typed string" "string"
    (Rel.Value.ty_name (col_ty rel 0));
  Alcotest.(check bool) "empty string kept" true
    (Rel.Value.equal (Rel.Relation.get rel 0).(0) (Rel.Value.String ""));
  Alcotest.(check bool) "blank line is NULL" true
    (Rel.Value.is_null (Rel.Relation.get rel 1).(0));
  (* In a two-column file the blank line is dropped. *)
  let rel2 = load "a,b\n1,2\n\n3,4\n" in
  Alcotest.(check int) "blank dropped" 2 (Rel.Relation.cardinality rel2)

let test_crlf_and_no_trailing_newline () =
  let rel = load "a,b\r\n1,2\r\n3,4" in
  Alcotest.(check int) "rows" 2 (Rel.Relation.cardinality rel);
  Alcotest.(check bool) "last row kept" true
    (Rel.Value.equal (Rel.Relation.get rel 1).(1) (Rel.Value.Int 4))

let test_custom_separator () =
  let rel = load ~separator:';' "a;b\n1;2\n" in
  Alcotest.(check int) "cols" 2 (Rel.Schema.arity (Rel.Relation.schema rel))

let test_errors () =
  List.iter
    (fun text ->
      Alcotest.(check bool) text true
        (match load text with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      "";                (* empty input *)
      "a,b\n1\n";        (* ragged row *)
      "a,a\n1,2\n";      (* duplicate column *)
      ",b\n1,2\n";       (* empty header name *)
      "a\n\"open\n";     (* unterminated quote *)
    ]

let test_file_roundtrip_and_query () =
  let path = Filename.temp_file "elsdb_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "uid,dept\n1,10\n2,10\n3,20\n4,20\n5,20\n";
      close_out oc;
      let rel = Rel.Csv.relation_of_file ~table:"emp" path in
      let db = Catalog.Db.create () in
      ignore (Catalog.Analyze.register db ~name:"emp" rel);
      (* The loaded table is immediately queryable end to end. *)
      let q =
        Sqlfront.Binder.compile_exn db
          "SELECT COUNT(*) FROM emp WHERE dept = 20"
      in
      Alcotest.(check int) "query over CSV" 3
        (Exec.Executor.run_query db q).Exec.Executor.row_count)

let test_to_string () =
  let rel = load "a,b\n1,x\n,\"q,r\"\n" in
  let text = Rel.Csv.to_string rel in
  Alcotest.(check string) "rendering" "a,b\n1,x\n,\"q,r\"\n" text;
  (* And it parses back to the same values. *)
  let back = Rel.Csv.relation_of_string ~table:"t" text in
  Alcotest.(check int) "rows back" 2 (Rel.Relation.cardinality back);
  Alcotest.(check bool) "null back" true
    (Rel.Value.is_null (Rel.Relation.get back 1).(0))

let test_to_file_roundtrip () =
  let rel = load "k,v\n1,10\n2,20\n" in
  let path = Filename.temp_file "elsdb_out" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Rel.Csv.to_file rel path;
      let back = Rel.Csv.relation_of_file ~table:"t" path in
      Alcotest.(check bool) "equal rows" true
        (List.for_all2 Rel.Tuple.equal (Rel.Relation.to_list rel)
           (Rel.Relation.to_list back)))

let suite =
  [
    Alcotest.test_case "basic load and inference" `Quick test_basic_load;
    Alcotest.test_case "nulls and booleans" `Quick test_nulls_and_bools;
    Alcotest.test_case "quoting" `Quick test_quoting;
    Alcotest.test_case "quoted empty vs missing" `Quick
      test_quoted_empty_vs_missing;
    Alcotest.test_case "CRLF and trailing newline" `Quick
      test_crlf_and_no_trailing_newline;
    Alcotest.test_case "custom separator" `Quick test_custom_separator;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "file roundtrip + query" `Quick
      test_file_roundtrip_and_query;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "to_file roundtrip" `Quick test_to_file_roundtrip;
  ]
