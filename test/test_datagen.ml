(* Unit tests for data/workload generation. *)

let check_float = Helpers.check_float

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Datagen.Prng.create 123 and b = Datagen.Prng.create 123 in
  let xs = List.init 20 (fun _ -> Datagen.Prng.int a 1000) in
  let ys = List.init 20 (fun _ -> Datagen.Prng.int b 1000) in
  Alcotest.(check (list int)) "same seed same stream" xs ys;
  let c = Datagen.Prng.create 124 in
  let zs = List.init 20 (fun _ -> Datagen.Prng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_prng_bounds () =
  let rng = Datagen.Prng.create 5 in
  for _ = 1 to 1000 do
    let x = Datagen.Prng.int rng 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    let y = Datagen.Prng.int_in rng 5 9 in
    Alcotest.(check bool) "in [5,9]" true (y >= 5 && y <= 9);
    let f = Datagen.Prng.float rng in
    Alcotest.(check bool) "in [0,1)" true (f >= 0. && f < 1.)
  done;
  Alcotest.(check bool) "bad bound" true
    (match Datagen.Prng.int rng 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_prng_shuffle_is_permutation () =
  let rng = Datagen.Prng.create 5 in
  let arr = Array.init 100 Fun.id in
  Datagen.Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (arr <> Array.init 100 Fun.id)

(* --- Distribution --- *)

let test_exact_uniform_counts () =
  let rng = Datagen.Prng.create 9 in
  let values =
    Datagen.Distribution.generate Datagen.Distribution.Exact_uniform rng
      ~rows:1000 ~distinct:10
  in
  let counts = Hashtbl.create 10 in
  Array.iter
    (fun v ->
      Hashtbl.replace counts v (1 + Option.value (Hashtbl.find_opt counts v) ~default:0))
    values;
  Alcotest.(check int) "exactly d distinct" 10 (Hashtbl.length counts);
  Hashtbl.iter
    (fun v n -> Alcotest.(check int) (Printf.sprintf "value %d count" v) 100 n)
    counts

let test_random_uniform_domain () =
  let rng = Datagen.Prng.create 9 in
  let values =
    Datagen.Distribution.generate Datagen.Distribution.Random_uniform rng
      ~rows:5000 ~distinct:50
  in
  Array.iter
    (fun v -> Alcotest.(check bool) "in domain" true (v >= 1 && v <= 50))
    values

let test_zipf_weights () =
  let w = Datagen.Distribution.zipf_weights ~theta:1. ~n:100 in
  check_float ~eps:1e-9 "normalized" 1. (Array.fold_left ( +. ) 0. w);
  Alcotest.(check bool) "descending" true (w.(0) > w.(50));
  let w0 = Datagen.Distribution.zipf_weights ~theta:0. ~n:10 in
  check_float ~eps:1e-9 "theta 0 uniform" 0.1 w0.(3)

let test_zipf_skew () =
  let rng = Datagen.Prng.create 3 in
  let values =
    Datagen.Distribution.generate (Datagen.Distribution.Zipf 1.2) rng
      ~rows:10000 ~distinct:100
  in
  let ones = Array.fold_left (fun acc v -> if v = 1 then acc + 1 else acc) 0 values in
  Alcotest.(check bool) "rank 1 dominates" true (ones > 1000);
  Array.iter
    (fun v -> Alcotest.(check bool) "in domain" true (v >= 1 && v <= 100))
    values

(* --- Tablegen --- *)

let test_tablegen_relation () =
  let rng = Datagen.Prng.create 1 in
  let rel =
    Datagen.Tablegen.relation rng ~table:"t" ~rows:100
      [
        Datagen.Tablegen.key_column "k" ~rows:100;
        Datagen.Tablegen.column "v" ~distinct:10;
      ]
  in
  Alcotest.(check int) "rows" 100 (Rel.Relation.cardinality rel);
  Alcotest.(check int) "key distinct" 100 (Rel.Relation.distinct_count rel 0);
  Alcotest.(check int) "v distinct" 10 (Rel.Relation.distinct_count rel 1)

let test_tablegen_register_stats () =
  let db = Catalog.Db.create () in
  let rng = Datagen.Prng.create 1 in
  let entry =
    Datagen.Tablegen.register rng db ~table:"t" ~rows:50
      [ Datagen.Tablegen.column "v" ~distinct:5 ]
  in
  Alcotest.(check int) "analyzed distinct" 5 (Catalog.Table.distinct entry "v");
  Alcotest.(check bool) "registered and stored" true
    (Rel.Relation.cardinality (Catalog.Db.relation_exn db "t") = 50)

(* --- Section8 --- *)

let test_section8_db () =
  let db = Datagen.Section8.build ~scale:100 ~seed:1 () in
  List.iter
    (fun (t, rows) ->
      let entry = Catalog.Db.find_exn db t in
      Alcotest.(check int) (t ^ " rows") rows entry.Catalog.Table.row_count;
      Alcotest.(check int) (t ^ " key distinct") rows
        (Catalog.Table.distinct entry t))
    [ ("s", 10); ("m", 100); ("b", 500); ("g", 1000) ];
  Alcotest.(check bool) "scale validation" true
    (match Datagen.Section8.build ~scale:0 ~seed:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_section8_true_size () =
  (* The defining property: with key joins and s < cutoff, the full join
     has exactly cutoff-1 rows. *)
  let db = Datagen.Section8.build ~scale:20 ~seed:7 () in
  let q = Datagen.Section8.query_scaled ~scale:20 in
  Alcotest.(check int) "exactly cutoff-1 rows" 4
    (Exec.Executor.run_query db q).Exec.Executor.row_count

(* --- Workload --- *)

let test_chain_workload () =
  let spec = Datagen.Workload.chain ~seed:4 ~n_tables:4 () in
  Alcotest.(check int) "tables" 4
    (List.length spec.Datagen.Workload.query.Query.tables);
  Alcotest.(check int) "chain predicates" 3
    (List.length spec.Datagen.Workload.query.Query.predicates);
  (* All join columns collapse into one class after closure. *)
  let closure =
    Els.Closure.compute spec.Datagen.Workload.query.Query.predicates
  in
  Alcotest.(check int) "single class" 1
    (List.length
       (List.filter
          (fun cls -> List.length cls > 1)
          (Els.Eqclass.classes closure.Els.Closure.classes)));
  Alcotest.(check bool) "tables stored" true
    (Rel.Relation.cardinality
       (Catalog.Db.relation_exn spec.Datagen.Workload.db "t1")
    > 0)

let test_star_workload () =
  let spec = Datagen.Workload.star ~seed:4 ~n_dims:3 () in
  Alcotest.(check int) "tables" 4
    (List.length spec.Datagen.Workload.query.Query.tables);
  Alcotest.(check int) "predicates" 3
    (List.length spec.Datagen.Workload.query.Query.predicates);
  let closure =
    Els.Closure.compute spec.Datagen.Workload.query.Query.predicates
  in
  Alcotest.(check int) "three classes" 3
    (List.length
       (List.filter
          (fun cls -> List.length cls > 1)
          (Els.Eqclass.classes closure.Els.Closure.classes)))

let test_workload_validation () =
  Alcotest.(check bool) "chain needs 2" true
    (match Datagen.Workload.chain ~seed:1 ~n_tables:1 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "star needs 1" true
    (match Datagen.Workload.star ~seed:1 ~n_dims:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "prng: deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng: shuffle permutes" `Quick
      test_prng_shuffle_is_permutation;
    Alcotest.test_case "distribution: exact uniform" `Quick
      test_exact_uniform_counts;
    Alcotest.test_case "distribution: random uniform domain" `Quick
      test_random_uniform_domain;
    Alcotest.test_case "distribution: zipf weights" `Quick test_zipf_weights;
    Alcotest.test_case "distribution: zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "tablegen: relation" `Quick test_tablegen_relation;
    Alcotest.test_case "tablegen: register" `Quick test_tablegen_register_stats;
    Alcotest.test_case "section8: catalog numbers" `Quick test_section8_db;
    Alcotest.test_case "section8: true size" `Quick test_section8_true_size;
    Alcotest.test_case "workload: chain" `Quick test_chain_workload;
    Alcotest.test_case "workload: star" `Quick test_star_workload;
    Alcotest.test_case "workload: validation" `Quick test_workload_validation;
  ]
