(* Tests for the Els root-module API, configuration naming, and
   selectivity helpers not covered elsewhere. *)

let check_float = Helpers.check_float

let test_config_names () =
  Alcotest.(check string) "els" "ELS" (Els.Config.name Els.Config.els);
  Alcotest.(check string) "sss" "SSS" (Els.Config.name Els.Config.sss);
  Alcotest.(check string) "sm" "SM" (Els.Config.name (Els.Config.sm ~ptc:false));
  Alcotest.(check string) "sm+ptc" "SM+PTC"
    (Els.Config.name (Els.Config.sm ~ptc:true));
  let custom = { Els.Config.els with Els.Config.single_table = false } in
  Alcotest.(check bool) "custom name descriptive" true
    (String.length (Els.Config.name custom) > 5);
  Alcotest.(check string) "rule names" "M/SS/LS"
    (String.concat "/"
       (List.map Els.Config.rule_name
          Els.Config.[ Multiplicative; Smallest; Largest ]))

let test_root_convenience () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  check_float "estimate" 1000.
    (Els.estimate Els.Config.els db q [ "r1"; "r2"; "r3" ]);
  Alcotest.(check (list (float 1e-9)))
    "intermediate sizes" [ 1000.; 1000. ]
    (Els.intermediate_sizes Els.Config.els db q [ "r2"; "r3"; "r1" ])

let test_selectivity_of_cards () =
  check_float "basic" 0.01 (Els.Selectivity.of_cards 100. 10.);
  check_float "symmetric" (Els.Selectivity.of_cards 10. 100.)
    (Els.Selectivity.of_cards 100. 10.);
  check_float "zero card joins nothing" 0. (Els.Selectivity.of_cards 0. 10.);
  check_float "capped at 1" 1. (Els.Selectivity.of_cards 0.5 0.25)

let test_selectivity_join_rejects_locals () =
  let db = Helpers.section6_db () in
  let q = Helpers.section6_query () in
  let profile = Els.prepare Els.Config.els db q in
  Alcotest.(check bool) "local predicate rejected" true
    (match
       Els.Selectivity.join profile
         (Query.Predicate.col_eq (Query.Cref.v "r2" "y")
            (Query.Cref.v "r2" "w"))
     with
    | exception Invalid_argument _ -> true
    | (_ : float) -> false)

let test_group_by_class () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db q in
  let x = Query.Cref.v "r1" "x"
  and y = Query.Cref.v "r2" "y"
  and z = Query.Cref.v "r3" "z" in
  let preds =
    [ Query.Predicate.col_eq x y; Query.Predicate.col_eq x z;
      Query.Predicate.col_eq y z ]
  in
  let groups = Els.Selectivity.group_by_class profile preds in
  Alcotest.(check int) "single class, single group" 1 (List.length groups);
  Alcotest.(check int) "all three predicates grouped" 3
    (List.length (List.hd groups))

let test_group_by_class_multi () =
  (* A star has one class per dimension key. *)
  let spec = Datagen.Workload.star ~fact_rows:100 ~seed:2 ~n_dims:3 () in
  let q = spec.Datagen.Workload.query in
  let profile = Els.prepare Els.Config.els spec.Datagen.Workload.db q in
  let groups =
    Els.Selectivity.group_by_class profile (Query.join_predicates q)
  in
  Alcotest.(check int) "three groups" 3 (List.length groups);
  List.iter
    (fun g -> Alcotest.(check int) "one predicate each" 1 (List.length g))
    groups

let test_profile_join_card_fallback () =
  (* A column never mentioned in predicates falls back to base rows. *)
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db q in
  check_float "fallback" 100.
    (Els.Profile.join_card profile (Query.Cref.v "r1" "unmentioned"))

let test_close_query_preserves_shape () =
  let q = Helpers.section8_query () in
  let closed = Els.Closure.close_query q in
  Alcotest.(check bool) "projection preserved" true
    (closed.Query.projection = q.Query.projection);
  Alcotest.(check (list string)) "tables preserved" q.Query.tables
    closed.Query.tables;
  Alcotest.(check bool) "sources preserved" true
    (closed.Query.sources = q.Query.sources)

let test_query_source_api () =
  let q =
    Query.make
      ~sources:[ ("e1", "emp"); ("e2", "emp") ]
      ~tables:[ "e1"; "e2" ] []
  in
  Alcotest.(check string) "mapped" "emp" (Query.source q "e1");
  Alcotest.(check string) "case-insensitive" "emp" (Query.source q "E2");
  Alcotest.(check bool) "unknown alias in sources rejected" true
    (match Query.make ~sources:[ ("zz", "emp") ] ~tables:[ "e1" ] [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cross_class_contradiction () =
  (* x = 5 on r1.x and y = 7 on r2.y with x = y: closure propagates both
     constants onto both columns, every column contradicts, the whole
     estimate collapses to 0 (the query is provably empty). *)
  let db = Helpers.example1_db () in
  let x = Query.Cref.v "r1" "x" and y = Query.Cref.v "r2" "y" in
  let q =
    Query.make ~tables:[ "r1"; "r2" ]
      [
        Query.Predicate.col_eq x y;
        Query.Predicate.cmp x Rel.Cmp.Eq (Rel.Value.Int 5);
        Query.Predicate.cmp y Rel.Cmp.Eq (Rel.Value.Int 7);
      ]
  in
  check_float "empty query detected" 0.
    (Els.estimate Els.Config.els db q [ "r1"; "r2" ]);
  (* Without closure the contradiction is invisible to the estimator. *)
  Alcotest.(check bool) "invisible without closure" true
    (Els.estimate (Els.Config.sm ~ptc:false) db q [ "r1"; "r2" ] > 0.)

let test_explain_annotations () =
  let db = Datagen.Section8.build ~scale:50 ~seed:1 () in
  let q = Datagen.Section8.query_scaled ~scale:50 in
  let choice = Optimizer.choose Els.Config.els db q in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Optimizer.explain ppf choice;
  Format.pp_print_flush ppf ();
  let text = Buffer.contents buf in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec loop i = i + n <= h && (String.sub text i n = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "has per-join estimates" true
    (contains "(est rows:");
  Alcotest.(check bool) "names the algorithm" true (contains "ELS")

let suite =
  [
    Alcotest.test_case "config names" `Quick test_config_names;
    Alcotest.test_case "root convenience functions" `Quick
      test_root_convenience;
    Alcotest.test_case "selectivity of_cards" `Quick test_selectivity_of_cards;
    Alcotest.test_case "join selectivity rejects locals" `Quick
      test_selectivity_join_rejects_locals;
    Alcotest.test_case "group_by_class: single class" `Quick
      test_group_by_class;
    Alcotest.test_case "group_by_class: multiple classes" `Quick
      test_group_by_class_multi;
    Alcotest.test_case "join_card fallback" `Quick
      test_profile_join_card_fallback;
    Alcotest.test_case "close_query preserves shape" `Quick
      test_close_query_preserves_shape;
    Alcotest.test_case "query source api" `Quick test_query_source_api;
    Alcotest.test_case "cross-class contradiction" `Quick
      test_cross_class_contradiction;
    Alcotest.test_case "explain annotations" `Quick test_explain_annotations;
  ]
