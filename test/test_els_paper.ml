(* The paper's worked examples, checked number by number. *)

let check_float = Helpers.check_float

(* Example 1b: join selectivities from Equation 2. *)
let test_example1b_selectivities () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db q in
  let sel a b =
    Els.Selectivity.join profile
      (Query.Predicate.col_eq
         (Query.Cref.v (fst a) (snd a))
         (Query.Cref.v (fst b) (snd b)))
  in
  check_float "S_J1" 0.01 (sel ("r1", "x") ("r2", "y"));
  check_float "S_J2" 0.001 (sel ("r2", "y") ("r3", "z"));
  check_float "S_J3" 0.001 (sel ("r1", "x") ("r3", "z"))

(* Example 1b: ‖R2 ⋈ R3‖ = 1000 and ‖R1 ⋈ R2 ⋈ R3‖ = 1000. *)
let test_example1b_sizes () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db q in
  let st = Els.Incremental.estimate_order profile [ "r2"; "r3" ] in
  check_float "‖R2 ⋈ R3‖" 1000. st.Els.Incremental.size;
  check_float "‖R1 ⋈ R2 ⋈ R3‖" 1000.
    (Els.Incremental.final_size profile [ "r1"; "r2"; "r3" ])

(* Example 2: Rule M estimates (R2 ⋈ R3) ⋈ R1 as 1 (the correct answer is
   1000). *)
let test_example2_rule_m () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let profile = Els.prepare (Els.Config.sm ~ptc:true) db q in
  check_float "Rule M underestimate" 1.
    (Els.Incremental.final_size profile [ "r2"; "r3"; "r1" ])

(* Example 3: Rule SS estimates 100; Rule LS estimates 1000 (correct). *)
let test_example3_rules_ss_ls () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let p_ss = Els.prepare Els.Config.sss db q in
  check_float "Rule SS underestimate" 100.
    (Els.Incremental.final_size p_ss [ "r2"; "r3"; "r1" ]);
  let p_ls = Els.prepare Els.Config.els db q in
  check_float "Rule LS correct" 1000.
    (Els.Incremental.final_size p_ls [ "r2"; "r3"; "r1" ])

(* Rule LS is order-independent on the example: every join order of the
   single equivalence class yields 1000. *)
let test_example_ls_order_independent () =
  let db = Helpers.example1_db () in
  let q = Helpers.example1_query () in
  let profile = Els.prepare Els.Config.els db q in
  let orders =
    [
      [ "r1"; "r2"; "r3" ]; [ "r1"; "r3"; "r2" ]; [ "r2"; "r1"; "r3" ];
      [ "r2"; "r3"; "r1" ]; [ "r3"; "r1"; "r2" ]; [ "r3"; "r2"; "r1" ];
    ]
  in
  List.iter
    (fun order ->
      check_float
        (Printf.sprintf "order %s" (String.concat "," order))
        1000.
        (Els.Incremental.final_size profile order))
    orders

(* Section 5 numeric example: the urn model vs the linear estimate. *)
let test_section5_urn_example () =
  Alcotest.(check int)
    "urn estimate d'_x" 9933
    (Stats.Urn.expected_distinct_int ~urns:10000 ~balls:50000);
  Alcotest.(check int)
    "no reduction when ‖R‖' = ‖R‖" 10000
    (Stats.Urn.expected_distinct_int ~urns:10000 ~balls:100000)

(* Section 6 example: ‖R2‖' = 20 and effective join cardinality 9. *)
let test_section6_example () =
  let db = Helpers.section6_db () in
  let q = Helpers.section6_query () in
  let profile = Els.prepare Els.Config.els db q in
  let r2 = Els.Profile.table profile "r2" in
  check_float "‖R2‖'" 20. r2.Els.Profile.rows;
  let y = Query.Cref.v "r2" "y" and w = Query.Cref.v "r2" "w" in
  check_float "effective card of y" 9. (Els.Profile.join_card profile y);
  check_float "effective card of w" 9. (Els.Profile.join_card profile w)

(* The implied intra-table predicate (R2.y = R2.w) appears via closure. *)
let test_section6_closure_adds_local () =
  let q = Helpers.section6_query () in
  let implied = Els.Closure.implied q.Query.predicates in
  let expected =
    Query.Predicate.col_eq (Query.Cref.v "r2" "y") (Query.Cref.v "r2" "w")
  in
  Alcotest.(check bool)
    "y = w implied" true
    (List.exists (Query.Predicate.equal expected) implied)

let suite =
  [
    Alcotest.test_case "example 1b: selectivities" `Quick
      test_example1b_selectivities;
    Alcotest.test_case "example 1b: sizes" `Quick test_example1b_sizes;
    Alcotest.test_case "example 2: rule M" `Quick test_example2_rule_m;
    Alcotest.test_case "example 3: rules SS vs LS" `Quick
      test_example3_rules_ss_ls;
    Alcotest.test_case "rule LS order independence" `Quick
      test_example_ls_order_independent;
    Alcotest.test_case "section 5: urn example" `Quick
      test_section5_urn_example;
    Alcotest.test_case "section 6: single-table example" `Quick
      test_section6_example;
    Alcotest.test_case "section 6: implied local predicate" `Quick
      test_section6_closure_adds_local;
  ]
