(* Unit tests for the greedy and randomized join enumerators. *)

let chain seed n =
  let spec =
    Datagen.Workload.chain ~rows_range:(50, 200) ~distinct_range:(10, 60)
      ~seed ~n_tables:n ()
  in
  (spec.Datagen.Workload.db, spec.Datagen.Workload.query)

let methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ]

let test_greedy_full_plan () =
  let db, q = chain 3 5 in
  let profile = Els.prepare Els.Config.els db q in
  let node = Optimizer.Greedy.optimize ~methods profile q in
  Alcotest.(check (list string))
    "covers all tables"
    (List.sort compare q.Query.tables)
    (List.sort compare (Exec.Plan.join_order node.Optimizer.Dp.plan));
  Alcotest.(check bool) "cost positive" true (node.Optimizer.Dp.cost > 0.)

let test_greedy_never_beats_dp () =
  (* DP is exhaustive over left-deep plans, so greedy's estimated cost can
     never be lower. *)
  List.iter
    (fun seed ->
      let db, q = chain seed 5 in
      let profile = Els.prepare Els.Config.els db q in
      let dp = Optimizer.Dp.optimize ~methods profile q in
      let greedy = Optimizer.Greedy.optimize ~methods profile q in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: dp <= greedy" seed)
        true
        (dp.Optimizer.Dp.cost <= greedy.Optimizer.Dp.cost +. 1e-6))
    [ 1; 2; 3; 4 ]

let test_random_walk_never_beats_dp () =
  List.iter
    (fun seed ->
      let db, q = chain seed 5 in
      let profile = Els.prepare Els.Config.els db q in
      let dp = Optimizer.Dp.optimize ~methods profile q in
      let rw = Optimizer.Random_walk.optimize ~methods ~seed:7 profile q in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: dp <= random" seed)
        true
        (dp.Optimizer.Dp.cost <= rw.Optimizer.Dp.cost +. 1e-6))
    [ 1; 2; 3 ]

let test_random_walk_deterministic () =
  let db, q = chain 2 5 in
  let profile = Els.prepare Els.Config.els db q in
  let a = Optimizer.Random_walk.optimize ~methods ~seed:5 profile q in
  let b = Optimizer.Random_walk.optimize ~methods ~seed:5 profile q in
  Alcotest.(check (list string))
    "same seed, same plan"
    (Exec.Plan.join_order a.Optimizer.Dp.plan)
    (Exec.Plan.join_order b.Optimizer.Dp.plan);
  Helpers.check_float "same cost" a.Optimizer.Dp.cost b.Optimizer.Dp.cost

let test_plan_of_order () =
  let db, q = chain 1 4 in
  let profile = Els.prepare Els.Config.els db q in
  let node =
    Optimizer.Random_walk.plan_of_order ~methods profile q.Query.tables
  in
  Alcotest.(check (list string))
    "order respected" q.Query.tables
    (Exec.Plan.join_order node.Optimizer.Dp.plan)

let test_enumerator_plans_execute () =
  let db, q = chain 4 5 in
  let expected = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  List.iter
    (fun enumerator ->
      let choice = Optimizer.choose ~enumerator Els.Config.els db q in
      let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
      Alcotest.(check int) "correct result" expected rows)
    [
      Optimizer.Exhaustive; Optimizer.Greedy_order; Optimizer.Randomized 3;
    ]

let test_single_and_two_tables () =
  let db = Datagen.Section8.build ~scale:100 ~seed:1 () in
  let one = Query.make ~tables:[ "s" ] [] in
  let two =
    Query.make ~tables:[ "s"; "m" ]
      [ Query.Predicate.col_eq (Query.Cref.v "s" "s") (Query.Cref.v "m" "m") ]
  in
  List.iter
    (fun q ->
      let profile = Els.prepare Els.Config.els db q in
      List.iter
        (fun node ->
          Alcotest.(check int) "tables covered"
            (List.length q.Query.tables)
            (List.length (Exec.Plan.join_order node.Optimizer.Dp.plan)))
        [
          Optimizer.Greedy.optimize ~methods profile q;
          Optimizer.Random_walk.optimize ~methods ~seed:1 profile q;
        ])
    [ one; two ]

let suite =
  [
    Alcotest.test_case "greedy: full plan" `Quick test_greedy_full_plan;
    Alcotest.test_case "greedy: never beats DP" `Quick
      test_greedy_never_beats_dp;
    Alcotest.test_case "random walk: never beats DP" `Quick
      test_random_walk_never_beats_dp;
    Alcotest.test_case "random walk: deterministic" `Quick
      test_random_walk_deterministic;
    Alcotest.test_case "plan_of_order" `Quick test_plan_of_order;
    Alcotest.test_case "all enumerators execute correctly" `Quick
      test_enumerator_plans_execute;
    Alcotest.test_case "degenerate table counts" `Quick
      test_single_and_two_tables;
  ]
