(* Unit tests for the union-find equivalence classes. *)

let c t col = Query.Cref.v t col

let test_singletons () =
  let e = Els.Eqclass.create () in
  Els.Eqclass.add e (c "t" "a");
  Alcotest.(check bool) "own representative" true
    (Query.Cref.equal (Els.Eqclass.find e (c "t" "a")) (c "t" "a"));
  Alcotest.(check bool) "unknown column is its own class" true
    (Query.Cref.equal (Els.Eqclass.find e (c "zz" "q")) (c "zz" "q"));
  Alcotest.(check int) "one class" 1 (List.length (Els.Eqclass.classes e))

let test_union_transitivity () =
  let e = Els.Eqclass.create () in
  Els.Eqclass.union e (c "r1" "x") (c "r2" "y");
  Els.Eqclass.union e (c "r2" "y") (c "r3" "z");
  Alcotest.(check bool) "x ~ z transitively" true
    (Els.Eqclass.same e (c "r1" "x") (c "r3" "z"));
  Alcotest.(check int) "members" 3
    (List.length (Els.Eqclass.members e (c "r3" "z")));
  Alcotest.(check int) "single class" 1 (List.length (Els.Eqclass.classes e))

let test_disjoint_classes () =
  let e = Els.Eqclass.create () in
  Els.Eqclass.union e (c "a" "x") (c "b" "y");
  Els.Eqclass.union e (c "c" "u") (c "d" "v");
  Alcotest.(check bool) "disjoint" false
    (Els.Eqclass.same e (c "a" "x") (c "c" "u"));
  Alcotest.(check int) "two classes" 2 (List.length (Els.Eqclass.classes e));
  (* Merging the two classes joins everything. *)
  Els.Eqclass.union e (c "b" "y") (c "d" "v");
  Alcotest.(check int) "merged" 1 (List.length (Els.Eqclass.classes e));
  Alcotest.(check int) "four members" 4
    (List.length (Els.Eqclass.members e (c "a" "x")))

let test_idempotent_union () =
  let e = Els.Eqclass.create () in
  Els.Eqclass.union e (c "a" "x") (c "b" "y");
  Els.Eqclass.union e (c "a" "x") (c "b" "y");
  Els.Eqclass.union e (c "b" "y") (c "a" "x");
  Alcotest.(check int) "still two members" 2
    (List.length (Els.Eqclass.members e (c "a" "x")))

let test_of_predicates () =
  let preds =
    [
      Query.Predicate.col_eq (c "r1" "x") (c "r2" "y");
      Query.Predicate.col_eq (c "r2" "y") (c "r2" "w");
      Query.Predicate.cmp (c "r9" "solo") Rel.Cmp.Lt (Rel.Value.Int 5);
    ]
  in
  let e = Els.Eqclass.of_predicates preds in
  Alcotest.(check int) "classes incl. singleton" 2
    (List.length (Els.Eqclass.classes e));
  Alcotest.(check bool) "x ~ w" true (Els.Eqclass.same e (c "r1" "x") (c "r2" "w"));
  Alcotest.(check bool) "solo is singleton" true
    (List.length (Els.Eqclass.members e (c "r9" "solo")) = 1)

let test_classes_sorted () =
  let e = Els.Eqclass.create () in
  Els.Eqclass.union e (c "z" "q") (c "a" "b");
  match Els.Eqclass.classes e with
  | [ [ first; second ] ] ->
    Alcotest.(check string) "sorted members" "a.b" (Query.Cref.to_string first);
    Alcotest.(check string) "second" "z.q" (Query.Cref.to_string second)
  | _ -> Alcotest.fail "expected one class of two"

let suite =
  [
    Alcotest.test_case "singletons" `Quick test_singletons;
    Alcotest.test_case "union transitivity" `Quick test_union_transitivity;
    Alcotest.test_case "disjoint classes" `Quick test_disjoint_classes;
    Alcotest.test_case "idempotent union" `Quick test_idempotent_union;
    Alcotest.test_case "of_predicates" `Quick test_of_predicates;
    Alcotest.test_case "classes sorted" `Quick test_classes_sorted;
  ]
