(* Tests for the first-class estimator seam: registry invariants, name
   resolution, cache keying under estimator swaps, the pessimistic
   bound's pieces, and — most importantly — golden bit-identity: the
   record-of-functions refactor must reproduce the pre-refactor enum
   implementation exactly, down to the last bit, on fixed fixtures.

   The hex-float strings below were captured by running the enum-based
   implementation (commit before the estimator refactor) over the same
   fixtures and printing every intermediate size with %h. *)

let hex = Printf.sprintf "%h"

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

(* The four configurations that existed before the refactor, in the
   order they were captured. *)
let golden_configs =
  [
    ("sm", Els.Config.sm ~ptc:false);
    ("sm+ptc", Els.Config.sm ~ptc:true);
    ("sss", Els.Config.sss);
    ("els", Els.Config.els);
  ]

let check_golden fixture db query order expected =
  List.iter2
    (fun (name, config) want ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s %s bit-identical" fixture name)
        want
        (List.map hex (Els.intermediate_sizes config db query order)))
    golden_configs expected

let test_golden_section8 () =
  let db = Datagen.Section8.build ~scale:10 ~seed:42 () in
  let query = Datagen.Section8.query_scaled ~scale:10 in
  check_golden "section8-smbg" db query [ "s"; "m"; "b"; "g" ]
    [
      [ "0x1.2p+3"; "0x1.2p+3"; "0x1.2p+3" ];
      [ "0x1.4bc6a7ef9db23p-4"; "0x1.f4f70948957b7p-26"; "0x1.35d59f7e8f961p-62" ];
      [ "0x1.4bc6a7ef9db23p-4"; "0x1.31c3c76a8d3c9p-13"; "0x1.19caf538d4157p-23" ];
      [ "0x1.2p+3"; "0x1.2p+3"; "0x1.2p+3" ];
    ];
  check_golden "section8-bgms" db query [ "b"; "g"; "m"; "s" ]
    [
      [ "0x1.388p+12"; "0x1.f4p+9"; "0x1.2p+3" ];
      [ "0x1.096bb98c7e282p-7"; "0x1.90c5a106ddfc5p-30"; "0x1.35d59f7e8f961p-62" ];
      [ "0x1.096bb98c7e282p-7"; "0x1.e9393f10e1fa8p-18"; "0x1.c2de5527b9bbdp-28" ];
      [ "0x1.2p+3"; "0x1.2p+3"; "0x1.2p+3" ];
    ]

let test_golden_chain5 () =
  let spec = Datagen.Workload.chain ~seed:42 ~n_tables:5 () in
  let query = spec.Datagen.Workload.query in
  check_golden "chain5" spec.Datagen.Workload.db query query.Query.tables
    [
      [ "0x1.307f5646b7de1p+13"; "0x1.dc17b6fc01c82p+13";
        "0x1.2a4a230a3832cp+17"; "0x1.230a1cdadc2a6p+21" ];
      [ "0x1.307f5646b7de1p+13"; "0x1.f381cc92e47e1p+6";
        "0x1.b3d441de70dfep-4"; "0x1.365782cf70ea4p-21" ];
      [ "0x1.307f5646b7de1p+13"; "0x1.dc17b6fc01c82p+13";
        "0x1.921d3922fdf8p+16"; "0x1.111efca4686ebp+20" ];
      [ "0x1.307f5646b7de1p+13"; "0x1.612ac5a3db8d2p+14";
        "0x1.9f4f972fb4a54p+18"; "0x1.95376f11367a1p+22" ];
    ]

let test_golden_star3 () =
  let spec = Datagen.Workload.star ~seed:42 ~n_dims:3 () in
  let query = spec.Datagen.Workload.query in
  (* One predicate per class: all combining rules coincide. *)
  let sizes =
    [ "0x1.08fdd67c8a60ep+15"; "0x1.cfbc3759f2298p+18"; "0x1.4f990d1c0a324p+20" ]
  in
  check_golden "star3" spec.Datagen.Workload.db query query.Query.tables
    [ sizes; sizes; sizes; sizes ]

let test_registry () =
  let ids = Els.Estimator.ids () in
  Alcotest.(check bool) "built-ins lead the registry" true
    (match ids with
    | "m" :: "ss" :: "ls" :: "pess" :: _ -> true
    | _ -> false);
  Alcotest.(check int) "registry and ids agree" (List.length ids)
    (List.length (Els.Estimator.registry ()));
  Alcotest.(check bool) "equal is by id" true
    (Els.Estimator.equal Els.Estimator.ls
       { Els.Estimator.ls with Els.Estimator.label = "renamed" });
  Alcotest.(check bool) "duplicate id rejected" true
    (match Els.Estimator.register Els.Estimator.m with
    | exception Invalid_argument _ -> true
    | () -> false);
  (* The rejected registration must not have mutated the registry. *)
  Alcotest.(check (list string)) "registry unchanged after rejection" ids
    (Els.Estimator.ids ())

let test_of_string () =
  List.iter
    (fun est ->
      let id = Els.Estimator.id est in
      let round name =
        match Els.Estimator.of_string name with
        | Ok found ->
          Alcotest.(check string)
            (Printf.sprintf "%S resolves to %s" name id)
            id (Els.Estimator.id found)
        | Error msg -> Alcotest.failf "%S rejected: %s" name msg
      in
      round id;
      round (String.uppercase_ascii id);
      round (Els.Estimator.label est))
    (Els.Estimator.registry ());
  (match Els.Estimator.of_string "lss" with
  | Ok est -> Alcotest.failf "\"lss\" resolved to %s" (Els.Estimator.id est)
  | Error msg ->
    Alcotest.(check bool) "error lists the registered ids" true
      (contains ~needle:"m, ss, ls, pess" msg);
    Alcotest.(check bool) "error suggests a close name" true
      (contains ~needle:"did you mean" msg));
  Alcotest.(check bool) "of_string_exn raises on unknown names" true
    (match Els.Estimator.of_string_exn "nosuch" with
    | exception Invalid_argument _ -> true
    | (_ : Els.Estimator.t) -> false)

(* Swapping the estimator on a built profile must be bit-identical to
   building a fresh profile with that estimator, even after the shared
   memo caches have been warmed under another estimator — the group
   cache is keyed by estimator id. *)
let test_with_estimator_cache_keying () =
  let db = Datagen.Section8.build ~scale:10 ~seed:42 () in
  let query = Datagen.Section8.query_scaled ~scale:10 in
  let order = [ "s"; "m"; "b"; "g" ] in
  let history profile =
    List.map hex
      (Els.Incremental.history (Els.Incremental.estimate_order profile order))
  in
  let profile = Els.prepare Els.Config.els db query in
  let ls_history = history profile in
  let swapped = Els.Profile.with_estimator Els.Estimator.ss profile in
  let fresh =
    Els.prepare
      { Els.Config.els with Els.Config.estimator = Els.Estimator.ss }
      db query
  in
  Alcotest.(check string) "swap reported" "ss"
    (Els.Estimator.id (Els.Profile.estimator swapped));
  Alcotest.(check (list string)) "swapped = freshly built" (history fresh)
    (history swapped);
  let back = Els.Profile.with_estimator Els.Estimator.ls swapped in
  Alcotest.(check (list string)) "swap back restores LS exactly" ls_history
    (history back)

let test_pess_pieces () =
  let pess = Els.Estimator.pess in
  Alcotest.(check (float 0.)) "classes combine to 1" 1.
    (pess.Els.Estimator.combine [ 0.25; 0.5 ]);
  Alcotest.(check (float 0.)) "empty class combines to 1" 1.
    (pess.Els.Estimator.combine []);
  let input left_rows right_rows =
    { Els.Estimator.left_rows; right_rows; degrees = [] }
  in
  (match pess.Els.Estimator.cap with
  | None -> Alcotest.fail "pess must cap step outputs"
  | Some cap ->
    Alcotest.(check (float 0.)) "cap is min of the inputs" 3.
      (cap (input 3. 7.));
    Alcotest.(check (float 0.)) "cap is symmetric" 3. (cap (input 7. 3.)));
  Alcotest.(check string) "canonical config name" "PESS"
    (Els.Config.name Els.Config.pess);
  (* A cartesian step is never capped: with no join predicate the
     estimate stays the full product. *)
  let db = Catalog.Db.create () in
  let rng = Datagen.Prng.create 7 in
  List.iter
    (fun table ->
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table ~rows:20
           [ Datagen.Tablegen.column "a" ~distinct:10 ]))
    [ "t1"; "t2" ];
  let cross = Query.make ~tables:[ "t1"; "t2" ] [] in
  Alcotest.(check (float 0.)) "cartesian step uncapped" 400.
    (Els.estimate Els.Config.pess db cross [ "t1"; "t2" ]);
  let joined =
    Query.make ~tables:[ "t1"; "t2" ]
      [ Query.Predicate.col_eq (Query.Cref.v "t1" "a") (Query.Cref.v "t2" "a") ]
  in
  Alcotest.(check (float 0.)) "bridged step capped at min rows" 20.
    (Els.estimate Els.Config.pess db joined [ "t1"; "t2" ])

(* The degree-statistics family: caps computed from known degree
   sequences, min-rows degradation without them, and provenance notes
   that disclose which statistic was read. *)
let test_degree_family_caps () =
  let counts l = List.map (fun (v, c) -> (Rel.Value.Int v, c)) l in
  (* a: degrees 3,1 → L2² = 10, L∞ = 3; b: degrees 2,2 → L2² = 8, L∞ = 2. *)
  let da = Stats.Degree.of_counts (counts [ (1, 3); (2, 1) ]) in
  let db = Stats.Degree.of_counts (counts [ (1, 2); (2, 2) ]) in
  let input degrees =
    { Els.Estimator.left_rows = 100.; right_rows = 200.; degrees }
  in
  let cap_of est s =
    match est.Els.Estimator.cap with
    | Some cap -> cap s
    | None -> Alcotest.failf "%s has no cap" (Els.Estimator.id est)
  in
  let note_of est s =
    match est.Els.Estimator.cap_note with
    | Some note -> note s
    | None -> Alcotest.failf "%s has no cap note" (Els.Estimator.id est)
  in
  (* lp2: min(100, 200, √10·√8) = √80. *)
  Helpers.check_float ~eps:1e-9 "lp2 = L2(a)·L2(b)"
    (Float.sqrt 10. *. Float.sqrt 8.)
    (cap_of Els.Estimator.lp2 (input [ (da, db) ]));
  (* degseq: pairwise product of sorted sequences 3·2 + 1·2 = 8, above
     min-rows territory is fine — the bound starts from infinity. *)
  Helpers.check_float ~eps:1e-9 "degseq = join_bound" 8.
    (cap_of Els.Estimator.degseq (input [ (da, db) ]));
  (* ent: min(100·L∞(b), 200·L∞(a)) = min(200, 600). *)
  Helpers.check_float ~eps:1e-9 "ent = min(|R1|·L∞(b), |R2|·L∞(a))" 200.
    (cap_of Els.Estimator.ent (input [ (da, db) ]));
  (* A conjunction of edges can only shrink lp2/ent; degseq takes the
     tightest edge. *)
  let dc = Stats.Degree.of_counts (counts [ (1, 1) ]) in
  Helpers.check_float ~eps:1e-9 "tightest edge wins" 2.
    (cap_of Els.Estimator.degseq (input [ (da, db); (dc, db) ]));
  (* No degree statistics: every cap degrades to PESS's min-rows and the
     provenance note says so. *)
  List.iter
    (fun est ->
      Helpers.check_float
        (Printf.sprintf "%s degrades to min-rows" (Els.Estimator.id est))
        100.
        (cap_of est (input []));
      Alcotest.(check bool)
        (Printf.sprintf "%s fallback note mentions min-rows"
           (Els.Estimator.id est))
        true
        (contains ~needle:"min-rows" (note_of est (input [])));
      Alcotest.(check bool)
        (Printf.sprintf "%s provenance names the degree source"
           (Els.Estimator.id est))
        true
        (contains ~needle:"degree" (note_of est (input [ (da, db) ]))))
    [ Els.Estimator.lp2; Els.Estimator.degseq; Els.Estimator.ent ]

(* End-to-end: on an analyzed key-join chain (every degree 1), all three
   degree estimators coincide with PESS's min-rows bound — the degree-1
   specialization — and their canonical configs print their labels. *)
let test_degree_family_end_to_end () =
  let spec =
    Datagen.Workload.chain ~rows_range:(50, 200)
      ~distinct_range:(10_000, 10_000) ~seed:7 ~n_tables:3 ()
  in
  let db = spec.Datagen.Workload.db in
  let query = spec.Datagen.Workload.query in
  let order = query.Query.tables in
  let pess = Els.estimate Els.Config.pess db query order in
  List.iter
    (fun est ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "%s = PESS on a key chain" (Els.Estimator.id est))
        pess
        (Els.estimate (Els.Config.of_estimator est) db query order);
      Alcotest.(check string) "canonical config prints the label"
        (Els.Estimator.label est)
        (Els.Config.name (Els.Config.of_estimator est)))
    [ Els.Estimator.lp2; Els.Estimator.degseq; Els.Estimator.ent ]

let suite =
  [
    Alcotest.test_case "golden: section 8 fixtures" `Quick test_golden_section8;
    Alcotest.test_case "golden: chain-5 workload" `Quick test_golden_chain5;
    Alcotest.test_case "golden: star-3 workload" `Quick test_golden_star3;
    Alcotest.test_case "registry invariants" `Quick test_registry;
    Alcotest.test_case "of_string resolution" `Quick test_of_string;
    Alcotest.test_case "with_estimator cache keying" `Quick
      test_with_estimator_cache_keying;
    Alcotest.test_case "pessimistic bound pieces" `Quick test_pess_pieces;
    Alcotest.test_case "degree family caps" `Quick test_degree_family_caps;
    Alcotest.test_case "degree family end to end" `Quick
      test_degree_family_end_to_end;
  ]
