(* Unit tests for the execution engine: operators, joins, counters,
   reference execution. *)

let int_ n = Rel.Value.Int n
let c t col = Query.Cref.v t col

let mk_relation table cols rows =
  let schema =
    Rel.Schema.make
      (List.map
         (fun name -> Rel.Schema.column ~table ~name Rel.Value.Ty_int)
         cols)
  in
  Rel.Relation.of_tuples schema
    (List.map (fun vals -> Rel.Tuple.of_list (List.map (fun v -> int_ v) vals)) rows)

(* r(a, b) and s(a, c) with a small overlap, including duplicates. *)
let r () = mk_relation "r" [ "a"; "b" ] [ [1;10]; [2;20]; [2;21]; [3;30]; [5;50] ]
let s () = mk_relation "s" [ "a"; "c" ] [ [2;200]; [2;201]; [3;300]; [4;400] ]

let join_pred = Query.Predicate.col_eq (c "r" "a") (c "s" "a")

(* Expected r ⋈ s on a: 2 r-rows with a=2 x 2 s-rows + 1x1 for a=3 = 5. *)
let expected_join_count = 5

let sorted_rows rel =
  List.sort compare
    (List.map Array.to_list (Rel.Relation.to_list rel))

let run_join method_ =
  let counters = Exec.Counters.create () in
  let outer () = Exec.Operator.of_relation (r ()) in
  let inner () = Exec.Operator.of_relation (s ()) in
  let op =
    match method_ with
    | `Nl ->
      Exec.Nested_loop.join counters [ join_pred ] ~outer:(outer ())
        ~make_inner:inner
    | `Hash ->
      Exec.Hash_join.join counters [ join_pred ] ~outer:(outer ())
        ~inner:(inner ())
    | `Sm ->
      Exec.Sort_merge.join counters [ join_pred ] ~outer:(outer ())
        ~inner:(inner ())
  in
  (Exec.Operator.to_relation op, counters)

let test_scan_and_filter () =
  let counters = Exec.Counters.create () in
  let op =
    Exec.Scan.relation counters
      ~filters:[ Query.Predicate.cmp (c "r" "a") Rel.Cmp.Ge (int_ 2) ]
      (r ())
  in
  let out = Exec.Operator.to_relation op in
  Alcotest.(check int) "filtered rows" 4 (Rel.Relation.cardinality out);
  Alcotest.(check int) "all tuples read" 5 counters.Exec.Counters.tuples_read;
  Alcotest.(check int) "one comparison per tuple" 5
    counters.Exec.Counters.comparisons

let test_three_join_methods_agree () =
  let nl, _ = run_join `Nl in
  let hj, _ = run_join `Hash in
  let sm, _ = run_join `Sm in
  Alcotest.(check int) "NL count" expected_join_count (Rel.Relation.cardinality nl);
  Alcotest.(check int) "HJ count" expected_join_count (Rel.Relation.cardinality hj);
  Alcotest.(check int) "SM count" expected_join_count (Rel.Relation.cardinality sm);
  Alcotest.(check bool) "NL = HJ rows" true (sorted_rows nl = sorted_rows hj);
  Alcotest.(check bool) "NL = SM rows" true (sorted_rows nl = sorted_rows sm)

let test_join_output_schema () =
  let out, _ = run_join `Hash in
  let schema = Rel.Relation.schema out in
  Alcotest.(check int) "arity 4" 4 (Rel.Schema.arity schema);
  Alcotest.(check (option int)) "left columns first" (Some 0)
    (Rel.Schema.index_of schema ~table:"r" ~name:"a");
  Alcotest.(check (option int)) "right columns after" (Some 2)
    (Rel.Schema.index_of schema ~table:"s" ~name:"a")

let test_null_keys_never_match () =
  let r =
    Rel.Relation.of_tuples
      (Rel.Schema.make [ Rel.Schema.column ~table:"r" ~name:"a" Rel.Value.Ty_int ])
      [ [| Rel.Value.Null |]; [| int_ 1 |] ]
  in
  let s =
    Rel.Relation.of_tuples
      (Rel.Schema.make [ Rel.Schema.column ~table:"s" ~name:"a" Rel.Value.Ty_int ])
      [ [| Rel.Value.Null |]; [| int_ 1 |] ]
  in
  let pred = Query.Predicate.col_eq (c "r" "a") (c "s" "a") in
  let count method_ =
    let counters = Exec.Counters.create () in
    let out =
      match method_ with
      | `Nl ->
        Exec.Nested_loop.join counters [ pred ]
          ~outer:(Exec.Operator.of_relation r)
          ~make_inner:(fun () -> Exec.Operator.of_relation s)
      | `Hash ->
        Exec.Hash_join.join counters [ pred ]
          ~outer:(Exec.Operator.of_relation r)
          ~inner:(Exec.Operator.of_relation s)
      | `Sm ->
        Exec.Sort_merge.join counters [ pred ]
          ~outer:(Exec.Operator.of_relation r)
          ~inner:(Exec.Operator.of_relation s)
    in
    Exec.Operator.count out
  in
  Alcotest.(check int) "NL" 1 (count `Nl);
  Alcotest.(check int) "HJ" 1 (count `Hash);
  Alcotest.(check int) "SM" 1 (count `Sm)

let test_cartesian_nested_loop () =
  let counters = Exec.Counters.create () in
  let op =
    Exec.Nested_loop.join counters []
      ~outer:(Exec.Operator.of_relation (r ()))
      ~make_inner:(fun () -> Exec.Operator.of_relation (s ()))
  in
  Alcotest.(check int) "cross product" 20 (Exec.Operator.count op)

let test_equi_methods_require_keys () =
  let counters = Exec.Counters.create () in
  Alcotest.(check bool) "hash join needs a key" true
    (match
       Exec.Hash_join.join counters []
         ~outer:(Exec.Operator.of_relation (r ()))
         ~inner:(Exec.Operator.of_relation (s ()))
     with
    | exception Invalid_argument _ -> true
    | (_ : Exec.Operator.t) -> false);
  Alcotest.(check bool) "sort-merge needs a key" true
    (match
       Exec.Sort_merge.join counters []
         ~outer:(Exec.Operator.of_relation (r ()))
         ~inner:(Exec.Operator.of_relation (s ()))
     with
    | exception Invalid_argument _ -> true
    | (_ : Exec.Operator.t) -> false)

let test_residual_predicates () =
  (* Join on a with residual c > 200: keeps (2,200.. no), (2,201),
     (3,300): residual drops c=200 pair; counts 2x matches: rows with a=2
     pair (2 r-rows x s(2,201)) + a=3 -> 2 + 1 = 3. *)
  let residual = Query.Predicate.cmp (c "s" "c") Rel.Cmp.Gt (int_ 200) in
  let counters = Exec.Counters.create () in
  let out =
    Exec.Hash_join.join counters [ join_pred; residual ]
      ~outer:(Exec.Operator.of_relation (r ()))
      ~inner:(Exec.Operator.of_relation (s ()))
  in
  Alcotest.(check int) "residual applied" 3 (Exec.Operator.count out)

let test_nested_loop_rescans_charge () =
  let counters = Exec.Counters.create () in
  let inner_rel = s () in
  let op =
    Exec.Nested_loop.join counters [ join_pred ]
      ~outer:(Exec.Operator.of_relation (r ()))
      ~make_inner:(fun () -> Exec.Scan.relation counters inner_rel)
  in
  ignore (Exec.Operator.count op);
  (* 5 outer tuples x 4 inner tuples read per rescan. *)
  Alcotest.(check int) "rescans charged" 20 counters.Exec.Counters.tuples_read

let test_project_and_count () =
  let op = Exec.Operator.of_relation (r ()) in
  let projected = Exec.Project.columns [ c "r" "b" ] op in
  let out = Exec.Operator.to_relation projected in
  Alcotest.(check int) "arity 1" 1 (Rel.Schema.arity (Rel.Relation.schema out));
  Alcotest.(check int) "rows kept" 5 (Rel.Relation.cardinality out);
  Alcotest.(check int) "count_star" 5
    (Exec.Project.count_star (Exec.Operator.of_relation (r ())))

let test_operator_utilities () =
  let schema =
    Rel.Schema.make [ Rel.Schema.column ~table:"t" ~name:"a" Rel.Value.Ty_int ]
  in
  let op = Exec.Operator.of_list schema [ [| int_ 1 |]; [| int_ 2 |] ] in
  Alcotest.(check int) "fold sum" 3
    (Exec.Operator.fold (fun acc t -> acc + Rel.Value.int_exn t.(0)) 0 op);
  let op2 = Exec.Operator.of_list schema [] in
  Alcotest.(check int) "empty count" 0 (Exec.Operator.count op2)

(* Executor over a stored catalog. *)
let exec_db () =
  let db = Catalog.Db.create () in
  ignore (Catalog.Analyze.register db ~name:"r" (mk_relation "r" [ "a"; "b" ]
    [ [1;10]; [2;20]; [2;21]; [3;30]; [5;50] ]));
  ignore (Catalog.Analyze.register db ~name:"s" (mk_relation "s" [ "a"; "c" ]
    [ [2;200]; [2;201]; [3;300]; [4;400] ]));
  db

let test_executor_run_plan () =
  let db = exec_db () in
  let plan =
    Exec.Plan.Join
      {
        method_ = Exec.Plan.Hash;
        outer = Exec.Plan.scan ~filters:[] "r";
        inner = Exec.Plan.scan ~filters:[] "s";
        predicates = [ join_pred ];
      }
  in
  let result = Exec.Executor.run db plan in
  Alcotest.(check int) "rows" expected_join_count result.Exec.Executor.row_count;
  Alcotest.(check bool) "work recorded" true
    (Exec.Counters.total_work result.Exec.Executor.counters > 0);
  let rows, _, _ = Exec.Executor.count db plan in
  Alcotest.(check int) "count agrees" expected_join_count rows

let test_executor_run_query () =
  let db = exec_db () in
  let q =
    Query.make ~tables:[ "r"; "s" ]
      [ join_pred; Query.Predicate.cmp (c "s" "c") Rel.Cmp.Gt (int_ 200) ]
  in
  let result = Exec.Executor.run_query db q in
  Alcotest.(check int) "reference result" 3 result.Exec.Executor.row_count

let test_executor_cartesian_query () =
  let db = exec_db () in
  let q = Query.make ~tables:[ "r"; "s" ] [] in
  Alcotest.(check int) "cartesian" 20
    (Exec.Executor.run_query db q).Exec.Executor.row_count

let test_plan_rendering () =
  let plan =
    Exec.Plan.Join
      {
        method_ = Exec.Plan.Sort_merge;
        outer = Exec.Plan.scan ~filters:[] "r";
        inner = Exec.Plan.scan ~filters:[] "s";
        predicates = [ join_pred ];
      }
  in
  Alcotest.(check string) "one-liner" "(r SM s)" (Exec.Plan.to_string plan);
  Alcotest.(check (list string)) "join order" [ "r"; "s" ]
    (Exec.Plan.join_order plan)

let suite =
  [
    Alcotest.test_case "scan with filters" `Quick test_scan_and_filter;
    Alcotest.test_case "three join methods agree" `Quick
      test_three_join_methods_agree;
    Alcotest.test_case "join output schema" `Quick test_join_output_schema;
    Alcotest.test_case "null keys never match" `Quick test_null_keys_never_match;
    Alcotest.test_case "cartesian nested loop" `Quick test_cartesian_nested_loop;
    Alcotest.test_case "equi methods require keys" `Quick
      test_equi_methods_require_keys;
    Alcotest.test_case "residual predicates" `Quick test_residual_predicates;
    Alcotest.test_case "nested loop rescans charged" `Quick
      test_nested_loop_rescans_charge;
    Alcotest.test_case "project and count" `Quick test_project_and_count;
    Alcotest.test_case "operator utilities" `Quick test_operator_utilities;
    Alcotest.test_case "executor: run plan" `Quick test_executor_run_plan;
    Alcotest.test_case "executor: run query" `Quick test_executor_run_query;
    Alcotest.test_case "executor: cartesian query" `Quick
      test_executor_cartesian_query;
    Alcotest.test_case "plan rendering" `Quick test_plan_rendering;
  ]
