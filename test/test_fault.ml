(* Fault-injection suite (experiment F9) plus robustness properties.

   The deterministic part drives every corruption kind through the full
   pipeline under each strictness mode and checks the Fault harness's own
   acceptance criteria. The property part hammers Els.estimate_result
   with randomly corrupted catalogs: the contract is total — Ok with a
   finite non-negative number, or a structured Error, never an exception
   and never NaN. *)

let modes =
  [ Catalog.Validate.Strict; Catalog.Validate.Repair; Catalog.Validate.Trap ]

let outcomes_for mode = Harness.Fault.run ~seed:11 ~strictness:mode ()

(* --- the deterministic suite --- *)

let test_suite_passes () =
  List.iter
    (fun mode ->
      let outcomes = outcomes_for mode in
      Alcotest.(check int)
        "per query and estimator: one outcome per corruption plus the \
         clean baseline"
        (2
        * (1 + List.length Harness.Fault.all)
        * List.length (Els.Estimator.registry ()))
        (List.length outcomes);
      List.iter
        (fun (o : Harness.Fault.outcome) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s under %s acceptable"
               (match o.Harness.Fault.corruption with
               | None -> "(clean)"
               | Some k -> Harness.Fault.name k)
               (Catalog.Validate.strictness_name mode))
            true
            (Harness.Fault.acceptable o))
        outcomes)
    modes

let test_repair_always_estimates () =
  (* Repair mode must survive every corruption with a finite estimate:
     degradation means clamping, never refusal. *)
  List.iter
    (fun (o : Harness.Fault.outcome) ->
      match o.Harness.Fault.status with
      | Harness.Fault.Estimated x ->
        Alcotest.(check bool) "finite" true (Float.is_finite x);
        Alcotest.(check bool) "non-negative" true (x >= 0.)
      | Harness.Fault.Degraded e ->
        Alcotest.fail
          (Printf.sprintf "repair refused on %s: %s"
             (match o.Harness.Fault.corruption with
             | None -> "(clean)"
             | Some k -> Harness.Fault.name k)
             (Els.Els_error.to_string e))
      | Harness.Fault.Crashed msg -> Alcotest.fail ("crash: " ^ msg))
    (outcomes_for Catalog.Validate.Repair)

let test_repair_counts_every_corruption () =
  List.iter
    (fun (o : Harness.Fault.outcome) ->
      match o.Harness.Fault.corruption with
      | None ->
        Alcotest.(check int) "clean baseline has no violations" 0
          (o.Harness.Fault.violations + o.Harness.Fault.repairs
         + o.Harness.Fault.fallbacks)
      | Some k ->
        Alcotest.(check bool)
          (Printf.sprintf "%s counted" (Harness.Fault.name k))
          true
          (o.Harness.Fault.violations + o.Harness.Fault.repairs
           + o.Harness.Fault.fallbacks
          > 0))
    (outcomes_for Catalog.Validate.Repair)

let test_strict_refuses_validation_corruptions () =
  (* Every corruption that validation can see must turn into a structured
     refusal under Strict. Drop_stats is invisible to validation (absent
     statistics are a legal catalog state) — it degrades via counted
     fallbacks instead. *)
  List.iter
    (fun (o : Harness.Fault.outcome) ->
      match o.Harness.Fault.corruption with
      | None | Some Harness.Fault.Drop_stats -> ()
      | Some k ->
        Alcotest.(check bool)
          (Printf.sprintf "strict refuses %s" (Harness.Fault.name k))
          true
          (match o.Harness.Fault.status with
          | Harness.Fault.Degraded (Els.Els_error.Corrupt_stats _) -> true
          | _ -> false))
    (outcomes_for Catalog.Validate.Strict)

(* --- properties --- *)

type fault_spec = {
  kind : Harness.Fault.corruption;
  mode : Catalog.Validate.strictness;
  tables : string list; (* which of t1..t3 to corrupt *)
  seed : int;
}

let gen_fault_spec =
  QCheck2.Gen.(
    let* kind = oneofl Harness.Fault.all in
    let* mode = oneofl modes in
    let* tables =
      oneofl
        [
          [ "t1" ]; [ "t2" ]; [ "t3" ]; [ "t1"; "t2" ]; [ "t2"; "t3" ];
          [ "t1"; "t2"; "t3" ];
        ]
    in
    let* seed = int_range 0 1000 in
    return { kind; mode; tables; seed })

let print_fault_spec spec =
  Printf.sprintf "%s/%s on [%s] seed=%d"
    (Harness.Fault.name spec.kind)
    (Catalog.Validate.strictness_name spec.mode)
    (String.concat "," spec.tables)
    spec.seed

(* Totality: a corrupted catalog never makes the Result-typed entry
   points raise, and a produced number is always finite and >= 0. *)
let prop_estimate_total =
  QCheck2.Test.make ~count:150 ~name:"estimate_result total under corruption"
    ~print:print_fault_spec gen_fault_spec (fun spec ->
      let clean = Harness.Fault.base_db ~seed:spec.seed () in
      let db = Harness.Fault.corrupt_db ~tables:spec.tables spec.kind clean in
      let config = Els.Config.with_strictness spec.mode Els.Config.els in
      match Sqlfront.Binder.compile_result db Harness.Fault.default_sql with
      | Error _ -> true (* structured refusal is within the contract *)
      | Ok query -> begin
        let order = query.Query.tables in
        match Els.estimate_result config db query order with
        | Ok x ->
          (* Trap mode deliberately passes corrupt values through, so the
             only universal promise there is "no exception": the final
             boundary converts escaped NaN into Error, which this branch
             never sees. *)
          Float.is_finite x && x >= 0.
        | Error _ -> true
      end)

(* Repairing statistics the query never touches must not move the
   estimate: corrupt only the unused "b" columns of t2/t3 and demand the
   Repair-mode estimate stays bit-identical to the clean one. *)
let prop_unused_column_repair_identity =
  QCheck2.Test.make ~count:100
    ~name:"repair of unused columns is bit-identical"
    ~print:print_fault_spec gen_fault_spec (fun spec ->
      QCheck2.assume (Harness.Fault.column_level spec.kind);
      let clean = Harness.Fault.base_db ~seed:spec.seed () in
      let db =
        Harness.Fault.corrupt_db ~tables:[ "t2"; "t3" ] ~columns:[ "b" ]
          spec.kind clean
      in
      let config =
        Els.Config.with_strictness Catalog.Validate.Repair Els.Config.els
      in
      match
        Sqlfront.Binder.compile_result clean Harness.Fault.default_sql
      with
      | Error _ -> false
      | Ok query -> begin
        let order = query.Query.tables in
        match
          ( Els.estimate_result config clean query order,
            Els.estimate_result config db query order )
        with
        | Ok reference, Ok corrupted -> Float.equal reference corrupted
        | _ -> false
      end)

let suite =
  [
    Alcotest.test_case "fault: suite passes in all modes" `Quick
      test_suite_passes;
    Alcotest.test_case "fault: repair always estimates" `Quick
      test_repair_always_estimates;
    Alcotest.test_case "fault: repair counts every corruption" `Quick
      test_repair_counts_every_corruption;
    Alcotest.test_case "fault: strict refuses corrupt stats" `Quick
      test_strict_refuses_validation_corruptions;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_estimate_total; prop_unused_column_repair_identity ]
