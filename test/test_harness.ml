(* Unit tests for the experiments harness: report rendering, the runner,
   the Section 8 experiment at reduced scale. *)

let test_report_table () =
  let s =
    Harness.Report.table ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333" ] (* ragged row gets padded *) ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.sub s 0 1 = "a");
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* Columns align: every '|' of the header appears at the same offset in
     the separator rule. *)
  match lines with
  | header_line :: rule :: _ ->
    String.iteri
      (fun i ch ->
        if ch = '|' then
          Alcotest.(check char) "separator aligned" '+' rule.[i])
      header_line
  | _ -> Alcotest.fail "missing rows"

let test_report_cells () =
  Alcotest.(check string) "float_cell" "4e-08" (Harness.Report.float_cell 4e-8);
  Alcotest.(check string) "size_list" "(100, 0.5)"
    (Harness.Report.size_list [ 100.; 0.5 ])

let test_runner_true_prefix_sizes () =
  let db = Datagen.Section8.build ~scale:20 ~seed:1 () in
  let q = Datagen.Section8.query_scaled ~scale:20 in
  let sizes =
    Harness.Runner.true_prefix_sizes db q [ "s"; "m"; "b"; "g" ]
  in
  (* With all implied predicates, every prefix of ≥2 tables has exactly
     cutoff-1 = 4 rows. *)
  Alcotest.(check (list (float 0.))) "all fours" [ 4.; 4.; 4. ] sizes

let test_runner_trial () =
  let db = Datagen.Section8.build ~scale:20 ~seed:1 () in
  let q = Datagen.Section8.query_scaled ~scale:20 in
  let trial = Harness.Runner.run Els.Config.els db q in
  Alcotest.(check string) "algorithm" "ELS" trial.Harness.Runner.algorithm;
  Alcotest.(check int) "result rows" 4 trial.Harness.Runner.result_rows;
  Alcotest.(check int) "three estimates" 3
    (List.length trial.Harness.Runner.estimates);
  Alcotest.(check bool) "work positive" true (trial.Harness.Runner.work > 0);
  (* ELS estimates equal the true sizes on this workload. *)
  List.iter2
    (fun est truth -> Helpers.check_float ~eps:1e-6 "estimate exact" truth est)
    trial.Harness.Runner.estimates trial.Harness.Runner.true_sizes

let test_section8_experiment_shape () =
  let rows = Harness.Section8_experiment.run ~scale:20 () in
  (* The paper's SM-without-PTC row plus one row per registered
     estimator. *)
  Alcotest.(check int) "row count"
    (1 + List.length (Els.Estimator.registry ()))
    (List.length rows);
  let algo i =
    (List.nth rows i).Harness.Section8_experiment.trial.Harness.Runner.algorithm
  in
  Alcotest.(check string) "row 1" "SM" (algo 0);
  Alcotest.(check string) "row 2" "SM+PTC" (algo 1);
  Alcotest.(check string) "row 3" "SSS" (algo 2);
  Alcotest.(check string) "row 4" "ELS" (algo 3);
  Alcotest.(check string) "row 5" "PESS" (algo 4);
  (* Every algorithm computes the same (correct) answer... *)
  List.iter
    (fun r ->
      Alcotest.(check int) "correct count" 4
        r.Harness.Section8_experiment.trial.Harness.Runner.result_rows)
    rows;
  (* ...but ELS finds a cheaper or equal plan than the misestimating
     algorithms (the paper's headline). *)
  let work i =
    (List.nth rows i).Harness.Section8_experiment.trial.Harness.Runner.work
  in
  Alcotest.(check bool) "ELS beats SM+PTC" true (work 3 <= work 1);
  Alcotest.(check bool) "ELS beats SSS" true (work 3 <= work 2);
  (* And the misestimation is visible: SM+PTC's final estimate is
     absurdly small while ELS's is exact. *)
  let final_est i =
    List.nth
      (List.nth rows i).Harness.Section8_experiment.trial.Harness.Runner.estimates
      2
  in
  Alcotest.(check bool) "SM+PTC underestimates" true (final_est 1 < 1e-6);
  Helpers.check_float ~eps:1e-6 "ELS exact" 4. (final_est 3)

let test_examples_tables_consistency () =
  (* The harness renderings must agree with the paper's numbers (already
     unit-tested against Els directly in test_els_paper). *)
  List.iter
    (fun (_, est, paper, _) ->
      Helpers.check_float ~eps:1e-9 "matches paper" paper est)
    (Harness.Examples_tables.rules_table ());
  let rows, card = Harness.Examples_tables.single_table_numbers () in
  Helpers.check_float "rows" 20. rows;
  Helpers.check_float "card" 9. card

let test_error_propagation_shape () =
  let points = Harness.Error_propagation.run ~seeds:[ 1; 2 ] ~max_tables:4 () in
  (* One point per registered estimator per size (2, 3 and 4 tables). *)
  Alcotest.(check int) "point count"
    (3 * List.length (Els.Estimator.registry ()))
    (List.length points);
  (* At 4 tables rule M must underestimate dramatically; LS must stay
     within a small constant factor. *)
  let find rule n =
    List.find
      (fun p ->
        p.Harness.Error_propagation.rule = rule
        && p.Harness.Error_propagation.n_tables = n)
      points
  in
  Alcotest.(check bool) "M collapses" true
    ((find "M" 4).Harness.Error_propagation.geo_mean_ratio < 1e-3);
  Alcotest.(check bool) "LS stays put" true
    ((find "LS" 4).Harness.Error_propagation.geo_mean_ratio > 0.2)

let test_local_sweep_shape () =
  let points = Harness.Local_sweep.run ~cutoffs:[ 10; 100 ] () in
  List.iter
    (fun p ->
      (* ELS is exact on this workload; the standard estimate is not. *)
      Helpers.check_float ~eps:1e-6 "ELS exact"
        (float_of_int p.Harness.Local_sweep.true_size)
        p.Harness.Local_sweep.els_est;
      Alcotest.(check bool) "standard underestimates" true
        (p.Harness.Local_sweep.standard_est
        < float_of_int p.Harness.Local_sweep.true_size))
    points

let suite =
  [
    Alcotest.test_case "report: table" `Quick test_report_table;
    Alcotest.test_case "report: cells" `Quick test_report_cells;
    Alcotest.test_case "runner: true prefix sizes" `Quick
      test_runner_true_prefix_sizes;
    Alcotest.test_case "runner: trial" `Quick test_runner_trial;
    Alcotest.test_case "section 8 experiment shape" `Quick
      test_section8_experiment_shape;
    Alcotest.test_case "examples tables consistency" `Quick
      test_examples_tables_consistency;
    Alcotest.test_case "error propagation shape" `Quick
      test_error_propagation_shape;
    Alcotest.test_case "local sweep shape" `Quick test_local_sweep_shape;
  ]
