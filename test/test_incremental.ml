(* Unit tests for incremental estimation (step 6, Section 7). *)

let check_float = Helpers.check_float

let profile_of config =
  Els.prepare config (Helpers.example1_db ()) (Helpers.example1_query ())

let test_start () =
  let p = profile_of Els.Config.els in
  let st = Els.Incremental.start p "r2" in
  check_float "initial size is effective rows" 1000. st.Els.Incremental.size;
  Alcotest.(check (list string)) "joined" [ "r2" ]
    (Els.Incremental.joined p st);
  Alcotest.(check (list (float 0.))) "history empty" []
    (Els.Incremental.history st)

let test_eligible () =
  let p = profile_of Els.Config.els in
  let st = Els.Incremental.start p "r2" in
  (* Joining r1 next: with closure on, only J1 (x=y) links r1 to {r2}. *)
  let elig = Els.Incremental.eligible p st "r1" in
  Alcotest.(check int) "one eligible" 1 (List.length elig);
  (* After extending with r3 as well, r1 has two eligible predicates. *)
  let st2 = Els.Incremental.extend p st "r3" in
  Alcotest.(check int) "two eligible" 2
    (List.length (Els.Incremental.eligible p st2 "r1"))

let test_step_selectivity_rules () =
  let state config =
    let p = profile_of config in
    let st = Els.Incremental.estimate_order p [ "r2"; "r3" ] in
    (p, st)
  in
  (* Joining r1: eligible selectivities are {0.01, 0.001} in one class. *)
  let p, st = state (Els.Config.sm ~ptc:true) in
  check_float ~eps:1e-12 "rule M multiplies" 1e-5
    (Els.Incremental.step_selectivity p st "r1");
  let p, st = state Els.Config.sss in
  check_float "rule SS takes min" 0.001
    (Els.Incremental.step_selectivity p st "r1");
  let p, st = state Els.Config.els in
  check_float "rule LS takes max" 0.01
    (Els.Incremental.step_selectivity p st "r1")

let test_cartesian_selectivity () =
  let p = profile_of Els.Config.els in
  let st = Els.Incremental.start p "r1" in
  (* r1-r3 have an implied predicate under closure; without closure the
     pair is disconnected and the step is a cartesian product. *)
  let p_nc = profile_of (Els.Config.sm ~ptc:false) in
  let st_nc = Els.Incremental.start p_nc "r1" in
  check_float "cartesian step" 1.
    (Els.Incremental.step_selectivity p_nc st_nc "r3");
  check_float "closure connects" 0.001
    (Els.Incremental.step_selectivity p st "r3")

let test_extend_errors () =
  let p = profile_of Els.Config.els in
  let st = Els.Incremental.start p "r1" in
  Alcotest.(check bool) "duplicate table" true
    (match Els.Incremental.extend p st "r1" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unknown table" true
    (match Els.Incremental.extend p st "zz" with
    | exception Not_found -> true
    | _ -> false)

let test_history () =
  let p = profile_of Els.Config.els in
  let st = Els.Incremental.estimate_order p [ "r1"; "r2"; "r3" ] in
  Alcotest.(check int) "history length" 2
    (List.length (Els.Incremental.history st));
  check_float "final matches size" st.Els.Incremental.size
    (List.nth (Els.Incremental.history st) 1);
  Alcotest.(check bool) "empty order rejected" true
    (match Els.Incremental.estimate_order p [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Rule M's final estimate is order-independent (each predicate counted
   exactly once), even though it is wrong; rule LS is order-independent
   and right; rule SS is genuinely order-dependent on this query. *)
let all_orders = [
    [ "r1"; "r2"; "r3" ]; [ "r1"; "r3"; "r2" ]; [ "r2"; "r1"; "r3" ];
    [ "r2"; "r3"; "r1" ]; [ "r3"; "r1"; "r2" ]; [ "r3"; "r2"; "r1" ];
  ]

let final_sizes config =
  let p = profile_of config in
  List.map (fun order -> Els.Incremental.final_size p order) all_orders

let test_order_dependence () =
  (* Distinct values up to relative rounding noise: multiplication order
     may differ across join orders. *)
  let distinct sizes =
    let sorted = List.sort Float.compare sizes in
    let rec count prev = function
      | [] -> 0
      | x :: rest ->
        let fresh =
          match prev with
          | None -> 1
          | Some p ->
            if Float.abs (x -. p) <= 1e-9 *. Float.max (Float.abs x) 1. then 0
            else 1
        in
        fresh + count (Some x) rest
    in
    count None sorted
  in
  Alcotest.(check int) "M consistent" 1
    (distinct (final_sizes (Els.Config.sm ~ptc:true)));
  Alcotest.(check int) "LS consistent" 1 (distinct (final_sizes Els.Config.els));
  Alcotest.(check bool) "SS inconsistent" true
    (distinct (final_sizes Els.Config.sss) > 1)

(* For any fixed order, est_M <= est_SS <= est_LS: multiplying more
   selectivities can only shrink the estimate, and min <= max. *)
let test_rule_ordering () =
  List.iter
    (fun order ->
      let est config =
        Els.Incremental.final_size (profile_of config) order
      in
      let m = est (Els.Config.sm ~ptc:true)
      and ss = est Els.Config.sss
      and ls = est Els.Config.els in
      Alcotest.(check bool)
        (Printf.sprintf "M <= SS on %s" (String.concat "," order))
        true (m <= ss +. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "SS <= LS on %s" (String.concat "," order))
        true (ss <= ls +. 1e-9))
    all_orders

let test_join_states () =
  let p = profile_of Els.Config.els in
  let s12 =
    Els.Incremental.join_states p
      (Els.Incremental.start p "r1")
      (Els.Incremental.start p "r2")
  in
  check_float "r1 x r2" (100. *. 1000. *. 0.01) s12.Els.Incremental.size;
  let s3 = Els.Incremental.start p "r3" in
  let bushy = Els.Incremental.join_states p s12 s3 in
  check_float "bushy total = 1000" 1000. bushy.Els.Incremental.size;
  Alcotest.(check int) "all tables" 3
    (List.length (Els.Incremental.joined p bushy));
  Alcotest.(check bool) "overlap rejected" true
    (match Els.Incremental.join_states p s12 s12 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Disconnected sides combine as a cartesian product. *)
  let p_nc = profile_of (Els.Config.sm ~ptc:false) in
  let cart =
    Els.Incremental.join_states p_nc
      (Els.Incremental.start p_nc "r1")
      (Els.Incremental.start p_nc "r3")
  in
  check_float "cartesian" 100000. cart.Els.Incremental.size

let suite =
  [
    Alcotest.test_case "start state" `Quick test_start;
    Alcotest.test_case "eligible predicates" `Quick test_eligible;
    Alcotest.test_case "step selectivity per rule" `Quick
      test_step_selectivity_rules;
    Alcotest.test_case "cartesian steps" `Quick test_cartesian_selectivity;
    Alcotest.test_case "extend errors" `Quick test_extend_errors;
    Alcotest.test_case "history bookkeeping" `Quick test_history;
    Alcotest.test_case "order (in)dependence per rule" `Quick
      test_order_dependence;
    Alcotest.test_case "M <= SS <= LS" `Quick test_rule_ordering;
    Alcotest.test_case "join_states (bushy)" `Quick test_join_states;
  ]
