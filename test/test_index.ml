(* Unit tests for hash indexes and index nested-loop joins. *)

let int_ n = Rel.Value.Int n
let c t col = Query.Cref.v t col

let rel table cols rows =
  let schema =
    Rel.Schema.make
      (List.map
         (fun name -> Rel.Schema.column ~table ~name Rel.Value.Ty_int)
         cols)
  in
  Rel.Relation.of_tuples schema
    (List.map (fun vals -> Rel.Tuple.of_list (List.map (fun v -> int_ v) vals)) rows)

let s_rel () = rel "s" [ "a"; "c" ] [ [2;200]; [2;201]; [3;300]; [4;400] ]

let test_index_build_lookup () =
  let idx = Exec.Index.build (s_rel ()) ~column:0 in
  Alcotest.(check int) "keys" 3 (Exec.Index.key_count idx);
  Alcotest.(check int) "column" 0 (Exec.Index.column idx);
  Alcotest.(check int) "duplicates kept" 2
    (List.length (Exec.Index.lookup idx (int_ 2)));
  Alcotest.(check int) "missing key" 0
    (List.length (Exec.Index.lookup idx (int_ 99)));
  Alcotest.(check int) "null probe" 0
    (List.length (Exec.Index.lookup idx Rel.Value.Null))

let test_index_skips_nulls () =
  let r =
    Rel.Relation.of_tuples
      (Rel.Schema.make [ Rel.Schema.column ~table:"t" ~name:"a" Rel.Value.Ty_int ])
      [ [| Rel.Value.Null |]; [| int_ 1 |] ]
  in
  let idx = Exec.Index.build r ~column:0 in
  Alcotest.(check int) "only non-null keys" 1 (Exec.Index.key_count idx)

let test_inl_matches_other_joins () =
  let r = rel "r" [ "a"; "b" ] [ [1;10]; [2;20]; [2;21]; [3;30]; [5;50] ] in
  let s = s_rel () in
  let pred = Query.Predicate.col_eq (c "r" "a") (c "s" "a") in
  let counters = Exec.Counters.create () in
  let inl =
    Exec.Index_nested_loop.join counters [ pred ] ~inner_filters:[]
      ~outer:(Exec.Operator.of_relation r) ~inner:s
  in
  let hj =
    Exec.Hash_join.join counters [ pred ]
      ~outer:(Exec.Operator.of_relation r)
      ~inner:(Exec.Operator.of_relation s)
  in
  let rows op =
    List.sort compare
      (List.map Array.to_list
         (Rel.Relation.to_list (Exec.Operator.to_relation op)))
  in
  Alcotest.(check bool) "INL = HJ" true (rows inl = rows hj)

let test_inl_inner_filters_and_residual () =
  let r = rel "r" [ "a" ] [ [2]; [3] ] in
  let s = s_rel () in
  let pred = Query.Predicate.col_eq (c "r" "a") (c "s" "a") in
  let counters = Exec.Counters.create () in
  let out =
    Exec.Index_nested_loop.join counters
      [ pred; Query.Predicate.cmp (c "s" "c") Rel.Cmp.Gt (int_ 200) ]
      ~inner_filters:[ Query.Predicate.cmp (c "s" "c") Rel.Cmp.Lt (int_ 400) ]
      ~outer:(Exec.Operator.of_relation r) ~inner:s
  in
  (* matches: r.2 x s(2,201) and r.3 x s(3,300); s(2,200) fails the
     residual, s(4,400) fails the inner filter and never matches anyway. *)
  Alcotest.(check int) "filters applied" 2 (Exec.Operator.count out)

let test_inl_requires_key () =
  let r = rel "r" [ "a" ] [ [1] ] in
  let counters = Exec.Counters.create () in
  Alcotest.(check bool) "no key rejected" true
    (match
       Exec.Index_nested_loop.join counters [] ~inner_filters:[]
         ~outer:(Exec.Operator.of_relation r) ~inner:(s_rel ())
     with
    | exception Invalid_argument _ -> true
    | (_ : Exec.Operator.t) -> false)

let test_inl_work_less_than_nl () =
  (* On a selective outer, INL touches far fewer tuples than plain NL. *)
  let rng = Datagen.Prng.create 2 in
  let db = Catalog.Db.create () in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"o" ~rows:10
       [ Datagen.Tablegen.key_column "k" ~rows:10 ]);
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"i"
       ~rows:5000
       [ Datagen.Tablegen.column "k" ~distinct:1000 ]);
  let pred = Query.Predicate.col_eq (c "o" "k") (c "i" "k") in
  let work method_ =
    let plan =
      Exec.Plan.Join
        {
          method_;
          outer = Exec.Plan.scan ~filters:[] "o";
          inner = Exec.Plan.scan ~filters:[] "i";
          predicates = [ pred ];
        }
    in
    let rows, counters, _ = Exec.Executor.count db plan in
    (rows, Exec.Counters.total_work counters)
  in
  let nl_rows, nl_work = work Exec.Plan.Nested_loop in
  let inl_rows, inl_work = work Exec.Plan.Index_nested_loop in
  Alcotest.(check int) "same result" nl_rows inl_rows;
  Alcotest.(check bool) "INL cheaper" true (inl_work * 4 < nl_work)

let test_inl_requires_base_inner () =
  let db = Datagen.Section8.build ~scale:100 ~seed:1 () in
  let bad_plan =
    Exec.Plan.Join
      {
        method_ = Exec.Plan.Index_nested_loop;
        outer = Exec.Plan.scan ~filters:[] "s";
        inner =
          Exec.Plan.Join
            {
              method_ = Exec.Plan.Hash;
              outer = Exec.Plan.scan ~filters:[] "m";
              inner = Exec.Plan.scan ~filters:[] "b";
              predicates =
                [ Query.Predicate.col_eq (c "m" "m") (c "b" "b") ];
            };
        predicates = [ Query.Predicate.col_eq (c "s" "s") (c "m" "m") ];
      }
  in
  Alcotest.(check bool) "composite inner rejected" true
    (match Exec.Executor.count db bad_plan with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_dp_uses_inl_when_cheap () =
  (* A very selective outer joined to a large inner: with correct (ELS)
     estimates the enumerator should prefer an index access path over
     scanning methods when all are allowed. *)
  let db = Datagen.Section8.build ~scale:10 ~seed:1 () in
  let q = Datagen.Section8.query_scaled ~scale:10 in
  let choice =
    Optimizer.choose
      ~methods:
        [
          Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash;
          Exec.Plan.Index_nested_loop;
        ]
      (Els.Config.sm ~ptc:false) db q
  in
  let rec methods_of = function
    | Exec.Plan.Scan _ -> []
    | Exec.Plan.Join { method_; outer; inner; _ } ->
      (method_ :: methods_of outer) @ methods_of inner
  in
  Alcotest.(check bool) "INL chosen somewhere" true
    (List.mem Exec.Plan.Index_nested_loop (methods_of choice.Optimizer.plan));
  let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
  Alcotest.(check int) "still correct" 9 rows

let suite =
  [
    Alcotest.test_case "index: build and lookup" `Quick test_index_build_lookup;
    Alcotest.test_case "index: null keys skipped" `Quick test_index_skips_nulls;
    Alcotest.test_case "inl: agrees with hash join" `Quick
      test_inl_matches_other_joins;
    Alcotest.test_case "inl: inner filters and residuals" `Quick
      test_inl_inner_filters_and_residual;
    Alcotest.test_case "inl: requires a key" `Quick test_inl_requires_key;
    Alcotest.test_case "inl: cheaper than NL on selective outer" `Quick
      test_inl_work_less_than_nl;
    Alcotest.test_case "inl: requires base-table inner" `Quick
      test_inl_requires_base_inner;
    Alcotest.test_case "dp: picks INL when estimates are honest" `Quick
      test_dp_uses_inl_when_cheap;
  ]
