(* End-to-end integration tests: SQL text -> binder -> estimator ->
   optimizer -> executor, cross-checked against reference execution. *)

let all_configs =
  [
    Els.Config.sm ~ptc:false; Els.Config.sm ~ptc:true; Els.Config.sss;
    Els.Config.els;
  ]

(* SQL-driven Example 1b on a stats-only catalog. *)
let test_sql_to_estimate () =
  let db = Helpers.example1_db () in
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT * FROM r1, r2, r3 WHERE r1.x = r2.y AND r2.y = r3.z"
  in
  Helpers.check_float "estimate via SQL" 1000.
    (Els.estimate Els.Config.els db q [ "r2"; "r3"; "r1" ])

(* The SQL spelling of the Section 8 query binds to the same predicates as
   the programmatic construction. *)
let test_sql_matches_programmatic () =
  let db = Datagen.Section8.build ~scale:50 ~seed:1 () in
  let from_sql =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM s, m, b, g WHERE s = m AND m = b AND b = g AND s \
       < 2"
  in
  let programmatic = Datagen.Section8.query_scaled ~scale:50 in
  let canon q =
    List.sort Query.Predicate.compare q.Query.predicates
    |> List.map Query.Predicate.to_string
  in
  Alcotest.(check (list string)) "same predicates" (canon programmatic)
    (canon from_sql)

(* All four algorithms, both method repertoires: every chosen plan
   computes the same, correct count. *)
let test_section8_all_algorithms_all_methods () =
  let db = Datagen.Section8.build ~scale:20 ~seed:5 () in
  let q = Datagen.Section8.query_scaled ~scale:20 in
  let expected = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  Alcotest.(check int) "reference" 4 expected;
  List.iter
    (fun methods ->
      List.iter
        (fun config ->
          let choice = Optimizer.choose ~methods config db q in
          let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
          Alcotest.(check int)
            (Printf.sprintf "%s with %d methods" (Els.Config.name config)
               (List.length methods))
            expected rows)
        all_configs)
    [
      [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge ];
      [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ];
      [ Exec.Plan.Hash ];
    ]

(* Chain workloads: the optimizer's plan computes the reference count
   under every estimation algorithm (plans differ, results must not). *)
let test_chain_workloads_all_algorithms () =
  List.iter
    (fun seed ->
      let spec =
        Datagen.Workload.chain ~rows_range:(50, 200) ~distinct_range:(10, 50)
          ~seed ~n_tables:4 ()
      in
      let db = spec.Datagen.Workload.db in
      let q = spec.Datagen.Workload.query in
      let expected = (Exec.Executor.run_query db q).Exec.Executor.row_count in
      List.iter
        (fun config ->
          let choice = Optimizer.choose config db q in
          let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
          Alcotest.(check int)
            (Printf.sprintf "seed %d %s" seed (Els.Config.name config))
            expected rows)
        all_configs)
    [ 1; 2; 3 ]

let test_star_workload_all_algorithms () =
  let spec = Datagen.Workload.star ~fact_rows:800 ~seed:6 ~n_dims:3 () in
  let db = spec.Datagen.Workload.db in
  let q = spec.Datagen.Workload.query in
  let expected = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  List.iter
    (fun config ->
      let choice = Optimizer.choose config db q in
      let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
      Alcotest.(check int) (Els.Config.name config) expected rows)
    all_configs

(* A query mixing everything: local range + equality + intra-table
   equality via closure + a join, through SQL. *)
let test_mixed_query_end_to_end () =
  let rng = Datagen.Prng.create 17 in
  let db = Catalog.Db.create () in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"e" ~rows:400
       [
         Datagen.Tablegen.column "dept" ~distinct:20;
         Datagen.Tablegen.column "mgr" ~distinct:20;
       ]);
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"d" ~rows:20
       [ Datagen.Tablegen.key_column "id" ~rows:20 ]);
  let q =
    Sqlfront.Binder.compile_exn db
      "SELECT COUNT(*) FROM e, d WHERE e.dept = d.id AND e.dept = e.mgr AND \
       d.id <= 10"
  in
  let expected = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  List.iter
    (fun config ->
      let choice = Optimizer.choose config db q in
      let rows, _, _ = Exec.Executor.count db choice.Optimizer.plan in
      Alcotest.(check int) (Els.Config.name config) expected rows)
    all_configs;
  (* ELS's estimate should be within a small factor of the truth here:
     dept = mgr thins e by ~1/20, d.id <= 10 halves d. *)
  let est = Els.estimate Els.Config.els db q q.Query.tables in
  Alcotest.(check bool)
    (Printf.sprintf "ELS in the right ballpark (est %g, true %d)" est expected)
    true
    (expected = 0 || (est > float_of_int expected /. 5. && est < float_of_int expected *. 5.))

(* The paper's core claim end to end at reduced scale: the ELS-chosen
   plan never does more work than the SM+PTC- or SSS-chosen plans. *)
let test_els_never_worse () =
  List.iter
    (fun seed ->
      let db = Datagen.Section8.build ~scale:20 ~seed () in
      let q = Datagen.Section8.query_scaled ~scale:20 in
      let work config =
        let choice =
          Optimizer.choose
            ~methods:[ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge ]
            config db q
        in
        let _, counters, _ = Exec.Executor.count db choice.Optimizer.plan in
        Exec.Counters.total_work counters
      in
      let els = work Els.Config.els in
      Alcotest.(check bool) "ELS <= SM+PTC" true
        (els <= work (Els.Config.sm ~ptc:true));
      Alcotest.(check bool) "ELS <= SSS" true (els <= work Els.Config.sss))
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "SQL to estimate (example 1b)" `Quick
      test_sql_to_estimate;
    Alcotest.test_case "SQL matches programmatic query" `Quick
      test_sql_matches_programmatic;
    Alcotest.test_case "section 8: all algorithms, all methods" `Quick
      test_section8_all_algorithms_all_methods;
    Alcotest.test_case "chain workloads: all algorithms" `Quick
      test_chain_workloads_all_algorithms;
    Alcotest.test_case "star workload: all algorithms" `Quick
      test_star_workload_all_algorithms;
    Alcotest.test_case "mixed query end to end" `Quick
      test_mixed_query_end_to_end;
    Alcotest.test_case "ELS plan never worse (scaled section 8)" `Quick
      test_els_never_worse;
  ]
