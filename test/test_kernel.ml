(* Compiled estimation kernels (Els.Kernel / Els.Profile.kernel).

   Four contracts, matching the three-tier ladder documented in
   Incremental (list-scan -> indexed -> kernel):

   - every built-in estimator's prepared profile carries a kernel, and a
     custom estimator falls back to the interpreted path (kernel = None)
     with estimates unchanged;
   - the kernel is bit-identical to the indexed interpreter: sizes and
     histories agree [Float.equal] across every estimator, every join
     order, left-deep and bushy, with and without an optimizer budget;
   - one kernel extend step allocates exactly zero minor-heap words
     (measured with Gc.minor_words, not assumed);
   - equivalence-class grouping keys on [Cref.equal]: two eligible
     predicates of one class yield one group and one combined
     selectivity (regression for the polymorphic-assoc grouping). *)

let count = 60
let methods = [ Exec.Plan.Nested_loop; Exec.Plan.Sort_merge; Exec.Plan.Hash ]

(* --- generators (mirroring test_properties.ml) --- *)

type chain_spec = {
  dims : (int * int) list; (* (distinct, multiplicity) per table *)
  seed : int;
}

let gen_chain_spec =
  QCheck2.Gen.(
    let* n = int_range 2 4 in
    let* dims = list_repeat n (pair (int_range 2 12) (int_range 1 5)) in
    let* seed = int_range 0 10000 in
    return { dims; seed })

let print_chain_spec spec =
  Printf.sprintf "seed=%d dims=[%s]" spec.seed
    (String.concat "; "
       (List.map (fun (d, m) -> Printf.sprintf "(%d,%d)" d m) spec.dims))

let build_chain spec =
  let rng = Datagen.Prng.create spec.seed in
  let db = Catalog.Db.create () in
  let names = List.mapi (fun i _ -> Printf.sprintf "t%d" (i + 1)) spec.dims in
  List.iter2
    (fun name (distinct, mult) ->
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:name
           ~rows:(distinct * mult)
           [ Datagen.Tablegen.column "a" ~distinct ]))
    names spec.dims;
  let rec links = function
    | a :: (b :: _ as rest) ->
      Query.Predicate.col_eq (Query.Cref.v a "a") (Query.Cref.v b "a")
      :: links rest
    | [ _ ] | [] -> []
  in
  (db, Query.make ~tables:names (links names), names)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let has_kernel profile =
  match Els.Profile.kernel profile with Some _ -> true | None -> false

(* Only the four built-ins lower to the compiled tier; the
   degree-statistics family (lp2/degseq/ent) caps through closures the
   lowering can't see into, so those profiles stay interpreted by
   design. *)
let lowerable (config : Els.Config.t) =
  List.exists
    (fun e -> Els.Estimator.equal e config.Els.Config.estimator)
    [ Els.Estimator.m; Els.Estimator.ss; Els.Estimator.ls; Els.Estimator.pess ]

(* --- compilation coverage --- *)

let test_panel_kernels_compile () =
  let db, query, _ = build_chain { dims = [ (6, 2); (4, 3); (8, 1) ]; seed = 42 } in
  List.iter
    (fun config ->
      let profile = Els.prepare config db query in
      Alcotest.(check bool)
        (Printf.sprintf "%s %s a kernel" (Els.Config.name config)
           (if lowerable config then "compiles" else "never compiles"))
        (lowerable config) (has_kernel profile);
      Alcotest.(check bool)
        (Printf.sprintf "%s honors ~kernel:false" (Els.Config.name config))
        false
        (has_kernel (Els.prepare ~kernel:false config db query)))
    (Els.Config.panel ())

(* A custom estimator (unknown combine/cap closures) must not compile — the
   profile estimates through the interpreted path, bit-identical to the
   built-in it copies. *)
let test_custom_estimator_falls_back () =
  let db, query, names =
    build_chain { dims = [ (9, 1); (5, 2); (7, 3) ]; seed = 11 }
  in
  let custom = { Els.Estimator.m with id = "custom-m"; label = "custom-M" } in
  let profile = Els.prepare (Els.Config.of_estimator custom) db query in
  Alcotest.(check bool) "custom estimator has no kernel" false
    (has_kernel profile);
  let reference =
    Els.prepare ~kernel:false (Els.Config.of_estimator Els.Estimator.m) db query
  in
  List.iter
    (fun order ->
      Alcotest.(check bool) "interpreted fallback still estimates" true
        (Float.equal
           (Els.Incremental.final_size profile order)
           (Els.Incremental.final_size reference order)))
    (permutations names)

(* A comparison join is not lowerable: the whole profile stays on the
   interpreted tier (kernel = None) and every extend step taken there
   bumps the visible fallback counter — the signal CI asserts on. *)
let test_comparison_join_falls_back () =
  let db, _, names =
    build_chain { dims = [ (6, 2); (4, 3); (8, 1) ]; seed = 7 }
  in
  let link a op b =
    Query.Predicate.col_cmp (Query.Cref.v a "a") op (Query.Cref.v b "a")
  in
  let query =
    Query.make ~tables:names
      [ link "t1" Query.Predicate.Eq "t2"; link "t2" Query.Predicate.Lt "t3" ]
  in
  let profile = Els.prepare Els.Config.els db query in
  Alcotest.(check bool) "mixed query compiles no kernel" false
    (has_kernel profile);
  Alcotest.(check int) "fresh profile has no fallback steps" 0
    (Els.Profile.kernel_fallback_steps profile);
  ignore (Els.Incremental.final_size profile names);
  Alcotest.(check bool) "interpreted steps counted as fallbacks" true
    (Els.Profile.kernel_fallback_steps profile > 0)

(* --- allocation regression --- *)

(* One DP-style sweep over all 2^n masks through the *_into entry points.
   Ascending mask order propagates sizes without any submask bookkeeping,
   and the loop itself is closure-free so the audit below charges only the
   kernel. *)
let sweep kernel sizes n =
  Array.fill sizes 0 (Array.length sizes) Float.nan;
  for bit = 0 to n - 1 do
    Els.Kernel.start_into kernel ~sizes ~bit
  done;
  for mask = 1 to (1 lsl n) - 1 do
    if not (Float.is_nan sizes.(mask)) then
      for bit = 0 to n - 1 do
        if
          mask land (1 lsl bit) = 0
          && Float.is_nan sizes.(mask lor (1 lsl bit))
        then Els.Kernel.extend_into kernel ~sizes ~mask ~bit
      done
  done

let test_zero_alloc_per_step () =
  let n = 10 in
  let chain =
    Datagen.Workload.chain ~rows_range:(100, 300) ~distinct_range:(20, 100)
      ~seed:7 ~n_tables:n ()
  in
  let profile =
    Els.prepare Els.Config.els chain.Datagen.Workload.db
      chain.Datagen.Workload.query
  in
  let kernel =
    match Els.Profile.kernel profile with
    | Some k -> k
    | None -> Alcotest.fail "ELS profile did not compile a kernel"
  in
  let sizes = Array.make (1 lsl n) Float.nan in
  sweep kernel sizes n (* warmup: fault in code paths before measuring *);
  let steps0 = Els.Kernel.steps kernel in
  (* An empty Gc.minor_words window measures the sampling overhead (the
     boxed float the probe itself returns); the sweep must add exactly
     nothing on top of it. *)
  let w0 = Gc.minor_words () in
  let w1 = Gc.minor_words () in
  let overhead = w1 -. w0 in
  let w2 = Gc.minor_words () in
  sweep kernel sizes n;
  let w3 = Gc.minor_words () in
  let allocated = w3 -. w2 -. overhead in
  let steps = Els.Kernel.steps kernel - steps0 in
  (* Every mask with >= 2 tables is extended into exactly once. *)
  Alcotest.(check int) "extend steps per sweep" ((1 lsl n) - 1 - n) steps;
  Alcotest.(check bool) "full join reached" true
    (not (Float.is_nan sizes.((1 lsl n) - 1)));
  match Sys.backend_type with
  | Sys.Native ->
    if allocated <> 0. then
      Alcotest.failf "kernel sweep allocated %.0f minor words over %d steps"
        allocated steps
  | Sys.Bytecode | Sys.Other _ -> () (* bytecode boxes every float *)

(* --- differential properties --- *)

let split k l =
  (List.filteri (fun i _ -> i < k) l, List.filteri (fun i _ -> i >= k) l)

(* Bushy probe: bridge the two halves of the order with join_states. *)
let bushy_size profile order =
  match order with
  | _ :: _ :: _ ->
    let left, right = split (List.length order / 2) order in
    (Els.Incremental.join_states profile
       (Els.Incremental.estimate_order profile left)
       (Els.Incremental.estimate_order profile right))
      .Els.Incremental.size
  | _ -> 1.

let prop_kernel_matches_indexed =
  QCheck2.Test.make ~count
    ~name:"kernel = indexed interpreter (all estimators, all orders)"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, names = build_chain spec in
      List.for_all
        (fun config ->
          let kprofile = Els.prepare config db query in
          let iprofile = Els.prepare ~kernel:false config db query in
          Bool.equal (has_kernel kprofile) (lowerable config)
          && (not (has_kernel iprofile))
          && List.for_all
               (fun order ->
                 let a = Els.Incremental.estimate_order kprofile order in
                 let b = Els.Incremental.estimate_order iprofile order in
                 Float.equal a.Els.Incremental.size b.Els.Incremental.size
                 && List.for_all2 Float.equal (Els.Incremental.history a)
                      (Els.Incremental.history b)
                 && Float.equal
                      (bushy_size kprofile order)
                      (bushy_size iprofile order))
               (permutations names))
        (Els.Config.panel ()))

(* The DP enumerator's kernel connectivity probe must not perturb budget
   accounting: with the same node budget, kernel and indexed profiles
   charge the same expansions in the same order and land on the same
   ladder rung with the same plan — for tiny, mid-sized and effectively
   unlimited budgets, and with no budget at all. *)
let prop_kernel_budget_identity =
  QCheck2.Test.make ~count:40
    ~name:"budgeted DP identical on kernel and indexed profiles"
    ~print:print_chain_spec gen_chain_spec (fun spec ->
      let db, query, _ = build_chain spec in
      let kprofile = Els.prepare Els.Config.els db query in
      let iprofile = Els.prepare ~kernel:false Els.Config.els db query in
      let agree (a : Optimizer.Dp.node) (b : Optimizer.Dp.node) =
        Float.equal a.Optimizer.Dp.cost b.Optimizer.Dp.cost
        && Exec.Plan.join_order a.Optimizer.Dp.plan
           = Exec.Plan.join_order b.Optimizer.Dp.plan
        && List.for_all2 Float.equal
             (Els.Incremental.history a.Optimizer.Dp.state)
             (Els.Incremental.history b.Optimizer.Dp.state)
      in
      agree
        (Optimizer.Dp.optimize ~methods kprofile query)
        (Optimizer.Dp.optimize ~methods iprofile query)
      && List.for_all
           (fun node_budget ->
             let run profile =
               let budget = Rel.Budget.create ~node_budget () in
               Optimizer.Dp.optimize_traced ~methods ~budget profile query
             in
             let kn, kprov = run kprofile in
             let inode, iprov = run iprofile in
             agree kn inode
             && kprov.Optimizer.Provenance.rung
                = iprov.Optimizer.Provenance.rung
             && kprov.Optimizer.Provenance.expansions
                = iprov.Optimizer.Provenance.expansions)
           [ 3; 25; 10_000_000 ])

(* --- one-selectivity-per-class regression --- *)

(* Triangle query: joining t3 into {t1, t2} has two eligible predicates in
   ONE equivalence class. The grouping must key on Cref.equal and produce a
   single group, so the estimator combines the two selectivities once
   (min/max/product of both) instead of multiplying two singleton groups —
   the failure mode of the old polymorphic-assoc grouping, observable for
   every non-multiplicative rule. *)
let build_triangle () =
  let rng = Datagen.Prng.create 23 in
  let db = Catalog.Db.create () in
  List.iter
    (fun (name, distinct, mult) ->
      ignore
        (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:name
           ~rows:(distinct * mult)
           [ Datagen.Tablegen.column "a" ~distinct ]))
    [ ("t1", 8, 2); ("t2", 5, 3); ("t3", 11, 1) ];
  let link a b =
    Query.Predicate.col_eq (Query.Cref.v a "a") (Query.Cref.v b "a")
  in
  ( db,
    Query.make
      ~tables:[ "t1"; "t2"; "t3" ]
      [ link "t1" "t2"; link "t2" "t3"; link "t1" "t3" ] )

let test_one_selectivity_per_class () =
  let db, query = build_triangle () in
  List.iter
    (fun config ->
      let name = Els.Config.name config in
      let profile = Els.prepare ~kernel:false config db query in
      let state =
        Els.Incremental.extend profile
          (Els.Incremental.start profile "t1")
          "t2"
      in
      let eligible = Els.Incremental.eligible profile state "t3" in
      Alcotest.(check int)
        (name ^ ": two predicates reach t3")
        2 (List.length eligible);
      let groups = Els.Selectivity.group_by_class profile eligible in
      Alcotest.(check (list int))
        (name ^ ": one class, both members")
        [ 2 ]
        (List.map List.length groups);
      (* The step selectivity is the estimator's single combination of the
         class's two selectivities... *)
      let expected =
        config.Els.Config.estimator.Els.Estimator.combine
          (List.map (Els.Selectivity.join profile) eligible)
      in
      Alcotest.(check bool)
        (name ^ ": combined once per class")
        true
        (Float.equal expected
           (Els.Incremental.step_selectivity profile state "t3"));
      (* ...and the kernel agrees with the interpreter on it. *)
      let kprofile = Els.prepare config db query in
      let kstate =
        Els.Incremental.extend kprofile
          (Els.Incremental.start kprofile "t1")
          "t2"
      in
      Alcotest.(check bool)
        (name ^ ": kernel agrees")
        true
        (Float.equal expected
           (Els.Incremental.step_selectivity kprofile kstate "t3")))
    (Els.Config.panel ())

let suite =
  [
    Alcotest.test_case "kernel: panel estimators compile" `Quick
      test_panel_kernels_compile;
    Alcotest.test_case "kernel: custom estimator falls back" `Quick
      test_custom_estimator_falls_back;
    Alcotest.test_case "kernel: comparison join falls back" `Quick
      test_comparison_join_falls_back;
    Alcotest.test_case "kernel: zero minor words per extend step" `Quick
      test_zero_alloc_per_step;
    Alcotest.test_case "kernel: one selectivity per class" `Quick
      test_one_selectivity_per_class;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_kernel_matches_indexed; prop_kernel_budget_identity ]
