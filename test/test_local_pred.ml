(* Unit tests for combining multiple local predicates on one column
   (Section 4 step 3 / companion report rule). *)

module LP = Els.Local_pred

let check_float = Helpers.check_float
let int_ n = Rel.Value.Int n

(* A column over 1..100 with 100 distinct values. *)
let stats () =
  Stats.Col_stats.with_bounds ~distinct:100 ~lo:(int_ 1) ~hi:(int_ 100)

let test_empty () =
  let r = LP.combine (stats ()) [] in
  check_float "selectivity 1" 1. r.LP.selectivity;
  Alcotest.(check bool) "unrestricted" true (r.LP.restriction = LP.Unrestricted)

let test_single_equality () =
  let r = LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 7) ] in
  check_float "1/d" 0.01 r.LP.selectivity;
  Alcotest.(check bool) "pinned" true (r.LP.restriction = LP.Equality (int_ 7));
  check_float "d' = 1" 1. (LP.reduced_distinct (stats ()) r)

let test_duplicate_equalities () =
  let r = LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 7); (Rel.Cmp.Eq, int_ 7) ] in
  check_float "duplicates do not compound" 0.01 r.LP.selectivity

let test_conflicting_equalities () =
  let r = LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 7); (Rel.Cmp.Eq, int_ 8) ] in
  check_float "contradiction" 0. r.LP.selectivity;
  Alcotest.(check bool) "marked" true (r.LP.restriction = LP.Contradiction);
  check_float "d' = 0" 0. (LP.reduced_distinct (stats ()) r)

let test_equality_dominates_ranges () =
  (* x = 7 AND x < 50: the equality is the most restrictive predicate. *)
  let r =
    LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 7); (Rel.Cmp.Lt, int_ 50) ]
  in
  check_float "equality wins" 0.01 r.LP.selectivity;
  (* x = 70 AND x < 50 is empty. *)
  let r2 =
    LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 70); (Rel.Cmp.Lt, int_ 50) ]
  in
  check_float "incompatible" 0. r2.LP.selectivity

let test_equality_vs_ne () =
  let r = LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 7); (Rel.Cmp.Ne, int_ 7) ] in
  check_float "x=7 and x<>7 empty" 0. r.LP.selectivity;
  let r2 = LP.combine (stats ()) [ (Rel.Cmp.Eq, int_ 7); (Rel.Cmp.Ne, int_ 9) ] in
  check_float "x=7 and x<>9 fine" 0.01 r2.LP.selectivity

let test_tightest_range_pair () =
  (* x > 10 AND x > 30 AND x <= 80 AND x <= 90: the tightest pair is
     (30, 80]: (80 - 30) / 100. *)
  let r =
    LP.combine (stats ())
      [
        (Rel.Cmp.Gt, int_ 10); (Rel.Cmp.Gt, int_ 30); (Rel.Cmp.Le, int_ 80);
        (Rel.Cmp.Le, int_ 90);
      ]
  in
  check_float ~eps:1e-9 "tightest pair" 0.5 r.LP.selectivity;
  Alcotest.(check bool) "range restriction" true
    (match r.LP.restriction with
    | LP.Range _ -> true
    | _ -> false)

let test_tie_exclusive_wins () =
  (* x > 10 is tighter than x >= 10. *)
  let r =
    LP.combine (stats ()) [ (Rel.Cmp.Ge, int_ 10); (Rel.Cmp.Gt, int_ 10) ]
  in
  let r_exclusive = LP.combine (stats ()) [ (Rel.Cmp.Gt, int_ 10) ] in
  check_float "exclusive bound wins tie" r_exclusive.LP.selectivity
    r.LP.selectivity

let test_empty_interval () =
  let r =
    LP.combine (stats ()) [ (Rel.Cmp.Gt, int_ 80); (Rel.Cmp.Lt, int_ 20) ]
  in
  check_float "empty interval" 0. r.LP.selectivity;
  (* Touching bounds: x >= 50 AND x <= 50 admits exactly one value. *)
  let r2 =
    LP.combine (stats ()) [ (Rel.Cmp.Ge, int_ 50); (Rel.Cmp.Le, int_ 50) ]
  in
  Alcotest.(check bool) "point interval nonempty" true (r2.LP.selectivity > 0.);
  (* x > 50 AND x <= 50 is empty. *)
  let r3 =
    LP.combine (stats ()) [ (Rel.Cmp.Gt, int_ 50); (Rel.Cmp.Le, int_ 50) ]
  in
  check_float "half-open point empty" 0. r3.LP.selectivity

let test_ne_within_range () =
  (* x <= 50 AND x <> 10: the <> removes one value's worth of mass. *)
  let r =
    LP.combine (stats ()) [ (Rel.Cmp.Le, int_ 50); (Rel.Cmp.Ne, int_ 10) ]
  in
  check_float ~eps:1e-9 "range times ne" (0.5 *. 0.99) r.LP.selectivity;
  (* x <= 50 AND x <> 90: the <> is outside the interval, no effect. *)
  let r2 =
    LP.combine (stats ()) [ (Rel.Cmp.Le, int_ 50); (Rel.Cmp.Ne, int_ 90) ]
  in
  check_float ~eps:1e-9 "ne outside ignored" 0.5 r2.LP.selectivity;
  (* Duplicate <> counted once. *)
  let r3 =
    LP.combine (stats ())
      [ (Rel.Cmp.Le, int_ 50); (Rel.Cmp.Ne, int_ 10); (Rel.Cmp.Ne, int_ 10) ]
  in
  check_float ~eps:1e-9 "duplicate ne once" (0.5 *. 0.99) r3.LP.selectivity

let test_null_constant () =
  let r = LP.combine (stats ()) [ (Rel.Cmp.Lt, Rel.Value.Null) ] in
  check_float "null comparison empties" 0. r.LP.selectivity

let test_reduced_distinct_range () =
  let r = LP.combine (stats ()) [ (Rel.Cmp.Le, int_ 50) ] in
  check_float ~eps:1e-9 "d' = d * s" 50. (LP.reduced_distinct (stats ()) r)

(* Regression: d' must clamp at 1, not 1e-300 (paper: a satisfiable range
   leaves at least one value). With d = 10 over a domain of a million, the
   aggressive range x <= 100 has d * s ≈ 1e-3; the seed code let d' fall
   below 1, turning 1/max(d'_1, d'_2) into an amplification factor. *)
let sparse_stats () =
  Stats.Col_stats.with_bounds ~distinct:10 ~lo:(int_ 1) ~hi:(int_ 1_000_000)

let test_range_clamps_at_one () =
  let r = LP.combine (sparse_stats ()) [ (Rel.Cmp.Le, int_ 100) ] in
  Alcotest.(check bool) "aggressive range: d * s < 1" true
    (r.LP.selectivity *. 10. < 1.);
  check_float "d' clamped at 1" 1. (LP.reduced_distinct (sparse_stats ()) r)

(* End to end: after an aggressive local range predicate on both join
   columns, every join selectivity the estimator computes stays <= 1. *)
let test_join_selectivity_capped () =
  let db = Catalog.Db.create () in
  let add name =
    let schema =
      Rel.Schema.make [ Rel.Schema.column ~table:name ~name:"a" Rel.Value.Ty_int ]
    in
    Catalog.Db.add db
      (Catalog.Table.stats_only ~name ~schema ~row_count:1_000_000
         ~column_stats:[ ("a", sparse_stats ()) ])
  in
  add "r";
  add "u";
  let c t = Query.Cref.v t "a" in
  let join_pred = Query.Predicate.col_eq (c "r") (c "u") in
  let q =
    Query.make ~tables:[ "r"; "u" ]
      [
        join_pred;
        Query.Predicate.cmp (c "r") Rel.Cmp.Le (int_ 100);
        Query.Predicate.cmp (c "u") Rel.Cmp.Le (int_ 100);
      ]
  in
  List.iter
    (fun config ->
      let profile = Els.prepare config db q in
      let s = Els.Selectivity.join profile join_pred in
      Alcotest.(check bool)
        (Printf.sprintf "S_J <= 1 under %s" (Els.Config.name config))
        true
        (s <= 1. && s >= 0.);
      (* The effective cardinality entering Equation 2 respects d' >= 1
         (the table survives the predicate with ~100 expected rows). *)
      Alcotest.(check bool) "effective join card >= 1" true
        (Els.Profile.join_card profile (c "r") >= 1.))
    [ Els.Config.els; Els.Config.sss; Els.Config.sm ~ptc:true ]

let suite =
  [
    Alcotest.test_case "empty conjunction" `Quick test_empty;
    Alcotest.test_case "single equality" `Quick test_single_equality;
    Alcotest.test_case "duplicate equalities" `Quick test_duplicate_equalities;
    Alcotest.test_case "conflicting equalities" `Quick
      test_conflicting_equalities;
    Alcotest.test_case "equality dominates ranges" `Quick
      test_equality_dominates_ranges;
    Alcotest.test_case "equality vs <>" `Quick test_equality_vs_ne;
    Alcotest.test_case "tightest range pair" `Quick test_tightest_range_pair;
    Alcotest.test_case "exclusive wins ties" `Quick test_tie_exclusive_wins;
    Alcotest.test_case "empty intervals" `Quick test_empty_interval;
    Alcotest.test_case "<> within range" `Quick test_ne_within_range;
    Alcotest.test_case "null constants" `Quick test_null_constant;
    Alcotest.test_case "reduced distinct" `Quick test_reduced_distinct_range;
    Alcotest.test_case "range d' clamps at 1 (regression)" `Quick
      test_range_clamps_at_one;
    Alcotest.test_case "join selectivity <= 1 after aggressive range" `Quick
      test_join_selectivity_capped;
  ]
