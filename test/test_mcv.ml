(* Unit tests for most-common-value sketches and skew-aware equality
   selectivities. *)

let int_ n = Rel.Value.Int n
let check_float = Helpers.check_float

(* 60% value 1, 30% value 2, 10% spread over 3..12 (1% each). *)
let skewed_values () =
  Array.init 1000 (fun i ->
      if i < 600 then int_ 1
      else if i < 900 then int_ 2
      else int_ (3 + (i mod 10)))

let test_build_ranks () =
  let mcv = Option.get (Stats.Mcv.build ~k:2 (skewed_values ())) in
  Alcotest.(check int) "tracked" 2 (Stats.Mcv.tracked_count mcv);
  match Stats.Mcv.entries mcv with
  | [ e1; e2 ] ->
    Alcotest.(check bool) "rank 1 is value 1" true
      (Rel.Value.equal e1.Stats.Mcv.value (int_ 1));
    check_float ~eps:1e-9 "fraction 1" 0.6 e1.Stats.Mcv.fraction;
    Alcotest.(check bool) "rank 2 is value 2" true
      (Rel.Value.equal e2.Stats.Mcv.value (int_ 2));
    check_float ~eps:1e-9 "fraction 2" 0.3 e2.Stats.Mcv.fraction;
    check_float ~eps:1e-9 "covered" 0.9 (Stats.Mcv.covered_fraction mcv)
  | _ -> Alcotest.fail "expected two entries"

let test_lookup_and_remainder () =
  let mcv = Option.get (Stats.Mcv.build ~k:2 (skewed_values ())) in
  Alcotest.(check (option (float 1e-9))) "tracked lookup" (Some 0.6)
    (Stats.Mcv.lookup mcv (int_ 1));
  Alcotest.(check (option (float 1e-9))) "untracked lookup" None
    (Stats.Mcv.lookup mcv (int_ 7));
  (* 12 distinct, 2 tracked: remaining 10% over 10 values = 1% each. *)
  check_float ~eps:1e-9 "remainder" 0.01
    (Stats.Mcv.remainder_eq_selectivity mcv ~distinct:12)

let test_full_coverage () =
  let values = Array.init 100 (fun i -> int_ (i mod 3)) in
  let mcv = Option.get (Stats.Mcv.build ~k:10 values) in
  Alcotest.(check int) "only 3 values tracked" 3 (Stats.Mcv.tracked_count mcv);
  check_float ~eps:1e-9 "fully covered" 1. (Stats.Mcv.covered_fraction mcv);
  check_float "remainder zero" 0.
    (Stats.Mcv.remainder_eq_selectivity mcv ~distinct:3)

let test_edge_cases () =
  Alcotest.(check bool) "all-null column" true
    (Stats.Mcv.build ~k:3 [| Rel.Value.Null; Rel.Value.Null |] = None);
  Alcotest.(check bool) "empty column" true (Stats.Mcv.build ~k:3 [||] = None);
  Alcotest.(check bool) "k < 1 rejected" true
    (match Stats.Mcv.build ~k:0 [| int_ 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* Nulls are excluded from fractions. *)
  let mcv =
    Option.get (Stats.Mcv.build ~k:1 [| int_ 5; Rel.Value.Null; int_ 5 |])
  in
  check_float ~eps:1e-9 "null-free fraction" 1.
    (Stats.Mcv.covered_fraction mcv)

let test_stale_distinct_remainder () =
  (* covered 0.9, 2 tracked values. A stale catalog reporting distinct at
     or below the tracked count used to make the untracked population
     empty and the estimate 0; the residual mass (0.1 over one stand-in
     value) is the fix's answer. *)
  let mcv = Option.get (Stats.Mcv.build ~k:2 (skewed_values ())) in
  check_float ~eps:1e-9 "distinct = tracked" 0.1
    (Stats.Mcv.remainder_eq_selectivity mcv ~distinct:2);
  check_float ~eps:1e-9 "distinct below tracked" 0.1
    (Stats.Mcv.remainder_eq_selectivity mcv ~distinct:0);
  (* One value above the tracked count: all residual mass on it. *)
  check_float ~eps:1e-9 "one untracked value" 0.1
    (Stats.Mcv.remainder_eq_selectivity mcv ~distinct:3)

let test_selectivity_integration () =
  let stats = Stats.Col_stats.of_values ~mcv:2 (skewed_values ()) in
  Alcotest.(check bool) "sketch recorded" true (stats.Stats.Col_stats.mcv <> None);
  check_float ~eps:1e-9 "tracked equality exact" 0.6
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Eq (int_ 1));
  check_float ~eps:1e-9 "untracked equality via remainder" 0.01
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Eq (int_ 7));
  check_float ~eps:1e-9 "ne complements" 0.4
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Ne (int_ 1));
  (* Without the sketch the uniform rule is badly off on the head value. *)
  let uniform = Stats.Col_stats.of_values (skewed_values ()) in
  check_float ~eps:1e-9 "uniform rule on skew" (1. /. 12.)
    (Stats.Selectivity_est.comparison uniform Rel.Cmp.Eq (int_ 1))

let test_mcv_beats_histogram_for_equality () =
  (* With both statistics present, equality uses the sketch. *)
  let stats =
    Stats.Col_stats.of_values ~histogram:Stats.Histogram.Equi_depth ~mcv:2
      (skewed_values ())
  in
  check_float ~eps:1e-9 "sketch wins" 0.6
    (Stats.Selectivity_est.comparison stats Rel.Cmp.Eq (int_ 1));
  (* Range predicates still use the histogram. *)
  let range = Stats.Selectivity_est.comparison stats Rel.Cmp.Le (int_ 2) in
  Alcotest.(check bool) "range from histogram" true
    (Float.abs (range -. 0.9) < 0.05)

let test_skew_experiment_shape () =
  let points =
    Harness.Skew_accuracy.run ~rows:5000 ~distinct:200 ~mcv_entries:20
      ~ranks:[ 1; 5; 100 ] ()
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  let head = List.hd points in
  (* MCV is exact on the head value; the uniform rule is far off. *)
  check_float ~eps:1e-6 "mcv exact on head"
    (float_of_int head.Harness.Skew_accuracy.true_rows)
    head.Harness.Skew_accuracy.mcv_est;
  Alcotest.(check bool) "uniform far off" true
    (head.Harness.Skew_accuracy.uniform_est
    < float_of_int head.Harness.Skew_accuracy.true_rows /. 5.)

let suite =
  [
    Alcotest.test_case "build ranks" `Quick test_build_ranks;
    Alcotest.test_case "lookup and remainder" `Quick test_lookup_and_remainder;
    Alcotest.test_case "full coverage" `Quick test_full_coverage;
    Alcotest.test_case "edge cases" `Quick test_edge_cases;
    Alcotest.test_case "stale distinct remainder" `Quick
      test_stale_distinct_remainder;
    Alcotest.test_case "selectivity integration" `Quick
      test_selectivity_integration;
    Alcotest.test_case "mcv vs histogram precedence" `Quick
      test_mcv_beats_histogram_for_equality;
    Alcotest.test_case "skew experiment shape" `Quick
      test_skew_experiment_shape;
  ]
