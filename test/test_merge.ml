(* The merge algebra behind partitioned ANALYZE: HLL distinct sketches,
   histogram/MCV merges and Col_stats/Analyze shard folding.

   The contract (DESIGN §12): sketch merges are exact (commutative,
   associative, idempotent, and shard-merge equals bulk-build);
   histogram/MCV merges are commutative exactly and agree with the bulk
   build within tolerance; Analyze.partitions matches bulk Analyze.table
   on row counts, null counts and bounds exactly, on distinct counts to
   sketch accuracy, and always passes its own audit. *)

let ints_of rng n lo hi =
  Array.init n (fun _ -> Rel.Value.Int (Rel.Prng.int_in rng lo hi))

let split_shards k arr =
  let shards = Array.make k [] in
  Array.iteri (fun i v -> shards.(i mod k) <- v :: shards.(i mod k)) arr;
  Array.to_list (Array.map (fun l -> Array.of_list (List.rev l)) shards)

(* --- HLL --- *)

let test_hll_accuracy () =
  (* Deterministic: distinct counts across three orders of magnitude must
     estimate within 5% (p=12 gives ~1.6% standard error). *)
  List.iter
    (fun n ->
      let values = Array.init n (fun i -> Rel.Value.Int (i + 1)) in
      let est = Stats.Hll.estimate (Stats.Hll.of_values values) in
      let err = Float.abs (est -. float_of_int n) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d estimated %.0f (%.2f%% error)" n est (100. *. err))
        true (err <= 0.05))
    [ 10; 100; 1000; 20000 ]

let test_hll_ignores_nulls_and_duplicates () =
  let values =
    Array.concat
      [
        Array.init 50 (fun i -> Rel.Value.Int (i + 1));
        Array.init 50 (fun i -> Rel.Value.Int (i + 1));
        Array.make 25 Rel.Value.Null;
      ]
  in
  let est = Stats.Hll.estimate (Stats.Hll.of_values values) in
  Alcotest.(check bool)
    (Printf.sprintf "50 distinct estimated %.1f" est)
    true
    (Float.abs (est -. 50.) /. 50. <= 0.05)

let test_hll_merge_exact () =
  let rng = Rel.Prng.create 7 in
  let a = Stats.Hll.of_values (ints_of rng 500 1 300) in
  let b = Stats.Hll.of_values (ints_of rng 400 200 700) in
  let c = Stats.Hll.of_values (ints_of rng 300 1 1000) in
  let ( + ) = Stats.Hll.merge in
  Alcotest.(check bool) "commutative" true (Stats.Hll.equal (a + b) (b + a));
  Alcotest.(check bool)
    "associative" true
    (Stats.Hll.equal ((a + b) + c) (a + (b + c)));
  Alcotest.(check bool) "idempotent" true (Stats.Hll.equal (a + a) a)

let test_hll_shards_equal_bulk () =
  (* Register-wise max means sharded adds commute with bulk adds
     bit-for-bit, whatever the partitioning. *)
  let rng = Rel.Prng.create 13 in
  let values = ints_of rng 2000 1 800 in
  let bulk = Stats.Hll.of_values values in
  List.iter
    (fun k ->
      let merged =
        match List.map Stats.Hll.of_values (split_shards k values) with
        | first :: rest -> List.fold_left Stats.Hll.merge first rest
        | [] -> assert false
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards merge to the bulk sketch" k)
        true
        (Stats.Hll.equal bulk merged))
    [ 2; 3; 7 ]

(* --- histograms --- *)

let floats_of rng n lo hi =
  Array.init n (fun _ -> float_of_int (Rel.Prng.int_in rng lo hi))

let build_exn kind ~buckets values =
  match Stats.Histogram.build kind ~buckets values with
  | Some h -> h
  | None -> Alcotest.fail "histogram build returned None"

let test_histogram_merge_commutative () =
  let rng = Rel.Prng.create 17 in
  let a = build_exn Stats.Histogram.Equi_depth ~buckets:8 (floats_of rng 300 1 100) in
  let b = build_exn Stats.Histogram.Equi_depth ~buckets:8 (floats_of rng 200 50 200) in
  let ab = Stats.Histogram.merge a b and ba = Stats.Histogram.merge b a in
  Alcotest.(check bool)
    "merge a b = merge b a (bucket lists equal)" true
    (Stats.Histogram.buckets ab = Stats.Histogram.buckets ba)

let test_histogram_merge_shape () =
  let rng = Rel.Prng.create 19 in
  let va = floats_of rng 400 1 100 and vb = floats_of rng 300 80 250 in
  let a = build_exn Stats.Histogram.Equi_depth ~buckets:8 va in
  let b = build_exn Stats.Histogram.Equi_depth ~buckets:8 vb in
  let m = Stats.Histogram.merge a b in
  let bs = Stats.Histogram.buckets m in
  Alcotest.(check bool)
    "budget respected" true
    (List.length bs <= 8);
  Helpers.check_float "total count adds" 700. (Stats.Histogram.total_count m);
  (* Monotone, non-overlapping bounds: the property Validate audits. *)
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      a.Stats.Histogram.hi <= b.Stats.Histogram.lo +. 1e-9
      && a.Stats.Histogram.lo <= a.Stats.Histogram.hi
      && monotone rest
    | [ b ] -> b.Stats.Histogram.lo <= b.Stats.Histogram.hi
    | [] -> false
  in
  Alcotest.(check bool) "bounds stay monotone" true (monotone bs)

let test_histogram_shards_close_to_bulk () =
  (* Deterministic tolerance check: range selectivities of the shard-merged
     histogram track the bulk-built one. *)
  let rng = Rel.Prng.create 23 in
  let values = floats_of rng 1200 1 400 in
  let bulk = build_exn Stats.Histogram.Equi_depth ~buckets:12 values in
  let merged =
    match
      List.map
        (fun shard -> build_exn Stats.Histogram.Equi_depth ~buckets:12 shard)
        (split_shards 4 values)
    with
    | first :: rest -> List.fold_left Stats.Histogram.merge first rest
    | [] -> assert false
  in
  List.iter
    (fun cut ->
      let s_bulk = Stats.Histogram.selectivity bulk Rel.Cmp.Le cut in
      let s_merged = Stats.Histogram.selectivity merged Rel.Cmp.Le cut in
      Alcotest.(check bool)
        (Printf.sprintf "sel(<= %.0f): bulk %.3f vs merged %.3f" cut s_bulk
           s_merged)
        true
        (Float.abs (s_bulk -. s_merged) <= 0.1))
    [ 50.; 100.; 200.; 300.; 390. ]

(* --- MCV --- *)

let test_mcv_merge () =
  (* Two shards with known frequencies: the weighted merge must recover
     the combined fractions of every value that survives the budget
     (top max(k1,k2), here 3). Shard 1: 100 rows as 60×1, 30×2, 10×3.
     Shard 2: 100 rows as 50×2, 40×3, 10×4. *)
  let shard counts =
    match
      Stats.Mcv.build ~k:4
        (Array.concat
           (List.map (fun (v, n) -> Array.make n (Rel.Value.Int v)) counts))
    with
    | Some t -> t
    | None -> Alcotest.fail "mcv build returned None"
  in
  let a = shard [ (1, 60); (2, 30); (3, 10) ] in
  let b = shard [ (2, 50); (3, 40); (4, 10) ] in
  let m = Stats.Mcv.merge (100., a) (100., b) in
  let lookup v =
    match Stats.Mcv.lookup m (Rel.Value.Int v) with
    | Some f -> f
    | None -> 0.
  in
  Helpers.check_float ~eps:1e-9 "f(1) = 60/200" 0.3 (lookup 1);
  Helpers.check_float ~eps:1e-9 "f(2) = 80/200" 0.4 (lookup 2);
  Helpers.check_float ~eps:1e-9 "f(3) = 50/200" 0.25 (lookup 3);
  Helpers.check_float ~eps:1e-9 "f(4) dropped by the top-3 budget" 0.
    (lookup 4);
  Alcotest.(check bool)
    "covered fraction within [0,1]" true
    (Stats.Mcv.covered_fraction m >= 0. && Stats.Mcv.covered_fraction m <= 1.);
  let m' = Stats.Mcv.merge (100., b) (100., a) in
  Alcotest.(check bool)
    "commutative" true
    (Stats.Mcv.entries m = Stats.Mcv.entries m')

(* --- Col_stats / Analyze --- *)

let relation_of_column name values =
  let schema =
    Rel.Schema.make [ Rel.Schema.column ~table:name ~name:"a" Rel.Value.Ty_int ]
  in
  Rel.Relation.of_tuples schema
    (List.map (fun v -> Rel.Tuple.of_list [ v ]) (Array.to_list values))

let test_partitions_match_bulk () =
  let rng = Rel.Prng.create 29 in
  let values = ints_of rng 3000 1 500 in
  let rel = relation_of_column "t" values in
  let bulk =
    Catalog.Analyze.table ~histogram:Stats.Histogram.Equi_depth ~mcv:5
      ~name:"t" rel
  in
  List.iter
    (fun k ->
      let shards =
        List.map (relation_of_column "t") (split_shards k values)
      in
      let merged =
        Catalog.Analyze.partitions ~histogram:Stats.Histogram.Equi_depth
          ~mcv:5 ~name:"t" shards
      in
      Alcotest.(check int)
        (Printf.sprintf "%d shards: row count exact" k)
        bulk.Catalog.Table.row_count merged.Catalog.Table.row_count;
      let sb = Catalog.Table.col_stats_exn bulk "a" in
      let sm = Catalog.Table.col_stats_exn merged "a" in
      Alcotest.(check int)
        "null count exact" sb.Stats.Col_stats.nulls sm.Stats.Col_stats.nulls;
      Alcotest.(check bool)
        "bounds exact" true
        (sb.Stats.Col_stats.min_value = sm.Stats.Col_stats.min_value
        && sb.Stats.Col_stats.max_value = sm.Stats.Col_stats.max_value);
      let db = float_of_int sb.Stats.Col_stats.distinct in
      let dm = float_of_int sm.Stats.Col_stats.distinct in
      Alcotest.(check bool)
        (Printf.sprintf "distinct within 10%% (bulk %.0f, merged %.0f)" db dm)
        true
        (Float.abs (db -. dm) /. db <= 0.1);
      Alcotest.(check (list Alcotest.string))
        "merged table passes its own audit" []
        (List.map Catalog.Validate.issue_to_string
           (Catalog.Validate.check_table merged)))
    [ 2; 4; 8 ]

let test_partitions_single_shard_is_bulk () =
  let rng = Rel.Prng.create 31 in
  let values = ints_of rng 500 1 100 in
  let rel = relation_of_column "t" values in
  let bulk =
    Catalog.Analyze.table ~histogram:Stats.Histogram.Equi_depth ~mcv:5
      ~name:"t" rel
  in
  let one =
    Catalog.Analyze.partitions ~histogram:Stats.Histogram.Equi_depth ~mcv:5
      ~name:"t" [ rel ]
  in
  Alcotest.(check int)
    "row count" bulk.Catalog.Table.row_count one.Catalog.Table.row_count;
  let sb = Catalog.Table.col_stats_exn bulk "a" in
  let so = Catalog.Table.col_stats_exn one "a" in
  Alcotest.(check int)
    "distinct identical" sb.Stats.Col_stats.distinct so.Stats.Col_stats.distinct

let test_partitions_rejects_mismatch () =
  Alcotest.check_raises "empty shard list"
    (Invalid_argument "Analyze.partitions: no shards") (fun () ->
      ignore (Catalog.Analyze.partitions ~name:"t" []))

let test_merge_tables_symmetric_schema_check () =
  (* Regression: the schema check must reject a drift in either
     direction. Pre-fix, a column present only in the second shard was
     silently dropped — the merge "succeeded" with data loss — while the
     mirrored drift raised. *)
  let table_with name cols =
    let rng = Rel.Prng.create 41 in
    let schema =
      Rel.Schema.make
        (List.map
           (fun c -> Rel.Schema.column ~table:name ~name:c Rel.Value.Ty_int)
           cols)
    in
    let rel =
      Rel.Relation.of_tuples schema
        (List.init 20 (fun _ ->
             Rel.Tuple.of_list
               (List.map
                  (fun _ -> Rel.Value.Int (Rel.Prng.int_in rng 1 9))
                  cols)))
    in
    Catalog.Analyze.table ~name rel
  in
  let ab = table_with "t" [ "a"; "b" ] and a = table_with "t" [ "a" ] in
  let raises x y =
    match Catalog.Analyze.merge_tables x y with
    | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the drifting column" true
        (Helpers.contains msg "t.b")
    | (_ : Catalog.Table.t) ->
      Alcotest.fail "schema drift merged without complaint"
  in
  raises ab a;
  raises a ab;
  (* Matching schemas still merge. *)
  Alcotest.(check int) "matching shards merge" 40
    (Catalog.Analyze.merge_tables ab (table_with "t" [ "a"; "b" ]))
      .Catalog.Table.row_count

(* --- degree sequences --- *)

let degree_of_values values = Stats.Degree.of_values values

let test_degree_merge_complete_exact () =
  (* Low-cardinality shards (every value tracked): the merge is exact on
     every statistic, including the value-keyed top-k. *)
  let rng = Rel.Prng.create 37 in
  let values = ints_of rng 400 1 20 in
  let bulk = degree_of_values values in
  List.iter
    (fun k ->
      let merged =
        match List.map degree_of_values (split_shards k values) with
        | first :: rest -> List.fold_left Stats.Degree.merge first rest
        | [] -> assert false
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d shards stay complete" k)
        true
        (Stats.Degree.complete merged);
      Helpers.check_float "l1 exact" (Stats.Degree.l1 bulk)
        (Stats.Degree.l1 merged);
      Helpers.check_float "l2² exact" (Stats.Degree.l2_sq bulk)
        (Stats.Degree.l2_sq merged);
      Helpers.check_float "linf exact" (Stats.Degree.linf bulk)
        (Stats.Degree.linf merged);
      Alcotest.(check bool) "tracked entries identical" true
        (Stats.Degree.tracked bulk = Stats.Degree.tracked merged))
    [ 2; 4; 8 ]

let test_degree_merge_incomplete_bounds () =
  (* High-cardinality shards: L1 stays exact; L∞/L2²/top-k become lower
     bounds of the bulk statistic that still dominate each shard. *)
  let rng = Rel.Prng.create 43 in
  let values = ints_of rng 2000 1 400 in
  let bulk = degree_of_values values in
  let shard_stats = List.map degree_of_values (split_shards 4 values) in
  let merged =
    match shard_stats with
    | first :: rest -> List.fold_left Stats.Degree.merge first rest
    | [] -> assert false
  in
  Helpers.check_float "l1 exact" (Stats.Degree.l1 bulk) (Stats.Degree.l1 merged);
  Alcotest.(check bool) "linf: shard ≤ merged ≤ bulk" true
    (List.for_all
       (fun s -> Stats.Degree.linf s <= Stats.Degree.linf merged)
       shard_stats
    && Stats.Degree.linf merged <= Stats.Degree.linf bulk);
  Alcotest.(check bool) "l2²: shard ≤ merged ≤ bulk" true
    (List.for_all
       (fun s -> Stats.Degree.l2_sq s <= Stats.Degree.l2_sq merged)
       shard_stats
    && Stats.Degree.l2_sq merged <= Stats.Degree.l2_sq bulk);
  let mt = Stats.Degree.top_degrees merged
  and bt = Stats.Degree.top_degrees bulk in
  Alcotest.(check bool) "top-k: merged[i] ≤ bulk[i]" true
    (Array.for_all
       (fun i -> mt.(i) <= bt.(i))
       (Array.init (min (Array.length mt) (Array.length bt)) Fun.id))

(* --- properties --- *)

let gen_shard_spec =
  QCheck2.Gen.(
    let* seed = int_range 0 10000 in
    let* n = int_range 20 800 in
    let* domain = int_range 2 300 in
    let* shards = int_range 2 6 in
    return (seed, n, domain, shards))

let print_shard_spec (seed, n, domain, shards) =
  Printf.sprintf "seed=%d n=%d domain=%d shards=%d" seed n domain shards

let prop_hll_merge_algebra =
  QCheck2.Test.make ~count:100 ~name:"HLL merge commutative + associative"
    ~print:print_shard_spec gen_shard_spec (fun (seed, n, domain, _) ->
      let rng = Rel.Prng.create seed in
      let a = Stats.Hll.of_values (ints_of rng n 1 domain) in
      let b = Stats.Hll.of_values (ints_of rng n 1 domain) in
      let c = Stats.Hll.of_values (ints_of rng n 1 domain) in
      Stats.Hll.equal (Stats.Hll.merge a b) (Stats.Hll.merge b a)
      && Stats.Hll.equal
           (Stats.Hll.merge (Stats.Hll.merge a b) c)
           (Stats.Hll.merge a (Stats.Hll.merge b c)))

let prop_partitions_close_to_bulk =
  QCheck2.Test.make ~count:60
    ~name:"Analyze.partitions ≈ bulk table (rows/nulls/bounds exact, d close)"
    ~print:print_shard_spec gen_shard_spec (fun (seed, n, domain, shards) ->
      let rng = Rel.Prng.create seed in
      let values = ints_of rng n 1 domain in
      let bulk =
        Catalog.Analyze.table ~histogram:Stats.Histogram.Equi_depth ~mcv:5
          ~name:"t" (relation_of_column "t" values)
      in
      let merged =
        Catalog.Analyze.partitions ~histogram:Stats.Histogram.Equi_depth
          ~mcv:5 ~name:"t"
          (List.map (relation_of_column "t") (split_shards shards values))
      in
      let sb = Catalog.Table.col_stats_exn bulk "a" in
      let sm = Catalog.Table.col_stats_exn merged "a" in
      bulk.Catalog.Table.row_count = merged.Catalog.Table.row_count
      && sb.Stats.Col_stats.nulls = sm.Stats.Col_stats.nulls
      && sb.Stats.Col_stats.min_value = sm.Stats.Col_stats.min_value
      && sb.Stats.Col_stats.max_value = sm.Stats.Col_stats.max_value
      && Float.abs
           (float_of_int sb.Stats.Col_stats.distinct
           -. float_of_int sm.Stats.Col_stats.distinct)
         /. float_of_int (max 1 sb.Stats.Col_stats.distinct)
         <= 0.15
      && Catalog.Validate.check_table merged = [])

(* The tolerance contract of Stats.Degree.merge (degree.mli "Merge
   tolerance"), both regimes: in the complete regime (domain ≤ k) the
   shard-merged statistic equals the bulk build exactly, values included;
   past capacity, L1 stays exact and L∞/L2²/top-k are lower bounds of the
   bulk that dominate every shard. *)
let prop_degree_merge_matches_bulk =
  QCheck2.Test.make ~count:100
    ~name:"Degree shard merge = bulk (complete) / bounded (truncated)"
    ~print:print_shard_spec gen_shard_spec (fun (seed, n, domain, shards) ->
      let rng = Rel.Prng.create seed in
      let values = ints_of rng n 1 domain in
      let bulk = Stats.Degree.of_values values in
      let shard_stats =
        List.map Stats.Degree.of_values (split_shards shards values)
      in
      let merged =
        match shard_stats with
        | first :: rest -> List.fold_left Stats.Degree.merge first rest
        | [] -> assert false
      in
      let l1_exact = Stats.Degree.l1 merged = Stats.Degree.l1 bulk in
      let dominated =
        List.for_all
          (fun s ->
            Stats.Degree.linf s <= Stats.Degree.linf merged
            && Stats.Degree.l2_sq s <= Stats.Degree.l2_sq merged)
          shard_stats
      in
      let bounded =
        Stats.Degree.linf merged <= Stats.Degree.linf bulk
        && Stats.Degree.l2_sq merged <= Stats.Degree.l2_sq bulk +. 1e-6
        &&
        let mt = Stats.Degree.top_degrees merged
        and bt = Stats.Degree.top_degrees bulk in
        Array.length mt <= Array.length bt
        && Array.for_all
             (fun i -> mt.(i) <= bt.(i))
             (Array.init (Array.length mt) Fun.id)
      in
      let exact_when_complete =
        (not (Stats.Degree.complete bulk))
        || (Stats.Degree.complete merged
           && Stats.Degree.l2_sq merged = Stats.Degree.l2_sq bulk
           && Stats.Degree.linf merged = Stats.Degree.linf bulk
           && Stats.Degree.tracked merged = Stats.Degree.tracked bulk)
      in
      (* Whatever the regime, the merged statistic must pass the catalog
         audit — Repair mode must never drop a legitimately merged
         degree sequence. *)
      let audit_clean =
        Catalog.Validate.check_table
          (Catalog.Analyze.partitions ~name:"t"
             (List.map (relation_of_column "t") (split_shards shards values)))
        = []
      in
      l1_exact && dominated && bounded && exact_when_complete && audit_clean)

let suite =
  [
    Alcotest.test_case "hll: accuracy within 5%" `Quick test_hll_accuracy;
    Alcotest.test_case "hll: nulls and duplicates ignored" `Quick
      test_hll_ignores_nulls_and_duplicates;
    Alcotest.test_case "hll: merge exact algebra" `Quick test_hll_merge_exact;
    Alcotest.test_case "hll: shard merge = bulk build" `Quick
      test_hll_shards_equal_bulk;
    Alcotest.test_case "histogram: merge commutative" `Quick
      test_histogram_merge_commutative;
    Alcotest.test_case "histogram: merge shape and budget" `Quick
      test_histogram_merge_shape;
    Alcotest.test_case "histogram: shard merge tracks bulk" `Quick
      test_histogram_shards_close_to_bulk;
    Alcotest.test_case "mcv: weighted merge recovers fractions" `Quick
      test_mcv_merge;
    Alcotest.test_case "analyze: partitions match bulk" `Quick
      test_partitions_match_bulk;
    Alcotest.test_case "analyze: single shard equals bulk" `Quick
      test_partitions_single_shard_is_bulk;
    Alcotest.test_case "analyze: partitions rejects empty input" `Quick
      test_partitions_rejects_mismatch;
    Alcotest.test_case "analyze: merge_tables schema check is symmetric"
      `Quick test_merge_tables_symmetric_schema_check;
    Alcotest.test_case "degree: complete shard merge exact" `Quick
      test_degree_merge_complete_exact;
    Alcotest.test_case "degree: truncated shard merge bounded" `Quick
      test_degree_merge_incomplete_bounds;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_hll_merge_algebra; prop_partitions_close_to_bulk;
        prop_degree_merge_matches_bulk;
      ]
