(* Composite (multi-column) join keys: two equality predicates between the
   same pair of tables, belonging to two distinct equivalence classes.
   Exercises the executors' multi-key paths and the estimator's
   independence-based class multiplication. *)

let int_ n = Rel.Value.Int n
let c t col = Query.Cref.v t col

let db () =
  let rng = Datagen.Prng.create 77 in
  let db = Catalog.Db.create () in
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"l"
       ~rows:600
       [
         Datagen.Tablegen.column "a" ~distinct:20;
         Datagen.Tablegen.column "b" ~distinct:30;
       ]);
  ignore
    (Datagen.Tablegen.register (Datagen.Prng.split rng) db ~table:"r"
       ~rows:300
       [
         Datagen.Tablegen.column "a" ~distinct:20;
         Datagen.Tablegen.column "b" ~distinct:30;
       ]);
  db

let query db =
  Sqlfront.Binder.compile_exn db
    "SELECT COUNT(*) FROM l, r WHERE l.a = r.a AND l.b = r.b"

let test_two_classes () =
  let db = db () in
  let q = query db in
  let profile = Els.prepare Els.Config.els db q in
  let groups =
    Els.Selectivity.group_by_class profile (Query.join_predicates q)
  in
  Alcotest.(check int) "two equivalence classes" 2 (List.length groups)

let test_estimate_multiplies_classes () =
  let db = db () in
  let q = query db in
  (* Independence: S = 1/20 * 1/30; est = 600*300/600 = 300. *)
  Helpers.check_float ~eps:1e-6 "estimate" 300.
    (Els.estimate Els.Config.els db q [ "l"; "r" ]);
  (* All three rules agree here: one predicate per class. *)
  Helpers.check_float ~eps:1e-6 "rules agree"
    (Els.estimate (Els.Config.sm ~ptc:true) db q [ "l"; "r" ])
    (Els.estimate Els.Config.sss db q [ "l"; "r" ])

let all_methods_counts db q =
  List.map
    (fun method_ ->
      let plan =
        Exec.Plan.Join
          {
            method_;
            outer = Exec.Plan.scan "l";
            inner = Exec.Plan.scan "r";
            predicates = Query.join_predicates q;
          }
      in
      let rows, _, _ = Exec.Executor.count db plan in
      rows)
    Exec.Plan.[ Nested_loop; Sort_merge; Hash; Index_nested_loop ]

let test_all_methods_agree_on_composite_keys () =
  let db = db () in
  let q = query db in
  let reference = (Exec.Executor.run_query db q).Exec.Executor.row_count in
  Alcotest.(check bool) "nonempty" true (reference > 0);
  List.iter
    (fun rows -> Alcotest.(check int) "method agrees" reference rows)
    (all_methods_counts db q)

let test_composite_key_null_semantics () =
  (* A NULL in either key column removes the row from every join method.
     Hand-built relations with NULLs in different key positions. *)
  let schema t =
    Rel.Schema.make
      [
        Rel.Schema.column ~table:t ~name:"a" Rel.Value.Ty_int;
        Rel.Schema.column ~table:t ~name:"b" Rel.Value.Ty_int;
      ]
  in
  let l =
    Rel.Relation.of_tuples (schema "l")
      [
        [| int_ 1; int_ 1 |]; [| int_ 1; Rel.Value.Null |];
        [| Rel.Value.Null; int_ 1 |];
      ]
  in
  let r = Rel.Relation.of_tuples (schema "r") [ [| int_ 1; int_ 1 |] ] in
  let preds =
    [
      Query.Predicate.col_eq (c "l" "a") (c "r" "a");
      Query.Predicate.col_eq (c "l" "b") (c "r" "b");
    ]
  in
  let counters = Exec.Counters.create () in
  let count op = Exec.Operator.count op in
  Alcotest.(check int) "hash" 1
    (count
       (Exec.Hash_join.join counters preds
          ~outer:(Exec.Operator.of_relation l)
          ~inner:(Exec.Operator.of_relation r)));
  Alcotest.(check int) "sort-merge" 1
    (count
       (Exec.Sort_merge.join counters preds
          ~outer:(Exec.Operator.of_relation l)
          ~inner:(Exec.Operator.of_relation r)));
  Alcotest.(check int) "inl (second key residual)" 1
    (count
       (Exec.Index_nested_loop.join counters preds ~inner_filters:[]
          ~outer:(Exec.Operator.of_relation l) ~inner:r))

let suite =
  [
    Alcotest.test_case "two equivalence classes" `Quick test_two_classes;
    Alcotest.test_case "estimator multiplies classes" `Quick
      test_estimate_multiplies_classes;
    Alcotest.test_case "all methods agree on composite keys" `Quick
      test_all_methods_agree_on_composite_keys;
    Alcotest.test_case "composite-key NULL semantics" `Quick
      test_composite_key_null_semantics;
  ]
